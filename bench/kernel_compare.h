// Old-vs-new timing of the per-update arithmetic kernel, shared by
// bench_l0_sampler (the substrate view) and bench_throughput (the
// before/after row in BENCH_throughput.json). Both loops perform the
// identical segment read-modify-write via the raw segment kernels; they
// differ only in the arithmetic the overhaul replaced:
//   old: fingerprint power by binary exponentiation (FingerprintPowerRef)
//        and row buckets by hardware `%` (BucketRef);
//   new: windowed power table (PowerFromExp) and the Lemire multiply-shift
//        reduction, as baked into SSparseSegmentUpdate.
#ifndef GMS_BENCH_KERNEL_COMPARE_H_
#define GMS_BENCH_KERNEL_COMPARE_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sketch/sparse_recovery.h"
#include "util/random.h"
#include "util/timer.h"

namespace gms::bench {

struct KernelTimings {
  double old_ns = 0;  // per update, FpPow + `%` bucketing
  double new_ns = 0;  // per update, power table + multiply-shift
  double speedup = 0;
  size_t updates = 0;
};

inline KernelTimings CompareUpdateKernels(size_t updates = 200000) {
  const u128 domain = u128{1} << 80;
  SSparseShape shape(domain, /*capacity=*/8, /*rows=*/3, /*buckets=*/16,
                     /*seed=*/77);
  const int rows = shape.rows();
  const int buckets = shape.buckets();
  const size_t cells = static_cast<size_t>(shape.NumCells());
  std::vector<u128> keys;
  keys.reserve(updates);
  Rng rng(5);
  for (size_t i = 0; i < updates; ++i) {
    keys.push_back(((static_cast<u128>(rng.Next()) << 64) | rng.Next()) &
                   (domain - 1));
  }
  KernelTimings out;
  out.updates = updates;
  std::vector<uint64_t> seg(SSparseSegmentWords(shape), 0);
  {
    Timer t;
    for (const u128 k : keys) {
      const uint64_t power = shape.FingerprintPowerRef(k);
      size_t idx[kMaxSketchRows];
      for (int r = 0; r < rows; ++r) {
        idx[r] = static_cast<size_t>(r) * buckets +
                 static_cast<size_t>(shape.BucketRef(r, k));
      }
      // delta = 1, so the fingerprint delta is the power itself.
      SSparseSegmentApply(seg.data(), idx, rows, cells, 1, k, power);
    }
    out.old_ns = t.Seconds() * 1e9 / static_cast<double>(updates);
  }
  std::fill(seg.begin(), seg.end(), 0);
  {
    Timer t;
    for (const u128 k : keys) {
      const PreparedCoord pc = PrepareCoord(k);
      SSparseSegmentUpdate(shape, seg.data(), pc, 1,
                           shape.FingerprintPowerFromExp(pc.exponent));
    }
    out.new_ns = t.Seconds() * 1e9 / static_cast<double>(updates);
  }
  out.speedup = out.old_ns / std::max(out.new_ns, 1e-9);
  return out;
}

}  // namespace gms::bench

#endif  // GMS_BENCH_KERNEL_COMPARE_H_
