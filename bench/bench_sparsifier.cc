// Experiment E10 (Theorems 19/20): hypergraph sparsification. Regenerates:
// max/avg cut error vs the peeling threshold k (the eps knob), compression
// ratios, hyperedge-rank sweeps, graphs as the 2-uniform case, and the
// level-size profile of the recursive half-sampling.
#include <cstdio>
#include <string>

#include "bench_util.h"
#include "graph/generators.h"
#include "sparsify/benczur_karger.h"
#include "sparsify/sparsifier_sketch.h"
#include "sparsify/verify.h"

namespace gms {
namespace {

void ErrorVsK() {
  Table table({"input", "n", "m", "k", "max_err", "avg_err", "compress",
               "space"});
  struct Case {
    const char* name;
    Hypergraph h;
    size_t rank;
  };
  std::vector<Case> cases;
  cases.push_back({"K14 (graph)", Hypergraph::FromGraph(CompleteGraph(14)),
                   2});
  cases.push_back({"hyper r=3", RandomUniformHypergraph(14, 80, 3, 1), 3});
  for (auto& c : cases) {
    for (size_t k : {2, 4, 8, 16}) {
      const size_t trials = 3;
      double max_err = 0, avg_err = 0, compress = 0;
      size_t bytes = 0, ok_trials = 0;
      for (uint64_t t = 0; t < trials; ++t) {
        SparsifierParams p;
        p.k = k;
        p.levels = 9;
        p.forest.config = SketchConfig::Light();
        HypergraphSparsifierSketch sketch(c.h.NumVertices(), c.rank, p,
                                          900 + 37 * k + t);
        sketch.Process(DynamicStream::InsertOnly(c.h, k + t));
        auto out = sketch.ExtractSparsifier();
        if (!out.ok()) continue;
        auto report = VerifySparsifier(c.h, out->sparsifier, 1.0);
        max_err += report.stats.max_rel_error;
        avg_err += report.stats.avg_rel_error;
        compress += report.compression;
        bytes = sketch.MemoryBytes();
        ++ok_trials;
      }
      if (ok_trials == 0) {
        table.AddRow({c.name, Table::Fmt(c.h.NumVertices()),
                      Table::Fmt(c.h.NumEdges()), Table::Fmt(uint64_t{k}),
                      "fail", "-", "-", "-"});
        continue;
      }
      double d = static_cast<double>(ok_trials);
      table.AddRow(
          {c.name, Table::Fmt(c.h.NumVertices()), Table::Fmt(c.h.NumEdges()),
           Table::Fmt(uint64_t{k}), Table::Fmt(max_err / d, 3),
           Table::Fmt(avg_err / d, 3), Table::Fmt(compress / d, 2),
           bench::Kb(bytes)});
    }
  }
  table.Print("Cut error vs peeling threshold k ~ eps^-2 (Lemma 18)");
  std::printf(
      "\nExpected shape: max_err falls as k grows (k ~ eps^-2 (log n + r) "
      "buys eps);\ncompression rises toward 1.0 as k approaches the "
      "graph's connectivity --\nthe usual accuracy/size trade-off of "
      "Benczur-Karger-style sampling.\n");
}

void RankSweep() {
  Table table({"r", "n", "m", "k", "max_err", "zero_mismatch", "compress"});
  for (size_t r : {2, 3, 4}) {
    Hypergraph h = RandomUniformHypergraph(13, 70, r, 10 + r);
    SparsifierParams p;
    p.k = 8;
    p.levels = 8;
    p.forest.config = SketchConfig::Light();
    HypergraphSparsifierSketch sketch(13, r, p, 20 + r);
    sketch.Process(DynamicStream::InsertOnly(h, r));
    auto out = sketch.ExtractSparsifier();
    if (!out.ok()) continue;
    auto report = VerifySparsifier(h, out->sparsifier, 1.0);
    table.AddRow({Table::Fmt(uint64_t{r}), "13", Table::Fmt(h.NumEdges()),
                  "8", Table::Fmt(report.stats.max_rel_error, 3),
                  Table::Fmt(report.stats.zero_mismatches),
                  Table::Fmt(report.compression, 2)});
  }
  table.Print("Hyperedge-rank sweep at fixed k (exhaustive cut check)");
  std::printf(
      "\nExpected shape: errors stay comparable across r once k includes "
      "the +r term\nof Lemma 18's k = O(eps^-2 (log n + r)); zero_mismatch "
      "= 0 always (a\nsparsifier never connects what was disconnected).\n");
}

void LevelProfile() {
  Hypergraph h = Hypergraph::FromGraph(CompleteGraph(16));
  SparsifierParams p;
  p.k = 6;
  p.levels = 10;
  p.forest.config = SketchConfig::Light();
  HypergraphSparsifierSketch sketch(16, 2, p, 33);
  sketch.Process(DynamicStream::InsertOnly(h, 3));
  auto out = sketch.ExtractSparsifier();
  if (!out.ok()) {
    std::printf("level profile: extraction failed\n");
    return;
  }
  Table table({"level i", "|F_i|", "weight 2^i"});
  for (size_t i = 0; i < out->level_sizes.size(); ++i) {
    table.AddRow({Table::Fmt(uint64_t{i}), Table::Fmt(out->level_sizes[i]),
                  Table::Fmt(uint64_t{1} << i)});
  }
  table.Print("Per-level light sets F_i on K16 (Section 5 algorithm)");
  std::printf(
      "\nExpected shape: |F_i| shrinks geometrically -- each level "
      "half-samples the\nresidual heavy part until nothing heavy "
      "remains%s.\n",
      out->truncated ? " (TRUNCATED: level budget too small)" : "");
}

void BaselineComparison() {
  // The streaming sketch vs the offline Benczur-Karger importance sampler
  // it generalizes: cut error and output size at matched effective eps.
  Table table({"input", "method", "setting", "edges_out", "max_err",
               "avg_err"});
  struct Case {
    const char* name;
    Graph g;
  };
  std::vector<Case> cases;
  cases.push_back({"K14", CompleteGraph(14)});
  cases.push_back({"2 cliques + belt", [] {
                     Graph g(14);
                     for (VertexId base : {VertexId{0}, VertexId{7}}) {
                       for (VertexId i = 0; i < 7; ++i) {
                         for (VertexId j = i + 1; j < 7; ++j) {
                           g.AddEdge(base + i, base + j);
                         }
                       }
                     }
                     g.AddEdge(0, 7);
                     g.AddEdge(6, 13);
                     return g;
                   }()});
  for (auto& c : cases) {
    Hypergraph h = Hypergraph::FromGraph(c.g);
    // Offline BK at eps in {1.0, 0.5}.
    for (double eps : {1.0, 0.5}) {
      double max_err = 0, avg_err = 0, edges = 0;
      const int trials = 3;
      for (int t = 0; t < trials; ++t) {
        BkParams bp;
        bp.epsilon = eps;
        auto s = BenczurKargerSparsify(c.g, bp, 40 + t);
        auto rep = VerifySparsifier(h, s, 1.0);
        max_err += rep.stats.max_rel_error;
        avg_err += rep.stats.avg_rel_error;
        edges += static_cast<double>(s.size());
      }
      table.AddRow({c.name, "BK offline", "eps=" + Table::Fmt(eps, 1),
                    Table::Fmt(edges / trials, 1),
                    Table::Fmt(max_err / trials, 3),
                    Table::Fmt(avg_err / trials, 3)});
    }
    // Streaming sketch at matched k's.
    for (size_t k : {4, 12}) {
      double max_err = 0, avg_err = 0, edges = 0;
      const int trials = 3;
      for (int t = 0; t < trials; ++t) {
        SparsifierParams sp;
        sp.k = k;
        sp.levels = 9;
        sp.forest.config = SketchConfig::Light();
        HypergraphSparsifierSketch sketch(14, 2, sp, 60 + t);
        sketch.Process(DynamicStream::InsertOnly(h, t));
        auto out = sketch.ExtractSparsifier();
        if (!out.ok()) continue;
        auto rep = VerifySparsifier(h, out->sparsifier, 1.0);
        max_err += rep.stats.max_rel_error;
        avg_err += rep.stats.avg_rel_error;
        edges += static_cast<double>(out->sparsifier.size());
      }
      table.AddRow({c.name, "stream sketch", "k=" + Table::Fmt(uint64_t{k}),
                    Table::Fmt(edges / trials, 1),
                    Table::Fmt(max_err / trials, 3),
                    Table::Fmt(avg_err / trials, 3)});
    }
  }
  table.Print("Streaming sketch vs offline Benczur-Karger [6]");
  std::printf(
      "\nExpected shape: at matched error, the offline sampler (which sees "
      "strengths\nexactly and needs the whole graph) produces somewhat "
      "smaller outputs; the\nstreaming sketch pays a constant-factor size "
      "premium for one-pass dynamic\noperation and hypergraph "
      "generality.\n");
}

void EpsilonResolution() {
  Table table({"eps", "resolved_k", "resolved_levels(n=64)",
               "k(reparameterized)"});
  for (double eps : {2.0, 1.0, 0.5, 0.25}) {
    SparsifierParams p;
    p.epsilon = eps;
    p.k_constant = 0.5;
    size_t levels = p.ResolveLevels(64);
    size_t k = p.ResolveK(64, 3, levels);
    p.reparameterize = true;
    size_t k_rep = p.ResolveK(64, 3, levels);
    table.AddRow({Table::Fmt(eps, 2), Table::Fmt(uint64_t{k}),
                  Table::Fmt(uint64_t{levels}), Table::Fmt(uint64_t{k_rep})});
  }
  table.Print("Parameter resolution: k = O(eps^-2 (ln n + r)) (Theorem 20)");
  std::printf(
      "\nNote: Theorem 20's eps <- eps/(2l) re-parameterization inflates k "
      "quadratically\nin the level count -- the paper constants are for "
      "asymptotics, not laptops;\nbenches sweep k directly instead.\n");
}

}  // namespace
}  // namespace gms

int main() {
  gms::bench::Banner(
      "E10: hypergraph sparsification (Theorems 19 & 20)",
      "Nested half-samples + per-level light_k recovery yield a (1+eps) "
      "cut sparsifier from O(eps^-2 n polylog n) space.");
  gms::ErrorVsK();
  gms::RankSweep();
  gms::BaselineComparison();
  gms::LevelProfile();
  gms::EpsilonResolution();
  return 0;
}
