// Experiments E6 and E7 (Theorem 15, Lemma 16): light-edge recovery.
// Regenerates: sketch-vs-offline equality of light_k across families and k,
// recovered-fraction tables, layer counts, and the Lemma 16 cross-check of
// the definition-based peeling against the strength decomposition.
#include <algorithm>
#include <cstdio>
#include <set>

#include "bench_util.h"
#include "exact/strength.h"
#include "graph/generators.h"
#include "reconstruct/light_recovery.h"
#include "util/timer.h"

namespace gms {
namespace {

std::set<std::string> EdgeSet(const Hypergraph& h) {
  std::set<std::string> out;
  for (const auto& e : h.Edges()) out.insert(e.ToString());
  return out;
}

void SketchVsOffline() {
  Table table({"input", "n", "m", "k", "|light_k|", "sketch_match", "layers",
               "space"});
  struct Case {
    const char* name;
    Hypergraph h;
    size_t rank;
  };
  std::vector<Case> cases;
  cases.push_back({"tree+chords",
                   Hypergraph::FromGraph(RandomDDegenerate(24, 2, 1)), 2});
  cases.push_back({"G(20,.25)", Hypergraph::FromGraph(ErdosRenyi(20, 0.25, 2)),
                   2});
  cases.push_back({"clique+path", [] {
                     Graph g(14);
                     for (VertexId i = 0; i < 7; ++i) {
                       for (VertexId j = i + 1; j < 7; ++j) g.AddEdge(i, j);
                     }
                     for (VertexId i = 6; i + 1 < 14; ++i) g.AddEdge(i, i + 1);
                     return Hypergraph::FromGraph(g);
                   }(),
                   2});
  cases.push_back({"hyper r=3", RandomUniformHypergraph(16, 24, 3, 3), 3});
  for (auto& c : cases) {
    for (size_t k : {1, 2, 3}) {
      auto offline = OfflineLightEdges(c.h, k);
      LightRecoverySketch sketch(c.h.NumVertices(), c.rank, k, 400 + k);
      sketch.Process(DynamicStream::InsertOnly(c.h, k));
      auto rec = sketch.Recover();
      bool match =
          rec.ok() && EdgeSet(rec->light) == EdgeSet(offline.light) &&
          rec->residual_nonempty == (offline.residual.NumEdges() > 0);
      table.AddRow(
          {c.name, Table::Fmt(c.h.NumVertices()), Table::Fmt(c.h.NumEdges()),
           Table::Fmt(uint64_t{k}), Table::Fmt(offline.light.NumEdges()),
           match ? "yes" : "NO",
           rec.ok() ? Table::Fmt(rec->layers.size()) : "-",
           bench::Kb(sketch.MemoryBytes())});
    }
  }
  table.Print("Sketch-recovered light_k equals the offline set (Theorem 15)");
  std::printf(
      "\nExpected shape: sketch_match = yes in every row; |light_k| grows "
      "with k\nuntil it swallows the whole edge set.\n");
}

void Lemma16CrossCheck() {
  Table table({"n", "p", "k", "|light_k| (def)", "|k_e<=k| (strength)",
               "equal", "t_def(ms)", "t_strength(ms)"});
  for (size_t n : {16, 24, 32}) {
    for (size_t k : {1, 2, 3}) {
      Graph g = ErdosRenyi(n, 0.3, 500 + n + k);
      Timer t1;
      auto def = OfflineLightEdges(Hypergraph::FromGraph(g), k);
      double ms_def = t1.Millis();
      Timer t2;
      auto via_strength = LightEdgesViaStrength(g, k);
      double ms_str = t2.Millis();
      std::set<std::string> a = EdgeSet(def.light), b;
      for (const Edge& e : via_strength) b.insert(Hyperedge(e).ToString());
      table.AddRow({Table::Fmt(uint64_t{n}), "0.30", Table::Fmt(uint64_t{k}),
                    Table::Fmt(def.light.NumEdges()),
                    Table::Fmt(via_strength.size()), a == b ? "yes" : "NO",
                    Table::Fmt(ms_def, 1), Table::Fmt(ms_str, 1)});
    }
  }
  table.Print("Lemma 16: light_k = {e : strength <= k}");
  std::printf(
      "\nExpected shape: equal = yes in every row; the strength "
      "decomposition is the\nfaster route on graphs (global min cuts vs "
      "per-edge max-flows).\n");
}

void RecoveredFractionVsK() {
  // How much of a graph is light at threshold k: the quantity that governs
  // how much the Theorem 15 sketch reconstructs.
  Table table({"input", "k", "recovered_frac", "residual_m"});
  Hypergraph h = Hypergraph::FromGraph(ErdosRenyi(24, 0.3, 7));
  for (size_t k = 1; k <= 6; ++k) {
    auto offline = OfflineLightEdges(h, k);
    table.AddRow(
        {"G(24,.3)", Table::Fmt(uint64_t{k}),
         Table::Fmt(static_cast<double>(offline.light.NumEdges()) /
                        static_cast<double>(h.NumEdges()),
                    2),
         Table::Fmt(offline.residual.NumEdges())});
  }
  table.Print("Fraction of edges recovered vs k");
}

}  // namespace
}  // namespace gms

int main() {
  gms::bench::Banner(
      "E6/E7: light-edge recovery (Theorem 15, Lemma 16)",
      "One (k+1)-skeleton sketch, peeled deterministically, recovers "
      "light_k(G) -- the whole graph when G is k-cut-degenerate.");
  gms::SketchVsOffline();
  gms::Lemma16CrossCheck();
  gms::RecoveredFractionVsK();
  return 0;
}
