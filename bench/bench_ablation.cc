// Ablation study over the sketch design knobs called out in DESIGN.md:
// s-sparse capacity, hash rows, bucket load, and extra Borůvka rounds --
// charting decode success against space so the default configuration's
// position on the trade-off curve is visible, and isolating which knob
// buys what.
#include <cstdio>

#include "bench_util.h"
#include "connectivity/spanning_forest_sketch.h"
#include "graph/generators.h"
#include "graph/traversal.h"
#include "stream/stream.h"

namespace gms {
namespace {

double ForestSuccess(const SketchConfig& cfg, int rounds, size_t trials) {
  return bench::SuccessRate(trials, 12345, [&](uint64_t seed) {
    Graph g = ErdosRenyi(96, 0.06, seed);
    ForestSketchParams p;
    p.config = cfg;
    p.rounds = rounds;
    SpanningForestSketch sketch(96, 2, seed * 11 + 3, p);
    sketch.Process(DynamicStream::WithChurn(g, 200, seed + 1));
    auto span = sketch.ExtractSpanningGraph();
    return span.ok() && ConnectedComponents(*span) == ConnectedComponents(g);
  });
}

void CapacityAblation() {
  Table table({"capacity", "rows", "buckets/cap", "rounds", "success",
               "bytes/vertex"});
  const size_t trials = 10;
  for (int capacity : {1, 2, 3, 4, 6}) {
    SketchConfig cfg;
    cfg.sparse_capacity = capacity;
    cfg.rows = 1;  // no redundancy: per-level decode lives on capacity alone
    // Bare ceil(log2 96) = 7 rounds: no slack to absorb sampler failures.
    double success = ForestSuccess(cfg, 7, trials);
    ForestSketchParams p;
    p.config = cfg;
    p.rounds = 7;
    SpanningForestSketch probe(96, 2, 1, p);
    table.AddRow({Table::Fmt(capacity), Table::Fmt(cfg.rows),
                  Table::Fmt(cfg.buckets_per_capacity), "7",
                  Table::Fmt(success, 2),
                  bench::Kb(probe.MemoryBytes() / 96)});
  }
  table.Print("Ablation: s-sparse capacity (rows=1, bare log2(n) rounds)");
}

void RowsAblation() {
  Table table({"capacity", "rows", "success", "bytes/vertex"});
  const size_t trials = 10;
  for (int rows : {1, 2, 3}) {
    SketchConfig cfg;
    cfg.sparse_capacity = 2;
    cfg.rows = rows;
    double success = ForestSuccess(cfg, 7, trials);
    ForestSketchParams p;
    p.config = cfg;
    p.rounds = 7;
    SpanningForestSketch probe(96, 2, 1, p);
    table.AddRow({Table::Fmt(cfg.sparse_capacity), Table::Fmt(rows),
                  Table::Fmt(success, 2),
                  bench::Kb(probe.MemoryBytes() / 96)});
  }
  table.Print("Ablation: peeling hash rows (capacity=2, bare rounds)");
}

void RoundsAblation() {
  Table table({"rounds", "success", "bytes/vertex"});
  const size_t trials = 10;
  for (int rounds : {3, 5, 7, 9, 11, 15}) {
    SketchConfig cfg = SketchConfig::Light();
    double success = ForestSuccess(cfg, rounds, trials);
    ForestSketchParams p;
    p.config = cfg;
    p.rounds = rounds;
    SpanningForestSketch probe(96, 2, 1, p);
    table.AddRow({Table::Fmt(rounds), Table::Fmt(success, 2),
                  bench::Kb(probe.MemoryBytes() / 96)});
  }
  table.Print("Ablation: Borůvka rounds (Light config; ceil(log2 96)=7)");
  std::printf(
      "\nFinding: the ROUND budget is the only binding knob -- success "
      "collapses below\n~log2(n) rounds (Borůvka cannot finish) and "
      "saturates just above it. Capacity\nand hash rows are robust even at "
      "their minima here: a component's summed\nsampler succeeds with "
      "constant probability per round regardless, and Borůvka\nabsorbs "
      "per-round misses. The Light/Default presets spend their bytes on\n"
      "rounds first, capacity second, rows last -- matching this curve.\n");
}

}  // namespace
}  // namespace gms

int main() {
  gms::bench::Banner(
      "Ablation: sketch design knobs (DESIGN.md section 3)",
      "Decode success vs space for the s-sparse capacity, hash rows, and "
      "Borůvka-round knobs of the forest sketch.");
  gms::CapacityAblation();
  gms::RowsAblation();
  gms::RoundsAblation();
  return 0;
}
