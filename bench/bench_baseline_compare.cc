// Experiment E12 (Section 1.1): the sketch vs the Eppstein et al.
// insert-only baseline. Regenerates: (a) insert-only space and correctness
// of both, (b) the baseline's failure rate under insert+delete streams
// engineered to delete stored certificate edges -- the phenomenon that
// motivates the paper -- while the sketch stays correct.
#include <cstdio>

#include "bench_util.h"
#include "exact/vertex_connectivity.h"
#include "graph/generators.h"
#include "util/random.h"
#include "vertexconn/eppstein_baseline.h"
#include "vertexconn/vc_estimator.h"

namespace gms {
namespace {

void InsertOnlyComparison() {
  Table table({"input", "n", "m", "k", "eppstein_edges", "eppstein_ok",
               "eppstein_bytes", "sketch_ok", "sketch_bytes"});
  struct Case {
    const char* name;
    Graph g;
  };
  std::vector<Case> cases;
  cases.push_back({"K24", CompleteGraph(24)});
  cases.push_back({"4xHam(32)", UnionOfHamiltonianCycles(32, 4, 1)});
  cases.push_back({"planted k=2", PlantedSeparator(32, 2, 2).graph});
  for (auto& c : cases) {
    size_t kappa = VertexConnectivity(c.g);
    for (size_t k : {2, 3}) {
      EppsteinCertificate cert(c.g.NumVertices(), k);
      cert.Process(DynamicStream::InsertOnly(c.g, k));
      bool epp_ok = cert.CertifiesKConnectivity() == (kappa >= k);
      VcEstimatorParams p;
      p.k = k;
      p.epsilon = 1.0;
      p.r_multiplier = 0.05;
      p.forest.config = SketchConfig::Light();
      VcEstimator est(c.g.NumVertices(), p, 100 + k);
      est.Process(DynamicStream::InsertOnly(c.g, k + 1));
      auto certified = est.IsAtLeastK();
      // One-sided comparison: certify iff kappa >= 2k, reject iff < k.
      bool sketch_ok = certified.ok() &&
                       (kappa >= 2 * k ? *certified : true) &&
                       (kappa < k ? !*certified : true);
      table.AddRow({c.name, Table::Fmt(c.g.NumVertices()),
                    Table::Fmt(c.g.NumEdges()), Table::Fmt(uint64_t{k}),
                    Table::Fmt(cert.StoredEdges()), epp_ok ? "yes" : "NO",
                    bench::Kb(cert.MemoryBytes()),
                    sketch_ok ? "yes" : "NO", bench::Kb(est.MemoryBytes())});
    }
  }
  table.Print("Insert-only streams: both approaches work; baseline is "
              "smaller");
  std::printf(
      "\nExpected shape: eppstein_ok = yes on insert-only input with "
      "O(kn) edges --\nfar below the sketch's polylog overhead. The sketch "
      "buys deletion-safety.\n");
}

void DeletionFailure() {
  Table table({"n", "k", "trials", "eppstein_wrong", "sketch_wrong"});
  for (size_t n : {16, 24}) {
    for (size_t k : {2, 3}) {
      size_t trials = 6, epp_wrong = 0, sketch_wrong = 0;
      for (uint64_t t = 0; t < trials; ++t) {
        Graph full = CompleteGraph(n);
        // Feed all inserts to both.
        EppsteinCertificate cert(n, k);
        DynamicStream inserts = DynamicStream::InsertOnly(full, t);
        cert.Process(inserts);
        VcEstimatorParams p;
        p.k = k;
        p.epsilon = 1.0;
        p.r_multiplier = 0.1;
        p.forest.config = SketchConfig::Light();
        VcEstimator est(n, p, 200 + t);
        est.Process(inserts);
        // Adversary deletes exactly the baseline's stored edges.
        Graph remaining = full;
        for (const Edge& e : cert.certificate().Edges()) {
          cert.Delete(e);
          est.Update(e, -1);
          remaining.RemoveEdge(e);
        }
        bool truth = IsKVertexConnected(remaining, k);
        if (cert.CertifiesKConnectivity() != truth) ++epp_wrong;
        // The sketch decision: certify means kappa >= k holds for sure.
        auto certified = est.IsAtLeastK();
        bool sketch_claim = certified.ok() && *certified;
        // Wrong if it certifies a <k-connected graph, or fails to certify
        // a 2k-connected one.
        size_t kappa = VertexConnectivity(remaining);
        if ((sketch_claim && kappa < k) ||
            (!sketch_claim && kappa >= 2 * k)) {
          ++sketch_wrong;
        }
      }
      table.AddRow({Table::Fmt(uint64_t{n}), Table::Fmt(uint64_t{k}),
                    Table::Fmt(uint64_t{trials}), Table::Fmt(epp_wrong),
                    Table::Fmt(sketch_wrong)});
    }
  }
  table.Print("Adversarial deletions: baseline fails, sketch survives");
  std::printf(
      "\nExpected shape: eppstein_wrong = trials (it deleted its whole "
      "certificate and\ncannot recall the dropped redundant edges); "
      "sketch_wrong = 0 (linearity makes\ndeletions exact).\n");
}

}  // namespace
}  // namespace gms

int main() {
  gms::bench::Banner(
      "E12: insert-only baseline vs linear sketches (Section 1.1)",
      "Eppstein et al. certificates are compact but unsound under "
      "deletions; linear sketches handle fully dynamic streams.");
  gms::InsertOnlyComparison();
  gms::DeletionFailure();
  return 0;
}
