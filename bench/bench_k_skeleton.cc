// Experiment E5 (Definition 11 / Theorem 14 / Lemma 12): k-skeleton
// sketches. Regenerates: cut-preservation min(|cut|, k) over enumerated and
// sampled cuts, skeleton sizes vs k, and the capped edge-connectivity
// readout for graphs and hypergraphs.
#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "connectivity/connectivity_query.h"
#include "connectivity/k_skeleton.h"
#include "exact/stoer_wagner.h"
#include "graph/generators.h"
#include "stream/stream.h"
#include "util/random.h"

namespace gms {
namespace {

// Fraction of sampled cuts where |delta_H(S)| >= min(|delta_G(S)|, k).
double CutPreservationRate(const Hypergraph& g, const Hypergraph& h, size_t k,
                           uint64_t seed, size_t samples = 400) {
  Rng rng(seed);
  size_t n = g.NumVertices(), ok = 0, total = 0;
  std::vector<bool> in_s(n);
  for (size_t t = 0; t < samples; ++t) {
    for (size_t v = 0; v < n; ++v) in_s[v] = rng.Bernoulli(0.5);
    size_t orig = g.CutSize(in_s);
    size_t skel = h.CutSize(in_s);
    ++total;
    ok += (skel >= std::min(orig, k) && skel <= orig) ? 1 : 0;
  }
  return static_cast<double>(ok) / static_cast<double>(total);
}

void SkeletonQuality() {
  Table table({"input", "n", "m", "k", "skeleton_m", "cut_preserved",
               "space"});
  struct Case {
    const char* name;
    Hypergraph h;
    size_t rank;
  };
  std::vector<Case> cases;
  cases.push_back({"K24", Hypergraph::FromGraph(CompleteGraph(24)), 2});
  cases.push_back(
      {"G(48,.2)", Hypergraph::FromGraph(ErdosRenyi(48, 0.2, 1)), 2});
  cases.push_back({"hyper r=3", RandomUniformHypergraph(32, 96, 3, 2), 3});
  for (auto& c : cases) {
    for (size_t k : {1, 2, 4, 6}) {
      KSkeletonSketch sketch(c.h.NumVertices(), c.rank, k, 100 + k);
      sketch.Process(DynamicStream::InsertOnly(c.h, k));
      auto skel = sketch.Extract();
      if (!skel.ok()) {
        table.AddRow({c.name, Table::Fmt(c.h.NumVertices()),
                      Table::Fmt(c.h.NumEdges()), Table::Fmt(uint64_t{k}),
                      "decode-fail", "-", "-"});
        continue;
      }
      double preserved =
          CutPreservationRate(c.h, *skel, k, 200 + k);
      table.AddRow({c.name, Table::Fmt(c.h.NumVertices()),
                    Table::Fmt(c.h.NumEdges()), Table::Fmt(uint64_t{k}),
                    Table::Fmt(skel->NumEdges()), Table::Fmt(preserved, 3),
                    bench::Kb(sketch.MemoryBytes())});
    }
  }
  table.Print("k-skeletons: min(cut, k) preservation (Theorem 14)");
  std::printf(
      "\nExpected shape: cut_preserved = 1.0 throughout; skeleton size "
      "grows ~k*(n-1)\nand space ~k x the single-forest sketch.\n");
}

void EdgeConnectivityReadout() {
  Table table({"input", "exact_lambda", "k", "sketch min(k,lambda)"});
  struct Case {
    const char* name;
    Graph g;
  };
  std::vector<Case> cases;
  cases.push_back({"cycle(32)", CycleGraph(32)});
  cases.push_back({"2xHam(32)", UnionOfHamiltonianCycles(32, 2, 5)});
  cases.push_back({"3xHam(32)", UnionOfHamiltonianCycles(32, 3, 6)});
  cases.push_back({"K16", CompleteGraph(16)});
  for (auto& c : cases) {
    size_t exact = EdgeConnectivity(c.g);
    for (size_t k : {2, 4, 8}) {
      EdgeConnectivityQuery q(c.g.NumVertices(), 2, k, 300 + k);
      q.Process(DynamicStream::InsertOnly(c.g, k));
      auto capped = q.EdgeConnectivityCapped();
      table.AddRow({c.name, Table::Fmt(exact), Table::Fmt(uint64_t{k}),
                    capped.ok() ? Table::Fmt(*capped) : "fail"});
    }
  }
  table.Print("Dynamic k-edge-connectivity via skeletons");
  std::printf(
      "\nExpected shape: sketch column equals min(k, exact_lambda) in every "
      "row.\n");
}

void PlantedHypergraphCuts() {
  Table table({"n", "r", "planted_cut", "k", "sketch min(k,lambda)"});
  for (size_t cut : {1, 2, 3}) {
    auto planted = PlantedHypergraphCut(24, 3, cut, 30, 40 + cut);
    for (size_t k : {2, 4}) {
      EdgeConnectivityQuery q(24, 3, k, 50 + cut * 10 + k);
      q.Process(DynamicStream::InsertOnly(planted.hypergraph, cut));
      auto capped = q.EdgeConnectivityCapped();
      table.AddRow({"24", "3", Table::Fmt(uint64_t{cut}),
                    Table::Fmt(uint64_t{k}),
                    capped.ok() ? Table::Fmt(*capped) : "fail"});
    }
  }
  table.Print("Hypergraph planted min cuts recovered (Section 4.1)");
}

}  // namespace
}  // namespace gms

int main() {
  gms::bench::Banner(
      "E5: k-skeleton sketches (Theorem 14, Lemma 12)",
      "k independent spanning-graph sketches preserve every cut up to "
      "min(cut, k), giving dynamic hypergraph k-edge-connectivity.");
  gms::SkeletonQuality();
  gms::EdgeConnectivityReadout();
  gms::PlantedHypergraphCuts();
  return 0;
}
