// Experiment E15 (substrate): the Jowhari-Saglam-Tardos L0 sampler.
// Reports (a) sample success rate and uniformity chi^2 across support
// sizes, (b) state size per configuration, and (c) google-benchmark timing
// of updates and samples.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <map>

#include "bench_util.h"
#include "kernel_compare.h"
#include "sketch/l0_sampler.h"
#include "util/random.h"
#include "util/table.h"

namespace gms {
namespace {

void AccuracyTable() {
  bench::Banner("E15: L0-sampler accuracy (JST substrate)",
                "Sample a nonzero coordinate of a dynamic vector; success "
                "rate and uniformity vs support size and config.");
  Table table({"config", "domain_bits", "support", "success", "chi2_norm",
               "state"});
  struct Cfg {
    const char* name;
    SketchConfig config;
  } cfgs[] = {{"Light", SketchConfig::Light()},
              {"Default", SketchConfig::Default()},
              {"Paper", SketchConfig::Paper()}};
  const u128 domain = u128{1} << 40;
  for (const auto& cfg : cfgs) {
    for (size_t support : {1, 8, 64, 512, 4096}) {
      size_t trials = 120, ok = 0;
      std::map<uint64_t, int> picks;
      size_t state_bytes = 0;
      for (uint64_t t = 0; t < trials; ++t) {
        L0Shape shape(domain, cfg.config, 9000 + t);
        L0State state(&shape);
        Rng rng(t);
        // Insert 2x the support, delete half (exercise deletions).
        std::vector<u128> keys;
        for (size_t i = 0; i < 2 * support; ++i) {
          u128 k = rng.Next() & ((u128{1} << 40) - 1);
          keys.push_back(k);
          state.Update(k, 1);
        }
        for (size_t i = support; i < keys.size(); ++i) {
          state.Update(keys[i], -1);
        }
        auto s = state.Sample();
        if (s.ok()) {
          ++ok;
          ++picks[static_cast<uint64_t>(s->index) % 17];
        }
        state_bytes = state.MemoryBytes();
      }
      // Chi^2 of the sampled index bucketed mod 17, normalized by dof.
      double chi2 = 0;
      if (ok > 0) {
        double expect = static_cast<double>(ok) / 17.0;
        for (int b = 0; b < 17; ++b) {
          double c = picks.count(b) ? picks[b] : 0;
          chi2 += (c - expect) * (c - expect) / expect;
        }
        chi2 /= 16.0;
      }
      table.AddRow({cfg.name, "40", Table::Fmt(uint64_t{support}),
                    Table::Fmt(static_cast<double>(ok) / trials, 3),
                    Table::Fmt(chi2, 2), bench::Kb(state_bytes)});
    }
  }
  table.Print("L0 sampler: success rate and uniformity");
  std::printf(
      "\nExpected shape: success ~1.0 at every support (the paper's whp "
      "guarantee);\nchi2_norm ~1.0 indicates uniform sampling.\n");
}

/// Old-vs-new per-update kernel timing (see kernel_compare.h), printed as
/// a table and mirrored machine-readably in BENCH_l0.json.
bench::KernelTimings KernelSection() {
  bench::Banner("E15b: update-kernel before/after",
                "Per-update arithmetic: binary exponentiation + `%` "
                "bucketing vs windowed power table + multiply-shift.");
  bench::KernelTimings kt = bench::CompareUpdateKernels();
  Table table({"kernel", "ns/update", "updates/s"});
  table.AddRow({"old (FpPow + %)", Table::Fmt(kt.old_ns, 1),
                bench::Rate(1e9 / kt.old_ns)});
  table.AddRow({"new (table + Lemire)", Table::Fmt(kt.new_ns, 1),
                bench::Rate(1e9 / kt.new_ns)});
  table.Print("s-sparse update kernel (3 rows x 16 buckets, 80-bit keys)");
  std::printf("\nkernel speedup: %.2fx over %zu updates\n", kt.speedup,
              kt.updates);
  return kt;
}

void WriteJson(const bench::KernelTimings& kt) {
  FILE* f = std::fopen("BENCH_l0.json", "w");
  if (f == nullptr) {
    std::printf("could not open BENCH_l0.json for writing\n");
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"l0_sampler\",\n");
  std::fprintf(f,
               "  \"kernel\": {\"old_ns_per_update\": %.2f, "
               "\"new_ns_per_update\": %.2f, "
               "\"old_updates_per_sec\": %.0f, "
               "\"new_updates_per_sec\": %.0f, "
               "\"speedup\": %.3f, \"updates\": %zu}\n",
               kt.old_ns, kt.new_ns, 1e9 / kt.old_ns, 1e9 / kt.new_ns,
               kt.speedup, kt.updates);
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote BENCH_l0.json\n");
}

void BM_Update(benchmark::State& state) {
  u128 domain = u128{1} << state.range(0);
  L0Shape shape(domain, SketchConfig::Default(), 1);
  L0State st(&shape);
  Rng rng(2);
  for (auto _ : state) {
    st.Update(rng.Next() & (domain - 1), 1);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Update)->Arg(20)->Arg(40)->Arg(80);

void BM_Sample(benchmark::State& state) {
  u128 domain = u128{1} << 40;
  L0Shape shape(domain, SketchConfig::Default(), 3);
  L0State st(&shape);
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) st.Update(rng.Next() & (domain - 1), 1);
  for (auto _ : state) {
    auto s = st.Sample();
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_Sample);

}  // namespace
}  // namespace gms

int main(int argc, char** argv) {
  gms::AccuracyTable();
  gms::WriteJson(gms::KernelSection());
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
