// Experiment E16 (extension; Section 4.1 remark): vertex-removal queries
// on HYPERGRAPHS. Regenerates: query accuracy vs subsample count on
// planted hypergraph separators under induced semantics, rank sweeps, and
// space accounting -- the Theorem 4 construction with Theorem 13's sketch
// substituted, exactly as the paper prescribes.
#include <cstdio>

#include "bench_util.h"
#include "graph/generators.h"
#include "graph/traversal.h"
#include "util/random.h"
#include "vertexconn/hyper_vc_query.h"

namespace gms {
namespace {

void AccuracySweep() {
  Table table({"n", "r", "k", "R", "sep_found", "rand_acc", "space"});
  for (size_t r : {3, 4}) {
    for (size_t k : {2, 3}) {
      size_t n = 32;
      for (size_t explicit_r : {4, 12, 36, 100}) {
        size_t trials = 4;
        double sep = 0, acc = 0;
        size_t bytes = 0;
        for (uint64_t t = 0; t < trials; ++t) {
          auto planted =
              PlantedHypergraphSeparator(n, k, r, 1000 + 10 * k + t);
          const VcQueryParams p =
              VcQueryParams::Builder()
                  .K(k)
                  .ExplicitR(explicit_r)
                  .Forest(ForestSketchParams::Builder()
                              .Config(SketchConfig::Light())
                              .Build())
                  .Build();
          HyperVcQuerySketch sketch(n, r, p, 2000 + t);
          sketch.Process(DynamicStream::WithChurn(
              planted.hypergraph, planted.hypergraph.NumEdges() / 2, r,
              3000 + t));
          auto q = sketch.Query();
          if (!q.ok()) continue;
          const HyperVcUnionSnapshot& snap = q.value();
          bytes = sketch.MemoryBytes();
          auto hit = snap.Disconnects(planted.separator);
          sep += (hit.ok() && *hit) ? 1 : 0;
          Rng rng(4000 + t);
          size_t agree = 0, total = 0;
          for (int q = 0; q < 6; ++q) {
            std::vector<VertexId> s;
            while (s.size() < k) {
              VertexId v = static_cast<VertexId>(rng.Below(n));
              bool dup = false;
              for (VertexId w : s) dup |= w == v;
              if (!dup) s.push_back(v);
            }
            auto got = snap.Disconnects(s);
            bool truth = !IsConnectedExcluding(planted.hypergraph, s);
            agree += (got.ok() && *got == truth) ? 1 : 0;
            ++total;
          }
          acc += static_cast<double>(agree) / static_cast<double>(total);
        }
        table.AddRow({Table::Fmt(uint64_t{n}), Table::Fmt(uint64_t{r}),
                      Table::Fmt(uint64_t{k}), Table::Fmt(uint64_t{explicit_r}),
                      Table::Fmt(sep / trials, 2), Table::Fmt(acc / trials, 2),
                      bench::Kb(bytes)});
      }
    }
  }
  table.Print("Hypergraph vertex-removal queries vs R (Theorem 4 + 13)");
  std::printf(
      "\nExpected shape: same transition as the graph case -- accuracy "
      "reaches 1.0 at\na small R; induced semantics (a removed vertex kills "
      "whole hyperedges) come\nfor free because that is exactly how "
      "hyperedges enter the subsamples.\n");
}

void RankSpace() {
  Table table({"r", "n", "R", "bytes", "bytes_vs_r2"});
  size_t base = 0;
  for (size_t r : {2, 3, 4, 5}) {
    size_t n = 32;
    VcQueryParams p;
    p.k = 2;
    p.explicit_r = 16;
    p.forest.config = SketchConfig::Light();
    HyperVcQuerySketch sketch(n, r, p, 1);
    if (r == 2) base = sketch.MemoryBytes();
    table.AddRow({Table::Fmt(uint64_t{r}), Table::Fmt(uint64_t{n}), "16",
                  bench::Kb(sketch.MemoryBytes()),
                  Table::Fmt(static_cast<double>(sketch.MemoryBytes()) /
                                 static_cast<double>(base),
                             2)});
  }
  table.Print("Space vs hyperedge rank (domain grows, levels ~ r log n)");
}

}  // namespace
}  // namespace gms

int main() {
  gms::bench::Banner(
      "E16 (extension): hypergraph vertex connectivity (Section 4.1 remark)",
      "Substituting the Theorem 13 sketch into the Theorem 4 construction "
      "gives vertex-removal queries on hypergraphs, unchanged.");
  gms::AccuracySweep();
  gms::RankSpace();
  return 0;
}
