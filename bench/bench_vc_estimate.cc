// Experiment E4 (Theorem 6 / Corollary 7 / Theorem 8): vertex-connectivity
// estimation. Regenerates: kappa(H) vs kappa(G) across graph families and
// subsample budgets, and the decision quality separating (1+eps)k-connected
// from <k-connected inputs.
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "exact/vertex_connectivity.h"
#include "graph/generators.h"
#include "vertexconn/vc_estimator.h"

namespace gms {
namespace {

void KappaRecovery() {
  Table table(
      {"family", "n", "kappa(G)", "k", "R", "kappa(H)", "certified", "space"});
  struct Case {
    const char* name;
    Graph g;
  };
  size_t n = 48;
  std::vector<Case> cases;
  cases.push_back({"planted k=2", PlantedSeparator(n, 2, 1).graph});
  cases.push_back({"planted k=4", PlantedSeparator(n, 4, 2).graph});
  cases.push_back({"2xHam", UnionOfHamiltonianCycles(n, 2, 3)});
  cases.push_back({"4xHam", UnionOfHamiltonianCycles(n, 4, 4)});
  cases.push_back({"cycle", CycleGraph(n)});
  for (auto& c : cases) {
    size_t kappa_g = VertexConnectivity(c.g);
    for (size_t k : {2, 3}) {
      VcEstimatorParams p;
      p.k = k;
      p.epsilon = 1.0;
      p.r_multiplier = 0.05;
      p.forest.config = SketchConfig::Light();
      VcEstimator est(n, p, 10 * k + 5);
      est.Process(DynamicStream::InsertOnly(c.g, k));
      auto kappa_h = est.EstimateKappa();
      auto certified = est.IsAtLeastK();
      table.AddRow({c.name, Table::Fmt(uint64_t{n}), Table::Fmt(kappa_g),
                    Table::Fmt(uint64_t{k}), Table::Fmt(uint64_t{est.R()}),
                    kappa_h.ok() ? Table::Fmt(*kappa_h) : "fail",
                    certified.ok() ? (*certified ? "yes" : "no") : "fail",
                    bench::Kb(est.MemoryBytes())});
    }
  }
  table.Print("kappa(H) vs kappa(G) (Corollary 7)");
  std::printf(
      "\nExpected shape: kappa(H) <= kappa(G) always; certified=yes "
      "whenever kappa(G) >= 2k\n(the (1+eps)k threshold at eps=1), "
      "certified=no whenever kappa(G) < k.\n");
}

void DecisionSweep() {
  // Decision quality vs R multiplier: positives are 2k-connected graphs,
  // negatives have kappa < k.
  Table table({"k", "R_mult", "R", "true_pos", "true_neg"});
  size_t n = 40;
  for (size_t k : {2, 3}) {
    for (double mult : {0.01, 0.03, 0.1}) {
      size_t trials = 4;
      double tp = 0, tn = 0;
      size_t r = 0;
      for (uint64_t t = 0; t < trials; ++t) {
        VcEstimatorParams p;
        p.k = k;
        p.epsilon = 1.0;
        p.r_multiplier = mult;
        p.forest.config = SketchConfig::Light();
        // Positive: union of 2k Hamiltonian cycles (kappa ~ 2k or more).
        Graph pos = UnionOfHamiltonianCycles(n, 2 * k, 50 + t);
        VcEstimator est_pos(n, p, 60 + t);
        est_pos.Process(DynamicStream::InsertOnly(pos, t));
        auto cp = est_pos.IsAtLeastK();
        tp += (cp.ok() && *cp) ? 1 : 0;
        r = est_pos.R();
        // Negative: planted separator of size k-1.
        Graph neg = PlantedSeparator(n, k - 1, 70 + t).graph;
        VcEstimator est_neg(n, p, 80 + t);
        est_neg.Process(DynamicStream::InsertOnly(neg, t));
        auto cn = est_neg.IsAtLeastK();
        tn += (cn.ok() && !*cn) ? 1 : 0;
      }
      table.AddRow({Table::Fmt(uint64_t{k}), Table::Fmt(mult, 2),
                    Table::Fmt(uint64_t{r}), Table::Fmt(tp / trials, 2),
                    Table::Fmt(tn / trials, 2)});
    }
  }
  table.Print("Decision quality vs R (Theorem 8)");
  std::printf(
      "\nExpected shape: true_neg = 1.0 at every R (one-sided guarantee: H "
      "is a subgraph);\ntrue_pos -> 1.0 as R grows toward the paper's 160 "
      "k^2 ln(n)/eps.\n");
}

void SpaceScaling() {
  Table table({"n", "k", "eps", "R(paper)", "space@mult=0.02"});
  for (size_t n : {64, 128}) {
    for (double eps : {1.0, 0.5}) {
      VcEstimatorParams p;
      p.k = 2;
      p.epsilon = eps;
      p.r_multiplier = 1.0;
      size_t paper_r = p.ResolveR(n);
      p.r_multiplier = 0.02;
      VcEstimator est(n, p, 9);
      table.AddRow({Table::Fmt(uint64_t{n}), "2", Table::Fmt(eps, 2),
                    Table::Fmt(uint64_t{paper_r}),
                    bench::Kb(est.MemoryBytes())});
    }
  }
  table.Print("Space: O(k n eps^-1 polylog n) (Theorem 8)");
}

}  // namespace
}  // namespace gms

int main() {
  gms::bench::Banner(
      "E4: vertex-connectivity estimation (Theorems 6 & 8)",
      "Union of R = O(k^2 eps^-1 ln n) vertex-subsampled spanning forests "
      "distinguishes (1+eps)k-connected from <k-connected graphs.");
  gms::KappaRecovery();
  gms::DecisionSweep();
  gms::SpaceScaling();
  return 0;
}
