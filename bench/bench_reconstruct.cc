// Experiments E8 and E9 (Lemma 10, Becker et al. baseline vs Theorem 15):
// graph reconstruction. Regenerates: reconstruction success vs d for the
// row-sketch baseline and the cut-degenerate sketch, the Lemma 10 witness
// separation, and per-vertex space of both schemes.
#include <cstdio>

#include "bench_util.h"
#include "exact/degeneracy.h"
#include "graph/generators.h"
#include "reconstruct/cut_degenerate.h"
#include "reconstruct/row_reconstruct.h"

namespace gms {
namespace {

void SuccessVsD() {
  Table table({"input", "degeneracy", "lightcomp", "d", "becker_rows",
               "thm15_sketch"});
  struct Case {
    const char* name;
    Graph g;
  };
  std::vector<Case> cases;
  cases.push_back({"tree(24)", RandomTree(24, 1)});
  cases.push_back({"2-degen(24)", RandomDDegenerate(24, 2, 2)});
  cases.push_back({"3-degen(24)", RandomDDegenerate(24, 3, 3)});
  cases.push_back({"witness", Lemma10Witness()});
  cases.push_back({"G(16,.3)", ErdosRenyi(16, 0.3, 4)});
  for (auto& c : cases) {
    Hypergraph h = Hypergraph::FromGraph(c.g);
    size_t degen = Degeneracy(c.g);
    size_t lightcomp = c.g.NumEdges() ? LightCompleteness(h) : 0;
    for (size_t d = 1; d <= 4; ++d) {
      // Becker row sketch.
      RowReconstructSketch rows(c.g.NumVertices(), d, 600 + d);
      rows.Process(DynamicStream::InsertOnly(c.g, d));
      auto row_rec = rows.Reconstruct();
      bool row_ok = row_rec.ok() && *row_rec == c.g;
      // Theorem 15 sketch.
      CutDegenerateReconstructor thm15(c.g.NumVertices(), 2, d, 700 + d);
      thm15.Process(DynamicStream::InsertOnly(c.g, d + 1));
      auto t_rec = thm15.Reconstruct();
      bool t_ok =
          t_rec.ok() && t_rec->complete && t_rec->hypergraph.ToGraph() == c.g;
      table.AddRow({c.name, Table::Fmt(degen), Table::Fmt(lightcomp),
                    Table::Fmt(uint64_t{d}), row_ok ? "ok" : "fail",
                    t_ok ? "ok" : "fail"});
    }
  }
  table.Print("Reconstruction success vs d: Becker rows vs Theorem 15");
  std::printf(
      "\nExpected shape: the Becker baseline needs d >= degeneracy (peeling "
      "by degree);\nTheorem 15 succeeds already at d >= lightcomp <= "
      "cut-degeneracy -- strictly\nearlier on the witness family (row "
      "'witness': thm15 ok at d=2, a d the row\nsketch is not guaranteed "
      "at; its opportunistic peeling may still pass at\nthese tiny "
      "scales).\n");
}

void HypergraphReconstruction() {
  Table table({"input", "n", "m", "r", "d", "complete", "match"});
  struct Case {
    const char* name;
    Hypergraph h;
    size_t rank;
  };
  std::vector<Case> cases;
  cases.push_back({"hypercycle(16,3)", HyperCycle(16, 3), 3});
  cases.push_back({"sparse r=3", RandomUniformHypergraph(20, 20, 3, 5), 3});
  cases.push_back({"mixed 2..4", RandomHypergraph(18, 22, 2, 4, 6), 4});
  for (auto& c : cases) {
    size_t d = LightCompleteness(c.h);
    CutDegenerateReconstructor rec(c.h.NumVertices(), c.rank, d, 800);
    rec.Process(DynamicStream::InsertOnly(c.h, 7));
    auto r = rec.Reconstruct();
    table.AddRow({c.name, Table::Fmt(c.h.NumVertices()),
                  Table::Fmt(c.h.NumEdges()), Table::Fmt(uint64_t{c.rank}),
                  Table::Fmt(uint64_t{d}),
                  (r.ok() && r->complete) ? "yes" : "no",
                  (r.ok() && r->hypergraph == c.h) ? "yes" : "NO"});
  }
  table.Print("Hypergraph reconstruction at d = LightCompleteness");
}

void SpaceComparison() {
  Table table({"n", "d", "becker_bytes/vertex", "thm15_bytes/vertex"});
  for (size_t n : {32, 64, 128}) {
    for (size_t d : {1, 2, 4}) {
      RowReconstructSketch rows(n, d, 1);
      ForestSketchParams fp;
      fp.config = SketchConfig::Light();
      CutDegenerateReconstructor thm15(n, 2, d, 2, fp);
      table.AddRow({Table::Fmt(uint64_t{n}), Table::Fmt(uint64_t{d}),
                    bench::Kb(rows.MemoryBytes() / n),
                    bench::Kb(thm15.MemoryBytes() / n)});
    }
  }
  table.Print("Per-vertex space: both O(d polylog n), different constants");
  std::printf(
      "\nExpected shape: both columns grow linearly in d; the Theorem 15 "
      "sketch pays a\nlarger polylog factor (d+1 full forest sketches) for "
      "its strictly larger\nreconstructable class.\n");
}

}  // namespace
}  // namespace gms

int main() {
  gms::bench::Banner(
      "E8/E9: reconstruction (Lemma 10, Becker et al. vs Theorem 15)",
      "Row sketches reconstruct d-degenerate graphs; the cut-degeneracy "
      "sketch reconstructs the strictly larger d-cut-degenerate class.");
  gms::SuccessVsD();
  gms::HypergraphReconstruction();
  gms::SpaceComparison();
  return 0;
}
