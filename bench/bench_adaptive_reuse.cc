// Companion to Section 4.2's discussion: what adaptive reuse of ONE sketch
// actually does at laptop scale versus the k-independent construction.
// Charts full-reconstruction rate and ghost edges for both strategies as
// the per-sketch budget shrinks -- making visible that the independent
// construction degrades gracefully and detectably while adaptive reuse has
// no guarantee to degrade FROM.
#include <cstdio>

#include "bench_util.h"
#include "connectivity/k_skeleton.h"
#include "connectivity/spanning_forest_sketch.h"
#include "graph/generators.h"
#include "stream/stream.h"

namespace gms {
namespace {

struct PeelStats {
  double full_rate = 0;
  double ghost_avg = 0;
  double recovered_avg = 0;
};

PeelStats AdaptiveStats(const Graph& g, size_t layers,
                        const ForestSketchParams& p, size_t trials) {
  PeelStats out;
  for (uint64_t seed = 0; seed < trials; ++seed) {
    SpanningForestSketch sketch(g.NumVertices(), 2, 1000 + seed, p);
    sketch.Process(DynamicStream::InsertOnly(g, seed));
    Hypergraph recovered(g.NumVertices());
    for (size_t i = 0; i < layers; ++i) {
      auto span = sketch.ExtractSpanningGraph();
      if (!span.ok() || span->NumEdges() == 0) break;
      std::vector<Hyperedge> layer = span->Edges();
      sketch.RemoveHyperedges(layer);
      for (const auto& e : layer) recovered.AddEdge(e);
    }
    size_t ghosts = 0;
    for (const auto& e : recovered.Edges()) {
      if (!g.HasEdge(e.AsEdge())) ++ghosts;
    }
    out.ghost_avg += static_cast<double>(ghosts);
    out.recovered_avg += static_cast<double>(recovered.NumEdges() - ghosts);
    if (recovered.NumEdges() - ghosts == g.NumEdges() && ghosts == 0) {
      out.full_rate += 1;
    }
  }
  out.full_rate /= static_cast<double>(trials);
  out.ghost_avg /= static_cast<double>(trials);
  out.recovered_avg /= static_cast<double>(trials);
  return out;
}

PeelStats IndependentStats(const Graph& g, size_t layers,
                           const ForestSketchParams& p, size_t trials) {
  PeelStats out;
  for (uint64_t seed = 0; seed < trials; ++seed) {
    KSkeletonSketch sketch(g.NumVertices(), 2, layers, 2000 + seed, p);
    sketch.Process(DynamicStream::InsertOnly(g, seed));
    auto skel = sketch.Extract();
    size_t ghosts = 0, real = 0;
    if (skel.ok()) {
      for (const auto& e : skel->Edges()) {
        (g.HasEdge(e.AsEdge()) ? real : ghosts) += 1;
      }
    }
    out.ghost_avg += static_cast<double>(ghosts);
    out.recovered_avg += static_cast<double>(real);
    if (real == g.NumEdges() && ghosts == 0) out.full_rate += 1;
  }
  out.full_rate /= static_cast<double>(trials);
  out.ghost_avg /= static_cast<double>(trials);
  out.recovered_avg /= static_cast<double>(trials);
  return out;
}

void Compare() {
  Graph g = CompleteGraph(16);  // 120 edges; 15 layers reconstruct fully
  Table table({"budget", "rounds", "strategy", "full_rate", "avg_recovered",
               "avg_ghosts"});
  struct Budget {
    const char* name;
    ForestSketchParams p;
  };
  std::vector<Budget> budgets;
  {
    Budget b;
    b.name = "default";
    budgets.push_back(b);
  }
  {
    Budget b;
    b.name = "light";
    b.p.config = SketchConfig::Light();
    budgets.push_back(b);
  }
  {
    Budget b;
    b.name = "starved";
    b.p.config = SketchConfig::Light();
    b.p.rounds = 3;
    budgets.push_back(b);
  }
  {
    Budget b;
    b.name = "minimal";
    b.p.config = SketchConfig::Light();
    b.p.config.sparse_capacity = 1;
    b.p.config.rows = 1;
    b.p.rounds = 2;
    budgets.push_back(b);
  }
  const size_t trials = 6, layers = 15;
  for (const auto& b : budgets) {
    auto ad = AdaptiveStats(g, layers, b.p, trials);
    auto in = IndependentStats(g, layers, b.p, trials);
    int rounds = b.p.rounds;
    table.AddRow({b.name, rounds ? Table::Fmt(rounds) : std::string("auto"),
                  "adaptive-reuse", Table::Fmt(ad.full_rate, 2),
                  Table::Fmt(ad.recovered_avg, 1),
                  Table::Fmt(ad.ghost_avg, 1)});
    table.AddRow({b.name, rounds ? Table::Fmt(rounds) : std::string("auto"),
                  "k-independent", Table::Fmt(in.full_rate, 2),
                  Table::Fmt(in.recovered_avg, 1),
                  Table::Fmt(in.ghost_avg, 1)});
  }
  table.Print("Reconstructing K16 by 15 forest peels: one sketch reused vs "
              "15 independent");
  std::printf(
      "\nReading: at comfortable budgets both reconstruct (the exact-"
      "recovery layer is\nrobust to adaptivity at this scale; the paper's "
      "objection is that NO guarantee\nsurvives adaptivity). As the budget "
      "starves, both degrade -- but only the\nindependent construction "
      "retains a per-layer whp statement to degrade from.\n");
}

}  // namespace
}  // namespace gms

int main() {
  gms::bench::Banner(
      "Section 4.2 companion: adaptive sketch reuse",
      "Why Theorem 14 uses k independent sketches, and why Theorem 15 may "
      "reuse one (deterministic peel sets).");
  gms::Compare();
  return 0;
}
