// Experiment E14 (Section 2): the Becker et al. simultaneous-communication
// model. Regenerates: per-player message size vs n (polylog scaling),
// referee correctness across graph families, and hypergraph protocols.
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "comm/simultaneous.h"
#include "graph/generators.h"

namespace gms {
namespace {

void MessageScaling() {
  Table table({"n", "max_msg", "total", "max_msg/log^3(n)", "correct"});
  for (size_t n : {32, 64, 128, 256, 512}) {
    Hypergraph h = Hypergraph::FromGraph(
        ErdosRenyi(n, 3.0 * std::log(static_cast<double>(n)) / n, n));
    auto report = RunSimultaneousConnectivity(h, 42 + n);
    double log_n = std::log2(static_cast<double>(n));
    table.AddRow(
        {Table::Fmt(uint64_t{n}), bench::Kb(report.max_message_bytes),
         bench::Kb(report.total_bytes),
         Table::Fmt(static_cast<double>(report.max_message_bytes) /
                        (log_n * log_n * log_n),
                    1),
         report.correct ? "yes" : "NO"});
  }
  table.Print("One-round connectivity: message size vs n");
  std::printf(
      "\nExpected shape: per-player messages (measured serialized frames) "
      "grow\npolylogarithmically (the normalized column roughly flat), "
      "total = n x max;\ncorrect = yes throughout.\n");
}

void FamilyCorrectness() {
  Table table({"family", "n", "connected(exact)", "referee", "components"});
  struct Case {
    const char* name;
    Hypergraph h;
  };
  std::vector<Case> cases;
  cases.push_back({"cycle", Hypergraph::FromGraph(CycleGraph(64))});
  cases.push_back({"2 comps", [] {
                     Graph g(64);
                     for (VertexId i = 0; i + 1 < 32; ++i) g.AddEdge(i, i + 1);
                     for (VertexId i = 32; i + 1 < 64; ++i)
                       g.AddEdge(i, i + 1);
                     return Hypergraph::FromGraph(g);
                   }()});
  cases.push_back({"hypercycle r=4", HyperCycle(64, 4)});
  cases.push_back({"sparse random", Hypergraph::FromGraph(
                                        ErdosRenyi(64, 0.02, 9))});
  for (auto& c : cases) {
    auto report = RunSimultaneousConnectivity(c.h, 77);
    table.AddRow({c.name, "64", report.exact_connected ? "yes" : "no",
                  report.referee_answer_connected ? "yes" : "no",
                  Table::Fmt(report.referee_components)});
  }
  table.Print("Referee answers across families (graphs and hypergraphs)");
}

}  // namespace
}  // namespace gms

int main() {
  gms::bench::Banner(
      "E14: simultaneous-message protocols (Section 2, Becker et al. model)",
      "Vertex-based sketches = one message per player; the referee decodes "
      "connectivity from the n messages.");
  gms::MessageScaling();
  gms::FamilyCorrectness();
  return 0;
}
