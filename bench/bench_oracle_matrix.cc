// Experiment E9: the differential-oracle matrix as a measurement. Runs
// every testkit oracle over the default spec grid and reports, per oracle:
// applicable trial count, observed success rate with its 95% Wilson
// interval, honest decode-failure share vs silent disagreements, and
// trials/second (how much statistical power a CI minute buys). The same
// code path the `slow` test suite asserts on, reported as a table instead
// of a pass/fail bit.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "testkit/oracle.h"
#include "testkit/stream_spec.h"
#include "util/table.h"
#include "util/timer.h"

namespace gms {
namespace {

using testkit::AllOracles;
using testkit::DefaultSpecGrid;
using testkit::OracleKind;
using testkit::OracleName;
using testkit::OracleOptions;
using testkit::RunSweep;
using testkit::StreamSpec;
using testkit::SweepResult;
using testkit::WilsonInterval;

void OracleMatrix(size_t trials_per_spec) {
  Table table({"oracle", "specs", "trials", "success", "wilson95",
               "decode_fail", "disagree", "trials/s"});
  for (OracleKind kind : AllOracles()) {
    OracleOptions opt;
    // The sparsifier stack dominates wall clock; a third of the trials
    // still gives a usable interval for a bench table.
    size_t trials = kind == OracleKind::kSparsifier
                        ? (trials_per_spec + 2) / 3
                        : trials_per_spec;
    size_t specs = 0;
    SweepResult total;
    Timer timer;
    for (const StreamSpec& spec : DefaultSpecGrid()) {
      SweepResult sweep = RunSweep(kind, spec, trials, opt);
      if (sweep.trials == 0) continue;  // oracle inapplicable to family
      ++specs;
      total.trials += sweep.trials;
      total.successes += sweep.successes;
      total.decode_failures += sweep.decode_failures;
      total.disagreements += sweep.disagreements;
    }
    double secs = timer.Seconds();
    WilsonInterval w = total.interval();
    table.AddRow(
        {OracleName(kind), Table::Fmt(uint64_t{specs}),
         Table::Fmt(uint64_t{total.trials}),
         Table::Fmt(static_cast<double>(total.successes) /
                        static_cast<double>(total.trials ? total.trials : 1),
                    3),
         "[" + Table::Fmt(w.lo, 3) + "," + Table::Fmt(w.hi, 3) + "]",
         Table::Fmt(uint64_t{total.decode_failures}),
         Table::Fmt(uint64_t{total.disagreements}),
         bench::Rate(static_cast<double>(total.trials) /
                     (secs > 1e-9 ? secs : 1e-9))});
  }
  table.Print("Differential-oracle matrix over the default spec grid");
  std::printf(
      "\nExpected shape: success near 1.0 everywhere, disagreements == 0\n"
      "(a silent disagreement is a bug, not a whp failure event), and any\n"
      "misses showing up as honest decode failures.\n");
}

void StreamBuildThroughput() {
  Table table({"family x churn", "updates", "build/s", "updates/s"});
  for (const StreamSpec& spec : DefaultSpecGrid()) {
    constexpr size_t kReps = 20;
    size_t updates = 0;
    Timer timer;
    for (size_t r = 0; r < kReps; ++r) {
      updates += spec.WithTrial(r).Build().stream.size();
    }
    double secs = timer.Seconds();
    table.AddRow(
        {std::string(testkit::FamilyName(spec.family)) + " x " +
             testkit::ChurnName(spec.churn),
         Table::Fmt(uint64_t{updates / kReps}),
         bench::Rate(static_cast<double>(kReps) / (secs > 1e-9 ? secs : 1e-9)),
         bench::Rate(static_cast<double>(updates) /
                     (secs > 1e-9 ? secs : 1e-9))});
  }
  table.Print("StreamSpec::Build() generator throughput");
}

}  // namespace
}  // namespace gms

int main() {
  gms::bench::Banner(
      "E9: differential-oracle matrix",
      "Observed sketch-vs-exact agreement rates over the testkit spec "
      "grid, with Wilson intervals and generator throughput.");
  gms::OracleMatrix(/*trials_per_spec=*/12);
  gms::StreamBuildThroughput();
  return 0;
}
