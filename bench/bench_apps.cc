// Experiment: composed applications over the workload corpus (DESIGN.md
// §14).
//
// Three measurements, each against the real-graph-shaped generator
// families the workload layer added:
//
//   1. App throughput: TwoEdgeConnect (2 forest layers) and ApproxMinCut
//      (doubling skeleton ladder) ingest rates -- serial Update calls vs
//      the gutter driver fanning batches across every layer -- plus the
//      one-shot query cost.
//   2. Corpus replay: the same spec ingested from memory vs replayed from
//      its disk-resident GMSB file via the mmap'd reader threads
//      (DriveBinaryFileStream); the file path must hold most of the
//      in-memory rate, since records decode in place.
//   3. Bridge serving: sustained is_bridge wire queries/s against a
//      SketchServer skeleton snapshot (the BridgeIndex makes each query
//      one binary search).
//
// Results print as tables and land machine-readably in BENCH_apps.json.
//
// --apps_smoke: reduced workload, timing-free hard asserts; the AppsSmoke
// ctest (default + tsan presets) runs this mode:
//   - driver-ingested apps answer identically to serially ingested ones;
//   - file replay produces the same answers as in-memory ingestion;
//   - served is_bridge answers match exact Tarjan bridges of the final
//     graph for every queried pair.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "apps/approx_min_cut.h"
#include "apps/two_edge_connect.h"
#include "bench_util.h"
#include "graph/traversal.h"
#include "serve/serve_protocol.h"
#include "serve/sketch_server.h"
#include "stream/stream_driver.h"
#include "testkit/stream_spec.h"
#include "util/check.h"
#include "util/random.h"
#include "util/table.h"
#include "util/timer.h"
#include "workload/binary_stream.h"
#include "workload/spec_convert.h"

namespace gms {
namespace {

testkit::StreamSpec MakeSpec(testkit::Family family, size_t n, size_t m,
                             size_t decoys) {
  testkit::StreamSpec spec;
  spec.family = family;
  spec.n = n;
  spec.m = m;
  if (decoys > 0) {
    spec.churn = testkit::Churn::kWithChurn;
    spec.decoys = decoys;
  }
  return spec;
}

struct AppRow {
  std::string app;
  std::string family;
  size_t n = 0;
  size_t updates = 0;
  double shared_seconds = 0;       // prepare-once plane fan-out (Process)
  double independent_seconds = 0;  // every layer re-prepares for itself
  double driver_seconds = 0;
  double query_seconds = 0;
  size_t memory_bytes = 0;
};

template <typename App, typename MakeApp>
AppRow RunApp(const char* name, const testkit::StreamSpec& spec,
              const MakeApp& make_app) {
  AppRow row;
  row.app = name;
  row.family = testkit::FamilyName(spec.family);
  row.n = spec.n;

  testkit::BuiltStream built = spec.Build();
  const std::span<const StreamUpdate> updates(built.stream.updates());
  row.updates = updates.size();

  // prepare_once comparison: Process routes ONE encoded pass through the
  // shared ingest plane; ProcessIndependent is the pre-plane baseline
  // where each layer re-encodes every update. Both timings flow through
  // the shared best-of-3 helper, so the printed and JSON rows report the
  // same rep. The two paths land bit-identical state (gms_plane_tests),
  // so the query below may run on whichever ingested last.
  App app = make_app(built.max_rank);
  const bench::IngestTiming shared = bench::BestOfThreeIngest(&app, updates);
  row.shared_seconds = shared.best_secs;
  const bench::IngestTiming independent = bench::BestOfThree(
      [&] { app.Clear(); }, [&] { app.ProcessIndependent(updates); });
  row.independent_seconds = independent.best_secs;

  App driven = make_app(built.max_rank);
  GutterDriverParams dp;
  dp.readers = 2;
  dp.appliers = 2;
  const bench::IngestTiming driver = bench::BestOfThree(
      [&] { driven.Clear(); }, [&] { DriveStream(&driven, updates, dp); });
  row.driver_seconds = driver.best_secs;

  Timer t;
  auto answer = app.Query();
  row.query_seconds = t.Seconds();
  GMS_CHECK_MSG(answer.ok(), "apps bench: query failed");
  row.memory_bytes = app.MemoryBytes();
  return row;
}

struct CorpusRow {
  std::string family;
  size_t n = 0;
  size_t updates = 0;
  size_t file_bytes = 0;
  double memory_seconds = 0;
  double file_seconds = 0;
};

CorpusRow RunCorpus(const testkit::StreamSpec& spec, const std::string& dir,
                    uint64_t seed) {
  CorpusRow row;
  row.family = testkit::FamilyName(spec.family);
  row.n = spec.n;

  const std::string path =
      dir + "/bench_" + std::string(testkit::FamilyName(spec.family)) +
      ".gmsb";
  testkit::BuiltStream built;
  GMS_CHECK_MSG(workload::WriteSpecStreamFile(spec, path, &built).ok(),
                "apps bench: corpus write failed");
  auto file = workload::BinaryFileStream::Open(path);
  GMS_CHECK_MSG(file.ok(), "apps bench: corpus open failed");
  row.updates = built.stream.size();
  row.file_bytes = workload::kBinaryStreamHeaderBytes +
                   static_cast<size_t>(file->num_updates()) *
                       file->header().record_bytes;

  GutterDriverParams dp;
  dp.readers = 2;
  dp.appliers = 2;

  apps::TwoEdgeConnect mem(spec.n, built.max_rank, seed);
  Timer t;
  DriveStream(&mem, std::span<const StreamUpdate>(built.stream.updates()),
              dp);
  row.memory_seconds = t.Seconds();

  apps::TwoEdgeConnect disk(spec.n, built.max_rank, seed);
  t.Reset();
  workload::DriveBinaryFileStream(&disk, *file, dp);
  row.file_seconds = t.Seconds();

  // Identical pipeline, identical updates: the answers must agree exactly.
  auto a = mem.Query();
  auto b = disk.Query();
  GMS_CHECK_MSG(a.ok() == b.ok(), "apps bench: file vs memory ok mismatch");
  if (a.ok()) {
    GMS_CHECK_MSG(a.value().skeleton == b.value().skeleton,
                  "apps bench: file vs memory skeleton mismatch");
  }
  std::remove(path.c_str());
  return row;
}

struct BridgeRow {
  size_t n = 0;
  size_t updates = 0;
  uint64_t queries = 0;
  double queries_per_sec = 0;
};

BridgeRow RunBridgeServing(const testkit::StreamSpec& spec, size_t probes,
                           uint64_t seed, bool check_exact) {
  BridgeRow row;
  row.n = spec.n;
  testkit::BuiltStream built = spec.Build();
  row.updates = built.stream.size();

  serve::SketchServerParams params = serve::SketchServerParams::Builder()
                                         .MaxRank(built.max_rank)
                                         .SkeletonK(2)
                                         .Build();
  serve::SketchServer server(spec.n, params, seed);
  server.Ingest(built.stream);
  server.Flush();

  Hypergraph exact_bridges(spec.n, BridgeHyperedges(built.final_graph));
  Rng rng(Mix64(seed ^ 0x9e3779b97f4a7c15ULL));
  std::vector<uint8_t> req_buf, resp_buf;
  Timer t;
  for (size_t i = 0; i < probes; ++i) {
    req_buf.clear();
    resp_buf.clear();
    serve::ServeRequest req;
    req.op = serve::ServeOp::kIsBridge;
    req.u = rng.Next() % spec.n;
    req.v = rng.Next() % spec.n;
    serve::EncodeServeRequest(req, &req_buf);
    server.HandleFrame(req_buf, &resp_buf);
    auto resp = serve::DecodeServeResponse(resp_buf);
    GMS_CHECK_MSG(resp.ok() && resp->code == StatusCode::kOk,
                  "apps bench: is_bridge round-trip failed");
    if (check_exact) {
      const VertexId u = static_cast<VertexId>(req.u);
      const VertexId v = static_cast<VertexId>(req.v);
      const bool want =
          u != v && exact_bridges.HasEdge(Hyperedge(std::vector<VertexId>{
                        std::min(u, v), std::max(u, v)}));
      GMS_CHECK_MSG((resp->value != 0) == want,
                    "apps bench: is_bridge disagrees with Tarjan bridges");
    }
  }
  row.queries = probes;
  row.queries_per_sec = static_cast<double>(probes) / t.Seconds();
  return row;
}

void WriteJson(const std::vector<AppRow>& apps,
               const std::vector<CorpusRow>& corpus,
               const std::vector<BridgeRow>& bridges) {
  FILE* f = std::fopen("BENCH_apps.json", "w");
  if (f == nullptr) {
    std::printf("could not open BENCH_apps.json for writing\n");
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"apps\",\n  \"apps\": [\n");
  for (size_t i = 0; i < apps.size(); ++i) {
    const AppRow& r = apps[i];
    std::fprintf(
        f,
        "    {\"app\": \"%s\", \"family\": \"%s\", \"n\": %zu, "
        "\"updates\": %zu,\n"
        "     \"shared_seconds\": %.6f, \"independent_seconds\": %.6f,\n"
        "     \"prepare_once_speedup\": %.3f, \"driver_seconds\": %.6f,\n"
        "     \"query_seconds\": %.6f, \"memory_bytes\": %zu}%s\n",
        r.app.c_str(), r.family.c_str(), r.n, r.updates, r.shared_seconds,
        r.independent_seconds,
        r.independent_seconds / std::max(r.shared_seconds, 1e-9),
        r.driver_seconds, r.query_seconds, r.memory_bytes,
        i + 1 < apps.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"corpus\": [\n");
  for (size_t i = 0; i < corpus.size(); ++i) {
    const CorpusRow& r = corpus[i];
    std::fprintf(
        f,
        "    {\"family\": \"%s\", \"n\": %zu, \"updates\": %zu, "
        "\"file_bytes\": %zu,\n"
        "     \"memory_seconds\": %.6f, \"file_seconds\": %.6f}%s\n",
        r.family.c_str(), r.n, r.updates, r.file_bytes, r.memory_seconds,
        r.file_seconds, i + 1 < corpus.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"bridge_serving\": [\n");
  for (size_t i = 0; i < bridges.size(); ++i) {
    const BridgeRow& r = bridges[i];
    std::fprintf(f,
                 "    {\"n\": %zu, \"updates\": %zu, \"queries\": %llu, "
                 "\"queries_per_sec\": %.1f}%s\n",
                 r.n, r.updates, static_cast<unsigned long long>(r.queries),
                 r.queries_per_sec, i + 1 < bridges.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote BENCH_apps.json\n");
  bench::MirrorToRepoRoot("BENCH_apps.json");
}

int Run(bool smoke) {
  bench::Banner(
      "EXPERIMENT apps (DESIGN.md §14)",
      "Composed applications over the workload corpus: 2EC forest "
      "peeling, min-cut doubling ladder, disk replay, bridge serving.");

  const size_t n = smoke ? 64 : 4096;
  const size_t m = smoke ? 160 : 12288;
  const size_t decoys = smoke ? 64 : 2048;
  const size_t probes = smoke ? 512 : 20000;

  const std::vector<testkit::StreamSpec> specs = {
      MakeSpec(testkit::Family::kRmat, n, m, decoys),
      MakeSpec(testkit::Family::kRoadLike, n, /*m=*/4, 0),
      MakeSpec(testkit::Family::kTemporalChurn, n, m, 0),
  };

  std::vector<AppRow> app_rows;
  for (const auto& spec : specs) {
    app_rows.push_back(RunApp<apps::TwoEdgeConnect>(
        "two_edge_connect", spec, [&](size_t max_rank) {
          return apps::TwoEdgeConnect(spec.n, max_rank, /*seed=*/7);
        }));
    app_rows.push_back(RunApp<apps::ApproxMinCut>(
        "approx_min_cut", spec, [&](size_t max_rank) {
          return apps::ApproxMinCut(spec.n, max_rank, /*k_cap=*/4,
                                    /*seed=*/11);
        }));
  }

  // Smoke asserts: driver and serial ingestion agree per app. (The timing
  // rows above already built both; re-derive the comparison cheaply here
  // on the first spec so the assert is explicit and labeled.)
  {
    testkit::BuiltStream built = specs[0].Build();
    const std::span<const StreamUpdate> updates(built.stream.updates());
    apps::TwoEdgeConnect serial(specs[0].n, built.max_rank, 7);
    serial.Process(updates);
    apps::TwoEdgeConnect driven(specs[0].n, built.max_rank, 7);
    GutterDriverParams dp;
    dp.readers = 2;
    dp.appliers = 2;
    DriveStream(&driven, updates, dp);
    auto a = serial.Query();
    auto b = driven.Query();
    GMS_CHECK_MSG(a.ok() == b.ok(),
                  "apps bench: driver vs serial ok mismatch");
    if (a.ok()) {
      GMS_CHECK_MSG(a.value().skeleton == b.value().skeleton,
                    "apps bench: driver vs serial skeleton mismatch");
    }
    // prepare_once: the plane fan-out and the per-layer baseline must
    // answer identically too (the timing rows above compared their costs).
    apps::TwoEdgeConnect indep(specs[0].n, built.max_rank, 7);
    indep.ProcessIndependent(updates);
    auto c = indep.Query();
    GMS_CHECK_MSG(a.ok() == c.ok(),
                  "apps bench: plane vs independent ok mismatch");
    if (a.ok()) {
      GMS_CHECK_MSG(a.value().skeleton == c.value().skeleton,
                    "apps bench: plane vs independent skeleton mismatch");
    }
  }

  Table app_table({"app", "family", "n", "updates", "shared", "indep",
                   "prep1x", "driver@2", "query", "memory"});
  for (const AppRow& r : app_rows) {
    app_table.AddRow(
        {r.app, r.family, Table::Fmt(static_cast<uint64_t>(r.n)),
         Table::Fmt(static_cast<uint64_t>(r.updates)),
         bench::Rate(static_cast<double>(r.updates) / r.shared_seconds),
         bench::Rate(static_cast<double>(r.updates) / r.independent_seconds),
         Table::Fmt(r.independent_seconds / std::max(r.shared_seconds, 1e-9),
                    2),
         bench::Rate(static_cast<double>(r.updates) / r.driver_seconds),
         Table::Fmt(r.query_seconds * 1e3, 2) + "ms",
         bench::Kb(r.memory_bytes)});
  }
  app_table.Print(
      "app ingest + query throughput (shared = prepare-once plane, indep = "
      "per-layer re-prepare, prep1x = indep/shared)");

  const char* tmpdir = std::getenv("TMPDIR");
  const std::string dir = tmpdir != nullptr ? tmpdir : "/tmp";
  std::vector<CorpusRow> corpus_rows;
  for (const auto& spec : specs) {
    corpus_rows.push_back(RunCorpus(spec, dir, /*seed=*/13));
  }
  Table corpus_table(
      {"family", "n", "updates", "file", "memory", "mmap-file"});
  for (const CorpusRow& r : corpus_rows) {
    corpus_table.AddRow(
        {r.family, Table::Fmt(static_cast<uint64_t>(r.n)),
         Table::Fmt(static_cast<uint64_t>(r.updates)),
         bench::Kb(r.file_bytes),
         bench::Rate(static_cast<double>(r.updates) / r.memory_seconds),
         bench::Rate(static_cast<double>(r.updates) / r.file_seconds)});
  }
  corpus_table.Print("corpus replay: in-memory vs disk-resident (driver@2)");

  std::vector<BridgeRow> bridge_rows;
  bridge_rows.push_back(RunBridgeServing(
      MakeSpec(testkit::Family::kRoadLike, n, /*m=*/4, 0), probes,
      /*seed=*/17, /*check_exact=*/true));
  Table bridge_table({"n", "updates", "queries", "rate"});
  for (const BridgeRow& r : bridge_rows) {
    bridge_table.AddRow({Table::Fmt(static_cast<uint64_t>(r.n)),
                         Table::Fmt(static_cast<uint64_t>(r.updates)),
                         Table::Fmt(r.queries),
                         bench::Rate(r.queries_per_sec)});
  }
  bridge_table.Print("is_bridge wire serving (k = 2 skeleton snapshot)");

  WriteJson(app_rows, corpus_rows, bridge_rows);
  std::printf("\nall app asserts passed\n");
  return 0;
}

}  // namespace
}  // namespace gms

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--apps_smoke") == 0) smoke = true;
  }
  return gms::Run(smoke);
}
