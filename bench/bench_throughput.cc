// Cross-cutting timing: stream-update throughput and decode latency of
// every sketch in the library (google-benchmark). The paper's algorithms
// are "low polynomial time, typically linear in the number of edges"
// (Section 1.1); this charts the constants.
#include <benchmark/benchmark.h>

#include "connectivity/k_skeleton.h"
#include "connectivity/spanning_forest_sketch.h"
#include "graph/generators.h"
#include "reconstruct/light_recovery.h"
#include "reconstruct/row_reconstruct.h"
#include "sparsify/sparsifier_sketch.h"
#include "stream/stream.h"
#include "vertexconn/vc_query_sketch.h"

namespace gms {
namespace {

void BM_ForestSketchUpdate(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  SpanningForestSketch sketch(n, 2, 1);
  Graph g = UnionOfHamiltonianCycles(n, 2, 2);
  auto edges = g.Edges();
  size_t i = 0;
  for (auto _ : state) {
    sketch.Update(Hyperedge(edges[i % edges.size()]),
                  (i / edges.size()) % 2 == 0 ? +1 : -1);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ForestSketchUpdate)->Arg(256)->Arg(1024)->Arg(4096);

void BM_ForestSketchHyperedgeUpdate(benchmark::State& state) {
  size_t n = 512;
  size_t r = static_cast<size_t>(state.range(0));
  SpanningForestSketch sketch(n, r, 3);
  Hypergraph h = RandomUniformHypergraph(n, 512, r, 4);
  const auto& edges = h.Edges();
  size_t i = 0;
  for (auto _ : state) {
    sketch.Update(edges[i % edges.size()],
                  (i / edges.size()) % 2 == 0 ? +1 : -1);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ForestSketchHyperedgeUpdate)->Arg(2)->Arg(3)->Arg(4);

void BM_ForestDecode(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  SpanningForestSketch sketch(n, 2, 5);
  sketch.Process(
      DynamicStream::InsertOnly(UnionOfHamiltonianCycles(n, 2, 6), 7));
  for (auto _ : state) {
    auto span = sketch.ExtractSpanningGraph();
    benchmark::DoNotOptimize(span);
  }
}
BENCHMARK(BM_ForestDecode)->Arg(128)->Arg(512);

void BM_KSkeletonUpdate(benchmark::State& state) {
  size_t k = static_cast<size_t>(state.range(0));
  size_t n = 256;
  KSkeletonSketch sketch(n, 2, k, 8);
  Graph g = UnionOfHamiltonianCycles(n, 2, 9);
  auto edges = g.Edges();
  size_t i = 0;
  for (auto _ : state) {
    sketch.Update(Hyperedge(edges[i % edges.size()]),
                  (i / edges.size()) % 2 == 0 ? +1 : -1);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KSkeletonUpdate)->Arg(1)->Arg(4)->Arg(8);

void BM_VcQueryUpdate(benchmark::State& state) {
  size_t n = 128;
  VcQueryParams p;
  p.k = static_cast<size_t>(state.range(0));
  p.r_multiplier = 0.25;
  p.forest.config = SketchConfig::Light();
  VcQuerySketch sketch(n, p, 10);
  Graph g = UnionOfHamiltonianCycles(n, 2, 11);
  auto edges = g.Edges();
  size_t i = 0;
  for (auto _ : state) {
    sketch.Update(edges[i % edges.size()],
                  (i / edges.size()) % 2 == 0 ? +1 : -1);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_VcQueryUpdate)->Arg(2)->Arg(4);

void BM_RowSketchUpdate(benchmark::State& state) {
  size_t n = 1024;
  RowReconstructSketch sketch(n, static_cast<size_t>(state.range(0)), 12);
  Graph g = RandomDDegenerate(n, 3, 13);
  auto edges = g.Edges();
  size_t i = 0;
  for (auto _ : state) {
    sketch.Update(edges[i % edges.size()],
                  (i / edges.size()) % 2 == 0 ? +1 : -1);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RowSketchUpdate)->Arg(1)->Arg(4);

void BM_SparsifierUpdate(benchmark::State& state) {
  size_t n = 64;
  SparsifierParams p;
  p.k = 4;
  p.levels = 10;
  p.forest.config = SketchConfig::Light();
  HypergraphSparsifierSketch sketch(n, 3, p, 14);
  Hypergraph h = RandomUniformHypergraph(n, 256, 3, 15);
  const auto& edges = h.Edges();
  size_t i = 0;
  for (auto _ : state) {
    sketch.Update(edges[i % edges.size()],
                  (i / edges.size()) % 2 == 0 ? +1 : -1);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SparsifierUpdate);

void BM_LightRecoveryDecode(benchmark::State& state) {
  size_t n = 24;
  Graph g = RandomDDegenerate(n, 2, 16);
  LightRecoverySketch sketch(n, 2, 2, 17);
  sketch.Process(DynamicStream::InsertOnly(g, 18));
  for (auto _ : state) {
    auto r = sketch.Recover();
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_LightRecoveryDecode);

}  // namespace
}  // namespace gms

BENCHMARK_MAIN();
