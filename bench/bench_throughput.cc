// Cross-cutting timing: stream-update throughput and decode latency of
// every sketch in the library. The paper's algorithms are "low polynomial
// time, typically linear in the number of edges" (Section 1.1); this charts
// the constants. Two sections:
//   1. Serial-vs-parallel engine comparison (VcQuerySketch ingestion and
//      union-graph extraction across a thread sweep), emitted both as a
//      table and machine-readably as BENCH_throughput.json.
//   2. The per-sketch google-benchmark microbenchmarks.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "kernel_compare.h"
#include "connectivity/k_skeleton.h"
#include "connectivity/spanning_forest_sketch.h"
#include "graph/generators.h"
#include "reconstruct/light_recovery.h"
#include "reconstruct/row_reconstruct.h"
#include "sparsify/sparsifier_sketch.h"
#include "stream/ingest_plane.h"
#include "stream/stream.h"
#include "util/parallel.h"
#include "util/timer.h"
#include "vertexconn/vc_query_sketch.h"

namespace gms {
namespace {

// ---------- Section 1: parallel-engine throughput ----------

struct EngineRow {
  const char* mode = "column_sharded";
  size_t threads = 1;
  size_t readers = 0;       // gutter-driver rows only (0 = not a driver row)
  double ingest_secs = 0;
  double ingest_rate = 0;   // updates/s
  double extract_secs = 0;  // Finalize (BuildUnionGraph)
  ExtractStats stats;       // extraction-engine counters for that finalize
};

// Best-of-3 timing lives in bench_util.h (bench::IngestTiming /
// bench::BestOfThreeIngest) so every bench binary's printed and JSON
// ingest rows flow through the same helper.
using bench::BestOfThreeIngest;
using bench::IngestTiming;

/// The single constructor of an ingest row. The printed table and the
/// JSON emitter both read the fields this fills from ONE IngestTiming, so
/// the two outputs cannot disagree about which rep was reported.
EngineRow MakeIngestRow(const char* mode, size_t threads,
                        const IngestTiming& t, size_t updates) {
  EngineRow row;
  row.mode = mode;
  row.threads = threads;
  row.ingest_secs = t.best_secs;
  row.ingest_rate =
      static_cast<double>(updates) / std::max(t.best_secs, 1e-9);
  return row;
}

/// Serialized-frame size of the benchmarked sketch (bytes on the wire).
struct FrameSizeRow {
  size_t frame_bytes = 0;
  double bytes_per_vertex = 0;
};

/// One VcQuerySketch ingestion + finalize per (mode, thread-count) cell.
/// The sketch seed is identical across rows, so every row computes the
/// bit-identical state and union graph (the determinism and merge suites
/// assert this); only the wall clock may differ. Column-sharded rows shard
/// the R sketch columns; sharded-merge rows slice the stream into private
/// clones and tree-merge (threads x memory, but scales with stream length
/// instead of column count).
void ParallelEngineSection(std::vector<EngineRow>* rows, size_t* out_n,
                           size_t* out_updates, size_t* out_r,
                           FrameSizeRow* frame_row) {
  // ISSUE scale: n = 2^14, k = 4. R is held at a bench-friendly 16 (the
  // paper's 16 k^2 ln n would be ~2500); rounds fixed low so one row fits
  // in memory comfortably.
  constexpr size_t kN = 1 << 14;
  constexpr size_t kK = 4;
  VcQueryParams params;
  params.k = kK;
  params.explicit_r = 16;
  params.forest.config = SketchConfig::Light();
  params.forest.rounds = 3;

  Graph g = UnionOfHamiltonianCycles(kN, 3, /*seed=*/2);
  DynamicStream stream = DynamicStream::WithChurn(g, /*decoys=*/kN / 2, 3);
  *out_n = kN;
  *out_updates = stream.size();

  // Untimed warm-up: the first sketch constructed in the process pays the
  // one-off cost of faulting in ~GBs of fresh arena pages, which would
  // otherwise inflate every later row's "speedup" against the first cell.
  {
    VcQuerySketch warm(kN, params, /*seed=*/4);
    warm.Process(stream);
  }

  struct Cell {
    IngestMode mode;
    const char* name;
    size_t threads;
  };
  const Cell cells[] = {
      {IngestMode::kColumnSharded, "column_sharded", 1},
      {IngestMode::kColumnSharded, "column_sharded", 2},
      {IngestMode::kColumnSharded, "column_sharded", 4},
      {IngestMode::kColumnSharded, "column_sharded", 8},
      {IngestMode::kShardedMerge, "sharded_merge", 1},
      {IngestMode::kShardedMerge, "sharded_merge", 2},
      {IngestMode::kShardedMerge, "sharded_merge", 8},
  };
  Table table(
      {"mode", "threads", "ingest_s", "updates/s", "speedup", "finalize_s"});
  double serial_rate = 0;
  for (const Cell& cell : cells) {
    const VcQueryParams p = VcQueryParams::Builder(params)
                                .Mode(cell.mode)
                                .Threads(cell.threads)
                                .Build();
    VcQuerySketch sketch(kN, p, /*seed=*/4);
    *out_r = sketch.R();
    IngestTiming timing = BestOfThreeIngest(&sketch, stream);
    EngineRow row = MakeIngestRow(cell.name, cell.threads, timing,
                                  stream.size());
    if (frame_row->frame_bytes == 0) {
      frame_row->frame_bytes = sketch.SpaceBytes();
      frame_row->bytes_per_vertex =
          static_cast<double>(frame_row->frame_bytes) / kN;
    }
    Timer finalize;
    auto snap = sketch.Query();
    row.extract_secs = finalize.Seconds();
    if (snap.ok()) {
      row.stats = snap.stats();
    } else {
      std::printf("  (query failed at threads=%zu)\n", cell.threads);
    }
    if (serial_rate == 0) serial_rate = row.ingest_rate;
    rows->push_back(row);
    table.AddRow({cell.name, Table::Fmt(uint64_t{cell.threads}),
                  Table::Fmt(row.ingest_secs, 3), bench::Rate(row.ingest_rate),
                  Table::Fmt(row.ingest_rate / std::max(serial_rate, 1e-9), 2),
                  Table::Fmt(row.extract_secs, 3)});
  }
  table.Print("Parallel engine: VcQuerySketch ingest + finalize");
  std::printf(
      "\nwire frame: %zu bytes total, %.1f bytes/vertex (one VcQuery frame,\n"
      "R=%zu subsamples; the paper's space measure is per-vertex polylog)\n",
      frame_row->frame_bytes, frame_row->bytes_per_vertex, *out_r);
  std::printf(
      "\nExpected shape: identical outputs at every (mode, threads) cell\n"
      "(the determinism and merge suites assert bit-identity); column\n"
      "speedup tracks the machine's core count. sharded_merge@1 falls back\n"
      "to the serial column path by design; at >1 threads the epilogue is\n"
      "a dirty-column level-masked merge, so its cost scales with the\n"
      "updates each clone actually absorbed -- not with the arena -- and\n"
      "the mode stays at parity with serial even when the state dwarfs\n"
      "the stream (it used to collapse ~100x here).\n");
}

/// The sharded-merge sweet spot: a COMPACT sketch (small n, megabytes of
/// state) fed a LONG churn stream. Here the per-update column path is the
/// bottleneck and the clone+merge epilogue is noise, so slicing the stream
/// across workers scales with core count -- the inverse of the big-state
/// workload above. Same bit-identity guarantee applies.
void CompactStateSection(std::vector<EngineRow>* rows, size_t* out_n,
                         size_t* out_updates) {
  constexpr size_t kN = 256;
  Graph g = UnionOfHamiltonianCycles(kN, 3, /*seed=*/5);
  DynamicStream stream =
      DynamicStream::WithChurn(g, /*decoys=*/400 * kN, /*seed=*/6);
  *out_n = kN;
  *out_updates = stream.size();

  ForestSketchParams params;
  params.config = SketchConfig::Light();
  {
    SpanningForestSketch warm(kN, 2, /*seed=*/7, params);  // untimed warm-up
    warm.Process(stream);
  }
  Table table({"mode", "threads", "ingest_s", "updates/s", "speedup"});
  double serial_rate = 0;
  struct Cell {
    IngestMode mode;
    const char* name;
    size_t threads;
  };
  const Cell cells[] = {
      {IngestMode::kColumnSharded, "column_sharded", 1},
      {IngestMode::kShardedMerge, "sharded_merge", 2},
      {IngestMode::kShardedMerge, "sharded_merge", 8},
  };
  for (const Cell& cell : cells) {
    const ForestSketchParams p = ForestSketchParams::Builder(params)
                                     .Mode(cell.mode)
                                     .Threads(cell.threads)
                                     .Build();
    SpanningForestSketch sketch(kN, 2, /*seed=*/7, p);
    IngestTiming timing = BestOfThreeIngest(&sketch, stream);
    EngineRow row = MakeIngestRow(cell.name, cell.threads, timing,
                                  stream.size());
    if (serial_rate == 0) serial_rate = row.ingest_rate;
    rows->push_back(row);
    table.AddRow({cell.name, Table::Fmt(uint64_t{cell.threads}),
                  Table::Fmt(row.ingest_secs, 3), bench::Rate(row.ingest_rate),
                  Table::Fmt(row.ingest_rate / std::max(serial_rate, 1e-9),
                             2)});
  }
  table.Print("Compact-state workload: SpanningForestSketch, long churn");
  std::printf(
      "\nExpected shape: with %zu updates against only n=%zu vertices of\n"
      "state, the clone+merge epilogue is noise, so sharded_merge tracks\n"
      "the PHYSICAL core count (a single-core host shows ~1.0 plus a small\n"
      "merge tax at 8 clones). Pick it when the stream dwarfs the state,\n"
      "the column engine otherwise (DESIGN.md S8).\n",
      *out_updates, kN);
}

/// The gutter-driver section: the workload the driver exists for. ONE
/// spanning-forest sketch at n = 2^16 has a single state column, so the
/// column engine cannot shard anything and its thread-scaling curve is
/// flat by construction; sharded_merge scales but pays threads x the
/// arena. The driver splits the STREAM by destination vertex instead:
/// readers coalesce updates into per-vertex gutters, appliers replay full
/// gutters over each vertex's contiguous arena block (cache-resident
/// batch replay instead of a random-vertex DRAM walk). Rows: serial
/// column baseline, sharded_merge@8, driver at 1/2/8 appliers. All rows
/// compute the bit-identical state (checked here against the baseline's
/// serialized frame -- cheap insurance at bench scale).
void DriverEngineSection(std::vector<EngineRow>* rows, size_t* out_n,
                         size_t* out_updates) {
  constexpr size_t kN = 1 << 16;
  Graph g = UnionOfHamiltonianCycles(kN, 3, /*seed=*/8);
  DynamicStream stream = DynamicStream::WithChurn(g, /*decoys=*/kN, 9);
  *out_n = kN;
  *out_updates = stream.size();

  ForestSketchParams params;
  params.config = SketchConfig::Light();
  params.rounds = 3;
  {
    SpanningForestSketch warm(kN, 2, /*seed=*/10, params);  // untimed warm-up
    warm.Process(stream);
  }

  struct Cell {
    IngestMode mode;
    const char* name;
    size_t threads;
    size_t readers;  // driver cells only (0 = resolver default)
  };
  const Cell cells[] = {
      {IngestMode::kColumnSharded, "column_sharded", 1, 0},
      {IngestMode::kShardedMerge, "sharded_merge", 8, 0},
      {IngestMode::kGutterDriver, "driver", 1, 1},
      {IngestMode::kGutterDriver, "driver", 2, 1},
      {IngestMode::kGutterDriver, "driver", 8, 2},
  };
  Table table({"mode", "appliers", "readers", "ingest_s", "updates/s",
               "speedup"});
  double serial_rate = 0;
  std::vector<uint8_t> baseline_frame;
  bool identical = true;
  for (const Cell& cell : cells) {
    const ForestSketchParams p =
        ForestSketchParams::Builder(params)
            .Engine(EngineParams::Builder()
                        .Mode(cell.mode)
                        .Threads(cell.threads)
                        .DriverReaders(cell.readers)
                        .Build())
            .Build();
    SpanningForestSketch sketch(kN, 2, /*seed=*/10, p);
    IngestTiming timing = BestOfThreeIngest(&sketch, stream);
    EngineRow row = MakeIngestRow(cell.name, cell.threads, timing,
                                  stream.size());
    row.readers = cell.readers;
    if (baseline_frame.empty()) {
      sketch.Serialize(&baseline_frame);
    } else {
      std::vector<uint8_t> frame;
      sketch.Serialize(&frame);
      identical = identical && frame == baseline_frame;
    }
    if (serial_rate == 0) serial_rate = row.ingest_rate;
    rows->push_back(row);
    table.AddRow({cell.name, Table::Fmt(uint64_t{cell.threads}),
                  Table::Fmt(uint64_t{cell.readers}),
                  Table::Fmt(row.ingest_secs, 3), bench::Rate(row.ingest_rate),
                  Table::Fmt(row.ingest_rate / std::max(serial_rate, 1e-9),
                             2)});
  }
  table.Print("Gutter driver: SpanningForestSketch n=2^16 (single column, "
              "the flat-scaling workload)");
  std::printf(
      "\nall rows bit-identical to the serial baseline: %s\n"
      "\nExpected shape: column_sharded is flat here no matter the thread\n"
      "count (one column); driver speedup tracks the PHYSICAL core count\n"
      "granted to appliers + readers. On a single-core host the driver\n"
      "rows measure scheduler round-robin, not the design -- read them\n"
      "only on multi-core hardware (DESIGN.md S11).\n",
      identical ? "yes" : "NO (BUG)");
}

/// Space-vs-stream-density sweep for the hybrid sparse/dense vertex
/// representation (DESIGN.md S12). One spanning forest at n = 2^14; each
/// row streams an Erdős–Rényi graph whose expected degree is a fraction of
/// the sparse threshold, measured twice: the hybrid config (Light,
/// threshold 32) against a threshold-0 all-dense twin of the SAME stream.
/// Low fractions keep (nearly) every column in its exact sparse buffer, so
/// the serialized frame shrinks from the full arena to the buffered edges
/// and ingest skips the L0 kernel; the final row pushes every column past
/// the threshold, charting the escalated path's parity with dense.
struct SparseDensityRow {
  double fraction = 0;           // of the sparse threshold (expected degree)
  size_t updates = 0;
  double updates_per_vertex = 0;
  double sparse_vertex_frac = 0;  // still-sparse columns after the stream
  double hybrid_bytes_per_vertex = 0;
  double dense_bytes_per_vertex = 0;
  double hybrid_ns_per_update = 0;
  double dense_ns_per_update = 0;
};

void SparseDensitySection(std::vector<SparseDensityRow>* rows, size_t* out_n,
                          uint32_t* out_threshold) {
  constexpr size_t kN = 1 << 14;
  ForestSketchParams hybrid_params;
  hybrid_params.config = SketchConfig::Light();
  hybrid_params.rounds = 3;
  ForestSketchParams dense_params = hybrid_params;
  dense_params.config.sparse_threshold = 0;
  const uint32_t threshold = hybrid_params.config.sparse_threshold;
  *out_n = kN;
  *out_threshold = threshold;

  {
    SpanningForestSketch warm(kN, 2, /*seed=*/30, dense_params);  // untimed
    Graph wg = UnionOfHamiltonianCycles(kN, 2, 31);
    warm.Process(DynamicStream::InsertOnly(wg, 32));
  }

  // Expected degree = fraction x threshold; > 1 pushes every column dense.
  const double fractions[] = {0.01, 0.1, 0.5, 1.0, 2.5};
  Table table({"frac_of_T", "upd/vtx", "sparse%", "hyb_B/vtx", "dns_B/vtx",
               "space_x", "hyb_ns/upd", "dns_ns/upd", "ingest_x"});
  uint64_t seed = 33;
  for (double fraction : fractions) {
    const double p =
        std::min(1.0, fraction * threshold / static_cast<double>(kN - 1));
    Graph g = fraction * threshold > static_cast<double>(threshold)
                  ? UnionOfHamiltonianCycles(
                        kN, static_cast<size_t>(fraction * threshold / 2),
                        seed)
                  : ErdosRenyi(kN, p, seed);
    DynamicStream stream = DynamicStream::InsertOnly(g, seed + 1);
    seed += 2;
    if (stream.size() == 0) continue;

    SparseDensityRow row;
    row.fraction = fraction;
    row.updates = stream.size();
    row.updates_per_vertex =
        2.0 * static_cast<double>(stream.size()) / static_cast<double>(kN);

    SpanningForestSketch hybrid(kN, 2, /*seed=*/30, hybrid_params);
    IngestTiming ht = BestOfThreeIngest(&hybrid, stream);
    size_t sparse_vertices = 0;
    for (VertexId v = 0; v < kN; ++v) {
      sparse_vertices += hybrid.VertexEscalated(v) ? 0 : 1;
    }
    row.sparse_vertex_frac =
        static_cast<double>(sparse_vertices) / static_cast<double>(kN);
    row.hybrid_bytes_per_vertex =
        static_cast<double>(hybrid.SpaceBytes()) / static_cast<double>(kN);
    row.hybrid_ns_per_update =
        ht.best_secs * 1e9 / static_cast<double>(stream.size());

    SpanningForestSketch dense(kN, 2, /*seed=*/30, dense_params);
    IngestTiming dt = BestOfThreeIngest(&dense, stream);
    row.dense_bytes_per_vertex =
        static_cast<double>(dense.SpaceBytes()) / static_cast<double>(kN);
    row.dense_ns_per_update =
        dt.best_secs * 1e9 / static_cast<double>(stream.size());

    rows->push_back(row);
    table.AddRow(
        {Table::Fmt(row.fraction, 2), Table::Fmt(row.updates_per_vertex, 1),
         Table::Fmt(100.0 * row.sparse_vertex_frac, 1),
         Table::Fmt(row.hybrid_bytes_per_vertex, 1),
         Table::Fmt(row.dense_bytes_per_vertex, 1),
         Table::Fmt(row.dense_bytes_per_vertex /
                        std::max(row.hybrid_bytes_per_vertex, 1e-9),
                    1),
         Table::Fmt(row.hybrid_ns_per_update, 1),
         Table::Fmt(row.dense_ns_per_update, 1),
         Table::Fmt(row.dense_ns_per_update /
                        std::max(row.hybrid_ns_per_update, 1e-9),
                    2)});
  }
  table.Print("Hybrid sparse/dense: space + ingest vs stream density "
              "(one forest, n=2^14, threshold 32)");
  std::printf(
      "\nExpected shape: below fraction 1.0 (nearly) every column stays in\n"
      "its exact sparse buffer -- bytes/vertex collapses from the dense\n"
      "arena to ~24B per buffered edge and ingest skips the L0 kernel\n"
      "entirely. The last row crosses the threshold everywhere, so both\n"
      "columns pay the dense kernel and the ratios return to ~1x (the\n"
      "escalated fast path is the pre-hybrid dense path).\n");
}

/// Old-vs-new finalize engine, measured where the two paths share an API:
/// one SpanningForestSketch at a full round budget (default log2 n + extra,
/// where the window refills actually amortize). Times the incremental
/// extraction against the retained reference re-sum decoder, serial and
/// parallel, and checks all four Hypergraphs are bit-identical.
struct ExtractCompareRow {
  size_t n = 0;
  int rounds = 0;
  double inc_serial_secs = 0;
  double inc_parallel_secs = 0;
  double ref_serial_secs = 0;
  double ref_parallel_secs = 0;
  bool identical = false;
  ExtractStats inc_stats;  // incremental @8 (deterministic across threads)
  ExtractStats ref_stats;  // reference @8
};

void ExtractionEngineSection(ExtractCompareRow* out) {
  constexpr size_t kN = 1 << 13;
  ForestSketchParams params;
  params.config = SketchConfig::Light();  // rounds = 0: full default budget
  SpanningForestSketch sketch(kN, 2, /*seed=*/21, params);
  out->n = kN;
  out->rounds = sketch.rounds();
  Graph g = UnionOfHamiltonianCycles(kN, 3, /*seed=*/22);
  sketch.Process(DynamicStream::WithChurn(g, /*decoys=*/kN / 2, 23));
  (void)sketch.ExtractSpanningGraph(1);  // untimed warm-up

  Timer t_inc_s;
  auto inc_serial = sketch.ExtractSpanningGraph(1);
  out->inc_serial_secs = t_inc_s.Seconds();
  Timer t_inc_p;
  auto inc_parallel = sketch.ExtractSpanningGraph(8, &out->inc_stats);
  out->inc_parallel_secs = t_inc_p.Seconds();
  Timer t_ref_s;
  auto ref_serial = sketch.ExtractSpanningGraphReference(1);
  out->ref_serial_secs = t_ref_s.Seconds();
  Timer t_ref_p;
  auto ref_parallel = sketch.ExtractSpanningGraphReference(8, &out->ref_stats);
  out->ref_parallel_secs = t_ref_p.Seconds();
  out->identical = inc_serial.ok() && inc_parallel.ok() && ref_serial.ok() &&
                   ref_parallel.ok() && *inc_serial == *inc_parallel &&
                   *inc_serial == *ref_serial && *inc_serial == *ref_parallel;

  Table table({"path", "threads", "extract_s", "speedup_vs_ref",
               "summed_words"});
  double ref = out->ref_serial_secs;
  table.AddRow({"reference", "1", Table::Fmt(out->ref_serial_secs, 4),
                Table::Fmt(ref / std::max(out->ref_serial_secs, 1e-9), 2),
                Table::Fmt(out->ref_stats.summed_words)});
  table.AddRow({"reference", "8", Table::Fmt(out->ref_parallel_secs, 4),
                Table::Fmt(ref / std::max(out->ref_parallel_secs, 1e-9), 2),
                Table::Fmt(out->ref_stats.summed_words)});
  table.AddRow({"incremental", "1", Table::Fmt(out->inc_serial_secs, 4),
                Table::Fmt(ref / std::max(out->inc_serial_secs, 1e-9), 2),
                Table::Fmt(out->inc_stats.summed_words)});
  table.AddRow({"incremental", "8", Table::Fmt(out->inc_parallel_secs, 4),
                Table::Fmt(ref / std::max(out->inc_parallel_secs, 1e-9), 2),
                Table::Fmt(out->inc_stats.summed_words)});
  table.Print("Extraction engine: incremental window blocks vs reference "
              "re-sum (one forest, full round budget)");
  std::printf(
      "\nall four extractions bit-identical: %s\n"
      "(rounds budget %d, rounds run %d, early_exit %d; summed_words is the\n"
      "state volume each path touched -- the incremental win in a number)\n",
      out->identical ? "yes" : "NO (BUG)", out->rounds,
      out->inc_stats.rounds_run, out->inc_stats.early_exit ? 1 : 0);
}

/// Machine-readable mirror of the engine table for trend tracking, plus
/// the update-kernel before/after row (old = FpPow + `%` bucketing, new =
/// windowed power table + multiply-shift; see bench/kernel_compare.h).
void AppendGroupsPerRound(FILE* f, const ExtractStats& stats) {
  std::fprintf(f, "[");
  for (size_t i = 0; i < stats.groups_per_round.size(); ++i) {
    std::fprintf(f, "%s%llu", i ? ", " : "",
                 static_cast<unsigned long long>(stats.groups_per_round[i]));
  }
  std::fprintf(f, "]");
}

void WriteJson(const std::vector<EngineRow>& rows, size_t n, size_t updates,
               size_t r, const std::vector<EngineRow>& compact_rows,
               size_t compact_n, size_t compact_updates,
               const std::vector<EngineRow>& driver_rows, size_t driver_n,
               size_t driver_updates, const FrameSizeRow& frame,
               const ExtractCompareRow& extract,
               const std::vector<SparseDensityRow>& density_rows,
               size_t density_n, uint32_t density_threshold,
               const bench::KernelTimings& kt) {
  FILE* f = std::fopen("BENCH_throughput.json", "w");
  if (f == nullptr) {
    std::printf("could not open BENCH_throughput.json for writing\n");
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"throughput\",\n");
  std::fprintf(f, "  \"n\": %zu,\n  \"k\": 4,\n  \"r\": %zu,\n", n, r);
  std::fprintf(f, "  \"stream_updates\": %zu,\n  \"engine\": [\n", updates);
  for (size_t i = 0; i < rows.size(); ++i) {
    const EngineRow& row = rows[i];
    std::fprintf(f,
                 "    {\"mode\": \"%s\", \"threads\": %zu, "
                 "\"ingest_seconds\": %.6f, \"updates_per_sec\": %.1f, "
                 "\"finalize_seconds\": %.6f,\n"
                 "     \"finalize_breakdown\": {\"rounds_run\": %d, "
                 "\"early_exit\": %s, \"summed_words\": %llu, "
                 "\"sample_attempts\": %llu, \"decode_attempts\": %llu, "
                 "\"edges_found\": %llu, \"groups_per_round\": ",
                 row.mode, row.threads, row.ingest_secs, row.ingest_rate,
                 row.extract_secs, row.stats.rounds_run,
                 row.stats.early_exit ? "true" : "false",
                 static_cast<unsigned long long>(row.stats.summed_words),
                 static_cast<unsigned long long>(row.stats.sample_attempts),
                 static_cast<unsigned long long>(row.stats.decode_attempts),
                 static_cast<unsigned long long>(row.stats.edges_found));
    AppendGroupsPerRound(f, row.stats);
    std::fprintf(f, "}}%s\n", i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f,
               "  \"extraction_engine\": {\"n\": %zu, \"rounds\": %d, "
               "\"identical\": %s,\n"
               "    \"reference_serial_seconds\": %.6f, "
               "\"reference_parallel_seconds\": %.6f,\n"
               "    \"incremental_serial_seconds\": %.6f, "
               "\"incremental_parallel_seconds\": %.6f,\n"
               "    \"reference_summed_words\": %llu, "
               "\"incremental_summed_words\": %llu},\n",
               extract.n, extract.rounds, extract.identical ? "true" : "false",
               extract.ref_serial_secs, extract.ref_parallel_secs,
               extract.inc_serial_secs, extract.inc_parallel_secs,
               static_cast<unsigned long long>(extract.ref_stats.summed_words),
               static_cast<unsigned long long>(
                   extract.inc_stats.summed_words));
  std::fprintf(f,
               "  \"engine_compact_state\": {\"n\": %zu, "
               "\"stream_updates\": %zu, \"rows\": [\n",
               compact_n, compact_updates);
  for (size_t i = 0; i < compact_rows.size(); ++i) {
    const EngineRow& row = compact_rows[i];
    std::fprintf(f,
                 "    {\"mode\": \"%s\", \"threads\": %zu, "
                 "\"ingest_seconds\": %.6f, \"updates_per_sec\": %.1f}%s\n",
                 row.mode, row.threads, row.ingest_secs, row.ingest_rate,
                 i + 1 < compact_rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]},\n");
  std::fprintf(f,
               "  \"engine_driver\": {\"n\": %zu, "
               "\"stream_updates\": %zu, \"rows\": [\n",
               driver_n, driver_updates);
  for (size_t i = 0; i < driver_rows.size(); ++i) {
    const EngineRow& row = driver_rows[i];
    std::fprintf(f,
                 "    {\"mode\": \"%s\", \"threads\": %zu, "
                 "\"readers\": %zu, \"ingest_seconds\": %.6f, "
                 "\"updates_per_sec\": %.1f}%s\n",
                 row.mode, row.threads, row.readers, row.ingest_secs,
                 row.ingest_rate, i + 1 < driver_rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]},\n");
  std::fprintf(f,
               "  \"frame\": {\"bytes\": %zu, \"bytes_per_vertex\": %.2f},\n",
               frame.frame_bytes, frame.bytes_per_vertex);
  std::fprintf(f,
               "  \"sparse_density\": {\"n\": %zu, \"sparse_threshold\": %u, "
               "\"rows\": [\n",
               density_n, density_threshold);
  for (size_t i = 0; i < density_rows.size(); ++i) {
    const SparseDensityRow& row = density_rows[i];
    std::fprintf(
        f,
        "    {\"fraction_of_threshold\": %.2f, \"stream_updates\": %zu, "
        "\"updates_per_vertex\": %.2f, \"sparse_vertex_fraction\": %.4f,\n"
        "     \"hybrid_bytes_per_vertex\": %.2f, "
        "\"dense_bytes_per_vertex\": %.2f, "
        "\"hybrid_ingest_ns_per_update\": %.2f, "
        "\"dense_ingest_ns_per_update\": %.2f,\n"
        "     \"space_reduction\": %.2f, \"ingest_speedup\": %.3f}%s\n",
        row.fraction, row.updates, row.updates_per_vertex,
        row.sparse_vertex_frac, row.hybrid_bytes_per_vertex,
        row.dense_bytes_per_vertex, row.hybrid_ns_per_update,
        row.dense_ns_per_update,
        row.dense_bytes_per_vertex /
            std::max(row.hybrid_bytes_per_vertex, 1e-9),
        row.dense_ns_per_update / std::max(row.hybrid_ns_per_update, 1e-9),
        i + 1 < density_rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]},\n");
  std::fprintf(f,
               "  \"kernel\": {\"old_ns_per_update\": %.2f, "
               "\"new_ns_per_update\": %.2f, \"speedup\": %.3f}\n",
               kt.old_ns, kt.new_ns, kt.speedup);
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote BENCH_throughput.json\n");
  bench::MirrorToRepoRoot("BENCH_throughput.json");
}

/// The shared-ingestion-plane guard (`--plane_smoke`, also folded into
/// `--perf_smoke`): three same-codec forest consumers ingest one churn
/// stream twice -- independently (each consumer encodes, prepares, and
/// routes every update itself: the N-times re-prepare cost the plane
/// exists to delete) and through ONE IngestPlane pass. Hard-fails if
///   - the plane pass costs more than 1.15x the independent pass + 20ms
///     absolute slack (expected value is BELOW 1x -- the plane pays one
///     encode/route where independent pays three -- so any trip means the
///     per-consumer re-prepare crept back in, plus overhead on top), or
///   - any consumer's serialized frame differs between the two passes
///     (the fan-out broke bit-identity).
int PlaneGuard() {
  constexpr size_t kN = 1 << 12;
  Graph g = UnionOfHamiltonianCycles(kN, 3, /*seed=*/40);
  DynamicStream stream = DynamicStream::WithChurn(g, /*decoys=*/kN, 41);
  const std::span<const StreamUpdate> updates(stream.updates());
  ForestSketchParams params;
  params.config = SketchConfig::Light();
  params.rounds = 3;

  std::vector<SpanningForestSketch> consumers;
  consumers.reserve(3);
  for (uint64_t seed = 42; seed < 45; ++seed) {
    consumers.emplace_back(kN, 2, seed, params);
  }
  {
    // Untimed warm-up of both code paths (page faults, branch history).
    for (auto& c : consumers) c.Process(stream);
    for (auto& c : consumers) c.Clear();
    IngestPlane warm;
    for (auto& c : consumers) warm.Add(&c);
    warm.Process(updates);
    for (auto& c : consumers) c.Clear();
  }

  const auto clear_all = [&] {
    for (auto& c : consumers) c.Clear();
  };
  const IngestTiming independent = bench::BestOfThree(clear_all, [&] {
    for (auto& c : consumers) c.Process(stream);
  });
  std::vector<std::vector<uint8_t>> independent_frames(consumers.size());
  for (size_t i = 0; i < consumers.size(); ++i) {
    consumers[i].Serialize(&independent_frames[i]);
  }

  clear_all();
  IngestPlane plane;
  for (auto& c : consumers) plane.Add(&c);
  const IngestTiming shared = bench::BestOfThree(clear_all, [&] {
    plane.Process(updates);
  });

  const double ratio = shared.best_secs / std::max(independent.best_secs, 1e-9);
  std::printf(
      "plane_smoke: n=%zu updates=%zu consumers=%zu independent=%.4fs "
      "plane=%.4fs (%.2fx)\n",
      kN, stream.size(), consumers.size(), independent.best_secs,
      shared.best_secs, ratio);
  for (size_t i = 0; i < consumers.size(); ++i) {
    std::vector<uint8_t> frame;
    consumers[i].Serialize(&frame);
    if (frame != independent_frames[i]) {
      std::printf(
          "plane_smoke: FAIL (consumer %zu's plane-ingested frame diverges "
          "from its independently ingested frame)\n",
          i);
      return 1;
    }
  }
  const double limit = 1.15 * independent.best_secs + 0.02;
  if (shared.best_secs > limit) {
    std::printf(
        "plane_smoke: FAIL (one shared pass %.4fs exceeds 1.15x the "
        "independent passes + 20ms = %.4fs; the per-consumer re-prepare "
        "cost is back)\n",
        shared.best_secs, limit);
    return 1;
  }
  std::printf("plane_smoke: PASS (frames bit-identical, limit was %.4fs)\n",
              limit);
  return 0;
}

/// `--perf_smoke`: a CI-sized guard on the finalize path (the `perf_smoke`
/// ctest label, run in the tsan preset too). Ingests a reduced VcQuery
/// workload and HARD-FAILS if finalize costs more than 2x ingest (plus a
/// small absolute slack for timer jitter at this scale). Before the
/// incremental extraction engine, finalize ran ~6x ingest at bench scale,
/// so a regression back to per-round re-summing trips this immediately.
int PerfSmoke() {
  constexpr size_t kN = 1 << 12;
  const VcQueryParams params =
      VcQueryParams::Builder()
          .K(4)
          .ExplicitR(8)
          .Forest(ForestSketchParams::Builder()
                      .Config(SketchConfig::Light())
                      .Rounds(3)
                      .Build())
          .Build();
  Graph g = UnionOfHamiltonianCycles(kN, 3, /*seed=*/2);
  DynamicStream stream = DynamicStream::WithChurn(g, /*decoys=*/kN / 2, 3);
  {
    VcQuerySketch warm(kN, params, /*seed=*/4);  // untimed page-fault warm-up
    warm.Process(stream);
  }
  VcQuerySketch sketch(kN, params, /*seed=*/4);
  Timer ingest_timer;
  sketch.Process(stream);
  double ingest = ingest_timer.Seconds();
  Timer finalize_timer;
  auto snap = sketch.Query();
  double finalize = finalize_timer.Seconds();
  bool ok = snap.ok();
  const ExtractStats& stats = snap.stats();
  std::printf(
      "perf_smoke: n=%zu updates=%zu ingest=%.4fs finalize=%.4fs "
      "(ratio %.2fx, rounds_run=%d, summed_words=%llu)\n",
      kN, stream.size(), ingest, finalize, finalize / std::max(ingest, 1e-9),
      stats.rounds_run, static_cast<unsigned long long>(stats.summed_words));
  if (!ok) {
    std::printf("perf_smoke: FAIL (finalize returned an error)\n");
    return 1;
  }
  const double limit = 2.0 * ingest + 0.05;
  if (finalize > limit) {
    std::printf(
        "perf_smoke: FAIL (finalize %.4fs exceeds 2x ingest + 50ms = %.4fs; "
        "the extraction engine regressed)\n",
        finalize, limit);
    return 1;
  }
  // Timing-consistency guard: the printed table and the JSON emitter both
  // read the EngineRow that MakeIngestRow fills from ONE IngestTiming, so
  // the reported number must be the exact min over the reps and the rate
  // must invert back to it. A regression here means some emitter grew its
  // own timing arithmetic again and the two outputs can drift apart.
  {
    constexpr size_t kTinyN = 256;
    ForestSketchParams fp;
    fp.config = SketchConfig::Light();
    SpanningForestSketch tiny(kTinyN, 2, /*seed=*/5, fp);
    DynamicStream tiny_stream =
        DynamicStream::InsertOnly(UnionOfHamiltonianCycles(kTinyN, 2, 6), 7);
    IngestTiming t = BestOfThreeIngest(&tiny, tiny_stream);
    EngineRow row =
        MakeIngestRow("column_sharded", 1, t, tiny_stream.size());
    const double min_rep = std::min({t.reps[0], t.reps[1], t.reps[2]});
    const double rate = static_cast<double>(tiny_stream.size()) /
                        std::max(row.ingest_secs, 1e-9);
    if (row.ingest_secs != min_rep || row.ingest_rate != rate) {
      std::printf(
          "perf_smoke: FAIL (best-of-3 row disagrees with its reps: "
          "secs=%.9f min_rep=%.9f rate=%.3f expected=%.3f)\n",
          row.ingest_secs, min_rep, row.ingest_rate, rate);
      return 1;
    }
  }
  // All-dense ingest guard for the hybrid representation: on a stream
  // whose every column escalates within its first few updates, the hybrid
  // config must hold the threshold-0 path's throughput -- the escalated
  // fast path IS the pre-hybrid dense path (one saturated-counter branch),
  // so a regression here means the phase check leaked into the kernel
  // loop. 25% relative + 20ms absolute slack absorbs CI (and tsan) jitter;
  // expected value is parity.
  {
    constexpr size_t kDenseN = 1 << 12;
    Graph dg = UnionOfHamiltonianCycles(kDenseN, 20, /*seed=*/30);  // deg 40
    DynamicStream dense_stream = DynamicStream::InsertOnly(dg, 31);
    ForestSketchParams dense_p;
    dense_p.config = SketchConfig::Light();
    dense_p.config.sparse_threshold = 0;
    dense_p.rounds = 3;
    ForestSketchParams hybrid_p = dense_p;
    hybrid_p.config.sparse_threshold = 32;
    {
      SpanningForestSketch warm(kDenseN, 2, /*seed=*/32, dense_p);
      warm.Process(dense_stream);
    }
    SpanningForestSketch dense(kDenseN, 2, /*seed=*/32, dense_p);
    IngestTiming dense_t = BestOfThreeIngest(&dense, dense_stream);
    SpanningForestSketch hybrid(kDenseN, 2, /*seed=*/32, hybrid_p);
    IngestTiming hybrid_t = BestOfThreeIngest(&hybrid, dense_stream);
    std::printf(
        "perf_smoke: all-dense ingest threshold0=%.4fs hybrid=%.4fs "
        "(%.2fx)\n",
        dense_t.best_secs, hybrid_t.best_secs,
        dense_t.best_secs / std::max(hybrid_t.best_secs, 1e-9));
    if (hybrid_t.best_secs > 1.25 * dense_t.best_secs + 0.02) {
      std::printf(
          "perf_smoke: FAIL (hybrid all-dense ingest %.4fs exceeds 1.25x "
          "threshold-0 + 20ms = %.4fs; the sparse-phase check slowed the "
          "dense path)\n",
          hybrid_t.best_secs, 1.25 * dense_t.best_secs + 0.02);
      return 1;
    }
  }
  // Shared-plane guard: perf_smoke also owns the "one prepared pass beats
  // N independent re-prepares" contract (standalone as --plane_smoke).
  if (PlaneGuard() != 0) return 1;
  std::printf("perf_smoke: PASS (limit was %.4fs)\n", limit);
  return 0;
}

/// `--driver_smoke`: the gutter driver's CI guard (the `driver_smoke`
/// ctest label, part of the default suite). Small spanning-forest
/// workload, serial column path vs the driver at 2 appliers + 1 reader:
/// the serialized frames must be bit-identical (hard fail -- this is the
/// determinism contract on the exact binary that benches run), and on
/// hosts granting >= 2 CPUs the driver must not fall below 90% of serial
/// throughput (expected value is > 1x; the slack absorbs CI jitter).
/// Single-CPU hosts report the ratio without gating on it: two appliers
/// plus a reader round-robining one core measures the scheduler, not the
/// design.
int DriverSmoke() {
  constexpr size_t kN = 1 << 12;
  Graph g = UnionOfHamiltonianCycles(kN, 3, /*seed=*/2);
  DynamicStream stream = DynamicStream::WithChurn(g, /*decoys=*/kN, 3);
  ForestSketchParams params;
  params.config = SketchConfig::Light();
  params.rounds = 3;
  {
    SpanningForestSketch warm(kN, 2, /*seed=*/4, params);  // untimed warm-up
    warm.Process(stream);
  }
  SpanningForestSketch serial(kN, 2, /*seed=*/4, params);
  IngestTiming serial_t = BestOfThreeIngest(&serial, stream);

  const ForestSketchParams dp =
      ForestSketchParams::Builder(params)
          .Engine(EngineParams::Builder()
                      .Mode(IngestMode::kGutterDriver)
                      .Threads(2)
                      .DriverReaders(1)
                      .Build())
          .Build();
  SpanningForestSketch driver(kN, 2, /*seed=*/4, dp);
  IngestTiming driver_t = BestOfThreeIngest(&driver, stream);

  const double speedup =
      serial_t.best_secs / std::max(driver_t.best_secs, 1e-9);
  std::printf(
      "driver_smoke: n=%zu updates=%zu serial=%.4fs driver@2=%.4fs "
      "(%.2fx, %zu cpu)\n",
      kN, stream.size(), serial_t.best_secs, driver_t.best_secs, speedup,
      HardwareThreads());

  std::vector<uint8_t> serial_frame, driver_frame;
  serial.Serialize(&serial_frame);
  driver.Serialize(&driver_frame);
  if (serial_frame != driver_frame) {
    std::printf(
        "driver_smoke: FAIL (driver frame diverges from serial -- the "
        "driver broke bit-identity)\n");
    return 1;
  }
  if (HardwareThreads() >= 2 && speedup < 0.9) {
    std::printf(
        "driver_smoke: FAIL (driver ran at %.2fx serial on a %zu-cpu host; "
        "the batched replay regressed)\n",
        speedup, HardwareThreads());
    return 1;
  }
  std::printf("driver_smoke: PASS (frames bit-identical)\n");
  return 0;
}

// ---------- Section 2: per-sketch microbenchmarks ----------

void BM_ForestSketchUpdate(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  SpanningForestSketch sketch(n, 2, 1);
  Graph g = UnionOfHamiltonianCycles(n, 2, 2);
  auto edges = g.Edges();
  size_t i = 0;
  for (auto _ : state) {
    sketch.Update(Hyperedge(edges[i % edges.size()]),
                  (i / edges.size()) % 2 == 0 ? +1 : -1);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ForestSketchUpdate)->Arg(256)->Arg(1024)->Arg(4096);

void BM_ForestSketchHyperedgeUpdate(benchmark::State& state) {
  size_t n = 512;
  size_t r = static_cast<size_t>(state.range(0));
  SpanningForestSketch sketch(n, r, 3);
  Hypergraph h = RandomUniformHypergraph(n, 512, r, 4);
  const auto& edges = h.Edges();
  size_t i = 0;
  for (auto _ : state) {
    sketch.Update(edges[i % edges.size()],
                  (i / edges.size()) % 2 == 0 ? +1 : -1);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ForestSketchHyperedgeUpdate)->Arg(2)->Arg(3)->Arg(4);

void BM_ForestDecode(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  SpanningForestSketch sketch(n, 2, 5);
  sketch.Process(
      DynamicStream::InsertOnly(UnionOfHamiltonianCycles(n, 2, 6), 7));
  for (auto _ : state) {
    auto span = sketch.ExtractSpanningGraph();
    benchmark::DoNotOptimize(span);
  }
}
BENCHMARK(BM_ForestDecode)->Arg(128)->Arg(512);

void BM_KSkeletonUpdate(benchmark::State& state) {
  size_t k = static_cast<size_t>(state.range(0));
  size_t n = 256;
  KSkeletonSketch sketch(n, 2, k, 8);
  Graph g = UnionOfHamiltonianCycles(n, 2, 9);
  auto edges = g.Edges();
  size_t i = 0;
  for (auto _ : state) {
    sketch.Update(Hyperedge(edges[i % edges.size()]),
                  (i / edges.size()) % 2 == 0 ? +1 : -1);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KSkeletonUpdate)->Arg(1)->Arg(4)->Arg(8);

void BM_VcQueryUpdate(benchmark::State& state) {
  size_t n = 128;
  VcQueryParams p;
  p.k = static_cast<size_t>(state.range(0));
  p.r_multiplier = 0.25;
  p.forest.config = SketchConfig::Light();
  VcQuerySketch sketch(n, p, 10);
  Graph g = UnionOfHamiltonianCycles(n, 2, 11);
  auto edges = g.Edges();
  size_t i = 0;
  for (auto _ : state) {
    sketch.Update(edges[i % edges.size()],
                  (i / edges.size()) % 2 == 0 ? +1 : -1);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_VcQueryUpdate)->Arg(2)->Arg(4);

void BM_VcQueryBatchedProcess(benchmark::State& state) {
  // The batched path amortizes one codec Encode per update across all R
  // sketches; compare items/s against BM_VcQueryUpdate.
  size_t n = 128;
  const VcQueryParams p =
      VcQueryParams::Builder()
          .K(4)
          .RMultiplier(0.25)
          .Forest(
              ForestSketchParams::Builder().Config(SketchConfig::Light()).Build())
          .Threads(static_cast<size_t>(state.range(0)))
          .Build();
  Graph g = UnionOfHamiltonianCycles(n, 2, 11);
  DynamicStream stream = DynamicStream::WithChurn(g, n, 12);
  for (auto _ : state) {
    VcQuerySketch sketch(n, p, 10);
    sketch.Process(stream);
    benchmark::DoNotOptimize(sketch);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(stream.size()));
}
BENCHMARK(BM_VcQueryBatchedProcess)->Arg(1)->Arg(4);

void BM_RowSketchUpdate(benchmark::State& state) {
  size_t n = 1024;
  RowReconstructSketch sketch(n, static_cast<size_t>(state.range(0)), 12);
  Graph g = RandomDDegenerate(n, 3, 13);
  auto edges = g.Edges();
  size_t i = 0;
  for (auto _ : state) {
    sketch.Update(edges[i % edges.size()],
                  (i / edges.size()) % 2 == 0 ? +1 : -1);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RowSketchUpdate)->Arg(1)->Arg(4);

void BM_SparsifierUpdate(benchmark::State& state) {
  size_t n = 64;
  SparsifierParams p;
  p.k = 4;
  p.levels = 10;
  p.forest.config = SketchConfig::Light();
  HypergraphSparsifierSketch sketch(n, 3, p, 14);
  Hypergraph h = RandomUniformHypergraph(n, 256, 3, 15);
  const auto& edges = h.Edges();
  size_t i = 0;
  for (auto _ : state) {
    sketch.Update(edges[i % edges.size()],
                  (i / edges.size()) % 2 == 0 ? +1 : -1);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SparsifierUpdate);

void BM_LightRecoveryDecode(benchmark::State& state) {
  size_t n = 24;
  Graph g = RandomDDegenerate(n, 2, 16);
  LightRecoverySketch sketch(n, 2, 2, 17);
  sketch.Process(DynamicStream::InsertOnly(g, 18));
  for (auto _ : state) {
    auto r = sketch.Recover();
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_LightRecoveryDecode);

}  // namespace
}  // namespace gms

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--perf_smoke") return gms::PerfSmoke();
    if (std::string(argv[i]) == "--driver_smoke") return gms::DriverSmoke();
    if (std::string(argv[i]) == "--plane_smoke") return gms::PlaneGuard();
  }
  gms::bench::Banner(
      "E-throughput: update/decode constants + parallel engine",
      "Sharded-ownership parallel ingestion is bit-identical to serial; "
      "this measures what the extra threads buy.");
  std::vector<gms::EngineRow> rows;
  size_t n = 0, updates = 0, r = 0;
  gms::FrameSizeRow frame;
  gms::ParallelEngineSection(&rows, &n, &updates, &r, &frame);
  std::vector<gms::EngineRow> compact_rows;
  size_t compact_n = 0, compact_updates = 0;
  gms::CompactStateSection(&compact_rows, &compact_n, &compact_updates);
  std::vector<gms::EngineRow> driver_rows;
  size_t driver_n = 0, driver_updates = 0;
  gms::DriverEngineSection(&driver_rows, &driver_n, &driver_updates);
  gms::ExtractCompareRow extract;
  gms::ExtractionEngineSection(&extract);
  std::vector<gms::SparseDensityRow> density_rows;
  size_t density_n = 0;
  uint32_t density_threshold = 0;
  gms::SparseDensitySection(&density_rows, &density_n, &density_threshold);
  gms::bench::KernelTimings kt = gms::bench::CompareUpdateKernels();
  std::printf("\nupdate kernel: old %.1f ns -> new %.1f ns (%.2fx)\n",
              kt.old_ns, kt.new_ns, kt.speedup);
  gms::WriteJson(rows, n, updates, r, compact_rows, compact_n,
                 compact_updates, driver_rows, driver_n, driver_updates,
                 frame, extract, density_rows, density_n, density_threshold,
                 kt);

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
