// Cross-cutting timing: stream-update throughput and decode latency of
// every sketch in the library. The paper's algorithms are "low polynomial
// time, typically linear in the number of edges" (Section 1.1); this charts
// the constants. Two sections:
//   1. Serial-vs-parallel engine comparison (VcQuerySketch ingestion and
//      union-graph extraction across a thread sweep), emitted both as a
//      table and machine-readably as BENCH_throughput.json.
//   2. The per-sketch google-benchmark microbenchmarks.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "kernel_compare.h"
#include "connectivity/k_skeleton.h"
#include "connectivity/spanning_forest_sketch.h"
#include "graph/generators.h"
#include "reconstruct/light_recovery.h"
#include "reconstruct/row_reconstruct.h"
#include "sparsify/sparsifier_sketch.h"
#include "stream/stream.h"
#include "util/timer.h"
#include "vertexconn/vc_query_sketch.h"

namespace gms {
namespace {

// ---------- Section 1: parallel-engine throughput ----------

struct EngineRow {
  size_t threads = 1;
  double ingest_secs = 0;
  double ingest_rate = 0;   // updates/s
  double extract_secs = 0;  // Finalize (BuildUnionGraph)
};

/// One VcQuerySketch ingestion + finalize at each thread count. The sketch
/// seed is identical across rows, so every row computes the bit-identical
/// state and union graph (the determinism suite asserts this); only the
/// wall clock may differ.
void ParallelEngineSection(std::vector<EngineRow>* rows, size_t* out_n,
                           size_t* out_updates, size_t* out_r) {
  // ISSUE scale: n = 2^14, k = 4. R is held at a bench-friendly 16 (the
  // paper's 16 k^2 ln n would be ~2500); rounds fixed low so one row fits
  // in memory comfortably.
  constexpr size_t kN = 1 << 14;
  constexpr size_t kK = 4;
  VcQueryParams params;
  params.k = kK;
  params.explicit_r = 16;
  params.forest.config = SketchConfig::Light();
  params.forest.rounds = 3;

  Graph g = UnionOfHamiltonianCycles(kN, 3, /*seed=*/2);
  DynamicStream stream = DynamicStream::WithChurn(g, /*decoys=*/kN / 2, 3);
  *out_n = kN;
  *out_updates = stream.size();

  Table table({"threads", "ingest_s", "updates/s", "speedup", "finalize_s"});
  double serial_rate = 0;
  for (size_t threads : {1, 2, 4, 8}) {
    VcQueryParams p = params;
    p.threads = threads;
    VcQuerySketch sketch(kN, p, /*seed=*/4);
    *out_r = sketch.R();
    Timer ingest;
    sketch.Process(stream);
    EngineRow row;
    row.threads = threads;
    row.ingest_secs = ingest.Seconds();
    row.ingest_rate =
        static_cast<double>(stream.size()) / std::max(row.ingest_secs, 1e-9);
    Timer finalize;
    bool ok = sketch.Finalize().ok();
    row.extract_secs = finalize.Seconds();
    if (!ok) std::printf("  (finalize failed at threads=%zu)\n", threads);
    if (threads == 1) serial_rate = row.ingest_rate;
    rows->push_back(row);
    table.AddRow({Table::Fmt(uint64_t{threads}),
                  Table::Fmt(row.ingest_secs, 3), bench::Rate(row.ingest_rate),
                  Table::Fmt(row.ingest_rate / std::max(serial_rate, 1e-9), 2),
                  Table::Fmt(row.extract_secs, 3)});
  }
  table.Print("Parallel engine: VcQuerySketch ingest + finalize");
  std::printf(
      "\nExpected shape: identical outputs at every thread count (the\n"
      "determinism suite asserts bit-identity); speedup tracks the machine's\n"
      "core count (a single-core host shows ~1.0 throughout).\n");
}

/// Machine-readable mirror of the engine table for trend tracking, plus
/// the update-kernel before/after row (old = FpPow + `%` bucketing, new =
/// windowed power table + multiply-shift; see bench/kernel_compare.h).
void WriteJson(const std::vector<EngineRow>& rows, size_t n, size_t updates,
               size_t r, const bench::KernelTimings& kt) {
  FILE* f = std::fopen("BENCH_throughput.json", "w");
  if (f == nullptr) {
    std::printf("could not open BENCH_throughput.json for writing\n");
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"throughput\",\n");
  std::fprintf(f, "  \"n\": %zu,\n  \"k\": 4,\n  \"r\": %zu,\n", n, r);
  std::fprintf(f, "  \"stream_updates\": %zu,\n  \"engine\": [\n", updates);
  for (size_t i = 0; i < rows.size(); ++i) {
    const EngineRow& row = rows[i];
    std::fprintf(f,
                 "    {\"threads\": %zu, \"ingest_seconds\": %.6f, "
                 "\"updates_per_sec\": %.1f, \"finalize_seconds\": %.6f}%s\n",
                 row.threads, row.ingest_secs, row.ingest_rate,
                 row.extract_secs, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f,
               "  \"kernel\": {\"old_ns_per_update\": %.2f, "
               "\"new_ns_per_update\": %.2f, \"speedup\": %.3f}\n",
               kt.old_ns, kt.new_ns, kt.speedup);
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote BENCH_throughput.json\n");
}

// ---------- Section 2: per-sketch microbenchmarks ----------

void BM_ForestSketchUpdate(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  SpanningForestSketch sketch(n, 2, 1);
  Graph g = UnionOfHamiltonianCycles(n, 2, 2);
  auto edges = g.Edges();
  size_t i = 0;
  for (auto _ : state) {
    sketch.Update(Hyperedge(edges[i % edges.size()]),
                  (i / edges.size()) % 2 == 0 ? +1 : -1);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ForestSketchUpdate)->Arg(256)->Arg(1024)->Arg(4096);

void BM_ForestSketchHyperedgeUpdate(benchmark::State& state) {
  size_t n = 512;
  size_t r = static_cast<size_t>(state.range(0));
  SpanningForestSketch sketch(n, r, 3);
  Hypergraph h = RandomUniformHypergraph(n, 512, r, 4);
  const auto& edges = h.Edges();
  size_t i = 0;
  for (auto _ : state) {
    sketch.Update(edges[i % edges.size()],
                  (i / edges.size()) % 2 == 0 ? +1 : -1);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ForestSketchHyperedgeUpdate)->Arg(2)->Arg(3)->Arg(4);

void BM_ForestDecode(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  SpanningForestSketch sketch(n, 2, 5);
  sketch.Process(
      DynamicStream::InsertOnly(UnionOfHamiltonianCycles(n, 2, 6), 7));
  for (auto _ : state) {
    auto span = sketch.ExtractSpanningGraph();
    benchmark::DoNotOptimize(span);
  }
}
BENCHMARK(BM_ForestDecode)->Arg(128)->Arg(512);

void BM_KSkeletonUpdate(benchmark::State& state) {
  size_t k = static_cast<size_t>(state.range(0));
  size_t n = 256;
  KSkeletonSketch sketch(n, 2, k, 8);
  Graph g = UnionOfHamiltonianCycles(n, 2, 9);
  auto edges = g.Edges();
  size_t i = 0;
  for (auto _ : state) {
    sketch.Update(Hyperedge(edges[i % edges.size()]),
                  (i / edges.size()) % 2 == 0 ? +1 : -1);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KSkeletonUpdate)->Arg(1)->Arg(4)->Arg(8);

void BM_VcQueryUpdate(benchmark::State& state) {
  size_t n = 128;
  VcQueryParams p;
  p.k = static_cast<size_t>(state.range(0));
  p.r_multiplier = 0.25;
  p.forest.config = SketchConfig::Light();
  VcQuerySketch sketch(n, p, 10);
  Graph g = UnionOfHamiltonianCycles(n, 2, 11);
  auto edges = g.Edges();
  size_t i = 0;
  for (auto _ : state) {
    sketch.Update(edges[i % edges.size()],
                  (i / edges.size()) % 2 == 0 ? +1 : -1);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_VcQueryUpdate)->Arg(2)->Arg(4);

void BM_VcQueryBatchedProcess(benchmark::State& state) {
  // The batched path amortizes one codec Encode per update across all R
  // sketches; compare items/s against BM_VcQueryUpdate.
  size_t n = 128;
  VcQueryParams p;
  p.k = 4;
  p.r_multiplier = 0.25;
  p.forest.config = SketchConfig::Light();
  p.threads = static_cast<size_t>(state.range(0));
  Graph g = UnionOfHamiltonianCycles(n, 2, 11);
  DynamicStream stream = DynamicStream::WithChurn(g, n, 12);
  for (auto _ : state) {
    VcQuerySketch sketch(n, p, 10);
    sketch.Process(stream);
    benchmark::DoNotOptimize(sketch);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(stream.size()));
}
BENCHMARK(BM_VcQueryBatchedProcess)->Arg(1)->Arg(4);

void BM_RowSketchUpdate(benchmark::State& state) {
  size_t n = 1024;
  RowReconstructSketch sketch(n, static_cast<size_t>(state.range(0)), 12);
  Graph g = RandomDDegenerate(n, 3, 13);
  auto edges = g.Edges();
  size_t i = 0;
  for (auto _ : state) {
    sketch.Update(edges[i % edges.size()],
                  (i / edges.size()) % 2 == 0 ? +1 : -1);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RowSketchUpdate)->Arg(1)->Arg(4);

void BM_SparsifierUpdate(benchmark::State& state) {
  size_t n = 64;
  SparsifierParams p;
  p.k = 4;
  p.levels = 10;
  p.forest.config = SketchConfig::Light();
  HypergraphSparsifierSketch sketch(n, 3, p, 14);
  Hypergraph h = RandomUniformHypergraph(n, 256, 3, 15);
  const auto& edges = h.Edges();
  size_t i = 0;
  for (auto _ : state) {
    sketch.Update(edges[i % edges.size()],
                  (i / edges.size()) % 2 == 0 ? +1 : -1);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SparsifierUpdate);

void BM_LightRecoveryDecode(benchmark::State& state) {
  size_t n = 24;
  Graph g = RandomDDegenerate(n, 2, 16);
  LightRecoverySketch sketch(n, 2, 2, 17);
  sketch.Process(DynamicStream::InsertOnly(g, 18));
  for (auto _ : state) {
    auto r = sketch.Recover();
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_LightRecoveryDecode);

}  // namespace
}  // namespace gms

int main(int argc, char** argv) {
  gms::bench::Banner(
      "E-throughput: update/decode constants + parallel engine",
      "Sharded-ownership parallel ingestion is bit-identical to serial; "
      "this measures what the extra threads buy.");
  std::vector<gms::EngineRow> rows;
  size_t n = 0, updates = 0, r = 0;
  gms::ParallelEngineSection(&rows, &n, &updates, &r);
  gms::bench::KernelTimings kt = gms::bench::CompareUpdateKernels();
  std::printf("\nupdate kernel: old %.1f ns -> new %.1f ns (%.2fx)\n",
              kt.old_ns, kt.new_ns, kt.speedup);
  gms::WriteJson(rows, n, updates, r, kt);

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
