// Experiment E11 (Lemma 18): half-sampling a hypergraph whose components
// have min cut >= k preserves every cut to (1 +/- eps)/2. Regenerates: the
// max cut deviation after half-sampling as the component min cut grows,
// for graphs and hypergraphs -- the engine inside the Section 5 sparsifier.
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "exact/cut_eval.h"
#include "exact/hypergraph_mincut.h"
#include "graph/generators.h"
#include "util/random.h"

namespace gms {
namespace {

// Half-sample the edges of h with a seeded coin; return the max over
// enumerated cuts of |2*sampled_cut - cut| / cut.
double HalfSampleMaxDeviation(const Hypergraph& h, uint64_t seed) {
  Rng rng(seed);
  WeightedEdgeSet sampled;
  for (const auto& e : h.Edges()) {
    if (rng.Bernoulli(0.5)) {
      sampled.edges.push_back(e);
      sampled.weights.push_back(2.0);
    }
  }
  auto stats = CompareAllCuts(h, sampled);
  return stats.max_rel_error;
}

void DeviationVsMinCut() {
  Table table({"input", "n", "m", "min_cut", "trials", "max_dev", "avg_dev"});
  struct Case {
    const char* name;
    Hypergraph h;
  };
  std::vector<Case> cases;
  // Graphs with growing min cut: unions of c Hamiltonian cycles.
  for (size_t c : {1, 2, 4, 8}) {
    cases.push_back({c == 1   ? "1xHam"
                     : c == 2 ? "2xHam"
                     : c == 4 ? "4xHam"
                              : "8xHam",
                     Hypergraph::FromGraph(
                         UnionOfHamiltonianCycles(14, c, 10 + c))});
  }
  cases.push_back({"K14", Hypergraph::FromGraph(CompleteGraph(14))});
  cases.push_back({"hyper dense", RandomUniformHypergraph(12, 150, 3, 20)});
  for (auto& c : cases) {
    double min_cut = HypergraphMinCut(c.h).value;
    const size_t trials = 8;
    double max_dev = 0, sum_dev = 0;
    for (uint64_t t = 0; t < trials; ++t) {
      double dev = HalfSampleMaxDeviation(c.h, 100 * t + 7);
      max_dev = std::max(max_dev, dev);
      sum_dev += dev;
    }
    table.AddRow({c.name, Table::Fmt(c.h.NumVertices()),
                  Table::Fmt(c.h.NumEdges()), Table::Fmt(min_cut, 0),
                  Table::Fmt(uint64_t{trials}), Table::Fmt(max_dev, 3),
                  Table::Fmt(sum_dev / trials, 3)});
  }
  table.Print("Max cut deviation after one half-sampling vs min cut");
  std::printf(
      "\nExpected shape: max_dev shrinks as the min cut k grows -- "
      "Lemma 18's\neps ~ sqrt((log n + r)/k). Sparse inputs (1xHam, min "
      "cut 2) deviate wildly,\nwhich is exactly why the sparsifier peels "
      "light edges BEFORE sampling.\n");
}

void DeviationVsTheory() {
  // Fit check: dense random 3-uniform hypergraphs whose min cut grows with
  // the edge count; plot the measured deviation against sqrt(ln(n)/k).
  Table table({"m", "min_cut k", "measured_max_dev", "sqrt(ln n / k)",
               "ratio"});
  size_t n = 12;
  // C(12,3) = 220 caps the edge count.
  for (size_t m : {50, 100, 150, 200}) {
    Hypergraph h = RandomUniformHypergraph(n, m, 3, 30 + m);
    double k = HypergraphMinCut(h).value;
    if (k < 1) continue;
    double max_dev = 0;
    for (uint64_t t = 0; t < 6; ++t) {
      max_dev = std::max(max_dev, HalfSampleMaxDeviation(h, 200 * t + 3));
    }
    double theory = std::sqrt(std::log(static_cast<double>(n)) / k);
    table.AddRow({Table::Fmt(uint64_t{m}), Table::Fmt(k, 0),
                  Table::Fmt(max_dev, 3), Table::Fmt(theory, 3),
                  Table::Fmt(max_dev / theory, 2)});
  }
  table.Print("Deviation against the sqrt(log n / k) prediction");
  std::printf(
      "\nExpected shape: the ratio column is roughly constant (the Chernoff "
      "+ cut\ncounting analysis is tight up to constants).\n");
}

}  // namespace
}  // namespace gms

int main() {
  gms::bench::Banner(
      "E11: Karger-style half-sampling (Lemma 18)",
      "Half-sampling a component with min cut >= k = O(eps^-2 (log n + r)) "
      "preserves all cuts to (1 +/- eps)/2.");
  gms::DeviationVsMinCut();
  gms::DeviationVsTheory();
  return 0;
}
