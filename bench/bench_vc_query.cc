// Experiment E2 (Lemma 3 / Theorem 4): vertex-connectivity removal queries.
// Regenerates: query accuracy (separator detected, non-separators passed)
// as the number of subsampled forests R sweeps through fractions of the
// paper's 16 k^2 ln n, plus the O(kn polylog n) space table.
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "graph/generators.h"
#include "graph/traversal.h"
#include "util/random.h"
#include "vertexconn/vc_query_sketch.h"

namespace gms {
namespace {

struct TrialResult {
  bool separator_found = false;
  size_t correct_random = 0;
  size_t total_random = 0;
  size_t bytes = 0;
  size_t r = 0;
};

TrialResult RunTrial(size_t n, size_t k, double r_multiplier, uint64_t seed) {
  TrialResult out;
  auto planted = PlantedSeparator(n, k, seed);
  const VcQueryParams params =
      VcQueryParams::Builder()
          .K(k)
          .RMultiplier(r_multiplier)
          .Forest(
              ForestSketchParams::Builder().Config(SketchConfig::Light()).Build())
          .Build();
  VcQuerySketch sketch(n, params, seed * 31 + 7);
  sketch.Process(DynamicStream::WithChurn(planted.graph,
                                          planted.graph.NumEdges() / 2,
                                          seed + 1));
  auto q = sketch.Query();
  if (!q.ok()) return out;
  const VcUnionSnapshot& snap = q.value();
  out.bytes = sketch.MemoryBytes();
  out.r = sketch.R();
  auto sep = snap.Disconnects(planted.separator);
  out.separator_found = sep.ok() && *sep;
  Rng rng(seed + 2);
  for (int t = 0; t < 8; ++t) {
    std::vector<VertexId> s;
    while (s.size() < k) {
      VertexId v = static_cast<VertexId>(rng.Below(n));
      bool dup = false;
      for (VertexId w : s) dup |= w == v;
      if (!dup) s.push_back(v);
    }
    auto got = snap.Disconnects(s);
    bool truth = !IsConnectedExcluding(planted.graph, s);
    ++out.total_random;
    out.correct_random += (got.ok() && *got == truth) ? 1 : 0;
  }
  return out;
}

void AccuracySweep() {
  Table table({"n", "k", "R/(16k^2 ln n)", "R", "sep_found", "rand_acc",
               "space"});
  for (size_t n : {64, 128}) {
    for (size_t k : {2, 3}) {
      for (double mult : {0.005, 0.01, 0.02, 0.05, 0.15, 0.4}) {
        size_t trials = 5;
        double sep_rate = 0, rand_acc = 0;
        size_t bytes = 0, r = 0;
        for (uint64_t t = 0; t < trials; ++t) {
          auto res = RunTrial(n, k, mult, 1000 * n + 100 * k + t);
          sep_rate += res.separator_found ? 1 : 0;
          rand_acc += res.total_random
                          ? static_cast<double>(res.correct_random) /
                                static_cast<double>(res.total_random)
                          : 0;
          bytes = res.bytes;
          r = res.r;
        }
        table.AddRow({Table::Fmt(uint64_t{n}), Table::Fmt(uint64_t{k}),
                      Table::Fmt(mult, 2), Table::Fmt(uint64_t{r}),
                      Table::Fmt(sep_rate / trials, 2),
                      Table::Fmt(rand_acc / trials, 2), bench::Kb(bytes)});
      }
    }
  }
  table.Print("Query accuracy vs subsample count R (Theorem 4)");
  std::printf(
      "\nExpected shape: accuracy -> 1.0 well before the paper's constant "
      "(multiplier 1.0);\nthe planted separator is always detected once H "
      "covers the graph.\n");
}

void SpaceScaling() {
  Table table({"n", "k", "R", "bytes", "bytes/(k n ln^3 n)"});
  for (size_t n : {64, 128, 256}) {
    for (size_t k : {2, 3, 4}) {
      VcQueryParams params;
      params.k = k;
      params.r_multiplier = 0.25;
      params.forest.config = SketchConfig::Light();
      VcQuerySketch sketch(n, params, 5);
      double ln_n = std::log(static_cast<double>(n));
      double norm = static_cast<double>(sketch.MemoryBytes()) /
                    (static_cast<double>(k * n) * ln_n * ln_n * ln_n);
      table.AddRow({Table::Fmt(uint64_t{n}), Table::Fmt(uint64_t{k}),
                    Table::Fmt(uint64_t{sketch.R()}),
                    bench::Kb(sketch.MemoryBytes()), Table::Fmt(norm, 2)});
    }
  }
  table.Print("Space: O(kn polylog n) (Theorem 4)");
  std::printf(
      "\nExpected shape: the normalized column stays bounded as n and k "
      "grow\n(each of the R = O(k^2 ln n) subgraphs holds ~n/k sketched "
      "vertices).\n");
}

}  // namespace
}  // namespace gms

int main() {
  gms::bench::Banner(
      "E2: vertex-removal queries (Lemma 3 / Theorem 4)",
      "After one pass, test whether deleting any queried set of <= k "
      "vertices disconnects the graph, from O(kn polylog n) space.");
  gms::AccuracySweep();
  gms::SpaceScaling();
  return 0;
}
