// Shared helpers for the experiment harness: trial loops, rate formatting,
// and the experiment banner convention (each binary prints the DESIGN.md
// experiment id it regenerates, followed by gms::Table rows).
#ifndef GMS_BENCH_BENCH_UTIL_H_
#define GMS_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <functional>
#include <string>

#include "util/table.h"
#include "util/timer.h"

namespace gms::bench {

inline void Banner(const char* experiment, const char* claim) {
  std::printf("\n================================================================\n");
  std::printf("%s\n%s\n", experiment, claim);
  std::printf("================================================================\n");
}

/// Fraction of `trials` trials for which `trial(seed)` returns true.
inline double SuccessRate(size_t trials, uint64_t seed_base,
                          const std::function<bool(uint64_t)>& trial) {
  size_t ok = 0;
  for (size_t t = 0; t < trials; ++t) ok += trial(seed_base + t) ? 1 : 0;
  return static_cast<double>(ok) / static_cast<double>(trials);
}

inline std::string Kb(size_t bytes) {
  return Table::Fmt(static_cast<double>(bytes) / 1024.0, 1) + "KiB";
}

inline std::string Rate(double per_sec) {
  if (per_sec >= 1e6) return Table::Fmt(per_sec / 1e6, 2) + "M/s";
  if (per_sec >= 1e3) return Table::Fmt(per_sec / 1e3, 1) + "k/s";
  return Table::Fmt(per_sec, 1) + "/s";
}

/// Copy a freshly written BENCH_*.json from the working directory into the
/// source tree root (GMS_REPO_ROOT, injected by bench/CMakeLists.txt), so
/// the checked-in result files track the binaries that produced them. A
/// build without the definition (or an unwritable tree) degrades to a
/// no-op: the bench output in CWD is the primary artifact.
inline void MirrorToRepoRoot(const char* filename) {
#ifdef GMS_REPO_ROOT
  std::FILE* src = std::fopen(filename, "rb");
  if (src == nullptr) return;
  const std::string dst_path = std::string(GMS_REPO_ROOT) + "/" + filename;
  std::FILE* dst = std::fopen(dst_path.c_str(), "wb");
  if (dst == nullptr) {
    std::fclose(src);
    return;
  }
  char buf[4096];
  size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), src)) > 0) {
    if (std::fwrite(buf, 1, got, dst) != got) break;
  }
  std::fclose(src);
  std::fclose(dst);
  std::printf("mirrored %s to %s\n", filename, dst_path.c_str());
#else
  (void)filename;
#endif
}

}  // namespace gms::bench

#endif  // GMS_BENCH_BENCH_UTIL_H_
