// Shared helpers for the experiment harness: trial loops, rate formatting,
// and the experiment banner convention (each binary prints the DESIGN.md
// experiment id it regenerates, followed by gms::Table rows).
#ifndef GMS_BENCH_BENCH_UTIL_H_
#define GMS_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <functional>
#include <string>

#include "util/table.h"
#include "util/timer.h"

namespace gms::bench {

inline void Banner(const char* experiment, const char* claim) {
  std::printf("\n================================================================\n");
  std::printf("%s\n%s\n", experiment, claim);
  std::printf("================================================================\n");
}

/// Fraction of `trials` trials for which `trial(seed)` returns true.
inline double SuccessRate(size_t trials, uint64_t seed_base,
                          const std::function<bool(uint64_t)>& trial) {
  size_t ok = 0;
  for (size_t t = 0; t < trials; ++t) ok += trial(seed_base + t) ? 1 : 0;
  return static_cast<double>(ok) / static_cast<double>(trials);
}

inline std::string Kb(size_t bytes) {
  return Table::Fmt(static_cast<double>(bytes) / 1024.0, 1) + "KiB";
}

inline std::string Rate(double per_sec) {
  if (per_sec >= 1e6) return Table::Fmt(per_sec / 1e6, 2) + "M/s";
  if (per_sec >= 1e3) return Table::Fmt(per_sec / 1e3, 1) + "k/s";
  return Table::Fmt(per_sec, 1) + "/s";
}

/// Best-of-3 ingest wall time. Sketch state is linear, so Clear +
/// re-Process replays the identical measurement; min over repeats is the
/// standard noise-robust estimator. ALL reps are kept so consumers can
/// audit that the reported number really is the min (perf_smoke asserts
/// it). Every bench that prints an ingest comparison row reads ONE of
/// these, so the printed table and the JSON emitter cannot disagree about
/// which rep was reported.
struct IngestTiming {
  double best_secs = 0;  // min over reps -- the ONE number emitters report
  double reps[3] = {0, 0, 0};
};

/// Generic best-of-3 core: times `run()` three times, calling `reset()`
/// (untimed) before the second and third reps.
template <typename Reset, typename Run>
IngestTiming BestOfThree(const Reset& reset, const Run& run) {
  IngestTiming t;
  for (int rep = 0; rep < 3; ++rep) {
    if (rep > 0) reset();
    Timer timer;
    run();
    t.reps[rep] = timer.Seconds();
    if (rep == 0 || t.reps[rep] < t.best_secs) t.best_secs = t.reps[rep];
  }
  return t;
}

/// The common shape: Clear + Process on anything sketch-like (a sketch, an
/// app, or the ingest plane's consumer set).
template <typename Sketch, typename Stream>
IngestTiming BestOfThreeIngest(Sketch* sketch, const Stream& stream) {
  return BestOfThree([sketch] { sketch->Clear(); },
                     [sketch, &stream] { sketch->Process(stream); });
}

/// Copy a freshly written BENCH_*.json from the working directory into the
/// source tree root (GMS_REPO_ROOT, injected by bench/CMakeLists.txt), so
/// the checked-in result files track the binaries that produced them. A
/// build without the definition (or an unwritable tree) degrades to a
/// no-op: the bench output in CWD is the primary artifact.
inline void MirrorToRepoRoot(const char* filename) {
#ifdef GMS_REPO_ROOT
  std::FILE* src = std::fopen(filename, "rb");
  if (src == nullptr) return;
  const std::string dst_path = std::string(GMS_REPO_ROOT) + "/" + filename;
  std::FILE* dst = std::fopen(dst_path.c_str(), "wb");
  if (dst == nullptr) {
    std::fclose(src);
    return;
  }
  char buf[4096];
  size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), src)) > 0) {
    if (std::fwrite(buf, 1, got, dst) != got) break;
  }
  std::fclose(src);
  std::fclose(dst);
  std::printf("mirrored %s to %s\n", filename, dst_path.c_str());
#else
  (void)filename;
#endif
}

}  // namespace gms::bench

#endif  // GMS_BENCH_BENCH_UTIL_H_
