// Experiments E3 and E13 (Theorems 5 and 21): the information-theoretic
// walls, exhibited empirically. For Theorem 5, INDEX instances are streamed
// through vertex-connectivity query sketches of shrinking size; accuracy of
// bit recovery is charted against sketch bytes relative to the k*n bound.
// For Theorem 21, the SFST reduction's bit-recovery biconditional is
// verified and the quadratic instance size charted.
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "vertexconn/lower_bound.h"
#include "vertexconn/sfst.h"
#include "vertexconn/vc_query_sketch.h"

namespace gms {
namespace {

void IndexReductionAccuracy() {
  Table table({"k", "n_R", "R(forests)", "sketch_bytes", "kn_bits/8",
               "bit_accuracy"});
  for (size_t k : {2, 3}) {
    size_t n_r = 24;
    for (size_t explicit_r : {1, 2, 4, 8, 24, 64}) {
      size_t trials = 16, correct = 0, bytes = 0;
      for (uint64_t t = 0; t < trials; ++t) {
        auto inst = MakeVcLowerBoundInstance(k, n_r, 500 * k + t);
        const VcQueryParams p =
            VcQueryParams::Builder()
                .K(k)
                .ExplicitR(explicit_r)
                .Forest(ForestSketchParams::Builder()
                            .Config(SketchConfig::Light())
                            .Build())
                .Build();
        VcQuerySketch sketch(inst.graph.NumVertices(), p, 600 * k + t);
        sketch.Process(inst.stream);
        auto q = sketch.Query();
        if (!q.ok()) continue;
        bytes = sketch.MemoryBytes();
        auto got = q.value().Disconnects(inst.query);
        if (got.ok() && *got == inst.ground_truth_disconnects) ++correct;
      }
      size_t kn_bytes = (k + 1) * n_r / 8 + 1;
      table.AddRow({Table::Fmt(uint64_t{k}), Table::Fmt(uint64_t{n_r}),
                    Table::Fmt(uint64_t{explicit_r}), bench::Kb(bytes),
                    Table::Fmt(uint64_t{kn_bytes}),
                    Table::Fmt(static_cast<double>(correct) / trials, 2)});
    }
  }
  table.Print("INDEX-instance bit recovery vs sketch size (Theorem 5)");
  std::printf(
      "\nExpected shape: with very few subsampled forests the query answer "
      "is noisy;\naccuracy -> 1.0 once the structure holds Omega(kn) "
      "information. Note the\nsketch's constant-factor overhead: the wall "
      "is about information, not bytes.\n");
}

void SfstReduction() {
  Table table({"n", "graph_vertices", "graph_edges", "bits_encoded",
               "bit_recovery_ok"});
  for (size_t n : {4, 8, 16, 32}) {
    size_t trials = 12, ok = 0;
    size_t vertices = 0, edges = 0;
    for (uint64_t t = 0; t < trials; ++t) {
      auto inst = MakeSfstLowerBoundInstance(n, 700 + t);
      vertices = inst.graph.NumVertices();
      edges = inst.graph.NumEdges();
      Graph tree = ScanFirstSearchTree(inst.graph, inst.u_i, t);
      bool present = tree.HasEdge(Edge(inst.t_j, inst.u_i)) ||
                     tree.HasEdge(Edge(inst.v_i, inst.w_j));
      ok += (present == inst.bit_value) ? 1 : 0;
    }
    table.AddRow({Table::Fmt(uint64_t{n}), Table::Fmt(uint64_t{vertices}),
                  Table::Fmt(uint64_t{edges}), Table::Fmt(uint64_t{n * n}),
                  Table::Fmt(static_cast<double>(ok) / trials, 2)});
  }
  table.Print("SFST reduction: n^2 bits per 4n-vertex instance (Theorem 21)");
  std::printf(
      "\nExpected shape: bit_recovery_ok = 1.0 -- ANY valid scan-first tree "
      "reveals the\nprobed bit, so a stream algorithm emitting one must "
      "remember Omega(n^2) bits.\nThis is why Section 3 rejects the "
      "Cheriyan et al. SFST route for sketches.\n");
}

}  // namespace
}  // namespace gms

int main() {
  gms::bench::Banner(
      "E3/E13: space lower bounds (Theorems 5 & 21)",
      "INDEX reductions: vertex-removal queries need Omega(kn) bits; "
      "scan-first search trees need Omega(n^2) bits.");
  gms::IndexReductionAccuracy();
  gms::SfstReduction();
  return 0;
}
