// Experiment: always-on serving (DESIGN.md §13).
//
// One ingest thread streams a churny graph into a SketchServer while query
// threads hammer Connected(u, v) against the published epoch snapshots.
// Measures sustained answered-queries/s DURING ingestion, the observed
// answer staleness against the engine's guarantee (at most one sealed
// epoch plus the open epoch behind the ingested prefix), and the cached-
// extraction hit pattern. Results print as a table and land machine-
// readably in BENCH_serving.json.
//
// Hard asserts (both modes):
//   - concurrency: every query thread answered queries while ingest ran;
//   - staleness:   max observed staleness <= 2 * epoch_updates;
//   - correctness: the post-Flush snapshot answers exactly (the generator
//     graph is connected, so NumComponents == 1 and every pair connects).
// The full mode additionally demands >= 10k sustained queries/s during
// ingest: answers are two array loads against the cached ComponentIndex,
// so even a time-sliced single-CPU container clears this by orders of
// magnitude -- a miss means the serving path started extracting or
// locking per query.
//
// --serve_smoke: reduced workload, same asserts minus the rate floor; the
// ServeSmoke ctest (default + tsan presets) runs this mode.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <optional>
#include <span>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "graph/generators.h"
#include "graph/traversal.h"
#include "serve/sketch_server.h"
#include "util/check.h"
#include "util/random.h"
#include "util/table.h"
#include "util/timer.h"

namespace gms {
namespace {

struct ServingResult {
  size_t n = 0;
  size_t stream_updates = 0;
  size_t epoch_updates = 0;
  size_t query_threads = 0;
  double ingest_seconds = 0;
  uint64_t queries_during_ingest = 0;
  double queries_per_sec = 0;
  uint64_t max_staleness = 0;
  uint64_t staleness_bound = 0;
  double post_flush_queries_per_sec = 0;
  double wire_queries_per_sec = 0;
  serve::SketchServer::ForestEngine::Stats engine;
};

ServingResult RunServing(size_t n, size_t decoys, size_t epoch_updates,
                         size_t query_threads, bool require_rate,
                         uint64_t seed) {
  const Graph g = UnionOfHamiltonianCycles(n, 3, seed);
  const DynamicStream stream = DynamicStream::WithChurn(g, decoys, seed + 1);
  const auto& updates = stream.updates();

  const auto params =
      serve::SketchServerParams::Builder()
          .Forest(ForestSketchParams::Builder()
                      .Config(SketchConfig::Light())
                      .Build())
          .EpochUpdates(epoch_updates)
          .Build();
  serve::SketchServer server(n, params, seed + 2);

  // `ingested` trails the true prefix (stored AFTER each chunk lands), so
  // `ingested - prefix_updates` underestimates true staleness and the
  // engine bound still applies to the measurement.
  std::atomic<uint64_t> ingested{0};
  std::atomic<bool> ingest_done{false};

  struct QueryThreadResult {
    uint64_t answered = 0;
    uint64_t max_staleness = 0;
  };
  std::vector<QueryThreadResult> per_thread(query_threads);
  std::vector<std::thread> queriers;
  queriers.reserve(query_threads);
  for (size_t q = 0; q < query_threads; ++q) {
    queriers.emplace_back([&, q] {
      Rng rng(seed + 100 + q);
      QueryThreadResult& out = per_thread[q];
      while (!ingest_done.load(std::memory_order_acquire)) {
        const uint64_t seen = ingested.load(std::memory_order_acquire);
        serve::ServeRequest req;
        req.op = serve::ServeOp::kConnected;
        req.u = rng.Below(n);
        req.v = rng.Below(n);
        const serve::ServeResponse resp = server.Handle(req);
        GMS_CHECK_MSG(resp.code == StatusCode::kOk,
                      "serving bench: query refused during ingest");
        ++out.answered;
        if (seen > resp.prefix_updates) {
          out.max_staleness =
              std::max(out.max_staleness, seen - resp.prefix_updates);
        }
      }
    });
  }

  // Ingest in driver-gutter-sized chunks, publishing the prefix length
  // after each chunk (release pairs with the queriers' acquire).
  constexpr size_t kChunk = 2048;
  Timer ingest_timer;
  for (size_t i = 0; i < updates.size(); i += kChunk) {
    const size_t take = std::min(kChunk, updates.size() - i);
    server.Ingest(std::span<const StreamUpdate>(updates.data() + i, take));
    ingested.store(i + take, std::memory_order_release);
  }
  const double ingest_seconds = ingest_timer.Seconds();
  ingest_done.store(true, std::memory_order_release);
  for (auto& t : queriers) t.join();
  server.Flush();

  ServingResult r;
  r.n = n;
  r.stream_updates = updates.size();
  r.epoch_updates = epoch_updates;
  r.query_threads = query_threads;
  r.ingest_seconds = ingest_seconds;
  r.staleness_bound = 2 * epoch_updates;
  for (const auto& t : per_thread) {
    GMS_CHECK_MSG(t.answered > 0,
                  "serving bench: a query thread answered nothing -- no "
                  "concurrency was exercised");
    r.queries_during_ingest += t.answered;
    r.max_staleness = std::max(r.max_staleness, t.max_staleness);
  }
  GMS_CHECK_MSG(r.max_staleness <= r.staleness_bound,
                "serving bench: staleness exceeded one sealed + one open "
                "epoch");
  r.queries_per_sec =
      static_cast<double>(r.queries_during_ingest) / ingest_seconds;
  if (require_rate) {
    GMS_CHECK_MSG(r.queries_per_sec >= 10000.0,
                  "serving bench: sustained query rate fell below 10k/s");
  }

  // Post-Flush correctness: every update is covered, the generator graph
  // is connected, and answers must say so.
  {
    serve::ServeRequest req;
    req.op = serve::ServeOp::kNumComponents;
    const serve::ServeResponse resp = server.Handle(req);
    GMS_CHECK_MSG(resp.code == StatusCode::kOk,
                  "serving bench: post-flush query refused");
    GMS_CHECK_MSG(resp.value == 1,
                  "serving bench: post-flush component count is wrong");
    GMS_CHECK_MSG(resp.prefix_updates == updates.size(),
                  "serving bench: Flush left updates uncovered");
    Rng rng(seed + 7);
    for (int t = 0; t < 64; ++t) {
      serve::ServeRequest c;
      c.op = serve::ServeOp::kConnected;
      c.u = rng.Below(n);
      c.v = rng.Below(n);
      const serve::ServeResponse got = server.Handle(c);
      GMS_CHECK_MSG(got.code == StatusCode::kOk && got.value == 1,
                    "serving bench: post-flush connectivity answer is wrong");
    }
  }

  // Idle-path query rate (no concurrent ingest): the cached-extraction
  // ceiling, direct calls.
  {
    Rng rng(seed + 8);
    constexpr size_t kProbe = 200000;
    Timer t;
    for (size_t i = 0; i < kProbe; ++i) {
      serve::ServeRequest req;
      req.op = serve::ServeOp::kConnected;
      req.u = rng.Below(n);
      req.v = rng.Below(n);
      (void)server.Handle(req);
    }
    r.post_flush_queries_per_sec = static_cast<double>(kProbe) / t.Seconds();
  }

  // Wire-framed rate: encode + HandleFrame + decode per query, the full
  // transport path a remote client pays.
  {
    Rng rng(seed + 9);
    constexpr size_t kProbe = 20000;
    std::vector<uint8_t> req_buf, resp_buf;
    Timer t;
    for (size_t i = 0; i < kProbe; ++i) {
      req_buf.clear();
      resp_buf.clear();
      serve::ServeRequest req;
      req.op = serve::ServeOp::kConnected;
      req.u = rng.Below(n);
      req.v = rng.Below(n);
      serve::EncodeServeRequest(req, &req_buf);
      server.HandleFrame(req_buf, &resp_buf);
      auto resp = serve::DecodeServeResponse(resp_buf);
      GMS_CHECK_MSG(resp.ok() && resp->code == StatusCode::kOk,
                    "serving bench: wire round-trip failed");
    }
    r.wire_queries_per_sec = static_cast<double>(kProbe) / t.Seconds();
  }

  r.engine = server.forest_engine().stats();
  return r;
}

// prepare_once comparison: SketchServer::Ingest routes ONE shared
// encode/prepare/route pass through the ingest plane into every engine's
// open delta; IngestIndependent is the pre-plane baseline where each
// engine re-prepares every update. Both timings flow through the shared
// best-of-3 helper (bench_util.h), so the printed table and the JSON row
// cannot report different reps. The two paths must land bit-identical
// snapshots -- asserted here on the flushed forest payload (gms_plane_tests
// covers all three engines at frame strength).
struct PrepareOnceRow {
  size_t n = 0;
  size_t updates = 0;
  double shared_seconds = 0;
  double independent_seconds = 0;
};

PrepareOnceRow RunPrepareOnce(size_t n, size_t decoys, uint64_t seed) {
  const Graph g = UnionOfHamiltonianCycles(n, 3, seed);
  const DynamicStream stream = DynamicStream::WithChurn(g, decoys, seed + 1);
  const std::span<const StreamUpdate> updates(stream.updates());

  // Every engine must actually ride the plane for the row to measure it:
  // the VC engine's subsample count R is its route-bit demand, and the
  // paper-default R at this n overflows the plane's 64-bit budget, which
  // would silently drop VC to the per-engine fallback in BOTH columns.
  // R=32 keeps forest (1 bit) + skeleton (1) + vc (32) on one pass.
  const auto params =
      serve::SketchServerParams::Builder()
          .Forest(ForestSketchParams::Builder()
                      .Config(SketchConfig::Light())
                      .Build())
          .Vc(VcQueryParams::Builder()
                  .K(2)
                  .ExplicitR(32)
                  .Forest(ForestSketchParams::Builder()
                              .Config(SketchConfig::Light())
                              .Build())
                  .Build())
          .SkeletonK(2)
          .EpochUpdates(4096)
          .Build();
  std::optional<serve::SketchServer> server;
  const auto reset = [&] { server.emplace(n, params, seed + 2); };

  reset();
  const bench::IngestTiming shared =
      bench::BestOfThree(reset, [&] { server->Ingest(updates); });
  server->Flush();
  const Hypergraph shared_forest = *server->forest_engine().Current()->payload;

  reset();
  const bench::IngestTiming independent =
      bench::BestOfThree(reset, [&] { server->IngestIndependent(updates); });
  server->Flush();
  GMS_CHECK_MSG(*server->forest_engine().Current()->payload == shared_forest,
                "serving bench: prepare_once forest payload diverges from "
                "the independent ingest baseline");

  PrepareOnceRow r;
  r.n = n;
  r.updates = updates.size();
  r.shared_seconds = shared.best_secs;
  r.independent_seconds = independent.best_secs;
  return r;
}

void WriteJson(const std::vector<ServingResult>& rows,
               const std::vector<PrepareOnceRow>& prepare_rows) {
  FILE* f = std::fopen("BENCH_serving.json", "w");
  if (f == nullptr) {
    std::printf("could not open BENCH_serving.json for writing\n");
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"serving\",\n  \"rows\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const ServingResult& r = rows[i];
    std::fprintf(
        f,
        "    {\"n\": %zu, \"stream_updates\": %zu, \"epoch_updates\": %zu,\n"
        "     \"query_threads\": %zu, \"ingest_seconds\": %.6f,\n"
        "     \"queries_during_ingest\": %llu, \"queries_per_sec\": %.1f,\n"
        "     \"max_staleness_updates\": %llu, \"staleness_bound\": %llu,\n"
        "     \"post_flush_queries_per_sec\": %.1f,\n"
        "     \"wire_queries_per_sec\": %.1f,\n"
        "     \"epochs_sealed\": %llu, \"epochs_merged\": %llu,\n"
        "     \"cache_hits\": %llu, \"cache_rebuilds\": %llu,\n"
        "     \"updates_ingested\": %llu, \"updates_merged\": %llu}%s\n",
        r.n, r.stream_updates, r.epoch_updates, r.query_threads,
        r.ingest_seconds,
        static_cast<unsigned long long>(r.queries_during_ingest),
        r.queries_per_sec, static_cast<unsigned long long>(r.max_staleness),
        static_cast<unsigned long long>(r.staleness_bound),
        r.post_flush_queries_per_sec, r.wire_queries_per_sec,
        static_cast<unsigned long long>(r.engine.epochs_sealed),
        static_cast<unsigned long long>(r.engine.epochs_merged),
        static_cast<unsigned long long>(r.engine.cache_hits),
        static_cast<unsigned long long>(r.engine.cache_rebuilds),
        static_cast<unsigned long long>(r.engine.updates_ingested),
        static_cast<unsigned long long>(r.engine.updates_merged),
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"prepare_once\": [\n");
  for (size_t i = 0; i < prepare_rows.size(); ++i) {
    const PrepareOnceRow& r = prepare_rows[i];
    std::fprintf(
        f,
        "    {\"n\": %zu, \"updates\": %zu, \"shared_seconds\": %.6f,\n"
        "     \"independent_seconds\": %.6f, "
        "\"prepare_once_speedup\": %.3f}%s\n",
        r.n, r.updates, r.shared_seconds, r.independent_seconds,
        r.independent_seconds / std::max(r.shared_seconds, 1e-9),
        i + 1 < prepare_rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote BENCH_serving.json\n");
  bench::MirrorToRepoRoot("BENCH_serving.json");
}

int Run(bool smoke) {
  bench::Banner("EXPERIMENT serving (DESIGN.md §13)",
                "Sustained queries/s against epoch snapshots while the "
                "stream keeps ingesting; staleness <= 1 sealed + 1 open "
                "epoch.");

  std::vector<ServingResult> rows;
  std::vector<PrepareOnceRow> prepare_rows;
  if (smoke) {
    rows.push_back(RunServing(/*n=*/512, /*decoys=*/2000,
                              /*epoch_updates=*/1024, /*query_threads=*/2,
                              /*require_rate=*/false, /*seed=*/11));
    prepare_rows.push_back(
        RunPrepareOnce(/*n=*/512, /*decoys=*/2000, /*seed=*/21));
  } else {
    rows.push_back(RunServing(/*n=*/2000, /*decoys=*/20000,
                              /*epoch_updates=*/4096, /*query_threads=*/2,
                              /*require_rate=*/true, /*seed=*/11));
    rows.push_back(RunServing(/*n=*/2000, /*decoys=*/20000,
                              /*epoch_updates=*/16384, /*query_threads=*/4,
                              /*require_rate=*/true, /*seed=*/12));
    prepare_rows.push_back(
        RunPrepareOnce(/*n=*/2000, /*decoys=*/20000, /*seed=*/21));
  }

  Table table({"n", "updates", "epoch", "qthreads", "ingest", "queries/s",
               "max_stale", "bound", "idle q/s", "wire q/s", "hits",
               "rebuilds"});
  for (const ServingResult& r : rows) {
    table.AddRow({Table::Fmt(r.n), Table::Fmt(r.stream_updates),
               Table::Fmt(r.epoch_updates), Table::Fmt(r.query_threads),
               Table::Fmt(r.ingest_seconds, 3) + "s",
               bench::Rate(r.queries_per_sec), Table::Fmt(r.max_staleness),
               Table::Fmt(r.staleness_bound),
               bench::Rate(r.post_flush_queries_per_sec),
               bench::Rate(r.wire_queries_per_sec),
               Table::Fmt(r.engine.cache_hits),
               Table::Fmt(r.engine.cache_rebuilds)});
  }
  table.Print();

  Table prepare_table(
      {"n", "updates", "shared_s", "independent_s", "prep1x"});
  for (const PrepareOnceRow& r : prepare_rows) {
    prepare_table.AddRow(
        {Table::Fmt(r.n), Table::Fmt(r.updates),
         Table::Fmt(r.shared_seconds, 3), Table::Fmt(r.independent_seconds, 3),
         Table::Fmt(r.independent_seconds / std::max(r.shared_seconds, 1e-9),
                    2)});
  }
  prepare_table.Print(
      "prepare_once: one shared encode/route pass (Ingest) vs per-engine "
      "re-prepare (IngestIndependent), forest + vc + skeleton");

  if (!smoke) WriteJson(rows, prepare_rows);
  std::printf("serving bench: all assertions held\n");
  return 0;
}

}  // namespace
}  // namespace gms

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--serve_smoke") == 0;
  return gms::Run(smoke);
}
