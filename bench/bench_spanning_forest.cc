// Experiment E1 (Theorems 2 and 13): spanning-graph sketches for graphs and
// hypergraphs. Regenerates: decode success rate across graph families,
// sizes, and stream types; space per vertex; update throughput.
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "connectivity/spanning_forest_sketch.h"
#include "graph/generators.h"
#include "graph/traversal.h"
#include "stream/stream.h"
#include "util/timer.h"

namespace gms {
namespace {

bool ForestTrial(const Hypergraph& h, size_t max_rank, bool churn,
                 uint64_t seed, size_t* achieved_decoys = nullptr) {
  SpanningForestSketch sketch(h.NumVertices(), max_rank, seed * 77 + 1);
  DynamicStream stream =
      churn ? DynamicStream::WithChurn(h, h.NumEdges(), std::max<size_t>(
                                           2, std::min<size_t>(max_rank, 3)),
                                       seed, achieved_decoys)
            : DynamicStream::InsertOnly(h, seed);
  if (!churn && achieved_decoys != nullptr) *achieved_decoys = 0;
  sketch.Process(stream);
  auto span = sketch.ExtractSpanningGraph();
  if (!span.ok()) return false;
  return ConnectedComponents(*span) == ConnectedComponents(h);
}

void GraphFamilies() {
  Table table({"family", "n", "m", "stream", "decoys", "success",
               "bytes/vertex", "updates/s"});
  struct Case {
    const char* name;
    Hypergraph h;
  };
  for (size_t n : {64, 256, 1024}) {
    std::vector<Case> cases;
    cases.push_back({"path", Hypergraph::FromGraph(PathGraph(n))});
    cases.push_back({"star", Hypergraph::FromGraph(StarGraph(n))});
    cases.push_back(
        {"G(n,2lnn/n)",
         Hypergraph::FromGraph(ErdosRenyi(
             n, 2.0 * std::log(static_cast<double>(n)) / n, n))});
    cases.push_back(
        {"2xHam", Hypergraph::FromGraph(UnionOfHamiltonianCycles(n, 2, n))});
    for (auto& c : cases) {
      for (bool churn : {false, true}) {
        size_t trials = n <= 256 ? 10 : 4;
        // The rejection sampler may place fewer decoys than requested on
        // dense inputs; report what the churn rows actually contained.
        size_t achieved_decoys = 0;
        double success = bench::SuccessRate(trials, n * 13, [&](uint64_t s) {
          return ForestTrial(c.h, 2, churn, s, &achieved_decoys);
        });
        // One instrumented run for space / throughput.
        SpanningForestSketch sketch(n, 2, 5);
        DynamicStream stream = DynamicStream::InsertOnly(c.h, 6);
        Timer timer;
        sketch.Process(stream);
        double secs = timer.Seconds();
        table.AddRow(
            {c.name, Table::Fmt(uint64_t{n}), Table::Fmt(c.h.NumEdges()),
             churn ? "churn" : "insert", Table::Fmt(achieved_decoys),
             Table::Fmt(success, 2), bench::Kb(sketch.MemoryBytes() / n),
             bench::Rate(static_cast<double>(stream.size()) /
                         std::max(secs, 1e-9))});
      }
    }
  }
  table.Print("Graph spanning forests (Theorem 2)");
}

void HypergraphFamilies() {
  Table table(
      {"family", "n", "m", "r", "stream", "decoys", "success", "bytes/vertex"});
  for (size_t n : {32, 128}) {
    struct HCase {
      const char* name;
      Hypergraph h;
      size_t r;
    };
    std::vector<HCase> cases;
    cases.push_back({"hypercycle", HyperCycle(n, 3), 3});
    cases.push_back(
        {"random r=3", RandomUniformHypergraph(n, 2 * n, 3, n + 1), 3});
    cases.push_back(
        {"random r=4", RandomUniformHypergraph(n, 2 * n, 4, n + 2), 4});
    cases.push_back({"mixed 2..4", RandomHypergraph(n, 2 * n, 2, 4, n + 3), 4});
    for (auto& c : cases) {
      for (bool churn : {false, true}) {
        size_t achieved_decoys = 0;
        double success = bench::SuccessRate(6, n * 31, [&](uint64_t s) {
          return ForestTrial(c.h, c.r, churn, s, &achieved_decoys);
        });
        SpanningForestSketch sketch(n, c.r, 7);
        sketch.Process(DynamicStream::InsertOnly(c.h, 8));
        table.AddRow({c.name, Table::Fmt(uint64_t{n}),
                      Table::Fmt(c.h.NumEdges()), Table::Fmt(uint64_t{c.r}),
                      churn ? "churn" : "insert", Table::Fmt(achieved_decoys),
                      Table::Fmt(success, 2),
                      bench::Kb(sketch.MemoryBytes() / n)});
      }
    }
  }
  table.Print("Hypergraph spanning graphs (Theorem 13)");
}

void SpaceScaling() {
  Table table({"n", "cells/vertex", "bytes/vertex", "bytes_total",
               "polylog check: bytes/(vertex*log^3 n)"});
  for (size_t n : {64, 128, 256, 512, 1024, 2048}) {
    SpanningForestSketch sketch(n, 2, 1);
    double log_n = std::log2(static_cast<double>(n));
    double normalized = static_cast<double>(sketch.MemoryBytes()) /
                        (static_cast<double>(n) * log_n * log_n * log_n);
    table.AddRow({Table::Fmt(uint64_t{n}), Table::Fmt(sketch.CellsPerVertex()),
                  bench::Kb(sketch.MemoryBytes() / n),
                  bench::Kb(sketch.MemoryBytes()), Table::Fmt(normalized, 2)});
  }
  table.Print("Space scaling: O(n polylog n) total (Theorem 2)");
  std::printf(
      "\nExpected shape: the normalized column stays roughly flat (the "
      "sketch is\nn x polylog(n) cells), while bytes_total grows "
      "near-linearly in n.\n");
}

}  // namespace
}  // namespace gms

int main() {
  gms::bench::Banner(
      "E1: spanning-graph sketches (Theorems 2 & 13)",
      "O(n polylog n)-space linear sketches that decode a spanning "
      "forest/graph of a dynamic (hyper)graph stream whp.");
  gms::GraphFamilies();
  gms::HypergraphFamilies();
  gms::SpaceScaling();
  return 0;
}
