// Structure-aware harness for stream ingestion: bytes decode (totally --
// every input is valid) to a bounded dynamic stream via
// testkit::DecodeFuzzStream, which is then pushed through every sketch
// type. The decoded stream deliberately bypasses DynamicStream::Validate:
// multiplicities may go negative or above one, which a LINEAR sketch must
// tolerate without crashing (queries may fail, decode may fail, but
// ingestion is just coordinate arithmetic).
//
// Invariants checked per input:
//   - ingestion and every query return without crashing,
//   - processing is order-invariant (reversed stream -> equal state),
//   - serialize -> deserialize round trips to equal state,
//   - extracted edges decode into the codec domain.
#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "connectivity/k_skeleton.h"
#include "connectivity/spanning_forest_sketch.h"
#include "graph/edge_codec.h"
#include "sketch/l0_sampler.h"
#include "sparsify/sparsifier_sketch.h"
#include "testkit/corpus.h"
#include "util/check.h"
#include "vertexconn/hyper_vc_query.h"
#include "vertexconn/vc_query_sketch.h"

namespace {

using gms::testkit::DecodedFuzzStream;

// Throughput matters here (10k inputs per smoke run on one core), and the
// ingestion/extraction code paths do not get longer with more Borůvka
// rounds or heavier configs -- so every sketch is built as small as the
// API allows.
gms::ForestSketchParams TinyForestParams() {
  gms::ForestSketchParams p;
  p.config = gms::SketchConfig::Light();
  p.rounds = 2;
  return p;
}

gms::VcQueryParams SmallVcParams() {
  gms::VcQueryParams p;
  p.k = 1;
  p.explicit_r = 2;
  p.forest = TinyForestParams();
  return p;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  DecodedFuzzStream in =
      gms::testkit::DecodeFuzzStream(std::span<const uint8_t>(data, size));
  const uint64_t seed = 1 + (size > 2 ? data[2] : 0);
  std::span<const gms::StreamUpdate> updates(in.updates);

  // The VC and sparsifier stacks cost an order of magnitude more to build
  // than they add in decode coverage (their ingestion is the same L0 cell
  // arithmetic as the forest sketch), so run them on a deterministic
  // quarter of inputs to keep the 10k-iteration smoke budget fast.
  uint64_t digest = 0;
  for (size_t i = 0; i < size; ++i) digest = digest * 131 + data[i];
  const bool heavy = digest % 4 == 0;

  {
    gms::SpanningForestSketch forest(in.n, in.max_rank, seed,
                                     TinyForestParams());
    forest.Process(updates);

    // Linearity: the state is a sum over updates, so order cannot matter.
    gms::SpanningForestSketch reversed(in.n, in.max_rank, seed,
                                       TinyForestParams());
    std::vector<gms::StreamUpdate> rev(in.updates.rbegin(),
                                       in.updates.rend());
    reversed.Process(std::span<const gms::StreamUpdate>(rev));
    GMS_CHECK_MSG(forest.StateEquals(reversed),
                  "forest ingestion is order-dependent");

    std::vector<uint8_t> bytes;
    forest.Serialize(&bytes);
    gms::Result<gms::SpanningForestSketch> redo =
        gms::SpanningForestSketch::Deserialize(bytes);
    GMS_CHECK(redo.ok());
    GMS_CHECK(forest.StateEquals(*redo));

    gms::Result<gms::Hypergraph> g = forest.ExtractSpanningGraph();
    if (g.ok()) {
      GMS_CHECK(g->NumVertices() == in.n);
      gms::EdgeCodec codec(in.n, in.max_rank);
      for (const gms::Hyperedge& e : g->Edges()) {
        GMS_CHECK(e.size() <= in.max_rank);
        GMS_CHECK(codec.Encode(e) < codec.DomainSize());
      }
    }
  }
  {
    gms::KSkeletonSketch skeleton(in.n, in.max_rank, 2, seed + 1,
                                  TinyForestParams());
    skeleton.Process(updates);
    std::vector<uint8_t> bytes;
    skeleton.Serialize(&bytes);
    gms::Result<gms::KSkeletonSketch> redo =
        gms::KSkeletonSketch::Deserialize(bytes);
    GMS_CHECK(redo.ok());
    GMS_CHECK(skeleton.StateEquals(*redo));
    (void)skeleton.Extract();
  }
  {
    gms::L0Sampler sampler(gms::EdgeCodec(in.n, in.max_rank).DomainSize(),
                           gms::SketchConfig::Light(), seed + 2);
    gms::EdgeCodec codec(in.n, in.max_rank);
    for (const gms::StreamUpdate& u : in.updates) {
      sampler.Update(codec.Encode(u.edge), u.delta);
    }
    gms::Result<gms::SparseEntry> sample = sampler.Sample();
    if (sample.ok()) {
      GMS_CHECK(sample->index < codec.DomainSize());
      GMS_CHECK(codec.Decode(sample->index).ok());
    }
  }
  if (heavy) {
    gms::HyperVcQuerySketch vc(in.n, in.max_rank, SmallVcParams(), seed + 3);
    vc.Process(updates);
    (void)vc.Disconnects({0});
  }
  if (heavy) {
    // The graph-only VC sketch ingests the 2-uniform sub-stream.
    gms::VcQuerySketch vc(in.n, SmallVcParams(), seed + 4);
    for (const gms::StreamUpdate& u : in.updates) {
      if (u.edge.IsGraphEdge()) vc.Update(u.edge.AsEdge(), u.delta);
    }
    (void)vc.Disconnects({0});
  }
  if (heavy) {
    gms::SparsifierParams p;
    p.levels = 2;
    p.k = 2;
    p.forest = TinyForestParams();
    gms::HypergraphSparsifierSketch sp(in.n, in.max_rank, p, seed + 5);
    sp.Process(updates);
    (void)sp.ExtractSparsifier();
  }
  return 0;
}
