// Harness for the wire frame parser: ANY byte string must either parse or
// fail with a Status -- never crash, never read out of bounds, never
// disagree with the cheap preamble peek. Runs under the `fuzz_smoke` ctest
// label via the standalone driver (driver_main.cc), and as a libFuzzer
// binary when GMS_FUZZ=ON with a clang toolchain.
#include <cstddef>
#include <cstdint>
#include <span>

#include "util/check.h"
#include "wire/wire.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::span<const uint8_t> buf(data, size);
  gms::Result<gms::wire::FrameType> peek = gms::wire::PeekFrameType(buf);

  // Parse as the peeked type (the accept path), as a deliberately wrong
  // type (the mismatch path), and as a value outside the enum. ParseFrame
  // checksums the whole buffer per attempt, so trying all representable
  // types would make every iteration O(9 * size) for no extra coverage.
  const auto peeked = peek.ok() ? *peek : gms::wire::FrameType::kL0Sampler;
  const auto wrong = static_cast<gms::wire::FrameType>(
      1 + static_cast<uint16_t>(peeked) % 6);
  const gms::wire::FrameType attempts[] = {
      peeked, wrong, static_cast<gms::wire::FrameType>(7)};
  int accepted = 0;
  for (gms::wire::FrameType type : attempts) {
    gms::Result<gms::wire::Frame> frame = gms::wire::ParseFrame(buf, type);
    if (!frame.ok()) continue;
    ++accepted;
    GMS_CHECK(frame->type == type);
    // A fully validated frame implies the peek succeeded and agrees.
    GMS_CHECK(peek.ok());
    GMS_CHECK(*peek == frame->type);
    // The spans tile the buffer exactly: preamble + header + payload +
    // checksum, all views into the caller's bytes.
    GMS_CHECK(frame->header.size() + frame->payload.size() +
                  gms::wire::kPreambleBytes + gms::wire::kChecksumBytes ==
              size);
    GMS_CHECK(frame->header.data() == data + gms::wire::kPreambleBytes);
  }
  GMS_CHECK(accepted <= 1);
  return 0;
}
