// Harness for the binary stream-file parsers (workload/binary_stream.h).
// Inputs are raw candidate GMSB images -- usually mutated corpus files.
//
// Invariants checked per input:
//   - ParseBinaryStreamHeader and DecodeBinaryStream are total: any bytes
//     produce a Status, never a crash or an over-read,
//   - an image that parses WITH checksum verification also parses without,
//   - a successfully decoded image re-encodes to the IDENTICAL bytes (the
//     format has one canonical image per (n, max_rank, updates)),
//   - the decoded stream really honors the header's bounds, and a sketch
//     can ingest it without crashing.
#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "connectivity/spanning_forest_sketch.h"
#include "util/check.h"
#include "workload/binary_stream.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::span<const uint8_t> bytes(data, size);

  gms::Result<gms::workload::BinaryStreamHeader> header =
      gms::workload::ParseBinaryStreamHeader(bytes);
  gms::Result<gms::workload::BinaryStreamHeader> lax =
      gms::workload::ParseBinaryStreamHeader(bytes,
                                             /*verify_checksum=*/false);
  // Checksum verification only ever REJECTS more.
  GMS_CHECK(!header.ok() || lax.ok());

  gms::workload::BinaryStreamHeader decoded_header;
  gms::Result<gms::DynamicStream> stream =
      gms::workload::DecodeBinaryStream(bytes, &decoded_header);
  GMS_CHECK(stream.ok() == header.ok());
  if (!stream.ok()) return 0;

  GMS_CHECK(stream->size() == decoded_header.num_updates);
  for (const gms::StreamUpdate& u : stream->updates()) {
    GMS_CHECK(u.edge.size() >= 2);
    GMS_CHECK(u.edge.size() <= decoded_header.max_rank);
    for (gms::VertexId v : u.edge) GMS_CHECK(v < decoded_header.n);
    GMS_CHECK(u.delta == 1 || u.delta == -1);
  }

  // Canonical image: decode -> encode reproduces the input bit for bit.
  const std::vector<uint8_t> redo = gms::workload::EncodeBinaryStream(
      static_cast<size_t>(decoded_header.n), decoded_header.max_rank,
      std::span<const gms::StreamUpdate>(stream->updates()));
  GMS_CHECK(redo.size() == bytes.size());
  for (size_t i = 0; i < redo.size(); ++i) GMS_CHECK(redo[i] == bytes[i]);

  // Valid files describe ingestible streams (bound the big ones: the
  // header can honestly promise more records than a smoke budget wants).
  if (decoded_header.n <= 256 && stream->size() <= 4096) {
    gms::ForestSketchParams p;
    p.config = gms::SketchConfig::Light();
    p.rounds = 2;
    gms::SpanningForestSketch sketch(
        static_cast<size_t>(decoded_header.n),
        std::min<size_t>(decoded_header.max_rank, 8), 1 + size, p);
    for (const gms::StreamUpdate& u : stream->updates()) {
      if (u.edge.size() <= sketch.max_rank()) sketch.Update(u.edge, u.delta);
    }
    (void)sketch.ExtractSpanningGraph();
  }
  return 0;
}
