// Standalone deterministic driver for the fuzz harnesses.
//
// Links against any fuzz_*.cc harness in place of libFuzzer: replays every
// file in the given corpus paths, then runs a fixed budget of seeded
// xorshift mutations of those inputs through the same entry point. This is
// what the `fuzz_smoke` ctest label executes -- it needs no clang runtime,
// so it works under plain gcc and every sanitizer preset. When GMS_FUZZ=ON
// finds a compiler with -fsanitize=fuzzer, the harnesses are ALSO linked
// into real coverage-guided fuzzers, and this file stays out of those.
//
// Usage: <harness> [corpus-file-or-dir ...] [--iters N] [--seed S]
//
// Exit code 0 on success; any harness invariant violation aborts (the
// harnesses check with GMS_CHECK), so a nonzero exit IS the bug report.
// Set GMS_FUZZ_DUMP_LAST=<path> to write each input there before it runs:
// after an abort, that file holds the crashing input for replay.
#include <algorithm>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace {

constexpr size_t kMaxInputBytes = 1 << 14;

uint64_t g_rng = 0;

uint64_t NextRand() {
  // xorshift64*: deterministic, seedable, no <random> needed.
  g_rng ^= g_rng >> 12;
  g_rng ^= g_rng << 25;
  g_rng ^= g_rng >> 27;
  return g_rng * 0x2545F4914F6CDD1DULL;
}

const char* g_dump_path = nullptr;

int RunOne(const std::vector<uint8_t>& input) {
  if (g_dump_path != nullptr) {
    std::ofstream out(g_dump_path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(input.data()),
              static_cast<std::streamsize>(input.size()));
  }
  return LLVMFuzzerTestOneInput(input.data(), input.size());
}

std::vector<uint8_t> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(in),
                              std::istreambuf_iterator<char>());
}

void Mutate(std::vector<uint8_t>* buf) {
  size_t edits = 1 + NextRand() % 8;
  for (size_t i = 0; i < edits; ++i) {
    switch (NextRand() % 5) {
      case 0:  // flip bits in one byte
        if (!buf->empty()) {
          (*buf)[NextRand() % buf->size()] ^=
              static_cast<uint8_t>(1 + NextRand() % 255);
        }
        break;
      case 1:  // insert a byte
        if (buf->size() < kMaxInputBytes) {
          buf->insert(buf->begin() + NextRand() % (buf->size() + 1),
                      static_cast<uint8_t>(NextRand()));
        }
        break;
      case 2:  // erase a byte
        if (!buf->empty()) buf->erase(buf->begin() + NextRand() % buf->size());
        break;
      case 3:  // truncate
        if (!buf->empty()) buf->resize(NextRand() % buf->size());
        break;
      case 4:  // append a short random run
        for (size_t j = 1 + NextRand() % 8;
             j > 0 && buf->size() < kMaxInputBytes; --j) {
          buf->push_back(static_cast<uint8_t>(NextRand()));
        }
        break;
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t iters = 0;
  uint64_t seed = 1;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--iters") == 0 && i + 1 < argc) {
      iters = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else {
      paths.emplace_back(argv[i]);
    }
  }

  std::vector<std::vector<uint8_t>> corpus;
  for (const std::string& p : paths) {
    std::error_code ec;
    if (std::filesystem::is_directory(p, ec)) {
      std::vector<std::string> files;
      for (const auto& entry : std::filesystem::directory_iterator(p, ec)) {
        if (entry.is_regular_file()) files.push_back(entry.path().string());
      }
      std::sort(files.begin(), files.end());  // deterministic replay order
      for (const std::string& f : files) corpus.push_back(ReadFile(f));
    } else {
      corpus.push_back(ReadFile(p));
    }
  }

  g_dump_path = std::getenv("GMS_FUZZ_DUMP_LAST");

  for (const std::vector<uint8_t>& entry : corpus) {
    RunOne(entry);
  }

  g_rng = seed * 0x9E3779B97F4A7C15ULL + 1;
  for (uint64_t i = 0; i < iters; ++i) {
    std::vector<uint8_t> input;
    if (!corpus.empty() && NextRand() % 8 != 0) {
      input = corpus[NextRand() % corpus.size()];
    }
    Mutate(&input);
    RunOne(input);
  }

  std::printf("fuzz-smoke ok: %zu corpus entries + %" PRIu64
              " mutated inputs (seed %" PRIu64 ")\n",
              corpus.size(), iters, seed);
  return 0;
}
