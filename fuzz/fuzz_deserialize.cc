// Harness for every sketch Deserialize: any byte string must produce
// either a sketch or a Status -- no crashes, no aborts, no unbounded
// allocation commanded by a hostile shape header. When a buffer does
// deserialize, the reconstructed sketch must survive a
// Serialize -> Deserialize round trip with equal state, so the seed corpus
// of valid frames (fuzz/corpus/wire) keeps the accept paths covered while
// mutations explore the reject paths.
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "connectivity/k_skeleton.h"
#include "connectivity/spanning_forest_sketch.h"
#include "sketch/l0_sampler.h"
#include "sparsify/sparsifier_sketch.h"
#include "util/check.h"
#include "vertexconn/hyper_vc_query.h"
#include "vertexconn/vc_query_sketch.h"
#include "wire/wire.h"

namespace {

// Deserialize, and on success re-serialize and deserialize again: the
// round trip must succeed and land on equal state.
template <typename SketchT>
int TryOne(std::span<const uint8_t> buf) {
  gms::Result<SketchT> sketch = SketchT::Deserialize(buf);
  if (!sketch.ok()) return 0;
  std::vector<uint8_t> again;
  sketch->Serialize(&again);
  gms::Result<SketchT> redo = SketchT::Deserialize(again);
  GMS_CHECK_MSG(redo.ok(), "re-deserialize of a serialized sketch failed");
  GMS_CHECK_MSG(sketch->StateEquals(*redo),
                "serialize/deserialize round trip changed state");
  return 1;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::span<const uint8_t> buf(data, size);
  // Dispatch on the preamble's type field: only the matching Deserialize
  // can accept, and each mismatched attempt would checksum the whole
  // buffer (the type check sits behind it, deliberately -- corruption is
  // diagnosed before routing). One wrong-type attempt keeps the mismatch
  // path covered; a failed peek means every Deserialize must reject, and
  // rejects before the checksum, so trying them all stays cheap.
  gms::Result<gms::wire::FrameType> peek = gms::wire::PeekFrameType(buf);
  const bool all = !peek.ok();
  auto want = [&](gms::wire::FrameType t) {
    return all || *peek == t ||
           static_cast<uint16_t>(t) ==
               1 + static_cast<uint16_t>(*peek) % 6;
  };
  int accepted = 0;
  if (want(gms::wire::FrameType::kL0Sampler)) {
    accepted += TryOne<gms::L0Sampler>(buf);
  }
  if (want(gms::wire::FrameType::kSpanningForest)) {
    accepted += TryOne<gms::SpanningForestSketch>(buf);
  }
  if (want(gms::wire::FrameType::kKSkeleton)) {
    accepted += TryOne<gms::KSkeletonSketch>(buf);
  }
  if (want(gms::wire::FrameType::kVcQuery)) {
    accepted += TryOne<gms::VcQuerySketch>(buf);
  }
  if (want(gms::wire::FrameType::kHyperVcQuery)) {
    accepted += TryOne<gms::HyperVcQuerySketch>(buf);
  }
  if (want(gms::wire::FrameType::kSparsifier)) {
    accepted += TryOne<gms::HypergraphSparsifierSketch>(buf);
  }
  // The frame type field is part of the validated preamble, so at most one
  // sketch class can claim a given buffer.
  GMS_CHECK(accepted <= 1);
  return 0;
}
