// Regenerates the checked-in seed corpora under fuzz/corpus/:
//
//   gms_gen_corpus <output-root>
//
// writes <root>/wire/ (valid + deliberately corrupted frames of all six
// sketch types), <root>/stream/ (byte-encoded generator streams), and
// <root>/stream_file/ (GMSB binary stream-file images, valid + hostile).
// Deterministic: rerunning produces identical bytes, so corpus churn in
// review means the wire format or the generators actually changed.
#include <cstdio>
#include <string>

#include "testkit/corpus.h"
#include "workload/file_corpus.h"

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <output-root>\n", argv[0]);
    return 2;
  }
  const std::string root = argv[1];
  struct {
    const char* subdir;
    std::vector<gms::testkit::CorpusEntry> entries;
  } corpora[] = {
      {"wire", gms::testkit::WireSeedCorpus()},
      {"stream", gms::testkit::StreamSeedCorpus()},
      {"stream_file", gms::workload::StreamFileSeedCorpus()},
  };
  for (const auto& c : corpora) {
    const std::string dir = root + "/" + c.subdir;
    gms::Result<size_t> written = gms::testkit::WriteCorpusDir(dir, c.entries);
    if (!written.ok()) {
      std::fprintf(stderr, "%s: %s\n", dir.c_str(),
                   written.status().ToString().c_str());
      return 1;
    }
    std::printf("%s: %zu files\n", dir.c_str(), *written);
  }
  return 0;
}
