// Workload-corpus CLI: turn a one-line StreamSpec into a disk-resident
// GMSB binary stream, then replay it from the file through the composed
// applications (DESIGN.md §14). The spec line IS the provenance record:
// any corpus file can be rebuilt bit-for-bit from the line alone.
//
//   $ ./corpus_cli encode 'gms-spec-v1;family=rmat;n=256;m=512' out.gmsb
//   $ ./corpus_cli replay out.gmsb
//   $ ./corpus_cli demo            # encode + replay a built-in spec
#include <cstdio>
#include <cstring>
#include <string>

#include "apps/approx_min_cut.h"
#include "apps/two_edge_connect.h"
#include "stream/stream_driver.h"
#include "testkit/stream_spec.h"
#include "workload/binary_stream.h"
#include "workload/spec_convert.h"

using namespace gms;

namespace {

int Encode(const std::string& line, const std::string& path) {
  auto spec = testkit::StreamSpec::Parse(line);
  if (!spec.ok()) {
    std::fprintf(stderr, "bad spec: %s\n",
                 spec.status().ToString().c_str());
    return 1;
  }
  testkit::BuiltStream built;
  Status st = workload::WriteSpecStreamFile(*spec, path, &built);
  if (!st.ok()) {
    std::fprintf(stderr, "write failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s: n=%zu max_rank=%zu, %zu updates\n", path.c_str(),
              spec->n, built.max_rank, built.stream.size());
  std::printf("provenance: %s\n", spec->ToString().c_str());
  return 0;
}

int Replay(const std::string& path) {
  auto file = workload::BinaryFileStream::Open(path);
  if (!file.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 file.status().ToString().c_str());
    return 1;
  }
  const size_t n = file->n();
  std::printf("%s: n=%zu max_rank=%zu, %llu updates\n", path.c_str(), n,
              file->max_rank(),
              static_cast<unsigned long long>(file->num_updates()));

  // Replay straight from the mapping into both applications: the reader
  // threads decode their record shards in place.
  apps::TwoEdgeConnect tec(n, file->max_rank(), /*seed=*/1);
  apps::ApproxMinCut mincut(n, file->max_rank(), /*k_cap=*/4, /*seed=*/2);
  GutterDriverParams dp;
  dp.readers = 2;
  dp.appliers = 2;
  workload::DriveBinaryFileStream(&tec, *file, dp);
  workload::DriveBinaryFileStream(&mincut, *file, dp);

  auto two_ec = tec.Query();
  if (two_ec.ok()) {
    std::printf("components:          %zu\n",
                two_ec.value().num_components);
    std::printf("bridges:             %zu\n", two_ec.value().bridges.size());
    std::printf("2-edge-connected:    %s\n",
                two_ec.value().two_edge_connected ? "yes" : "no");
  } else {
    std::printf("2ec query refused:   %s\n",
                two_ec.status().ToString().c_str());
  }
  auto cut = mincut.Query();
  if (cut.ok()) {
    std::printf("min cut:             %zu%s (resolved at k=%zu)\n",
                cut.value().value, cut.value().exact ? "" : " (>=, capped)",
                cut.value().resolved_k);
  } else {
    std::printf("min-cut query refused: %s\n",
                cut.status().ToString().c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 4 && std::strcmp(argv[1], "encode") == 0) {
    return Encode(argv[2], argv[3]);
  }
  if (argc >= 3 && std::strcmp(argv[1], "replay") == 0) {
    return Replay(argv[2]);
  }
  if (argc >= 2 && std::strcmp(argv[1], "demo") == 0) {
    const std::string line =
        "gms-spec-v1;family=temporal_churn;n=128;m=256;gseed=7";
    const std::string path = "/tmp/gms_corpus_demo.gmsb";
    std::printf("demo spec: %s\n\n", line.c_str());
    if (int rc = Encode(line, path); rc != 0) return rc;
    std::printf("\n");
    return Replay(path);
  }
  std::fprintf(stderr,
               "usage:\n"
               "  %s encode '<spec line>' <out.gmsb>\n"
               "  %s replay <in.gmsb>\n"
               "  %s demo\n",
               argv[0], argv[0], argv[0]);
  return 2;
}
