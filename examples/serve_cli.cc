// Scenario: a live connectivity dashboard over a changing network.
//
// One thread streams link churn into a SketchServer; a "dashboard" fires
// wire-framed queries at it the whole time -- Connected(u, v), component
// counts, Theorem 4 "would losing these routers partition us?" -- without
// ever pausing ingestion. Every answer is stamped with the epoch snapshot
// it was computed against, so the dashboard can show exactly how stale it
// is. This is the always-on counterpart of network_monitor's stop-the-
// world audit points.
//
//   $ ./serve_cli
#include <cstdio>
#include <span>
#include <thread>
#include <vector>

#include "graph/generators.h"
#include "serve/sketch_server.h"
#include "util/random.h"

using namespace gms;

namespace {

/// One framed request/response round trip, as a remote client would do it.
serve::ServeResponse Ask(serve::SketchServer& server,
                         const serve::ServeRequest& req) {
  std::vector<uint8_t> req_buf, resp_buf;
  serve::EncodeServeRequest(req, &req_buf);
  server.HandleFrame(req_buf, &resp_buf);
  auto resp = serve::DecodeServeResponse(resp_buf);
  if (!resp.ok()) {
    std::printf("transport error: %s\n", resp.status().message().c_str());
    return serve::ServeResponse{};
  }
  return *resp;
}

void PrintAnswer(const char* what, const serve::ServeResponse& resp) {
  if (resp.code != StatusCode::kOk) {
    std::printf("  %-28s refused: %s\n", what, resp.message.c_str());
    return;
  }
  std::printf("  %-28s %llu   (epoch %llu, covers %llu updates)\n", what,
              static_cast<unsigned long long>(resp.value),
              static_cast<unsigned long long>(resp.epoch),
              static_cast<unsigned long long>(resp.prefix_updates));
}

}  // namespace

int main() {
  constexpr size_t kRouters = 600;
  constexpr uint64_t kSeed = 20150531;  // PODS'15

  std::printf("bringing up a %zu-router fabric server...\n", kRouters);
  const auto params =
      serve::SketchServerParams::Builder()
          .Forest(ForestSketchParams::Builder()
                      .Config(SketchConfig::Light())
                      .Build())
          .Vc(VcQueryParams::Builder()
                  .K(2)
                  .RMultiplier(0.5)
                  .Forest(ForestSketchParams::Builder()
                              .Config(SketchConfig::Light())
                              .Build())
                  .Build())
          .EpochUpdates(2048)
          .Build();
  serve::SketchServer server(kRouters, params, kSeed);

  // The fabric: three overlaid rings (3-connected whp), streamed with
  // decoy links that appear and disappear (inserts later deleted).
  const Graph fabric = UnionOfHamiltonianCycles(kRouters, 3, kSeed + 1);
  const DynamicStream stream =
      DynamicStream::WithChurn(fabric, /*decoys=*/8000, kSeed + 2);
  const auto& updates = stream.updates();
  std::printf("streaming %zu link events with a live dashboard...\n\n",
              updates.size());

  std::thread ingest([&] {
    constexpr size_t kChunk = 1024;
    for (size_t i = 0; i < updates.size(); i += kChunk) {
      const size_t take = std::min(kChunk, updates.size() - i);
      server.Ingest(std::span<const StreamUpdate>(updates.data() + i, take));
    }
  });

  // The dashboard polls while links churn underneath it.
  Rng rng(kSeed + 3);
  uint64_t polls = 0;
  for (int round = 0; round < 3; ++round) {
    // Let a few epochs land between printouts so the dashboard visibly
    // advances while links still churn.
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
    serve::ServeRequest req;
    req.op = serve::ServeOp::kNumComponents;
    PrintAnswer("components (live):", Ask(server, req));
    for (int i = 0; i < 2000; ++i) {  // hammer in between the printouts
      serve::ServeRequest probe;
      probe.op = serve::ServeOp::kConnected;
      probe.u = rng.Below(kRouters);
      probe.v = rng.Below(kRouters);
      (void)Ask(server, probe);
      ++polls;
    }
  }
  ingest.join();
  server.Flush();
  std::printf("\ningest finished; %llu live polls answered. Final state:\n",
              static_cast<unsigned long long>(polls));

  serve::ServeRequest req;
  req.op = serve::ServeOp::kNumComponents;
  PrintAnswer("components (final):", Ask(server, req));

  req = serve::ServeRequest{};
  req.op = serve::ServeOp::kConnected;
  req.u = 0;
  req.v = kRouters / 2;
  PrintAnswer("connected(0, n/2):", Ask(server, req));

  req = serve::ServeRequest{};
  req.op = serve::ServeOp::kDisconnects;
  req.query_set = {3, 7};
  PrintAnswer("losing routers {3,7} cuts:", Ask(server, req));

  req = serve::ServeRequest{};
  req.op = serve::ServeOp::kVcAtLeast;
  req.t = 2;
  PrintAnswer("2-vertex-connected:", Ask(server, req));

  const auto stats = server.forest_engine().stats();
  std::printf(
      "\nserver internals: %llu epochs sealed, %llu merged, "
      "%llu cache rebuilds, %llu hits\n",
      static_cast<unsigned long long>(stats.epochs_sealed),
      static_cast<unsigned long long>(stats.epochs_merged),
      static_cast<unsigned long long>(stats.cache_rebuilds),
      static_cast<unsigned long long>(stats.cache_hits));
  return 0;
}
