// Scenario: sparsifying a co-authorship-style hypergraph for cut analysis.
//
// Publications are hyperedges over their author sets; the hypergraph
// evolves as records are added and retracted. We maintain the Section 5
// sparsifier sketch over the stream and, at the end, extract a weighted
// sparsifier, compare its cuts against ground truth, and run a min-cut
// analysis (the "community split" question) on the small sparsifier
// instead of the big graph -- the load-balancing / partitioning use case
// the paper's introduction cites.
//
//   $ ./hypergraph_sparsify
#include <cstdio>

#include "exact/hypergraph_mincut.h"
#include "graph/generators.h"
#include "sparsify/sparsifier_sketch.h"
#include "sparsify/verify.h"
#include "stream/stream.h"

using namespace gms;

int main() {
  std::printf("hypergraph_sparsify: streaming cut sparsification\n\n");

  // Synthetic co-authorship data: two communities with dense internal
  // collaboration and exactly 3 cross-community papers.
  const size_t n = 15;
  auto planted = PlantedHypergraphCut(n, /*r=*/3, /*cut_size=*/3,
                                      /*edges_per_side=*/25, /*seed=*/1);
  const Hypergraph& record_db = planted.hypergraph;
  std::printf("input: %zu authors, %zu publications (rank <= 3)\n", n,
              record_db.NumEdges());

  // Stream with retraction churn: 40 records inserted then retracted.
  DynamicStream stream = DynamicStream::WithChurn(record_db, 40, 3, 2);
  std::printf("stream: %zu updates including retractions\n\n", stream.size());

  SparsifierParams params;
  params.k = 8;        // ~ eps^-2 (ln n + r) at eps ~ 1
  params.levels = 8;
  params.forest.config = SketchConfig::Light();
  HypergraphSparsifierSketch sketch(n, 3, params, 3);
  sketch.Process(stream);
  std::printf("sketch state: %.1f KiB, peeling threshold k=%zu, %zu levels\n",
              sketch.MemoryBytes() / 1024.0, sketch.k(), sketch.levels());

  auto out = sketch.ExtractSparsifier();
  if (!out.ok()) {
    std::printf("extraction failed: %s\n", out.status().ToString().c_str());
    return 1;
  }
  std::printf("\nsparsifier: %zu weighted hyperedges (%.0f%% of input)\n",
              out->sparsifier.size(),
              100.0 * static_cast<double>(out->sparsifier.size()) /
                  static_cast<double>(record_db.NumEdges()));
  std::printf("level profile |F_i|: ");
  for (size_t s : out->level_sizes) std::printf("%zu ", s);
  std::printf("\n");

  // Exhaustive verification (n is small enough to enumerate all cuts).
  auto report = VerifySparsifier(record_db, out->sparsifier, 1.0);
  std::printf(
      "\ncut fidelity over all %zu cuts: max err %.3f, avg err %.3f, "
      "zero-mismatches %zu\n",
      report.stats.cuts_checked, report.stats.max_rel_error,
      report.stats.avg_rel_error, report.stats.zero_mismatches);

  // Downstream analysis on the sparsifier: find the community split.
  auto sparse_cut = HypergraphMinCut(n, out->sparsifier.edges,
                                     out->sparsifier.weights);
  auto exact_cut = HypergraphMinCut(record_db);
  std::printf(
      "\nmin-cut analysis:\n  exact min cut      = %.0f (planted %zu)\n"
      "  sparsifier min cut = %.1f\n",
      exact_cut.value, planted.planted_cut_size, sparse_cut.value);
  size_t agree = 0;
  for (size_t v = 0; v < n; ++v) {
    agree += (sparse_cut.side[v] == planted.in_s[v] ||
              sparse_cut.side[v] == !planted.in_s[v])
                 ? 1
                 : 0;
  }
  // Count agreement up to complementation.
  size_t match = 0, match_flip = 0;
  for (size_t v = 0; v < n; ++v) {
    match += sparse_cut.side[v] == planted.in_s[v] ? 1 : 0;
    match_flip += sparse_cut.side[v] != planted.in_s[v] ? 1 : 0;
  }
  std::printf("  community recovery: %zu/%zu authors on the planted side\n",
              std::max(match, match_flip), n);
  (void)agree;
  return 0;
}
