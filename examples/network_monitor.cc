// Scenario: monitoring the resilience of an evolving datacenter fabric.
//
// A network operator streams link up/down events (edge inserts/deletes)
// through vertex-connectivity sketches and, at audit points, asks:
//   * is the fabric still connected?
//   * would the failure of any specific set of <= k routers partition it?
//   * does the fabric certify k-vertex-connectivity (no k-1 routers are a
//     single point of failure)?
// This exercises the Section 3 algorithms end to end on a workload shaped
// like the paper's motivation: massive, constantly changing graphs.
//
//   $ ./network_monitor
#include <cstdio>
#include <vector>

#include "exact/vertex_connectivity.h"
#include "graph/generators.h"
#include "graph/traversal.h"
#include "util/random.h"
#include "vertexconn/vc_estimator.h"
#include "vertexconn/vc_query_sketch.h"

using namespace gms;

namespace {

struct Fabric {
  Graph graph;             // ground truth, for the report card only
  VcQuerySketch* query;    // Theorem 4 structure
  VcEstimator* estimator;  // Theorem 8 structure

  void Link(VertexId a, VertexId b, int delta) {
    Edge e(a, b);
    if (delta > 0 ? !graph.AddEdge(e) : !graph.RemoveEdge(e)) return;
    query->Update(e, delta);
    estimator->Update(e, delta);
  }
};

}  // namespace

int main() {
  const size_t n = 48;       // routers
  const size_t k = 2;        // failure budget we audit against
  std::printf("network_monitor: %zu routers, auditing %zu-failure sets\n\n",
              n, k);

  const VcQueryParams qp =
      VcQueryParams::Builder()
          .K(k)
          .RMultiplier(0.5)
          .Forest(
              ForestSketchParams::Builder().Config(SketchConfig::Light()).Build())
          .Build();
  VcQuerySketch query(n, qp, 1);

  VcEstimatorParams ep;
  ep.k = k + 1;  // certify (k+1)-connectivity = no k-set partitions
  ep.epsilon = 1.0;
  ep.r_multiplier = 0.05;
  ep.forest.config = SketchConfig::Light();
  VcEstimator estimator(n, ep, 2);

  Fabric fabric{Graph(n), &query, &estimator};

  // Phase 1: bring up a double ring (2-connected, not 3-connected).
  Rng rng(3);
  for (VertexId i = 0; i < n; ++i) {
    fabric.Link(i, (i + 1) % n, +1);
    fabric.Link(i, (i + 2) % n, +1);
  }
  // Phase 2: operational churn -- transient cross links come and go.
  for (int event = 0; event < 600; ++event) {
    VertexId a = static_cast<VertexId>(rng.Below(n));
    VertexId b = static_cast<VertexId>(rng.Below(n));
    if (a == b) continue;
    if (fabric.graph.HasEdge(a, b)) {
      // Never tear the rings down; only churn the extra links.
      if ((b == (a + 1) % n) || (b == (a + 2) % n) ||
          (a == (b + 1) % n) || (a == (b + 2) % n)) {
        continue;
      }
      fabric.Link(a, b, -1);
    } else {
      fabric.Link(a, b, +1);
    }
  }

  std::printf("after %zu links live (stream included deletions):\n",
              fabric.graph.NumEdges());
  auto query_snap = query.Query();
  if (!query_snap.ok()) {
    std::printf("sketch query failed\n");
    return 1;
  }

  // Audit 1: specific failure scenarios.
  std::printf("\naudit 1: would these router-pair failures partition us?\n");
  std::vector<std::vector<VertexId>> scenarios = {
      {0, 1}, {0, 24}, {5, 6}, {10, 40}};
  for (const auto& s : scenarios) {
    auto sketch_says = query_snap.value().Disconnects(s);
    bool truth = !IsConnectedExcluding(fabric.graph, s);
    std::printf("  fail {%2u,%2u}: sketch=%s  truth=%s  %s\n", s[0], s[1],
                sketch_says.ok() ? (*sketch_says ? "PARTITION" : "ok       ")
                                 : "error",
                truth ? "PARTITION" : "ok       ",
                (sketch_says.ok() && *sketch_says == truth) ? "[agree]"
                                                            : "[MISMATCH]");
  }

  // Audit 2: global certification.
  auto kappa_h = estimator.EstimateKappa();
  size_t kappa_true = VertexConnectivity(fabric.graph);
  std::printf(
      "\naudit 2: global resilience\n"
      "  estimator's witness connectivity kappa(H) = %s\n"
      "  true vertex connectivity            kappa = %zu\n"
      "  certification (kappa >= %zu): %s\n",
      kappa_h.ok() ? std::to_string(*kappa_h).c_str() : "decode-failure",
      kappa_true, k + 1,
      (kappa_h.ok() && *kappa_h >= k + 1) ? "CERTIFIED (witness found)"
                                          : "not certified");

  std::printf(
      "\nspace: query sketch %.1f KiB (R=%zu subsampled forests), "
      "estimator %.1f KiB (R=%zu)\n",
      query.MemoryBytes() / 1024.0, query.R(),
      estimator.MemoryBytes() / 1024.0, estimator.R());
  return 0;
}
