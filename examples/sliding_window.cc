// Scenario: connectivity over a sliding window of interactions.
//
// A social/contact stream where only the most recent W interactions count:
// every new interaction is an edge INSERT, and the interaction falling out
// of the window is an edge DELETE. Insert-only streaming algorithms
// fundamentally cannot do this; linear sketches handle it natively
// (a deletion is a negative update). We track the number of connected
// components of the window graph over time and compare with ground truth
// at checkpoints.
//
//   $ ./sliding_window
#include <cstdio>
#include <deque>

#include "connectivity/connectivity_query.h"
#include "graph/traversal.h"
#include "util/random.h"

using namespace gms;

int main() {
  const size_t n = 64;        // actors
  const size_t window = 120;  // interactions that "count"
  const size_t total = 900;   // interactions in the run
  std::printf(
      "sliding_window: %zu actors, window of %zu interactions, %zu events\n\n",
      n, window, total);

  ConnectivityQuery sketch(n, 2, /*seed=*/1);
  Graph truth(n);
  std::deque<Edge> live;
  Rng rng(2);

  std::printf("%-8s %-12s %-12s %s\n", "event", "sketch", "truth", "verdict");
  size_t checks = 0, agreements = 0, deletions = 0;
  for (size_t t = 1; t <= total; ++t) {
    // A community-biased random interaction (two drifting hubs).
    VertexId hub = static_cast<VertexId>((t / 150) % 2 == 0 ? rng.Below(8)
                                                            : 56 + rng.Below(8));
    VertexId other = static_cast<VertexId>(rng.Below(n));
    if (hub == other) continue;
    Edge e(hub, other);
    if (truth.HasEdge(e)) continue;  // multiplicity must stay 0/1
    truth.AddEdge(e);
    sketch.Update(Hyperedge(e), +1);
    live.push_back(e);
    if (live.size() > window) {
      Edge old = live.front();
      live.pop_front();
      truth.RemoveEdge(old);
      sketch.Update(Hyperedge(old), -1);
      ++deletions;
    }
    if (t % 150 == 0) {
      auto got = sketch.NumComponents();
      size_t exact = NumComponents(truth);
      bool ok = got.ok() && *got == exact;
      ++checks;
      agreements += ok ? 1 : 0;
      std::printf("%-8zu %-12s %-12zu %s\n", t,
                  got.ok() ? std::to_string(*got).c_str() : "decode-fail",
                  exact, ok ? "[agree]" : "[MISMATCH]");
    }
  }
  std::printf(
      "\n%zu/%zu checkpoints agreed. The window forced %zu deletions -- the "
      "regime\nwhere the paper's linear sketches are the only known "
      "technique.\n",
      agreements, checks, deletions);
  std::printf("sketch state: %.1f KiB (the window graph itself never "
              "exceeds %zu edges)\n",
              sketch.MemoryBytes() / 1024.0, window);
  return 0;
}
