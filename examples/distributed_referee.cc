// Scenario: the Becker et al. "referee" model (Section 2) as a distributed
// systems pattern. Each of n storage nodes knows only its own adjacency
// (e.g. replication links it participates in); all share a public random
// seed. Every node sends ONE compact message to a coordinator, which
// decides global connectivity -- one round, no gossip, no edge lists.
//
//   $ ./distributed_referee
#include <cstdio>

#include "comm/simultaneous.h"
#include "graph/generators.h"

using namespace gms;

namespace {

void RunScenario(const char* name, const Hypergraph& topology,
                 uint64_t public_seed) {
  auto report = RunSimultaneousConnectivity(topology, public_seed);
  std::printf(
      "%-22s players=%3zu  message=%6.1f KiB/node  total=%8.1f KiB\n"
      "%-22s referee: %-13s truth: %-13s %s\n\n",
      name, report.num_players, report.max_message_bytes / 1024.0,
      report.total_bytes / 1024.0, "",
      report.referee_answer_connected ? "CONNECTED" : "PARTITIONED",
      report.exact_connected ? "CONNECTED" : "PARTITIONED",
      report.correct ? "[agree]" : "[MISMATCH]");
}

}  // namespace

int main() {
  std::printf("distributed_referee: one-round connectivity protocols\n");
  std::printf("-----------------------------------------------------\n\n");

  // Healthy replication ring with shortcuts.
  RunScenario("healthy fabric",
              Hypergraph::FromGraph(UnionOfHamiltonianCycles(96, 2, 1)), 11);

  // A partitioned deployment: two datacenters, the interconnect is down.
  Graph partitioned(96);
  for (VertexId i = 0; i + 1 < 48; ++i) partitioned.AddEdge(i, i + 1);
  for (VertexId i = 48; i + 1 < 96; ++i) partitioned.AddEdge(i, i + 1);
  RunScenario("partitioned fabric", Hypergraph::FromGraph(partitioned), 12);

  // Multi-party replication groups as hyperedges (a quorum = one edge).
  RunScenario("quorum hypergraph", HyperCycle(96, 4), 13);

  // Sparse gossip overlay near the connectivity threshold.
  RunScenario("threshold overlay",
              Hypergraph::FromGraph(ErdosRenyi(96, 0.05, 2)), 14);

  std::printf(
      "Each node computed its message from ITS OWN links only "
      "(UpdateLocal),\nthen SERIALIZED it into a checksummed wire frame; "
      "the coordinator\nDESERIALIZED the n frames, merged them "
      "(MergeFrom), and decoded --\nthe vertex-based sketch property of "
      "Definition 1 in action. Message\nsizes above are measured from the "
      "bytes on the wire.\n");
  return 0;
}
