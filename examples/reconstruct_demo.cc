// Scenario: exact graph reconstruction from tiny per-vertex summaries.
//
// A sensor network's topology must be recovered at a basestation, but each
// sensor can only ship a small linear summary of its own adjacency (and
// links appear AND disappear while summaries accumulate). This is the
// Section 4 reconstruction problem. We run both machines on the paper's
// own separating example:
//   * the Becker et al. row sketch (needs d-degeneracy), and
//   * Theorem 15's cut-degeneracy sketch (needs only d-cut-degeneracy),
// on the Lemma 10 witness -- minimum degree 3, yet 2-cut-degenerate.
//
//   $ ./reconstruct_demo
#include <cstdio>

#include "exact/degeneracy.h"
#include "graph/generators.h"
#include "reconstruct/cut_degenerate.h"
#include "reconstruct/row_reconstruct.h"
#include "stream/stream.h"

using namespace gms;

int main() {
  std::printf("reconstruct_demo: recovering a graph from linear sketches\n");
  std::printf("---------------------------------------------------------\n\n");

  Graph g = Lemma10Witness();
  std::printf(
      "input: the paper's Lemma 10 witness (8 vertices, %zu edges)\n"
      "  degeneracy        = %zu  (min degree 3: NOT 2-degenerate)\n"
      "  cut-degeneracy    = %zu  (every induced subgraph has a cut <= 2)\n\n",
      g.NumEdges(), Degeneracy(g), CutDegeneracyBrute(g));

  DynamicStream stream = DynamicStream::WithChurn(g, 10, 1);
  std::printf("stream: %zu updates (links flap while summaries accumulate)\n\n",
              stream.size());

  // Theorem 15 sketch provisioned at d = cut-degeneracy = 2.
  CutDegenerateReconstructor thm15(8, 2, /*d=*/2, /*seed=*/2);
  thm15.Process(stream);
  auto rec = thm15.Reconstruct();
  std::printf("[Theorem 15, d=2] ");
  if (rec.ok() && rec->complete && rec->hypergraph.ToGraph() == g) {
    std::printf("EXACT reconstruction in %zu peel layers, %.1f KiB state\n",
                rec->num_layers, thm15.MemoryBytes() / 1024.0);
  } else {
    std::printf("failed (%s)\n",
                rec.ok() ? "incomplete" : rec.status().ToString().c_str());
  }

  // Becker baseline provisioned at the same d = 2: no guarantee (the graph
  // is not 2-degenerate). At its true degeneracy 3, guaranteed.
  for (size_t d : {2, 3}) {
    RowReconstructSketch becker(8, d, 3 + d);
    becker.Process(stream);
    auto row = becker.Reconstruct();
    bool exact = row.ok() && *row == g;
    std::printf("[Becker rows, d=%zu] %s (%.1f KiB state)%s\n", d,
                exact ? "reconstructed" : "FAILED",
                becker.MemoryBytes() / 1024.0,
                d == 2 ? "  <- outside its guaranteed class" : "");
  }

  // A bigger input: random 2-degenerate graph, both succeed.
  std::printf("\nlarger input: random 2-degenerate graph on 64 vertices\n");
  Graph big = RandomDDegenerate(64, 2, 7);
  DynamicStream big_stream = DynamicStream::WithChurn(big, 120, 8);
  RowReconstructSketch becker(64, 2, 9);
  becker.Process(big_stream);
  auto row = becker.Reconstruct();
  std::printf("[Becker rows, d=2]  %s, %.1f KiB total\n",
              (row.ok() && *row == big) ? "exact" : "failed",
              becker.MemoryBytes() / 1024.0);
  CutDegenerateReconstructor thm15_big(64, 2, 2, 10);
  thm15_big.Process(big_stream);
  auto rec_big = thm15_big.Reconstruct();
  std::printf("[Theorem 15, d=2]   %s, %.1f KiB total\n",
              (rec_big.ok() && rec_big->complete &&
               rec_big->hypergraph.ToGraph() == big)
                  ? "exact"
                  : "failed",
              thm15_big.MemoryBytes() / 1024.0);
  std::printf(
      "\nTakeaway: Theorem 15 reconstructs a strictly larger class for the "
      "same d,\nat the price of a bigger polylog factor per vertex.\n");
  return 0;
}
