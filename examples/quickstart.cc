// Quickstart: sketch a dynamic graph stream in one pass, then answer
// connectivity, k-edge-connectivity, and vertex-removal questions -- the
// three headline capabilities of the library.
//
//   $ ./quickstart
#include <cstdio>

#include "connectivity/connectivity_query.h"
#include "graph/generators.h"
#include "stream/stream.h"
#include "vertexconn/vc_query_sketch.h"

using namespace gms;

int main() {
  std::printf("graphsketch quickstart\n");
  std::printf("----------------------\n");

  // A graph with a planted 2-vertex separator, streamed with heavy churn:
  // half again as many edges are inserted and later deleted.
  const size_t n = 64;
  auto planted = PlantedSeparator(n, /*k=*/2, /*seed=*/7);
  DynamicStream stream =
      DynamicStream::WithChurn(planted.graph, planted.graph.NumEdges() / 2,
                               /*seed=*/8);
  std::printf("input: n=%zu, m=%zu, stream of %zu updates (%zu deletions)\n",
              n, planted.graph.NumEdges(), stream.size(),
              (stream.size() - planted.graph.NumEdges()) / 2);

  // --- 1. Connectivity from O(n polylog n) space (Theorem 2). ---
  ConnectivityQuery connectivity(n, /*max_rank=*/2, /*seed=*/1);
  connectivity.Process(stream);
  auto connected = connectivity.IsConnected();
  std::printf("\n[1] connectivity sketch: %s (space %.1f KiB)\n",
              connected.ok() ? (*connected ? "CONNECTED" : "disconnected")
                             : connected.status().ToString().c_str(),
              connectivity.MemoryBytes() / 1024.0);

  // --- 2. k-edge-connectivity via a k-skeleton (Theorem 14). ---
  EdgeConnectivityQuery edge_conn(n, 2, /*k=*/4, /*seed=*/2);
  edge_conn.Process(stream);
  auto lambda = edge_conn.EdgeConnectivityCapped();
  if (lambda.ok()) {
    std::printf("[2] k-skeleton sketch:   min(4, edge connectivity) = %zu\n",
                *lambda);
  }

  // --- 3. Vertex-removal queries (Theorem 4). ---
  const VcQueryParams params =
      VcQueryParams::Builder()
          .K(2)
          .RMultiplier(0.5)  // fraction of the paper's 16 k^2 ln n
          .Forest(
              ForestSketchParams::Builder().Config(SketchConfig::Light()).Build())
          .Build();
  VcQuerySketch vc(n, params, /*seed=*/3);
  vc.Process(stream);
  auto vc_snap = vc.Query();
  if (!vc_snap.ok()) {
    std::printf("[3] query failed\n");
    return 1;
  }
  auto hit = vc_snap.value().Disconnects(planted.separator);
  std::printf(
      "[3] vertex-removal sketch (R=%zu forests, %.1f KiB):\n"
      "    removing the planted separator {%u, %u}  -> %s\n",
      vc.R(), vc.MemoryBytes() / 1024.0, planted.separator[0],
      planted.separator[1],
      hit.ok() && *hit ? "DISCONNECTS (correct!)" : "stays connected");
  std::vector<VertexId> decoy = {planted.side_a[0], planted.side_b[0]};
  auto miss = vc_snap.value().Disconnects(decoy);
  std::printf("    removing a non-separator pair {%u, %u} -> %s\n", decoy[0],
              decoy[1],
              miss.ok() && !*miss ? "stays connected (correct!)"
                                  : "DISCONNECTS");

  std::printf(
      "\nAll three answers came from linear sketches maintained in one "
      "pass\nover an insert+delete stream -- no edge was ever stored "
      "explicitly.\n");
  return 0;
}
