// A command-line stream processor: reads a dynamic hyperedge stream in the
// gms text format from stdin (or a demo stream if stdin is a TTY), sketches
// it in one pass, and prints a full analysis -- connectivity, components,
// capped edge connectivity, and a light-edge decomposition.
//
//   $ ./stream_cli < my_stream.txt
//   $ printf 'n 4\n+ 0 1\n+ 1 2\n+ 2 3\n- 1 2\n' | ./stream_cli
#include <cstdio>
#include <iostream>
#include <unistd.h>

#include "connectivity/connectivity_query.h"
#include "graph/generators.h"
#include "reconstruct/light_recovery.h"
#include "stream/io.h"

using namespace gms;

int main() {
  ParsedStream input;
  if (isatty(STDIN_FILENO)) {
    std::printf("(no stdin: analyzing a built-in demo stream)\n");
    Hypergraph demo = RandomHypergraph(32, 64, 2, 3, 7);
    input.n = 32;
    input.stream = DynamicStream::WithChurn(demo, 20, 3, 8);
  } else {
    auto parsed = ReadStream(std::cin);
    if (!parsed.ok()) {
      std::fprintf(stderr, "parse error: %s\n",
                   parsed.status().ToString().c_str());
      return 1;
    }
    input = std::move(*parsed);
  }

  size_t max_rank = 2;
  for (const auto& u : input.stream) {
    max_rank = std::max(max_rank, u.edge.size());
  }
  std::printf("stream: n=%zu, %zu updates, max hyperedge rank %zu\n\n",
              input.n, input.stream.size(), max_rank);

  // One pass, three sketches.
  ConnectivityQuery conn(input.n, max_rank, 1);
  EdgeConnectivityQuery econn(input.n, max_rank, /*k=*/4, 2);
  ForestSketchParams light_params;
  light_params.config = SketchConfig::Light();
  LightRecoverySketch light(input.n, max_rank, /*k=*/2, 3, light_params);
  for (const auto& u : input.stream) {
    conn.Update(u.edge, u.delta);
    econn.Update(u.edge, u.delta);
    light.Update(u.edge, u.delta);
  }

  auto components = conn.NumComponents();
  if (components.ok()) {
    std::printf("components:            %zu (%s)\n", *components,
                *components == 1 ? "connected" : "disconnected");
  } else {
    std::printf("components:            %s\n",
                components.status().ToString().c_str());
  }
  auto lambda = econn.EdgeConnectivityCapped();
  if (lambda.ok()) {
    std::printf("edge connectivity:     %zu%s\n", *lambda,
                *lambda >= 4 ? " (>= 4, capped)" : "");
  }
  auto rec = light.Recover();
  if (rec.ok()) {
    std::printf(
        "light-edge structure:  %zu edges with lambda_e <= 2 recovered in "
        "%zu layers%s\n",
        rec->light.NumEdges(), rec->layers.size(),
        rec->residual_nonempty ? "; a >2-connected core remains" : "");
    if (rec->light.NumEdges() > 0 && rec->light.NumEdges() <= 24) {
      std::printf("  recovered:");
      for (const auto& e : rec->light.Edges()) {
        std::printf(" %s", e.ToString().c_str());
      }
      std::printf("\n");
    }
  }
  std::printf("\nsketch state: %.1f KiB total for all three structures\n",
              (conn.MemoryBytes() + econn.MemoryBytes() +
               light.MemoryBytes()) /
                  1024.0);
  return 0;
}
