// The differential-oracle matrix: every generator family crossed with
// every applicable (sketch, exact) oracle pair, >= 32 independently seeded
// trials per cell, success rates asserted to be statistically consistent
// with the configured bound at the 95% Wilson interval. This is the
// statistical heart of the testkit -- it does not assert "seed 7 works",
// it asserts the observed failure rate does not refute the whp guarantee.
//
// This binary carries the `slow` ctest label: run nightly (or locally)
// with `ctest --label-regex slow`; exclude it from quick edit loops with
// `ctest --label-exclude slow`.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "testkit/oracle.h"
#include "testkit/stream_spec.h"

namespace gms {
namespace testkit {
namespace {

bool IsHyperFamily(Family f) {
  switch (f) {
    case Family::kHyperCycle:
    case Family::kRandomUniform:
    case Family::kRandomHypergraph:
    case Family::kPlantedHyperSeparator:
    case Family::kPlantedHyperCut:
      return true;
    default:
      return false;
  }
}

std::vector<StreamSpec> GridSpecs(bool insert_only,
                                  int family_filter /* -1 all, 0 graph,
                                                       1 hyper */) {
  std::vector<StreamSpec> out;
  for (const StreamSpec& spec : DefaultSpecGrid()) {
    if (insert_only && spec.churn != Churn::kInsertOnly) continue;
    if (family_filter == 0 && IsHyperFamily(spec.family)) continue;
    if (family_filter == 1 && !IsHyperFamily(spec.family)) continue;
    out.push_back(spec);
  }
  return out;
}

struct SweepCase {
  OracleKind kind;
  std::vector<StreamSpec> specs;
  OracleOptions opt;
  /// The sweep must not refute success probability >= this at 95%.
  double min_success;
};

constexpr size_t kTrials = 32;

void RunCase(const SweepCase& c) {
  ASSERT_FALSE(c.specs.empty());
  for (const StreamSpec& spec : c.specs) {
    SCOPED_TRACE(std::string(OracleName(c.kind)) + " over " +
                 spec.ToString());
    SweepResult sweep = RunSweep(c.kind, spec, kTrials, c.opt);
    EXPECT_GE(sweep.trials, 1u) << "oracle never applicable";
    // Silent disagreements are bugs, not whp failure events: a sketch may
    // honestly refuse (DecodeFailure), but when it answers it answers
    // right at these sizes. Report the one-line repro on violation.
    std::string repros;
    for (const std::string& f : sweep.failures) repros += "\n  " + f;
    EXPECT_TRUE(sweep.ConsistentWith(c.min_success))
        << sweep.successes << "/" << sweep.trials << " successes ("
        << sweep.decode_failures << " decode failures, "
        << sweep.disagreements << " disagreements); interval ["
        << sweep.interval().lo << ", " << sweep.interval().hi << "]"
        << repros;
  }
}

TEST(OracleSweep, ComponentsAcrossAllFamiliesAndChurns) {
  SweepCase c;
  c.kind = OracleKind::kComponents;
  c.specs = GridSpecs(/*insert_only=*/false, /*family_filter=*/-1);
  c.min_success = 0.95;
  RunCase(c);
}

TEST(OracleSweep, SpanningGraphHasNoGhostEdges) {
  SweepCase c;
  c.kind = OracleKind::kSpanningNoGhost;
  c.specs = GridSpecs(/*insert_only=*/false, /*family_filter=*/-1);
  c.min_success = 0.95;
  RunCase(c);
}

TEST(OracleSweep, L0SamplesLiveInTheFinalGraph) {
  SweepCase c;
  c.kind = OracleKind::kL0Sampler;
  c.specs = GridSpecs(/*insert_only=*/false, /*family_filter=*/-1);
  c.min_success = 0.95;
  RunCase(c);
}

TEST(OracleSweep, EdgeConnectivityMatchesHypergraphMinCut) {
  SweepCase c;
  c.kind = OracleKind::kEdgeConnectivity;
  c.specs = GridSpecs(/*insert_only=*/true, /*family_filter=*/-1);
  c.opt.k = 3;
  c.min_success = 0.9;
  RunCase(c);
}

TEST(OracleSweep, LightRecoveryMatchesOfflinePeeling) {
  SweepCase c;
  c.kind = OracleKind::kLightRecovery;
  c.specs = GridSpecs(/*insert_only=*/true, /*family_filter=*/-1);
  c.opt.k = 2;
  c.min_success = 0.9;
  RunCase(c);
}

TEST(OracleSweep, VcQueriesMatchEvenTarjanSemantics) {
  SweepCase c;
  c.kind = OracleKind::kVcQuery;
  c.specs = GridSpecs(/*insert_only=*/true, /*family_filter=*/0);
  c.opt.k = 2;
  c.opt.num_queries = 3;
  c.min_success = 0.85;
  RunCase(c);
}

TEST(OracleSweep, HyperVcQueriesMatchExactExclusion) {
  SweepCase c;
  c.kind = OracleKind::kHyperVcQuery;
  c.specs = GridSpecs(/*insert_only=*/true, /*family_filter=*/1);
  c.opt.k = 2;
  c.opt.num_queries = 3;
  c.min_success = 0.85;
  RunCase(c);
}

TEST(OracleSweep, SparsifierPreservesCutsWithinEpsilon) {
  SweepCase c;
  c.kind = OracleKind::kSparsifier;
  // The most expensive oracle (levels x k forests per trial, plus sampled
  // cut verification): representative graph + hypergraph + planted-cut
  // families rather than the whole grid.
  for (Family f : {Family::kErdosRenyi, Family::kRandomUniform,
                   Family::kPlantedHyperCut}) {
    for (const StreamSpec& spec : DefaultSpecGrid()) {
      if (spec.family == f && spec.churn == Churn::kInsertOnly) {
        c.specs.push_back(spec);
      }
    }
  }
  c.min_success = 0.8;
  RunCase(c);
}

TEST(OracleSweep, TwoEdgeConnectMatchesBruteBridges) {
  SweepCase c;
  c.kind = OracleKind::kTwoEdgeConnect;
  c.specs = GridSpecs(/*insert_only=*/false, /*family_filter=*/-1);
  c.min_success = 0.9;
  RunCase(c);
}

TEST(OracleSweep, ApproxMinCutMatchesExactGlobalMinCut) {
  SweepCase c;
  c.kind = OracleKind::kApproxMinCut;
  c.specs = GridSpecs(/*insert_only=*/true, /*family_filter=*/-1);
  // k_cap = 4: the doubling ladder runs levels k = 1, 2, 4, so both the
  // exact-below-k exit and the saturated cap are exercised across the grid.
  c.opt.k = 4;
  c.min_success = 0.85;
  RunCase(c);
}

TEST(OracleSweep, BridgeQueriesOverTheWireMatchBruteBridges) {
  SweepCase c;
  c.kind = OracleKind::kBridgeQuery;
  // Each trial stands up a full SketchServer (engine threads + wire
  // round-trips), so sweep the graph-only insert-only slice of the grid.
  c.specs = GridSpecs(/*insert_only=*/true, /*family_filter=*/0);
  c.opt.num_queries = 4;
  c.min_success = 0.9;
  RunCase(c);
}

// Churn schedules must not change ANY oracle's behavior (the sketches are
// linear; decoys cancel exactly). One representative expensive-oracle case
// to complement the cheap all-churn sweeps above.
TEST(OracleSweep, ChurnDoesNotDegradeVcQueries) {
  SweepCase c;
  c.kind = OracleKind::kHyperVcQuery;
  for (const StreamSpec& spec : DefaultSpecGrid()) {
    if (spec.family == Family::kPlantedHyperSeparator &&
        spec.churn != Churn::kInsertOnly) {
      c.specs.push_back(spec);
    }
  }
  c.opt.k = 2;
  c.opt.num_queries = 3;
  c.min_success = 0.85;
  RunCase(c);
}

}  // namespace
}  // namespace testkit
}  // namespace gms
