// Section 4.2's discussion, exercised empirically. The paper stresses that
// k-skeleton construction must use k INDEPENDENT sketches: the union-bound
// argument fails when one sketch is queried on inputs (G - F_1 - ...) that
// depend on its own randomness, and a footnote notes that if adaptive
// reuse worked in general, an O(n polylog n)-bit sketch would reconstruct
// arbitrary graphs, contradicting an Omega(n^2) information bound.
//
// At laptop scales that information bound does not bite (the sketch has
// more raw cells than the graph has edges) and the exact-recovery layer is
// deterministic-once-decodable, so adaptive peeling often *happens* to
// work; what it lacks is any guarantee. These tests pin down the sound
// properties: per-extraction soundness (recovered edges are real edges),
// the k-independent construction's full guarantee, and the determinism
// that makes Theorem 15's single-sketch reuse legitimate (its peel sets
// are functions of the input only). The adaptive-vs-independent behaviour
// is charted by bench_adaptive_reuse.
#include <gtest/gtest.h>

#include "connectivity/k_skeleton.h"
#include "connectivity/spanning_forest_sketch.h"
#include "graph/generators.h"
#include "graph/traversal.h"
#include "stream/stream.h"

namespace gms {
namespace {

// Adaptive (guarantee-free) strategy: repeatedly extract a spanning graph
// from the SAME sketch, subtract it, repeat.
Hypergraph AdaptivePeel(const Graph& g, size_t layers, uint64_t seed) {
  SpanningForestSketch sketch(g.NumVertices(), 2, seed);
  sketch.Process(DynamicStream::InsertOnly(g, seed + 1));
  Hypergraph recovered(g.NumVertices());
  for (size_t i = 0; i < layers; ++i) {
    auto span = sketch.ExtractSpanningGraph();
    if (!span.ok() || span->NumEdges() == 0) break;
    std::vector<Hyperedge> layer = span->Edges();
    sketch.RemoveHyperedges(layer);
    for (const auto& e : layer) recovered.AddEdge(e);
  }
  return recovered;
}

TEST(AdaptiveReuseTest, AdaptivePeelNeverInventsEdgesHere) {
  // Whatever adaptive reuse recovers, the fingerprint layer keeps it a
  // subgraph of the truth at these scales (soundness of each extraction,
  // even under correlated queries).
  Graph g = CompleteGraph(16);
  for (uint64_t seed = 0; seed < 5; ++seed) {
    Hypergraph rec = AdaptivePeel(g, 15, 70 + seed);
    for (const auto& e : rec.Edges()) {
      EXPECT_TRUE(g.HasEdge(e.AsEdge())) << "ghost " << e.ToString();
    }
  }
}

TEST(AdaptiveReuseTest, IndependentSketchesCarryTheGuarantee) {
  // The sound construction: a 15-skeleton of K16 IS all of K16 (every cut
  // has size >= 15), recovered from 15 INDEPENDENT sketches, every seed.
  Graph g = CompleteGraph(16);
  for (uint64_t seed = 0; seed < 3; ++seed) {
    KSkeletonSketch sketch(16, 2, 15, 88 + seed);
    sketch.Process(DynamicStream::InsertOnly(g, 9 + seed));
    auto skel = sketch.Extract();
    ASSERT_TRUE(skel.ok());
    EXPECT_EQ(skel->NumEdges(), g.NumEdges());
    for (const auto& e : skel->Edges()) {
      EXPECT_TRUE(g.HasEdge(e.AsEdge()));
    }
  }
}

TEST(AdaptiveReuseTest, FirstExtractionIsAlwaysSound) {
  // The first peel of the adaptive strategy is just Theorem 2 and works.
  Graph g = CompleteGraph(16);
  SpanningForestSketch sketch(16, 2, 99);
  sketch.Process(DynamicStream::InsertOnly(g, 10));
  auto span = sketch.ExtractSpanningGraph();
  ASSERT_TRUE(span.ok());
  EXPECT_TRUE(IsConnected(*span));
  for (const auto& e : span->Edges()) EXPECT_TRUE(g.HasEdge(e.AsEdge()));
}

TEST(AdaptiveReuseTest, ExtractionIsDeterministic) {
  // Extract() consumes no fresh randomness: querying twice gives the same
  // answer. This determinism is exactly why Theorem 15's reuse of ONE
  // skeleton sketch across peel iterations is sound -- its peel sets are
  // functions of the input graph, so the failure events are fixed in
  // advance and the union bound applies.
  Graph g = ErdosRenyi(20, 0.3, 3);
  SpanningForestSketch sketch(20, 2, 111);
  sketch.Process(DynamicStream::InsertOnly(g, 4));
  auto a = sketch.ExtractSpanningGraph();
  auto b = sketch.ExtractSpanningGraph();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(*a == *b);
}

}  // namespace
}  // namespace gms
