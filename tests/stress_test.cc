// Randomized end-to-end fuzzing: random dynamic streams (random final
// graphs, random churn, adversarial delete-down patterns) pushed through
// every query structure and compared against exact ground truth. Any
// silent wrong answer -- the one failure mode a sketch library must never
// have -- trips these tests.
//
// The bespoke graph/stream builder this file used to carry is gone: cases
// are testkit::StreamSpec instances (mixed families, mixed churn, chosen
// per seed) and every comparison runs through the differential oracles in
// testkit/oracle.h. Tallies are asserted with the Wilson interval rather
// than per-seed, so the suite pins the statistical contract instead of
// "these 12 seeds happen to work".
#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "testkit/oracle.h"
#include "testkit/stream_spec.h"
#include "util/random.h"

namespace gms {
namespace {

using testkit::Churn;
using testkit::Family;
using testkit::OracleKind;
using testkit::OracleOptions;
using testkit::OracleOutcome;
using testkit::StreamSpec;
using testkit::Wilson;

// A random spec drawn the way the old bespoke builder drew graphs: one of
// four families (graphs and hypergraphs, sparse and dense) under one of
// the three churn schedules, all derived from `seed`.
StreamSpec FuzzSpec(uint32_t n, uint64_t seed) {
  Rng rng(seed);
  StreamSpec spec;
  spec.n = n;
  switch (rng.Below(4)) {
    case 0:
      spec.family = Family::kErdosRenyi;
      spec.p = 0.05 + rng.NextDouble() * 0.25;
      break;
    case 1:
      spec.family = Family::kRandomUniform;
      spec.m = n + static_cast<uint32_t>(rng.Below(2 * n));
      spec.rank = 3;
      break;
    case 2:
      spec.family = Family::kRandomHypergraph;
      spec.m = n + static_cast<uint32_t>(rng.Below(n));
      spec.rank_min = 2;
      spec.rank = 4;
      break;
    default:
      spec.family = Family::kRandomTree;
      break;
  }
  spec.churn = static_cast<Churn>(rng.Below(3));
  spec.decoys = static_cast<uint32_t>(rng.Below(2 * n)) + 5;
  spec.gseed = seed;
  spec.sseed = seed + 1;
  return spec;
}

constexpr uint64_t kSeeds = 12;

// Run `kind` over kSeeds mixed-family cases and require the success rate
// to be consistent with `min_success` at 95%. A silent disagreement is
// reported with its one-line spec repro.
void RunMixedSweep(OracleKind kind, uint32_t n, uint64_t salt,
                   double min_success,
                   const std::function<void(uint64_t, OracleOptions&)>&
                       tune = {}) {
  size_t trials = 0, successes = 0;
  std::string repros;
  for (uint64_t seed = 0; seed < kSeeds; ++seed) {
    StreamSpec spec = FuzzSpec(n, salt + seed);
    OracleOptions opt;
    if (tune) tune(seed, opt);
    OracleOutcome out = RunOracle(kind, spec, 5000 + salt + seed, opt);
    if (!out.applicable) continue;
    ++trials;
    if (out.Succeeded()) {
      ++successes;
    } else {
      repros += "\n  " + out.detail;
    }
  }
  ASSERT_GT(trials, 0u);
  EXPECT_GE(Wilson(successes, trials).hi, min_success)
      << successes << "/" << trials << " successes" << repros;
}

TEST(FuzzSweep, ComponentCountsMatchTruth) {
  RunMixedSweep(OracleKind::kComponents, 24, 1000, 0.95);
}

TEST(FuzzSweep, CappedEdgeConnectivityMatchesTruth) {
  RunMixedSweep(OracleKind::kEdgeConnectivity, 18, 2000, 0.9,
                [](uint64_t seed, OracleOptions& opt) {
                  opt.k = 1 + seed % 4;
                });
}

TEST(FuzzSweep, LightRecoveryMatchesOffline) {
  RunMixedSweep(OracleKind::kLightRecovery, 14, 3000, 0.9,
                [](uint64_t seed, OracleOptions& opt) {
                  opt.k = 1 + seed % 3;
                });
}

TEST(FuzzSweep, SpanningGraphNeverInventsEdges) {
  RunMixedSweep(OracleKind::kSpanningNoGhost, 30, 4000, 0.95);
}

}  // namespace
}  // namespace gms
