// Randomized end-to-end fuzzing: generate random dynamic streams (random
// final graphs, random churn, adversarial delete-down patterns), push them
// through every query structure, and compare each answer against exact
// ground truth. Any silent wrong answer -- the one failure mode a sketch
// library must never have -- trips these tests.
#include <gtest/gtest.h>

#include <tuple>

#include "connectivity/connectivity_query.h"
#include "exact/hypergraph_mincut.h"
#include "exact/stoer_wagner.h"
#include "exact/strength.h"
#include "graph/generators.h"
#include "graph/traversal.h"
#include "reconstruct/light_recovery.h"
#include "stream/stream.h"
#include "util/random.h"

namespace gms {
namespace {

// A random dynamic stream whose final graph is drawn from a random family.
struct FuzzCase {
  Hypergraph final_graph;
  DynamicStream stream;
  size_t max_rank;
};

FuzzCase MakeFuzzCase(size_t n, uint64_t seed) {
  Rng rng(seed);
  FuzzCase out;
  switch (rng.Below(4)) {
    case 0: {
      out.final_graph =
          Hypergraph::FromGraph(ErdosRenyi(n, rng.NextDouble() * 0.3, seed));
      out.max_rank = 2;
      break;
    }
    case 1: {
      out.final_graph = RandomUniformHypergraph(
          n, n + rng.Below(2 * n), 3, seed);
      out.max_rank = 3;
      break;
    }
    case 2: {
      out.final_graph = RandomHypergraph(n, n + rng.Below(n), 2, 4, seed);
      out.max_rank = 4;
      break;
    }
    default: {
      out.final_graph = Hypergraph::FromGraph(RandomTree(n, seed));
      out.max_rank = 2;
      break;
    }
  }
  switch (rng.Below(3)) {
    case 0:
      out.stream = DynamicStream::InsertOnly(out.final_graph, seed + 1);
      break;
    case 1:
      out.stream = DynamicStream::WithChurn(
          out.final_graph, rng.Below(2 * n) + 5,
          std::max<size_t>(2, out.max_rank - 1), seed + 2);
      break;
    default: {
      // Delete-down from a strict superset.
      Hypergraph superset = out.final_graph;
      size_t extra = rng.Below(n) + 3;
      size_t attempts = 0;
      while (extra > 0 && ++attempts < 50 * n) {
        std::vector<VertexId> vs;
        size_t r = 2 + rng.Below(out.max_rank - 1);
        while (vs.size() < r) {
          VertexId v = static_cast<VertexId>(rng.Below(n));
          bool dup = false;
          for (VertexId w : vs) dup |= w == v;
          if (!dup) vs.push_back(v);
        }
        if (superset.AddEdge(Hyperedge(std::move(vs)))) --extra;
      }
      out.stream = DynamicStream::InsertThenDeleteDown(
          superset, out.final_graph, seed + 3);
      break;
    }
  }
  return out;
}

class FuzzSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzSweep, ComponentCountsMatchTruth) {
  uint64_t seed = GetParam();
  FuzzCase fc = MakeFuzzCase(24, 1000 + seed);
  ASSERT_TRUE(fc.stream.Validate());
  ConnectivityQuery q(24, fc.max_rank, 5000 + seed);
  q.Process(fc.stream);
  auto got = q.NumComponents();
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(*got, NumComponents(fc.final_graph)) << "seed=" << seed;
}

TEST_P(FuzzSweep, CappedEdgeConnectivityMatchesTruth) {
  uint64_t seed = GetParam();
  FuzzCase fc = MakeFuzzCase(18, 2000 + seed);
  size_t k = 1 + seed % 4;
  EdgeConnectivityQuery q(18, fc.max_rank, k, 6000 + seed);
  q.Process(fc.stream);
  auto got = q.EdgeConnectivityCapped();
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  size_t exact;
  if (fc.final_graph.NumVertices() < 2 || !IsConnected(fc.final_graph)) {
    exact = 0;
  } else {
    exact = static_cast<size_t>(HypergraphMinCut(fc.final_graph).value + 0.5);
  }
  EXPECT_EQ(*got, std::min(exact, k)) << "seed=" << seed;
}

TEST_P(FuzzSweep, LightRecoveryMatchesOffline) {
  uint64_t seed = GetParam();
  FuzzCase fc = MakeFuzzCase(14, 3000 + seed);
  size_t k = 1 + seed % 3;
  LightRecoverySketch sketch(14, fc.max_rank, k, 7000 + seed);
  sketch.Process(fc.stream);
  auto rec = sketch.Recover();
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  auto offline = OfflineLightEdges(fc.final_graph, k);
  EXPECT_EQ(rec->light.NumEdges(), offline.light.NumEdges())
      << "seed=" << seed;
  for (const auto& e : rec->light.Edges()) {
    EXPECT_TRUE(offline.light.HasEdge(e)) << e.ToString();
  }
}

TEST_P(FuzzSweep, SpanningGraphNeverInventsEdges) {
  uint64_t seed = GetParam();
  FuzzCase fc = MakeFuzzCase(30, 4000 + seed);
  ConnectivityQuery q(30, fc.max_rank, 8000 + seed);
  q.Process(fc.stream);
  auto span = q.SpanningGraph();
  ASSERT_TRUE(span.ok());
  for (const auto& e : span->Edges()) {
    EXPECT_TRUE(fc.final_graph.HasEdge(e))
        << "ghost edge " << e.ToString() << " seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(ManySeeds, FuzzSweep,
                         ::testing::Range<uint64_t>(0, 12));

}  // namespace
}  // namespace gms
