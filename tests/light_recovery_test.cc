// Tests for Theorem 15's light-edge recovery sketch: the recovered set must
// equal the offline light_k decomposition, layer by layer semantics, for
// graphs and hypergraphs, under churn.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "exact/strength.h"
#include "graph/generators.h"
#include "reconstruct/light_recovery.h"

namespace gms {
namespace {

std::set<std::string> EdgeSet(const Hypergraph& h) {
  std::set<std::string> out;
  for (const auto& e : h.Edges()) out.insert(e.ToString());
  return out;
}

TEST(LightRecoveryTest, RecoversSparseGraphEntirely) {
  // Trees are 1-cut-degenerate: k=1 recovers everything.
  Graph t = RandomTree(24, 1);
  LightRecoverySketch sketch(24, 2, /*k=*/1, 2);
  sketch.Process(DynamicStream::InsertOnly(t, 3));
  auto r = sketch.Recover();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_FALSE(r->residual_nonempty);
  EXPECT_EQ(EdgeSet(r->light), EdgeSet(Hypergraph::FromGraph(t)));
}

TEST(LightRecoveryTest, MatchesOfflineDecomposition) {
  for (uint64_t seed = 0; seed < 3; ++seed) {
    Graph g = ErdosRenyi(16, 0.25, 10 + seed);
    Hypergraph h = Hypergraph::FromGraph(g);
    size_t k = 2;
    auto offline = OfflineLightEdges(h, k);
    LightRecoverySketch sketch(16, 2, k, 20 + seed);
    sketch.Process(DynamicStream::InsertOnly(g, seed));
    auto r = sketch.Recover();
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(EdgeSet(r->light), EdgeSet(offline.light)) << "seed=" << seed;
    EXPECT_EQ(r->residual_nonempty, offline.residual.NumEdges() > 0);
  }
}

TEST(LightRecoveryTest, HeavyCoreLeftBehind) {
  // 6-clique with a pendant path: k=2 recovers the path, not the clique.
  Graph g(10);
  for (VertexId i = 0; i < 6; ++i) {
    for (VertexId j = i + 1; j < 6; ++j) g.AddEdge(i, j);
  }
  g.AddEdge(5, 6);
  g.AddEdge(6, 7);
  g.AddEdge(7, 8);
  g.AddEdge(8, 9);
  LightRecoverySketch sketch(10, 2, 2, 30);
  sketch.Process(DynamicStream::InsertOnly(g, 4));
  auto r = sketch.Recover();
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->residual_nonempty);
  EXPECT_EQ(r->light.NumEdges(), 4u);  // the pendant path only
  for (const auto& e : r->light.Edges()) {
    EXPECT_GE(e.MinVertex(), 5u);
  }
}

TEST(LightRecoveryTest, HypergraphLightEdges) {
  for (uint64_t seed = 0; seed < 2; ++seed) {
    Hypergraph h = RandomUniformHypergraph(14, 18, 3, 40 + seed);
    size_t k = 2;
    auto offline = OfflineLightEdges(h, k);
    LightRecoverySketch sketch(14, 3, k, 50 + seed);
    sketch.Process(DynamicStream::InsertOnly(h, seed));
    auto r = sketch.Recover();
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(EdgeSet(r->light), EdgeSet(offline.light)) << "seed=" << seed;
  }
}

TEST(LightRecoveryTest, ChurnStream) {
  Graph g = RandomDDegenerate(20, 2, 60);
  DynamicStream stream = DynamicStream::WithChurn(g, 120, 61);
  Hypergraph h = Hypergraph::FromGraph(g);
  auto offline = OfflineLightEdges(h, 2);
  LightRecoverySketch sketch(20, 2, 2, 62);
  sketch.Process(stream);
  auto r = sketch.Recover();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(EdgeSet(r->light), EdgeSet(offline.light));
}

TEST(LightRecoveryTest, LayersMatchOfflineLayerCount) {
  // Chain of triangles connected by bridges: bridges peel first, then the
  // triangles become peelable -- at least two layers at k=2.
  Graph g(9);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(0, 2);
  g.AddEdge(2, 3);  // bridge
  g.AddEdge(3, 4);
  g.AddEdge(4, 5);
  g.AddEdge(3, 5);
  g.AddEdge(5, 6);  // bridge
  g.AddEdge(6, 7);
  g.AddEdge(7, 8);
  g.AddEdge(6, 8);
  LightRecoverySketch sketch(9, 2, 2, 70);
  sketch.Process(DynamicStream::InsertOnly(g, 5));
  auto r = sketch.Recover();
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->residual_nonempty);
  EXPECT_EQ(r->light.NumEdges(), g.NumEdges());
  // Everything is light at k=2 here, and it peels in one layer (every edge
  // has lambda <= 2 already in G).
  ASSERT_GE(r->layers.size(), 1u);
  EXPECT_EQ(r->layers[0].size(), g.NumEdges());
}

TEST(LightRecoveryTest, EmptyGraph) {
  LightRecoverySketch sketch(8, 2, 2, 80);
  auto r = sketch.Recover();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->light.NumEdges(), 0u);
  EXPECT_FALSE(r->residual_nonempty);
}

}  // namespace
}  // namespace gms
