// Tests for scan-first search trees (Appendix A) and the Theorem 21 bit-
// recovery property.
#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/traversal.h"
#include "vertexconn/lower_bound.h"
#include "vertexconn/sfst.h"

namespace gms {
namespace {

TEST(SfstTest, ProducesSpanningTreeOfComponent) {
  Graph g = UnionOfHamiltonianCycles(20, 2, 1);
  Graph t = ScanFirstSearchTree(g, 0, 2);
  EXPECT_EQ(t.NumEdges(), 19u);
  EXPECT_TRUE(IsConnected(t));
  for (const Edge& e : t.Edges()) EXPECT_TRUE(g.HasEdge(e));
}

TEST(SfstTest, GeneratedTreesValidateAcrossSeeds) {
  Graph g = ErdosRenyi(16, 0.3, 3);
  for (uint64_t seed = 0; seed < 8; ++seed) {
    Graph t = ScanFirstSearchTree(g, 0, seed);
    EXPECT_TRUE(IsValidScanFirstTree(g, t, 0)) << "seed=" << seed;
  }
}

TEST(SfstTest, BfsTreeOfStarIsTheStar) {
  Graph g = StarGraph(8);
  Graph t = ScanFirstSearchTree(g, 0, 4);
  EXPECT_EQ(t.NumEdges(), 7u);
  EXPECT_TRUE(IsValidScanFirstTree(g, t, 0));
}

TEST(SfstTest, NotEverySpanningTreeIsScanFirst) {
  // On the 4-cycle rooted at 0, a scan-first tree scans 0 first and adopts
  // BOTH neighbours 1 and 3; the path 0-1-2-3 (through edge 2-3) leaves 3
  // to be adopted by 2, but 3 was an unmarked neighbour of scanned 0 --
  // invalid.
  Graph c4 = CycleGraph(4);
  Graph path(4);
  path.AddEdge(0, 1);
  path.AddEdge(1, 2);
  path.AddEdge(2, 3);
  EXPECT_FALSE(IsValidScanFirstTree(c4, path, 0));
  Graph proper(4);
  proper.AddEdge(0, 1);
  proper.AddEdge(0, 3);
  proper.AddEdge(1, 2);
  EXPECT_TRUE(IsValidScanFirstTree(c4, proper, 0));
}

TEST(SfstTest, RejectsNonSubgraphTrees) {
  Graph g = PathGraph(4);
  Graph fake(4);
  fake.AddEdge(0, 2);  // not an edge of g
  fake.AddEdge(0, 1);
  fake.AddEdge(2, 3);
  EXPECT_FALSE(IsValidScanFirstTree(g, fake, 0));
}

TEST(SfstLowerBoundTest, BitRecoveryBiconditional) {
  // Theorem 21: x_{i,j} = 1 iff {t_j, u_i} or {v_i, w_j} appears in any
  // SFST (rooted in u_i's component). Check over instances and seeds.
  for (uint64_t seed = 0; seed < 10; ++seed) {
    auto inst = MakeSfstLowerBoundInstance(6, 100 + seed);
    for (uint64_t tree_seed = 0; tree_seed < 3; ++tree_seed) {
      Graph t = ScanFirstSearchTree(inst.graph, inst.u_i, tree_seed);
      bool present = t.NumVertices() > 0 &&
                     (t.HasEdge(Edge(inst.t_j, inst.u_i)) ||
                      t.HasEdge(Edge(inst.v_i, inst.w_j)));
      EXPECT_EQ(present, inst.bit_value)
          << "seed=" << seed << " tree_seed=" << tree_seed;
    }
  }
}

TEST(SfstLowerBoundTest, InstanceShape) {
  auto inst = MakeSfstLowerBoundInstance(5, 7);
  EXPECT_EQ(inst.graph.NumVertices(), 20u);
  EXPECT_TRUE(inst.graph.HasEdge(inst.u_i, inst.v_i));
}

}  // namespace
}  // namespace gms
