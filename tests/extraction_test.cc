// Extraction-engine differential suite (runs in the tsan preset: the
// incremental decoder's block maintenance and the sparse MergeFrom fan
// work across the pool).
//
// Three contracts, each asserted bit-exactly:
//   1. The incremental windowed-accumulator decoder produces the SAME
//      Hypergraph as the retained reference re-sum decoder, at every
//      thread count, over the whole DefaultSpecGrid().
//   2. Sparse (dirty-bitmap driven) MergeFrom equals the serial single
//      -sketch ingest on random shard splits of the stream -- including
//      against an all-dirty (deserialized, hence dense) clone.
//   3. The dirty bitmap is NOT part of the wire format: a frame written
//      by a freshly-processed sketch (partially dirty) and the frame
//      written by its deserialized twin (conservatively all-dirty) are
//      byte-identical.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "connectivity/spanning_forest_sketch.h"
#include "stream/sharded_merge.h"
#include "stream/stream.h"
#include "testkit/stream_spec.h"
#include "util/random.h"

namespace gms {
namespace {

using testkit::BuiltStream;
using testkit::DefaultSpecGrid;
using testkit::StreamSpec;

ForestSketchParams LightParams() {
  ForestSketchParams params;
  params.config = SketchConfig::Light();
  return params;
}

// ---------- incremental vs reference, across thread counts ----------

TEST(ExtractionTest, IncrementalMatchesReferenceAcrossGridAndThreads) {
  for (const StreamSpec& spec : DefaultSpecGrid()) {
    BuiltStream built = spec.Build();
    SpanningForestSketch sketch(spec.n, built.max_rank, /*seed=*/11,
                                LightParams());
    sketch.Process(built.stream);

    ExtractStats ref_stats;
    auto reference = sketch.ExtractSpanningGraphReference(1, &ref_stats);
    ASSERT_TRUE(reference.ok()) << spec.ToString();
    for (size_t threads : {1u, 2u, 8u}) {
      ExtractStats inc_stats;
      auto incremental = sketch.ExtractSpanningGraph(threads, &inc_stats);
      ASSERT_TRUE(incremental.ok()) << spec.ToString();
      EXPECT_TRUE(*incremental == *reference)
          << spec.ToString() << " threads=" << threads;
      // Every decision counter is a function of the state alone, shared
      // between the two paths; only summed_words (path work) may differ.
      EXPECT_EQ(inc_stats.rounds_run, ref_stats.rounds_run);
      EXPECT_EQ(inc_stats.early_exit, ref_stats.early_exit);
      EXPECT_EQ(inc_stats.sample_attempts, ref_stats.sample_attempts);
      EXPECT_EQ(inc_stats.decode_attempts, ref_stats.decode_attempts);
      EXPECT_EQ(inc_stats.edges_found, ref_stats.edges_found);
      EXPECT_EQ(inc_stats.groups_per_round, ref_stats.groups_per_round);
    }
  }
}

TEST(ExtractionTest, RepeatedExtractionIsIdempotent) {
  // Extraction is const: the window blocks live in scratch, never in the
  // sketch, so a second decode sees untouched state.
  StreamSpec spec;
  spec.family = testkit::Family::kExpander;
  spec.n = 96;
  spec.k = 3;
  spec.churn = testkit::Churn::kWithChurn;
  spec.decoys = 64;
  BuiltStream built = spec.Build();
  SpanningForestSketch sketch(spec.n, built.max_rank, /*seed=*/13,
                              LightParams());
  sketch.Process(built.stream);
  auto first = sketch.ExtractSpanningGraph(8);
  auto second = sketch.ExtractSpanningGraph(8);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(*first == *second);
}

// ---------- sparse MergeFrom differential ----------

TEST(ExtractionMergeTest, SparseMergeEqualsSerialOnRandomShardSplits) {
  StreamSpec spec;
  spec.family = testkit::Family::kErdosRenyi;
  spec.n = 64;
  spec.p = 0.15;
  spec.churn = testkit::Churn::kWithChurn;
  spec.decoys = 96;
  Rng rng(101);
  for (uint64_t trial = 0; trial < 6; ++trial) {
    BuiltStream built = spec.WithTrial(trial).Build();
    const auto& updates = built.stream.updates();
    ASSERT_GE(updates.size(), 4u);

    SpanningForestSketch serial(spec.n, built.max_rank, /*seed=*/17,
                                LightParams());
    serial.Process(built.stream);

    // Random 2-4 way split; each part ingested by a private clone whose
    // dirty bitmap covers exactly its slice's columns, then sparse-merged.
    size_t parts = 2 + rng.Below(3);
    std::vector<size_t> cuts = {0, updates.size()};
    for (size_t c = 1; c < parts; ++c) cuts.push_back(rng.Below(updates.size()));
    std::sort(cuts.begin(), cuts.end());
    SpanningForestSketch merged = serial.CloneEmpty();
    for (size_t c = 0; c + 1 < cuts.size(); ++c) {
      SpanningForestSketch clone = serial.CloneEmpty();
      clone.Process(std::span<const StreamUpdate>(updates).subspan(
          cuts[c], cuts[c + 1] - cuts[c]));
      ASSERT_TRUE(merged.MergeFrom(clone).ok());
    }
    EXPECT_TRUE(merged.StateEquals(serial)) << "trial " << trial;
    auto a = merged.ExtractSpanningGraph();
    auto b = serial.ExtractSpanningGraph();
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_TRUE(*a == *b) << "trial " << trial;
  }
}

TEST(ExtractionMergeTest, SparseMergeEqualsDenseAllDirtyMerge) {
  // A deserialized sketch carries no bitmap and is conservatively marked
  // all-dirty, so merging it exercises the dense walk; merging the
  // original clone exercises the sparse walk. Same measurement, so the
  // results must be bit-identical.
  StreamSpec spec;
  spec.family = testkit::Family::kHyperCycle;
  spec.n = 48;
  spec.rank = 3;
  BuiltStream built = spec.Build();
  const auto& updates = built.stream.updates();
  ASSERT_GE(updates.size(), 2u);
  const size_t half = updates.size() / 2;

  SpanningForestSketch base(spec.n, built.max_rank, /*seed=*/19,
                            LightParams());
  SpanningForestSketch tail = base.CloneEmpty();
  base.Process(std::span<const StreamUpdate>(updates).subspan(0, half));
  tail.Process(std::span<const StreamUpdate>(updates).subspan(half));

  std::vector<uint8_t> frame;
  tail.Serialize(&frame);
  auto tail_dense = SpanningForestSketch::Deserialize(frame);
  ASSERT_TRUE(tail_dense.ok());

  SpanningForestSketch via_sparse = base;  // copies state AND bitmap
  SpanningForestSketch via_dense = base;
  ASSERT_TRUE(via_sparse.MergeFrom(tail).ok());
  ASSERT_TRUE(via_dense.MergeFrom(*tail_dense).ok());
  EXPECT_TRUE(via_sparse.StateEquals(via_dense));

  SpanningForestSketch serial(spec.n, built.max_rank, /*seed=*/19,
                              LightParams());
  serial.Process(built.stream);
  EXPECT_TRUE(via_sparse.StateEquals(serial));
}

// ---------- the bitmap stays off the wire ----------

TEST(ExtractionSerdeTest, DirtyBitmapIsNotPartOfTheWireFrame) {
  StreamSpec spec;
  spec.family = testkit::Family::kGnm;
  spec.n = 40;
  spec.m = 30;  // touches a strict subset of columns: bitmap partly clean
  BuiltStream built = spec.Build();
  SpanningForestSketch sketch(spec.n, built.max_rank, /*seed=*/23,
                              LightParams());
  sketch.Process(built.stream);

  std::vector<uint8_t> direct;
  sketch.Serialize(&direct);
  auto roundtrip = SpanningForestSketch::Deserialize(direct);
  ASSERT_TRUE(roundtrip.ok());
  // The roundtripped sketch's bitmap is all-dirty, the original's is
  // partial; if the bitmap leaked into the frame these would differ.
  std::vector<uint8_t> reserialized;
  roundtrip->Serialize(&reserialized);
  EXPECT_EQ(direct, reserialized);
  EXPECT_TRUE(roundtrip->StateEquals(sketch));
}

// ---------- sharded-merge guard and ingest agree on degenerate splits ----

TEST(ExtractionShardedMergeTest, GuardAndIngestAgreeOnTinySpans) {
  // UseShardedMerge refuses a span the shard policy cannot split in two;
  // ShardedMergeIngest called DIRECTLY with the same span must still
  // terminate (serial fallback inside a width-1 pool region -- the
  // nested Process sees InParallelRegion and takes the column path, so
  // no recursion) and produce the serial state.
  StreamSpec spec;
  spec.family = testkit::Family::kPath;
  spec.n = 16;
  BuiltStream built = spec.Build();
  const auto& updates = built.stream.updates();
  ASSERT_GE(updates.size(), 1u);

  const EngineParams engine = EngineParams::Builder()
                                  .Mode(IngestMode::kShardedMerge)
                                  .Threads(2)
                                  .Build();
  EXPECT_FALSE(UseShardedMerge(engine, 0));
  EXPECT_FALSE(UseShardedMerge(engine, 1));
  EXPECT_EQ(ShardedMergeShards(2, 1), 1u);
  EXPECT_EQ(ShardedMergeShards(8, 0), 0u);

  const ForestSketchParams params =
      ForestSketchParams::Builder(LightParams()).Engine(engine).Build();
  SpanningForestSketch sharded(spec.n, built.max_rank, /*seed=*/29, params);
  std::span<const StreamUpdate> one(updates.data(), 1);
  ShardedMergeIngest(&sharded, one, /*max_shards=*/2);
  ShardedMergeIngest(&sharded, std::span<const StreamUpdate>(), 8);  // no-op

  SpanningForestSketch serial(spec.n, built.max_rank, /*seed=*/29,
                              LightParams());
  serial.Process(one);
  EXPECT_TRUE(sharded.StateEquals(serial));
}

TEST(ExtractionShardedMergeTest, TinySpansFallBackSerialAndStayBitIdentical) {
  // Regression: spans SHORTER than the requested thread complement must
  // refuse the sharded path (they would split into ~1-update shards, each
  // paying a clone arena + merge), while spans >= threads may take it.
  // Either way Process must stay bit-identical to serial, pinned at the
  // boundary sizes {0, 1, threads-1, threads, threads+1}.
  StreamSpec spec;
  spec.family = testkit::Family::kExpander;
  spec.n = 24;
  spec.k = 3;
  BuiltStream built = spec.Build();
  const auto& updates = built.stream.updates();

  constexpr size_t kThreads = 4;
  ASSERT_GE(updates.size(), kThreads + 1);

  const EngineParams engine = EngineParams::Builder()
                                  .Mode(IngestMode::kShardedMerge)
                                  .Threads(kThreads)
                                  .Build();
  EXPECT_FALSE(UseShardedMerge(engine, 0));
  EXPECT_FALSE(UseShardedMerge(engine, 1));
  EXPECT_FALSE(UseShardedMerge(engine, kThreads - 1));
  // At >= threads the guard defers to the CPU clamp: sharded when this
  // machine can actually run 2+ workers, serial otherwise -- never a
  // degenerate sub-thread split.
  EXPECT_EQ(UseShardedMerge(engine, kThreads), HardwareThreads() >= 2);
  EXPECT_EQ(UseShardedMerge(engine, kThreads + 1), HardwareThreads() >= 2);

  for (size_t len : {size_t{0}, size_t{1}, kThreads - 1, kThreads,
                     kThreads + 1}) {
    std::span<const StreamUpdate> prefix(updates.data(), len);

    const ForestSketchParams params =
        ForestSketchParams::Builder(LightParams()).Engine(engine).Build();
    SpanningForestSketch sharded(spec.n, built.max_rank, /*seed=*/31, params);
    sharded.Process(prefix);

    SpanningForestSketch serial(spec.n, built.max_rank, /*seed=*/31,
                                LightParams());
    for (const auto& u : prefix) serial.Update(u.edge, u.delta);

    EXPECT_TRUE(sharded.StateEquals(serial)) << "span len=" << len;
    std::vector<uint8_t> a, b;
    serial.Serialize(&a);
    sharded.Serialize(&b);
    EXPECT_EQ(a, b) << "span len=" << len;
  }
}

}  // namespace
}  // namespace gms
