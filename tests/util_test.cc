// Unit tests for the util layer: Status/Result, RNG, field arithmetic,
// hashing, 128-bit helpers, table rendering.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <set>
#include <vector>

#include "util/field.h"
#include "util/hash.h"
#include "util/random.h"
#include "util/status.h"
#include "util/table.h"
#include "util/uint128.h"

namespace gms {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::DecodeFailure("no level");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsDecodeFailure());
  EXPECT_EQ(s.ToString(), "DecodeFailure: no level");
}

TEST(StatusTest, AllCodesRender) {
  EXPECT_EQ(Status::InvalidArgument("x").ToString(), "InvalidArgument: x");
  EXPECT_EQ(Status::FailedPrecondition("x").ToString(),
            "FailedPrecondition: x");
  EXPECT_EQ(Status::OutOfRange("x").ToString(), "OutOfRange: x");
  EXPECT_EQ(Status::Unimplemented("x").ToString(), "Unimplemented: x");
  EXPECT_EQ(Status::Internal("x").ToString(), "Internal: x");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(41);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 41);
  EXPECT_EQ(r.value_or(7), 41);
}

TEST(ResultTest, HoldsStatus) {
  Result<int> r(Status::DecodeFailure("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsDecodeFailure());
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(Uint128Test, ToString) {
  EXPECT_EQ(U128ToString(0), "0");
  EXPECT_EQ(U128ToString(12345), "12345");
  u128 big = static_cast<u128>(1) << 100;
  EXPECT_EQ(U128ToString(big), "1267650600228229401496703205376");
  EXPECT_EQ(I128ToString(-static_cast<i128>(42)), "-42");
}

TEST(Uint128Test, Log2AndBitWidth) {
  EXPECT_EQ(Log2Floor128(1), 0);
  EXPECT_EQ(Log2Floor128(2), 1);
  EXPECT_EQ(Log2Floor128(3), 1);
  EXPECT_EQ(Log2Floor128(static_cast<u128>(1) << 90), 90);
  EXPECT_EQ(BitWidth128(0), 0);
  EXPECT_EQ(BitWidth128(1), 1);
  EXPECT_EQ(BitWidth128((static_cast<u128>(1) << 77) - 1), 77);
}

TEST(RandomTest, DeterministicPerSeed) {
  Rng a(7), b(7), c(8);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
}

TEST(RandomTest, BelowIsInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.Below(17);
    EXPECT_LT(v, 17u);
  }
}

TEST(RandomTest, BelowRoughlyUniform) {
  Rng rng(2);
  std::vector<int> counts(10, 0);
  const int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) ++counts[rng.Below(10)];
  for (int c : counts) {
    EXPECT_NEAR(c, kSamples / 10, 5 * std::sqrt(kSamples / 10.0));
  }
}

TEST(RandomTest, RangeInclusive) {
  Rng rng(3);
  std::set<int64_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.Range(-2, 2));
  EXPECT_EQ(seen.size(), 5u);  // all of -2..2 hit
}

TEST(RandomTest, BernoulliExtremes) {
  Rng rng(4);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RandomTest, ShufflePreservesMultiset) {
  Rng rng(5);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  Shuffle(v, rng);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(FieldTest, ReduceBasics) {
  EXPECT_EQ(FpReduce(0), 0u);
  EXPECT_EQ(FpReduce(kMersenne61), 0u);
  EXPECT_EQ(FpReduce(kMersenne61 + 5), 5u);
  EXPECT_EQ(FpReduceFull(~static_cast<u128>(0)),
            FpReduceFull(~static_cast<u128>(0)));
  EXPECT_LT(FpReduceFull(~static_cast<u128>(0)), kMersenne61);
}

TEST(FieldTest, AddSubNegRoundTrip) {
  Rng rng(6);
  for (int i = 0; i < 500; ++i) {
    uint64_t a = rng.Below(kMersenne61), b = rng.Below(kMersenne61);
    EXPECT_EQ(FpSub(FpAdd(a, b), b), a);
    EXPECT_EQ(FpAdd(a, FpNeg(a)), 0u);
  }
}

TEST(FieldTest, MulMatchesReference) {
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    uint64_t a = rng.Below(kMersenne61), b = rng.Below(kMersenne61);
    u128 expect = static_cast<u128>(a) * b % kMersenne61;
    EXPECT_EQ(FpMul(a, b), static_cast<uint64_t>(expect));
  }
}

TEST(FieldTest, PowAndInverse) {
  EXPECT_EQ(FpPow(2, 10), 1024u);
  EXPECT_EQ(FpPow(5, 0), 1u);
  Rng rng(8);
  for (int i = 0; i < 50; ++i) {
    uint64_t a = rng.Below(kMersenne61 - 1) + 1;
    EXPECT_EQ(FpMul(a, FpInv(a)), 1u);
  }
  // Fermat: a^(p-1) = 1.
  EXPECT_EQ(FpPow(123456789, kMersenne61 - 1), 1u);
}

TEST(FieldTest, FromInt64HandlesNegatives) {
  EXPECT_EQ(FpFromInt64(0), 0u);
  EXPECT_EQ(FpFromInt64(5), 5u);
  EXPECT_EQ(FpFromInt64(-5), kMersenne61 - 5);
  EXPECT_EQ(FpAdd(FpFromInt64(-5), FpFromInt64(5)), 0u);
}

TEST(FieldTest, FromInt64ExtremeValues) {
  // INT64_MIN has no positive counterpart in int64_t; the negation must
  // happen in unsigned space. 2^63 mod (2^61 - 1) = 4, so -2^63 maps to
  // p - 4.
  EXPECT_EQ(FpFromInt64(std::numeric_limits<int64_t>::min()),
            kMersenne61 - 4);
  EXPECT_EQ(FpAdd(FpFromInt64(std::numeric_limits<int64_t>::min()), 4), 0u);
  // INT64_MAX = 2^63 - 1 = 4 * (2^61 - 1) + 3.
  EXPECT_EQ(FpFromInt64(std::numeric_limits<int64_t>::max()), 3u);
  EXPECT_EQ(FpAdd(FpFromInt64(std::numeric_limits<int64_t>::min()),
                  FpFromInt64(std::numeric_limits<int64_t>::max())),
            FpFromInt64(-1));
}

TEST(FieldTest, ReduceExpMatchesHardwareModulus) {
  constexpr uint64_t m = kMersenne61 - 1;  // the exponent group order
  // Boundary values where the three-fold reduction could go wrong.
  const u128 boundary[] = {0,
                           1,
                           m - 1,
                           m,
                           m + 1,
                           kMersenne61,
                           (u128{1} << 61) - 1,
                           u128{1} << 61,
                           (u128{1} << 64) - 1,
                           u128{1} << 64,
                           (u128{1} << 122) - 1,
                           u128{1} << 122,
                           ~u128{0} - 1,
                           ~u128{0}};
  for (u128 x : boundary) {
    EXPECT_EQ(FpReduceExp(x), static_cast<uint64_t>(x % m));
  }
  Rng rng(99);
  for (int i = 0; i < 20000; ++i) {
    u128 x = (static_cast<u128>(rng.Next()) << 64) | rng.Next();
    ASSERT_EQ(FpReduceExp(x), static_cast<uint64_t>(x % m));
  }
}

TEST(HashTest, DeterministicAndSeedSensitive) {
  PolyHash h1(4, 11), h2(4, 11), h3(4, 12);
  EXPECT_EQ(h1.Eval(999), h2.Eval(999));
  EXPECT_NE(h1.Eval(999), h3.Eval(999));  // overwhelmingly likely
}

TEST(HashTest, OutputInField) {
  PolyHash h(3, 13);
  for (u128 k = 0; k < 1000; ++k) EXPECT_LT(h.Eval(k), kMersenne61);
}

TEST(HashTest, PairwiseCollisionRateSane) {
  PolyHash h(2, 14);
  std::set<uint64_t> outs;
  for (u128 k = 0; k < 2000; ++k) outs.insert(h.Eval(k * 0x123456789ULL));
  EXPECT_EQ(outs.size(), 2000u);  // no collisions expected at p ~ 2^61
}

TEST(HashTest, Distinguishes128BitKeys) {
  PolyHash h(2, 15);
  u128 a = (static_cast<u128>(7) << 64) | 3;
  u128 b = (static_cast<u128>(8) << 64) | 3;
  EXPECT_NE(h.Eval(a), h.Eval(b));
}

TEST(LevelHashTest, GeometricDistribution) {
  LevelHash lh(16, 40);
  std::vector<int> counts(41, 0);
  const int kKeys = 200000;
  for (int k = 0; k < kKeys; ++k) ++counts[lh.Level(static_cast<u128>(k))];
  // P[level = 0] ~ 1/2, P[level = 1] ~ 1/4, ...
  EXPECT_NEAR(counts[0], kKeys / 2.0, 6 * std::sqrt(kKeys / 2.0));
  EXPECT_NEAR(counts[1], kKeys / 4.0, 6 * std::sqrt(kKeys / 4.0));
  EXPECT_NEAR(counts[2], kKeys / 8.0, 6 * std::sqrt(kKeys / 8.0));
}

TEST(LevelHashTest, CappedAtMaxLevel) {
  LevelHash lh(17, 3);
  for (int k = 0; k < 10000; ++k) {
    EXPECT_LE(lh.Level(static_cast<u128>(k)), 3);
  }
}

TEST(TableTest, FormatsAndCsv) {
  Table t({"a", "bb"});
  t.AddRow({"1", "2"});
  t.AddRow({Table::Fmt(3.14159, 2), Table::Fmt(uint64_t{7})});
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.ToCsv(), "a,bb\n1,2\n3.14,7\n");
}

TEST(TableTest, FmtHelpers) {
  EXPECT_EQ(Table::Fmt(int64_t{-5}), "-5");
  EXPECT_EQ(Table::Fmt(2.5, 1), "2.5");
  EXPECT_EQ(Table::Fmt(42), "42");
}

}  // namespace
}  // namespace gms
