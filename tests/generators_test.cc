// Tests for the workload generators (DESIGN.md Section 4): structural
// guarantees the experiments rely on.
#include <gtest/gtest.h>

#include "exact/degeneracy.h"
#include "exact/stoer_wagner.h"
#include "exact/vertex_connectivity.h"
#include "graph/generators.h"
#include "graph/traversal.h"

namespace gms {
namespace {

TEST(GeneratorsTest, DeterministicFamilies) {
  EXPECT_EQ(PathGraph(5).NumEdges(), 4u);
  EXPECT_EQ(CycleGraph(5).NumEdges(), 5u);
  EXPECT_EQ(StarGraph(6).NumEdges(), 5u);
  EXPECT_EQ(CompleteGraph(6).NumEdges(), 15u);
  EXPECT_EQ(CompleteBipartite(3, 4).NumEdges(), 12u);
  EXPECT_TRUE(IsConnected(CycleGraph(9)));
}

TEST(GeneratorsTest, Lemma10WitnessShape) {
  Graph g = Lemma10Witness();
  EXPECT_EQ(g.NumVertices(), 8u);
  // Min degree 3 (paper: "G has minimum degree 3").
  EXPECT_EQ(g.MinDegree(), 3u);
  EXPECT_TRUE(IsConnected(g));
}

TEST(GeneratorsTest, CompleteUniformHypergraphCounts) {
  Hypergraph h = CompleteUniformHypergraph(6, 3);
  EXPECT_EQ(h.NumEdges(), 20u);  // C(6,3)
  EXPECT_EQ(h.Rank(), 3u);
  EXPECT_TRUE(IsConnected(h));
}

TEST(GeneratorsTest, HyperCycleShape) {
  Hypergraph h = HyperCycle(10, 3);
  EXPECT_EQ(h.NumEdges(), 10u);
  EXPECT_TRUE(IsConnected(h));
  for (VertexId v = 0; v < 10; ++v) EXPECT_EQ(h.Degree(v), 3u);
}

TEST(GeneratorsTest, ErdosRenyiDeterministicInSeed) {
  Graph a = ErdosRenyi(30, 0.2, 5);
  Graph b = ErdosRenyi(30, 0.2, 5);
  Graph c = ErdosRenyi(30, 0.2, 6);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
}

TEST(GeneratorsTest, GnmExactCount) {
  Graph g = Gnm(20, 37, 9);
  EXPECT_EQ(g.NumEdges(), 37u);
}

TEST(GeneratorsTest, RandomTreeIsTree) {
  for (uint64_t seed = 0; seed < 5; ++seed) {
    Graph t = RandomTree(25, seed);
    EXPECT_EQ(t.NumEdges(), 24u);
    EXPECT_TRUE(IsConnected(t));
  }
}

TEST(GeneratorsTest, HamiltonianCyclesConnectivity) {
  Graph g = UnionOfHamiltonianCycles(24, 2, 3);
  EXPECT_TRUE(IsConnected(g));
  EXPECT_GE(EdgeConnectivity(g), 2u);
  EXPECT_GE(VertexConnectivity(g), 2u);
}

TEST(GeneratorsTest, PlantedSeparatorHasExactConnectivity) {
  for (size_t k = 1; k <= 3; ++k) {
    auto planted = PlantedSeparator(30, k, 100 + k);
    EXPECT_EQ(VertexConnectivity(planted.graph), k) << "k=" << k;
    EXPECT_EQ(planted.separator.size(), k);
    // Removing the separator disconnects.
    EXPECT_FALSE(IsConnectedExcluding(planted.graph, planted.separator));
    // Sides are nonempty and disjoint from the separator.
    EXPECT_FALSE(planted.side_a.empty());
    EXPECT_FALSE(planted.side_b.empty());
  }
}

TEST(GeneratorsTest, RandomDDegenerateRespectsBound) {
  for (size_t d = 1; d <= 4; ++d) {
    Graph g = RandomDDegenerate(40, d, 17 + d);
    // Construction adds <= d earlier-neighbours per vertex.
    EXPECT_LE(Degeneracy(g), d);
  }
}

TEST(GeneratorsTest, RandomHypergraphCardinalities) {
  Hypergraph h = RandomHypergraph(30, 50, 2, 4, 21);
  EXPECT_EQ(h.NumEdges(), 50u);
  for (const auto& e : h.Edges()) {
    EXPECT_GE(e.size(), 2u);
    EXPECT_LE(e.size(), 4u);
  }
}

TEST(GeneratorsTest, PlantedHypergraphCutValue) {
  auto planted = PlantedHypergraphCut(20, 3, 2, 15, 33);
  // The planted bipartition has exactly the planted number of crossers.
  EXPECT_EQ(planted.hypergraph.CutSize(planted.in_s), 2u);
}

}  // namespace
}  // namespace gms
