// Tests for the hypergraph vertex-connectivity extension (the Section 4.1
// remark): induced-semantics removal queries, the planted-separator
// generator, and the exhaustive hypergraph kappa.
#include <gtest/gtest.h>

#include "exact/vertex_connectivity.h"
#include "graph/generators.h"
#include "graph/traversal.h"
#include "util/random.h"
#include "vertexconn/hyper_vc_query.h"

namespace gms {
namespace {

VcQueryParams HyperTestParams(size_t k, double r_multiplier) {
  return VcQueryParams::Builder()
      .K(k)
      .RMultiplier(r_multiplier)
      .Forest(
          ForestSketchParams::Builder().Config(SketchConfig::Light()).Build())
      .Build();
}

HyperVcUnionSnapshot Snapshot(const HyperVcQuerySketch& sketch) {
  auto snap = sketch.Query();
  EXPECT_TRUE(snap.ok());
  return std::move(snap).value();
}

TEST(HypergraphExcludingTest, InducedSemantics) {
  // {0,1,2} dies when 2 is removed even though 0,1 survive.
  Hypergraph h(5);
  h.AddEdge(Hyperedge{0, 1, 2});
  h.AddEdge(Hyperedge{2, 3});
  h.AddEdge(Hyperedge{3, 4});
  EXPECT_TRUE(IsConnectedExcluding(h, {}));
  EXPECT_FALSE(IsConnectedExcluding(h, {2}));  // kills BOTH incident edges
  EXPECT_FALSE(IsConnectedExcluding(h, {3}));
  EXPECT_TRUE(IsConnectedExcluding(h, {4}));
  // Removing 0 kills {0,1,2} too, stranding vertex 1.
  EXPECT_FALSE(IsConnectedExcluding(h, {0}));
  EXPECT_TRUE(IsConnectedExcluding(h, {0, 1}));
}

TEST(HyperVcQueryTest, AllSparseForestsSkipExtractionAndStillAnswer) {
  // A rank-3 hypercycle keeps every vertex at degree 3, far below the
  // Light sparse threshold: every subsample forest decodes through the
  // sparse-exact fast path and the union stats count all R skips.
  const size_t n = 36;
  Hypergraph g = HyperCycle(n, 3);
  const VcQueryParams params = VcQueryParams::Builder()
                                   .K(2)
                                   .ExplicitR(10)
                                   .Forest(ForestSketchParams::Builder()
                                               .Config(SketchConfig::Light())
                                               .Build())
                                   .Build();
  HyperVcQuerySketch sketch(n, /*max_rank=*/3, params, 83);
  sketch.Process(DynamicStream::InsertOnly(g, 84));

  auto snap = sketch.Query();
  ASSERT_TRUE(snap.ok());
  EXPECT_EQ(snap.stats().sparse_exact_forests, 10u);
  EXPECT_EQ(snap.stats().sample_attempts, 0u);
  EXPECT_GT(snap.value().union_graph().NumEdges(), 0u);
}

TEST(HypergraphExcludingTest, MatchesGraphSemanticsOn2Uniform) {
  Graph g = ErdosRenyi(12, 0.3, 1);
  Hypergraph h = Hypergraph::FromGraph(g);
  Rng rng(2);
  for (int t = 0; t < 30; ++t) {
    std::vector<VertexId> s;
    for (int j = 0; j < 3; ++j) {
      VertexId v = static_cast<VertexId>(rng.Below(12));
      bool dup = false;
      for (VertexId w : s) dup |= w == v;
      if (!dup) s.push_back(v);
    }
    EXPECT_EQ(IsConnectedExcluding(g, s), IsConnectedExcluding(h, s));
  }
}

TEST(HypergraphKappaBruteTest, KnownFamilies) {
  // Hyper-cycle (10, 3): removing 2 adjacent-ish vertices kills a window
  // of hyperedges; connectivity is small but positive.
  Hypergraph ring = HyperCycle(10, 3);
  size_t kappa = VertexConnectivityBrute(ring);
  EXPECT_GE(kappa, 1u);
  EXPECT_LE(kappa, 4u);
  // A single hyperedge over 4 vertices: no removal of <= 2 vertices
  // disconnects... removing any vertex kills the edge, isolating the rest.
  Hypergraph single(4);
  single.AddEdge(Hyperedge{0, 1, 2, 3});
  EXPECT_EQ(VertexConnectivityBrute(single), 1u);
}

TEST(HypergraphKappaBruteTest, PlantedSeparatorIsExact) {
  for (size_t k : {1, 2}) {
    auto planted = PlantedHypergraphSeparator(16, k, 3, 10 + k);
    EXPECT_EQ(VertexConnectivityBrute(planted.hypergraph), k) << "k=" << k;
    EXPECT_FALSE(
        IsConnectedExcluding(planted.hypergraph, planted.separator));
  }
}

TEST(HyperVcQueryTest, FindsPlantedSeparator) {
  auto planted = PlantedHypergraphSeparator(24, 2, 3, 1);
  HyperVcQuerySketch sketch(24, 3, HyperTestParams(2, 0.5), 2);
  sketch.Process(DynamicStream::InsertOnly(planted.hypergraph, 3));
  auto hit = Snapshot(sketch).Disconnects(planted.separator);
  ASSERT_TRUE(hit.ok());
  EXPECT_TRUE(*hit);
}

TEST(HyperVcQueryTest, AgreesWithTruthOnRandomQueries) {
  auto planted = PlantedHypergraphSeparator(24, 2, 3, 4);
  const Hypergraph& h = planted.hypergraph;
  HyperVcQuerySketch sketch(24, 3, HyperTestParams(2, 0.5), 5);
  sketch.Process(DynamicStream::WithChurn(h, 40, 3, 6));
  HyperVcUnionSnapshot snap = Snapshot(sketch);
  Rng rng(7);
  size_t agree = 0, total = 0;
  for (int t = 0; t < 15; ++t) {
    std::vector<VertexId> s;
    while (s.size() < 2) {
      VertexId v = static_cast<VertexId>(rng.Below(24));
      bool dup = false;
      for (VertexId w : s) dup |= w == v;
      if (!dup) s.push_back(v);
    }
    auto got = snap.Disconnects(s);
    ASSERT_TRUE(got.ok());
    bool truth = !IsConnectedExcluding(h, s);
    agree += (*got == truth) ? 1 : 0;
    ++total;
  }
  EXPECT_EQ(agree, total);
}

TEST(HyperVcQueryTest, UnionGraphIsSubhypergraph) {
  Hypergraph h = HyperCycle(20, 3);
  HyperVcQuerySketch sketch(20, 3, HyperTestParams(2, 0.5), 8);
  sketch.Process(DynamicStream::InsertOnly(h, 9));
  HyperVcUnionSnapshot snap = Snapshot(sketch);
  for (const auto& e : snap.union_graph().Edges()) {
    EXPECT_TRUE(h.HasEdge(e));
  }
}

TEST(HyperVcQueryTest, OversizedQueryRejected) {
  const VcQueryParams p =
      VcQueryParams::Builder()
          .K(1)
          .ExplicitR(4)
          .Forest(
              ForestSketchParams::Builder().Config(SketchConfig::Light()).Build())
          .Build();
  HyperVcQuerySketch sketch(10, 3, p, 10);
  auto r = Snapshot(sketch).Disconnects({0, 1});
  EXPECT_FALSE(r.ok());
}

TEST(HyperVcQueryTest, ClearReleasesCachedUnionHypergraph) {
  // Regression: Clear() used to zero the subsample sketches but keep the
  // Finalize-era union hypergraph H allocated and answerable.
  auto planted = PlantedHypergraphSeparator(20, 2, 3, 20);
  HyperVcQuerySketch sketch(20, 3, HyperTestParams(2, 0.5), 21);
  sketch.Process(DynamicStream::InsertOnly(planted.hypergraph, 22));
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  ASSERT_TRUE(sketch.Finalize().ok());
#pragma GCC diagnostic pop
  ASSERT_GT(sketch.union_graph().NumEdges(), 0u);
  sketch.Clear();
  EXPECT_EQ(sketch.union_graph().NumEdges(), 0u);
  auto r = sketch.Disconnects({0});
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(Snapshot(sketch).union_graph().NumEdges(), 0u);
}

// Coverage for the [[deprecated]] Finalize wrapper: the legacy destructive
// surface must keep answering exactly like the Query() path until removal.
TEST(HyperVcQueryTest, DeprecatedFinalizeMatchesQuery) {
  auto planted = PlantedHypergraphSeparator(20, 2, 3, 30);
  HyperVcQuerySketch legacy(20, 3, HyperTestParams(2, 0.5), 31);
  legacy.Process(DynamicStream::InsertOnly(planted.hypergraph, 32));
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  ASSERT_TRUE(legacy.Finalize().ok());
#pragma GCC diagnostic pop

  HyperVcQuerySketch fresh(20, 3, HyperTestParams(2, 0.5), 31);
  fresh.Process(DynamicStream::InsertOnly(planted.hypergraph, 32));
  HyperVcUnionSnapshot snap = Snapshot(fresh);
  EXPECT_TRUE(legacy.union_graph() == snap.union_graph());
  auto a = legacy.Disconnects(planted.separator);
  auto b = snap.Disconnects(planted.separator);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value(), b.value());
}

}  // namespace
}  // namespace gms
