// Tests for the hypergraph vertex-connectivity extension (the Section 4.1
// remark): induced-semantics removal queries, the planted-separator
// generator, and the exhaustive hypergraph kappa.
#include <gtest/gtest.h>

#include "exact/vertex_connectivity.h"
#include "graph/generators.h"
#include "graph/traversal.h"
#include "util/random.h"
#include "vertexconn/hyper_vc_query.h"

namespace gms {
namespace {

TEST(HypergraphExcludingTest, InducedSemantics) {
  // {0,1,2} dies when 2 is removed even though 0,1 survive.
  Hypergraph h(5);
  h.AddEdge(Hyperedge{0, 1, 2});
  h.AddEdge(Hyperedge{2, 3});
  h.AddEdge(Hyperedge{3, 4});
  EXPECT_TRUE(IsConnectedExcluding(h, {}));
  EXPECT_FALSE(IsConnectedExcluding(h, {2}));  // kills BOTH incident edges
  EXPECT_FALSE(IsConnectedExcluding(h, {3}));
  EXPECT_TRUE(IsConnectedExcluding(h, {4}));
  // Removing 0 kills {0,1,2} too, stranding vertex 1.
  EXPECT_FALSE(IsConnectedExcluding(h, {0}));
  EXPECT_TRUE(IsConnectedExcluding(h, {0, 1}));
}

TEST(HypergraphExcludingTest, MatchesGraphSemanticsOn2Uniform) {
  Graph g = ErdosRenyi(12, 0.3, 1);
  Hypergraph h = Hypergraph::FromGraph(g);
  Rng rng(2);
  for (int t = 0; t < 30; ++t) {
    std::vector<VertexId> s;
    for (int j = 0; j < 3; ++j) {
      VertexId v = static_cast<VertexId>(rng.Below(12));
      bool dup = false;
      for (VertexId w : s) dup |= w == v;
      if (!dup) s.push_back(v);
    }
    EXPECT_EQ(IsConnectedExcluding(g, s), IsConnectedExcluding(h, s));
  }
}

TEST(HypergraphKappaBruteTest, KnownFamilies) {
  // Hyper-cycle (10, 3): removing 2 adjacent-ish vertices kills a window
  // of hyperedges; connectivity is small but positive.
  Hypergraph ring = HyperCycle(10, 3);
  size_t kappa = VertexConnectivityBrute(ring);
  EXPECT_GE(kappa, 1u);
  EXPECT_LE(kappa, 4u);
  // A single hyperedge over 4 vertices: no removal of <= 2 vertices
  // disconnects... removing any vertex kills the edge, isolating the rest.
  Hypergraph single(4);
  single.AddEdge(Hyperedge{0, 1, 2, 3});
  EXPECT_EQ(VertexConnectivityBrute(single), 1u);
}

TEST(HypergraphKappaBruteTest, PlantedSeparatorIsExact) {
  for (size_t k : {1, 2}) {
    auto planted = PlantedHypergraphSeparator(16, k, 3, 10 + k);
    EXPECT_EQ(VertexConnectivityBrute(planted.hypergraph), k) << "k=" << k;
    EXPECT_FALSE(
        IsConnectedExcluding(planted.hypergraph, planted.separator));
  }
}

TEST(HyperVcQueryTest, FindsPlantedSeparator) {
  auto planted = PlantedHypergraphSeparator(24, 2, 3, 1);
  VcQueryParams p;
  p.k = 2;
  p.r_multiplier = 0.5;
  p.forest.config = SketchConfig::Light();
  HyperVcQuerySketch sketch(24, 3, p, 2);
  sketch.Process(DynamicStream::InsertOnly(planted.hypergraph, 3));
  ASSERT_TRUE(sketch.Finalize().ok());
  auto hit = sketch.Disconnects(planted.separator);
  ASSERT_TRUE(hit.ok());
  EXPECT_TRUE(*hit);
}

TEST(HyperVcQueryTest, AgreesWithTruthOnRandomQueries) {
  auto planted = PlantedHypergraphSeparator(24, 2, 3, 4);
  const Hypergraph& h = planted.hypergraph;
  VcQueryParams p;
  p.k = 2;
  p.r_multiplier = 0.5;
  p.forest.config = SketchConfig::Light();
  HyperVcQuerySketch sketch(24, 3, p, 5);
  sketch.Process(DynamicStream::WithChurn(h, 40, 3, 6));
  ASSERT_TRUE(sketch.Finalize().ok());
  Rng rng(7);
  size_t agree = 0, total = 0;
  for (int t = 0; t < 15; ++t) {
    std::vector<VertexId> s;
    while (s.size() < 2) {
      VertexId v = static_cast<VertexId>(rng.Below(24));
      bool dup = false;
      for (VertexId w : s) dup |= w == v;
      if (!dup) s.push_back(v);
    }
    auto got = sketch.Disconnects(s);
    ASSERT_TRUE(got.ok());
    bool truth = !IsConnectedExcluding(h, s);
    agree += (*got == truth) ? 1 : 0;
    ++total;
  }
  EXPECT_EQ(agree, total);
}

TEST(HyperVcQueryTest, UnionGraphIsSubhypergraph) {
  Hypergraph h = HyperCycle(20, 3);
  VcQueryParams p;
  p.k = 2;
  p.r_multiplier = 0.5;
  p.forest.config = SketchConfig::Light();
  HyperVcQuerySketch sketch(20, 3, p, 8);
  sketch.Process(DynamicStream::InsertOnly(h, 9));
  ASSERT_TRUE(sketch.Finalize().ok());
  for (const auto& e : sketch.union_graph().Edges()) {
    EXPECT_TRUE(h.HasEdge(e));
  }
}

TEST(HyperVcQueryTest, OversizedQueryRejected) {
  VcQueryParams p;
  p.k = 1;
  p.explicit_r = 4;
  p.forest.config = SketchConfig::Light();
  HyperVcQuerySketch sketch(10, 3, p, 10);
  ASSERT_TRUE(sketch.Finalize().ok());
  auto r = sketch.Disconnects({0, 1});
  EXPECT_FALSE(r.ok());
}

}  // namespace
}  // namespace gms
