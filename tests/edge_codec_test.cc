// Property tests for the combinadic hyperedge <-> index codec.
#include <gtest/gtest.h>

#include <set>

#include "graph/edge_codec.h"
#include "util/random.h"

namespace gms {
namespace {

TEST(BinomialTest, SmallValues) {
  EXPECT_EQ(Binomial(5, 0), 1u);
  EXPECT_EQ(Binomial(5, 1), 5u);
  EXPECT_EQ(Binomial(5, 2), 10u);
  EXPECT_EQ(Binomial(5, 5), 1u);
  EXPECT_EQ(Binomial(5, 6), 0u);
  EXPECT_EQ(Binomial(0, 0), 1u);
}

TEST(BinomialTest, PascalIdentity) {
  for (uint64_t m = 1; m < 40; ++m) {
    for (unsigned j = 1; j <= 8 && j <= m; ++j) {
      EXPECT_EQ(Binomial(m, j), Binomial(m - 1, j - 1) + Binomial(m - 1, j));
    }
  }
}

TEST(BinomialTest, LargeValuesExact) {
  // C(100000, 4) = 100000*99999*99998*99997/24.
  u128 expect = static_cast<u128>(100000) * 99999 / 2 * 99998 / 3 * 99997 / 4;
  EXPECT_EQ(Binomial(100000, 4), expect);
}

TEST(EdgeCodecTest, DomainSizes) {
  EdgeCodec c2(10, 2);
  EXPECT_EQ(c2.DomainSize(), 45u);  // C(10,2)
  EdgeCodec c3(10, 3);
  EXPECT_EQ(c3.DomainSize(), 45u + 120u);  // + C(10,3)
  EdgeCodec c4(6, 4);
  EXPECT_EQ(c4.DomainSize(), 15u + 20u + 15u);
}

TEST(EdgeCodecTest, ExhaustiveRoundTripSmall) {
  EdgeCodec codec(7, 4);
  std::set<std::string> seen;
  for (u128 idx = 0; idx < codec.DomainSize(); ++idx) {
    auto e = codec.Decode(idx);
    ASSERT_TRUE(e.ok()) << U128ToString(idx);
    EXPECT_EQ(codec.Encode(*e), idx);
    seen.insert(e->ToString());
  }
  // All indices decode to distinct hyperedges: a bijection.
  EXPECT_EQ(static_cast<u128>(seen.size()), codec.DomainSize());
}

TEST(EdgeCodecTest, GraphEdgesRoundTrip) {
  EdgeCodec codec(100, 2);
  for (VertexId u = 0; u < 100; u += 7) {
    for (VertexId v = u + 1; v < 100; v += 5) {
      Hyperedge e{u, v};
      auto back = codec.Decode(codec.Encode(e));
      ASSERT_TRUE(back.ok());
      EXPECT_EQ(*back, e);
    }
  }
}

TEST(EdgeCodecTest, RandomRoundTripLargeDomain) {
  const size_t n = 50000;
  EdgeCodec codec(n, 5);
  Rng rng(42);
  for (int t = 0; t < 500; ++t) {
    size_t r = 2 + rng.Below(4);
    std::vector<VertexId> vs;
    while (vs.size() < r) {
      VertexId v = static_cast<VertexId>(rng.Below(n));
      bool dup = false;
      for (VertexId w : vs) dup |= w == v;
      if (!dup) vs.push_back(v);
    }
    Hyperedge e(vs);
    u128 idx = codec.Encode(e);
    ASSERT_LT(idx, codec.DomainSize());
    auto back = codec.Decode(idx);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, e);
  }
}

TEST(EdgeCodecTest, OutOfRangeIndexRejected) {
  EdgeCodec codec(10, 3);
  auto r = codec.Decode(codec.DomainSize());
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(EdgeCodecTest, SizeBlocksAreContiguous) {
  EdgeCodec codec(9, 3);
  // First C(9,2) indices are pairs, the rest triples.
  u128 pairs = Binomial(9, 2);
  for (u128 idx = 0; idx < codec.DomainSize(); ++idx) {
    auto e = codec.Decode(idx);
    ASSERT_TRUE(e.ok());
    EXPECT_EQ(e->size(), idx < pairs ? 2u : 3u);
  }
}

// Parameterized sweep: round trip over (n, r) combinations.
class CodecSweep : public ::testing::TestWithParam<std::tuple<size_t, size_t>> {
};

TEST_P(CodecSweep, EncodeDecodeBijectionOnSample) {
  auto [n, r] = GetParam();
  EdgeCodec codec(n, r);
  Rng rng(n * 31 + r);
  std::set<std::string> edges;
  std::set<std::string> indices;
  for (int t = 0; t < 300; ++t) {
    size_t size = 2 + rng.Below(r - 1);
    std::vector<VertexId> vs;
    while (vs.size() < size) {
      VertexId v = static_cast<VertexId>(rng.Below(n));
      bool dup = false;
      for (VertexId w : vs) dup |= w == v;
      if (!dup) vs.push_back(v);
    }
    Hyperedge e(vs);
    u128 idx = codec.Encode(e);
    auto back = codec.Decode(idx);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, e);
    bool new_edge = edges.insert(e.ToString()).second;
    bool new_index = indices.insert(U128ToString(idx)).second;
    EXPECT_EQ(new_edge, new_index);  // injectivity on the sample
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, CodecSweep,
    ::testing::Values(std::make_tuple(16, 3), std::make_tuple(64, 4),
                      std::make_tuple(256, 3), std::make_tuple(1024, 5),
                      std::make_tuple(4096, 4)));

}  // namespace
}  // namespace gms
