// Tests for the Dinic max-flow substrate.
#include <gtest/gtest.h>

#include "exact/dinic.h"
#include "exact/lambda.h"
#include "graph/generators.h"
#include "util/random.h"

namespace gms {
namespace {

TEST(DinicTest, SingleArc) {
  Dinic net(2);
  net.AddArc(0, 1, 5);
  EXPECT_EQ(net.MaxFlow(0, 1), 5);
}

TEST(DinicTest, SeriesBottleneck) {
  Dinic net(3);
  net.AddArc(0, 1, 5);
  net.AddArc(1, 2, 3);
  EXPECT_EQ(net.MaxFlow(0, 2), 3);
}

TEST(DinicTest, ParallelPathsAdd) {
  Dinic net(4);
  net.AddArc(0, 1, 2);
  net.AddArc(1, 3, 2);
  net.AddArc(0, 2, 3);
  net.AddArc(2, 3, 3);
  EXPECT_EQ(net.MaxFlow(0, 3), 5);
}

TEST(DinicTest, ClassicTextbookNetwork) {
  // CLRS figure: max flow 23.
  Dinic net(6);
  net.AddArc(0, 1, 16);
  net.AddArc(0, 2, 13);
  net.AddArc(1, 2, 10);
  net.AddArc(2, 1, 4);
  net.AddArc(1, 3, 12);
  net.AddArc(3, 2, 9);
  net.AddArc(2, 4, 14);
  net.AddArc(4, 3, 7);
  net.AddArc(3, 5, 20);
  net.AddArc(4, 5, 4);
  EXPECT_EQ(net.MaxFlow(0, 5), 23);
}

TEST(DinicTest, DisconnectedIsZero) {
  Dinic net(4);
  net.AddArc(0, 1, 10);
  net.AddArc(2, 3, 10);
  EXPECT_EQ(net.MaxFlow(0, 3), 0);
}

TEST(DinicTest, LimitCapsComputation) {
  Dinic net(2);
  net.AddArc(0, 1, 1000);
  EXPECT_EQ(net.MaxFlow(0, 1, 7), 7);
}

TEST(DinicTest, UndirectedEdgesCarryBothWays) {
  Dinic net(3);
  net.AddUndirected(0, 1, 1);
  net.AddUndirected(1, 2, 1);
  EXPECT_EQ(net.MaxFlow(0, 2), 1);
  Dinic net2(3);
  net2.AddUndirected(0, 1, 1);
  net2.AddUndirected(1, 2, 1);
  EXPECT_EQ(net2.MaxFlow(2, 0), 1);  // symmetric
}

TEST(DinicTest, MinCutSourceSideIsACut) {
  Dinic net(6);
  net.AddArc(0, 1, 3);
  net.AddArc(0, 2, 2);
  net.AddArc(1, 3, 1);
  net.AddArc(2, 3, 4);
  net.AddArc(3, 4, 10);
  net.AddArc(4, 5, 2);
  int64_t flow = net.MaxFlow(0, 5);
  auto side = net.MinCutSourceSide(0);
  EXPECT_TRUE(side[0]);
  EXPECT_FALSE(side[5]);
  EXPECT_EQ(flow, 2);
}

TEST(DinicTest, MatchesEdgeCutOnRandomGraphs) {
  // Cross-check: min u-v edge cut computed by Dinic equals the brute-force
  // minimum over all u-v separating bipartitions, on tiny random graphs.
  for (uint64_t seed = 0; seed < 8; ++seed) {
    Graph g = ErdosRenyi(9, 0.4, seed);
    VertexId u = 0, v = 8;
    int64_t flow = MinEdgeCutBetween(g, u, v);
    // Brute force over bipartitions with u on one side, v on the other.
    int64_t best = INT64_MAX;
    size_t n = g.NumVertices();
    for (uint64_t mask = 0; mask < (1ULL << n); ++mask) {
      if (((mask >> u) & 1) != 1 || ((mask >> v) & 1) != 0) continue;
      int64_t cut = 0;
      for (const Edge& e : g.Edges()) {
        if (((mask >> e.u()) & 1) != ((mask >> e.v()) & 1)) ++cut;
      }
      best = std::min(best, cut);
    }
    EXPECT_EQ(flow, best) << "seed=" << seed;
  }
}

}  // namespace
}  // namespace gms
