// Tests for the shared ingestion plane (stream/ingest_plane.h): one
// encode/prepare/route pass fanning out to every registered sketch
// consumer must be BIT-IDENTICAL -- at serialized-frame strength -- to
// each consumer ingesting the stream independently, across the full
// readers x appliers driver matrix and the three churn families. Under
// the `tsan` preset (filter matches Plane*) this doubles as the data-race
// check for concurrent multi-consumer fan-out.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "apps/approx_min_cut.h"
#include "apps/two_edge_connect.h"
#include "connectivity/k_skeleton.h"
#include "connectivity/spanning_forest_sketch.h"
#include "graph/generators.h"
#include "serve/sketch_server.h"
#include "stream/ingest_plane.h"
#include "stream/stream.h"
#include "stream/stream_driver.h"
#include "testkit/stream_spec.h"
#include "vertexconn/vc_query_sketch.h"

namespace gms {
namespace {

constexpr size_t kDriverSplit[] = {1, 2, 8};
constexpr testkit::Churn kDriverChurn[] = {testkit::Churn::kInsertOnly,
                                           testkit::Churn::kWithChurn,
                                           testkit::Churn::kDeleteDown};

// The determinism suite's expander spec: moderately dense, three churn
// families, rank-2 (so the VC consumer's (n, 2) codec matches).
testkit::StreamSpec PlaneSpec(testkit::Churn churn) {
  testkit::StreamSpec spec;
  spec.family = testkit::Family::kExpander;
  spec.n = 72;
  spec.k = 3;
  spec.gseed = 11;
  spec.churn = churn;
  spec.decoys = 96;
  spec.sseed = 19;
  return spec;
}

EngineParams DriverEngine(size_t readers, size_t appliers) {
  return EngineParams::Builder()
      .Threads(appliers)
      .Mode(IngestMode::kGutterDriver)
      .DriverReaders(readers)
      .DriverGutterCapacity(4)
      .Build();
}

ForestSketchParams LightForest() {
  return ForestSketchParams::Builder().Config(SketchConfig::Light()).Build();
}

VcQueryParams LightVc(size_t r) {
  return VcQueryParams::Builder()
      .K(2)
      .ExplicitR(r)
      .Forest(LightForest())
      .Build();
}

template <typename Sketch>
std::vector<uint8_t> Frame(const Sketch& s) {
  std::vector<uint8_t> out;
  s.Serialize(&out);
  return out;
}

// ---------------------------------------------------------------------------
// Shared-plane determinism matrix: a forest, a k-skeleton, and an R-bit
// routed VC consumer all fed by ONE plane pass -- serial inline and at
// every readers x appliers split -- against each sketch ingesting the
// stream independently, frame byte for byte, for all three churn families.
// ---------------------------------------------------------------------------

TEST(PlaneDeterminismTest, SharedFanOutMatrixBitIdentical) {
  constexpr uint64_t kSeed = 211;
  constexpr size_t kR = 12;
  for (testkit::Churn churn : kDriverChurn) {
    const testkit::StreamSpec spec = PlaneSpec(churn);
    const testkit::BuiltStream built = spec.Build();
    const auto& updates = built.stream.updates();

    // Independent baselines, serial per-update path.
    SpanningForestSketch forest_solo(spec.n, 2, kSeed, LightForest());
    KSkeletonSketch skel_solo(spec.n, 2, /*k=*/3, kSeed + 1, LightForest());
    VcQuerySketch vc_solo(spec.n, LightVc(kR), kSeed + 2);
    for (const auto& u : updates) {
      forest_solo.Update(u.edge, u.delta);
      skel_solo.Update(u.edge, u.delta);
      vc_solo.Update(Edge(u.edge[0], u.edge[1]), u.delta);
    }
    const std::vector<uint8_t> forest_frame = Frame(forest_solo);
    const std::vector<uint8_t> skel_frame = Frame(skel_solo);
    const std::vector<uint8_t> vc_frame = Frame(vc_solo);

    // Inline serial plane: one gutter pass, three consumers.
    {
      SpanningForestSketch forest(spec.n, 2, kSeed, LightForest());
      KSkeletonSketch skel(spec.n, 2, 3, kSeed + 1, LightForest());
      VcQuerySketch vc(spec.n, LightVc(kR), kSeed + 2);
      IngestPlane plane;
      ASSERT_TRUE(plane.Add(&forest));
      ASSERT_TRUE(plane.Add(&skel));
      ASSERT_TRUE(plane.Add(&vc));
      EXPECT_EQ(plane.num_consumers(), 3u);
      EXPECT_EQ(plane.route_bits_used(), 2u + kR);
      plane.Process(std::span<const StreamUpdate>(updates));
      EXPECT_EQ(Frame(forest), forest_frame) << testkit::ChurnName(churn);
      EXPECT_EQ(Frame(skel), skel_frame) << testkit::ChurnName(churn);
      EXPECT_EQ(Frame(vc), vc_frame) << testkit::ChurnName(churn);
    }

    // Parallel driver over the plane at every split.
    for (size_t readers : kDriverSplit) {
      for (size_t appliers : kDriverSplit) {
        SpanningForestSketch forest(spec.n, 2, kSeed, LightForest());
        KSkeletonSketch skel(spec.n, 2, 3, kSeed + 1, LightForest());
        VcQuerySketch vc(spec.n, LightVc(kR), kSeed + 2);
        IngestPlane plane;
        ASSERT_TRUE(plane.Add(&forest));
        ASSERT_TRUE(plane.Add(&skel));
        ASSERT_TRUE(plane.Add(&vc));
        plane.Drive(std::span<const StreamUpdate>(updates),
                    DriverParamsFromEngine(DriverEngine(readers, appliers)));
        const std::string where = testkit::ChurnName(churn) +
                                  std::string(" readers=") +
                                  std::to_string(readers) +
                                  " appliers=" + std::to_string(appliers);
        EXPECT_EQ(Frame(forest), forest_frame) << where;
        EXPECT_EQ(Frame(skel), skel_frame) << where;
        EXPECT_EQ(Frame(vc), vc_frame) << where;
      }
    }
  }
}

// The plane refuses consumers it cannot share a prepared pass with:
// mismatched vertex count, mismatched codec domain (max_rank), and route
// words that would overflow 64 bits. Reset() reclaims the bit budget.
TEST(PlaneDeterminismTest, AddRejectsUnshareableConsumers) {
  constexpr uint64_t kSeed = 77;
  SpanningForestSketch base(32, 2, kSeed, LightForest());
  SpanningForestSketch other_n(48, 2, kSeed, LightForest());
  SpanningForestSketch other_rank(32, 3, kSeed, LightForest());

  IngestPlane plane;
  ASSERT_TRUE(plane.Add(&base));
  EXPECT_FALSE(plane.Add(&other_n));
  EXPECT_FALSE(plane.Add(&other_rank));
  EXPECT_EQ(plane.num_consumers(), 1u);
  EXPECT_EQ(plane.route_bits_used(), 1u);

  // Two 40-bit VC consumers cannot both pack into the 64-bit route word;
  // the second is rejected and the plane keeps working without it.
  VcQuerySketch wide_a(32, LightVc(40), kSeed + 1);
  VcQuerySketch wide_b(32, LightVc(40), kSeed + 2);
  EXPECT_TRUE(plane.Add(&wide_a));
  EXPECT_EQ(plane.route_bits_used(), 41u);
  EXPECT_FALSE(plane.Add(&wide_b));
  EXPECT_EQ(plane.num_consumers(), 2u);

  plane.Reset();
  EXPECT_EQ(plane.num_consumers(), 0u);
  EXPECT_EQ(plane.route_bits_used(), 0u);
  EXPECT_TRUE(plane.Add(&wide_b));
}

// ---------------------------------------------------------------------------
// Application call sites: Process (shared plane / driver fan-out) vs
// ProcessIndependent (each layer re-encodes), frame byte for byte.
// ---------------------------------------------------------------------------

TEST(PlaneDeterminismTest, TwoEdgeConnectPlaneMatchesIndependent) {
  constexpr size_t kN = 64;
  constexpr uint64_t kSeed = 307;
  const Graph g = UnionOfHamiltonianCycles(kN, 3, kSeed);
  const DynamicStream stream = DynamicStream::WithChurn(g, 2 * kN, kSeed + 1);

  apps::TwoEdgeConnect independent(kN, 2, kSeed, LightForest());
  independent.ProcessIndependent(
      std::span<const StreamUpdate>(stream.updates()));

  apps::TwoEdgeConnect planed(kN, 2, kSeed, LightForest());
  planed.Process(stream);
  EXPECT_EQ(Frame(planed.layer1()), Frame(independent.layer1()));
  EXPECT_EQ(Frame(planed.layer2()), Frame(independent.layer2()));

  apps::TwoEdgeConnect driven(
      kN, 2, kSeed,
      ForestSketchParams::Builder(LightForest())
          .Engine(DriverEngine(/*readers=*/2, /*appliers=*/2))
          .Build());
  driven.Process(stream);
  EXPECT_EQ(Frame(driven.layer1()), Frame(independent.layer1()));
  EXPECT_EQ(Frame(driven.layer2()), Frame(independent.layer2()));
}

TEST(PlaneDeterminismTest, ApproxMinCutLadderPlaneMatchesIndependent) {
  constexpr size_t kN = 48;
  constexpr uint64_t kSeed = 401;
  constexpr size_t kCap = 8;  // rungs k = 1, 2, 4, 8
  const Graph g = UnionOfHamiltonianCycles(kN, 3, kSeed);
  const DynamicStream stream = DynamicStream::WithChurn(g, kN, kSeed + 1);

  apps::ApproxMinCut independent(kN, 2, kCap, kSeed, LightForest());
  independent.ProcessIndependent(
      std::span<const StreamUpdate>(stream.updates()));

  apps::ApproxMinCut planed(kN, 2, kCap, kSeed, LightForest());
  planed.Process(stream);
  ASSERT_EQ(planed.num_levels(), independent.num_levels());
  for (size_t i = 0; i < planed.num_levels(); ++i) {
    EXPECT_EQ(Frame(planed.level(i)), Frame(independent.level(i)))
        << "rung " << i;
  }

  apps::ApproxMinCut driven(
      kN, 2, kCap, kSeed,
      ForestSketchParams::Builder(LightForest())
          .Engine(DriverEngine(/*readers=*/2, /*appliers=*/2))
          .Build());
  driven.Process(stream);
  for (size_t i = 0; i < driven.num_levels(); ++i) {
    EXPECT_EQ(Frame(driven.level(i)), Frame(independent.level(i)))
        << "rung " << i;
  }
}

// ---------------------------------------------------------------------------
// SketchServer: the shared sealed-delta ingest (one plane pass feeding all
// three engines' open deltas) must publish the same epochs and the same
// payloads as the pre-plane per-engine ingest.
// ---------------------------------------------------------------------------

serve::SketchServerParams ServerParams(size_t epoch_updates, size_t max_rank) {
  return serve::SketchServerParams::Builder()
      .Forest(LightForest())
      .MaxRank(max_rank)
      .Vc(LightVc(10))
      .SkeletonK(2)
      .EpochUpdates(epoch_updates)
      .Build();
}

void ExpectServersAgree(serve::SketchServer* shared,
                        serve::SketchServer* independent) {
  shared->Flush();
  independent->Flush();
  auto fs = shared->forest_engine().Current();
  auto fi = independent->forest_engine().Current();
  ASSERT_TRUE(fs->status.ok());
  ASSERT_TRUE(fi->status.ok());
  EXPECT_EQ(fs->prefix_updates, fi->prefix_updates);
  EXPECT_EQ(fs->epoch, fi->epoch);
  EXPECT_TRUE(*fs->payload == *fi->payload);
  auto vs = shared->vc_engine().Current();
  auto vi = independent->vc_engine().Current();
  ASSERT_TRUE(vs->status.ok());
  ASSERT_TRUE(vi->status.ok());
  EXPECT_EQ(vs->prefix_updates, vi->prefix_updates);
  EXPECT_TRUE(vs->payload->union_graph() == vi->payload->union_graph());
  auto ss = shared->skeleton_engine().Current();
  auto si = independent->skeleton_engine().Current();
  ASSERT_TRUE(ss->status.ok());
  ASSERT_TRUE(si->status.ok());
  EXPECT_EQ(ss->prefix_updates, si->prefix_updates);
  EXPECT_TRUE(*ss->payload == *si->payload);
}

TEST(PlaneDeterminismTest, ServerSharedIngestMatchesIndependent) {
  constexpr size_t kN = 56;
  constexpr uint64_t kSeed = 509;
  const Graph g = UnionOfHamiltonianCycles(kN, 3, kSeed);
  const DynamicStream stream = DynamicStream::WithChurn(g, kN, kSeed + 1);

  // Small epochs force several shared-delta chunks per Ingest call.
  serve::SketchServer shared(kN, ServerParams(/*epoch_updates=*/64, 2), kSeed);
  serve::SketchServer independent(kN, ServerParams(64, 2), kSeed);
  shared.Ingest(stream);
  independent.IngestIndependent(
      std::span<const StreamUpdate>(stream.updates()));
  ExpectServersAgree(&shared, &independent);
}

// With max_rank = 3 the forest/skeleton codec domain is (n, 3) while the
// VC engine's is (n, 2): the VC engine cannot join the plane and must fall
// back to its own Process on the same chunks -- still byte-identical.
TEST(PlaneDeterminismTest, ServerVcFallbackOutsidePlaneStillAgrees) {
  constexpr size_t kN = 40;
  constexpr uint64_t kSeed = 601;
  const Graph g = UnionOfHamiltonianCycles(kN, 2, kSeed);
  const DynamicStream stream = DynamicStream::WithChurn(g, kN, kSeed + 1);

  serve::SketchServer shared(kN, ServerParams(/*epoch_updates=*/64, 3), kSeed);
  serve::SketchServer independent(kN, ServerParams(64, 3), kSeed);
  shared.Ingest(stream);
  independent.IngestIndependent(
      std::span<const StreamUpdate>(stream.updates()));
  ExpectServersAgree(&shared, &independent);
}

// ---------------------------------------------------------------------------
// Concurrency: multi-consumer fan-out under the parallel driver while
// query threads hammer the server -- the tsan preset's data-race check for
// the plane's concurrent ApplyUpdateBatch fan-out, the external ingest
// scopes, and the wall-clock pacer.
// ---------------------------------------------------------------------------

TEST(PlaneConcurrencyTest, ServerSharedDriverIngestWhileQuerying) {
  constexpr size_t kN = 64;
  constexpr uint64_t kSeed = 701;
  const Graph g = UnionOfHamiltonianCycles(kN, 3, kSeed);
  const DynamicStream stream = DynamicStream::WithChurn(g, kN, kSeed + 1);

  serve::SketchServerParams params =
      serve::SketchServerParams::Builder()
          .Forest(ForestSketchParams::Builder(LightForest())
                      .Engine(DriverEngine(/*readers=*/2, /*appliers=*/2))
                      .Build())
          .MaxRank(2)
          .Vc(LightVc(10))
          .SkeletonK(2)
          .Serving(ServingParams::Builder()
                       .EpochUpdates(128)
                       .EpochDeadlineMillis(5)
                       .Build())
          .Build();
  serve::SketchServer server(kN, params, kSeed);

  std::atomic<bool> stop{false};
  std::vector<std::thread> askers;
  for (int t = 0; t < 2; ++t) {
    askers.emplace_back([&server, &stop, t] {
      serve::ServeRequest req;
      req.op = serve::ServeOp::kConnected;
      req.u = static_cast<uint64_t>(t);
      req.v = static_cast<uint64_t>(t + 1);
      while (!stop.load(std::memory_order_relaxed)) {
        server.Handle(req);
      }
    });
  }
  // Several chunks through the shared plane while queries run.
  const auto& updates = stream.updates();
  const size_t half = updates.size() / 2;
  server.Ingest(std::span<const StreamUpdate>(updates.data(), half));
  server.Ingest(std::span<const StreamUpdate>(updates.data() + half,
                                              updates.size() - half));
  server.Flush();
  stop.store(true);
  for (auto& th : askers) th.join();

  // The flushed server must agree with an independent per-engine replay.
  serve::SketchServer oracle(kN, params, kSeed);
  oracle.IngestIndependent(std::span<const StreamUpdate>(updates));
  ExpectServersAgree(&server, &oracle);
}

}  // namespace
}  // namespace gms
