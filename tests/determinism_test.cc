// Determinism suite for the parallel ingestion / extraction engine: for
// every sketch container that shards work across threads, the state after
// batched parallel Process and the decoded output must be BIT-IDENTICAL to
// the serial per-update path, for threads in {1, 2, 8}. This is the
// enforceable contract of util/parallel.h (sharded ownership + linearity),
// and under the `tsan` preset it doubles as the engine's data-race test.
#include <gtest/gtest.h>

#include <vector>

#include "connectivity/k_skeleton.h"
#include "connectivity/spanning_forest_sketch.h"
#include "graph/generators.h"
#include "sparsify/sparsifier_sketch.h"
#include "stream/stream.h"
#include "testkit/stream_spec.h"
#include "vertexconn/hyper_vc_query.h"
#include "vertexconn/vc_query_sketch.h"

namespace gms {
namespace {

constexpr size_t kThreadSweep[] = {1, 2, 8};

// A churn graph stream (inserts + decoy insert/delete pairs) over a
// moderately dense graph: deletions exercise the linear cancellation path.
DynamicStream GraphStream(size_t n, uint64_t seed) {
  Graph g = UnionOfHamiltonianCycles(n, 3, seed);
  return DynamicStream::WithChurn(g, /*decoys=*/2 * n, seed + 1);
}

DynamicStream HypergraphStream(size_t n, size_t r, uint64_t seed) {
  Hypergraph g = HyperCycle(n, r);
  return DynamicStream::WithChurn(g, /*decoys=*/n, r, seed + 1);
}

TEST(DeterminismTest, SpanningForestProcessMatchesSerialUpdates) {
  constexpr size_t kN = 96;
  constexpr uint64_t kSeed = 77;
  DynamicStream stream = GraphStream(kN, kSeed);

  ForestSketchParams serial_params;
  serial_params.config = SketchConfig::Light();
  SpanningForestSketch serial(kN, /*max_rank=*/2, kSeed, serial_params);
  for (const auto& u : stream.updates()) serial.Update(u.edge, u.delta);
  auto serial_span = serial.ExtractSpanningGraph();
  ASSERT_TRUE(serial_span.ok());

  for (size_t threads : kThreadSweep) {
    ForestSketchParams params = serial_params;
    params.engine.threads = threads;
    SpanningForestSketch parallel(kN, 2, kSeed, params);
    parallel.Process(stream);
    EXPECT_TRUE(parallel.StateEquals(serial)) << "threads=" << threads;

    auto span = parallel.ExtractSpanningGraph();
    ASSERT_TRUE(span.ok()) << "threads=" << threads;
    EXPECT_TRUE(span.value() == serial_span.value()) << "threads=" << threads;
    // Decoding the SERIAL sketch with a parallel worker sweep must also be
    // byte-for-byte the same hypergraph (extraction-side determinism).
    auto reread = serial.ExtractSpanningGraph(threads);
    ASSERT_TRUE(reread.ok());
    EXPECT_TRUE(reread.value() == serial_span.value()) << "threads=" << threads;
  }
}

TEST(DeterminismTest, SpanningForestHypergraphStreams) {
  constexpr size_t kN = 48;
  constexpr uint64_t kSeed = 31;
  DynamicStream stream = HypergraphStream(kN, /*r=*/3, kSeed);

  ForestSketchParams serial_params;
  serial_params.config = SketchConfig::Light();
  SpanningForestSketch serial(kN, /*max_rank=*/3, kSeed, serial_params);
  for (const auto& u : stream.updates()) serial.Update(u.edge, u.delta);
  auto serial_span = serial.ExtractSpanningGraph();
  ASSERT_TRUE(serial_span.ok());

  for (size_t threads : kThreadSweep) {
    ForestSketchParams params = serial_params;
    params.engine.threads = threads;
    SpanningForestSketch parallel(kN, 3, kSeed, params);
    parallel.Process(stream);
    EXPECT_TRUE(parallel.StateEquals(serial)) << "threads=" << threads;
    auto span = parallel.ExtractSpanningGraph();
    ASSERT_TRUE(span.ok());
    EXPECT_TRUE(span.value() == serial_span.value()) << "threads=" << threads;
  }
}

TEST(DeterminismTest, SubsampledForestUnionBitIdentical) {
  constexpr size_t kN = 80;
  constexpr uint64_t kSeed = 5;
  DynamicStream stream = GraphStream(kN, kSeed);

  ForestSketchParams forest;
  forest.config = SketchConfig::Light();
  SubsampledForestUnion serial(kN, /*k=*/2, /*r_subgraphs=*/12, kSeed, forest);
  for (const auto& u : stream.updates()) {
    serial.Update(Edge(u.edge[0], u.edge[1]), u.delta);
  }
  auto serial_h = serial.BuildUnionGraph();
  ASSERT_TRUE(serial_h.ok());

  for (size_t threads : kThreadSweep) {
    SubsampledForestUnion parallel(kN, 2, 12, kSeed, forest,
                                   EngineParams{threads});
    parallel.Process(stream);
    EXPECT_TRUE(parallel.StateEquals(serial)) << "threads=" << threads;
    auto h = parallel.BuildUnionGraph();
    ASSERT_TRUE(h.ok()) << "threads=" << threads;
    EXPECT_TRUE(h.value() == serial_h.value()) << "threads=" << threads;
  }
}

TEST(DeterminismTest, KSkeletonHypergraphBitIdentical) {
  constexpr size_t kN = 40;
  constexpr uint64_t kSeed = 13;
  DynamicStream stream = HypergraphStream(kN, /*r=*/3, kSeed);

  SpanningForestSketch::Params serial_params;
  serial_params.config = SketchConfig::Light();
  KSkeletonSketch serial(kN, /*max_rank=*/3, /*k=*/3, kSeed, serial_params);
  for (const auto& u : stream.updates()) serial.Update(u.edge, u.delta);
  auto serial_skel = serial.Extract();
  ASSERT_TRUE(serial_skel.ok());

  for (size_t threads : kThreadSweep) {
    SpanningForestSketch::Params params = serial_params;
    params.engine.threads = threads;
    KSkeletonSketch parallel(kN, 3, 3, kSeed, params);
    parallel.Process(stream);
    EXPECT_TRUE(parallel.StateEquals(serial)) << "threads=" << threads;
    auto skel = parallel.Extract();
    ASSERT_TRUE(skel.ok()) << "threads=" << threads;
    EXPECT_TRUE(skel.value() == serial_skel.value()) << "threads=" << threads;
  }
}

TEST(DeterminismTest, SparsifierBitIdentical) {
  constexpr size_t kN = 32;
  constexpr uint64_t kSeed = 21;
  DynamicStream stream = HypergraphStream(kN, /*r=*/3, kSeed);

  SparsifierParams serial_params;
  serial_params.forest.config = SketchConfig::Light();
  serial_params.levels = 6;
  serial_params.k = 4;
  HypergraphSparsifierSketch serial(kN, /*max_rank=*/3, serial_params, kSeed);
  for (const auto& u : stream.updates()) serial.Update(u.edge, u.delta);
  auto serial_out = serial.ExtractSparsifier();
  ASSERT_TRUE(serial_out.ok());

  for (size_t threads : kThreadSweep) {
    SparsifierParams params = serial_params;
    params.engine.threads = threads;
    HypergraphSparsifierSketch parallel(kN, 3, params, kSeed);
    parallel.Process(stream);
    EXPECT_TRUE(parallel.StateEquals(serial)) << "threads=" << threads;
    auto out = parallel.ExtractSparsifier();
    ASSERT_TRUE(out.ok()) << "threads=" << threads;
    EXPECT_EQ(out.value().level_sizes, serial_out.value().level_sizes);
    EXPECT_EQ(out.value().sparsifier.edges, serial_out.value().sparsifier.edges);
    EXPECT_EQ(out.value().sparsifier.weights,
              serial_out.value().sparsifier.weights);
  }
}

TEST(DeterminismTest, HyperVcQueryBitIdentical) {
  constexpr size_t kN = 36;
  constexpr uint64_t kSeed = 9;
  DynamicStream stream = HypergraphStream(kN, /*r=*/3, kSeed);

  VcQueryParams serial_params;
  serial_params.k = 2;
  serial_params.explicit_r = 10;
  serial_params.forest.config = SketchConfig::Light();
  HyperVcQuerySketch serial(kN, /*max_rank=*/3, serial_params, kSeed);
  for (const auto& u : stream.updates()) serial.Update(u.edge, u.delta);
  ASSERT_TRUE(serial.Finalize().ok());

  for (size_t threads : kThreadSweep) {
    VcQueryParams params = serial_params;
    params.engine.threads = threads;
    HyperVcQuerySketch parallel(kN, 3, params, kSeed);
    parallel.Process(stream);
    EXPECT_TRUE(parallel.StateEquals(serial)) << "threads=" << threads;
    ASSERT_TRUE(parallel.Finalize().ok()) << "threads=" << threads;
    EXPECT_TRUE(parallel.union_graph() == serial.union_graph())
        << "threads=" << threads;
    for (VertexId v = 0; v < 6; ++v) {
      auto a = serial.Disconnects({v});
      auto b = parallel.Disconnects({v});
      ASSERT_TRUE(a.ok());
      ASSERT_TRUE(b.ok());
      EXPECT_EQ(a.value(), b.value()) << "threads=" << threads << " v=" << v;
    }
  }
}

TEST(DeterminismTest, VcQuerySketchEndToEnd) {
  constexpr size_t kN = 64;
  constexpr uint64_t kSeed = 3;
  Graph g = UnionOfHamiltonianCycles(kN, 3, kSeed);
  DynamicStream stream = DynamicStream::WithChurn(g, /*decoys=*/kN, kSeed + 1);

  VcQueryParams serial_params;
  serial_params.k = 2;
  serial_params.explicit_r = 12;
  serial_params.forest.config = SketchConfig::Light();
  VcQuerySketch serial(kN, serial_params, kSeed);
  for (const auto& u : stream.updates()) {
    serial.Update(Edge(u.edge[0], u.edge[1]), u.delta);
  }
  ASSERT_TRUE(serial.Finalize().ok());

  for (size_t threads : kThreadSweep) {
    VcQueryParams params = serial_params;
    params.engine.threads = threads;
    VcQuerySketch parallel(kN, params, kSeed);
    parallel.Process(stream);
    ASSERT_TRUE(parallel.Finalize().ok()) << "threads=" << threads;
    EXPECT_TRUE(parallel.union_graph() == serial.union_graph())
        << "threads=" << threads;
    for (VertexId v = 0; v < 8; ++v) {
      auto a = serial.Disconnects({v});
      auto b = parallel.Disconnects({v});
      ASSERT_TRUE(a.ok());
      ASSERT_TRUE(b.ok());
      EXPECT_EQ(a.value(), b.value()) << "threads=" << threads << " v=" << v;
    }
  }
}

// ---------------------------------------------------------------------------
// Gutter-driver matrix: serial per-update ingest vs the stream driver at
// every readers x appliers split from {1, 2, 8}, across the three churn
// families. Equality is checked at the strongest level available -- the
// serialized wire frame, byte for byte -- so any divergence in cells, level
// masks, or header metadata fails loudly. Under the `tsan` preset this is
// also the driver's data-race test (reader queues, concurrent appliers,
// and the shared round-major dirty words all get exercised).
// ---------------------------------------------------------------------------

constexpr size_t kDriverSplit[] = {1, 2, 8};
constexpr testkit::Churn kDriverChurn[] = {testkit::Churn::kInsertOnly,
                                           testkit::Churn::kWithChurn,
                                           testkit::Churn::kDeleteDown};

// Engine running the gutter driver with an explicit reader/applier split
// and a tiny gutter capacity so auto-flush (not just the final epoch
// flush) fires even on test-sized streams.
EngineParams DriverEngine(size_t readers, size_t appliers) {
  EngineParams engine;
  engine.threads = appliers;
  engine.mode = IngestMode::kGutterDriver;
  engine.driver_readers = readers;
  engine.driver_gutter_capacity = 4;
  return engine;
}

std::vector<uint8_t> Frame(const SpanningForestSketch& s) {
  std::vector<uint8_t> out;
  s.Serialize(&out);
  return out;
}

TEST(DeterminismTest, GutterDriverMatrixBitIdentical) {
  constexpr uint64_t kSeed = 101;
  for (testkit::Churn churn : kDriverChurn) {
    testkit::StreamSpec spec;
    spec.family = testkit::Family::kExpander;
    spec.n = 72;
    spec.k = 3;
    spec.gseed = 11;
    spec.churn = churn;
    spec.decoys = 96;
    spec.sseed = 19;
    testkit::BuiltStream built = spec.Build();

    ForestSketchParams serial_params;
    serial_params.config = SketchConfig::Light();
    SpanningForestSketch serial(spec.n, /*max_rank=*/2, kSeed, serial_params);
    for (const auto& u : built.stream.updates()) serial.Update(u.edge, u.delta);
    const std::vector<uint8_t> serial_frame = Frame(serial);
    auto serial_span = serial.ExtractSpanningGraph();
    ASSERT_TRUE(serial_span.ok());

    for (size_t readers : kDriverSplit) {
      for (size_t appliers : kDriverSplit) {
        ForestSketchParams params = serial_params;
        params.engine = DriverEngine(readers, appliers);
        SpanningForestSketch driver(spec.n, 2, kSeed, params);
        driver.Process(built.stream);
        const std::string where = testkit::ChurnName(churn) +
                                  std::string(" readers=") +
                                  std::to_string(readers) +
                                  " appliers=" + std::to_string(appliers);
        EXPECT_TRUE(driver.StateEquals(serial)) << where;
        EXPECT_EQ(Frame(driver), serial_frame) << where;
        auto span = driver.ExtractSpanningGraph();
        ASSERT_TRUE(span.ok()) << where;
        EXPECT_TRUE(span.value() == serial_span.value()) << where;
      }
    }
  }
}

// Every container the driver routes through, at one representative split
// (2 readers x 2 appliers), against its serial per-update state -- again
// at serialized-frame strength. The hypergraph stream exercises rank-3
// incidence coefficients (head coefficient |e|-1 = 2, tails -1).
TEST(DeterminismTest, GutterDriverRoutedContainersBitIdentical) {
  constexpr size_t kN = 40;
  constexpr uint64_t kSeed = 57;
  DynamicStream graph_stream = GraphStream(kN, kSeed);
  DynamicStream hyper_stream = HypergraphStream(kN, /*r=*/3, kSeed);
  const EngineParams engine = DriverEngine(/*readers=*/2, /*appliers=*/2);

  {  // K-skeleton (hypergraph).
    SpanningForestSketch::Params params;
    params.config = SketchConfig::Light();
    KSkeletonSketch serial(kN, /*max_rank=*/3, /*k=*/3, kSeed, params);
    for (const auto& u : hyper_stream.updates()) serial.Update(u.edge, u.delta);
    params.engine = engine;
    KSkeletonSketch driver(kN, 3, 3, kSeed, params);
    driver.Process(hyper_stream);
    EXPECT_TRUE(driver.StateEquals(serial));
    std::vector<uint8_t> a, b;
    serial.Serialize(&a);
    driver.Serialize(&b);
    EXPECT_EQ(a, b) << "k-skeleton driver frame diverges";
  }
  {  // Vertex-connectivity query union (graph, subsample routing bits).
    VcQueryParams params;
    params.k = 2;
    params.explicit_r = 12;
    params.forest.config = SketchConfig::Light();
    VcQuerySketch serial(kN, params, kSeed);
    for (const auto& u : graph_stream.updates()) {
      serial.Update(Edge(u.edge[0], u.edge[1]), u.delta);
    }
    params.engine = engine;
    VcQuerySketch driver(kN, params, kSeed);
    driver.Process(graph_stream);
    std::vector<uint8_t> a, b;
    serial.Serialize(&a);
    driver.Serialize(&b);
    EXPECT_EQ(a, b) << "vc-query driver frame diverges";
  }
  {  // Hypergraph vertex-connectivity (all-endpoints-kept routing bits).
    VcQueryParams params;
    params.k = 2;
    params.explicit_r = 10;
    params.forest.config = SketchConfig::Light();
    HyperVcQuerySketch serial(kN, /*max_rank=*/3, params, kSeed);
    for (const auto& u : hyper_stream.updates()) serial.Update(u.edge, u.delta);
    params.engine = engine;
    HyperVcQuerySketch driver(kN, 3, params, kSeed);
    driver.Process(hyper_stream);
    EXPECT_TRUE(driver.StateEquals(serial));
    std::vector<uint8_t> a, b;
    serial.Serialize(&a);
    driver.Serialize(&b);
    EXPECT_EQ(a, b) << "hyper-vc driver frame diverges";
  }
  {  // Sparsifier (depth re-derived per level at apply time).
    SparsifierParams params;
    params.forest.config = SketchConfig::Light();
    params.levels = 6;
    params.k = 4;
    HypergraphSparsifierSketch serial(kN, /*max_rank=*/3, params, kSeed);
    for (const auto& u : hyper_stream.updates()) serial.Update(u.edge, u.delta);
    params.engine = engine;
    HypergraphSparsifierSketch driver(kN, 3, params, kSeed);
    driver.Process(hyper_stream);
    EXPECT_TRUE(driver.StateEquals(serial));
    std::vector<uint8_t> a, b;
    serial.Serialize(&a);
    driver.Serialize(&b);
    EXPECT_EQ(a, b) << "sparsifier driver frame diverges";
  }
}

}  // namespace
}  // namespace gms
