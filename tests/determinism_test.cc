// Determinism suite for the parallel ingestion / extraction engine: for
// every sketch container that shards work across threads, the state after
// batched parallel Process and the decoded output must be BIT-IDENTICAL to
// the serial per-update path, for threads in {1, 2, 8}. This is the
// enforceable contract of util/parallel.h (sharded ownership + linearity),
// and under the `tsan` preset it doubles as the engine's data-race test.
#include <gtest/gtest.h>

#include <vector>

#include "connectivity/k_skeleton.h"
#include "connectivity/spanning_forest_sketch.h"
#include "graph/generators.h"
#include "sparsify/sparsifier_sketch.h"
#include "stream/stream.h"
#include "vertexconn/hyper_vc_query.h"
#include "vertexconn/vc_query_sketch.h"

namespace gms {
namespace {

constexpr size_t kThreadSweep[] = {1, 2, 8};

// A churn graph stream (inserts + decoy insert/delete pairs) over a
// moderately dense graph: deletions exercise the linear cancellation path.
DynamicStream GraphStream(size_t n, uint64_t seed) {
  Graph g = UnionOfHamiltonianCycles(n, 3, seed);
  return DynamicStream::WithChurn(g, /*decoys=*/2 * n, seed + 1);
}

DynamicStream HypergraphStream(size_t n, size_t r, uint64_t seed) {
  Hypergraph g = HyperCycle(n, r);
  return DynamicStream::WithChurn(g, /*decoys=*/n, r, seed + 1);
}

TEST(DeterminismTest, SpanningForestProcessMatchesSerialUpdates) {
  constexpr size_t kN = 96;
  constexpr uint64_t kSeed = 77;
  DynamicStream stream = GraphStream(kN, kSeed);

  ForestSketchParams serial_params;
  serial_params.config = SketchConfig::Light();
  SpanningForestSketch serial(kN, /*max_rank=*/2, kSeed, serial_params);
  for (const auto& u : stream.updates()) serial.Update(u.edge, u.delta);
  auto serial_span = serial.ExtractSpanningGraph();
  ASSERT_TRUE(serial_span.ok());

  for (size_t threads : kThreadSweep) {
    ForestSketchParams params = serial_params;
    params.engine.threads = threads;
    SpanningForestSketch parallel(kN, 2, kSeed, params);
    parallel.Process(stream);
    EXPECT_TRUE(parallel.StateEquals(serial)) << "threads=" << threads;

    auto span = parallel.ExtractSpanningGraph();
    ASSERT_TRUE(span.ok()) << "threads=" << threads;
    EXPECT_TRUE(span.value() == serial_span.value()) << "threads=" << threads;
    // Decoding the SERIAL sketch with a parallel worker sweep must also be
    // byte-for-byte the same hypergraph (extraction-side determinism).
    auto reread = serial.ExtractSpanningGraph(threads);
    ASSERT_TRUE(reread.ok());
    EXPECT_TRUE(reread.value() == serial_span.value()) << "threads=" << threads;
  }
}

TEST(DeterminismTest, SpanningForestHypergraphStreams) {
  constexpr size_t kN = 48;
  constexpr uint64_t kSeed = 31;
  DynamicStream stream = HypergraphStream(kN, /*r=*/3, kSeed);

  ForestSketchParams serial_params;
  serial_params.config = SketchConfig::Light();
  SpanningForestSketch serial(kN, /*max_rank=*/3, kSeed, serial_params);
  for (const auto& u : stream.updates()) serial.Update(u.edge, u.delta);
  auto serial_span = serial.ExtractSpanningGraph();
  ASSERT_TRUE(serial_span.ok());

  for (size_t threads : kThreadSweep) {
    ForestSketchParams params = serial_params;
    params.engine.threads = threads;
    SpanningForestSketch parallel(kN, 3, kSeed, params);
    parallel.Process(stream);
    EXPECT_TRUE(parallel.StateEquals(serial)) << "threads=" << threads;
    auto span = parallel.ExtractSpanningGraph();
    ASSERT_TRUE(span.ok());
    EXPECT_TRUE(span.value() == serial_span.value()) << "threads=" << threads;
  }
}

TEST(DeterminismTest, SubsampledForestUnionBitIdentical) {
  constexpr size_t kN = 80;
  constexpr uint64_t kSeed = 5;
  DynamicStream stream = GraphStream(kN, kSeed);

  ForestSketchParams forest;
  forest.config = SketchConfig::Light();
  SubsampledForestUnion serial(kN, /*k=*/2, /*r_subgraphs=*/12, kSeed, forest);
  for (const auto& u : stream.updates()) {
    serial.Update(Edge(u.edge[0], u.edge[1]), u.delta);
  }
  auto serial_h = serial.BuildUnionGraph();
  ASSERT_TRUE(serial_h.ok());

  for (size_t threads : kThreadSweep) {
    SubsampledForestUnion parallel(kN, 2, 12, kSeed, forest,
                                   EngineParams{threads});
    parallel.Process(stream);
    EXPECT_TRUE(parallel.StateEquals(serial)) << "threads=" << threads;
    auto h = parallel.BuildUnionGraph();
    ASSERT_TRUE(h.ok()) << "threads=" << threads;
    EXPECT_TRUE(h.value() == serial_h.value()) << "threads=" << threads;
  }
}

TEST(DeterminismTest, KSkeletonHypergraphBitIdentical) {
  constexpr size_t kN = 40;
  constexpr uint64_t kSeed = 13;
  DynamicStream stream = HypergraphStream(kN, /*r=*/3, kSeed);

  SpanningForestSketch::Params serial_params;
  serial_params.config = SketchConfig::Light();
  KSkeletonSketch serial(kN, /*max_rank=*/3, /*k=*/3, kSeed, serial_params);
  for (const auto& u : stream.updates()) serial.Update(u.edge, u.delta);
  auto serial_skel = serial.Extract();
  ASSERT_TRUE(serial_skel.ok());

  for (size_t threads : kThreadSweep) {
    SpanningForestSketch::Params params = serial_params;
    params.engine.threads = threads;
    KSkeletonSketch parallel(kN, 3, 3, kSeed, params);
    parallel.Process(stream);
    EXPECT_TRUE(parallel.StateEquals(serial)) << "threads=" << threads;
    auto skel = parallel.Extract();
    ASSERT_TRUE(skel.ok()) << "threads=" << threads;
    EXPECT_TRUE(skel.value() == serial_skel.value()) << "threads=" << threads;
  }
}

TEST(DeterminismTest, SparsifierBitIdentical) {
  constexpr size_t kN = 32;
  constexpr uint64_t kSeed = 21;
  DynamicStream stream = HypergraphStream(kN, /*r=*/3, kSeed);

  SparsifierParams serial_params;
  serial_params.forest.config = SketchConfig::Light();
  serial_params.levels = 6;
  serial_params.k = 4;
  HypergraphSparsifierSketch serial(kN, /*max_rank=*/3, serial_params, kSeed);
  for (const auto& u : stream.updates()) serial.Update(u.edge, u.delta);
  auto serial_out = serial.ExtractSparsifier();
  ASSERT_TRUE(serial_out.ok());

  for (size_t threads : kThreadSweep) {
    SparsifierParams params = serial_params;
    params.engine.threads = threads;
    HypergraphSparsifierSketch parallel(kN, 3, params, kSeed);
    parallel.Process(stream);
    EXPECT_TRUE(parallel.StateEquals(serial)) << "threads=" << threads;
    auto out = parallel.ExtractSparsifier();
    ASSERT_TRUE(out.ok()) << "threads=" << threads;
    EXPECT_EQ(out.value().level_sizes, serial_out.value().level_sizes);
    EXPECT_EQ(out.value().sparsifier.edges, serial_out.value().sparsifier.edges);
    EXPECT_EQ(out.value().sparsifier.weights,
              serial_out.value().sparsifier.weights);
  }
}

TEST(DeterminismTest, HyperVcQueryBitIdentical) {
  constexpr size_t kN = 36;
  constexpr uint64_t kSeed = 9;
  DynamicStream stream = HypergraphStream(kN, /*r=*/3, kSeed);

  VcQueryParams serial_params;
  serial_params.k = 2;
  serial_params.explicit_r = 10;
  serial_params.forest.config = SketchConfig::Light();
  HyperVcQuerySketch serial(kN, /*max_rank=*/3, serial_params, kSeed);
  for (const auto& u : stream.updates()) serial.Update(u.edge, u.delta);
  ASSERT_TRUE(serial.Finalize().ok());

  for (size_t threads : kThreadSweep) {
    VcQueryParams params = serial_params;
    params.engine.threads = threads;
    HyperVcQuerySketch parallel(kN, 3, params, kSeed);
    parallel.Process(stream);
    EXPECT_TRUE(parallel.StateEquals(serial)) << "threads=" << threads;
    ASSERT_TRUE(parallel.Finalize().ok()) << "threads=" << threads;
    EXPECT_TRUE(parallel.union_graph() == serial.union_graph())
        << "threads=" << threads;
    for (VertexId v = 0; v < 6; ++v) {
      auto a = serial.Disconnects({v});
      auto b = parallel.Disconnects({v});
      ASSERT_TRUE(a.ok());
      ASSERT_TRUE(b.ok());
      EXPECT_EQ(a.value(), b.value()) << "threads=" << threads << " v=" << v;
    }
  }
}

TEST(DeterminismTest, VcQuerySketchEndToEnd) {
  constexpr size_t kN = 64;
  constexpr uint64_t kSeed = 3;
  Graph g = UnionOfHamiltonianCycles(kN, 3, kSeed);
  DynamicStream stream = DynamicStream::WithChurn(g, /*decoys=*/kN, kSeed + 1);

  VcQueryParams serial_params;
  serial_params.k = 2;
  serial_params.explicit_r = 12;
  serial_params.forest.config = SketchConfig::Light();
  VcQuerySketch serial(kN, serial_params, kSeed);
  for (const auto& u : stream.updates()) {
    serial.Update(Edge(u.edge[0], u.edge[1]), u.delta);
  }
  ASSERT_TRUE(serial.Finalize().ok());

  for (size_t threads : kThreadSweep) {
    VcQueryParams params = serial_params;
    params.engine.threads = threads;
    VcQuerySketch parallel(kN, params, kSeed);
    parallel.Process(stream);
    ASSERT_TRUE(parallel.Finalize().ok()) << "threads=" << threads;
    EXPECT_TRUE(parallel.union_graph() == serial.union_graph())
        << "threads=" << threads;
    for (VertexId v = 0; v < 8; ++v) {
      auto a = serial.Disconnects({v});
      auto b = parallel.Disconnects({v});
      ASSERT_TRUE(a.ok());
      ASSERT_TRUE(b.ok());
      EXPECT_EQ(a.value(), b.value()) << "threads=" << threads << " v=" << v;
    }
  }
}

}  // namespace
}  // namespace gms
