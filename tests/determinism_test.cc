// Determinism suite for the parallel ingestion / extraction engine: for
// every sketch container that shards work across threads, the state after
// batched parallel Process and the decoded output must be BIT-IDENTICAL to
// the serial per-update path, for threads in {1, 2, 8}. This is the
// enforceable contract of util/parallel.h (sharded ownership + linearity),
// and under the `tsan` preset it doubles as the engine's data-race test.
#include <gtest/gtest.h>

#include <vector>

#include "connectivity/k_skeleton.h"
#include "connectivity/spanning_forest_sketch.h"
#include "graph/generators.h"
#include "sparsify/sparsifier_sketch.h"
#include "stream/stream.h"
#include "testkit/stream_spec.h"
#include "vertexconn/hyper_vc_query.h"
#include "vertexconn/vc_query_sketch.h"

namespace gms {
namespace {

constexpr size_t kThreadSweep[] = {1, 2, 8};

// A churn graph stream (inserts + decoy insert/delete pairs) over a
// moderately dense graph: deletions exercise the linear cancellation path.
DynamicStream GraphStream(size_t n, uint64_t seed) {
  Graph g = UnionOfHamiltonianCycles(n, 3, seed);
  return DynamicStream::WithChurn(g, /*decoys=*/2 * n, seed + 1);
}

DynamicStream HypergraphStream(size_t n, size_t r, uint64_t seed) {
  Hypergraph g = HyperCycle(n, r);
  return DynamicStream::WithChurn(g, /*decoys=*/n, r, seed + 1);
}

TEST(DeterminismTest, SpanningForestProcessMatchesSerialUpdates) {
  constexpr size_t kN = 96;
  constexpr uint64_t kSeed = 77;
  DynamicStream stream = GraphStream(kN, kSeed);

  const ForestSketchParams serial_params =
      ForestSketchParams::Builder().Config(SketchConfig::Light()).Build();
  SpanningForestSketch serial(kN, /*max_rank=*/2, kSeed, serial_params);
  for (const auto& u : stream.updates()) serial.Update(u.edge, u.delta);
  auto serial_span = serial.ExtractSpanningGraph();
  ASSERT_TRUE(serial_span.ok());

  for (size_t threads : kThreadSweep) {
    const ForestSketchParams params =
        ForestSketchParams::Builder(serial_params).Threads(threads).Build();
    SpanningForestSketch parallel(kN, 2, kSeed, params);
    parallel.Process(stream);
    EXPECT_TRUE(parallel.StateEquals(serial)) << "threads=" << threads;

    auto span = parallel.ExtractSpanningGraph();
    ASSERT_TRUE(span.ok()) << "threads=" << threads;
    EXPECT_TRUE(span.value() == serial_span.value()) << "threads=" << threads;
    // Decoding the SERIAL sketch with a parallel worker sweep must also be
    // byte-for-byte the same hypergraph (extraction-side determinism).
    auto reread = serial.ExtractSpanningGraph(threads);
    ASSERT_TRUE(reread.ok());
    EXPECT_TRUE(reread.value() == serial_span.value()) << "threads=" << threads;
  }
}

TEST(DeterminismTest, SpanningForestHypergraphStreams) {
  constexpr size_t kN = 48;
  constexpr uint64_t kSeed = 31;
  DynamicStream stream = HypergraphStream(kN, /*r=*/3, kSeed);

  const ForestSketchParams serial_params =
      ForestSketchParams::Builder().Config(SketchConfig::Light()).Build();
  SpanningForestSketch serial(kN, /*max_rank=*/3, kSeed, serial_params);
  for (const auto& u : stream.updates()) serial.Update(u.edge, u.delta);
  auto serial_span = serial.ExtractSpanningGraph();
  ASSERT_TRUE(serial_span.ok());

  for (size_t threads : kThreadSweep) {
    const ForestSketchParams params =
        ForestSketchParams::Builder(serial_params).Threads(threads).Build();
    SpanningForestSketch parallel(kN, 3, kSeed, params);
    parallel.Process(stream);
    EXPECT_TRUE(parallel.StateEquals(serial)) << "threads=" << threads;
    auto span = parallel.ExtractSpanningGraph();
    ASSERT_TRUE(span.ok());
    EXPECT_TRUE(span.value() == serial_span.value()) << "threads=" << threads;
  }
}

TEST(DeterminismTest, SubsampledForestUnionBitIdentical) {
  constexpr size_t kN = 80;
  constexpr uint64_t kSeed = 5;
  DynamicStream stream = GraphStream(kN, kSeed);

  const ForestSketchParams forest =
      ForestSketchParams::Builder().Config(SketchConfig::Light()).Build();
  SubsampledForestUnion serial(kN, /*k=*/2, /*r_subgraphs=*/12, kSeed, forest);
  for (const auto& u : stream.updates()) {
    serial.Update(Edge(u.edge[0], u.edge[1]), u.delta);
  }
  auto serial_h = serial.BuildUnionGraph();
  ASSERT_TRUE(serial_h.ok());

  for (size_t threads : kThreadSweep) {
    SubsampledForestUnion parallel(
        kN, 2, 12, kSeed, forest,
        EngineParams::Builder().Threads(threads).Build());
    parallel.Process(stream);
    EXPECT_TRUE(parallel.StateEquals(serial)) << "threads=" << threads;
    auto h = parallel.BuildUnionGraph();
    ASSERT_TRUE(h.ok()) << "threads=" << threads;
    EXPECT_TRUE(h.value() == serial_h.value()) << "threads=" << threads;
  }
}

TEST(DeterminismTest, KSkeletonHypergraphBitIdentical) {
  constexpr size_t kN = 40;
  constexpr uint64_t kSeed = 13;
  DynamicStream stream = HypergraphStream(kN, /*r=*/3, kSeed);

  const SpanningForestSketch::Params serial_params =
      ForestSketchParams::Builder().Config(SketchConfig::Light()).Build();
  KSkeletonSketch serial(kN, /*max_rank=*/3, /*k=*/3, kSeed, serial_params);
  for (const auto& u : stream.updates()) serial.Update(u.edge, u.delta);
  auto serial_skel = serial.Extract();
  ASSERT_TRUE(serial_skel.ok());

  for (size_t threads : kThreadSweep) {
    const SpanningForestSketch::Params params =
        ForestSketchParams::Builder(serial_params).Threads(threads).Build();
    KSkeletonSketch parallel(kN, 3, 3, kSeed, params);
    parallel.Process(stream);
    EXPECT_TRUE(parallel.StateEquals(serial)) << "threads=" << threads;
    auto skel = parallel.Extract();
    ASSERT_TRUE(skel.ok()) << "threads=" << threads;
    EXPECT_TRUE(skel.value() == serial_skel.value()) << "threads=" << threads;
  }
}

TEST(DeterminismTest, SparsifierBitIdentical) {
  constexpr size_t kN = 32;
  constexpr uint64_t kSeed = 21;
  DynamicStream stream = HypergraphStream(kN, /*r=*/3, kSeed);

  const SparsifierParams serial_params =
      SparsifierParams::Builder()
          .Forest(
              ForestSketchParams::Builder().Config(SketchConfig::Light()).Build())
          .Levels(6)
          .K(4)
          .Build();
  HypergraphSparsifierSketch serial(kN, /*max_rank=*/3, serial_params, kSeed);
  for (const auto& u : stream.updates()) serial.Update(u.edge, u.delta);
  auto serial_out = serial.ExtractSparsifier();
  ASSERT_TRUE(serial_out.ok());

  for (size_t threads : kThreadSweep) {
    const SparsifierParams params =
        SparsifierParams::Builder(serial_params).Threads(threads).Build();
    HypergraphSparsifierSketch parallel(kN, 3, params, kSeed);
    parallel.Process(stream);
    EXPECT_TRUE(parallel.StateEquals(serial)) << "threads=" << threads;
    auto out = parallel.ExtractSparsifier();
    ASSERT_TRUE(out.ok()) << "threads=" << threads;
    EXPECT_EQ(out.value().level_sizes, serial_out.value().level_sizes);
    EXPECT_EQ(out.value().sparsifier.edges, serial_out.value().sparsifier.edges);
    EXPECT_EQ(out.value().sparsifier.weights,
              serial_out.value().sparsifier.weights);
  }
}

TEST(DeterminismTest, HyperVcQueryBitIdentical) {
  constexpr size_t kN = 36;
  constexpr uint64_t kSeed = 9;
  DynamicStream stream = HypergraphStream(kN, /*r=*/3, kSeed);

  const VcQueryParams serial_params =
      VcQueryParams::Builder()
          .K(2)
          .ExplicitR(10)
          .Forest(
              ForestSketchParams::Builder().Config(SketchConfig::Light()).Build())
          .Build();
  HyperVcQuerySketch serial(kN, /*max_rank=*/3, serial_params, kSeed);
  for (const auto& u : stream.updates()) serial.Update(u.edge, u.delta);
  auto serial_snap = serial.Query();
  ASSERT_TRUE(serial_snap.ok());

  for (size_t threads : kThreadSweep) {
    const VcQueryParams params =
        VcQueryParams::Builder(serial_params).Threads(threads).Build();
    HyperVcQuerySketch parallel(kN, 3, params, kSeed);
    parallel.Process(stream);
    EXPECT_TRUE(parallel.StateEquals(serial)) << "threads=" << threads;
    auto snap = parallel.Query();
    ASSERT_TRUE(snap.ok()) << "threads=" << threads;
    EXPECT_TRUE(snap.value().union_graph() == serial_snap.value().union_graph())
        << "threads=" << threads;
    for (VertexId v = 0; v < 6; ++v) {
      auto a = serial_snap.value().Disconnects({v});
      auto b = snap.value().Disconnects({v});
      ASSERT_TRUE(a.ok());
      ASSERT_TRUE(b.ok());
      EXPECT_EQ(a.value(), b.value()) << "threads=" << threads << " v=" << v;
    }
  }
}

TEST(DeterminismTest, VcQuerySketchEndToEnd) {
  constexpr size_t kN = 64;
  constexpr uint64_t kSeed = 3;
  Graph g = UnionOfHamiltonianCycles(kN, 3, kSeed);
  DynamicStream stream = DynamicStream::WithChurn(g, /*decoys=*/kN, kSeed + 1);

  const VcQueryParams serial_params =
      VcQueryParams::Builder()
          .K(2)
          .ExplicitR(12)
          .Forest(
              ForestSketchParams::Builder().Config(SketchConfig::Light()).Build())
          .Build();
  VcQuerySketch serial(kN, serial_params, kSeed);
  for (const auto& u : stream.updates()) {
    serial.Update(Edge(u.edge[0], u.edge[1]), u.delta);
  }
  auto serial_snap = serial.Query();
  ASSERT_TRUE(serial_snap.ok());

  for (size_t threads : kThreadSweep) {
    const VcQueryParams params =
        VcQueryParams::Builder(serial_params).Threads(threads).Build();
    VcQuerySketch parallel(kN, params, kSeed);
    parallel.Process(stream);
    auto snap = parallel.Query();
    ASSERT_TRUE(snap.ok()) << "threads=" << threads;
    EXPECT_TRUE(snap.value().union_graph() == serial_snap.value().union_graph())
        << "threads=" << threads;
    for (VertexId v = 0; v < 8; ++v) {
      auto a = serial_snap.value().Disconnects({v});
      auto b = snap.value().Disconnects({v});
      ASSERT_TRUE(a.ok());
      ASSERT_TRUE(b.ok());
      EXPECT_EQ(a.value(), b.value()) << "threads=" << threads << " v=" << v;
    }
  }
}

// ---------------------------------------------------------------------------
// Gutter-driver matrix: serial per-update ingest vs the stream driver at
// every readers x appliers split from {1, 2, 8}, across the three churn
// families. Equality is checked at the strongest level available -- the
// serialized wire frame, byte for byte -- so any divergence in cells, level
// masks, or header metadata fails loudly. Under the `tsan` preset this is
// also the driver's data-race test (reader queues, concurrent appliers,
// and the shared round-major dirty words all get exercised).
// ---------------------------------------------------------------------------

constexpr size_t kDriverSplit[] = {1, 2, 8};
constexpr testkit::Churn kDriverChurn[] = {testkit::Churn::kInsertOnly,
                                           testkit::Churn::kWithChurn,
                                           testkit::Churn::kDeleteDown};

// Engine running the gutter driver with an explicit reader/applier split
// and a tiny gutter capacity so auto-flush (not just the final epoch
// flush) fires even on test-sized streams.
EngineParams DriverEngine(size_t readers, size_t appliers) {
  return EngineParams::Builder()
      .Threads(appliers)
      .Mode(IngestMode::kGutterDriver)
      .DriverReaders(readers)
      .DriverGutterCapacity(4)
      .Build();
}

std::vector<uint8_t> Frame(const SpanningForestSketch& s) {
  std::vector<uint8_t> out;
  s.Serialize(&out);
  return out;
}

TEST(DeterminismTest, GutterDriverMatrixBitIdentical) {
  constexpr uint64_t kSeed = 101;
  for (testkit::Churn churn : kDriverChurn) {
    testkit::StreamSpec spec;
    spec.family = testkit::Family::kExpander;
    spec.n = 72;
    spec.k = 3;
    spec.gseed = 11;
    spec.churn = churn;
    spec.decoys = 96;
    spec.sseed = 19;
    testkit::BuiltStream built = spec.Build();

    const ForestSketchParams serial_params =
        ForestSketchParams::Builder().Config(SketchConfig::Light()).Build();
    SpanningForestSketch serial(spec.n, /*max_rank=*/2, kSeed, serial_params);
    for (const auto& u : built.stream.updates()) serial.Update(u.edge, u.delta);
    const std::vector<uint8_t> serial_frame = Frame(serial);
    auto serial_span = serial.ExtractSpanningGraph();
    ASSERT_TRUE(serial_span.ok());

    for (size_t readers : kDriverSplit) {
      for (size_t appliers : kDriverSplit) {
        const ForestSketchParams params =
            ForestSketchParams::Builder(serial_params)
                .Engine(DriverEngine(readers, appliers))
                .Build();
        SpanningForestSketch driver(spec.n, 2, kSeed, params);
        driver.Process(built.stream);
        const std::string where = testkit::ChurnName(churn) +
                                  std::string(" readers=") +
                                  std::to_string(readers) +
                                  " appliers=" + std::to_string(appliers);
        EXPECT_TRUE(driver.StateEquals(serial)) << where;
        EXPECT_EQ(Frame(driver), serial_frame) << where;
        auto span = driver.ExtractSpanningGraph();
        ASSERT_TRUE(span.ok()) << where;
        EXPECT_TRUE(span.value() == serial_span.value()) << where;
      }
    }
  }
}

// Every container the driver routes through, at one representative split
// (2 readers x 2 appliers), against its serial per-update state -- again
// at serialized-frame strength. The hypergraph stream exercises rank-3
// incidence coefficients (head coefficient |e|-1 = 2, tails -1).
TEST(DeterminismTest, GutterDriverRoutedContainersBitIdentical) {
  constexpr size_t kN = 40;
  constexpr uint64_t kSeed = 57;
  DynamicStream graph_stream = GraphStream(kN, kSeed);
  DynamicStream hyper_stream = HypergraphStream(kN, /*r=*/3, kSeed);
  const EngineParams engine = DriverEngine(/*readers=*/2, /*appliers=*/2);

  {  // K-skeleton (hypergraph).
    const SpanningForestSketch::Params params =
        ForestSketchParams::Builder().Config(SketchConfig::Light()).Build();
    KSkeletonSketch serial(kN, /*max_rank=*/3, /*k=*/3, kSeed, params);
    for (const auto& u : hyper_stream.updates()) serial.Update(u.edge, u.delta);
    KSkeletonSketch driver(
        kN, 3, 3, kSeed,
        ForestSketchParams::Builder(params).Engine(engine).Build());
    driver.Process(hyper_stream);
    EXPECT_TRUE(driver.StateEquals(serial));
    std::vector<uint8_t> a, b;
    serial.Serialize(&a);
    driver.Serialize(&b);
    EXPECT_EQ(a, b) << "k-skeleton driver frame diverges";
  }
  {  // Vertex-connectivity query union (graph, subsample routing bits).
    const VcQueryParams params =
        VcQueryParams::Builder()
            .K(2)
            .ExplicitR(12)
            .Forest(ForestSketchParams::Builder()
                        .Config(SketchConfig::Light())
                        .Build())
            .Build();
    VcQuerySketch serial(kN, params, kSeed);
    for (const auto& u : graph_stream.updates()) {
      serial.Update(Edge(u.edge[0], u.edge[1]), u.delta);
    }
    VcQuerySketch driver(kN, VcQueryParams::Builder(params).Engine(engine).Build(),
                         kSeed);
    driver.Process(graph_stream);
    std::vector<uint8_t> a, b;
    serial.Serialize(&a);
    driver.Serialize(&b);
    EXPECT_EQ(a, b) << "vc-query driver frame diverges";
  }
  {  // Hypergraph vertex-connectivity (all-endpoints-kept routing bits).
    const VcQueryParams params =
        VcQueryParams::Builder()
            .K(2)
            .ExplicitR(10)
            .Forest(ForestSketchParams::Builder()
                        .Config(SketchConfig::Light())
                        .Build())
            .Build();
    HyperVcQuerySketch serial(kN, /*max_rank=*/3, params, kSeed);
    for (const auto& u : hyper_stream.updates()) serial.Update(u.edge, u.delta);
    HyperVcQuerySketch driver(
        kN, 3, VcQueryParams::Builder(params).Engine(engine).Build(), kSeed);
    driver.Process(hyper_stream);
    EXPECT_TRUE(driver.StateEquals(serial));
    std::vector<uint8_t> a, b;
    serial.Serialize(&a);
    driver.Serialize(&b);
    EXPECT_EQ(a, b) << "hyper-vc driver frame diverges";
  }
  {  // Sparsifier (depth re-derived per level at apply time).
    const SparsifierParams params =
        SparsifierParams::Builder()
            .Forest(ForestSketchParams::Builder()
                        .Config(SketchConfig::Light())
                        .Build())
            .Levels(6)
            .K(4)
            .Build();
    HypergraphSparsifierSketch serial(kN, /*max_rank=*/3, params, kSeed);
    for (const auto& u : hyper_stream.updates()) serial.Update(u.edge, u.delta);
    HypergraphSparsifierSketch driver(
        kN, 3, SparsifierParams::Builder(params).Engine(engine).Build(), kSeed);
    driver.Process(hyper_stream);
    EXPECT_TRUE(driver.StateEquals(serial));
    std::vector<uint8_t> a, b;
    serial.Serialize(&a);
    driver.Serialize(&b);
    EXPECT_EQ(a, b) << "sparsifier driver frame diverges";
  }
}

// Workload-corpus families through every ingest mode: one power-law
// (kRmat, with churn) and one temporal-churn instance (the family that
// owns its own sliding-delete schedule), serial vs sharded-merge vs
// gutter-driver, compared at serialized-frame strength. These families
// stress skew the expander matrix above does not: rmat hubs concentrate
// updates on few gutters, and temporal churn interleaves every insert
// with a delete of the edge that expired.
TEST(DeterminismTest, WorkloadFamiliesAcrossIngestModesBitIdentical) {
  constexpr uint64_t kSeed = 67;
  std::vector<testkit::StreamSpec> specs(2);
  specs[0].family = testkit::Family::kRmat;
  specs[0].n = 64;
  specs[0].m = 160;
  specs[0].gseed = 23;
  specs[0].churn = testkit::Churn::kWithChurn;
  specs[0].decoys = 64;
  specs[0].sseed = 29;
  specs[1].family = testkit::Family::kTemporalChurn;
  specs[1].n = 48;
  specs[1].m = 96;
  specs[1].gseed = 31;
  specs[1].decoys = 64;
  specs[1].sseed = 37;

  for (const testkit::StreamSpec& spec : specs) {
    SCOPED_TRACE(spec.ToString());
    testkit::BuiltStream built = spec.Build();
    ASSERT_TRUE(built.stream.Validate());

    const ForestSketchParams serial_params =
        ForestSketchParams::Builder().Config(SketchConfig::Light()).Build();
    SpanningForestSketch serial(spec.n, /*max_rank=*/2, kSeed, serial_params);
    for (const auto& u : built.stream.updates()) serial.Update(u.edge, u.delta);
    const std::vector<uint8_t> serial_frame = Frame(serial);

    SpanningForestSketch sharded(
        spec.n, 2, kSeed,
        ForestSketchParams::Builder(serial_params)
            .Engine(EngineParams::Builder()
                        .Threads(4)
                        .Mode(IngestMode::kShardedMerge)
                        .Build())
            .Build());
    sharded.Process(built.stream);
    EXPECT_TRUE(sharded.StateEquals(serial));
    EXPECT_EQ(Frame(sharded), serial_frame) << "sharded-merge frame diverges";

    SpanningForestSketch driver(
        spec.n, 2, kSeed,
        ForestSketchParams::Builder(serial_params)
            .Engine(DriverEngine(/*readers=*/2, /*appliers=*/2))
            .Build());
    driver.Process(built.stream);
    EXPECT_TRUE(driver.StateEquals(serial));
    EXPECT_EQ(Frame(driver), serial_frame) << "gutter-driver frame diverges";
  }
}

}  // namespace
}  // namespace gms
