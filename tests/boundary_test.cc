// Boundary conditions and the paper-constants path: tiny graphs through
// every sketch, empty streams, empty query sets, and one run with the
// full Theorem 4 constants (r_multiplier = 1.0) at a scale where they are
// affordable -- proving the Paper() path is not dead code.
#include <gtest/gtest.h>

#include "connectivity/connectivity_query.h"
#include "graph/generators.h"
#include "graph/traversal.h"
#include "reconstruct/light_recovery.h"
#include "vertexconn/vc_query_sketch.h"

namespace gms {
namespace {

TEST(BoundaryTest, TwoVertexGraph) {
  SpanningForestSketch sketch(2, 2, 1);
  sketch.Update(Hyperedge{0, 1}, +1);
  auto span = sketch.ExtractSpanningGraph();
  ASSERT_TRUE(span.ok());
  EXPECT_EQ(span->NumEdges(), 1u);
  EXPECT_TRUE(IsConnected(*span));
}

TEST(BoundaryTest, EmptySketches) {
  // (n >= 2 is the documented contract: a 1-vertex graph has an empty
  // coordinate domain.)
  SpanningForestSketch two(2, 2, 2);
  auto span = two.ExtractSpanningGraph();
  ASSERT_TRUE(span.ok());
  EXPECT_EQ(span->NumEdges(), 0u);
  ConnectivityQuery q(3, 2, 3);
  auto comps = q.NumComponents();
  ASSERT_TRUE(comps.ok());
  EXPECT_EQ(*comps, 3u);  // empty stream: all isolated
}

TEST(BoundaryTest, InsertDeleteSameEdgeRepeatedly) {
  ConnectivityQuery q(4, 2, 4);
  for (int i = 0; i < 7; ++i) {
    q.Update(Hyperedge{0, 1}, +1);
    q.Update(Hyperedge{0, 1}, -1);
  }
  q.Update(Hyperedge{0, 1}, +1);
  auto comps = q.NumComponents();
  ASSERT_TRUE(comps.ok());
  EXPECT_EQ(*comps, 3u);  // {0,1} plus two isolated vertices
}

TEST(BoundaryTest, EmptyQuerySetMeansIsGraphDisconnected) {
  // |S| = 0 <= k: Disconnects({}) answers "is the graph itself
  // disconnected" under Lemma 3 semantics.
  Graph g(10);
  for (VertexId i = 0; i + 1 < 5; ++i) g.AddEdge(i, i + 1);
  for (VertexId i = 5; i + 1 < 10; ++i) g.AddEdge(i, i + 1);
  const VcQueryParams p =
      VcQueryParams::Builder()
          .K(2)
          .RMultiplier(0.5)
          .Forest(
              ForestSketchParams::Builder().Config(SketchConfig::Light()).Build())
          .Build();
  VcQuerySketch sketch(10, p, 5);
  sketch.Process(DynamicStream::InsertOnly(g, 6));
  auto snap = sketch.Query();
  ASSERT_TRUE(snap.ok());
  auto r = snap.value().Disconnects({});
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(*r);
}

TEST(BoundaryTest, PaperConstantsPathWorks) {
  // Full Theorem 4 constants at n = 24, k = 2: R = ceil(16*4*ln 24) = 204
  // subsampled forests. Expensive but affordable here; the answer must be
  // right and the structure must use the full R.
  auto planted = PlantedSeparator(24, 2, 7);
  const VcQueryParams p =
      VcQueryParams::Builder()
          .K(2)
          .RMultiplier(1.0)  // the paper's constant, no discount
          .Forest(
              ForestSketchParams::Builder().Config(SketchConfig::Light()).Build())
          .Build();
  VcQuerySketch sketch(24, p, 8);
  EXPECT_GE(sketch.R(), 200u);
  sketch.Process(DynamicStream::InsertOnly(planted.graph, 9));
  auto snap = sketch.Query();
  ASSERT_TRUE(snap.ok());
  auto hit = snap.value().Disconnects(planted.separator);
  ASSERT_TRUE(hit.ok());
  EXPECT_TRUE(*hit);
  auto miss = snap.value().Disconnects({planted.side_a[0], planted.side_b[0]});
  ASSERT_TRUE(miss.ok());
  EXPECT_FALSE(*miss);
}

TEST(BoundaryTest, LightRecoveryOnSingleEdge) {
  LightRecoverySketch sketch(2, 2, 1, 10);
  sketch.Update(Hyperedge{0, 1}, +1);
  auto r = sketch.Recover();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->light.NumEdges(), 1u);
  EXPECT_FALSE(r->residual_nonempty);
}

TEST(BoundaryTest, MaxRankEdgeExactlyAtLimit) {
  SpanningForestSketch sketch(6, 4, 11);
  sketch.Update(Hyperedge{0, 1, 2, 3}, +1);  // cardinality == max_rank
  sketch.Update(Hyperedge{3, 4}, +1);
  sketch.Update(Hyperedge{4, 5}, +1);
  auto span = sketch.ExtractSpanningGraph();
  ASSERT_TRUE(span.ok());
  EXPECT_TRUE(IsConnected(*span));
}

}  // namespace
}  // namespace gms
