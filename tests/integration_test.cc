// End-to-end integration tests: full stream -> sketch -> decode -> exact-
// verify pipelines combining several modules, as a user of the library
// would wire them.
#include <gtest/gtest.h>

#include "comm/simultaneous.h"
#include "connectivity/connectivity_query.h"
#include "exact/degeneracy.h"
#include "exact/hypergraph_mincut.h"
#include "exact/stoer_wagner.h"
#include "exact/strength.h"
#include "exact/vertex_connectivity.h"
#include "graph/generators.h"
#include "reconstruct/cut_degenerate.h"
#include "sparsify/sparsifier_sketch.h"
#include "sparsify/verify.h"
#include "vertexconn/vc_estimator.h"
#include "vertexconn/vc_query_sketch.h"

namespace gms {
namespace {

TEST(IntegrationTest, EvolvingNetworkConnectivityMonitoring) {
  // Simulate a network that grows, partially fails, and heals, checking
  // the sketch answer after each phase against ground truth.
  size_t n = 48;
  Graph g(n);
  ConnectivityQuery query(n, 2, 1);
  auto sync = [&](const Edge& e, int delta) {
    if (delta > 0) {
      g.AddEdge(e);
    } else {
      g.RemoveEdge(e);
    }
    query.Update(Hyperedge(e), delta);
  };
  // Phase 1: build two rings.
  for (VertexId i = 0; i < 24; ++i) sync(Edge(i, (i + 1) % 24), +1);
  for (VertexId i = 24; i < 48; ++i) {
    sync(Edge(i, i + 1 == 48 ? 24 : i + 1), +1);
  }
  auto r1 = query.NumComponents();
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(*r1, 2u);
  // Phase 2: bridge them.
  sync(Edge(0, 24), +1);
  auto r2 = query.IsConnected();
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(*r2);
  // Phase 3: the bridge fails.
  sync(Edge(0, 24), -1);
  auto r3 = query.NumComponents();
  ASSERT_TRUE(r3.ok());
  EXPECT_EQ(*r3, 2u);
  // Phase 4: redundant healing.
  sync(Edge(5, 30), +1);
  sync(Edge(10, 40), +1);
  auto r4 = query.IsConnected();
  ASSERT_TRUE(r4.ok());
  EXPECT_TRUE(*r4);
}

TEST(IntegrationTest, VertexConnectivityPipelineOnPlantedInstance) {
  // One stream, two consumers: the Theorem 4 query sketch and the Theorem
  // 8 estimator, cross-checked against exact postprocessing.
  auto planted = PlantedSeparator(36, 2, 2);
  DynamicStream stream = DynamicStream::WithChurn(planted.graph, 150, 3);

  VcQueryParams qp;
  qp.k = 2;
  qp.r_multiplier = 0.5;
  qp.forest.config = SketchConfig::Light();
  VcQuerySketch query(36, qp, 4);

  VcEstimatorParams ep;
  ep.k = 3;
  ep.epsilon = 1.0;
  ep.r_multiplier = 0.05;
  ep.forest.config = SketchConfig::Light();
  VcEstimator estimator(36, ep, 5);

  for (const auto& u : stream) {
    query.Update(u.edge.AsEdge(), u.delta);
    estimator.Update(u.edge.AsEdge(), u.delta);
  }
  auto query_snap = query.Query();
  ASSERT_TRUE(query_snap.ok());
  auto sep = query_snap.value().Disconnects(planted.separator);
  ASSERT_TRUE(sep.ok());
  EXPECT_TRUE(*sep);
  // kappa(G) = 2 < k = 3: the estimator must not certify.
  auto certify = estimator.IsAtLeastK();
  ASSERT_TRUE(certify.ok());
  EXPECT_FALSE(*certify);
  EXPECT_EQ(VertexConnectivity(planted.graph), 2u);
}

TEST(IntegrationTest, SparsifyThenMinCutMatches) {
  // Downstream use of a sparsifier: global min cut on the sparsifier
  // approximates the true min cut.
  auto planted = PlantedHypergraphCut(14, 3, 3, 15, 6);
  const Hypergraph& h = planted.hypergraph;
  SparsifierParams sp;
  sp.k = 10;
  sp.levels = 7;
  sp.forest.config = SketchConfig::Light();
  HypergraphSparsifierSketch sketch(14, 3, sp, 7);
  sketch.Process(DynamicStream::InsertOnly(h, 8));
  auto out = sketch.ExtractSparsifier();
  ASSERT_TRUE(out.ok());
  auto exact_cut = HypergraphMinCut(h);
  auto approx_cut = HypergraphMinCut(14, out->sparsifier.edges,
                                     out->sparsifier.weights);
  EXPECT_NEAR(approx_cut.value, exact_cut.value, 0.8 * exact_cut.value + 0.1);
}

TEST(IntegrationTest, ReconstructionFeedsExactAlgorithms) {
  // Reconstruct a sparse graph from the sketch, then run exact algorithms
  // on the reconstruction: results must match the original.
  Graph g = RandomDDegenerate(20, 2, 9);
  Hypergraph h = Hypergraph::FromGraph(g);
  size_t d = LightCompleteness(h);
  CutDegenerateReconstructor rec(20, 2, d, 10);
  rec.Process(DynamicStream::WithChurn(g, 100, 11));
  auto r = rec.Reconstruct();
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r->complete);
  Graph back = r->hypergraph.ToGraph();
  EXPECT_EQ(back, g);
  EXPECT_EQ(EdgeConnectivity(back), EdgeConnectivity(g));
  EXPECT_EQ(VertexConnectivity(back), VertexConnectivity(g));
}

TEST(IntegrationTest, DistributedRefereeMatchesStreamingAnswer) {
  // The same graph through the streaming sketch and the one-round
  // communication protocol: both must agree with ground truth.
  Graph g = ErdosRenyi(40, 0.08, 12);
  Hypergraph h = Hypergraph::FromGraph(g);
  ConnectivityQuery query(40, 2, 13);
  query.Process(DynamicStream::InsertOnly(h, 14));
  auto streamed = query.IsConnected();
  ASSERT_TRUE(streamed.ok());
  auto comm = RunSimultaneousConnectivity(h, 15);
  EXPECT_TRUE(comm.correct);
  EXPECT_EQ(*streamed, comm.exact_connected);
}

}  // namespace
}  // namespace gms
