// Composed-application suite (src/apps/ + the serve-layer bridge op):
// TwoEdgeConnect's forest peeling against known bridge structure,
// ApproxMinCut's doubling ladder against known cut values, driver-mode
// and disk-file ingestion landing on the same answers, and the
// SketchServer kIsBridge op over real wire frames including every refusal
// path. Suite names contain "Apps" on purpose: the tsan preset's test
// filter picks them up as the composed-pipeline data-race smoke.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "apps/approx_min_cut.h"
#include "apps/two_edge_connect.h"
#include "graph/generators.h"
#include "graph/traversal.h"
#include "serve/serve_protocol.h"
#include "serve/sketch_server.h"
#include "stream/stream.h"
#include "stream/stream_driver.h"
#include "testkit/stream_spec.h"
#include "workload/binary_stream.h"
#include "workload/spec_convert.h"

namespace gms {
namespace {

// ---------- exact bridge finding (graph/traversal.h) ----------

TEST(AppsBridgeTest, PathEdgesAreAllBridges) {
  Hypergraph g = Hypergraph::FromGraph(PathGraph(6));
  EXPECT_EQ(BridgeHyperedges(g).size(), 5u);
}

TEST(AppsBridgeTest, CycleHasNoBridges) {
  Hypergraph g = Hypergraph::FromGraph(CycleGraph(6));
  EXPECT_TRUE(BridgeHyperedges(g).empty());
}

TEST(AppsBridgeTest, BarbellBridgeIsTheJoiningEdge) {
  // Two triangles joined by one edge: exactly that edge is a bridge.
  Hypergraph g(6);
  g.AddEdge(Hyperedge{0, 1});
  g.AddEdge(Hyperedge{1, 2});
  g.AddEdge(Hyperedge{0, 2});
  g.AddEdge(Hyperedge{3, 4});
  g.AddEdge(Hyperedge{4, 5});
  g.AddEdge(Hyperedge{3, 5});
  g.AddEdge(Hyperedge{2, 3});
  std::vector<Hyperedge> bridges = BridgeHyperedges(g);
  ASSERT_EQ(bridges.size(), 1u);
  EXPECT_TRUE(bridges[0] == Hyperedge({2, 3}));
}

TEST(AppsBridgeTest, HyperedgeBridgeDetected) {
  // Two rank-3 hyperedges sharing vertex 2: both are bridges (removing
  // either strands its private vertices).
  Hypergraph g(5);
  g.AddEdge(Hyperedge{0, 1, 2});
  g.AddEdge(Hyperedge{2, 3, 4});
  EXPECT_EQ(BridgeHyperedges(g).size(), 2u);
  // Closing the ends does NOT help: vertices 1 and 3 are each private to
  // one rank-3 hyperedge, so removing it still strands them.
  g.AddEdge(Hyperedge{0, 4});
  EXPECT_EQ(BridgeHyperedges(g).size(), 2u);
  // Only once every vertex is doubly covered do the bridges disappear.
  g.AddEdge(Hyperedge{0, 1});
  g.AddEdge(Hyperedge{3, 4});
  EXPECT_TRUE(BridgeHyperedges(g).empty());
}

// ---------- TwoEdgeConnect ----------

TEST(AppsTwoEdgeConnectTest, CycleIsTwoEdgeConnected) {
  constexpr size_t kN = 16;
  apps::TwoEdgeConnect app(kN, 2, /*seed=*/7);
  app.Process(DynamicStream::InsertOnly(Hypergraph::FromGraph(CycleGraph(kN)),
                                        /*seed=*/3));
  auto got = app.Query();
  ASSERT_TRUE(got.ok()) << got.status().message();
  EXPECT_TRUE(got.value().connected);
  EXPECT_TRUE(got.value().bridges.empty());
  EXPECT_TRUE(got.value().two_edge_connected);
  EXPECT_EQ(got.value().num_components, 1u);
}

TEST(AppsTwoEdgeConnectTest, PathBridgesAreFound) {
  constexpr size_t kN = 12;
  apps::TwoEdgeConnect app(kN, 2, /*seed=*/11);
  app.Process(DynamicStream::InsertOnly(Hypergraph::FromGraph(PathGraph(kN)),
                                        /*seed=*/5));
  auto got = app.Query();
  ASSERT_TRUE(got.ok()) << got.status().message();
  EXPECT_TRUE(got.value().connected);
  EXPECT_FALSE(got.value().two_edge_connected);
  // Every path edge is a bridge, and the skeleton holds no ghosts.
  EXPECT_EQ(got.value().bridges.size(), kN - 1);
}

TEST(AppsTwoEdgeConnectTest, DeletionsReopenABridge) {
  // A cycle is 2-edge-connected; deleting one edge leaves a path whose
  // every surviving edge is a bridge. Linear sketches must track that.
  constexpr size_t kN = 10;
  apps::TwoEdgeConnect app(kN, 2, /*seed=*/13);
  const Graph cycle = CycleGraph(kN);
  for (const Edge& e : cycle.Edges()) app.Update(Hyperedge(e), +1);
  app.Update(Hyperedge{0, 1}, -1);
  auto got = app.Query();
  ASSERT_TRUE(got.ok()) << got.status().message();
  EXPECT_TRUE(got.value().connected);
  EXPECT_EQ(got.value().bridges.size(), kN - 1);
  EXPECT_FALSE(got.value().two_edge_connected);
}

TEST(AppsTwoEdgeConnectTest, DisconnectedGraphReported) {
  constexpr size_t kN = 12;
  apps::TwoEdgeConnect app(kN, 2, /*seed=*/17);
  // Two disjoint 6-cycles.
  for (VertexId v = 0; v < 6; ++v) {
    app.Update(Hyperedge{v, static_cast<VertexId>((v + 1) % 6)}, +1);
    app.Update(Hyperedge{static_cast<VertexId>(6 + v),
                         static_cast<VertexId>(6 + (v + 1) % 6)},
               +1);
  }
  auto got = app.Query();
  ASSERT_TRUE(got.ok()) << got.status().message();
  EXPECT_FALSE(got.value().connected);
  EXPECT_EQ(got.value().num_components, 2u);
  EXPECT_FALSE(got.value().two_edge_connected);
  EXPECT_TRUE(got.value().bridges.empty());
}

// Driver-mode ingestion (gutter batches fanned to both layers) must land
// on the same answer as serial Update calls -- the app's ApplyUpdateBatch
// hook is exactly the per-layer fan-out.
TEST(AppsTwoEdgeConnectTest, GutterDriverMatchesSerialIngest) {
  constexpr size_t kN = 24;
  constexpr uint64_t kSeed = 19;
  DynamicStream stream = DynamicStream::WithChurn(
      UnionOfHamiltonianCycles(kN, 2, 23), /*decoys=*/kN, 29);

  apps::TwoEdgeConnect serial(kN, 2, kSeed);
  serial.Process(stream);
  apps::TwoEdgeConnect driven(kN, 2, kSeed);
  GutterDriverParams dp;
  dp.readers = 2;
  dp.appliers = 2;
  dp.gutter_capacity = 4;
  DriveStream(&driven, std::span<const StreamUpdate>(stream.updates()), dp);

  auto a = serial.Query();
  auto b = driven.Query();
  ASSERT_EQ(a.ok(), b.ok());
  ASSERT_TRUE(a.ok());
  EXPECT_TRUE(a.value().skeleton == b.value().skeleton);
  EXPECT_EQ(a.value().num_components, b.value().num_components);
  EXPECT_EQ(a.value().two_edge_connected, b.value().two_edge_connected);
}

// Disk-file composition: spec -> GMSB file -> mmap driver -> app answers,
// identical to in-memory ingestion of the same spec.
TEST(AppsTwoEdgeConnectTest, BinaryFileIngestMatchesInMemory) {
  constexpr uint64_t kSeed = 37;
  testkit::StreamSpec spec;
  spec.family = testkit::Family::kRmat;
  spec.n = 24;
  spec.m = 40;
  spec.churn = testkit::Churn::kWithChurn;
  spec.decoys = 12;

  const std::string path = ::testing::TempDir() + "/apps_rmat.gmsb";
  testkit::BuiltStream built;
  ASSERT_TRUE(workload::WriteSpecStreamFile(spec, path, &built).ok());
  auto file = workload::BinaryFileStream::Open(path);
  ASSERT_TRUE(file.ok()) << file.status().message();

  apps::TwoEdgeConnect serial(spec.n, built.max_rank, kSeed);
  serial.Process(built.stream);
  apps::TwoEdgeConnect driven(spec.n, built.max_rank, kSeed);
  GutterDriverParams dp;
  dp.readers = 2;
  dp.appliers = 2;
  workload::DriveBinaryFileStream(&driven, *file, dp);

  auto a = serial.Query();
  auto b = driven.Query();
  ASSERT_EQ(a.ok(), b.ok());
  if (a.ok()) {
    EXPECT_TRUE(a.value().skeleton == b.value().skeleton);
  }
}

// ---------- ApproxMinCut ----------

TEST(AppsMinCutTest, CycleResolvesExactlyTwo) {
  constexpr size_t kN = 14;
  apps::ApproxMinCut app(kN, 2, /*k_cap=*/8, /*seed=*/41);
  app.Process(DynamicStream::InsertOnly(Hypergraph::FromGraph(CycleGraph(kN)),
                                        /*seed=*/43));
  auto got = app.Query();
  ASSERT_TRUE(got.ok()) << got.status().message();
  EXPECT_EQ(got.value().value, 2u);
  EXPECT_TRUE(got.value().exact);
  // A cycle's min cut is 2: the k = 4 level is the first that can show a
  // value strictly below its own k.
  EXPECT_EQ(got.value().resolved_k, 4u);
  ASSERT_EQ(got.value().shore.size(), kN);
  Hypergraph truth = Hypergraph::FromGraph(CycleGraph(kN));
  EXPECT_EQ(truth.CutSize(got.value().shore), 2u);
}

TEST(AppsMinCutTest, DisconnectedResolvesZero) {
  apps::ApproxMinCut app(8, 2, /*k_cap=*/4, /*seed=*/47);
  app.Update(Hyperedge{0, 1}, +1);
  app.Update(Hyperedge{2, 3}, +1);
  auto got = app.Query();
  ASSERT_TRUE(got.ok()) << got.status().message();
  EXPECT_EQ(got.value().value, 0u);
  EXPECT_TRUE(got.value().exact);
  EXPECT_EQ(got.value().resolved_k, 1u);
}

TEST(AppsMinCutTest, WellConnectedGraphSaturatesTheCap) {
  // K8 has min cut 7; a ladder capped at k = 4 must saturate: the answer
  // is the certified lower bound k_cap, not an exact cut.
  constexpr size_t kN = 8;
  apps::ApproxMinCut app(kN, 2, /*k_cap=*/4, /*seed=*/53);
  for (VertexId u = 0; u < kN; ++u) {
    for (VertexId v = u + 1; v < kN; ++v) app.Update(Hyperedge{u, v}, +1);
  }
  auto got = app.Query();
  ASSERT_TRUE(got.ok()) << got.status().message();
  EXPECT_EQ(got.value().value, 4u);
  EXPECT_FALSE(got.value().exact);
  EXPECT_EQ(got.value().resolved_k, 4u);
}

TEST(AppsMinCutTest, DeletionsLowerTheCut) {
  // Cycle plus chords, then delete the chords: the cut drops back to 2.
  constexpr size_t kN = 12;
  apps::ApproxMinCut app(kN, 2, /*k_cap=*/8, /*seed=*/59);
  for (VertexId v = 0; v < kN; ++v) {
    app.Update(Hyperedge{v, static_cast<VertexId>((v + 1) % kN)}, +1);
  }
  for (VertexId v = 0; v < kN; ++v) {
    app.Update(Hyperedge{v, static_cast<VertexId>((v + 2) % kN)}, +1);
  }
  for (VertexId v = 0; v < kN; ++v) {
    app.Update(Hyperedge{v, static_cast<VertexId>((v + 2) % kN)}, -1);
  }
  auto got = app.Query();
  ASSERT_TRUE(got.ok()) << got.status().message();
  EXPECT_EQ(got.value().value, 2u);
  EXPECT_TRUE(got.value().exact);
}

TEST(AppsMinCutTest, LadderLevelsAreDoubling) {
  apps::ApproxMinCut app(8, 2, /*k_cap=*/8, /*seed=*/61);
  EXPECT_EQ(app.num_levels(), 4u);  // 1, 2, 4, 8
  EXPECT_EQ(app.k_cap(), 8u);
  apps::ApproxMinCut odd(8, 2, /*k_cap=*/5, /*seed=*/61);
  EXPECT_EQ(odd.num_levels(), 4u);  // 1, 2, 4, 5
  EXPECT_GT(odd.MemoryBytes(), 0u);
}

// ---------- serve-layer bridge queries ----------

serve::ServeResponse RoundTrip(serve::SketchServer& server,
                               const serve::ServeRequest& req) {
  std::vector<uint8_t> frame, reply;
  serve::EncodeServeRequest(req, &frame);
  server.HandleFrame(frame, &reply);
  auto resp = serve::DecodeServeResponse(reply);
  EXPECT_TRUE(resp.ok()) << resp.status().message();
  return resp.ok() ? *resp : serve::ServeResponse{};
}

serve::ServeRequest BridgeReq(uint64_t u, uint64_t v) {
  serve::ServeRequest req;
  req.op = serve::ServeOp::kIsBridge;
  req.u = u;
  req.v = v;
  return req;
}

TEST(AppsServeBridgeTest, ProtocolCarriesTheNewOp) {
  EXPECT_STREQ(ServeOpName(serve::ServeOp::kIsBridge), "is_bridge");
  std::vector<uint8_t> frame;
  serve::EncodeServeRequest(BridgeReq(3, 4), &frame);
  auto back = serve::DecodeServeRequest(frame);
  ASSERT_TRUE(back.ok()) << back.status().message();
  EXPECT_EQ(back->op, serve::ServeOp::kIsBridge);
  EXPECT_EQ(back->u, 3u);
  EXPECT_EQ(back->v, 4u);
}

TEST(AppsServeBridgeTest, BarbellBridgeServedOverWire) {
  constexpr size_t kN = 8;
  // Two 4-cycles joined by the single edge {3, 4}.
  DynamicStream stream;
  for (VertexId v = 0; v < 4; ++v) {
    stream.Push(Hyperedge{v, static_cast<VertexId>((v + 1) % 4)}, +1);
    stream.Push(Hyperedge{static_cast<VertexId>(4 + v),
                          static_cast<VertexId>(4 + (v + 1) % 4)},
                +1);
  }
  stream.Push(Hyperedge{3, 4}, +1);

  serve::SketchServerParams params =
      serve::SketchServerParams::Builder().SkeletonK(2).Build();
  serve::SketchServer server(kN, params, /*seed=*/67);
  server.Ingest(stream);
  server.Flush();

  serve::ServeResponse bridge = RoundTrip(server, BridgeReq(3, 4));
  EXPECT_EQ(bridge.code, StatusCode::kOk);
  EXPECT_EQ(bridge.value, 1u);
  // Endpoint order must not matter.
  EXPECT_EQ(RoundTrip(server, BridgeReq(4, 3)).value, 1u);
  // Cycle edges and absent edges are not bridges.
  EXPECT_EQ(RoundTrip(server, BridgeReq(0, 1)).value, 0u);
  EXPECT_EQ(RoundTrip(server, BridgeReq(0, 7)).value, 0u);
  EXPECT_EQ(RoundTrip(server, BridgeReq(2, 2)).value, 0u);

  // Deleting a cycle edge turns the whole left side into bridges.
  DynamicStream del;
  del.Push(Hyperedge{0, 1}, -1);
  server.Ingest(del);
  server.Flush();
  EXPECT_EQ(RoundTrip(server, BridgeReq(1, 2)).value, 1u);
  EXPECT_EQ(RoundTrip(server, BridgeReq(5, 6)).value, 0u);
}

TEST(AppsServeBridgeTest, RefusalPaths) {
  {
    // No skeleton engine at all.
    serve::SketchServerParams params;  // skeleton_k = 0
    serve::SketchServer server(6, params, 71);
    serve::ServeResponse resp = RoundTrip(server, BridgeReq(0, 1));
    EXPECT_EQ(resp.code, StatusCode::kFailedPrecondition);
  }
  {
    // Skeleton present but k = 1: cannot certify 2-edge-connectivity.
    serve::SketchServerParams params =
        serve::SketchServerParams::Builder().SkeletonK(1).Build();
    serve::SketchServer server(6, params, 73);
    serve::ServeResponse resp = RoundTrip(server, BridgeReq(0, 1));
    EXPECT_EQ(resp.code, StatusCode::kFailedPrecondition);
  }
  {
    // Vertex ids out of range.
    serve::SketchServerParams params =
        serve::SketchServerParams::Builder().SkeletonK(2).Build();
    serve::SketchServer server(6, params, 79);
    server.Flush();
    serve::ServeResponse resp = RoundTrip(server, BridgeReq(0, 6));
    EXPECT_EQ(resp.code, StatusCode::kInvalidArgument);
  }
}

TEST(AppsServeBridgeTest, BridgeIndexCountsHyperedgeBridges) {
  // Rank-3 bridges exist but have no (u, v) address: the index still
  // counts them while IsBridge stays pair-addressed.
  Hypergraph skel(5);
  skel.AddEdge(Hyperedge{0, 1, 2});
  skel.AddEdge(Hyperedge{2, 3});
  skel.AddEdge(Hyperedge{3, 4});
  serve::BridgeIndex index(5, skel);
  EXPECT_EQ(index.num_bridges(), 3u);
  EXPECT_TRUE(index.IsBridge(2, 3));
  EXPECT_TRUE(index.IsBridge(4, 3));
  EXPECT_FALSE(index.IsBridge(0, 1));  // inside the rank-3 hyperedge
}

}  // namespace
}  // namespace gms
