// Edge-case contracts for all six sketch types: empty streams, empty
// Process spans, deletion-heavy prefixes that leave the state at net zero,
// the minimal n = 2 domain, and the documented n >= 2 constructor
// precondition (n = 1 has no edge domain: a hyperedge needs two distinct
// endpoints, so EdgeCodec CHECK-fails rather than inventing an empty
// coordinate space that the wire format would then have to carry).
//
// "Delete before insert" and "duplicate delete" streams violate the
// DynamicStream {0,1}-multiplicity invariant on purpose: a LINEAR sketch
// never sees multiplicities, only coordinate deltas, so transiently
// negative prefixes must be processed without complaint and cancel to
// exactly the empty-stream state.
#include <gtest/gtest.h>

#include <span>
#include <vector>

#include "connectivity/connectivity_query.h"
#include "connectivity/k_skeleton.h"
#include "connectivity/spanning_forest_sketch.h"
#include "graph/traversal.h"
#include "sketch/l0_sampler.h"
#include "sparsify/sparsifier_sketch.h"
#include "vertexconn/hyper_vc_query.h"
#include "vertexconn/vc_query_sketch.h"

namespace gms {
namespace {

constexpr uint64_t kSeed = 7;

VcQueryParams SmallVcParams() {
  VcQueryParams p;
  p.k = 1;
  p.explicit_r = 2;
  p.forest.config = SketchConfig::Light();
  return p;
}

SparsifierParams SmallSparsifierParams() {
  SparsifierParams p;
  p.levels = 2;
  p.k = 2;
  p.forest.config = SketchConfig::Light();
  return p;
}

SpanningForestSketch MakeForest(size_t n = 4) {
  return SpanningForestSketch(n, 2, kSeed);
}
KSkeletonSketch MakeSkeleton(size_t n = 4) {
  return KSkeletonSketch(n, 2, 2, kSeed);
}
VcQuerySketch MakeVc(size_t n = 4) {
  return VcQuerySketch(n, SmallVcParams(), kSeed);
}
HyperVcQuerySketch MakeHyperVc(size_t n = 4) {
  return HyperVcQuerySketch(n, 3, SmallVcParams(), kSeed);
}
HypergraphSparsifierSketch MakeSparsifier(size_t n = 4) {
  return HypergraphSparsifierSketch(n, 2, SmallSparsifierParams(), kSeed);
}
L0Sampler MakeL0() { return L0Sampler(8, SketchConfig::Light(), kSeed); }

// The deletion-heavy prefixes every hyperedge sketch must cancel on.
std::vector<StreamUpdate> DeleteBeforeInsert() {
  return {{Hyperedge({0, 1}), -1}, {Hyperedge({0, 1}), +1}};
}
std::vector<StreamUpdate> DuplicateDelete() {
  return {{Hyperedge({0, 1}), +1},
          {Hyperedge({0, 1}), -1},
          {Hyperedge({0, 1}), -1},
          {Hyperedge({0, 1}), +1}};
}

template <typename SketchT, typename MakeFn>
void ExpectNetZeroStreamsCancel(MakeFn make) {
  const SketchT fresh = make();
  {
    SketchT s = make();
    s.Process(std::span<const StreamUpdate>());  // empty span: no-op
    EXPECT_TRUE(s.StateEquals(fresh));
  }
  {
    SketchT s = make();
    const auto seq = DeleteBeforeInsert();
    s.Process(std::span<const StreamUpdate>(seq));
    EXPECT_TRUE(s.StateEquals(fresh))
        << "delete-before-insert did not cancel";
  }
  {
    SketchT s = make();
    const auto seq = DuplicateDelete();
    s.Process(std::span<const StreamUpdate>(seq));
    EXPECT_TRUE(s.StateEquals(fresh)) << "duplicate delete did not cancel";
  }
}

TEST(EdgeCases, NetZeroStreamsCancelForEverySketchType) {
  ExpectNetZeroStreamsCancel<SpanningForestSketch>([] { return MakeForest(); });
  ExpectNetZeroStreamsCancel<KSkeletonSketch>([] { return MakeSkeleton(); });
  ExpectNetZeroStreamsCancel<VcQuerySketch>([] { return MakeVc(); });
  ExpectNetZeroStreamsCancel<HyperVcQuerySketch>([] { return MakeHyperVc(); });
  ExpectNetZeroStreamsCancel<HypergraphSparsifierSketch>(
      [] { return MakeSparsifier(); });
  // L0Sampler speaks raw coordinates, not hyperedges.
  const L0Sampler fresh = MakeL0();
  {
    L0Sampler s = MakeL0();
    s.Process(std::span<const L0Update>());
    EXPECT_TRUE(s.StateEquals(fresh));
  }
  {
    L0Sampler s = MakeL0();
    const std::vector<L0Update> seq = {{3, -1}, {3, +1}};
    s.Process(std::span<const L0Update>(seq));
    EXPECT_TRUE(s.StateEquals(fresh));
  }
  {
    L0Sampler s = MakeL0();
    const std::vector<L0Update> seq = {{3, +1}, {3, -1}, {3, -1}, {3, +1}};
    s.Process(std::span<const L0Update>(seq));
    EXPECT_TRUE(s.StateEquals(fresh));
  }
}

TEST(EdgeCases, EmptyStreamQueriesAreHonest) {
  // Spanning forest of nothing: no edges, every vertex its own component.
  auto forest = MakeForest();
  Result<Hypergraph> g = forest.ExtractSpanningGraph();
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_EQ(g->NumEdges(), 0u);

  ConnectivityQuery q(4, 2, kSeed);
  Result<size_t> comps = q.NumComponents();
  ASSERT_TRUE(comps.ok());
  EXPECT_EQ(*comps, 4u);

  auto skeleton = MakeSkeleton();
  Result<Hypergraph> sk = skeleton.Extract();
  ASSERT_TRUE(sk.ok()) << sk.status().ToString();
  EXPECT_EQ(sk->NumEdges(), 0u);

  auto sparsifier = MakeSparsifier();
  Result<SparsifierOutput> sp = sparsifier.ExtractSparsifier();
  ASSERT_TRUE(sp.ok()) << sp.status().ToString();
  EXPECT_EQ(sp->sparsifier.size(), 0u);

  // An empty support has nothing to sample; an honest sampler refuses.
  auto l0 = MakeL0();
  EXPECT_FALSE(l0.Sample().ok());

  // VC queries on the empty graph: removing any vertex leaves isolated
  // vertices, which is "disconnected" under the same semantics the exact
  // oracle uses.
  auto vc = MakeVc();
  auto vc_snap = vc.Query();
  ASSERT_TRUE(vc_snap.ok());
  Result<bool> disc = vc_snap.value().Disconnects({0});
  ASSERT_TRUE(disc.ok()) << disc.status().ToString();
  EXPECT_EQ(*disc, !IsConnectedExcluding(Graph(4), {0}));

  auto hvc = MakeHyperVc();
  auto hvc_snap = hvc.Query();
  ASSERT_TRUE(hvc_snap.ok());
  Result<bool> hdisc = hvc_snap.value().Disconnects({0});
  ASSERT_TRUE(hdisc.ok()) << hdisc.status().ToString();
  EXPECT_EQ(*hdisc, !IsConnectedExcluding(Hypergraph(4), {0}));
}

TEST(EdgeCases, MinimalDomainNTwo) {
  // n = 2 is the smallest legal domain: exactly one possible edge.
  SpanningForestSketch forest = MakeForest(2);
  const std::vector<StreamUpdate> seq = {{Hyperedge({0, 1}), +1}};
  forest.Process(std::span<const StreamUpdate>(seq));
  Result<Hypergraph> g = forest.ExtractSpanningGraph();
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_EQ(g->NumEdges(), 1u);
  EXPECT_TRUE(g->HasEdge(Hyperedge({0, 1})));

  ConnectivityQuery q(2, 2, kSeed);
  q.Update(Hyperedge({0, 1}), +1);
  Result<size_t> comps = q.NumComponents();
  ASSERT_TRUE(comps.ok());
  EXPECT_EQ(*comps, 1u);

  // Serialization works at the minimal shape for every sketch type.
  auto check_roundtrip = [](const auto& sketch) {
    using SketchT = std::decay_t<decltype(sketch)>;
    std::vector<uint8_t> bytes;
    sketch.Serialize(&bytes);
    Result<SketchT> redo = SketchT::Deserialize(bytes);
    ASSERT_TRUE(redo.ok()) << redo.status().ToString();
    EXPECT_TRUE(sketch.StateEquals(*redo));
  };
  check_roundtrip(forest);
  check_roundtrip(MakeSkeleton(2));
  check_roundtrip(MakeVc(2));
  check_roundtrip(MakeHyperVc(2));
  check_roundtrip(MakeSparsifier(2));
  check_roundtrip(MakeL0());
}

using EdgeCasesDeathTest = ::testing::Test;

TEST(EdgeCasesDeathTest, NOneHasNoEdgeDomain) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // n = 1 cannot host any hyperedge (two distinct endpoints are required),
  // so the constructors CHECK-fail loudly instead of building a sketch
  // whose every query would be vacuous. These death tests pin that
  // contract: if the CHECK is ever removed, the n >= 2 precondition must
  // be re-documented and the wire-format validation revisited.
  EXPECT_DEATH(SpanningForestSketch(1, 2, kSeed), "at least 2 vertices");
  EXPECT_DEATH(KSkeletonSketch(1, 2, 2, kSeed), "at least 2 vertices");
  EXPECT_DEATH(VcQuerySketch(1, SmallVcParams(), kSeed), "at least 2");
  EXPECT_DEATH(HyperVcQuerySketch(1, 2, SmallVcParams(), kSeed),
               "at least 2");
  EXPECT_DEATH(HypergraphSparsifierSketch(1, 2, SmallSparsifierParams(),
                                          kSeed),
               "at least 2");
  // The L0 analogue: a sampler over an empty coordinate domain.
  EXPECT_DEATH(L0Sampler(0, SketchConfig::Light(), kSeed), "empty domain");
}

}  // namespace
}  // namespace gms
