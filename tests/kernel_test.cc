// Differential tests for the hot-path arithmetic kernel: the windowed
// fingerprint power table vs. full binary exponentiation, the division-free
// exponent and bucket reductions vs. the hardware `%` reference, and
// bit-identity of the prepared-coordinate fast paths against the plain
// update paths across thread counts.
#include <gtest/gtest.h>

#include <vector>

#include "connectivity/spanning_forest_sketch.h"
#include "graph/generators.h"
#include "sketch/l0_sampler.h"
#include "sketch/sparse_recovery.h"
#include "stream/stream.h"
#include "util/field.h"
#include "util/hash.h"
#include "util/random.h"

namespace gms {
namespace {

u128 RandomU128(Rng& rng) {
  return (static_cast<u128>(rng.Next()) << 64) | rng.Next();
}

TEST(KernelTest, PowerTableMatchesBinaryExponentiation) {
  // The windowed table path must agree with FpPow(z, index mod p-1) on the
  // full 128-bit index domain, for every shape (each draws its own z).
  for (uint64_t seed : {1u, 2u, 77u}) {
    SSparseShape shape((u128{1} << 120), /*capacity=*/2, /*rows=*/2,
                       /*buckets=*/4, seed);
    Rng rng(seed * 31 + 7);
    for (int i = 0; i < 10000; ++i) {
      u128 index = RandomU128(rng) & ((u128{1} << 120) - 1);
      ASSERT_EQ(shape.FingerprintPower(index), shape.FingerprintPowerRef(index))
          << "seed " << seed << " iteration " << i;
    }
    // Boundary exponents.
    for (u128 index : {u128{0}, u128{1}, u128{kMersenne61 - 2},
                       u128{kMersenne61 - 1}, u128{kMersenne61},
                       (u128{1} << 120) - 1}) {
      EXPECT_EQ(shape.FingerprintPower(index),
                shape.FingerprintPowerRef(index));
    }
  }
}

TEST(KernelTest, PowerFromExpConsistentWithPrepare) {
  SSparseShape shape((u128{1} << 100), 2, 2, 4, 5);
  Rng rng(6);
  for (int i = 0; i < 1000; ++i) {
    u128 index = RandomU128(rng) & ((u128{1} << 100) - 1);
    const PreparedCoord pc = PrepareCoord(index);
    EXPECT_EQ(shape.FingerprintPowerFromExp(pc.exponent),
              shape.FingerprintPower(index));
  }
}

TEST(KernelTest, SharedBasisAgreesAcrossLevelShapes) {
  // All level shapes of one L0Shape share a fingerprint basis: same z,
  // same table, and thus identical powers.
  L0Shape shape(u128{1} << 60, SketchConfig::Default(), 42);
  Rng rng(43);
  for (int i = 0; i < 200; ++i) {
    u128 index = rng.Next() & ((u128{1} << 60) - 1);
    uint64_t expect = shape.basis().PowerRef(index);
    for (int j = 0; j < shape.num_levels(); ++j) {
      ASSERT_EQ(shape.level_shape(j).FingerprintPower(index), expect);
    }
  }
}

TEST(KernelTest, LemireBucketInRangeAndExhaustsRange) {
  // The multiply-shift reduction must stay in [0, buckets) and hit every
  // bucket over enough random keys.
  for (int buckets : {1, 3, 4, 7, 16, 1000}) {
    SSparseShape shape((u128{1} << 90), 2, 3, buckets, 17);
    Rng rng(18);
    std::vector<int> seen(static_cast<size_t>(buckets), 0);
    for (int i = 0; i < 4000; ++i) {
      u128 index = RandomU128(rng) & ((u128{1} << 90) - 1);
      for (int r = 0; r < shape.rows(); ++r) {
        int b = shape.Bucket(r, index);
        ASSERT_GE(b, 0);
        ASSERT_LT(b, buckets);
        ++seen[static_cast<size_t>(b)];
      }
    }
    if (buckets <= 16) {
      for (int b = 0; b < buckets; ++b) {
        EXPECT_GT(seen[static_cast<size_t>(b)], 0) << "bucket " << b;
      }
    }
  }
}

TEST(KernelTest, LemireBucketDistributionIsUniform) {
  // Lemire reassigns keys to different buckets than `%` did, but the
  // distribution must stay (pairwise-hash) uniform: compare chi^2 of the
  // new reduction against the old `%` reference on the same hash values.
  const int kBuckets = 8;
  const int kKeys = 16000;
  SSparseShape shape((u128{1} << 80), 2, 1, kBuckets, 23);
  Rng rng(24);
  std::vector<int> lemire(kBuckets, 0), ref(kBuckets, 0);
  for (int i = 0; i < kKeys; ++i) {
    u128 index = RandomU128(rng) & ((u128{1} << 80) - 1);
    ++lemire[static_cast<size_t>(shape.Bucket(0, index))];
    ++ref[static_cast<size_t>(shape.BucketRef(0, index))];
  }
  auto chi2 = [&](const std::vector<int>& counts) {
    double expect = static_cast<double>(kKeys) / kBuckets;
    double x = 0;
    for (int c : counts) x += (c - expect) * (c - expect) / expect;
    return x;
  };
  // 7 dof; 24.3 is the 0.001 quantile. Both reductions of the same
  // pairwise-independent hash should pass comfortably.
  EXPECT_LT(chi2(lemire), 30.0);
  EXPECT_LT(chi2(ref), 30.0);
}

TEST(KernelTest, PreparedUpdateMatchesPlainUpdate) {
  // The caller-prepared fast path (fold + exponent + power hoisted) must
  // leave bit-identical state to the plain per-update path.
  SSparseShape shape((u128{1} << 70), 4, 3, 8, 31);
  SSparseState plain(&shape), prepared(&shape);
  Rng rng(32);
  for (int i = 0; i < 500; ++i) {
    u128 index = RandomU128(rng) & ((u128{1} << 70) - 1);
    int64_t delta = (i % 3 == 0) ? -1 : 1;
    plain.Update(index, delta);
    const PreparedCoord pc = PrepareCoord(index);
    prepared.UpdatePrepared(pc, delta,
                            shape.FingerprintPowerFromExp(pc.exponent));
  }
  EXPECT_TRUE(plain == prepared);
}

TEST(KernelTest, ForestPreparedPathsAreBitIdentical) {
  // Update / UpdateEncoded / UpdatePrepared / batched Process must all
  // produce the same sketch state.
  const size_t n = 64;
  ForestSketchParams params;
  params.config = SketchConfig::Light();
  params.rounds = 3;
  auto stream =
      DynamicStream::WithChurn(Gnm(n, 300, 9), /*decoys=*/150, /*seed=*/10);
  SpanningForestSketch a(n, 2, 77, params), b(n, 2, 77, params),
      c(n, 2, 77, params), d(n, 2, 77, params);
  for (const auto& up : stream.updates()) {
    a.Update(up.edge, up.delta);
    b.UpdateEncoded(up.edge, b.codec().Encode(up.edge), up.delta);
    c.UpdatePrepared(up.edge, PrepareCoord(c.codec().Encode(up.edge)),
                     up.delta);
  }
  d.Process(stream);
  EXPECT_TRUE(a.StateEquals(b));
  EXPECT_TRUE(a.StateEquals(c));
  EXPECT_TRUE(a.StateEquals(d));
}

TEST(KernelTest, BatchedIngestBitIdenticalAcrossThreadCounts) {
  // Re-check of the determinism contract on the new kernel: the sharded
  // parallel engine must be bit-identical for threads in {1, 2, 8}.
  const size_t n = 128;
  auto stream =
      DynamicStream::WithChurn(Gnm(n, 600, 3), /*decoys=*/300, /*seed=*/4);
  ForestSketchParams base;
  base.config = SketchConfig::Light();
  base.rounds = 4;
  SpanningForestSketch reference(n, 2, 55, base);
  reference.Process(stream);
  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    const ForestSketchParams params =
        ForestSketchParams::Builder(base).Threads(threads).Build();
    SpanningForestSketch sketch(n, 2, 55, params);
    sketch.Process(stream);
    EXPECT_TRUE(reference.StateEquals(sketch)) << "threads=" << threads;
  }
}

}  // namespace
}  // namespace gms
