// Binary stream-file suite (workload/binary_stream.h): the GMSB format
// round-trips bit-identically across the whole DefaultSpecGrid, the
// mmap'd file path feeds a sketch to the BYTE-IDENTICAL state of
// in-memory ingestion, and hostile images (truncations, byte flips,
// garbage headers) come back as Status, never a crash -- the serde_test
// discipline applied to the disk format.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "connectivity/spanning_forest_sketch.h"
#include "stream/stream.h"
#include "stream/stream_driver.h"
#include "testkit/stream_spec.h"
#include "workload/binary_stream.h"
#include "workload/file_corpus.h"
#include "workload/spec_convert.h"

namespace gms {
namespace workload {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

bool SameStream(const DynamicStream& a, const DynamicStream& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!(a.updates()[i].edge == b.updates()[i].edge)) return false;
    if (a.updates()[i].delta != b.updates()[i].delta) return false;
  }
  return true;
}

TEST(WorkloadTest, HeaderFieldsSurviveEncode) {
  DynamicStream stream;
  stream.Push(Hyperedge{0, 3}, +1);
  stream.Push(Hyperedge{1, 2, 4}, +1);
  stream.Push(Hyperedge{0, 3}, -1);
  const std::vector<uint8_t> bytes = EncodeBinaryStream(
      /*n=*/6, /*max_rank=*/3,
      std::span<const StreamUpdate>(stream.updates()));
  ASSERT_EQ(bytes.size(),
            kBinaryStreamHeaderBytes + 3 * (1 + 4 * 3));

  auto header = ParseBinaryStreamHeader(bytes);
  ASSERT_TRUE(header.ok()) << header.status().message();
  EXPECT_EQ(header->n, 6u);
  EXPECT_EQ(header->max_rank, 3u);
  EXPECT_EQ(header->record_bytes, 13u);
  EXPECT_EQ(header->num_updates, 3u);

  auto decoded = DecodeBinaryStream(bytes);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(SameStream(*decoded, stream));
}

// The tentpole acceptance sweep: every DefaultSpecGrid instance encodes,
// writes, re-opens through the mmap path, and replays to the exact stream
// it came from -- and the file image is canonical (decode -> encode is
// the identity on bytes).
TEST(WorkloadTest, DefaultSpecGridRoundTripsThroughDisk) {
  size_t idx = 0;
  for (const testkit::StreamSpec& spec : testkit::DefaultSpecGrid()) {
    SCOPED_TRACE(spec.ToString());
    testkit::BuiltStream built;
    const std::vector<uint8_t> bytes = EncodeSpecStream(spec, &built);

    const std::string path =
        TempPath("grid_" + std::to_string(idx++) + ".gmsb");
    ASSERT_TRUE(
        WriteSpecStreamFile(spec, path).ok());

    auto file = BinaryFileStream::Open(path);
    ASSERT_TRUE(file.ok()) << file.status().message();
    EXPECT_EQ(file->n(), spec.n);
    EXPECT_EQ(file->max_rank(), built.max_rank);
    EXPECT_EQ(file->num_updates(), built.stream.size());

    // File replay == the stream the generator built.
    EXPECT_TRUE(SameStream(file->ReadAll(), built.stream));

    // Per-record access agrees with bulk decode.
    StreamUpdate u;
    for (uint64_t j = 0; j < file->num_updates(); ++j) {
      file->ReadRecord(j, &u);
      EXPECT_TRUE(u.edge == built.stream.updates()[j].edge) << "j=" << j;
      EXPECT_EQ(u.delta, built.stream.updates()[j].delta) << "j=" << j;
    }

    // Canonical image: re-encoding the replay reproduces the bytes.
    const std::vector<uint8_t> redo = EncodeBinaryStream(
        spec.n, built.max_rank,
        std::span<const StreamUpdate>(file->ReadAll().updates()));
    EXPECT_EQ(redo, bytes);
  }
}

// The disk-to-sketch path: DriveBinaryFileStream (reader threads decoding
// straight from the mapping) must land the sketch in the byte-identical
// state of serial in-memory ingestion, across the whole grid.
TEST(WorkloadTest, MmapDriverIngestMatchesInMemoryIngest) {
  constexpr uint64_t kSeed = 91;
  size_t idx = 0;
  for (const testkit::StreamSpec& spec : testkit::DefaultSpecGrid()) {
    SCOPED_TRACE(spec.ToString());
    testkit::BuiltStream built;
    const std::string path =
        TempPath("drive_" + std::to_string(idx++) + ".gmsb");
    ASSERT_TRUE(WriteSpecStreamFile(spec, path, &built).ok());
    auto file = BinaryFileStream::Open(path);
    ASSERT_TRUE(file.ok());

    ForestSketchParams params;
    params.config = SketchConfig::Light();
    SpanningForestSketch serial(spec.n, built.max_rank, kSeed, params);
    for (const StreamUpdate& u : built.stream.updates()) {
      serial.Update(u.edge, u.delta);
    }

    GutterDriverParams dp;
    dp.readers = 2;
    dp.appliers = 2;
    dp.gutter_capacity = 4;
    SpanningForestSketch from_file(spec.n, built.max_rank, kSeed, params);
    DriverStats stats = DriveBinaryFileStream(&from_file, *file, dp);
    EXPECT_EQ(stats.updates, built.stream.size());

    EXPECT_TRUE(from_file.StateEquals(serial));
    std::vector<uint8_t> a, b;
    serial.Serialize(&a);
    from_file.Serialize(&b);
    EXPECT_EQ(a, b) << "file-driven frame diverges from in-memory frame";
  }
}

// ---------- hostile inputs ----------

TEST(WorkloadAdversarialTest, EveryTruncationIsRejected) {
  testkit::StreamSpec spec;
  spec.family = testkit::Family::kGnm;
  spec.n = 10;
  spec.m = 14;
  const std::vector<uint8_t> bytes = EncodeSpecStream(spec);
  for (size_t len = 0; len < bytes.size(); ++len) {
    std::vector<uint8_t> cut(bytes.begin(), bytes.begin() + len);
    EXPECT_FALSE(DecodeBinaryStream(cut).ok())
        << "accepted a file truncated to " << len << " bytes";
  }
  // Trailing garbage is also a size mismatch, not extra records.
  std::vector<uint8_t> padded = bytes;
  padded.push_back(0);
  EXPECT_FALSE(DecodeBinaryStream(padded).ok());
}

TEST(WorkloadAdversarialTest, EveryByteFlipIsDetectedOrBenign) {
  testkit::StreamSpec spec;
  spec.family = testkit::Family::kGnm;
  spec.n = 10;
  spec.m = 14;
  spec.churn = testkit::Churn::kWithChurn;
  spec.decoys = 6;
  const std::vector<uint8_t> bytes = EncodeSpecStream(spec);
  const auto original = DecodeBinaryStream(bytes);
  ASSERT_TRUE(original.ok());

  for (size_t i = 0; i < bytes.size(); ++i) {
    for (uint8_t mask : {uint8_t{0x01}, uint8_t{0x80}}) {
      std::vector<uint8_t> mutated = bytes;
      mutated[i] ^= mask;
      BinaryStreamHeader header;
      auto decoded = DecodeBinaryStream(mutated, &header);
      if (!decoded.ok()) continue;
      // The only byte flips a checksummed fixed-width format can accept
      // are GROWING the vertex-id domain in the header: same updates,
      // larger n, nothing else moved. Anything beyond that is a bug.
      EXPECT_GE(i, 8u) << "accepted flip of byte " << i;
      EXPECT_LT(i, 16u) << "accepted flip of byte " << i;
      EXPECT_NE(header.n, 10u);
      EXPECT_TRUE(SameStream(*decoded, *original))
          << "flip of byte " << i << " changed the decoded stream";
    }
  }
}

TEST(WorkloadAdversarialTest, HostileHeadersAreRejected) {
  EXPECT_FALSE(ParseBinaryStreamHeader({}).ok());
  std::vector<uint8_t> zeros(kBinaryStreamHeaderBytes, 0);
  EXPECT_FALSE(ParseBinaryStreamHeader(zeros).ok());

  DynamicStream stream;
  stream.Push(Hyperedge{0, 1}, +1);
  std::vector<uint8_t> bytes = EncodeBinaryStream(
      2, 2, std::span<const StreamUpdate>(stream.updates()));

  {  // wrong magic
    std::vector<uint8_t> bad = bytes;
    bad[0] ^= 0xff;
    EXPECT_FALSE(ParseBinaryStreamHeader(bad).ok());
  }
  {  // wrong version
    std::vector<uint8_t> bad = bytes;
    bad[4] = 0x7f;
    EXPECT_FALSE(ParseBinaryStreamHeader(bad).ok());
  }
  {  // nonzero reserved field
    std::vector<uint8_t> bad = bytes;
    bad[6] = 1;
    EXPECT_FALSE(ParseBinaryStreamHeader(bad).ok());
  }
  {  // record width disagrees with max_rank
    std::vector<uint8_t> bad = bytes;
    bad[20] += 1;
    EXPECT_FALSE(ParseBinaryStreamHeader(bad).ok());
  }
  {  // checksum flip caught with verification, ignored without
    std::vector<uint8_t> bad = bytes;
    bad[32] ^= 0x01;
    EXPECT_FALSE(ParseBinaryStreamHeader(bad).ok());
    EXPECT_TRUE(
        ParseBinaryStreamHeader(bad, /*verify_checksum=*/false).ok());
  }
}

TEST(WorkloadAdversarialTest, HostileRecordsAreRejected) {
  // Build a single-record image by hand and mutate the record while
  // keeping the checksum honest, so the RECORD validators (not the
  // checksum) do the rejecting.
  DynamicStream stream;
  stream.Push(Hyperedge{1, 3}, +1);
  const std::vector<uint8_t> base = EncodeBinaryStream(
      5, 2, std::span<const StreamUpdate>(stream.updates()));

  auto with_record = [&base](uint8_t op, uint32_t id0, uint32_t id1) {
    std::vector<uint8_t> bytes = base;
    uint8_t* rec = bytes.data() + kBinaryStreamHeaderBytes;
    rec[0] = op;
    for (int b = 0; b < 4; ++b) rec[1 + b] = (id0 >> (8 * b)) & 0xff;
    for (int b = 0; b < 4; ++b) rec[5 + b] = (id1 >> (8 * b)) & 0xff;
    const uint64_t sum = BinaryStreamChecksum(
        std::span<const uint8_t>(bytes).subspan(kBinaryStreamHeaderBytes));
    for (int b = 0; b < 8; ++b) bytes[32 + b] = (sum >> (8 * b)) & 0xff;
    return bytes;
  };

  // Sanity: the canonical record re-encodes fine.
  EXPECT_TRUE(DecodeBinaryStream(with_record((2 << 1) | 1, 1, 3)).ok());
  // Cardinality below 2 / above max_rank.
  EXPECT_FALSE(DecodeBinaryStream(with_record((1 << 1) | 1, 1, 3)).ok());
  EXPECT_FALSE(DecodeBinaryStream(with_record((3 << 1) | 1, 1, 3)).ok());
  // Ids out of the domain.
  EXPECT_FALSE(DecodeBinaryStream(with_record((2 << 1) | 1, 1, 5)).ok());
  // Ids not strictly increasing (unsorted and duplicate).
  EXPECT_FALSE(DecodeBinaryStream(with_record((2 << 1) | 1, 3, 1)).ok());
  EXPECT_FALSE(DecodeBinaryStream(with_record((2 << 1) | 1, 3, 3)).ok());
}

TEST(WorkloadTest, OpenRejectsMissingAndCorruptFiles) {
  EXPECT_FALSE(BinaryFileStream::Open(TempPath("does_not_exist.gmsb")).ok());

  testkit::StreamSpec spec;
  spec.family = testkit::Family::kPath;
  spec.n = 8;
  testkit::BuiltStream built;
  std::vector<uint8_t> bytes = EncodeSpecStream(spec, &built);
  bytes[kBinaryStreamHeaderBytes] ^= 0x40;  // corrupt first record's op
  const std::string path = TempPath("corrupt.gmsb");
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fwrite(bytes.data(), 1, bytes.size(), f);
    std::fclose(f);
  }
  EXPECT_FALSE(BinaryFileStream::Open(path).ok());
  // Even without checksum verification the per-record validation at Open
  // still rejects the mangled op byte.
  EXPECT_FALSE(
      BinaryFileStream::Open(path, /*verify_checksum=*/false).ok());
}

TEST(WorkloadTest, SeedCorpusSplitsValidFromHostile) {
  const std::vector<testkit::CorpusEntry> entries = StreamFileSeedCorpus();
  ASSERT_GE(entries.size(), 9u);
  size_t valid = 0, hostile = 0;
  for (const testkit::CorpusEntry& entry : entries) {
    const bool bad = entry.name.find("bad_") != std::string::npos ||
                     entry.name.find("truncated") != std::string::npos;
    auto decoded = DecodeBinaryStream(entry.bytes);
    EXPECT_EQ(decoded.ok(), !bad) << entry.name;
    (bad ? hostile : valid) += 1;
  }
  EXPECT_GE(valid, 5u);
  EXPECT_GE(hostile, 4u);
}

}  // namespace
}  // namespace workload
}  // namespace gms
