// Mergeability suite: the defining property of a linear sketch is that
// sketching disjoint stream slices into same-seed clones and adding them
// cell-wise equals sketching the whole stream serially -- BIT-identically,
// because cell updates are exact field arithmetic, not floats. This file
// checks that property for every sketch type under insert/delete churn,
// for contiguous and interleaved splits, for 2-way and 3-way trees, and
// for the engine's kShardedMerge ingest mode at threads in {1, 2, 8}.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "connectivity/k_skeleton.h"
#include "connectivity/spanning_forest_sketch.h"
#include "graph/generators.h"
#include "graph/traversal.h"
#include "sketch/l0_sampler.h"
#include "sparsify/sparsifier_sketch.h"
#include "stream/stream.h"
#include "util/parallel.h"
#include "vertexconn/hyper_vc_query.h"
#include "vertexconn/vc_query_sketch.h"

namespace gms {
namespace {

DynamicStream GraphStream(size_t n, uint64_t seed) {
  Graph g = UnionOfHamiltonianCycles(n, 3, seed);
  return DynamicStream::WithChurn(g, /*decoys=*/2 * n, seed + 1);
}

DynamicStream HypergraphStream(size_t n, size_t r, uint64_t seed) {
  Hypergraph g = HyperCycle(n, r);
  return DynamicStream::WithChurn(g, /*decoys=*/n, r, seed + 1);
}

// Deterministically deal the stream's updates into `parts` disjoint
// subsequences. Each part preserves stream order, so a deletion still
// follows its insertion WITHIN the union -- which is all linearity needs;
// the parts themselves are wildly non-graphs (negative multiplicities,
// dangling deletes), exactly the regime MergeFrom must survive.
std::vector<std::vector<StreamUpdate>> Deal(const DynamicStream& stream,
                                            size_t parts, uint64_t seed) {
  std::vector<std::vector<StreamUpdate>> out(parts);
  uint64_t x = seed * 0x9E3779B97F4A7C15ull + 1;
  for (const StreamUpdate& u : stream.updates()) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    out[(x >> 33) % parts].push_back(u);
  }
  return out;
}

// Sketch each slice into a fresh clone of `empty` (same seed and shape),
// then fold the clones left-to-right into the first one.
template <typename Sketch>
Sketch SketchAndMerge(const Sketch& empty,
                      const std::vector<std::vector<StreamUpdate>>& slices) {
  std::vector<Sketch> clones;
  for (const auto& slice : slices) {
    Sketch c = empty;
    c.Process(std::span<const StreamUpdate>(slice));
    clones.push_back(std::move(c));
  }
  for (size_t i = 1; i < clones.size(); ++i) {
    Status s = clones[0].MergeFrom(clones[i]);
    EXPECT_TRUE(s.ok()) << s.message();
  }
  return clones[0];
}

// The property itself, shared by all five graph-sketch types: serial vs
// dealt-and-merged, for 2 and 3 parts and two deal seeds.
template <typename Sketch>
void CheckMergeEqualsSerial(const Sketch& empty, const DynamicStream& stream) {
  Sketch serial = empty;
  serial.Process(stream);
  for (size_t parts : {2u, 3u}) {
    for (uint64_t deal_seed : {1u, 2u}) {
      Sketch merged =
          SketchAndMerge(empty, Deal(stream, parts, deal_seed));
      EXPECT_TRUE(merged.StateEquals(serial))
          << "parts=" << parts << " deal_seed=" << deal_seed;
    }
  }
}

TEST(MergeTest, SpanningForestMergeEqualsSerial) {
  ForestSketchParams params;
  params.config = SketchConfig::Light();
  SpanningForestSketch empty(48, 2, /*seed=*/7, params);
  CheckMergeEqualsSerial(empty, GraphStream(48, 3));
}

TEST(MergeTest, SpanningForestHypergraphMergeEqualsSerial) {
  ForestSketchParams params;
  params.config = SketchConfig::Light();
  SpanningForestSketch empty(36, 3, /*seed=*/9, params);
  CheckMergeEqualsSerial(empty, HypergraphStream(36, 3, 5));
}

TEST(MergeTest, KSkeletonMergeEqualsSerial) {
  KSkeletonSketch::Params params;
  params.config = SketchConfig::Light();
  KSkeletonSketch empty(40, 3, /*k=*/2, /*seed=*/11, params);
  CheckMergeEqualsSerial(empty, HypergraphStream(40, 3, 13));
}

TEST(MergeTest, VcQueryMergeEqualsSerial) {
  VcQueryParams params;
  params.k = 2;
  params.explicit_r = 6;
  params.forest.config = SketchConfig::Light();
  VcQuerySketch empty(40, params, /*seed=*/17);
  CheckMergeEqualsSerial(empty, GraphStream(40, 19));
}

TEST(MergeTest, HyperVcQueryMergeEqualsSerial) {
  VcQueryParams params;
  params.k = 2;
  params.explicit_r = 4;
  params.forest.config = SketchConfig::Light();
  HyperVcQuerySketch empty(30, 3, params, /*seed=*/23);
  CheckMergeEqualsSerial(empty, HypergraphStream(30, 3, 29));
}

TEST(MergeTest, SparsifierMergeEqualsSerial) {
  SparsifierParams params;
  params.k = 2;
  params.levels = 6;
  params.forest.config = SketchConfig::Light();
  HypergraphSparsifierSketch empty(28, 3, params, /*seed=*/31);
  CheckMergeEqualsSerial(empty, HypergraphStream(28, 3, 37));
}

TEST(MergeTest, L0SamplerMergeEqualsSerial) {
  // The substrate type merges too; it takes L0Updates rather than stream
  // updates, so deal coordinates by hand (with deletions).
  const u128 domain = u128{1} << 30;
  std::vector<L0Update> all;
  for (uint64_t i = 0; i < 200; ++i) {
    all.push_back({(u128{i} * 48271) % domain, i % 4 == 0 ? -2 : +1});
  }
  L0Sampler serial(domain, SketchConfig::Light(), 41);
  serial.Process(all);

  L0Sampler a(domain, SketchConfig::Light(), 41);
  L0Sampler b(domain, SketchConfig::Light(), 41);
  L0Sampler c(domain, SketchConfig::Light(), 41);
  std::vector<L0Update> sa, sb, sc;
  for (size_t i = 0; i < all.size(); ++i) {
    (i % 3 == 0 ? sa : i % 3 == 1 ? sb : sc).push_back(all[i]);
  }
  a.Process(sa);
  b.Process(sb);
  c.Process(sc);
  ASSERT_TRUE(a.MergeFrom(b).ok());
  ASSERT_TRUE(a.MergeFrom(c).ok());
  EXPECT_TRUE(a.StateEquals(serial));
}

TEST(MergeTest, MergeIsOrderIndependent) {
  // Field addition is commutative and associative, so every merge tree
  // over the same slices lands on the same bits.
  ForestSketchParams params;
  params.config = SketchConfig::Light();
  SpanningForestSketch empty(32, 2, /*seed=*/43, params);
  auto slices = Deal(GraphStream(32, 47), 3, 5);

  std::vector<SpanningForestSketch> s(3, empty);
  for (int i = 0; i < 3; ++i) {
    s[i].Process(std::span<const StreamUpdate>(slices[i]));
  }
  SpanningForestSketch left = s[0];           // (0+1)+2
  ASSERT_TRUE(left.MergeFrom(s[1]).ok());
  ASSERT_TRUE(left.MergeFrom(s[2]).ok());
  SpanningForestSketch right = s[2];          // (2+1)+0
  ASSERT_TRUE(right.MergeFrom(s[1]).ok());
  ASSERT_TRUE(right.MergeFrom(s[0]).ok());
  EXPECT_TRUE(left.StateEquals(right));
}

TEST(MergeTest, MergeWithEmptyIsIdentity) {
  ForestSketchParams params;
  params.config = SketchConfig::Light();
  SpanningForestSketch sketch(32, 2, /*seed=*/53, params);
  sketch.Process(GraphStream(32, 59));
  SpanningForestSketch before = sketch;
  SpanningForestSketch empty(32, 2, /*seed=*/53, params);
  ASSERT_TRUE(sketch.MergeFrom(empty).ok());
  EXPECT_TRUE(sketch.StateEquals(before));
}

TEST(MergeTest, ClearedSketchReingestsIdentically) {
  // Clear() really is the empty-stream measurement: re-processing after
  // Clear() matches a fresh sketch bit-for-bit.
  ForestSketchParams params;
  params.config = SketchConfig::Light();
  DynamicStream stream = GraphStream(32, 61);
  SpanningForestSketch fresh(32, 2, /*seed=*/67, params);
  fresh.Process(stream);
  SpanningForestSketch reused(32, 2, /*seed=*/67, params);
  reused.Process(GraphStream(32, 71));  // unrelated garbage first
  reused.Clear();
  reused.Process(stream);
  EXPECT_TRUE(reused.StateEquals(fresh));
}

// ---------- engine sharded-merge mode ----------

// kShardedMerge ingest at every thread count must be bit-identical to the
// default serial column path (threads=1 exercises the fall-back, >1 the
// clone/merge tree). One test per engine-bearing sketch type.

constexpr size_t kThreadSweep[] = {1, 2, 8};

TEST(ShardedMergeTest, SpanningForestBitIdentical) {
  DynamicStream stream = GraphStream(64, 73);
  ForestSketchParams serial_params;
  serial_params.config = SketchConfig::Light();
  SpanningForestSketch serial(64, 2, /*seed=*/79, serial_params);
  serial.Process(stream);
  for (size_t threads : kThreadSweep) {
    const ForestSketchParams p = ForestSketchParams::Builder(serial_params)
                                     .Mode(IngestMode::kShardedMerge)
                                     .Threads(threads)
                                     .Build();
    SpanningForestSketch sharded(64, 2, /*seed=*/79, p);
    sharded.Process(stream);
    EXPECT_TRUE(sharded.StateEquals(serial)) << "threads=" << threads;
  }
}

TEST(ShardedMergeTest, KSkeletonBitIdentical) {
  DynamicStream stream = HypergraphStream(40, 3, 83);
  KSkeletonSketch::Params serial_params;
  serial_params.config = SketchConfig::Light();
  KSkeletonSketch serial(40, 3, /*k=*/2, /*seed=*/89, serial_params);
  serial.Process(stream);
  for (size_t threads : kThreadSweep) {
    const KSkeletonSketch::Params p =
        ForestSketchParams::Builder(serial_params)
            .Mode(IngestMode::kShardedMerge)
            .Threads(threads)
            .Build();
    KSkeletonSketch sharded(40, 3, /*k=*/2, /*seed=*/89, p);
    sharded.Process(stream);
    EXPECT_TRUE(sharded.StateEquals(serial)) << "threads=" << threads;
  }
}

TEST(ShardedMergeTest, VcQueryBitIdentical) {
  DynamicStream stream = GraphStream(40, 97);
  VcQueryParams serial_params;
  serial_params.k = 2;
  serial_params.explicit_r = 6;
  serial_params.forest.config = SketchConfig::Light();
  VcQuerySketch serial(40, serial_params, /*seed=*/101);
  serial.Process(stream);
  for (size_t threads : kThreadSweep) {
    const VcQueryParams p = VcQueryParams::Builder(serial_params)
                                .Mode(IngestMode::kShardedMerge)
                                .Threads(threads)
                                .Build();
    VcQuerySketch sharded(40, p, /*seed=*/101);
    sharded.Process(stream);
    EXPECT_TRUE(sharded.StateEquals(serial)) << "threads=" << threads;
  }
}

TEST(ShardedMergeTest, HyperVcQueryBitIdentical) {
  DynamicStream stream = HypergraphStream(30, 3, 103);
  VcQueryParams serial_params;
  serial_params.k = 2;
  serial_params.explicit_r = 4;
  serial_params.forest.config = SketchConfig::Light();
  HyperVcQuerySketch serial(30, 3, serial_params, /*seed=*/107);
  serial.Process(stream);
  for (size_t threads : kThreadSweep) {
    const VcQueryParams p = VcQueryParams::Builder(serial_params)
                                .Mode(IngestMode::kShardedMerge)
                                .Threads(threads)
                                .Build();
    HyperVcQuerySketch sharded(30, 3, p, /*seed=*/107);
    sharded.Process(stream);
    EXPECT_TRUE(sharded.StateEquals(serial)) << "threads=" << threads;
  }
}

TEST(ShardedMergeTest, SparsifierBitIdentical) {
  DynamicStream stream = HypergraphStream(28, 3, 109);
  SparsifierParams serial_params;
  serial_params.k = 2;
  serial_params.levels = 6;
  serial_params.forest.config = SketchConfig::Light();
  HypergraphSparsifierSketch serial(28, 3, serial_params, /*seed=*/113);
  serial.Process(stream);
  for (size_t threads : kThreadSweep) {
    const SparsifierParams p = SparsifierParams::Builder(serial_params)
                                   .Mode(IngestMode::kShardedMerge)
                                   .Threads(threads)
                                   .Build();
    HypergraphSparsifierSketch sharded(28, 3, p, /*seed=*/113);
    sharded.Process(stream);
    EXPECT_TRUE(sharded.StateEquals(serial)) << "threads=" << threads;
  }
}

TEST(ShardedMergeTest, ShardedResultsDecodeCorrectly) {
  // Bit-identity already implies this, but check the end-to-end claim on
  // its own terms: a sharded-merge sketch answers the query correctly.
  const ForestSketchParams p = ForestSketchParams::Builder()
                                   .Config(SketchConfig::Light())
                                   .Mode(IngestMode::kShardedMerge)
                                   .Threads(8)
                                   .Build();
  Graph g = UnionOfHamiltonianCycles(64, 3, 5);
  SpanningForestSketch sketch(64, 2, /*seed=*/127, p);
  sketch.Process(DynamicStream::WithChurn(g, /*decoys=*/128, 6));
  auto forest = sketch.ExtractSpanningGraph();
  ASSERT_TRUE(forest.ok()) << forest.status().message();
  EXPECT_EQ(NumComponents(forest.value()), 1u);
}

}  // namespace
}  // namespace gms
