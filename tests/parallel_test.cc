// ThreadPool / ParallelFor unit tests. These double as the TSan smoke
// suite (the `tsan` preset filters on Parallel|Determinism): every test
// exercises the dispatch/wait protocol under real concurrency.
#include "util/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace gms {
namespace {

TEST(ParallelShardTest, ShardsTileTheRangeExactly) {
  for (size_t n : {0u, 1u, 5u, 7u, 64u, 1000u}) {
    for (size_t shards : {1u, 2u, 3u, 7u, 8u, 16u}) {
      size_t covered = 0;
      size_t prev_end = 0;
      for (size_t s = 0; s < shards; ++s) {
        ShardRange r = ShardOf(n, s, shards);
        EXPECT_EQ(r.begin, prev_end);
        EXPECT_LE(r.begin, r.end);
        covered += r.end - r.begin;
        prev_end = r.end;
      }
      EXPECT_EQ(prev_end, n);
      EXPECT_EQ(covered, n);
    }
  }
}

TEST(ParallelShardTest, ShardBoundariesIgnoreThreadOvershoot) {
  // ParallelFor clamps shards to n, so ownership with threads > n equals
  // ownership with threads == n (every index its own shard).
  for (size_t s = 0; s < 4; ++s) {
    ShardRange r = ShardOf(4, s, 4);
    EXPECT_EQ(r.begin, s);
    EXPECT_EQ(r.end, s + 1);
  }
}

TEST(ParallelForTest, EveryIndexVisitedExactlyOnce) {
  constexpr size_t kN = 997;  // prime: uneven shard sizes
  for (size_t threads : {1u, 2u, 3u, 8u, 16u}) {
    std::vector<std::atomic<int>> visits(kN);
    ParallelFor(threads, kN, [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) visits[i].fetch_add(1);
    });
    for (size_t i = 0; i < kN; ++i) EXPECT_EQ(visits[i].load(), 1) << i;
  }
}

TEST(ParallelForTest, MoreThreadsThanWork) {
  std::vector<std::atomic<int>> visits(3);
  ParallelFor(/*threads=*/16, /*n=*/3, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) visits[i].fetch_add(1);
  });
  for (size_t i = 0; i < 3; ++i) EXPECT_EQ(visits[i].load(), 1);
}

TEST(ParallelForTest, EmptyRangeIsANoop) {
  bool called = false;
  ParallelFor(8, 0, [&](size_t, size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelForTest, SingleThreadRunsInline) {
  // threads <= 1 must not touch the pool: the body sees the calling thread
  // and the full range in one invocation.
  std::thread::id caller = std::this_thread::get_id();
  size_t calls = 0;
  ParallelFor(1, 100, [&](size_t begin, size_t end) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 100u);
    ++calls;
  });
  EXPECT_EQ(calls, 1u);
}

TEST(ParallelForTest, NestedCallsRunInline) {
  // An inner ParallelFor issued from a worker must not re-enter the pool
  // (that would deadlock on the run lock); it runs the whole inner range
  // inline on the owning worker. The outer fan goes straight to
  // ThreadPool::Run, which is deliberately unclamped, so workers exist even
  // where ParallelFor's core clamp would collapse the outer loop to inline.
  constexpr size_t kOuter = 4, kInner = 64;
  std::vector<std::atomic<int>> visits(kOuter * kInner);
  ThreadPool::Shared().Run(kOuter, [&](size_t o) {
    EXPECT_TRUE(ThreadPool::InParallelRegion());
    std::thread::id owner = std::this_thread::get_id();
    ParallelFor(8, kInner, [&](size_t begin, size_t end) {
      EXPECT_EQ(std::this_thread::get_id(), owner);
      for (size_t i = begin; i < end; ++i) visits[o * kInner + i].fetch_add(1);
    });
  });
  for (size_t i = 0; i < kOuter * kInner; ++i) {
    EXPECT_EQ(visits[i].load(), 1) << i;
  }
  EXPECT_FALSE(ThreadPool::InParallelRegion());
}

TEST(ParallelForTest, ShardedSumsMatchSerial) {
  // The canonical ownership pattern: each shard accumulates into its own
  // slot, slots merge serially afterwards.
  constexpr size_t kN = 10000;
  std::vector<uint64_t> values(kN);
  std::iota(values.begin(), values.end(), 1);
  uint64_t serial = std::accumulate(values.begin(), values.end(), uint64_t{0});
  for (size_t threads : {2u, 4u, 8u}) {
    std::vector<uint64_t> partial(threads, 0);
    size_t shards = threads < kN ? threads : kN;
    ParallelFor(threads, kN, [&](size_t begin, size_t end) {
      // Recover the shard id from the static boundaries.
      size_t shard = begin * shards / kN;
      for (size_t i = begin; i < end; ++i) partial[shard] += values[i];
    });
    uint64_t total = std::accumulate(partial.begin(), partial.end(),
                                     uint64_t{0});
    EXPECT_EQ(total, serial);
  }
}

TEST(ParallelPoolTest, RepeatedDispatchStress) {
  // Many short jobs back to back: exercises the generation counter and
  // wake/sleep transitions (the likeliest place for a lost-wakeup or race;
  // run under the tsan preset this is the pool's data-race certificate).
  // ThreadPool::Run directly (not ParallelFor) so the dispatch stays
  // genuinely concurrent on any core count.
  constexpr int kJobs = 200;
  constexpr size_t kShards = 8;
  constexpr size_t kN = 64;
  std::atomic<uint64_t> total{0};
  for (int j = 0; j < kJobs; ++j) {
    ThreadPool::Shared().Run(kShards, [&](size_t s) {
      ShardRange r = ShardOf(kN, s, kShards);
      uint64_t local = 0;
      for (size_t i = r.begin; i < r.end; ++i) local += i + 1;
      total.fetch_add(local);
    });
  }
  EXPECT_EQ(total.load(), uint64_t{kJobs} * (kN * (kN + 1) / 2));
}

TEST(ParallelPoolTest, GrowsWhenAskedForMoreShards) {
  // Increasing shard counts across calls must extend the helper set
  // transparently. ThreadPool::Run is unclamped, so the growth really
  // happens regardless of how many cores the machine exposes.
  for (size_t threads : {2u, 5u, 9u, 13u}) {
    std::vector<std::atomic<int>> visits(threads);
    ThreadPool::Shared().Run(threads,
                             [&](size_t s) { visits[s].fetch_add(1); });
    for (size_t i = 0; i < threads; ++i) EXPECT_EQ(visits[i].load(), 1);
  }
}

}  // namespace
}  // namespace gms
