// Tests for degeneracy, cut-degeneracy (Definition 9), Lemma 10's strict
// separation, and the LightCompleteness threshold.
#include <gtest/gtest.h>

#include "exact/degeneracy.h"
#include "exact/strength.h"
#include "graph/generators.h"

namespace gms {
namespace {

TEST(DegeneracyTest, KnownFamilies) {
  EXPECT_EQ(Degeneracy(PathGraph(6)), 1u);
  EXPECT_EQ(Degeneracy(RandomTree(20, 1)), 1u);
  EXPECT_EQ(Degeneracy(CycleGraph(6)), 2u);
  EXPECT_EQ(Degeneracy(CompleteGraph(5)), 4u);
  EXPECT_EQ(Degeneracy(CompleteBipartite(3, 7)), 3u);
}

TEST(DegeneracyTest, HypergraphPeeling) {
  Hypergraph h = HyperCycle(8, 3);
  // Every vertex has degree 3; removing one vertex kills 3 hyperedges and
  // drops neighbours' degrees.
  EXPECT_EQ(Degeneracy(h), 3u);
  Hypergraph single(4);
  single.AddEdge(Hyperedge{0, 1, 2, 3});
  EXPECT_EQ(Degeneracy(single), 1u);
}

TEST(DegeneracyTest, IsDDegenerate) {
  Graph g = CycleGraph(5);
  EXPECT_FALSE(IsDDegenerate(g, 1));
  EXPECT_TRUE(IsDDegenerate(g, 2));
  EXPECT_TRUE(IsDDegenerate(g, 3));
}

TEST(Lemma10Test, DegeneracyImpliesCutDegeneracy) {
  // Check d-cut-degeneracy <= d-degeneracy on small random graphs.
  for (uint64_t seed = 0; seed < 6; ++seed) {
    Graph g = ErdosRenyi(9, 0.35, 900 + seed);
    EXPECT_LE(CutDegeneracyBrute(g), Degeneracy(g)) << "seed=" << seed;
  }
}

TEST(Lemma10Test, WitnessSeparatesTheNotions) {
  // The paper's 8-vertex witness: minimum degree 3 (hence not 2-degenerate)
  // but 2-cut-degenerate.
  Graph g = Lemma10Witness();
  EXPECT_FALSE(IsDDegenerate(g, 2));
  EXPECT_EQ(CutDegeneracyBrute(g), 2u);
}

TEST(CutDegeneracyTest, KnownFamilies) {
  EXPECT_EQ(CutDegeneracyBrute(PathGraph(6)), 1u);
  EXPECT_EQ(CutDegeneracyBrute(CycleGraph(6)), 2u);
  EXPECT_EQ(CutDegeneracyBrute(CompleteGraph(5)), 4u);
}

TEST(CutDegeneracyTest, HypergraphWitness) {
  Hypergraph h = HyperCycle(7, 3);
  size_t cd = CutDegeneracyBrute(h);
  EXPECT_GE(cd, 2u);
  EXPECT_LE(cd, Degeneracy(h));
}

TEST(LightCompletenessTest, MatchesReconstructionThreshold) {
  for (uint64_t seed = 0; seed < 4; ++seed) {
    Graph g = ErdosRenyi(10, 0.4, 950 + seed);
    if (g.NumEdges() == 0) continue;
    Hypergraph h = Hypergraph::FromGraph(g);
    size_t d = LightCompleteness(h);
    EXPECT_EQ(OfflineLightEdges(h, d).residual.NumEdges(), 0u);
    if (d > 1) {
      EXPECT_GT(OfflineLightEdges(h, d - 1).residual.NumEdges(), 0u);
    }
  }
}

TEST(LightCompletenessTest, AtMostCutDegeneracy) {
  // Section 4.2.1: d-cut-degenerate => light_d = E, so the completeness
  // threshold is bounded by the cut-degeneracy.
  for (uint64_t seed = 0; seed < 4; ++seed) {
    Graph g = ErdosRenyi(9, 0.4, 970 + seed);
    if (g.NumEdges() == 0) continue;
    Hypergraph h = Hypergraph::FromGraph(g);
    EXPECT_LE(LightCompleteness(h), CutDegeneracyBrute(g)) << "seed=" << seed;
  }
}

TEST(LightCompletenessTest, WitnessReconstructsAtTwo) {
  Hypergraph h = Hypergraph::FromGraph(Lemma10Witness());
  EXPECT_LE(LightCompleteness(h), 2u);
}

}  // namespace
}  // namespace gms
