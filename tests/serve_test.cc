// Tests for the always-on serving layer: engine equivalence with one-shot
// extraction, cached-payload validity, snapshot immutability, the server
// dispatch surface, and adversarial decoding of the serve protocol.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "graph/generators.h"
#include "graph/traversal.h"
#include "serve/serve_protocol.h"
#include "serve/sketch_server.h"
#include "serve/serving_engine.h"
#include "util/random.h"
#include "wire/wire.h"

namespace gms {
namespace {

ForestSketchParams LightForest() {
  return ForestSketchParams::Builder()
      .Config(SketchConfig::Light())
      .Build();
}

ServingParams SmallEpochs(size_t epoch_updates) {
  return ServingParams::Builder().EpochUpdates(epoch_updates).Build();
}

TEST(ServeEngineTest, FlushedSnapshotMatchesOneShotExtraction) {
  const size_t n = 64;
  const Graph g = UnionOfHamiltonianCycles(n, 2, 21);
  const DynamicStream stream = DynamicStream::WithChurn(g, 300, 22);

  ServingEngine<SpanningForestSketch> engine(
      SpanningForestSketch(n, 2, 23, LightForest()), SmallEpochs(128));
  engine.Process(stream);
  engine.Flush();
  auto snap = engine.Current();
  ASSERT_TRUE(snap->status.ok());
  EXPECT_EQ(snap->prefix_updates, stream.updates().size());

  SpanningForestSketch oneshot(n, 2, 23, LightForest());
  oneshot.Process(stream);
  auto direct = oneshot.Query();
  ASSERT_TRUE(direct.ok());
  // Linearity: merging per-epoch deltas must land on the exact same cells,
  // so the extracted forests agree bit for bit.
  EXPECT_TRUE(*snap->payload == direct.value());

  const auto stats = engine.stats();
  EXPECT_EQ(stats.updates_ingested, stream.updates().size());
  EXPECT_EQ(stats.updates_merged, stream.updates().size());
  EXPECT_EQ(stats.epochs_sealed, stats.epochs_merged);
  EXPECT_GE(stats.epochs_sealed,
            stream.updates().size() / engine.params().epoch_updates);
}

TEST(ServeEngineTest, CleanEpochReusesCachedPayload) {
  const size_t n = 32;
  const Graph g = UnionOfHamiltonianCycles(n, 2, 31);
  ServingEngine<SpanningForestSketch> engine(
      SpanningForestSketch(n, 2, 32, LightForest()), SmallEpochs(1 << 12));

  engine.Process(DynamicStream::InsertOnly(g, 33));
  engine.AdvanceEpoch();
  engine.Flush();
  auto dirty_snap = engine.Current();
  ASSERT_TRUE(dirty_snap->status.ok());
  auto stats = engine.stats();
  EXPECT_EQ(stats.cache_rebuilds, 1u);
  EXPECT_EQ(stats.cache_hits, 0u);

  // An empty epoch (time-driven boundary on an idle stream) must advance
  // the epoch counter while re-publishing the SAME payload object.
  engine.AdvanceEpoch();
  engine.Flush();
  auto clean_snap = engine.Current();
  EXPECT_EQ(clean_snap->epoch, dirty_snap->epoch + 1);
  EXPECT_EQ(clean_snap->prefix_updates, dirty_snap->prefix_updates);
  EXPECT_EQ(clean_snap->payload.get(), dirty_snap->payload.get());
  stats = engine.stats();
  EXPECT_EQ(stats.cache_rebuilds, 1u);
  EXPECT_EQ(stats.cache_hits, 1u);

  // A subsequent dirty epoch invalidates: new payload object.
  engine.Process(DynamicStream::WithChurn(g, 50, 34));
  engine.AdvanceEpoch();
  engine.Flush();
  auto rebuilt = engine.Current();
  EXPECT_NE(rebuilt->payload.get(), clean_snap->payload.get());
  EXPECT_EQ(engine.stats().cache_rebuilds, 2u);
}

TEST(ServeEngineTest, HeldSnapshotSurvivesLaterEpochs) {
  const size_t n = 48;
  const Graph g = UnionOfHamiltonianCycles(n, 3, 41);
  const DynamicStream stream = DynamicStream::InsertOnly(g, 42);
  const auto& updates = stream.updates();
  const size_t half = updates.size() / 2;

  ServingEngine<SpanningForestSketch> engine(
      SpanningForestSketch(n, 2, 43, LightForest()), SmallEpochs(64));
  engine.Process(std::span<const StreamUpdate>(updates.data(), half));
  engine.Flush();
  auto early = engine.Current();
  ASSERT_TRUE(early->status.ok());
  EXPECT_EQ(early->prefix_updates, half);

  engine.Process(std::span<const StreamUpdate>(updates.data() + half,
                                               updates.size() - half));
  engine.Flush();
  auto late = engine.Current();
  EXPECT_GT(late->prefix_updates, early->prefix_updates);

  // The held snapshot still answers for its prefix: a fresh sketch over
  // exactly that prefix extracts the identical payload.
  SpanningForestSketch prefix(n, 2, 43, LightForest());
  prefix.Process(std::span<const StreamUpdate>(updates.data(), half));
  auto prefix_q = prefix.Query();
  ASSERT_TRUE(prefix_q.ok());
  EXPECT_TRUE(*early->payload == prefix_q.value());
}

TEST(ServeEngineTest, VcEngineServesTheoremFourAnswers) {
  const size_t n = 40;
  auto planted = PlantedSeparator(n, 2, 51);
  const auto params = VcQueryParams::Builder()
                          .K(2)
                          .RMultiplier(0.5)
                          .Forest(LightForest())
                          .Build();
  ServingEngine<VcQuerySketch> engine(VcQuerySketch(n, params, 52),
                                      SmallEpochs(64));
  engine.Process(DynamicStream::InsertOnly(planted.graph, 53));
  engine.Flush();
  auto snap = engine.Current();
  ASSERT_TRUE(snap->status.ok());
  auto cuts = snap->payload->Disconnects(planted.separator);
  ASSERT_TRUE(cuts.ok());
  EXPECT_TRUE(*cuts);
}

TEST(ServeServerTest, DispatchAnswersEveryOp) {
  const size_t n = 60;
  const Graph g = UnionOfHamiltonianCycles(n, 3, 61);
  const auto params = serve::SketchServerParams::Builder()
                          .Forest(LightForest())
                          .Vc(VcQueryParams::Builder()
                                  .K(2)
                                  .RMultiplier(0.5)
                                  .Forest(LightForest())
                                  .Build())
                          .SkeletonK(2)
                          .EpochUpdates(256)
                          .Build();
  serve::SketchServer server(n, params, 62);
  server.Ingest(DynamicStream::InsertOnly(g, 63));
  server.Flush();

  serve::ServeRequest req;
  req.op = serve::ServeOp::kPing;
  EXPECT_EQ(server.Handle(req).code, StatusCode::kOk);

  req.op = serve::ServeOp::kConnected;
  req.u = 0;
  req.v = n - 1;
  auto resp = server.Handle(req);
  EXPECT_EQ(resp.code, StatusCode::kOk);
  EXPECT_EQ(resp.value, 1u);

  req = serve::ServeRequest{};
  req.op = serve::ServeOp::kNumComponents;
  resp = server.Handle(req);
  EXPECT_EQ(resp.code, StatusCode::kOk);
  EXPECT_EQ(resp.value, 1u);

  req = serve::ServeRequest{};
  req.op = serve::ServeOp::kDisconnects;
  req.query_set = {0, 1};
  resp = server.Handle(req);
  EXPECT_EQ(resp.code, StatusCode::kOk);
  EXPECT_EQ(resp.value,
            IsConnectedExcluding(g, {0, 1}) ? 0u : 1u);

  req = serve::ServeRequest{};
  req.op = serve::ServeOp::kVcAtLeast;
  req.t = 2;
  resp = server.Handle(req);
  EXPECT_EQ(resp.code, StatusCode::kOk);
  EXPECT_EQ(resp.value, 1u);  // union of 3 Hamiltonian cycles

  req = serve::ServeRequest{};
  req.op = serve::ServeOp::kSkeletonEdgeCount;
  resp = server.Handle(req);
  EXPECT_EQ(resp.code, StatusCode::kOk);
  EXPECT_GT(resp.value, 0u);

  req = serve::ServeRequest{};
  req.op = serve::ServeOp::kStats;
  resp = server.Handle(req);
  EXPECT_EQ(resp.code, StatusCode::kOk);
  EXPECT_EQ(resp.value, DynamicStream::InsertOnly(g, 63).updates().size());

  const auto stats = server.stats();
  EXPECT_EQ(stats.requests, 7u);
  EXPECT_EQ(stats.errors, 0u);
}

TEST(ServeServerTest, RefusalsCarryStatusCodes) {
  const auto params =
      serve::SketchServerParams::Builder().Forest(LightForest()).Build();
  serve::SketchServer server(16, params, 71);
  server.Flush();

  // VC serving is disabled on this server.
  serve::ServeRequest req;
  req.op = serve::ServeOp::kDisconnects;
  req.query_set = {0};
  EXPECT_EQ(server.Handle(req).code, StatusCode::kFailedPrecondition);

  // Out-of-range endpoint.
  req = serve::ServeRequest{};
  req.op = serve::ServeOp::kConnected;
  req.u = 16;
  req.v = 0;
  EXPECT_EQ(server.Handle(req).code, StatusCode::kInvalidArgument);
  EXPECT_EQ(server.stats().errors, 2u);
}

TEST(ServeServerTest, VcRefusalsFlowThroughTheSnapshot) {
  const auto params = serve::SketchServerParams::Builder()
                          .Forest(LightForest())
                          .Vc(VcQueryParams::Builder()
                                  .K(2)
                                  .RMultiplier(0.5)
                                  .Forest(LightForest())
                                  .Build())
                          .Build();
  serve::SketchServer server(24, params, 72);
  server.Ingest(
      DynamicStream::InsertOnly(UnionOfHamiltonianCycles(24, 3, 73), 74));
  server.Flush();

  // t beyond what a k=2 build certifies.
  serve::ServeRequest req;
  req.op = serve::ServeOp::kVcAtLeast;
  req.t = 4;
  EXPECT_EQ(server.Handle(req).code, StatusCode::kInvalidArgument);

  // Query set larger than k (after dedup).
  req = serve::ServeRequest{};
  req.op = serve::ServeOp::kDisconnects;
  req.query_set = {0, 1, 2};
  EXPECT_EQ(server.Handle(req).code, StatusCode::kInvalidArgument);
}

TEST(ServeProtocolTest, RequestRoundTrip) {
  serve::ServeRequest req;
  req.op = serve::ServeOp::kDisconnects;
  req.u = 7;
  req.v = 9;
  req.t = 3;
  req.query_set = {4, 2, 4, 11};
  std::vector<uint8_t> buf;
  serve::EncodeServeRequest(req, &buf);

  auto peek = wire::PeekFrameType(buf);
  ASSERT_TRUE(peek.ok());
  EXPECT_EQ(*peek, wire::FrameType::kServeRequest);

  auto back = serve::DecodeServeRequest(buf);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->op, req.op);
  EXPECT_EQ(back->u, req.u);
  EXPECT_EQ(back->v, req.v);
  EXPECT_EQ(back->t, req.t);
  EXPECT_EQ(back->query_set, req.query_set);
}

TEST(ServeProtocolTest, ResponseRoundTrip) {
  serve::ServeResponse resp;
  resp.op = serve::ServeOp::kVcAtLeast;
  resp.code = StatusCode::kInvalidArgument;
  resp.message = "t exceeds the build";
  resp.epoch = 12;
  resp.prefix_updates = 98304;
  resp.value = 0;
  std::vector<uint8_t> buf;
  serve::EncodeServeResponse(resp, &buf);

  auto back = serve::DecodeServeResponse(buf);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->op, resp.op);
  EXPECT_EQ(back->code, resp.code);
  EXPECT_EQ(back->message, resp.message);
  EXPECT_EQ(back->epoch, resp.epoch);
  EXPECT_EQ(back->prefix_updates, resp.prefix_updates);
  EXPECT_EQ(back->status().code(), StatusCode::kInvalidArgument);
}

TEST(ServeProtocolTest, HostileFramesNeverCrash) {
  serve::ServeRequest req;
  req.op = serve::ServeOp::kDisconnects;
  req.query_set = {1, 2, 3};
  std::vector<uint8_t> buf;
  serve::EncodeServeRequest(req, &buf);

  // Every truncation fails cleanly.
  for (size_t len = 0; len < buf.size(); ++len) {
    auto r = serve::DecodeServeRequest(
        std::span<const uint8_t>(buf.data(), len));
    EXPECT_FALSE(r.ok()) << "truncation to " << len << " bytes decoded";
  }
  // Every single-byte corruption fails cleanly (the frame checksum
  // catches whatever the field validation does not).
  for (size_t i = 0; i < buf.size(); ++i) {
    std::vector<uint8_t> mutated = buf;
    mutated[i] ^= 0x5A;
    auto r = serve::DecodeServeRequest(mutated);
    EXPECT_FALSE(r.ok()) << "corruption at byte " << i << " decoded";
  }

  serve::ServeResponse resp;
  resp.op = serve::ServeOp::kStats;
  resp.message = "ok";
  resp.value = 17;
  std::vector<uint8_t> rbuf;
  serve::EncodeServeResponse(resp, &rbuf);
  for (size_t len = 0; len < rbuf.size(); ++len) {
    EXPECT_FALSE(serve::DecodeServeResponse(
                     std::span<const uint8_t>(rbuf.data(), len))
                     .ok());
  }
  for (size_t i = 0; i < rbuf.size(); ++i) {
    std::vector<uint8_t> mutated = rbuf;
    mutated[i] ^= 0x5A;
    EXPECT_FALSE(serve::DecodeServeResponse(mutated).ok());
  }
}

TEST(ServeProtocolTest, ServerAnswersGarbageWithAnErrorFrame) {
  const auto params =
      serve::SketchServerParams::Builder().Forest(LightForest()).Build();
  serve::SketchServer server(8, params, 81);

  const std::vector<uint8_t> garbage = {0xDE, 0xAD, 0xBE, 0xEF, 0x00, 0x01};
  std::vector<uint8_t> out;
  server.HandleFrame(garbage, &out);
  auto resp = serve::DecodeServeResponse(out);
  ASSERT_TRUE(resp.ok());
  EXPECT_NE(resp->code, StatusCode::kOk);
  EXPECT_EQ(server.stats().errors, 1u);

  // A sketch-state frame is not a serve request either.
  SpanningForestSketch sketch(8, 2, 82, LightForest());
  std::vector<uint8_t> state;
  sketch.Serialize(&state);
  out.clear();
  server.HandleFrame(state, &out);
  resp = serve::DecodeServeResponse(out);
  ASSERT_TRUE(resp.ok());
  EXPECT_NE(resp->code, StatusCode::kOk);
}

TEST(ServeProtocolTest, OpNamesAreStable) {
  EXPECT_STREQ(serve::ServeOpName(serve::ServeOp::kPing), "ping");
  EXPECT_STREQ(serve::ServeOpName(serve::ServeOp::kDisconnects),
               "disconnects");
  EXPECT_STREQ(serve::ServeOpName(static_cast<serve::ServeOp>(999)),
               "unknown");
  EXPECT_STREQ(wire::FrameTypeName(wire::FrameType::kServeRequest),
               "serve_request");
  EXPECT_STREQ(wire::FrameTypeName(wire::FrameType::kServeResponse),
               "serve_response");
}

TEST(ServeComponentIndexTest, MatchesTraversal) {
  Rng rng(91);
  Graph g(50);
  for (int i = 0; i < 40; ++i) {
    VertexId a = static_cast<VertexId>(rng.Below(50));
    VertexId b = static_cast<VertexId>(rng.Below(50));
    if (a != b) g.AddEdge(Edge(a, b));
  }
  // Index the graph itself (any forest of it yields the same components).
  serve::ComponentIndex index(50, Hypergraph::FromGraph(g));
  const std::vector<uint32_t> truth = ConnectedComponents(g);
  EXPECT_EQ(index.num_components(), NumComponents(g));
  for (int t = 0; t < 100; ++t) {
    VertexId a = static_cast<VertexId>(rng.Below(50));
    VertexId b = static_cast<VertexId>(rng.Below(50));
    EXPECT_EQ(index.Connected(a, b), truth[a] == truth[b]);
  }
}

// ---------------------------------------------------------------------------
// Adaptive epoch pacing: with epoch_deadline_ms set, the engine seals on
// the wall-clock deadline OR the update count, whichever fires first -- a
// slow stream's updates stop parking in the open delta indefinitely.
// ---------------------------------------------------------------------------

TEST(ServeAdaptivePacingTest, DeadlineSealsSlowStreamWithoutFlush) {
  const size_t n = 48;
  const Graph g = UnionOfHamiltonianCycles(n, 2, 51);
  const DynamicStream stream = DynamicStream::InsertOnly(g, 52);

  // The epoch count alone would NEVER seal this stream (epoch_updates far
  // exceeds it); only the pacer can publish the updates.
  ServingEngine<SpanningForestSketch> engine(
      SpanningForestSketch(n, 2, 53, LightForest()),
      ServingParams::Builder()
          .EpochUpdates(1 << 20)
          .EpochDeadlineMillis(10)
          .Build());
  engine.Process(stream);

  // No Flush, no AdvanceEpoch: wait (bounded) for the pacer to publish.
  const auto give_up =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (engine.Current()->prefix_updates < stream.updates().size()) {
    ASSERT_LT(std::chrono::steady_clock::now(), give_up)
        << "pacer never sealed the open delta";
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  const auto stats = engine.stats();
  EXPECT_GE(stats.deadline_seals, 1u);

  // Staleness test: the deadline-sealed snapshot is the EXACT prefix
  // measurement, bit for bit, like any count-sealed epoch.
  auto snap = engine.Current();
  ASSERT_TRUE(snap->status.ok());
  SpanningForestSketch oneshot(n, 2, 53, LightForest());
  oneshot.Process(stream);
  auto direct = oneshot.Query();
  ASSERT_TRUE(direct.ok());
  EXPECT_TRUE(*snap->payload == direct.value());
}

TEST(ServeAdaptivePacingTest, CountStillSealsFirstOnFastStreams) {
  const size_t n = 48;
  const Graph g = UnionOfHamiltonianCycles(n, 3, 61);
  const DynamicStream stream = DynamicStream::WithChurn(g, 200, 62);

  // Tiny epochs + a deadline far beyond the test's runtime: every seal
  // should be count-triggered even with the pacer thread running.
  ServingEngine<SpanningForestSketch> engine(
      SpanningForestSketch(n, 2, 63, LightForest()),
      ServingParams::Builder()
          .EpochUpdates(64)
          .EpochDeadlineMillis(60 * 1000)
          .Build());
  engine.Process(stream);
  engine.Flush();
  const auto stats = engine.stats();
  EXPECT_GE(stats.epochs_sealed,
            stream.updates().size() / engine.params().epoch_updates);
  EXPECT_EQ(stats.deadline_seals, 0u);

  auto snap = engine.Current();
  ASSERT_TRUE(snap->status.ok());
  EXPECT_EQ(snap->prefix_updates, stream.updates().size());
}

TEST(ServeAdaptivePacingTest, DisabledPacerLeavesOpenDeltaParked) {
  const size_t n = 32;
  const Graph g = UnionOfHamiltonianCycles(n, 2, 71);
  ServingEngine<SpanningForestSketch> engine(
      SpanningForestSketch(n, 2, 72, LightForest()), SmallEpochs(1 << 20));
  engine.Process(DynamicStream::InsertOnly(g, 73));

  // Default params: no pacer thread at all. The open delta must still be
  // unpublished after a wait longer than any pacing interval above.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(engine.Current()->prefix_updates, 0u);
  EXPECT_EQ(engine.stats().deadline_seals, 0u);
  EXPECT_EQ(engine.stats().epochs_sealed, 0u);
}

}  // namespace
}  // namespace gms
