// Direct verification of the Section 4.1 encoding lemma: for vertex
// vectors a^i with coordinate e equal to |e|-1 at i = min(e), -1 at the
// other members, and 0 elsewhere, the nonzero coordinates of
// sum_{i in S} a^i are EXACTLY delta(S) -- because the only sub-multisets
// of {|e|-1, -1, ..., -1} summing to zero are the empty and full ones.
// This identity is what every decode in the library rides on.
#include <gtest/gtest.h>

#include <map>

#include "connectivity/incidence.h"
#include "graph/edge_codec.h"
#include "graph/generators.h"
#include "util/random.h"

namespace gms {
namespace {

TEST(IncidenceTest, CoefficientsMatchDefinition) {
  Hyperedge e{3, 7, 9};
  EXPECT_EQ(IncidenceCoefficient(e, 3), 2);   // min vertex: |e| - 1
  EXPECT_EQ(IncidenceCoefficient(e, 7), -1);
  EXPECT_EQ(IncidenceCoefficient(e, 9), -1);
  EXPECT_EQ(IncidenceCoefficient(e, 4), 0);   // not a member
}

TEST(IncidenceTest, CoefficientsSumToZeroOverTheEdge) {
  // The full-row sum is zero: sum_{i in e} a^i_e = (|e|-1) - (|e|-1).
  for (size_t r = 2; r <= 5; ++r) {
    std::vector<VertexId> vs;
    for (size_t i = 0; i < r; ++i) vs.push_back(static_cast<VertexId>(2 * i));
    Hyperedge e(vs);
    int64_t sum = 0;
    for (VertexId v : e) sum += IncidenceCoefficient(e, v);
    EXPECT_EQ(sum, 0);
  }
}

// The lemma itself, checked on random hypergraphs and random vertex sets:
// coordinate e of sum_{i in S} a^i is nonzero IFF e crosses (S, V \ S).
class IncidenceLemmaSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IncidenceLemmaSweep, SupportOfSummedVectorsIsTheCut) {
  uint64_t seed = GetParam();
  size_t n = 14;
  Hypergraph h = RandomHypergraph(n, 25, 2, 4, seed);
  Rng rng(seed * 7 + 1);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<bool> in_s(n, false);
    for (size_t v = 0; v < n; ++v) in_s[v] = rng.Bernoulli(0.5);
    for (const auto& e : h.Edges()) {
      int64_t coordinate = 0;
      bool any_in = false, any_out = false;
      for (VertexId v : e) {
        if (in_s[v]) {
          coordinate += IncidenceCoefficient(e, v);
          any_in = true;
        } else {
          any_out = true;
        }
      }
      bool crosses = any_in && any_out;
      EXPECT_EQ(coordinate != 0, crosses)
          << "edge " << e.ToString() << " seed " << seed;
      // And the value is bounded by the rank, as the decoder assumes.
      EXPECT_LE(std::abs(coordinate), static_cast<int64_t>(e.size()) - 1);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncidenceLemmaSweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u));

TEST(IncidenceTest, NonMembersNeverContribute) {
  // Coordinates of edges not incident to any S-vertex stay zero even for
  // large S: no false positives in delta(S).
  Hyperedge e{10, 11, 12};
  int64_t sum = 0;
  for (VertexId v = 0; v < 10; ++v) sum += IncidenceCoefficient(e, v);
  EXPECT_EQ(sum, 0);
}

}  // namespace
}  // namespace gms
