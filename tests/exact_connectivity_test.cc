// Cross-validation of the exact connectivity algorithms: Even-Tarjan vertex
// connectivity vs. brute force, Stoer-Wagner vs. cut enumeration, the
// hypergraph min-cut MA algorithm vs. brute force.
#include <gtest/gtest.h>

#include "exact/hypergraph_mincut.h"
#include "exact/stoer_wagner.h"
#include "exact/vertex_connectivity.h"
#include "graph/generators.h"
#include "graph/traversal.h"

namespace gms {
namespace {

TEST(VertexConnectivityTest, KnownFamilies) {
  EXPECT_EQ(VertexConnectivity(CompleteGraph(6)), 5u);
  EXPECT_EQ(VertexConnectivity(CycleGraph(8)), 2u);
  EXPECT_EQ(VertexConnectivity(PathGraph(8)), 1u);
  EXPECT_EQ(VertexConnectivity(StarGraph(8)), 1u);
  EXPECT_EQ(VertexConnectivity(CompleteBipartite(3, 5)), 3u);
}

TEST(VertexConnectivityTest, DisconnectedAndTiny) {
  Graph g(5);
  g.AddEdge(0, 1);
  EXPECT_EQ(VertexConnectivity(g), 0u);
  EXPECT_EQ(VertexConnectivity(Graph(1)), 0u);
  EXPECT_EQ(VertexConnectivity(Graph(0)), 0u);
  Graph k2(2);
  k2.AddEdge(0, 1);
  EXPECT_EQ(VertexConnectivity(k2), 1u);
}

TEST(VertexConnectivityTest, MatchesBruteForceOnRandomGraphs) {
  for (uint64_t seed = 0; seed < 12; ++seed) {
    Graph g = ErdosRenyi(9, 0.35 + 0.03 * static_cast<double>(seed), seed);
    EXPECT_EQ(VertexConnectivity(g), VertexConnectivityBrute(g))
        << "seed=" << seed;
  }
}

TEST(VertexConnectivityTest, DecisionVersionAgrees) {
  for (uint64_t seed = 0; seed < 6; ++seed) {
    Graph g = ErdosRenyi(10, 0.5, 100 + seed);
    size_t kappa = VertexConnectivity(g);
    for (size_t k = 0; k <= kappa + 1; ++k) {
      EXPECT_EQ(IsKVertexConnected(g, k), k <= kappa)
          << "seed=" << seed << " k=" << k;
    }
  }
}

TEST(VertexConnectivityTest, MinimumVertexCutIsValid) {
  for (uint64_t seed = 0; seed < 6; ++seed) {
    Graph g = ErdosRenyi(10, 0.4, 200 + seed);
    if (!IsConnected(g)) continue;
    auto cut = MinimumVertexCut(g);
    size_t kappa = VertexConnectivity(g);
    if (!cut.has_value()) {
      EXPECT_EQ(kappa, g.NumVertices() - 1);  // complete
      continue;
    }
    EXPECT_EQ(cut->size(), kappa);
    EXPECT_FALSE(IsConnectedExcluding(g, *cut));
  }
}

TEST(VertexConnectivityTest, PlantedSeparatorsFoundExactly) {
  for (size_t k = 1; k <= 4; ++k) {
    auto planted = PlantedSeparator(36, k, 55 + k);
    EXPECT_EQ(VertexConnectivity(planted.graph), k);
    EXPECT_TRUE(IsKVertexConnected(planted.graph, k));
    EXPECT_FALSE(IsKVertexConnected(planted.graph, k + 1));
  }
}

TEST(VertexDisjointPathsTest, MengerOnKnownGraph) {
  // Two disjoint paths 0-1-3 and 0-2-3 in the 4-cycle.
  Graph c4 = CycleGraph(4);
  EXPECT_EQ(VertexDisjointPaths(c4, 0, 2), 2);
}

TEST(StoerWagnerTest, KnownFamilies) {
  EXPECT_EQ(EdgeConnectivity(CompleteGraph(7)), 6u);
  EXPECT_EQ(EdgeConnectivity(CycleGraph(9)), 2u);
  EXPECT_EQ(EdgeConnectivity(PathGraph(9)), 1u);
  Graph disconnected(4);
  disconnected.AddEdge(0, 1);
  EXPECT_EQ(EdgeConnectivity(disconnected), 0u);
}

TEST(StoerWagnerTest, CutSideIsConsistent) {
  Graph g = CycleGraph(6);
  auto cut = StoerWagner(g);
  EXPECT_EQ(cut.value, 2);
  // The reported side must actually achieve the value.
  int64_t crossing = 0;
  for (const Edge& e : g.Edges()) {
    if (cut.side[e.u()] != cut.side[e.v()]) ++crossing;
  }
  EXPECT_EQ(crossing, cut.value);
}

TEST(StoerWagnerTest, MatchesBruteForceOnRandomGraphs) {
  for (uint64_t seed = 0; seed < 10; ++seed) {
    Graph g = ErdosRenyi(9, 0.45, 300 + seed);
    auto sw = StoerWagner(g);
    auto brute = HypergraphMinCutBrute(Hypergraph::FromGraph(g));
    EXPECT_DOUBLE_EQ(static_cast<double>(sw.value), brute.value)
        << "seed=" << seed;
  }
}

TEST(StoerWagnerTest, WeightedInstance) {
  // Triangle with one heavy edge: min cut isolates the light corner.
  std::vector<std::vector<int64_t>> w = {
      {0, 10, 1}, {10, 0, 1}, {1, 1, 0}};
  auto cut = StoerWagner(w);
  EXPECT_EQ(cut.value, 2);
}

TEST(HypergraphMinCutTest, MatchesBruteForceUniform) {
  for (uint64_t seed = 0; seed < 10; ++seed) {
    Hypergraph h = RandomUniformHypergraph(8, 12, 3, 400 + seed);
    auto fast = HypergraphMinCut(h);
    auto brute = HypergraphMinCutBrute(h);
    EXPECT_DOUBLE_EQ(fast.value, brute.value) << "seed=" << seed;
    // The reported side achieves the value.
    EXPECT_DOUBLE_EQ(static_cast<double>(h.CutSize(fast.side)), fast.value);
  }
}

TEST(HypergraphMinCutTest, MatchesBruteForceMixedRanks) {
  for (uint64_t seed = 0; seed < 10; ++seed) {
    Hypergraph h = RandomHypergraph(9, 14, 2, 4, 500 + seed);
    auto fast = HypergraphMinCut(h);
    auto brute = HypergraphMinCutBrute(h);
    EXPECT_DOUBLE_EQ(fast.value, brute.value) << "seed=" << seed;
  }
}

TEST(HypergraphMinCutTest, WeightedEdges) {
  // Two triangles sharing nothing, joined by one heavy and one light
  // hyperedge: min cut = lighter crossing combination.
  std::vector<Hyperedge> edges = {
      Hyperedge{0, 1, 2}, Hyperedge{3, 4, 5}, Hyperedge{0, 3},
      Hyperedge{1, 4}};
  std::vector<double> w = {100, 100, 0.5, 0.25};
  auto cut = HypergraphMinCut(6, edges, w);
  auto brute = HypergraphMinCutBrute(6, edges, w);
  EXPECT_DOUBLE_EQ(cut.value, brute.value);
  EXPECT_DOUBLE_EQ(cut.value, 0.75);
}

TEST(HypergraphMinCutTest, PlantedCutFound) {
  auto planted = PlantedHypergraphCut(16, 3, 2, 20, 77);
  auto cut = HypergraphMinCut(planted.hypergraph);
  EXPECT_DOUBLE_EQ(cut.value, 2.0);
}

TEST(HypergraphMinCutTest, DisconnectedYieldsZero) {
  Hypergraph h(6);
  h.AddEdge(Hyperedge{0, 1, 2});
  h.AddEdge(Hyperedge{3, 4, 5});
  auto cut = HypergraphMinCut(h);
  EXPECT_DOUBLE_EQ(cut.value, 0.0);
}

TEST(HypergraphMinCutTest, GraphSpecialCaseAgreesWithStoerWagner) {
  for (uint64_t seed = 0; seed < 8; ++seed) {
    Graph g = ErdosRenyi(12, 0.35, 600 + seed);
    auto sw = StoerWagner(g);
    auto hg = HypergraphMinCut(Hypergraph::FromGraph(g));
    EXPECT_DOUBLE_EQ(static_cast<double>(sw.value), hg.value)
        << "seed=" << seed;
  }
}

}  // namespace
}  // namespace gms
