// Query-during-ingest correctness under real thread interleavings (run
// under the tsan preset as part of the data-race smoke check).
//
// Two query threads hammer snapshots while the ingest thread feeds a
// churny stream. Every observed snapshot names the exact stream prefix it
// covers (prefix_updates); linearity plus the library-wide determinism
// guarantee make that claim falsifiable: replaying the prefix into a
// fresh sketch must reproduce the payload bit for bit. The test records
// every distinct prefix observed mid-flight and verifies each one after
// the threads join.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "graph/generators.h"
#include "serve/sketch_server.h"
#include "serve/serving_engine.h"
#include "util/random.h"

namespace gms {
namespace {

ForestSketchParams LightForest() {
  return ForestSketchParams::Builder()
      .Config(SketchConfig::Light())
      .Build();
}

TEST(ServeConcurrencyTest, SnapshotsArePrefixConsistent) {
  const size_t n = 80;
  const Graph g = UnionOfHamiltonianCycles(n, 3, 101);
  const DynamicStream stream = DynamicStream::WithChurn(g, 600, 102);
  const auto& updates = stream.updates();

  ServingEngine<SpanningForestSketch> engine(
      SpanningForestSketch(n, 2, 103, LightForest()),
      ServingParams::Builder().EpochUpdates(128).Build());

  using Snapshot = ServingEngine<SpanningForestSketch>::Snapshot;
  std::atomic<bool> done{false};
  constexpr size_t kQueryThreads = 2;
  // Each thread keeps the snapshots it saw, keyed by prefix; payload
  // pointers stay alive because the snapshot holds them.
  std::vector<std::map<uint64_t, std::shared_ptr<const Snapshot>>> seen(
      kQueryThreads);
  std::vector<std::thread> queriers;
  for (size_t q = 0; q < kQueryThreads; ++q) {
    queriers.emplace_back([&, q] {
      uint64_t last_prefix = 0;
      while (!done.load(std::memory_order_acquire)) {
        auto snap = engine.Current();
        ASSERT_TRUE(snap->status.ok());
        // A single observer must never see the prefix move backwards.
        ASSERT_GE(snap->prefix_updates, last_prefix);
        last_prefix = snap->prefix_updates;
        seen[q].emplace(snap->prefix_updates, snap);
      }
    });
  }

  constexpr size_t kChunk = 64;
  for (size_t i = 0; i < updates.size(); i += kChunk) {
    const size_t take = std::min(kChunk, updates.size() - i);
    engine.Process(std::span<const StreamUpdate>(updates.data() + i, take));
  }
  engine.Flush();
  done.store(true, std::memory_order_release);
  for (auto& t : queriers) t.join();

  // Every observed snapshot is the exact extraction of its stream prefix.
  size_t distinct = 0;
  for (const auto& thread_seen : seen) {
    EXPECT_FALSE(thread_seen.empty());
    for (const auto& [prefix, snap] : thread_seen) {
      ASSERT_LE(prefix, updates.size());
      SpanningForestSketch replay(n, 2, 103, LightForest());
      replay.Process(std::span<const StreamUpdate>(updates.data(), prefix));
      auto direct = replay.Query();
      ASSERT_TRUE(direct.ok());
      EXPECT_TRUE(*snap->payload == direct.value())
          << "snapshot for prefix " << prefix
          << " does not match its replay";
      ++distinct;
    }
  }
  EXPECT_GT(distinct, 0u);
}

TEST(ServeConcurrencyTest, ServerHandlesFramesDuringIngest) {
  const size_t n = 64;
  const Graph g = UnionOfHamiltonianCycles(n, 2, 111);
  const DynamicStream stream = DynamicStream::WithChurn(g, 400, 112);
  const auto& updates = stream.updates();

  const auto params = serve::SketchServerParams::Builder()
                          .Forest(LightForest())
                          .EpochUpdates(128)
                          .Build();
  serve::SketchServer server(n, params, 113);

  std::atomic<bool> done{false};
  std::vector<std::thread> queriers;
  std::vector<uint64_t> answered(2);
  for (size_t q = 0; q < answered.size(); ++q) {
    queriers.emplace_back([&, q] {
      Rng rng(114 + q);
      uint64_t last_prefix = 0;
      std::vector<uint8_t> req_buf, resp_buf;
      while (!done.load(std::memory_order_acquire)) {
        req_buf.clear();
        resp_buf.clear();
        serve::ServeRequest req;
        req.op = serve::ServeOp::kConnected;
        req.u = rng.Below(n);
        req.v = rng.Below(n);
        serve::EncodeServeRequest(req, &req_buf);
        server.HandleFrame(req_buf, &resp_buf);
        auto resp = serve::DecodeServeResponse(resp_buf);
        ASSERT_TRUE(resp.ok());
        ASSERT_EQ(resp->code, StatusCode::kOk);
        ASSERT_GE(resp->prefix_updates, last_prefix);
        last_prefix = resp->prefix_updates;
        ++answered[q];
      }
    });
  }

  constexpr size_t kChunk = 64;
  for (size_t i = 0; i < updates.size(); i += kChunk) {
    const size_t take = std::min(kChunk, updates.size() - i);
    server.Ingest(std::span<const StreamUpdate>(updates.data() + i, take));
  }
  done.store(true, std::memory_order_release);
  for (auto& t : queriers) t.join();
  server.Flush();

  for (uint64_t a : answered) EXPECT_GT(a, 0u);

  // Post-flush, the final answers are exact: the generator graph is
  // connected, so every surviving pair connects.
  serve::ServeRequest req;
  req.op = serve::ServeOp::kNumComponents;
  const auto resp = server.Handle(req);
  EXPECT_EQ(resp.code, StatusCode::kOk);
  EXPECT_EQ(resp.value, 1u);
  EXPECT_EQ(resp.prefix_updates, updates.size());
}

}  // namespace
}  // namespace gms
