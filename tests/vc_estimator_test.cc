// Tests for the Theorem 8 vertex-connectivity estimator.
#include <gtest/gtest.h>

#include "exact/vertex_connectivity.h"
#include "graph/generators.h"
#include "vertexconn/vc_estimator.h"

namespace gms {
namespace {

VcEstimatorParams TestParams(size_t k, double eps) {
  VcEstimatorParams p;
  p.k = k;
  p.epsilon = eps;
  // Paper constants (160 k^2 / eps ln n) are far beyond what these scales
  // need; the bench sweeps the multiplier.
  p.r_multiplier = 0.05;
  p.forest.config = SketchConfig::Light();
  return p;
}

TEST(VcEstimatorParamsTest, ResolveRFormula) {
  VcEstimatorParams p;
  p.k = 2;
  p.epsilon = 0.5;
  p.r_multiplier = 1.0;
  // 160 * 4 / 0.5 * ln(50) ~ 5007.
  EXPECT_NEAR(static_cast<double>(p.ResolveR(50)), 5007.0, 5.0);
}

TEST(VcEstimatorTest, KappaOfSubgraphNeverExceedsTruth) {
  for (uint64_t seed = 0; seed < 3; ++seed) {
    Graph g = UnionOfHamiltonianCycles(30, 2, 30 + seed);
    size_t truth = VertexConnectivity(g);
    VcEstimator est(30, TestParams(2, 1.0), 40 + seed);
    est.Process(DynamicStream::InsertOnly(g, seed));
    auto kappa = est.EstimateKappa();
    ASSERT_TRUE(kappa.ok());
    EXPECT_LE(*kappa, truth);
  }
}

TEST(VcEstimatorTest, HighlyConnectedGraphCertified) {
  // kappa(G) clearly above (1+eps)k: H should reach k.
  Graph g = UnionOfHamiltonianCycles(40, 4, 50);  // kappa well above 2(1+1)
  ASSERT_GE(VertexConnectivity(g), 5u);
  VcEstimator est(40, TestParams(2, 1.0), 51);
  est.Process(DynamicStream::InsertOnly(g, 52));
  auto at_least = est.IsAtLeastK();
  ASSERT_TRUE(at_least.ok());
  EXPECT_TRUE(*at_least);
}

TEST(VcEstimatorTest, LowConnectivityNeverCertified) {
  // kappa(G) = 1 < k = 2: IsAtLeastK must be false (one-sided guarantee,
  // holds with certainty because H is a subgraph).
  Graph g = PathGraph(30);
  VcEstimator est(30, TestParams(2, 1.0), 53);
  est.Process(DynamicStream::InsertOnly(g, 54));
  auto at_least = est.IsAtLeastK();
  ASSERT_TRUE(at_least.ok());
  EXPECT_FALSE(*at_least);
}

TEST(VcEstimatorTest, SeparatorBoundRespectedUnderChurn) {
  auto planted = PlantedSeparator(32, 2, 55);
  DynamicStream stream = DynamicStream::WithChurn(planted.graph, 150, 56);
  VcEstimator est(32, TestParams(2, 1.0), 57);
  est.Process(stream);
  auto kappa = est.EstimateKappa();
  ASSERT_TRUE(kappa.ok());
  EXPECT_LE(*kappa, 2u);  // kappa(H) <= kappa(G) = 2
}

TEST(VcEstimatorTest, UnionGraphAvailable) {
  Graph g = CycleGraph(20);
  VcEstimator est(20, TestParams(2, 1.0), 58);
  est.Process(DynamicStream::InsertOnly(g, 59));
  auto h = est.UnionGraph();
  ASSERT_TRUE(h.ok());
  for (const Edge& e : h->Edges()) EXPECT_TRUE(g.HasEdge(e));
}

}  // namespace
}  // namespace gms
