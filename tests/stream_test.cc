// Tests for the dynamic stream model and its builders.
#include <gtest/gtest.h>

#include "graph/generators.h"
#include "stream/stream.h"

namespace gms {
namespace {

TEST(StreamTest, InsertOnlyMaterializesTheGraph) {
  Graph g = ErdosRenyi(20, 0.3, 1);
  DynamicStream s = DynamicStream::InsertOnly(g, 2);
  EXPECT_TRUE(s.Validate());
  EXPECT_EQ(s.size(), g.NumEdges());
  Hypergraph back = s.Materialize(20);
  EXPECT_EQ(back.ToGraph(), g);
}

TEST(StreamTest, InsertOnlyOrderIsSeeded) {
  Graph g = ErdosRenyi(20, 0.3, 1);
  DynamicStream a = DynamicStream::InsertOnly(g, 7);
  DynamicStream b = DynamicStream::InsertOnly(g, 7);
  DynamicStream c = DynamicStream::InsertOnly(g, 8);
  EXPECT_EQ(a.updates(), b.updates());
  EXPECT_NE(a.updates(), c.updates());
}

TEST(StreamTest, ChurnLeavesFinalGraphIntact) {
  Graph g = CycleGraph(15);
  DynamicStream s = DynamicStream::WithChurn(g, /*decoys=*/50, /*seed=*/3);
  EXPECT_TRUE(s.Validate());
  EXPECT_EQ(s.size(), g.NumEdges() + 2 * 50);
  EXPECT_EQ(s.Materialize(15).ToGraph(), g);
}

TEST(StreamTest, ChurnHasInterleavedDeletes) {
  Graph g = CycleGraph(10);
  DynamicStream s = DynamicStream::WithChurn(g, 30, 4);
  bool saw_delete_before_end = false;
  for (size_t i = 0; i + 30 < s.size(); ++i) {
    if (s.updates()[i].delta < 0) saw_delete_before_end = true;
  }
  EXPECT_TRUE(saw_delete_before_end);
}

TEST(StreamTest, ChurnReportsAchievedDecoys) {
  // Sparse input: every requested decoy exists, and the out-param says so.
  Graph sparse = CycleGraph(12);
  size_t achieved = 999;
  DynamicStream s =
      DynamicStream::WithChurn(sparse, /*decoys=*/20, /*seed=*/7, &achieved);
  EXPECT_EQ(achieved, 20u);
  EXPECT_EQ(s.size(), sparse.NumEdges() + 2 * achieved);

  // Complete input: no absent edge exists, so the sampler must come up
  // empty and REPORT it instead of silently under-delivering.
  Graph dense = CompleteGraph(6);
  DynamicStream d =
      DynamicStream::WithChurn(dense, /*decoys=*/10, /*seed=*/8, &achieved);
  EXPECT_EQ(achieved, 0u);
  EXPECT_EQ(d.size(), dense.NumEdges());
  EXPECT_TRUE(d.Validate());
}

TEST(StreamTest, HypergraphChurn) {
  Hypergraph h = HyperCycle(12, 3);
  DynamicStream s = DynamicStream::WithChurn(h, 40, 3, 9);
  EXPECT_TRUE(s.Validate());
  EXPECT_EQ(s.Materialize(12), h);
}

TEST(StreamTest, InsertThenDeleteDown) {
  Graph full = CompleteGraph(8);
  Graph target = CycleGraph(8);
  DynamicStream s = DynamicStream::InsertThenDeleteDown(
      Hypergraph::FromGraph(full), Hypergraph::FromGraph(target), 5);
  EXPECT_TRUE(s.Validate());
  EXPECT_EQ(s.Materialize(8).ToGraph(), target);
  EXPECT_EQ(s.size(), full.NumEdges() + (full.NumEdges() - target.NumEdges()));
}

TEST(StreamTest, ValidateCatchesDoubleInsert) {
  DynamicStream s;
  s.Push(Hyperedge{0, 1}, +1);
  s.Push(Hyperedge{0, 1}, +1);
  EXPECT_FALSE(s.Validate());
}

TEST(StreamTest, ValidateCatchesDeleteBeforeInsert) {
  DynamicStream s;
  s.Push(Hyperedge{0, 1}, -1);
  EXPECT_FALSE(s.Validate());
}

}  // namespace
}  // namespace gms
