// Wire-format suite: every sketch type round-trips through
// Serialize/Deserialize bit-identically, SpaceBytes is the measured frame
// size, and ADVERSARIAL inputs -- truncations, single-byte corruption,
// wrong frame types, garbage -- come back as Status, never as a crash or a
// silently-wrong sketch. The asan preset runs this file unfiltered, so
// every decode path is also exercised under sanitizers.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "connectivity/k_skeleton.h"
#include "connectivity/spanning_forest_sketch.h"
#include "graph/generators.h"
#include "sketch/l0_sampler.h"
#include "sparsify/sparsifier_sketch.h"
#include "stream/stream.h"
#include "vertexconn/hyper_vc_query.h"
#include "vertexconn/vc_query_sketch.h"
#include "wire/wire.h"

namespace gms {
namespace {

DynamicStream GraphStream(size_t n, uint64_t seed) {
  Graph g = UnionOfHamiltonianCycles(n, 3, seed);
  return DynamicStream::WithChurn(g, /*decoys=*/n, seed + 1);
}

DynamicStream HypergraphStream(size_t n, size_t r, uint64_t seed) {
  Hypergraph g = HyperCycle(n, r);
  return DynamicStream::WithChurn(g, /*decoys=*/n / 2, r, seed + 1);
}

// ---------- round trips ----------

TEST(SerdeTest, L0SamplerRoundTrip) {
  L0Sampler sampler(/*domain=*/u128{1} << 40, SketchConfig::Light(), 7);
  for (uint64_t i = 0; i < 50; ++i) {
    sampler.Update((u128{i} * 977) % (u128{1} << 40), i % 3 == 0 ? -1 : +1);
  }
  std::vector<uint8_t> frame;
  sampler.Serialize(&frame);
  EXPECT_EQ(frame.size(), sampler.SpaceBytes());

  auto back = L0Sampler::Deserialize(frame);
  ASSERT_TRUE(back.ok()) << back.status().message();
  EXPECT_TRUE(back->StateEquals(sampler));
  EXPECT_EQ(back->seed(), sampler.seed());
  EXPECT_TRUE(back->domain() == sampler.domain());

  // The reconstructed sketch must BEHAVE identically, not just compare
  // equal: same sample, and identical response to further updates.
  auto a = sampler.Sample();
  auto b = back->Sample();
  ASSERT_EQ(a.ok(), b.ok());
  if (a.ok()) {
    EXPECT_TRUE(a->index == b->index);
    EXPECT_EQ(a->value, b->value);
  }
  sampler.Update(123, +1);
  back->Update(123, +1);
  EXPECT_TRUE(back->StateEquals(sampler));
}

TEST(SerdeTest, SpanningForestRoundTrip) {
  constexpr size_t kN = 64;
  ForestSketchParams params;
  params.config = SketchConfig::Light();
  SpanningForestSketch sketch(kN, 2, /*seed=*/11, params);
  sketch.Process(GraphStream(kN, 3));

  std::vector<uint8_t> frame;
  sketch.Serialize(&frame);
  EXPECT_EQ(frame.size(), sketch.SpaceBytes());

  auto back = SpanningForestSketch::Deserialize(frame);
  ASSERT_TRUE(back.ok()) << back.status().message();
  EXPECT_TRUE(back->StateEquals(sketch));
  EXPECT_EQ(back->seed(), sketch.seed());
  EXPECT_EQ(back->n(), sketch.n());
  EXPECT_EQ(back->rounds(), sketch.rounds());

  auto a = sketch.ExtractSpanningGraph();
  auto b = back->ExtractSpanningGraph();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(a.value() == b.value());
}

TEST(SerdeTest, SpanningForestActiveSubsetRoundTrip) {
  // The active bitmap must travel: a sketch over a strict vertex subset
  // (the per-player referee message shape) round-trips with the same
  // subset and cells.
  constexpr size_t kN = 40;
  std::vector<bool> active(kN, false);
  for (VertexId v = 0; v < kN; v += 3) active[v] = true;
  ForestSketchParams params;
  params.config = SketchConfig::Light();
  SpanningForestSketch sketch(kN, 2, /*seed=*/5, params, &active);

  std::vector<uint8_t> frame;
  sketch.Serialize(&frame);
  auto back = SpanningForestSketch::Deserialize(frame);
  ASSERT_TRUE(back.ok()) << back.status().message();
  EXPECT_TRUE(back->StateEquals(sketch));
  for (VertexId v = 0; v < kN; ++v) {
    EXPECT_EQ(back->IsActive(v), sketch.IsActive(v)) << "v=" << v;
  }
}

TEST(SerdeTest, KSkeletonRoundTrip) {
  constexpr size_t kN = 48;
  KSkeletonSketch::Params params;
  params.config = SketchConfig::Light();
  KSkeletonSketch sketch(kN, /*max_rank=*/3, /*k=*/3, /*seed=*/13, params);
  sketch.Process(HypergraphStream(kN, 3, 9));

  std::vector<uint8_t> frame;
  sketch.Serialize(&frame);
  EXPECT_EQ(frame.size(), sketch.SpaceBytes());

  auto back = KSkeletonSketch::Deserialize(frame);
  ASSERT_TRUE(back.ok()) << back.status().message();
  EXPECT_TRUE(back->StateEquals(sketch));
  auto a = sketch.Extract();
  auto b = back->Extract();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(a.value() == b.value());
}

TEST(SerdeTest, VcQueryRoundTrip) {
  constexpr size_t kN = 48;
  VcQueryParams params;
  params.k = 2;
  params.explicit_r = 8;
  params.forest.config = SketchConfig::Light();
  VcQuerySketch sketch(kN, params, /*seed=*/17);
  sketch.Process(GraphStream(kN, 21));

  std::vector<uint8_t> frame;
  sketch.Serialize(&frame);
  EXPECT_EQ(frame.size(), sketch.SpaceBytes());

  auto back = VcQuerySketch::Deserialize(frame);
  ASSERT_TRUE(back.ok()) << back.status().message();
  EXPECT_TRUE(back->StateEquals(sketch));
  EXPECT_EQ(back->R(), sketch.R());
  EXPECT_EQ(back->k(), sketch.k());

  auto snap = sketch.Query();
  auto back_snap = back->Query();
  ASSERT_TRUE(snap.ok());
  ASSERT_TRUE(back_snap.ok());
  EXPECT_TRUE(back_snap.value().union_graph() == snap.value().union_graph());
  for (VertexId v = 0; v < 6; ++v) {
    auto a = snap.value().Disconnects({v});
    auto b = back_snap.value().Disconnects({v});
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a.value(), b.value()) << "v=" << v;
  }
}

TEST(SerdeTest, HyperVcQueryRoundTrip) {
  constexpr size_t kN = 36;
  VcQueryParams params;
  params.k = 2;
  params.explicit_r = 6;
  params.forest.config = SketchConfig::Light();
  HyperVcQuerySketch sketch(kN, /*max_rank=*/3, params, /*seed=*/19);
  sketch.Process(HypergraphStream(kN, 3, 23));

  std::vector<uint8_t> frame;
  sketch.Serialize(&frame);
  EXPECT_EQ(frame.size(), sketch.SpaceBytes());

  auto back = HyperVcQuerySketch::Deserialize(frame);
  ASSERT_TRUE(back.ok()) << back.status().message();
  EXPECT_TRUE(back->StateEquals(sketch));
  auto snap = sketch.Query();
  auto back_snap = back->Query();
  ASSERT_TRUE(snap.ok());
  ASSERT_TRUE(back_snap.ok());
  EXPECT_TRUE(back_snap.value().union_graph() == snap.value().union_graph());
}

TEST(SerdeTest, SparsifierRoundTrip) {
  constexpr size_t kN = 32;
  SparsifierParams params;
  params.k = 3;
  params.levels = 8;
  params.forest.config = SketchConfig::Light();
  HypergraphSparsifierSketch sketch(kN, /*max_rank=*/3, params, /*seed=*/29);
  sketch.Process(HypergraphStream(kN, 3, 31));

  std::vector<uint8_t> frame;
  sketch.Serialize(&frame);
  EXPECT_EQ(frame.size(), sketch.SpaceBytes());

  auto back = HypergraphSparsifierSketch::Deserialize(frame);
  ASSERT_TRUE(back.ok()) << back.status().message();
  EXPECT_TRUE(back->StateEquals(sketch));
  EXPECT_EQ(back->levels(), sketch.levels());
  EXPECT_EQ(back->k(), sketch.k());

  auto a = sketch.ExtractSparsifier();
  auto b = back->ExtractSparsifier();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->level_sizes, b->level_sizes);
}

TEST(SerdeTest, EmptySketchRoundTrips) {
  // The empty-stream measurement is a valid frame too.
  ForestSketchParams params;
  params.config = SketchConfig::Light();
  SpanningForestSketch sketch(16, 2, /*seed=*/1, params);
  std::vector<uint8_t> frame;
  sketch.Serialize(&frame);
  auto back = SpanningForestSketch::Deserialize(frame);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->StateEquals(sketch));
}

// ---------- adversarial decode ----------

// A small forest frame for corruption sweeps (every byte gets flipped, so
// keep it compact).
std::vector<uint8_t> SmallForestFrame() {
  ForestSketchParams params;
  params.config = SketchConfig{/*sparse_capacity=*/2, /*rows=*/2,
                               /*buckets_per_capacity=*/2,
                               /*extra_boruvka_rounds=*/0};
  params.rounds = 2;
  SpanningForestSketch sketch(8, 2, /*seed=*/3, params);
  sketch.Process(DynamicStream::InsertOnly(CycleGraph(8), 4));
  std::vector<uint8_t> frame;
  sketch.Serialize(&frame);
  return frame;
}

TEST(SerdeAdversarialTest, TruncatedBufferIsStatusNotCrash) {
  std::vector<uint8_t> frame = SmallForestFrame();
  // EVERY proper prefix must be rejected -- the preamble, the header, the
  // payload, and the checksum are all length-guarded.
  for (size_t len = 0; len < frame.size(); ++len) {
    auto r = SpanningForestSketch::Deserialize(
        std::span<const uint8_t>(frame.data(), len));
    EXPECT_FALSE(r.ok()) << "accepted a " << len << "-byte prefix of a "
                         << frame.size() << "-byte frame";
  }
}

TEST(SerdeAdversarialTest, EveryByteFlipIsDetected) {
  std::vector<uint8_t> frame = SmallForestFrame();
  // FNV-1a's per-byte step is a bijection of the running hash, so ANY
  // single-byte difference -- in the preamble, header, payload, or the
  // stored checksum itself -- must surface as a Status.
  for (size_t i = 0; i < frame.size(); ++i) {
    std::vector<uint8_t> corrupt = frame;
    corrupt[i] ^= 0x5A;
    auto r = SpanningForestSketch::Deserialize(corrupt);
    EXPECT_FALSE(r.ok()) << "accepted a frame with byte " << i << " flipped";
  }
}

TEST(SerdeAdversarialTest, TrailingGarbageIsRejected) {
  std::vector<uint8_t> frame = SmallForestFrame();
  frame.push_back(0x00);
  EXPECT_FALSE(SpanningForestSketch::Deserialize(frame).ok());
}

TEST(SerdeAdversarialTest, WrongFrameTypeIsRejected) {
  // A perfectly valid L0 frame handed to every OTHER decoder must be a
  // clean Status (frame type is checked after the checksum, so this is the
  // "right bytes, wrong door" case, not corruption).
  L0Sampler sampler(1 << 20, SketchConfig::Light(), 7);
  sampler.Update(5, +1);
  std::vector<uint8_t> frame;
  sampler.Serialize(&frame);
  EXPECT_TRUE(L0Sampler::Deserialize(frame).ok());
  EXPECT_FALSE(SpanningForestSketch::Deserialize(frame).ok());
  EXPECT_FALSE(KSkeletonSketch::Deserialize(frame).ok());
  EXPECT_FALSE(VcQuerySketch::Deserialize(frame).ok());
  EXPECT_FALSE(HyperVcQuerySketch::Deserialize(frame).ok());
  EXPECT_FALSE(HypergraphSparsifierSketch::Deserialize(frame).ok());
}

TEST(SerdeAdversarialTest, GarbageBuffersAreRejected) {
  EXPECT_FALSE(SpanningForestSketch::Deserialize({}).ok());
  std::vector<uint8_t> zeros(64, 0);
  EXPECT_FALSE(SpanningForestSketch::Deserialize(zeros).ok());
  std::vector<uint8_t> noise;
  uint32_t x = 0x12345678;
  for (int i = 0; i < 256; ++i) {
    x = x * 1664525u + 1013904223u;
    noise.push_back(static_cast<uint8_t>(x >> 24));
  }
  EXPECT_FALSE(SpanningForestSketch::Deserialize(noise).ok());
  EXPECT_FALSE(L0Sampler::Deserialize(noise).ok());
}

TEST(SerdeAdversarialTest, MergeSeedMismatchIsStatus) {
  // Same shapes, different seed = a DIFFERENT measurement; merging must
  // refuse for every sketch type and leave the target untouched.
  ForestSketchParams fp;
  fp.config = SketchConfig::Light();
  SpanningForestSketch f1(16, 2, /*seed=*/1, fp);
  SpanningForestSketch f2(16, 2, /*seed=*/2, fp);
  SpanningForestSketch f1_before = f1;
  EXPECT_FALSE(f1.MergeFrom(f2).ok());
  EXPECT_TRUE(f1.StateEquals(f1_before));

  L0Sampler s1(1 << 16, SketchConfig::Light(), 1);
  L0Sampler s2(1 << 16, SketchConfig::Light(), 2);
  EXPECT_FALSE(s1.MergeFrom(s2).ok());

  KSkeletonSketch k1(16, 2, 2, /*seed=*/1, fp);
  KSkeletonSketch k2(16, 2, 2, /*seed=*/2, fp);
  EXPECT_FALSE(k1.MergeFrom(k2).ok());

  VcQueryParams vp;
  vp.k = 2;
  vp.explicit_r = 4;
  vp.forest.config = SketchConfig::Light();
  VcQuerySketch v1(16, vp, /*seed=*/1);
  VcQuerySketch v2(16, vp, /*seed=*/2);
  EXPECT_FALSE(v1.MergeFrom(v2).ok());

  HyperVcQuerySketch h1(16, 3, vp, /*seed=*/1);
  HyperVcQuerySketch h2(16, 3, vp, /*seed=*/2);
  EXPECT_FALSE(h1.MergeFrom(h2).ok());

  SparsifierParams sp;
  sp.k = 2;
  sp.levels = 4;
  sp.forest.config = SketchConfig::Light();
  HypergraphSparsifierSketch p1(16, 3, sp, /*seed=*/1);
  HypergraphSparsifierSketch p2(16, 3, sp, /*seed=*/2);
  EXPECT_FALSE(p1.MergeFrom(p2).ok());
}

TEST(SerdeAdversarialTest, MergeShapeMismatchIsStatus) {
  ForestSketchParams fp;
  fp.config = SketchConfig::Light();
  // Different n.
  SpanningForestSketch a(16, 2, 1, fp);
  SpanningForestSketch b(32, 2, 1, fp);
  EXPECT_FALSE(a.MergeFrom(b).ok());
  // Different rounds.
  ForestSketchParams fp5 = fp;
  fp5.rounds = 5;
  SpanningForestSketch c(16, 2, 1, fp5);
  EXPECT_FALSE(a.MergeFrom(c).ok());
  // Different config (cell geometry).
  ForestSketchParams fpd;
  fpd.config = SketchConfig::Default();
  SpanningForestSketch d(16, 2, 1, fpd);
  EXPECT_FALSE(a.MergeFrom(d).ok());
  // Active-set violation: other active at a vertex this sketch is not.
  std::vector<bool> evens(16, false), odds(16, false);
  for (VertexId v = 0; v < 16; ++v) (v % 2 == 0 ? evens : odds)[v] = true;
  SpanningForestSketch e(16, 2, 1, fp, &evens);
  SpanningForestSketch o(16, 2, 1, fp, &odds);
  EXPECT_FALSE(e.MergeFrom(o).ok());
  // ...but the subset direction is exactly the referee's merge and works.
  SpanningForestSketch full(16, 2, 1, fp);
  EXPECT_TRUE(full.MergeFrom(e).ok());
  EXPECT_TRUE(full.MergeFrom(o).ok());
}

TEST(SerdeAdversarialTest, HeaderShapeFieldsAreRangeChecked) {
  // Hand-build a frame whose header claims an absurd shape; the decoder
  // must bound-check BEFORE allocating, returning Status rather than
  // attempting a huge construction. (The checksum is recomputed, so this
  // is a well-formed frame carrying hostile values.)
  std::vector<uint8_t> frame;
  {
    wire::FrameBuilder fb(wire::FrameType::kL0Sampler, &frame);
    fb.writer().U128(u128{1} << 127);  // domain >= 2^126: out of range
    fb.writer().U64(7);
    WriteSketchConfig(SketchConfig::Light(), &fb.writer());
    fb.EndHeader();
    fb.Finish();
  }
  auto r = L0Sampler::Deserialize(frame);
  EXPECT_FALSE(r.ok());

  frame.clear();
  {
    wire::FrameBuilder fb(wire::FrameType::kL0Sampler, &frame);
    fb.writer().U128(u128{1} << 20);
    fb.writer().U64(7);
    SketchConfig hostile = SketchConfig::Light();
    hostile.rows = 1000;  // > kMaxSketchRows
    WriteSketchConfig(hostile, &fb.writer());
    fb.EndHeader();
    fb.Finish();
  }
  EXPECT_FALSE(L0Sampler::Deserialize(frame).ok());
}

TEST(SerdeAdversarialTest, PayloadSizeMismatchIsStatus) {
  // A valid header with a short payload (whole missing words, so the frame
  // itself is well-formed) must be caught by the payload size check.
  L0Sampler sampler(1 << 16, SketchConfig::Light(), 9);
  std::vector<uint8_t> frame;
  {
    wire::FrameBuilder fb(wire::FrameType::kL0Sampler, &frame);
    fb.writer().U128(u128{1} << 16);
    fb.writer().U64(9);
    WriteSketchConfig(SketchConfig::Light(), &fb.writer());
    fb.EndHeader();
    fb.writer().U64(0);  // one word where state_.NumWords() are expected
    fb.Finish();
  }
  EXPECT_FALSE(L0Sampler::Deserialize(frame).ok());
}

TEST(SerdeAdversarialTest, FrameLengthOverflowIsRejected) {
  // header_len + payload_len must not be summed in u64: pick lengths whose
  // sum WRAPS to the true content size (header_len = content + 1,
  // payload_len = 2^64 - 1), recompute the checksum so the frame is
  // otherwise pristine, and require a clean Status. The unfixed parser
  // accepted this and built a header span running off the buffer.
  std::vector<uint8_t> frame = SmallForestFrame();
  ASSERT_GT(frame.size(), 28u);
  const uint64_t content = frame.size() - 28;  // preamble 20 + checksum 8
  const uint32_t bad_header_len = static_cast<uint32_t>(content + 1);
  const uint64_t bad_payload_len = ~uint64_t{0};
  std::memcpy(frame.data() + 8, &bad_header_len, 4);
  std::memcpy(frame.data() + 12, &bad_payload_len, 8);
  const uint64_t sum = wire::Checksum(frame.data(), frame.size() - 8);
  std::memcpy(frame.data() + frame.size() - 8, &sum, 8);
  EXPECT_FALSE(SpanningForestSketch::Deserialize(frame).ok());
}

TEST(SerdeAdversarialTest, ShapeProductBombsAreRejectedBeforeAllocation) {
  // Every shape field individually in range, but the PRODUCT implies a
  // multi-terabyte sketch. The frames are well-formed (FrameBuilder
  // checksums them) with EMPTY payloads, so acceptance would mean the
  // decoder committed to the allocation before comparing sizes. All four
  // container decoders must refuse -- and quickly (no per-cell work).
  ForestSketchParams fp;
  fp.config = SketchConfig::Light();
  fp.rounds = 4;

  std::vector<uint8_t> frame;
  {
    wire::FrameBuilder fb(wire::FrameType::kKSkeleton, &frame);
    fb.writer().U64(uint64_t{1} << 32);  // n
    fb.writer().U64(2);                  // max_rank
    fb.writer().U64(uint64_t{1} << 20);  // k
    fb.writer().U64(7);                  // seed
    WriteForestParams(fp, &fb.writer());
    fb.EndHeader();
    fb.Finish();
  }
  EXPECT_FALSE(KSkeletonSketch::Deserialize(frame).ok());

  frame.clear();
  {
    wire::FrameBuilder fb(wire::FrameType::kSparsifier, &frame);
    fb.writer().U64(uint64_t{1} << 32);  // n
    fb.writer().U64(2);                  // max_rank
    fb.writer().U64(uint64_t{1} << 16);  // levels
    fb.writer().U64(uint64_t{1} << 24);  // k
    fb.writer().U64(7);                  // seed
    WriteForestParams(fp, &fb.writer());
    fb.EndHeader();
    fb.Finish();
  }
  EXPECT_FALSE(HypergraphSparsifierSketch::Deserialize(frame).ok());

  frame.clear();
  {
    wire::FrameBuilder fb(wire::FrameType::kVcQuery, &frame);
    fb.writer().U64(uint64_t{1} << 32);  // n
    fb.writer().U64(uint64_t{1} << 20);  // k
    fb.writer().U64(uint64_t{1} << 24);  // R
    fb.writer().U64(7);                  // seed
    WriteForestParams(fp, &fb.writer());
    fb.EndHeader();
    fb.Finish();
  }
  EXPECT_FALSE(VcQuerySketch::Deserialize(frame).ok());

  frame.clear();
  {
    wire::FrameBuilder fb(wire::FrameType::kHyperVcQuery, &frame);
    fb.writer().U64(uint64_t{1} << 32);  // n
    fb.writer().U64(3);                  // max_rank
    fb.writer().U64(uint64_t{1} << 20);  // k
    fb.writer().U64(uint64_t{1} << 24);  // R
    fb.writer().U64(7);                  // seed
    WriteForestParams(fp, &fb.writer());
    fb.EndHeader();
    fb.Finish();
  }
  EXPECT_FALSE(HyperVcQuerySketch::Deserialize(frame).ok());
}

TEST(SerdeAdversarialTest, SubsampledPayloadSizeIsValidatedByReplay) {
  // A subsampled sketch's payload size depends on the seeded kept-bitmaps,
  // not the header fields alone; the decoder must replay the draws and
  // reject a modest, fully in-range shape whose payload is missing.
  ForestSketchParams fp;
  fp.config = SketchConfig::Light();
  fp.rounds = 3;
  std::vector<uint8_t> frame;
  {
    wire::FrameBuilder fb(wire::FrameType::kVcQuery, &frame);
    fb.writer().U64(64);  // n
    fb.writer().U64(2);   // k
    fb.writer().U64(4);   // R
    fb.writer().U64(17);  // seed
    WriteForestParams(fp, &fb.writer());
    fb.EndHeader();
    fb.Finish();  // empty payload; the replayed shape implies far more
  }
  ASSERT_GT(CountKeptVertices(/*seed=*/17, /*n=*/64, /*k=*/2, /*r=*/4), 0u);
  EXPECT_FALSE(VcQuerySketch::Deserialize(frame).ok());
}

TEST(SerdeAdversarialTest, L0ConfigProductBombIsRejected) {
  // sparse_capacity and buckets_per_capacity each pass their individual
  // bounds, but their product (the per-row bucket count) is 2^40 -- enough
  // to overflow int in BucketsPerRow. ReadSketchConfig must cap the
  // product itself.
  std::vector<uint8_t> frame;
  {
    wire::FrameBuilder fb(wire::FrameType::kL0Sampler, &frame);
    fb.writer().U128(u128{1} << 20);
    fb.writer().U64(7);
    SketchConfig hostile{/*sparse_capacity=*/1 << 20, /*rows=*/1,
                         /*buckets_per_capacity=*/1 << 20,
                         /*extra_boruvka_rounds=*/0};
    WriteSketchConfig(hostile, &fb.writer());
    fb.EndHeader();
    fb.Finish();
  }
  EXPECT_FALSE(L0Sampler::Deserialize(frame).ok());
}

TEST(SerdeAdversarialTest, L0MergeConfigMismatchIsStatus) {
  // Two configs with DIFFERENT geometry but an identical total word count:
  // (cap 2, rows 2, buckets/cap 2) and (cap 2, rows 4, buckets/cap 1) both
  // come to 8 cells per level. Equal seed + domain + NumWords used to slip
  // through MergeFrom; the configs are different measurements.
  SketchConfig a{/*sparse_capacity=*/2, /*rows=*/2, /*buckets_per_capacity=*/2,
                 /*extra_boruvka_rounds=*/0};
  SketchConfig b{/*sparse_capacity=*/2, /*rows=*/4, /*buckets_per_capacity=*/1,
                 /*extra_boruvka_rounds=*/0};
  L0Sampler sa(u128{1} << 16, a, /*seed=*/5);
  L0Sampler sb(u128{1} << 16, b, /*seed=*/5);
  ASSERT_EQ(sa.state().NumWords(), sb.state().NumWords());
  EXPECT_FALSE(sa.MergeFrom(sb).ok());
}

TEST(SerdeTest, ShapeImpliedSizesMatchConstructedSketches) {
  // The arithmetic the deserializers trust must agree with what the
  // constructors actually build, or valid frames would be rejected.
  const SketchConfig config = SketchConfig::Light();
  const u128 domain = u128{1} << 40;
  L0Sampler sampler(domain, config, /*seed=*/3);
  EXPECT_EQ(L0StateWords(domain, config), sampler.state().NumWords());

  ForestSketchParams fp;
  fp.config = config;
  fp.rounds = 5;
  constexpr size_t kN = 24;
  SpanningForestSketch forest(kN, /*max_rank=*/3, /*seed=*/3, fp);
  auto words = ForestStateWords(kN, /*max_rank=*/3, config);
  ASSERT_TRUE(words.ok());
  EXPECT_EQ(*words * 5 * kN * sizeof(uint64_t), forest.MemoryBytes());
}

}  // namespace
}  // namespace gms
