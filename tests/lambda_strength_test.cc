// Tests for lambda_e, the light-edge decompositions, and Lemma 16's
// strength characterization.
#include <gtest/gtest.h>

#include <algorithm>

#include "exact/lambda.h"
#include "exact/stoer_wagner.h"
#include "exact/strength.h"
#include "graph/generators.h"
#include "graph/traversal.h"

namespace gms {
namespace {

TEST(LambdaTest, PathEdgesAreBridges) {
  Graph g = PathGraph(6);
  for (const Edge& e : g.Edges()) {
    EXPECT_EQ(EdgeLambda(g, e), 1);
  }
}

TEST(LambdaTest, CycleEdgesHaveLambdaTwo) {
  Graph g = CycleGraph(7);
  for (const Edge& e : g.Edges()) {
    EXPECT_EQ(EdgeLambda(g, e), 2);
  }
}

TEST(LambdaTest, CompleteGraph) {
  Graph g = CompleteGraph(6);
  for (const Edge& e : g.Edges()) {
    EXPECT_EQ(EdgeLambda(g, e), 5);  // min cut isolating an endpoint
  }
}

TEST(LambdaTest, LimitCaps) {
  Graph g = CompleteGraph(8);
  Edge e(0, 1);
  EXPECT_EQ(EdgeLambda(g, e, 3), 3);
}

TEST(LambdaTest, HyperedgeLambdaOnHyperCycle) {
  Hypergraph h = HyperCycle(8, 3);
  for (const auto& e : h.Edges()) {
    int64_t lam = HyperedgeLambda(h, e);
    // Every hyperedge of the 3-uniform hyper-cycle sits in a cut of size 2
    // obtained by cutting the ring at two places.
    EXPECT_GE(lam, 2);
    EXPECT_LE(lam, 3);
  }
}

TEST(LambdaTest, HyperedgeLambdaBridge) {
  Hypergraph h(7);
  h.AddEdge(Hyperedge{0, 1, 2});
  h.AddEdge(Hyperedge{0, 1});
  h.AddEdge(Hyperedge{2, 3});  // bridge hyperedge
  h.AddEdge(Hyperedge{3, 4, 5});
  h.AddEdge(Hyperedge{4, 5, 6});
  EXPECT_EQ(HyperedgeLambda(h, Hyperedge{2, 3}), 1);
}

TEST(LambdaTest, MinHyperedgeCutBetweenLawler) {
  // Two triangles joined by two parallel-ish hyperedges.
  Hypergraph h(6);
  h.AddEdge(Hyperedge{0, 1, 2});
  h.AddEdge(Hyperedge{3, 4, 5});
  h.AddEdge(Hyperedge{0, 3});
  h.AddEdge(Hyperedge{1, 4});
  // Isolating 5 cuts only {3,4,5}: the min 0-5 cut is 1.
  EXPECT_EQ(MinHyperedgeCutBetween(h, 0, 5), 1);
  // Separating 0 from 1 costs {0,1,2} plus one of the connectors.
  EXPECT_EQ(MinHyperedgeCutBetween(h, 0, 1), 2);
  EXPECT_EQ(MinHyperedgeCutBetween(h, 0, 4), 2);
}

TEST(OfflineLightTest, TreePlusCliqueDecomposes) {
  // A 5-clique with a pendant path: path edges are 1-light, clique is not.
  Graph g(8);
  for (VertexId i = 0; i < 5; ++i) {
    for (VertexId j = i + 1; j < 5; ++j) g.AddEdge(i, j);
  }
  g.AddEdge(4, 5);
  g.AddEdge(5, 6);
  g.AddEdge(6, 7);
  auto light1 = OfflineLightEdges(Hypergraph::FromGraph(g), 1);
  EXPECT_EQ(light1.light.NumEdges(), 3u);
  EXPECT_EQ(light1.residual.NumEdges(), 10u);
  // With k = 4 everything peels (clique edges have lambda 4).
  auto light4 = OfflineLightEdges(Hypergraph::FromGraph(g), 4);
  EXPECT_EQ(light4.light.NumEdges(), g.NumEdges());
  EXPECT_EQ(light4.residual.NumEdges(), 0u);
}

TEST(OfflineLightTest, LayersCascade) {
  // Two triangles joined by one bridge: the bridge is E_1 at k=2, then the
  // triangles STAY (each triangle edge has lambda 2 <= 2)... with k=1 only
  // the bridge peels and nothing else follows.
  Graph g(6);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(0, 2);
  g.AddEdge(3, 4);
  g.AddEdge(4, 5);
  g.AddEdge(3, 5);
  g.AddEdge(2, 3);
  auto light1 = OfflineLightEdges(Hypergraph::FromGraph(g), 1);
  EXPECT_EQ(light1.light.NumEdges(), 1u);  // just the bridge
  auto light2 = OfflineLightEdges(Hypergraph::FromGraph(g), 2);
  EXPECT_EQ(light2.light.NumEdges(), 7u);  // everything
  EXPECT_GE(light2.layers.size(), 1u);
}

TEST(StrengthTest, BridgeAndCliqueStrengths) {
  // 4-clique -- bridge -- 4-clique.
  Graph g(8);
  for (VertexId base : {VertexId{0}, VertexId{4}}) {
    for (VertexId i = 0; i < 4; ++i) {
      for (VertexId j = i + 1; j < 4; ++j) {
        g.AddEdge(base + i, base + j);
      }
    }
  }
  g.AddEdge(3, 4);
  auto strengths = GraphStrengths(g);
  EXPECT_EQ(strengths[Edge(3, 4)], 1);
  EXPECT_EQ(strengths[Edge(0, 1)], 3);  // inside a 3-connected clique
  EXPECT_EQ(strengths[Edge(5, 6)], 3);
}

TEST(StrengthTest, EveryEdgeAssignedOnRandomGraphs) {
  for (uint64_t seed = 0; seed < 5; ++seed) {
    Graph g = ErdosRenyi(14, 0.3, 700 + seed);
    auto strengths = GraphStrengths(g);
    EXPECT_EQ(strengths.size(), g.NumEdges());
    for (const auto& [e, s] : strengths) {
      EXPECT_GE(s, 1);
      // Strength is at most lambda_e (the induced subgraph containing e is
      // cut by any cut containing e).
      EXPECT_LE(s, EdgeLambda(g, e));
    }
  }
}

// Lemma 16: light_k(G) = { e : strength k_e <= k }, cross-validated on
// random graphs across k.
class Lemma16Sweep
    : public ::testing::TestWithParam<std::tuple<uint64_t, size_t>> {};

TEST_P(Lemma16Sweep, LightEqualsLowStrength) {
  auto [seed, k] = GetParam();
  Graph g = ErdosRenyi(13, 0.35, 800 + seed);
  auto by_definition = OfflineLightEdges(Hypergraph::FromGraph(g), k);
  std::vector<Edge> def_edges;
  for (const auto& he : by_definition.light.Edges()) {
    def_edges.push_back(he.AsEdge());
  }
  std::sort(def_edges.begin(), def_edges.end());
  auto by_strength = LightEdgesViaStrength(g, k);
  EXPECT_EQ(def_edges, by_strength) << "seed=" << seed << " k=" << k;
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndK, Lemma16Sweep,
    ::testing::Combine(::testing::Values(0u, 1u, 2u, 3u, 4u),
                       ::testing::Values(size_t{1}, size_t{2}, size_t{3})));

TEST(OfflineLightTest, HypergraphDecomposition) {
  auto planted = PlantedHypergraphCut(14, 3, 2, 12, 44);
  // k = 2: the two crossing hyperedges are light (they sit in the planted
  // cut of size 2); the dense sides have min cut > 2 internally... they may
  // partially peel, but the residual must have all components with min cut
  // > 2. Verify the defining property of the residual instead of counts.
  auto light = OfflineLightEdges(planted.hypergraph, 2);
  for (const auto& e : light.residual.Edges()) {
    EXPECT_GT(HyperedgeLambda(light.residual, e), 2);
  }
  // Union of light + residual = original.
  EXPECT_EQ(light.light.NumEdges() + light.residual.NumEdges(),
            planted.hypergraph.NumEdges());
}

}  // namespace
}  // namespace gms
