// Cross-cutting property tests on the sketching stack: linearity (update
// order irrelevance, insert/delete cancellation, state addition =
// input union), determinism in the seed, and measurement-sharing across
// copies. These are the algebraic facts every theorem in the paper builds
// on, checked over parameterized seed sweeps.
#include <gtest/gtest.h>

#include <tuple>

#include "connectivity/k_skeleton.h"
#include "connectivity/spanning_forest_sketch.h"
#include "graph/generators.h"
#include "graph/traversal.h"
#include "sketch/l0_sampler.h"
#include "stream/stream.h"
#include "util/random.h"

namespace gms {
namespace {

class SeedSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SeedSweep, ForestSketchIsOrderInvariant) {
  uint64_t seed = GetParam();
  Graph g = ErdosRenyi(20, 0.25, seed);
  SpanningForestSketch a(20, 2, 4242);
  SpanningForestSketch b(20, 2, 4242);
  a.Process(DynamicStream::InsertOnly(g, seed + 1));
  b.Process(DynamicStream::InsertOnly(g, seed + 2));  // different order
  auto ra = a.ExtractSpanningGraph();
  auto rb = b.ExtractSpanningGraph();
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  EXPECT_TRUE(*ra == *rb);  // same final vector -> identical state
}

TEST_P(SeedSweep, ForestSketchChurnEqualsDirect) {
  uint64_t seed = GetParam();
  Graph g = UnionOfHamiltonianCycles(18, 2, seed);
  SpanningForestSketch direct(18, 2, 999);
  SpanningForestSketch churned(18, 2, 999);
  direct.Process(DynamicStream::InsertOnly(g, seed));
  churned.Process(DynamicStream::WithChurn(g, 60, seed));
  auto rd = direct.ExtractSpanningGraph();
  auto rc = churned.ExtractSpanningGraph();
  ASSERT_TRUE(rd.ok());
  ASSERT_TRUE(rc.ok());
  EXPECT_TRUE(*rd == *rc);  // cancelled decoys leave no trace
}

TEST_P(SeedSweep, L0StateAdditionEqualsUnionStream) {
  uint64_t seed = GetParam();
  L0Shape shape(1 << 20, SketchConfig::Default(), 777);
  L0State a(&shape), b(&shape), whole(&shape);
  Rng rng(seed);
  for (int i = 0; i < 300; ++i) {
    u128 idx = rng.Below(1 << 20);
    int64_t delta = rng.Bernoulli(0.5) ? 1 : -1;
    whole.Update(idx, delta);
    (i % 2 == 0 ? a : b).Update(idx, delta);
  }
  a.Add(b);
  // Identical states sample identically (decode is deterministic).
  auto sa = a.Sample();
  auto sw = whole.Sample();
  EXPECT_EQ(sa.ok(), sw.ok());
  if (sa.ok() && sw.ok()) {
    EXPECT_EQ(sa->index, sw->index);
    EXPECT_EQ(sa->value, sw->value);
  }
}

TEST_P(SeedSweep, SkeletonSubtractionEqualsNeverInserted) {
  uint64_t seed = GetParam();
  Graph g = ErdosRenyi(16, 0.3, seed);
  auto edges = g.Edges();
  if (edges.size() < 4) return;
  // Remove a few edges linearly vs never inserting them.
  std::vector<Hyperedge> removed = {Hyperedge(edges[0]), Hyperedge(edges[2])};
  KSkeletonSketch full(16, 2, 2, 31337);
  KSkeletonSketch partial(16, 2, 2, 31337);
  for (const Edge& e : edges) {
    full.Update(Hyperedge(e), +1);
    bool skip = false;
    for (const auto& r : removed) skip |= (Hyperedge(e) == r);
    if (!skip) partial.Update(Hyperedge(e), +1);
  }
  full.RemoveHyperedges(removed);
  auto rf = full.Extract();
  auto rp = partial.Extract();
  ASSERT_TRUE(rf.ok());
  ASSERT_TRUE(rp.ok());
  EXPECT_TRUE(*rf == *rp);
}

TEST_P(SeedSweep, SketchCopiesShareTheMeasurement) {
  uint64_t seed = GetParam();
  SpanningForestSketch original(14, 2, seed * 3 + 1);
  Graph g = CycleGraph(14);
  original.Process(DynamicStream::InsertOnly(g, seed));
  SpanningForestSketch copy = original;  // shares shapes
  copy.RemoveHyperedges({Hyperedge{0, 1}});
  copy.Update(Hyperedge{0, 1}, +1);  // undo on the copy
  auto ro = original.ExtractSpanningGraph();
  auto rc = copy.ExtractSpanningGraph();
  ASSERT_TRUE(ro.ok());
  ASSERT_TRUE(rc.ok());
  EXPECT_TRUE(*ro == *rc);
}

TEST_P(SeedSweep, DifferentSeedsDifferentMeasurements) {
  uint64_t seed = GetParam();
  // Two sketches with different seeds are allowed to decode different
  // (both valid) spanning graphs of a cycle; at minimum their internal
  // measurement must differ, which we observe via memory-identical inputs
  // giving different forests at least sometimes. Here we only assert both
  // decode valid spanning graphs.
  Graph g = CycleGraph(12);
  SpanningForestSketch a(12, 2, seed * 2 + 1);
  SpanningForestSketch b(12, 2, seed * 2 + 2);
  a.Process(DynamicStream::InsertOnly(g, 1));
  b.Process(DynamicStream::InsertOnly(g, 1));
  auto ra = a.ExtractSpanningGraph();
  auto rb = b.ExtractSpanningGraph();
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  EXPECT_TRUE(IsConnected(*ra));
  EXPECT_TRUE(IsConnected(*rb));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u));

TEST(SketchPropertyTest, EmptyPlusEmptyIsEmpty) {
  L0Shape shape(1000, SketchConfig::Default(), 1);
  L0State a(&shape), b(&shape);
  a.Add(b);
  EXPECT_TRUE(a.IsZero());
}

TEST(SketchPropertyTest, NegatedStateCancelsViaAddition) {
  L0Shape shape(1 << 16, SketchConfig::Default(), 2);
  L0State pos(&shape), neg(&shape);
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    u128 idx = rng.Below(1 << 16);
    pos.Update(idx, 2);
    neg.Update(idx, -2);
  }
  pos.Add(neg);
  EXPECT_TRUE(pos.IsZero());
}

}  // namespace
}  // namespace gms
