// Cross-cutting property tests on the sketching stack: linearity (update
// order irrelevance, insert/delete cancellation, state addition =
// input union), determinism in the seed, and measurement-sharing across
// copies. These are the algebraic facts every theorem in the paper builds
// on, checked over parameterized seed sweeps.
//
// Streams come from testkit::StreamSpec, so every instance here is named
// by the same one-line spec format the oracle sweeps and the shrinker
// print: a failure in this file is reproducible from its spec string alone.
#include <gtest/gtest.h>

#include <tuple>

#include "connectivity/k_skeleton.h"
#include "connectivity/spanning_forest_sketch.h"
#include "graph/traversal.h"
#include "sketch/l0_sampler.h"
#include "stream/stream.h"
#include "testkit/stream_spec.h"
#include "util/random.h"

namespace gms {
namespace {

using testkit::BuiltStream;
using testkit::Churn;
using testkit::Family;
using testkit::StreamSpec;

class SeedSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SeedSweep, ForestSketchIsOrderInvariant) {
  uint64_t seed = GetParam();
  StreamSpec spec;
  spec.family = Family::kErdosRenyi;
  spec.n = 20;
  spec.p = 0.25;
  spec.gseed = seed;
  spec.sseed = seed + 1;
  StreamSpec reordered = spec;
  reordered.sseed = seed + 2;  // same final graph, different order
  SCOPED_TRACE(spec.ToString());
  SpanningForestSketch a(20, 2, 4242);
  SpanningForestSketch b(20, 2, 4242);
  a.Process(spec.Build().stream);
  b.Process(reordered.Build().stream);
  auto ra = a.ExtractSpanningGraph();
  auto rb = b.ExtractSpanningGraph();
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  EXPECT_TRUE(*ra == *rb);  // same final vector -> identical state
}

TEST_P(SeedSweep, ForestSketchChurnEqualsDirect) {
  uint64_t seed = GetParam();
  StreamSpec spec;
  spec.family = Family::kExpander;  // UnionOfHamiltonianCycles(n, k, gseed)
  spec.n = 18;
  spec.k = 2;
  spec.gseed = seed;
  spec.sseed = seed;
  StreamSpec churned = spec;
  churned.churn = Churn::kWithChurn;
  churned.decoys = 60;
  SCOPED_TRACE(churned.ToString());
  SpanningForestSketch direct(18, 2, 999);
  SpanningForestSketch with_churn(18, 2, 999);
  direct.Process(spec.Build().stream);
  with_churn.Process(churned.Build().stream);
  auto rd = direct.ExtractSpanningGraph();
  auto rc = with_churn.ExtractSpanningGraph();
  ASSERT_TRUE(rd.ok());
  ASSERT_TRUE(rc.ok());
  EXPECT_TRUE(*rd == *rc);  // cancelled decoys leave no trace
}

TEST_P(SeedSweep, L0StateAdditionEqualsUnionStream) {
  uint64_t seed = GetParam();
  L0Shape shape(1 << 20, SketchConfig::Default(), 777);
  L0State a(&shape), b(&shape), whole(&shape);
  Rng rng(seed);
  for (int i = 0; i < 300; ++i) {
    u128 idx = rng.Below(1 << 20);
    int64_t delta = rng.Bernoulli(0.5) ? 1 : -1;
    whole.Update(idx, delta);
    (i % 2 == 0 ? a : b).Update(idx, delta);
  }
  a.Add(b);
  // Identical states sample identically (decode is deterministic).
  auto sa = a.Sample();
  auto sw = whole.Sample();
  EXPECT_EQ(sa.ok(), sw.ok());
  if (sa.ok() && sw.ok()) {
    EXPECT_EQ(sa->index, sw->index);
    EXPECT_EQ(sa->value, sw->value);
  }
}

TEST_P(SeedSweep, SkeletonSubtractionEqualsNeverInserted) {
  uint64_t seed = GetParam();
  StreamSpec spec;
  spec.family = Family::kErdosRenyi;
  spec.n = 16;
  spec.p = 0.3;
  spec.gseed = seed;
  SCOPED_TRACE(spec.ToString());
  const Hypergraph g = spec.Build().final_graph;
  auto edges = g.Edges();
  if (edges.size() < 4) return;
  // Remove a few edges linearly vs never inserting them.
  std::vector<Hyperedge> removed = {edges[0], edges[2]};
  KSkeletonSketch full(16, 2, 2, 31337);
  KSkeletonSketch partial(16, 2, 2, 31337);
  for (const Hyperedge& e : edges) {
    full.Update(e, +1);
    bool skip = false;
    for (const auto& r : removed) skip |= (e == r);
    if (!skip) partial.Update(e, +1);
  }
  full.RemoveHyperedges(removed);
  auto rf = full.Extract();
  auto rp = partial.Extract();
  ASSERT_TRUE(rf.ok());
  ASSERT_TRUE(rp.ok());
  EXPECT_TRUE(*rf == *rp);
}

TEST_P(SeedSweep, SketchCopiesShareTheMeasurement) {
  uint64_t seed = GetParam();
  StreamSpec spec;
  spec.family = Family::kCycle;
  spec.n = 14;
  spec.sseed = seed;
  SpanningForestSketch original(14, 2, seed * 3 + 1);
  original.Process(spec.Build().stream);
  SpanningForestSketch copy = original;  // shares shapes
  copy.RemoveHyperedges({Hyperedge{0, 1}});
  copy.Update(Hyperedge{0, 1}, +1);  // undo on the copy
  auto ro = original.ExtractSpanningGraph();
  auto rc = copy.ExtractSpanningGraph();
  ASSERT_TRUE(ro.ok());
  ASSERT_TRUE(rc.ok());
  EXPECT_TRUE(*ro == *rc);
}

TEST_P(SeedSweep, DifferentSeedsDifferentMeasurements) {
  uint64_t seed = GetParam();
  // Two sketches with different seeds are allowed to decode different
  // (both valid) spanning graphs of a cycle; at minimum their internal
  // measurement must differ, which we observe via memory-identical inputs
  // giving different forests at least sometimes. Here we only assert both
  // decode valid spanning graphs.
  StreamSpec spec;
  spec.family = Family::kCycle;
  spec.n = 12;
  const DynamicStream stream = spec.Build().stream;
  SpanningForestSketch a(12, 2, seed * 2 + 1);
  SpanningForestSketch b(12, 2, seed * 2 + 2);
  a.Process(stream);
  b.Process(stream);
  auto ra = a.ExtractSpanningGraph();
  auto rb = b.ExtractSpanningGraph();
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  EXPECT_TRUE(IsConnected(*ra));
  EXPECT_TRUE(IsConnected(*rb));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u));

TEST(SketchPropertyTest, EmptyPlusEmptyIsEmpty) {
  L0Shape shape(1000, SketchConfig::Default(), 1);
  L0State a(&shape), b(&shape);
  a.Add(b);
  EXPECT_TRUE(a.IsZero());
}

TEST(SketchPropertyTest, NegatedStateCancelsViaAddition) {
  L0Shape shape(1 << 16, SketchConfig::Default(), 2);
  L0State pos(&shape), neg(&shape);
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    u128 idx = rng.Below(1 << 16);
    pos.Update(idx, 2);
    neg.Update(idx, -2);
  }
  pos.Add(neg);
  EXPECT_TRUE(pos.IsZero());
}

}  // namespace
}  // namespace gms
