// Tests for the Gomory-Hu (Gusfield) tree: all-pairs min cuts match direct
// max-flow computations, and the tree accelerates lambda_e queries.
#include <gtest/gtest.h>

#include "exact/gomory_hu.h"
#include "exact/lambda.h"
#include "exact/stoer_wagner.h"
#include "graph/generators.h"
#include "graph/traversal.h"

namespace gms {
namespace {

TEST(GomoryHuTest, PathGraph) {
  Graph g = PathGraph(6);
  GomoryHuTree tree(g);
  for (VertexId u = 0; u < 6; ++u) {
    for (VertexId v = u + 1; v < 6; ++v) {
      EXPECT_EQ(tree.MinCut(u, v), 1);
    }
  }
}

TEST(GomoryHuTest, CompleteGraph) {
  Graph g = CompleteGraph(7);
  GomoryHuTree tree(g);
  for (VertexId u = 0; u < 7; ++u) {
    for (VertexId v = u + 1; v < 7; ++v) {
      EXPECT_EQ(tree.MinCut(u, v), 6);
    }
  }
}

TEST(GomoryHuTest, DisconnectedPairsAreZero) {
  Graph g(6);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(3, 4);
  GomoryHuTree tree(g);
  EXPECT_EQ(tree.MinCut(0, 3), 0);
  EXPECT_EQ(tree.MinCut(2, 5), 0);
  EXPECT_EQ(tree.MinCut(0, 2), 1);
  EXPECT_EQ(tree.MinCut(3, 4), 1);
}

TEST(GomoryHuTest, AllPairsMatchDirectFlows) {
  for (uint64_t seed = 0; seed < 8; ++seed) {
    Graph g = ErdosRenyi(11, 0.35, 40 + seed);
    GomoryHuTree tree(g);
    for (VertexId u = 0; u < 11; ++u) {
      for (VertexId v = u + 1; v < 11; ++v) {
        EXPECT_EQ(tree.MinCut(u, v), MinEdgeCutBetween(g, u, v))
            << "seed=" << seed << " pair " << u << "," << v;
      }
    }
  }
}

TEST(GomoryHuTest, TreeMinEqualsGlobalMinCut) {
  for (uint64_t seed = 0; seed < 5; ++seed) {
    Graph g = ErdosRenyi(12, 0.4, 50 + seed);
    if (!IsConnected(g)) continue;
    GomoryHuTree tree(g);
    int64_t tree_min = INT64_MAX;
    for (const auto& te : tree.Edges()) tree_min = std::min(tree_min, te.cut);
    EXPECT_EQ(static_cast<size_t>(tree_min), EdgeConnectivity(g))
        << "seed=" << seed;
  }
}

TEST(GomoryHuTest, LambdaMatchesDirectComputation) {
  Graph g = UnionOfHamiltonianCycles(14, 2, 7);
  GomoryHuTree tree(g);
  for (const Edge& e : g.Edges()) {
    EXPECT_EQ(tree.Lambda(e), EdgeLambda(g, e));
  }
}

TEST(GomoryHuTest, EdgesFormASpanningTree) {
  Graph g = ErdosRenyi(15, 0.4, 60);
  GomoryHuTree tree(g);
  auto edges = tree.Edges();
  EXPECT_EQ(edges.size(), 14u);
  // Every vertex except the root appears exactly once as a child.
  std::vector<int> child_count(15, 0);
  for (const auto& te : edges) ++child_count[te.child];
  for (VertexId v = 1; v < 15; ++v) EXPECT_EQ(child_count[v], 1) << v;
}

}  // namespace
}  // namespace gms
