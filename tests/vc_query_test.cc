// Tests for the Theorem 4 vertex-connectivity query sketch.
#include <gtest/gtest.h>

#include "exact/vertex_connectivity.h"
#include "graph/generators.h"
#include "graph/traversal.h"
#include "util/random.h"
#include "vertexconn/vc_query_sketch.h"

namespace gms {
namespace {

VcQueryParams TestParams(size_t k) {
  VcQueryParams p;
  p.k = k;
  // The paper's R = 16 k^2 ln n is overkill at test scales; half suffices
  // empirically and keeps the suite fast (the bench sweeps this knob).
  p.r_multiplier = 0.5;
  p.forest.config = SketchConfig::Light();
  return p;
}

TEST(VcQueryParamsTest, ResolveRFollowsPaperFormula) {
  VcQueryParams p;
  p.k = 3;
  p.r_multiplier = 1.0;
  size_t r = p.ResolveR(100);
  // 16 * 9 * ln(100) ~ 663.
  EXPECT_NEAR(static_cast<double>(r), 663.0, 2.0);
  p.explicit_r = 10;
  EXPECT_EQ(p.ResolveR(100), 10u);
}

TEST(VcQueryTest, FindsPlantedSeparator) {
  auto planted = PlantedSeparator(40, 2, 1);
  VcQuerySketch sketch(40, TestParams(2), 2);
  sketch.Process(DynamicStream::InsertOnly(planted.graph, 3));
  ASSERT_TRUE(sketch.Finalize().ok());
  auto disconnects = sketch.Disconnects(planted.separator);
  ASSERT_TRUE(disconnects.ok());
  EXPECT_TRUE(*disconnects);
}

TEST(VcQueryTest, NonSeparatorsPass) {
  auto planted = PlantedSeparator(40, 2, 4);
  VcQuerySketch sketch(40, TestParams(2), 5);
  sketch.Process(DynamicStream::InsertOnly(planted.graph, 6));
  ASSERT_TRUE(sketch.Finalize().ok());
  // Random non-separator pairs must not disconnect.
  Rng rng(7);
  for (int t = 0; t < 10; ++t) {
    VertexId a = planted.side_a[rng.Below(planted.side_a.size())];
    VertexId b = planted.side_b[rng.Below(planted.side_b.size())];
    auto disconnects = sketch.Disconnects({a, b});
    ASSERT_TRUE(disconnects.ok());
    bool truth = !IsConnectedExcluding(planted.graph, {a, b});
    EXPECT_EQ(*disconnects, truth);
  }
}

TEST(VcQueryTest, AgreesWithGroundTruthOnRandomQueries) {
  Graph g = UnionOfHamiltonianCycles(36, 2, 8);
  VcQuerySketch sketch(36, TestParams(3), 9);
  sketch.Process(DynamicStream::InsertOnly(g, 10));
  ASSERT_TRUE(sketch.Finalize().ok());
  Rng rng(11);
  size_t agreements = 0, total = 0;
  for (int t = 0; t < 20; ++t) {
    std::vector<VertexId> s;
    while (s.size() < 3) {
      VertexId v = static_cast<VertexId>(rng.Below(36));
      bool dup = false;
      for (VertexId w : s) dup |= w == v;
      if (!dup) s.push_back(v);
    }
    auto got = sketch.Disconnects(s);
    ASSERT_TRUE(got.ok());
    bool truth = !IsConnectedExcluding(g, s);
    agreements += (*got == truth) ? 1 : 0;
    ++total;
  }
  // Lemma 3 holds per-query whp; demand perfection at this scale.
  EXPECT_EQ(agreements, total);
}

TEST(VcQueryTest, WorksUnderChurn) {
  auto planted = PlantedSeparator(32, 2, 12);
  DynamicStream stream = DynamicStream::WithChurn(planted.graph, 200, 13);
  VcQuerySketch sketch(32, TestParams(2), 14);
  sketch.Process(stream);
  ASSERT_TRUE(sketch.Finalize().ok());
  auto disconnects = sketch.Disconnects(planted.separator);
  ASSERT_TRUE(disconnects.ok());
  EXPECT_TRUE(*disconnects);
}

TEST(VcQueryTest, QueryBeforeFinalizeFails) {
  VcQuerySketch sketch(16, TestParams(2), 15);
  auto r = sketch.Disconnects({0});
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
}

TEST(VcQueryTest, OversizedQueryRejected) {
  VcQuerySketch sketch(16, TestParams(2), 16);
  ASSERT_TRUE(sketch.Finalize().ok());
  auto r = sketch.Disconnects({0, 1, 2});
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(VcQueryTest, DuplicateQueryVerticesCountOnce) {
  // Regression: {0, 0, 1} names two distinct vertices, so it must be a
  // legal k=2 query and must answer exactly as {0, 1} does.
  Graph g = UnionOfHamiltonianCycles(24, 3, 40);
  VcQuerySketch sketch(24, TestParams(2), 41);
  sketch.Process(DynamicStream::InsertOnly(g, 42));
  ASSERT_TRUE(sketch.Finalize().ok());
  auto dup = sketch.Disconnects({0, 0, 1});
  auto distinct = sketch.Disconnects({0, 1});
  ASSERT_TRUE(dup.ok());
  ASSERT_TRUE(distinct.ok());
  EXPECT_EQ(dup.value(), distinct.value());
}

TEST(VcQueryTest, OutOfRangeQueryVertexRejected) {
  VcQuerySketch sketch(16, TestParams(2), 43);
  ASSERT_TRUE(sketch.Finalize().ok());
  auto r = sketch.Disconnects({16});
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(VcQueryTest, NormalizeQuerySetContract) {
  // Dedup keeps first occurrences; range check runs before the size check
  // so a bogus id is always InvalidArgument.
  auto ok = NormalizeQuerySet({3, 1, 3, 1}, /*n=*/8, /*k=*/2);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), (std::vector<VertexId>{3, 1}));
  EXPECT_FALSE(NormalizeQuerySet({0, 8}, 8, 4).ok());
  EXPECT_FALSE(NormalizeQuerySet({0, 1, 2}, 8, 2).ok());
  EXPECT_TRUE(NormalizeQuerySet({0, 1, 0, 1}, 8, 2).ok());
}

TEST(VcQueryTest, UnionGraphIsSubgraph) {
  Graph g = UnionOfHamiltonianCycles(30, 3, 17);
  VcQuerySketch sketch(30, TestParams(2), 18);
  sketch.Process(DynamicStream::InsertOnly(g, 19));
  ASSERT_TRUE(sketch.Finalize().ok());
  for (const Edge& e : sketch.union_graph().Edges()) {
    EXPECT_TRUE(g.HasEdge(e));
  }
}

TEST(SubsampledForestUnionTest, CoverageGrowsWithR) {
  ForestSketchParams fp;
  fp.config = SketchConfig::Light();
  SubsampledForestUnion few(60, 4, 2, 20, fp);
  SubsampledForestUnion many(60, 4, 60, 21, fp);
  EXPECT_GE(few.NumUncovered(), many.NumUncovered());
  EXPECT_EQ(many.NumUncovered(), 0u);  // 60 samples at rate 1/4: whp all
}

TEST(SubsampledForestUnionTest, MemoryScalesWithR) {
  ForestSketchParams fp;
  fp.config = SketchConfig::Light();
  SubsampledForestUnion a(40, 2, 5, 22, fp);
  SubsampledForestUnion b(40, 2, 20, 22, fp);
  EXPECT_LT(a.MemoryBytes(), b.MemoryBytes());
}

}  // namespace
}  // namespace gms
