// Tests for the Theorem 4 vertex-connectivity query sketch.
#include <gtest/gtest.h>

#include "exact/vertex_connectivity.h"
#include "graph/generators.h"
#include "graph/traversal.h"
#include "util/random.h"
#include "vertexconn/vc_query_sketch.h"

namespace gms {
namespace {

VcQueryParams TestParams(size_t k) {
  // The paper's R = 16 k^2 ln n is overkill at test scales; half suffices
  // empirically and keeps the suite fast (the bench sweeps this knob).
  return VcQueryParams::Builder()
      .K(k)
      .RMultiplier(0.5)
      .Forest(
          ForestSketchParams::Builder().Config(SketchConfig::Light()).Build())
      .Build();
}

VcUnionSnapshot Snapshot(const VcQuerySketch& sketch) {
  auto snap = sketch.Query();
  EXPECT_TRUE(snap.ok());
  return std::move(snap).value();
}

TEST(VcQueryParamsTest, ResolveRFollowsPaperFormula) {
  VcQueryParams p = VcQueryParams::Builder().K(3).RMultiplier(1.0).Build();
  size_t r = p.ResolveR(100);
  // 16 * 9 * ln(100) ~ 663.
  EXPECT_NEAR(static_cast<double>(r), 663.0, 2.0);
  p.explicit_r = 10;
  EXPECT_EQ(p.ResolveR(100), 10u);
}

TEST(VcQueryTest, FindsPlantedSeparator) {
  auto planted = PlantedSeparator(40, 2, 1);
  VcQuerySketch sketch(40, TestParams(2), 2);
  sketch.Process(DynamicStream::InsertOnly(planted.graph, 3));
  auto disconnects = Snapshot(sketch).Disconnects(planted.separator);
  ASSERT_TRUE(disconnects.ok());
  EXPECT_TRUE(*disconnects);
}

TEST(VcQueryTest, NonSeparatorsPass) {
  auto planted = PlantedSeparator(40, 2, 4);
  VcQuerySketch sketch(40, TestParams(2), 5);
  sketch.Process(DynamicStream::InsertOnly(planted.graph, 6));
  VcUnionSnapshot snap = Snapshot(sketch);
  // Random non-separator pairs must not disconnect.
  Rng rng(7);
  for (int t = 0; t < 10; ++t) {
    VertexId a = planted.side_a[rng.Below(planted.side_a.size())];
    VertexId b = planted.side_b[rng.Below(planted.side_b.size())];
    auto disconnects = snap.Disconnects({a, b});
    ASSERT_TRUE(disconnects.ok());
    bool truth = !IsConnectedExcluding(planted.graph, {a, b});
    EXPECT_EQ(*disconnects, truth);
  }
}

TEST(VcQueryTest, AgreesWithGroundTruthOnRandomQueries) {
  Graph g = UnionOfHamiltonianCycles(36, 2, 8);
  VcQuerySketch sketch(36, TestParams(3), 9);
  sketch.Process(DynamicStream::InsertOnly(g, 10));
  VcUnionSnapshot snap = Snapshot(sketch);
  Rng rng(11);
  size_t agreements = 0, total = 0;
  for (int t = 0; t < 20; ++t) {
    std::vector<VertexId> s;
    while (s.size() < 3) {
      VertexId v = static_cast<VertexId>(rng.Below(36));
      bool dup = false;
      for (VertexId w : s) dup |= w == v;
      if (!dup) s.push_back(v);
    }
    auto got = snap.Disconnects(s);
    ASSERT_TRUE(got.ok());
    bool truth = !IsConnectedExcluding(g, s);
    agreements += (*got == truth) ? 1 : 0;
    ++total;
  }
  // Lemma 3 holds per-query whp; demand perfection at this scale.
  EXPECT_EQ(agreements, total);
}

TEST(VcQueryTest, WorksUnderChurn) {
  auto planted = PlantedSeparator(32, 2, 12);
  DynamicStream stream = DynamicStream::WithChurn(planted.graph, 200, 13);
  VcQuerySketch sketch(32, TestParams(2), 14);
  sketch.Process(stream);
  auto disconnects = Snapshot(sketch).Disconnects(planted.separator);
  ASSERT_TRUE(disconnects.ok());
  EXPECT_TRUE(*disconnects);
}

TEST(VcQueryTest, QueryIsNonDestructive) {
  // The whole point of the Query() surface: the sketch can keep ingesting
  // after a snapshot is taken, and a snapshot outlives any later mutation.
  Graph g = UnionOfHamiltonianCycles(28, 3, 60);
  VcQuerySketch sketch(28, TestParams(2), 61);
  DynamicStream stream = DynamicStream::InsertOnly(g, 62);
  const auto& updates = stream.updates();
  const size_t half = updates.size() / 2;
  sketch.Process(std::span<const StreamUpdate>(updates.data(), half));
  VcUnionSnapshot early = Snapshot(sketch);

  // Keep ingesting; the early snapshot must be unaffected.
  sketch.Process(
      std::span<const StreamUpdate>(updates.data() + half,
                                    updates.size() - half));
  VcUnionSnapshot late = Snapshot(sketch);
  EXPECT_LE(early.union_graph().NumEdges(), late.union_graph().NumEdges());

  // A prefix-only sketch must agree with the early snapshot bit-for-bit
  // (linearity + determinism).
  VcQuerySketch prefix(28, TestParams(2), 61);
  prefix.Process(std::span<const StreamUpdate>(updates.data(), half));
  EXPECT_TRUE(Snapshot(prefix).union_graph() == early.union_graph());

  // And the sketch state itself was never mutated by querying.
  VcQuerySketch replay(28, TestParams(2), 61);
  replay.Process(stream);
  EXPECT_TRUE(replay.StateEquals(sketch));
}

TEST(VcQueryTest, VertexConnectivityAtLeastBounds) {
  // A 3-connected graph (union of 3 Hamiltonian cycles is whp 3-connected
  // at this scale, and certainly 2-connected).
  Graph g = UnionOfHamiltonianCycles(24, 3, 63);
  VcQuerySketch sketch(24, TestParams(2), 64);
  sketch.Process(DynamicStream::InsertOnly(g, 65));
  VcUnionSnapshot snap = Snapshot(sketch);
  auto at_least_0 = snap.VertexConnectivityAtLeast(0);
  ASSERT_TRUE(at_least_0.ok());
  EXPECT_TRUE(*at_least_0);
  auto at_least_2 = snap.VertexConnectivityAtLeast(2);
  ASSERT_TRUE(at_least_2.ok());
  EXPECT_EQ(*at_least_2, IsKVertexConnected(g, 2));
  // k = 2 certifies up to t = k + 1 = 3; t = 4 exceeds the build.
  auto too_far = snap.VertexConnectivityAtLeast(4);
  EXPECT_FALSE(too_far.ok());
  EXPECT_EQ(too_far.status().code(), StatusCode::kInvalidArgument);
}

TEST(VcQueryTest, OversizedQueryRejected) {
  VcQuerySketch sketch(16, TestParams(2), 16);
  auto r = Snapshot(sketch).Disconnects({0, 1, 2});
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(VcQueryTest, DuplicateQueryVerticesCountOnce) {
  // Regression: {0, 0, 1} names two distinct vertices, so it must be a
  // legal k=2 query and must answer exactly as {0, 1} does.
  Graph g = UnionOfHamiltonianCycles(24, 3, 40);
  VcQuerySketch sketch(24, TestParams(2), 41);
  sketch.Process(DynamicStream::InsertOnly(g, 42));
  VcUnionSnapshot snap = Snapshot(sketch);
  auto dup = snap.Disconnects({0, 0, 1});
  auto distinct = snap.Disconnects({0, 1});
  ASSERT_TRUE(dup.ok());
  ASSERT_TRUE(distinct.ok());
  EXPECT_EQ(dup.value(), distinct.value());
}

TEST(VcQueryTest, OutOfRangeQueryVertexRejected) {
  VcQuerySketch sketch(16, TestParams(2), 43);
  auto r = Snapshot(sketch).Disconnects({16});
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(VcQueryTest, NormalizeQuerySetContract) {
  // Dedup keeps first occurrences; range check runs before the size check
  // so a bogus id is always InvalidArgument.
  auto ok = NormalizeQuerySet({3, 1, 3, 1}, /*n=*/8, /*k=*/2);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), (std::vector<VertexId>{3, 1}));
  EXPECT_FALSE(NormalizeQuerySet({0, 8}, 8, 4).ok());
  EXPECT_FALSE(NormalizeQuerySet({0, 1, 2}, 8, 2).ok());
  EXPECT_TRUE(NormalizeQuerySet({0, 1, 0, 1}, 8, 2).ok());
}

TEST(VcQueryTest, UnionGraphIsSubgraph) {
  Graph g = UnionOfHamiltonianCycles(30, 3, 17);
  VcQuerySketch sketch(30, TestParams(2), 18);
  sketch.Process(DynamicStream::InsertOnly(g, 19));
  VcUnionSnapshot snap = Snapshot(sketch);
  for (const Edge& e : snap.union_graph().Edges()) {
    EXPECT_TRUE(g.HasEdge(e));
  }
}

TEST(VcQueryTest, ClearReleasesCachedUnionGraph) {
  // Regression: Clear() used to zero the subsample sketches but keep the
  // Finalize-era union graph H allocated AND answerable -- a cleared sketch
  // answered queries from stale state. Clear must drop H and put the legacy
  // surface back into the not-finalized state.
  Graph g = UnionOfHamiltonianCycles(30, 3, 50);
  VcQuerySketch sketch(30, TestParams(2), 51);
  sketch.Process(DynamicStream::InsertOnly(g, 52));
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  ASSERT_TRUE(sketch.Finalize().ok());
#pragma GCC diagnostic pop
  ASSERT_GT(sketch.union_graph().NumEdges(), 0u);
  sketch.Clear();
  EXPECT_EQ(sketch.union_graph().NumEdges(), 0u);
  auto r = sketch.Disconnects({0});
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
  // A cleared sketch is the empty-stream measurement; Query still works.
  EXPECT_TRUE(Snapshot(sketch).union_graph().NumEdges() == 0u);
}

TEST(VcQueryTest, AllSparseForestsSkipExtractionAndStillAnswer) {
  // A degree-2 cycle keeps every subsample forest deep inside the sparse
  // phase (SketchConfig::Light threshold), so the union decode should take
  // the sparse-exact fast path for ALL R forests -- counted in the stats
  // -- while answering exactly like always.
  const size_t n = 40;
  Graph g = UnionOfHamiltonianCycles(n, 1, 80);
  const VcQueryParams params = VcQueryParams::Builder()
                                   .K(2)
                                   .ExplicitR(12)
                                   .Forest(ForestSketchParams::Builder()
                                               .Config(SketchConfig::Light())
                                               .Build())
                                   .Build();
  VcQuerySketch sketch(n, params, 81);
  sketch.Process(DynamicStream::InsertOnly(g, 82));

  auto snap = sketch.Query();
  ASSERT_TRUE(snap.ok());
  EXPECT_EQ(snap.stats().sparse_exact_forests, 12u);
  EXPECT_EQ(snap.stats().sample_attempts, 0u);
  // Degree-2 vertices cannot be escalated, and the union graph is a
  // subgraph of the (sparse-buffered) cycle.
  EXPECT_LE(snap.value().union_graph().NumEdges(), g.NumEdges());
  EXPECT_GT(snap.value().union_graph().NumEdges(), 0u);
}

// Coverage for the [[deprecated]] Finalize wrapper: the legacy destructive
// surface must keep answering exactly like the Query() path until removal.
// This is the ONE place the old API is intentionally exercised.
TEST(VcQueryTest, DeprecatedFinalizeMatchesQuery) {
  auto planted = PlantedSeparator(32, 2, 53);
  VcQuerySketch legacy(32, TestParams(2), 54);
  legacy.Process(DynamicStream::InsertOnly(planted.graph, 55));

  // Before Finalize the legacy surface refuses queries.
  auto premature = legacy.Disconnects({0});
  EXPECT_FALSE(premature.ok());
  EXPECT_EQ(premature.status().code(), StatusCode::kFailedPrecondition);

#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  ASSERT_TRUE(legacy.Finalize().ok());
#pragma GCC diagnostic pop

  VcQuerySketch fresh(32, TestParams(2), 54);
  fresh.Process(DynamicStream::InsertOnly(planted.graph, 55));
  VcUnionSnapshot snap = Snapshot(fresh);
  EXPECT_TRUE(legacy.union_graph() == snap.union_graph());
  auto a = legacy.Disconnects(planted.separator);
  auto b = snap.Disconnects(planted.separator);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value(), b.value());
}

TEST(NormalizeQuerySetTest, RangeErrorCitesCallerVisiblePosition) {
  // Regression: the range check used to report the index into the
  // DEDUPLICATED vector, so with duplicates ahead of the bad id the cited
  // position pointed at the wrong element of the caller's vector. The
  // message must cite position 2 -- where {0, 0, 99} holds the 99 -- not
  // position 1, where dedup would have landed it.
  auto r = NormalizeQuerySet({0, 0, 99}, /*n=*/16, /*k=*/4);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("position 2"), std::string::npos)
      << r.status().message();
  EXPECT_NE(r.status().message().find("99"), std::string::npos)
      << r.status().message();
}

TEST(SubsampledForestUnionTest, CoverageGrowsWithR) {
  const ForestSketchParams fp =
      ForestSketchParams::Builder().Config(SketchConfig::Light()).Build();
  SubsampledForestUnion few(60, 4, 2, 20, fp);
  SubsampledForestUnion many(60, 4, 60, 21, fp);
  EXPECT_GE(few.NumUncovered(), many.NumUncovered());
  EXPECT_EQ(many.NumUncovered(), 0u);  // 60 samples at rate 1/4: whp all
}

TEST(SubsampledForestUnionTest, MemoryScalesWithR) {
  const ForestSketchParams fp =
      ForestSketchParams::Builder().Config(SketchConfig::Light()).Build();
  SubsampledForestUnion a(40, 2, 5, 22, fp);
  SubsampledForestUnion b(40, 2, 20, 22, fp);
  EXPECT_LT(a.MemoryBytes(), b.MemoryBytes());
}

}  // namespace
}  // namespace gms
