// Tests for the text stream / hypergraph format.
#include <gtest/gtest.h>

#include "graph/generators.h"
#include "stream/io.h"

namespace gms {
namespace {

TEST(IoTest, ParsesStreamWithDeltas) {
  auto parsed = ReadStreamFromString(
      "# comment\n"
      "n 5\n"
      "+ 0 1\n"
      "+ 1 2 3\n"
      "- 0 1\n"
      "+ 0 4\n");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->n, 5u);
  EXPECT_EQ(parsed->stream.size(), 4u);
  Hypergraph h = parsed->stream.Materialize(5);
  EXPECT_EQ(h.NumEdges(), 2u);
  EXPECT_TRUE(h.HasEdge(Hyperedge{1, 2, 3}));
  EXPECT_TRUE(h.HasEdge(Hyperedge{0, 4}));
}

TEST(IoTest, BareLinesAreInsertions) {
  auto parsed = ReadStreamFromString("n 4\n0 1\n2 3\n");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->stream.size(), 2u);
}

TEST(IoTest, RejectsMissingHeader) {
  auto parsed = ReadStreamFromString("+ 0 1\n");
  EXPECT_FALSE(parsed.ok());
}

TEST(IoTest, RejectsOutOfRangeVertex) {
  auto parsed = ReadStreamFromString("n 3\n+ 0 7\n");
  EXPECT_FALSE(parsed.ok());
}

TEST(IoTest, RejectsSingletonEdge) {
  auto parsed = ReadStreamFromString("n 3\n+ 1\n");
  EXPECT_FALSE(parsed.ok());
}

TEST(IoTest, RejectsBadMultiplicity) {
  auto parsed = ReadStreamFromString("n 3\n- 0 1\n");
  EXPECT_FALSE(parsed.ok());
  auto dup = ReadStreamFromString("n 3\n+ 0 1\n+ 0 1\n");
  EXPECT_FALSE(dup.ok());
}

TEST(IoTest, RejectsGarbageToken) {
  auto parsed = ReadStreamFromString("n 3\nxyz 1\n");
  EXPECT_FALSE(parsed.ok());
}

TEST(IoTest, HypergraphRoundTrip) {
  Hypergraph h = RandomHypergraph(12, 20, 2, 4, 1);
  std::string text = WriteHypergraph(h);
  auto back = ReadHypergraphFromString(text);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_TRUE(*back == h);
}

TEST(IoTest, StreamRoundTrip) {
  Graph g = CycleGraph(8);
  DynamicStream s = DynamicStream::WithChurn(g, 10, 2);
  std::string text = WriteStream(8, s);
  auto back = ReadStreamFromString(text);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->n, 8u);
  EXPECT_EQ(back->stream.updates(), s.updates());
}

TEST(IoTest, StaticReaderRejectsDeletions) {
  auto h = ReadHypergraphFromString("n 3\n+ 0 1\n- 0 1\n");
  EXPECT_FALSE(h.ok());
}

}  // namespace
}  // namespace gms
