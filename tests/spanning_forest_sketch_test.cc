// Tests for the AGM spanning-forest/graph sketch (Theorems 2 and 13):
// decoded subgraphs must reproduce the component structure of the streamed
// (hyper)graph, under insert-only and churn streams, for graphs and
// hypergraphs, with active-vertex masks, and via per-player local updates.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "connectivity/spanning_forest_sketch.h"
#include "graph/generators.h"
#include "graph/traversal.h"
#include "stream/stream.h"

namespace gms {
namespace {

// Component partitions agree (up to relabeling) on the active vertices.
bool SameComponents(const std::vector<uint32_t>& a,
                    const std::vector<uint32_t>& b) {
  if (a.size() != b.size()) return false;
  std::map<uint32_t, uint32_t> fwd, bwd;
  for (size_t i = 0; i < a.size(); ++i) {
    auto [itf, newf] = fwd.emplace(a[i], b[i]);
    if (!newf && itf->second != b[i]) return false;
    auto [itb, newb] = bwd.emplace(b[i], a[i]);
    if (!newb && itb->second != a[i]) return false;
  }
  return true;
}

TEST(SpanningForestSketchTest, ConnectedGraphDecodesConnected) {
  Graph g = UnionOfHamiltonianCycles(50, 2, 1);
  SpanningForestSketch sketch(50, 2, 11);
  sketch.Process(DynamicStream::InsertOnly(g, 2));
  auto span = sketch.ExtractSpanningGraph();
  ASSERT_TRUE(span.ok());
  EXPECT_TRUE(IsConnected(*span));
  // Spanning graph is a subgraph of g.
  for (const auto& e : span->Edges()) {
    EXPECT_TRUE(g.HasEdge(e.AsEdge()));
  }
}

TEST(SpanningForestSketchTest, ComponentStructurePreserved) {
  // Three components of different shapes.
  Graph g(30);
  for (VertexId i = 0; i + 1 < 10; ++i) g.AddEdge(i, i + 1);
  for (VertexId i = 10; i + 1 < 20; ++i) g.AddEdge(i, i + 1);
  g.AddEdge(19, 10);
  for (VertexId i = 20; i < 29; ++i) g.AddEdge(20, i + 1);
  SpanningForestSketch sketch(30, 2, 5);
  sketch.Process(DynamicStream::InsertOnly(g, 6));
  auto span = sketch.ExtractSpanningGraph();
  ASSERT_TRUE(span.ok());
  EXPECT_TRUE(SameComponents(ConnectedComponents(span->ToGraph()),
                             ConnectedComponents(g)));
}

TEST(SpanningForestSketchTest, ChurnStreamsDecodeTheFinalGraph) {
  Graph g = CycleGraph(40);
  DynamicStream stream = DynamicStream::WithChurn(g, 300, 7);
  SpanningForestSketch sketch(40, 2, 13);
  sketch.Process(stream);
  auto span = sketch.ExtractSpanningGraph();
  ASSERT_TRUE(span.ok());
  EXPECT_TRUE(IsConnected(*span));
  for (const auto& e : span->Edges()) {
    EXPECT_TRUE(g.HasEdge(e.AsEdge())) << "ghost edge " << e.ToString();
  }
}

TEST(SpanningForestSketchTest, FullDeletionLeavesEmptySketch) {
  Graph g = CompleteGraph(12);
  SpanningForestSketch sketch(12, 2, 17);
  for (const Edge& e : g.Edges()) sketch.Update(Hyperedge(e), +1);
  for (const Edge& e : g.Edges()) sketch.Update(Hyperedge(e), -1);
  auto span = sketch.ExtractSpanningGraph();
  ASSERT_TRUE(span.ok());
  EXPECT_EQ(span->NumEdges(), 0u);
}

TEST(SpanningForestSketchTest, HypergraphSpanningGraph) {
  Hypergraph h = HyperCycle(24, 4);
  SpanningForestSketch sketch(24, 4, 19);
  sketch.Process(DynamicStream::InsertOnly(h, 3));
  auto span = sketch.ExtractSpanningGraph();
  ASSERT_TRUE(span.ok());
  EXPECT_TRUE(IsConnected(*span));
  for (const auto& e : span->Edges()) EXPECT_TRUE(h.HasEdge(e));
}

TEST(SpanningForestSketchTest, HypergraphComponentsWithMixedRanks) {
  Hypergraph h(20);
  h.AddEdge(Hyperedge{0, 1, 2, 3});
  h.AddEdge(Hyperedge{3, 4});
  h.AddEdge(Hyperedge{5, 6, 7});
  h.AddEdge(Hyperedge{7, 8, 9});
  // vertices 10..19 isolated
  SpanningForestSketch sketch(20, 4, 23);
  sketch.Process(DynamicStream::InsertOnly(h, 9));
  auto span = sketch.ExtractSpanningGraph();
  ASSERT_TRUE(span.ok());
  EXPECT_TRUE(SameComponents(ConnectedComponents(*span),
                             ConnectedComponents(h)));
}

TEST(SpanningForestSketchTest, ActiveMaskRestrictsDecoding) {
  // Only even vertices active; edges among them form a path.
  size_t n = 16;
  std::vector<bool> active(n, false);
  for (VertexId v = 0; v < n; v += 2) active[v] = true;
  SpanningForestSketch sketch(n, 2, 29, ForestSketchParams(), &active);
  for (VertexId v = 0; v + 2 < n; v += 2) {
    sketch.Update(Hyperedge{v, static_cast<VertexId>(v + 2)}, +1);
  }
  auto span = sketch.ExtractSpanningGraph();
  ASSERT_TRUE(span.ok());
  EXPECT_EQ(span->NumEdges(), n / 2 - 1);
  for (const auto& e : span->Edges()) {
    for (VertexId v : e) EXPECT_EQ(v % 2, 0u);
  }
}

TEST(SpanningForestSketchTest, RemoveHyperedgesIsLinearSubtraction) {
  Graph g = CycleGraph(20);
  SpanningForestSketch sketch(20, 2, 31);
  sketch.Process(DynamicStream::InsertOnly(g, 4));
  // Remove a chord-free arc of the cycle: the rest decodes as a path.
  std::vector<Hyperedge> removed = {Hyperedge{0, 1}, Hyperedge{10, 11}};
  sketch.RemoveHyperedges(removed);
  auto span = sketch.ExtractSpanningGraph();
  ASSERT_TRUE(span.ok());
  EXPECT_EQ(NumComponents(*span), 2u);
}

TEST(SpanningForestSketchTest, LocalUpdatesEqualGlobalUpdate) {
  Hypergraph h = RandomUniformHypergraph(18, 25, 3, 41);
  SpanningForestSketch global(18, 3, 4242);
  SpanningForestSketch local(18, 3, 4242);  // same seed: same measurement
  for (const auto& e : h.Edges()) global.Update(e, +1);
  for (VertexId v = 0; v < 18; ++v) {
    for (uint32_t idx : h.IncidentIndices(v)) {
      local.UpdateLocal(v, h.Edges()[idx], +1);
    }
  }
  auto a = global.ExtractSpanningGraph();
  auto b = local.ExtractSpanningGraph();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(*a == *b);  // identical randomness -> identical decode
}

TEST(SpanningForestSketchTest, MemoryScalesWithRoundsAndVertices) {
  ForestSketchParams p;
  p.rounds = 4;
  SpanningForestSketch small(16, 2, 1, p);
  p.rounds = 8;
  SpanningForestSketch large(16, 2, 1, p);
  EXPECT_GT(large.MemoryBytes(), small.MemoryBytes());
  EXPECT_EQ(large.rounds(), 8);
}

// Sweep: per-(n, family) success of connectivity decoding.
struct ForestCase {
  size_t n;
  int family;  // 0 path, 1 cycle, 2 star, 3 random connected
  uint64_t seed;
};

class ForestSweep : public ::testing::TestWithParam<ForestCase> {};

TEST_P(ForestSweep, DecodesConnectivity) {
  const auto& tc = GetParam();
  Graph g;
  switch (tc.family) {
    case 0: g = PathGraph(tc.n); break;
    case 1: g = CycleGraph(tc.n); break;
    case 2: g = StarGraph(tc.n); break;
    default: g = UnionOfHamiltonianCycles(tc.n, 2, tc.seed); break;
  }
  SpanningForestSketch sketch(tc.n, 2, tc.seed * 1000 + 17);
  sketch.Process(DynamicStream::InsertOnly(g, tc.seed));
  auto span = sketch.ExtractSpanningGraph();
  ASSERT_TRUE(span.ok());
  EXPECT_TRUE(IsConnected(*span))
      << "family=" << tc.family << " n=" << tc.n;
}

INSTANTIATE_TEST_SUITE_P(
    FamiliesAndSizes, ForestSweep,
    ::testing::Values(ForestCase{16, 0, 1}, ForestCase{16, 1, 2},
                      ForestCase{16, 2, 3}, ForestCase{16, 3, 4},
                      ForestCase{64, 0, 5}, ForestCase{64, 1, 6},
                      ForestCase{64, 2, 7}, ForestCase{64, 3, 8},
                      ForestCase{128, 3, 9}, ForestCase{128, 1, 10}));

}  // namespace
}  // namespace gms
