// Tests for 1-sparse cells and s-sparse recovery: exactness, linearity,
// ghost rejection, failure on over-capacity vectors.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "sketch/sparse_recovery.h"
#include "util/random.h"

namespace gms {
namespace {

SSparseShape MakeShape(u128 domain, int capacity, uint64_t seed) {
  return SSparseShape(domain, capacity, /*rows=*/3, /*buckets=*/2 * capacity,
                      seed);
}

TEST(OneSparseCellTest, ZeroByDefault) {
  OneSparseCell cell;
  EXPECT_TRUE(cell.IsZero());
}

TEST(OneSparseCellTest, DecodeSingleItem) {
  SSparseShape shape = MakeShape(1 << 20, 2, 1);
  SSparseState state(&shape);
  state.Update(777777, 5);
  auto r = state.Decode();
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->size(), 1u);
  EXPECT_EQ((*r)[0].index, 777777u);
  EXPECT_EQ((*r)[0].value, 5);
}

TEST(OneSparseCellTest, DecodeNegativeValue) {
  SSparseShape shape = MakeShape(1 << 20, 2, 2);
  SSparseState state(&shape);
  state.Update(31337, -3);
  auto r = state.Decode();
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->size(), 1u);
  EXPECT_EQ((*r)[0].value, -3);
}

TEST(OneSparseCellTest, IndexZeroDecodes) {
  SSparseShape shape = MakeShape(1 << 10, 2, 3);
  SSparseState state(&shape);
  state.Update(0, 2);
  auto r = state.Decode();
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->size(), 1u);
  EXPECT_EQ((*r)[0].index, 0u);
}

TEST(SSparseTest, RecoversFullSupportWithinCapacity) {
  SSparseShape shape = MakeShape(u128{1} << 60, 8, 4);
  SSparseState state(&shape);
  std::map<uint64_t, int64_t> truth = {
      {12, 1}, {999999, -2}, {1ULL << 50, 7}, {42, 1}, {43, 1}};
  for (auto [i, v] : truth) state.Update(i, v);
  auto r = state.Decode();
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->size(), truth.size());
  for (const auto& e : *r) {
    EXPECT_EQ(e.value, truth[static_cast<uint64_t>(e.index)]);
  }
}

TEST(SSparseTest, EmptyDecodesEmpty) {
  SSparseShape shape = MakeShape(1000, 4, 5);
  SSparseState state(&shape);
  auto r = state.Decode();
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->empty());
  EXPECT_TRUE(state.IsZero());
}

TEST(SSparseTest, InsertDeleteCancelsExactly) {
  SSparseShape shape = MakeShape(u128{1} << 100, 4, 6);
  SSparseState state(&shape);
  Rng rng(7);
  std::vector<u128> idx;
  for (int i = 0; i < 200; ++i) {
    u128 x = (static_cast<u128>(rng.Next()) << 36) ^ rng.Next();
    x %= (u128{1} << 100);
    idx.push_back(x);
    state.Update(x, 1);
  }
  for (u128 x : idx) state.Update(x, -1);
  EXPECT_TRUE(state.IsZero());
  auto r = state.Decode();
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->empty());
}

TEST(SSparseTest, OverCapacityFailsCleanly) {
  SSparseShape shape = MakeShape(1 << 30, 3, 8);
  SSparseState state(&shape);
  for (uint64_t i = 0; i < 200; ++i) state.Update(i * 1000 + 1, 1);
  auto r = state.Decode();
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsDecodeFailure());
}

TEST(SSparseTest, AdditionIsLinear) {
  SSparseShape shape = MakeShape(1 << 24, 6, 9);
  SSparseState a(&shape), b(&shape);
  a.Update(10, 2);
  a.Update(20, 1);
  b.Update(20, -1);
  b.Update(30, 4);
  a.Add(b);  // = {10:2, 30:4}
  auto r = a.Decode();
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->size(), 2u);
  std::map<uint64_t, int64_t> got;
  for (const auto& e : *r) got[static_cast<uint64_t>(e.index)] = e.value;
  EXPECT_EQ(got[10], 2);
  EXPECT_EQ(got[30], 4);
}

TEST(SSparseTest, LargeIndicesNearDomainTop) {
  u128 domain = u128{1} << 120;
  SSparseShape shape = MakeShape(domain, 3, 10);
  SSparseState state(&shape);
  u128 big = domain - 1;
  state.Update(big, -2);  // index * value overflows naive 128-bit signed? no:
                          // |value| small, handled by wrapping arithmetic
  auto r = state.Decode();
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->size(), 1u);
  EXPECT_EQ((*r)[0].index, big);
  EXPECT_EQ((*r)[0].value, -2);
}

TEST(SSparseTest, MemoryAccounting) {
  SSparseShape shape = MakeShape(1000, 4, 11);
  SSparseState state(&shape);
  EXPECT_EQ(state.MemoryBytes(),
            sizeof(OneSparseCell) * 3 * 8 + sizeof(SSparseState));
}

// Property sweep: random sparse vectors within capacity always recover.
class SparseRecoverySweep
    : public ::testing::TestWithParam<std::tuple<int, uint64_t>> {};

TEST_P(SparseRecoverySweep, ExactRecovery) {
  auto [support, seed] = GetParam();
  Rng rng(seed);
  SSparseShape shape = MakeShape(u128{1} << 80, support, seed * 131 + 1);
  SSparseState state(&shape);
  std::map<uint64_t, int64_t> truth;
  while (static_cast<int>(truth.size()) < support) {
    uint64_t i = rng.Next() & ((1ULL << 62) - 1);
    int64_t v = static_cast<int64_t>(rng.Below(9)) - 4;
    if (v == 0 || truth.count(i)) continue;
    truth[i] = v;
    state.Update(i, v);
  }
  auto r = state.Decode();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->size(), truth.size());
  for (const auto& e : *r) {
    EXPECT_EQ(e.value, truth[static_cast<uint64_t>(e.index)]);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SupportsAndSeeds, SparseRecoverySweep,
    ::testing::Combine(::testing::Values(1, 2, 4, 8, 16),
                       ::testing::Values(1u, 2u, 3u, 4u, 5u)));

}  // namespace
}  // namespace gms
