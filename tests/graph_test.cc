// Unit tests for graph containers, union-find and traversals.
#include <gtest/gtest.h>

#include <algorithm>

#include "graph/edge.h"
#include "graph/graph.h"
#include "graph/hypergraph.h"
#include "graph/traversal.h"
#include "graph/union_find.h"

namespace gms {
namespace {

TEST(EdgeTest, Canonicalizes) {
  Edge e(5, 2);
  EXPECT_EQ(e.u(), 2u);
  EXPECT_EQ(e.v(), 5u);
  EXPECT_EQ(e, Edge(2, 5));
}

TEST(HyperedgeTest, CanonicalizesAndDedups) {
  Hyperedge e({5, 2, 9, 2});
  EXPECT_EQ(e.size(), 3u);
  EXPECT_EQ(e[0], 2u);
  EXPECT_EQ(e[2], 9u);
  EXPECT_EQ(e.MinVertex(), 2u);
  EXPECT_TRUE(e.Contains(9));
  EXPECT_FALSE(e.Contains(3));
  EXPECT_EQ(e.ToString(), "{2,5,9}");
}

TEST(HyperedgeTest, GraphEdgeConversion) {
  Hyperedge e({7, 3});
  ASSERT_TRUE(e.IsGraphEdge());
  EXPECT_EQ(e.AsEdge(), Edge(3, 7));
  Hyperedge t({1, 2, 3});
  EXPECT_FALSE(t.IsGraphEdge());
}

TEST(GraphTest, AddRemoveIdempotent) {
  Graph g(4);
  EXPECT_TRUE(g.AddEdge(0, 1));
  EXPECT_FALSE(g.AddEdge(1, 0));  // same edge
  EXPECT_EQ(g.NumEdges(), 1u);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.RemoveEdge(Edge(0, 1)));
  EXPECT_FALSE(g.RemoveEdge(Edge(0, 1)));
  EXPECT_EQ(g.NumEdges(), 0u);
}

TEST(GraphTest, DegreesAndNeighbors) {
  Graph g(5);
  g.AddEdge(0, 1);
  g.AddEdge(0, 2);
  g.AddEdge(0, 3);
  EXPECT_EQ(g.Degree(0), 3u);
  EXPECT_EQ(g.Degree(4), 0u);
  EXPECT_EQ(g.MinDegree(), 0u);
  EXPECT_TRUE(g.Neighbors(0).contains(2));
}

TEST(GraphTest, EdgesRoundTrip) {
  Graph g(6);
  g.AddEdge(0, 1);
  g.AddEdge(2, 5);
  g.AddEdge(3, 4);
  auto edges = g.Edges();
  EXPECT_EQ(edges.size(), 3u);
  Graph h(6, edges);
  EXPECT_EQ(g, h);
}

TEST(GraphTest, InducedExcluding) {
  Graph g(5);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(2, 3);
  g.AddEdge(3, 4);
  Graph sub = g.InducedExcluding({2});
  EXPECT_EQ(sub.NumEdges(), 2u);
  EXPECT_TRUE(sub.HasEdge(0, 1));
  EXPECT_TRUE(sub.HasEdge(3, 4));
  EXPECT_FALSE(sub.HasEdge(1, 2));
}

TEST(HypergraphTest, AddRemoveWithSwapCompaction) {
  Hypergraph h(6);
  EXPECT_TRUE(h.AddEdge(Hyperedge{0, 1, 2}));
  EXPECT_TRUE(h.AddEdge(Hyperedge{2, 3}));
  EXPECT_TRUE(h.AddEdge(Hyperedge{3, 4, 5}));
  EXPECT_FALSE(h.AddEdge(Hyperedge{1, 0, 2}));
  EXPECT_EQ(h.NumEdges(), 3u);
  // Remove the first edge; the last is swapped into its slot.
  EXPECT_TRUE(h.RemoveEdge(Hyperedge{0, 1, 2}));
  EXPECT_EQ(h.NumEdges(), 2u);
  EXPECT_TRUE(h.HasEdge(Hyperedge{2, 3}));
  EXPECT_TRUE(h.HasEdge(Hyperedge{3, 4, 5}));
  // Incidence stays consistent.
  EXPECT_EQ(h.Degree(3), 2u);
  EXPECT_EQ(h.Degree(0), 0u);
  for (VertexId v = 0; v < 6; ++v) {
    for (uint32_t idx : h.IncidentIndices(v)) {
      EXPECT_TRUE(h.Edges()[idx].Contains(v));
    }
  }
}

TEST(HypergraphTest, RemoveMiddleKeepsIncidenceConsistent) {
  Hypergraph h(8);
  h.AddEdge(Hyperedge{0, 1});
  h.AddEdge(Hyperedge{1, 2, 3});
  h.AddEdge(Hyperedge{3, 4});
  h.AddEdge(Hyperedge{4, 5, 6, 7});
  EXPECT_TRUE(h.RemoveEdge(Hyperedge{1, 2, 3}));
  EXPECT_EQ(h.NumEdges(), 3u);
  size_t total_incidence = 0;
  for (VertexId v = 0; v < 8; ++v) {
    for (uint32_t idx : h.IncidentIndices(v)) {
      ASSERT_LT(idx, h.NumEdges());
      EXPECT_TRUE(h.Edges()[idx].Contains(v));
      ++total_incidence;
    }
  }
  EXPECT_EQ(total_incidence, 2u + 2u + 4u);
}

TEST(HypergraphTest, RankAndConversion) {
  Graph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(2, 3);
  Hypergraph h = Hypergraph::FromGraph(g);
  EXPECT_EQ(h.Rank(), 2u);
  EXPECT_EQ(h.ToGraph(), g);
  h.AddEdge(Hyperedge{0, 2, 3});
  EXPECT_EQ(h.Rank(), 3u);
}

TEST(HypergraphTest, InducedExcludingDropsTouchedEdges) {
  Hypergraph h(5);
  h.AddEdge(Hyperedge{0, 1, 2});
  h.AddEdge(Hyperedge{2, 3});
  h.AddEdge(Hyperedge{3, 4});
  Hypergraph sub = h.InducedExcluding({2});
  EXPECT_EQ(sub.NumEdges(), 1u);
  EXPECT_TRUE(sub.HasEdge(Hyperedge{3, 4}));
}

TEST(HypergraphTest, CutSize) {
  Hypergraph h(4);
  h.AddEdge(Hyperedge{0, 1});
  h.AddEdge(Hyperedge{1, 2, 3});
  h.AddEdge(Hyperedge{2, 3});
  std::vector<bool> s = {true, true, false, false};
  EXPECT_EQ(h.CutSize(s), 1u);  // only {1,2,3} crosses
  std::vector<bool> s2 = {true, false, false, false};
  EXPECT_EQ(h.CutSize(s2), 1u);
}

TEST(UnionFindTest, BasicMerging) {
  UnionFind uf(5);
  EXPECT_EQ(uf.NumComponents(), 5u);
  EXPECT_TRUE(uf.Union(0, 1));
  EXPECT_FALSE(uf.Union(1, 0));
  EXPECT_TRUE(uf.Union(2, 3));
  EXPECT_EQ(uf.NumComponents(), 3u);
  EXPECT_TRUE(uf.Connected(0, 1));
  EXPECT_FALSE(uf.Connected(0, 2));
  EXPECT_EQ(uf.ComponentSize(0), 2u);
}

TEST(UnionFindTest, ComponentIdsDense) {
  UnionFind uf(6);
  uf.Union(0, 5);
  uf.Union(1, 2);
  auto ids = uf.ComponentIds();
  EXPECT_EQ(ids[0], ids[5]);
  EXPECT_EQ(ids[1], ids[2]);
  EXPECT_NE(ids[0], ids[1]);
  uint32_t max_id = *std::max_element(ids.begin(), ids.end());
  EXPECT_EQ(max_id, 3u);  // 4 components, dense 0..3
}

TEST(TraversalTest, ComponentsGraph) {
  Graph g(6);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(3, 4);
  EXPECT_EQ(NumComponents(g), 3u);
  EXPECT_FALSE(IsConnected(g));
  auto ids = ConnectedComponents(g);
  EXPECT_EQ(ids[0], ids[2]);
  EXPECT_NE(ids[0], ids[3]);
}

TEST(TraversalTest, ComponentsHypergraph) {
  Hypergraph h(7);
  h.AddEdge(Hyperedge{0, 1, 2});
  h.AddEdge(Hyperedge{2, 3});
  h.AddEdge(Hyperedge{4, 5});
  EXPECT_EQ(NumComponents(h), 3u);
  h.AddEdge(Hyperedge{3, 4, 6});
  EXPECT_EQ(NumComponents(h), 1u);
  EXPECT_TRUE(IsConnected(h));
}

TEST(TraversalTest, IsConnectedExcluding) {
  Graph g(5);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(2, 3);
  g.AddEdge(3, 4);
  EXPECT_TRUE(IsConnectedExcluding(g, {}));
  EXPECT_FALSE(IsConnectedExcluding(g, {2}));
  EXPECT_TRUE(IsConnectedExcluding(g, {0}));
  EXPECT_TRUE(IsConnectedExcluding(g, {0, 4}));
}

TEST(TraversalTest, SpanningForestProperties) {
  Graph g(8);
  for (VertexId i = 0; i < 8; ++i) {
    for (VertexId j = i + 1; j < 8; ++j) g.AddEdge(i, j);
  }
  Graph f = SpanningForest(g);
  EXPECT_EQ(f.NumEdges(), 7u);
  EXPECT_TRUE(IsConnected(f));
}

TEST(TraversalTest, SpanningSubhypergraphKeepsComponents) {
  Hypergraph h(9);
  h.AddEdge(Hyperedge{0, 1, 2});
  h.AddEdge(Hyperedge{1, 2});
  h.AddEdge(Hyperedge{2, 3});
  h.AddEdge(Hyperedge{5, 6, 7});
  h.AddEdge(Hyperedge{6, 7});
  Hypergraph span = SpanningSubhypergraph(h);
  EXPECT_LE(span.NumEdges(), h.NumEdges());
  EXPECT_EQ(ConnectedComponents(span), ConnectedComponents(h));
}

}  // namespace
}  // namespace gms
