// Tests for the simultaneous-communication protocol simulation.
#include <gtest/gtest.h>

#include "comm/simultaneous.h"
#include "graph/generators.h"

namespace gms {
namespace {

TEST(CommTest, ConnectedGraphAnsweredCorrectly) {
  Hypergraph h = Hypergraph::FromGraph(UnionOfHamiltonianCycles(32, 2, 1));
  auto report = RunSimultaneousConnectivity(h, 42);
  EXPECT_TRUE(report.correct);
  EXPECT_TRUE(report.referee_answer_connected);
  EXPECT_EQ(report.num_players, 32u);
}

TEST(CommTest, DisconnectedGraphAnsweredCorrectly) {
  Hypergraph h(20);
  for (VertexId i = 0; i + 1 < 10; ++i) {
    h.AddEdge(Hyperedge{i, static_cast<VertexId>(i + 1)});
  }
  for (VertexId i = 10; i + 1 < 20; ++i) {
    h.AddEdge(Hyperedge{i, static_cast<VertexId>(i + 1)});
  }
  auto report = RunSimultaneousConnectivity(h, 43);
  EXPECT_TRUE(report.correct);
  EXPECT_FALSE(report.referee_answer_connected);
  EXPECT_EQ(report.referee_components, 2u);
}

TEST(CommTest, HypergraphPlayers) {
  Hypergraph h = HyperCycle(18, 3);
  auto report = RunSimultaneousConnectivity(h, 44);
  EXPECT_TRUE(report.correct);
  EXPECT_TRUE(report.referee_answer_connected);
}

TEST(CommTest, MessageSizePolylog) {
  // Per-player message bytes (measured from the serialized frames) must
  // grow far slower than n: compare n=32 vs n=256 -- an 8x vertex growth
  // should well under 8x the message (the cell payload is polylog: rounds
  // x levels x cells; only the active bitmap in the header is linear in n,
  // and at these sizes it is bits, not cells).
  Hypergraph small = Hypergraph::FromGraph(CycleGraph(32));
  Hypergraph large = Hypergraph::FromGraph(CycleGraph(256));
  auto rs = RunSimultaneousConnectivity(small, 45);
  auto rl = RunSimultaneousConnectivity(large, 46);
  EXPECT_LT(static_cast<double>(rl.max_message_bytes),
            3.0 * static_cast<double>(rs.max_message_bytes));
  EXPECT_TRUE(rl.correct);
}

TEST(CommTest, TotalBytesIsPlayersTimesMessage) {
  // total_bytes is the SUM of the measured frames; players hold identically
  // shaped single-vertex states, so it must land close to n x max (and can
  // never exceed it).
  Hypergraph h = Hypergraph::FromGraph(CycleGraph(24));
  auto report = RunSimultaneousConnectivity(h, 47);
  EXPECT_GT(report.max_message_bytes, 0u);
  EXPECT_LE(report.total_bytes, report.max_message_bytes * 24);
  EXPECT_NEAR(static_cast<double>(report.total_bytes),
              static_cast<double>(report.max_message_bytes * 24), 24.0 * 64);
}

TEST(CommTest, MessageBytesAreMeasuredFrames) {
  // The report's sizes must equal what a player's Serialize actually
  // produces -- build player 0's frame by hand and compare.
  Hypergraph h = Hypergraph::FromGraph(CycleGraph(16));
  auto report = RunSimultaneousConnectivity(h, 48);
  std::vector<bool> mine(16, false);
  mine[0] = true;
  SpanningForestSketch player(16, 2, 48, ForestSketchParams(), &mine);
  for (uint32_t idx : h.IncidentIndices(0)) {
    player.UpdateLocal(0, h.Edges()[idx], +1);
  }
  EXPECT_EQ(report.max_message_bytes, player.SpaceBytes());
}

}  // namespace
}  // namespace gms
