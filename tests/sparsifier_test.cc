// Tests for the Section 5 hypergraph sparsifier sketch: cut preservation
// against exhaustive enumeration on small instances, size bounds, graphs as
// the 2-uniform special case, and parameter resolution.
#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.h"
#include "sparsify/benczur_karger.h"
#include "sparsify/sparsifier_sketch.h"
#include "sparsify/verify.h"

namespace gms {
namespace {

SparsifierParams TestParams(size_t k, size_t levels) {
  SparsifierParams p;
  p.k = k;
  p.levels = levels;
  p.forest.config = SketchConfig::Light();
  return p;
}

TEST(SparsifierParamsTest, ResolutionFormulas) {
  SparsifierParams p;
  p.epsilon = 0.5;
  p.k_constant = 1.0;
  size_t levels = p.ResolveLevels(64);
  EXPECT_EQ(levels, 18u);  // 3 * log2(64)
  size_t k = p.ResolveK(64, 3, levels);
  // 1.0 / 0.25 * (ln 64 + 3) ~ 4 * 7.16 = 28.6 -> 29.
  EXPECT_EQ(k, 29u);
  p.reparameterize = true;
  EXPECT_GT(p.ResolveK(64, 3, levels), 10000u);  // eps/(2l) blows k up
}

TEST(SparsifierTest, SmallGraphAllCutsPreserved) {
  // Small dense graph, generous k: every cut must be within a modest
  // relative error (with k >= max cut the sparsifier keeps everything and
  // the error is 0; with moderate k errors stay near Lemma 18's bound).
  Graph g = CompleteGraph(10);
  Hypergraph h = Hypergraph::FromGraph(g);
  HypergraphSparsifierSketch sketch(10, 2, TestParams(/*k=*/10, /*levels=*/8),
                                    1);
  sketch.Process(DynamicStream::InsertOnly(h, 2));
  auto out = sketch.ExtractSparsifier();
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_FALSE(out->truncated);
  auto report = VerifySparsifier(h, out->sparsifier, /*epsilon=*/0.75);
  EXPECT_TRUE(report.exhaustive);
  EXPECT_EQ(report.stats.zero_mismatches, 0u);
  EXPECT_LE(report.stats.max_rel_error, 0.75)
      << "max cut error " << report.stats.max_rel_error;
}

TEST(SparsifierTest, TotalWeightApproximatesEdgeCount) {
  Graph g = CompleteGraph(12);
  Hypergraph h = Hypergraph::FromGraph(g);
  HypergraphSparsifierSketch sketch(12, 2, TestParams(8, 8), 3);
  sketch.Process(DynamicStream::InsertOnly(h, 4));
  auto out = sketch.ExtractSparsifier();
  ASSERT_TRUE(out.ok());
  // Sum of weights estimates |E| (each edge survives to level i w.p. 2^-i
  // and is weighted 2^i).
  double total = out->sparsifier.TotalWeight();
  EXPECT_NEAR(total, static_cast<double>(h.NumEdges()),
              0.6 * static_cast<double>(h.NumEdges()));
}

TEST(SparsifierTest, SparseInputsPassThroughExactly) {
  // If k exceeds every lambda_e, level 0 already recovers ALL edges with
  // weight 1: the sparsifier is exact.
  Graph t = RandomTree(16, 5);
  Hypergraph h = Hypergraph::FromGraph(t);
  HypergraphSparsifierSketch sketch(16, 2, TestParams(2, 6), 6);
  sketch.Process(DynamicStream::InsertOnly(h, 7));
  auto out = sketch.ExtractSparsifier();
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->sparsifier.size(), t.NumEdges());
  auto report = VerifySparsifier(h, out->sparsifier, 0.01);
  EXPECT_DOUBLE_EQ(report.stats.max_rel_error, 0.0);
  EXPECT_TRUE(report.within_epsilon);
}

TEST(SparsifierTest, HypergraphCutsPreserved) {
  Hypergraph h = RandomUniformHypergraph(12, 30, 3, 8);
  HypergraphSparsifierSketch sketch(12, 3, TestParams(8, 8), 9);
  sketch.Process(DynamicStream::InsertOnly(h, 10));
  auto out = sketch.ExtractSparsifier();
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  auto report = VerifySparsifier(h, out->sparsifier, 0.9);
  EXPECT_EQ(report.stats.zero_mismatches, 0u);
  EXPECT_LE(report.stats.max_rel_error, 0.9);
}

TEST(SparsifierTest, ChurnStream) {
  Hypergraph h = RandomUniformHypergraph(10, 20, 3, 11);
  DynamicStream stream = DynamicStream::WithChurn(h, 60, 3, 12);
  HypergraphSparsifierSketch sketch(10, 3, TestParams(8, 7), 13);
  sketch.Process(stream);
  auto out = sketch.ExtractSparsifier();
  ASSERT_TRUE(out.ok());
  auto report = VerifySparsifier(h, out->sparsifier, 0.9);
  EXPECT_EQ(report.stats.zero_mismatches, 0u);
  EXPECT_LE(report.stats.max_rel_error, 0.9);
}

TEST(SparsifierTest, SparsifierEdgesComeFromTheInput) {
  Hypergraph h = RandomUniformHypergraph(11, 25, 3, 14);
  HypergraphSparsifierSketch sketch(11, 3, TestParams(6, 7), 15);
  sketch.Process(DynamicStream::InsertOnly(h, 16));
  auto out = sketch.ExtractSparsifier();
  ASSERT_TRUE(out.ok());
  for (const auto& e : out->sparsifier.edges) {
    EXPECT_TRUE(h.HasEdge(e)) << "invented edge " << e.ToString();
  }
  // Weights are powers of two.
  for (double w : out->sparsifier.weights) {
    double log_w = std::log2(w);
    EXPECT_DOUBLE_EQ(log_w, std::round(log_w));
  }
}

TEST(SparsifierTest, CompressionOnDenseInput) {
  // Dense graph with small k: higher levels thin the graph; the output
  // should be smaller than the input.
  Graph g = CompleteGraph(14);  // 91 edges
  Hypergraph h = Hypergraph::FromGraph(g);
  HypergraphSparsifierSketch sketch(14, 2, TestParams(4, 8), 17);
  sketch.Process(DynamicStream::InsertOnly(h, 18));
  auto out = sketch.ExtractSparsifier();
  ASSERT_TRUE(out.ok());
  EXPECT_LT(out->sparsifier.size(), h.NumEdges());
}

TEST(BenczurKargerTest, SparseGraphKeptEntirely) {
  // Strength <= c/eps^2 everywhere -> p_e = 1 for all edges: exact copy.
  Graph t = RandomTree(20, 1);
  BkParams p;
  p.epsilon = 0.5;
  auto s = BenczurKargerSparsify(t, p, 2);
  EXPECT_EQ(s.size(), t.NumEdges());
  for (double w : s.weights) EXPECT_DOUBLE_EQ(w, 1.0);
}

TEST(BenczurKargerTest, CutsPreservedOnDenseGraph) {
  Graph g = CompleteGraph(14);
  BkParams p;
  p.epsilon = 0.5;
  auto s = BenczurKargerSparsify(g, p, 3);
  auto report = VerifySparsifier(Hypergraph::FromGraph(g), s, 0.6);
  EXPECT_EQ(report.stats.zero_mismatches, 0u);
  EXPECT_LE(report.stats.max_rel_error, 0.6);
}

TEST(BenczurKargerTest, CompressesHighStrengthCores) {
  // A big clique with a pendant path: clique edges have high strength and
  // get subsampled; path edges (strength 1) are always kept.
  Graph g(40);
  for (VertexId i = 0; i < 32; ++i) {
    for (VertexId j = i + 1; j < 32; ++j) g.AddEdge(i, j);
  }
  for (VertexId i = 31; i + 1 < 40; ++i) g.AddEdge(i, i + 1);
  BkParams p;
  p.epsilon = 1.0;
  auto s = BenczurKargerSparsify(g, p, 4);
  EXPECT_LT(s.size(), g.NumEdges());
  // Path edges all present with weight 1.
  size_t path_found = 0;
  for (size_t i = 0; i < s.edges.size(); ++i) {
    if (s.edges[i].MinVertex() >= 31) {
      ++path_found;
      EXPECT_DOUBLE_EQ(s.weights[i], 1.0);
    }
  }
  EXPECT_EQ(path_found, 8u);
}

TEST(BenczurKargerTest, TotalWeightUnbiased) {
  Graph g = CompleteGraph(16);
  double total = 0;
  const int trials = 20;
  for (int t = 0; t < trials; ++t) {
    BkParams p;
    p.epsilon = 1.0;
    total += BenczurKargerSparsify(g, p, 100 + t).TotalWeight();
  }
  EXPECT_NEAR(total / trials, static_cast<double>(g.NumEdges()),
              0.15 * static_cast<double>(g.NumEdges()));
}

TEST(WeightedCutTest, Basics) {
  WeightedEdgeSet s;
  s.edges = {Hyperedge{0, 1}, Hyperedge{1, 2, 3}};
  s.weights = {2.0, 4.0};
  EXPECT_DOUBLE_EQ(s.TotalWeight(), 6.0);
  std::vector<bool> in_s = {true, false, false, false};
  EXPECT_DOUBLE_EQ(WeightedCutValue(s, in_s), 2.0);
  std::vector<bool> in_s2 = {true, true, false, false};
  EXPECT_DOUBLE_EQ(WeightedCutValue(s, in_s2), 4.0);
}

}  // namespace
}  // namespace gms
