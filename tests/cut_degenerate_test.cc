// Tests for full reconstruction of cut-degenerate hypergraphs (Theorem 15).
#include <gtest/gtest.h>

#include "exact/degeneracy.h"
#include "graph/generators.h"
#include "reconstruct/cut_degenerate.h"

namespace gms {
namespace {

TEST(CutDegenerateTest, ReconstructsLemma10Witness) {
  // 2-cut-degenerate but not 2-degenerate: exactly the case where Theorem
  // 15 beats the Becker et al. row sketches.
  Graph g = Lemma10Witness();
  ASSERT_EQ(CutDegeneracyBrute(g), 2u);
  ASSERT_FALSE(IsDDegenerate(g, 2));
  CutDegenerateReconstructor rec(8, 2, /*d=*/2, 1);
  rec.Process(DynamicStream::InsertOnly(g, 2));
  auto r = rec.Reconstruct();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->complete);
  EXPECT_EQ(r->hypergraph.ToGraph(), g);
}

TEST(CutDegenerateTest, ReconstructsSparseRandomGraphs) {
  for (uint64_t seed = 0; seed < 3; ++seed) {
    Graph g = Gnm(18, 24, 10 + seed);
    // Pick d adaptively: the light-completeness threshold.
    size_t d = LightCompleteness(Hypergraph::FromGraph(g));
    CutDegenerateReconstructor rec(18, 2, d, 20 + seed);
    rec.Process(DynamicStream::InsertOnly(g, seed));
    auto r = rec.Reconstruct();
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r->complete);
    EXPECT_EQ(r->hypergraph.ToGraph(), g);
  }
}

TEST(CutDegenerateTest, ReconstructsHyperCycle) {
  Hypergraph h = HyperCycle(14, 3);
  size_t d = LightCompleteness(h);
  CutDegenerateReconstructor rec(14, 3, d, 30);
  rec.Process(DynamicStream::InsertOnly(h, 4));
  auto r = rec.Reconstruct();
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->complete);
  EXPECT_TRUE(r->hypergraph == h);
}

TEST(CutDegenerateTest, IncompleteWhenDTooSmall) {
  // A 6-clique needs d = 5; at d = 2 reconstruction must report
  // incompleteness, not silently return a wrong graph.
  Graph g = CompleteGraph(6);
  CutDegenerateReconstructor rec(6, 2, 2, 40);
  rec.Process(DynamicStream::InsertOnly(g, 5));
  auto r = rec.Reconstruct();
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->complete);
  for (const auto& e : r->hypergraph.Edges()) {
    EXPECT_TRUE(g.HasEdge(e.AsEdge()));  // never invents edges
  }
}

TEST(CutDegenerateTest, ChurnStream) {
  Graph g = Lemma10Witness();
  DynamicStream stream = DynamicStream::WithChurn(g, 80, 6);
  CutDegenerateReconstructor rec(8, 2, 2, 50);
  rec.Process(stream);
  auto r = rec.Reconstruct();
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->complete);
  EXPECT_EQ(r->hypergraph.ToGraph(), g);
}

}  // namespace
}  // namespace gms
