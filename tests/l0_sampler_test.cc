// Tests for the L0 sampler: correctness of returned samples, linearity,
// behaviour on zero vectors, rough uniformity of the sampled coordinate.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>

#include "sketch/l0_sampler.h"
#include "util/random.h"

namespace gms {
namespace {

TEST(L0SamplerTest, SamplesTheOnlyCoordinate) {
  L0Shape shape(1 << 20, SketchConfig::Default(), 1);
  L0State state(&shape);
  state.Update(54321, 2);
  auto s = state.Sample();
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->index, 54321u);
  EXPECT_EQ(s->value, 2);
}

TEST(L0SamplerTest, ZeroVectorReportsDecodeFailure) {
  L0Shape shape(1000, SketchConfig::Default(), 2);
  L0State state(&shape);
  EXPECT_TRUE(state.IsZero());
  auto s = state.Sample();
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.status().IsDecodeFailure());
}

TEST(L0SamplerTest, SampleIsFromSupport) {
  L0Shape shape(u128{1} << 40, SketchConfig::Default(), 3);
  L0State state(&shape);
  std::set<uint64_t> support;
  Rng rng(4);
  for (int i = 0; i < 500; ++i) {
    uint64_t x = rng.Next() & ((1ULL << 40) - 1);
    if (support.insert(x).second) state.Update(x, 1);
  }
  for (int trial = 0; trial < 5; ++trial) {
    auto s = state.Sample();
    ASSERT_TRUE(s.ok());
    EXPECT_TRUE(support.count(static_cast<uint64_t>(s->index)));
    EXPECT_EQ(s->value, 1);
  }
}

TEST(L0SamplerTest, CancellationsInvisible) {
  L0Shape shape(1 << 30, SketchConfig::Default(), 5);
  L0State state(&shape);
  state.Update(100, 1);
  // A large batch inserted and fully deleted must not affect sampling.
  for (int i = 0; i < 2000; ++i) state.Update(1000 + i, 3);
  for (int i = 0; i < 2000; ++i) state.Update(1000 + i, -3);
  auto s = state.Sample();
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->index, 100u);
}

TEST(L0SamplerTest, AddCombinesStates) {
  L0Shape shape(1 << 16, SketchConfig::Default(), 6);
  L0State a(&shape), b(&shape);
  a.Update(11, 1);
  b.Update(11, -1);
  b.Update(22, 1);
  a.Add(b);
  auto s = a.Sample();
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->index, 22u);
}

TEST(L0SamplerTest, SamplerSucceedsAcrossSupportScales) {
  // Support from 1 to ~4096: some level always lands within capacity.
  L0Shape shape(u128{1} << 30, SketchConfig::Default(), 7);
  for (int scale = 0; scale <= 12; scale += 3) {
    L0State state(&shape);
    size_t support = size_t{1} << scale;
    for (size_t i = 0; i < support; ++i) {
      state.Update(static_cast<u128>(i * 97 + 5), 1);
    }
    auto s = state.Sample();
    ASSERT_TRUE(s.ok()) << "support=" << support << " "
                        << s.status().ToString();
    uint64_t idx = static_cast<uint64_t>(s->index);
    EXPECT_EQ((idx - 5) % 97, 0u);
    EXPECT_LT((idx - 5) / 97, support);
  }
}

TEST(L0SamplerTest, RoughUniformityAcrossSeeds) {
  // Sampling is pseudo-uniform over the support when randomness is fresh:
  // run many independent shapes over the same 8-element support and check
  // each element is picked a reasonable number of times.
  const int kSupport = 8;
  const int kTrials = 400;
  std::map<uint64_t, int> counts;
  int failures = 0;
  int successes = 0;
  for (int t = 0; t < kTrials; ++t) {
    L0Shape shape(10000, SketchConfig::Default(), 1000 + t);
    L0State state(&shape);
    for (int i = 0; i < kSupport; ++i) state.Update(100 + i, 1);
    auto s = state.Sample();
    // Sampling is a whp guarantee, not a certainty: with the default config
    // a fresh shape fails to decode ~0.4% of the time (the same rate across
    // kernel revisions). Bound the rate instead of asserting zero so the
    // test is robust to reseeding.
    if (!s.ok()) {
      ++failures;
      continue;
    }
    ++successes;
    ++counts[static_cast<uint64_t>(s->index)];
  }
  EXPECT_LE(failures, kTrials / 50) << "sampler failure rate above 2%";
  EXPECT_EQ(counts.size(), static_cast<size_t>(kSupport));
  double expect = static_cast<double>(successes) / kSupport;
  double chi2 = 0;
  for (auto [idx, c] : counts) {
    chi2 += (c - expect) * (c - expect) / expect;
  }
  // 7 degrees of freedom; 24.3 is the 0.001 quantile. Generous headroom
  // since the selection-hash scheme is only approximately uniform.
  EXPECT_LT(chi2, 40.0);
}

TEST(L0SamplerTest, MemoryMatchesShapeCells) {
  SketchConfig cfg;
  L0Shape shape(1 << 20, cfg, 8);
  L0State state(&shape);
  size_t expected_cells = shape.TotalCells();
  EXPECT_GE(state.MemoryBytes(), expected_cells * sizeof(OneSparseCell));
}

TEST(L0SamplerTest, DomainBitsDriveLevelCount) {
  SketchConfig cfg;
  L0Shape small(1 << 10, cfg, 9);
  L0Shape large(u128{1} << 90, cfg, 9);
  EXPECT_LT(small.num_levels(), large.num_levels());
  EXPECT_EQ(small.num_levels(), 11 + 1);
  EXPECT_EQ(large.num_levels(), 91 + 1);
}

// Property sweep: insert/delete mixes with varying survivor counts.
class L0Sweep : public ::testing::TestWithParam<std::tuple<int, uint64_t>> {};

TEST_P(L0Sweep, SamplesSurvivor) {
  auto [survivors, seed] = GetParam();
  Rng rng(seed);
  L0Shape shape(u128{1} << 48, SketchConfig::Default(), seed * 7 + 3);
  L0State state(&shape);
  std::set<uint64_t> alive;
  // Insert 3x survivors, delete down to survivors.
  std::vector<uint64_t> all;
  while (static_cast<int>(all.size()) < 3 * survivors) {
    uint64_t x = rng.Next() & ((1ULL << 48) - 1);
    if (alive.insert(x).second) {
      all.push_back(x);
      state.Update(x, 1);
    }
  }
  for (size_t i = static_cast<size_t>(survivors); i < all.size(); ++i) {
    state.Update(all[i], -1);
    alive.erase(all[i]);
  }
  auto s = state.Sample();
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  EXPECT_TRUE(alive.count(static_cast<uint64_t>(s->index)));
}

INSTANTIATE_TEST_SUITE_P(
    Mixes, L0Sweep,
    ::testing::Combine(::testing::Values(1, 5, 40, 300),
                       ::testing::Values(1u, 2u, 3u)));

}  // namespace
}  // namespace gms
