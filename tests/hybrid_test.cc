// Hybrid sparse/dense representation contracts (DESIGN.md §12): a vertex
// column buffers its first sparse_threshold updates exactly and escalates
// into the dense L0 arena by replaying the buffer. The testable promises:
//
//  - Escalation is invisible in the measurement: around the threshold
//    (T-1, T, T+1 updates) every ingest engine -- serial, column-sharded,
//    sharded-merge, gutter driver, and explicit clone+MergeFrom shard
//    splits -- serializes to byte-identical frames.
//  - An escalated column's raw words are bit-identical to a
//    dense-from-the-start (threshold 0) sketch of the same stream.
//  - MergeFrom is exact across every phase pairing (sparse x sparse,
//    sparse x dense, dense x sparse) for any shard split and merge order.
//  - A net-zero stream returns a sparse sketch to the empty measurement.
//  - While sparse, extraction is EXACT: the buffered edges feed Borůvka
//    directly, so a low-degree graph decodes with no sampling failure.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "connectivity/spanning_forest_sketch.h"
#include "graph/generators.h"
#include "graph/union_find.h"
#include "sketch/l0_sampler.h"
#include "stream/stream.h"
#include "wire/wire.h"

namespace gms {
namespace {

std::vector<uint8_t> FrameOf(const SpanningForestSketch& sketch) {
  std::vector<uint8_t> bytes;
  sketch.Serialize(&bytes);
  return bytes;
}

// A star stream: `count` edges incident on hub 0 (so the hub's column
// absorbs exactly `count` updates; every leaf absorbs one).
std::vector<StreamUpdate> StarStream(uint32_t count) {
  std::vector<StreamUpdate> updates;
  for (uint32_t i = 1; i <= count; ++i) {
    updates.emplace_back(Hyperedge{0, static_cast<VertexId>(i)}, +1);
  }
  return updates;
}

TEST(HybridTest, EscalationBoundaryBitIdentityAcrossEngines) {
  constexpr size_t kN = 64;
  constexpr uint64_t kSeed = 99;
  constexpr uint32_t kT = 8;
  ForestSketchParams params;
  params.config = SketchConfig::Light();
  params.config.sparse_threshold = kT;

  for (uint32_t count : {kT - 1, kT, kT + 1}) {
    const std::vector<StreamUpdate> updates = StarStream(count);
    SpanningForestSketch serial(kN, /*max_rank=*/2, kSeed, params);
    for (const auto& u : updates) serial.Update(u.edge, u.delta);
    EXPECT_EQ(serial.VertexEscalated(0), count > kT) << "count=" << count;
    const std::vector<uint8_t> want = FrameOf(serial);

    // Every parallel ingest engine must land on the same frame bytes
    // (counters included -- the phase is part of the round-trip).
    const IngestMode modes[] = {IngestMode::kColumnSharded,
                                IngestMode::kShardedMerge,
                                IngestMode::kGutterDriver};
    for (IngestMode mode : modes) {
      const ForestSketchParams engine_params =
          ForestSketchParams::Builder(params).Threads(4).Mode(mode).Build();
      SpanningForestSketch parallel(kN, 2, kSeed, engine_params);
      parallel.Process(std::span<const StreamUpdate>(updates));
      EXPECT_TRUE(parallel.StateEquals(serial))
          << "count=" << count << " mode=" << static_cast<int>(mode);
      EXPECT_EQ(FrameOf(parallel), want)
          << "count=" << count << " mode=" << static_cast<int>(mode);
    }

    // Explicit shard split: the hub's updates straddle the split, so the
    // merge exercises the buffer-union (and, at count > T, escalation at
    // merge time rather than ingest time).
    for (size_t split = 0; split <= updates.size(); ++split) {
      SpanningForestSketch a(kN, 2, kSeed, params);
      SpanningForestSketch b = a.CloneEmpty();
      for (size_t i = 0; i < split; ++i) {
        a.Update(updates[i].edge, updates[i].delta);
      }
      for (size_t i = split; i < updates.size(); ++i) {
        b.Update(updates[i].edge, updates[i].delta);
      }
      ASSERT_TRUE(a.MergeFrom(b).ok());
      EXPECT_TRUE(a.StateEquals(serial))
          << "count=" << count << " split=" << split;
      EXPECT_EQ(FrameOf(a), want) << "count=" << count << " split=" << split;
    }

    // Round trip: the phase must survive the wire.
    auto reread = SpanningForestSketch::Deserialize(want);
    ASSERT_TRUE(reread.ok()) << "count=" << count;
    EXPECT_TRUE(reread->StateEquals(serial)) << "count=" << count;
    EXPECT_EQ(reread->VertexEscalated(0), count > kT) << "count=" << count;
    EXPECT_EQ(FrameOf(*reread), want) << "count=" << count;
  }
}

TEST(HybridTest, EscalatedColumnsMatchDenseFromTheStart) {
  constexpr size_t kN = 32;
  constexpr uint64_t kSeed = 7;
  ForestSketchParams hybrid_params;
  hybrid_params.config = SketchConfig::Light();
  hybrid_params.config.sparse_threshold = 1;
  ForestSketchParams dense_params = hybrid_params;
  dense_params.config.sparse_threshold = 0;

  // Cycle-union degrees are >= 2 everywhere (shared edges dedup, but each
  // cycle alone contributes 2): every column crosses threshold 1.
  Graph g = UnionOfHamiltonianCycles(kN, 3, kSeed);
  DynamicStream stream = DynamicStream::InsertOnly(g, kSeed + 1);

  SpanningForestSketch hybrid(kN, 2, kSeed, hybrid_params);
  SpanningForestSketch dense(kN, 2, kSeed, dense_params);
  for (const auto& u : stream.updates()) {
    hybrid.Update(u.edge, u.delta);
    dense.Update(u.edge, u.delta);
  }
  for (VertexId v = 0; v < kN; ++v) {
    ASSERT_TRUE(hybrid.VertexEscalated(v)) << "v=" << v;
  }

  // The configs differ on the wire (threshold field, cell repr), but the
  // raw arena words must be bit-identical: both frames end in the same
  // num_active * rounds * state-words dump, in ordinal order.
  std::vector<uint8_t> hybrid_bytes = FrameOf(hybrid);
  std::vector<uint8_t> dense_bytes = FrameOf(dense);
  auto hybrid_frame =
      wire::ParseFrame(hybrid_bytes, wire::FrameType::kSpanningForest);
  auto dense_frame =
      wire::ParseFrame(dense_bytes, wire::FrameType::kSpanningForest);
  ASSERT_TRUE(hybrid_frame.ok());
  ASSERT_TRUE(dense_frame.ok());
  const size_t arena_bytes = dense_frame->payload.size() - 1;  // repr byte
  ASSERT_GE(hybrid_frame->payload.size(), arena_bytes);
  EXPECT_TRUE(std::equal(
      dense_frame->payload.end() - arena_bytes, dense_frame->payload.end(),
      hybrid_frame->payload.end() - arena_bytes));

  auto hybrid_span = hybrid.ExtractSpanningGraph();
  auto dense_span = dense.ExtractSpanningGraph();
  ASSERT_TRUE(hybrid_span.ok());
  ASSERT_TRUE(dense_span.ok());
  EXPECT_TRUE(hybrid_span.value() == dense_span.value());
}

TEST(HybridTest, MergeIsExactAcrossPhasePairings) {
  constexpr size_t kN = 96;
  constexpr uint64_t kSeed = 41;
  ForestSketchParams params;
  params.config = SketchConfig::Light();
  params.config.sparse_threshold = 8;

  // Hamiltonian-cycle union + churn: degrees scatter around the threshold,
  // so any split leaves some vertices sparse in both shards, some dense in
  // both, and some mixed -- all four lattice cases in one stream.
  Graph g = UnionOfHamiltonianCycles(kN, 4, kSeed);
  DynamicStream stream = DynamicStream::WithChurn(g, /*decoys=*/kN, kSeed + 1);
  const auto& updates = stream.updates();

  SpanningForestSketch serial(kN, 2, kSeed, params);
  for (const auto& u : updates) serial.Update(u.edge, u.delta);
  const std::vector<uint8_t> want = FrameOf(serial);

  const size_t splits[] = {1, updates.size() / 3, updates.size() / 2,
                           2 * updates.size() / 3, updates.size() - 1};
  for (size_t split : splits) {
    SpanningForestSketch a(kN, 2, kSeed, params);
    SpanningForestSketch b = a.CloneEmpty();
    for (size_t i = 0; i < split; ++i) a.Update(updates[i].edge,
                                                updates[i].delta);
    for (size_t i = split; i < updates.size(); ++i) {
      b.Update(updates[i].edge, updates[i].delta);
    }
    ASSERT_TRUE(a.MergeFrom(b).ok()) << "split=" << split;
    EXPECT_EQ(FrameOf(a), want) << "split=" << split;

    // The mirror-image merge must land on the same bytes (the lattice is
    // commutative even though escalation happens on different sides).
    SpanningForestSketch c(kN, 2, kSeed, params);
    SpanningForestSketch d = c.CloneEmpty();
    for (size_t i = 0; i < split; ++i) d.Update(updates[i].edge,
                                                updates[i].delta);
    for (size_t i = split; i < updates.size(); ++i) {
      c.Update(updates[i].edge, updates[i].delta);
    }
    ASSERT_TRUE(c.MergeFrom(d).ok()) << "split=" << split;
    EXPECT_EQ(FrameOf(c), want) << "split=" << split;
  }

  // Three shards merged in both association orders.
  const size_t third = updates.size() / 3;
  for (bool reverse : {false, true}) {
    SpanningForestSketch a(kN, 2, kSeed, params);
    SpanningForestSketch b = a.CloneEmpty();
    SpanningForestSketch c = a.CloneEmpty();
    for (size_t i = 0; i < third; ++i) a.Update(updates[i].edge,
                                                updates[i].delta);
    for (size_t i = third; i < 2 * third; ++i) {
      b.Update(updates[i].edge, updates[i].delta);
    }
    for (size_t i = 2 * third; i < updates.size(); ++i) {
      c.Update(updates[i].edge, updates[i].delta);
    }
    if (reverse) {
      ASSERT_TRUE(a.MergeFrom(c).ok());
      ASSERT_TRUE(a.MergeFrom(b).ok());
    } else {
      ASSERT_TRUE(a.MergeFrom(b).ok());
      ASSERT_TRUE(a.MergeFrom(c).ok());
    }
    EXPECT_EQ(FrameOf(a), want) << "reverse=" << reverse;
  }
}

TEST(HybridTest, NetZeroStreamReturnsToEmptyWhileSparse) {
  constexpr size_t kN = 32;
  constexpr uint64_t kSeed = 3;
  ForestSketchParams params;
  params.config = SketchConfig::Light();  // threshold 32 > path degree 2

  SpanningForestSketch sketch(kN, 2, kSeed, params);
  Graph path = PathGraph(kN);
  DynamicStream stream = DynamicStream::InsertOnly(path, kSeed + 1);
  for (const auto& u : stream.updates()) sketch.Update(u.edge, u.delta);
  for (const auto& u : stream.updates()) sketch.Update(u.edge, -u.delta);

  // Every column stayed sparse (2 inserts + 2 deletes <= 32) and every
  // buffer cancelled to empty: the measurement is the empty stream's.
  SpanningForestSketch fresh(kN, 2, kSeed, params);
  EXPECT_TRUE(sketch.StateEquals(fresh));
  for (VertexId v = 0; v < kN; ++v) {
    EXPECT_FALSE(sketch.VertexEscalated(v)) << "v=" << v;
  }
  auto span = sketch.ExtractSpanningGraph();
  ASSERT_TRUE(span.ok());
  EXPECT_EQ(span->Edges().size(), 0u);

  // The counters still remember the traffic, and they round-trip.
  std::vector<uint8_t> bytes = FrameOf(sketch);
  auto reread = SpanningForestSketch::Deserialize(bytes);
  ASSERT_TRUE(reread.ok());
  EXPECT_TRUE(reread->StateEquals(sketch));
  EXPECT_EQ(FrameOf(*reread), bytes);
}

TEST(HybridTest, SparsePhaseExtractionIsExact) {
  constexpr size_t kN = 128;
  constexpr uint64_t kSeed = 17;
  ForestSketchParams params;
  params.config = SketchConfig::Light();

  SpanningForestSketch sketch(kN, 2, kSeed, params);
  Graph path = PathGraph(kN);
  DynamicStream stream = DynamicStream::InsertOnly(path, kSeed + 1);
  for (const auto& u : stream.updates()) sketch.Update(u.edge, u.delta);

  // Degree <= 2 < 32: every column is sparse, so the buffered edges ARE
  // the graph and the pre-round connects it without touching a sampler.
  ExtractStats stats;
  auto span = sketch.ExtractSpanningGraph(/*threads=*/1, &stats);
  ASSERT_TRUE(span.ok());
  EXPECT_EQ(span->Edges().size(), kN - 1);
  EXPECT_EQ(stats.sample_attempts, 0u);
  UnionFind uf(kN);
  for (const auto& e : span->Edges()) {
    for (size_t i = 1; i < e.size(); ++i) uf.Union(e[0], e[i]);
  }
  for (VertexId v = 1; v < kN; ++v) {
    EXPECT_EQ(uf.Find(v), uf.Find(0)) << "v=" << v;
  }
}

TEST(HybridTest, AllSparseExtractSparseExactMatchesFullExtraction) {
  constexpr size_t kN = 96;
  constexpr uint64_t kSeed = 131;
  ForestSketchParams params;
  params.config = SketchConfig::Light();

  // Two disjoint paths plus churn decoys: more than one true component,
  // deletions exercise buffer cancellation, and every degree stays far
  // below the sparse threshold -- the container fast-path case.
  Graph g(kN);
  for (VertexId v = 1; v < kN / 2; ++v) g.AddEdge(v - 1, v);
  for (VertexId v = kN / 2 + 1; v < kN; ++v) g.AddEdge(v - 1, v);
  const DynamicStream stream = DynamicStream::WithChurn(g, 64, kSeed + 1);

  SpanningForestSketch sketch(kN, /*max_rank=*/2, kSeed, params);
  sketch.Process(stream);
  ASSERT_TRUE(sketch.AllSparse());

  ExtractStats full_stats;
  auto full = sketch.ExtractSpanningGraph(/*threads=*/1, &full_stats);
  ASSERT_TRUE(full.ok());
  ExtractStats fast_stats;
  auto fast = sketch.ExtractSparseExact(&fast_stats);
  ASSERT_TRUE(fast.ok());
  // The skipped Borůvka rounds could not have added anything: identical
  // graphs (same edges, same order), identical edge counts.
  EXPECT_TRUE(fast.value() == full.value());
  EXPECT_EQ(fast_stats.edges_found, full_stats.edges_found);
  EXPECT_EQ(fast_stats.sparse_exact_forests, 1u);
  EXPECT_EQ(fast_stats.rounds_run, 0);
  EXPECT_EQ(fast_stats.sample_attempts, 0u);
  EXPECT_EQ(fast_stats.summed_words, 0u);
  EXPECT_EQ(full_stats.sparse_exact_forests, 0u);
}

TEST(HybridTest, AllSparseFlipsOffAtFirstEscalation) {
  constexpr size_t kN = 64;
  constexpr uint64_t kSeed = 137;
  constexpr uint32_t kT = 8;
  ForestSketchParams params;
  params.config = SketchConfig::Light();
  params.config.sparse_threshold = kT;

  SpanningForestSketch sketch(kN, 2, kSeed, params);
  EXPECT_TRUE(sketch.AllSparse());
  const std::vector<StreamUpdate> updates = StarStream(kT + 1);
  for (const auto& u : updates) sketch.Update(u.edge, u.delta);
  // The hub crossed the threshold: one escalated column disqualifies the
  // sparse-exact path for the whole sketch.
  EXPECT_TRUE(sketch.VertexEscalated(0));
  EXPECT_FALSE(sketch.AllSparse());

  // Threshold 0 (pure dense) is never "all sparse".
  ForestSketchParams dense = params;
  dense.config.sparse_threshold = 0;
  SpanningForestSketch dense_sketch(kN, 2, kSeed, dense);
  EXPECT_FALSE(dense_sketch.AllSparse());
}

TEST(HybridTest, SparseFrameRejectsEveryByteFlipAndTruncation) {
  constexpr size_t kN = 16;
  constexpr uint64_t kSeed = 23;
  ForestSketchParams params;
  params.config = SketchConfig::Light();

  SpanningForestSketch sketch(kN, 2, kSeed, params);
  const std::vector<StreamUpdate> updates = StarStream(5);
  for (const auto& u : updates) sketch.Update(u.edge, u.delta);
  std::vector<uint8_t> bytes = FrameOf(sketch);

  for (size_t i = 0; i < bytes.size(); ++i) {
    std::vector<uint8_t> corrupt = bytes;
    corrupt[i] ^= 0x5A;
    EXPECT_FALSE(SpanningForestSketch::Deserialize(corrupt).ok())
        << "flipped byte " << i;
  }
  for (size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_FALSE(
        SpanningForestSketch::Deserialize(
            std::span<const uint8_t>(bytes.data(), len))
            .ok())
        << "truncated to " << len;
  }
}

TEST(HybridTest, L0SamplerPhasesMatchForestSemantics) {
  const u128 kDomain = u128{1} << 20;
  constexpr uint64_t kSeed = 11;
  SketchConfig hybrid_config = SketchConfig::Light();
  hybrid_config.sparse_threshold = 6;
  SketchConfig dense_config = hybrid_config;
  dense_config.sparse_threshold = 0;

  std::vector<L0Update> updates;
  for (uint64_t i = 0; i < 12; ++i) {
    updates.push_back(L0Update{u128{i * 977 + 5}, +1});
  }

  // Sparse phase: exact support, exact sample, tiny frame.
  L0Sampler sparse(kDomain, hybrid_config, kSeed);
  sparse.Process(std::span<const L0Update>(updates.data(), 4));
  EXPECT_FALSE(sparse.Escalated());
  auto sample = sparse.Sample();
  ASSERT_TRUE(sample.ok());
  EXPECT_EQ(sample->value, 1);
  {
    L0Sampler dense(kDomain, dense_config, kSeed);
    dense.Process(std::span<const L0Update>(updates.data(), 4));
    EXPECT_LT(sparse.SpaceBytes(), dense.SpaceBytes() / 4);
  }
  std::vector<uint8_t> bytes;
  sparse.Serialize(&bytes);
  auto reread = L0Sampler::Deserialize(bytes);
  ASSERT_TRUE(reread.ok());
  EXPECT_TRUE(reread->StateEquals(sparse));
  EXPECT_FALSE(reread->Escalated());

  // Escalation: bit-identical to dense-from-the-start (StateEquals
  // compares cells + buffer, both empty after escalation on both sides).
  L0Sampler escalated(kDomain, hybrid_config, kSeed);
  escalated.Process(updates);
  EXPECT_TRUE(escalated.Escalated());
  L0Sampler dense(kDomain, dense_config, kSeed);
  dense.Process(updates);
  EXPECT_TRUE(escalated.StateEquals(dense));

  // Merge lattice: sparse x sparse and sparse x dense splits both equal
  // the serial sampler, frame bytes included.
  std::vector<uint8_t> want;
  escalated.Serialize(&want);
  for (size_t split : {size_t{2}, size_t{5}, size_t{9}}) {
    L0Sampler a(kDomain, hybrid_config, kSeed);
    L0Sampler b = a.CloneEmpty();
    a.Process(std::span<const L0Update>(updates.data(), split));
    b.Process(std::span<const L0Update>(updates.data() + split,
                                        updates.size() - split));
    ASSERT_TRUE(a.MergeFrom(b).ok()) << "split=" << split;
    EXPECT_TRUE(a.StateEquals(escalated)) << "split=" << split;
    std::vector<uint8_t> merged;
    a.Serialize(&merged);
    EXPECT_EQ(merged, want) << "split=" << split;
  }

  // Net zero while sparse: back to the empty measurement, sample honest.
  L0Sampler cancel(kDomain, hybrid_config, kSeed);
  cancel.Update(42, +1);
  cancel.Update(42, -1);
  EXPECT_TRUE(cancel.StateEquals(L0Sampler(kDomain, hybrid_config, kSeed)));
  EXPECT_FALSE(cancel.Sample().ok());
}

}  // namespace
}  // namespace gms
