// Tests for the Becker et al. d-degenerate row-sketch reconstruction.
#include <gtest/gtest.h>

#include "exact/degeneracy.h"
#include "graph/generators.h"
#include "reconstruct/row_reconstruct.h"

namespace gms {
namespace {

TEST(RowReconstructTest, TreeReconstructsAtD1) {
  Graph t = RandomTree(30, 1);
  RowReconstructSketch sketch(30, 1, 2);
  sketch.Process(DynamicStream::InsertOnly(t, 3));
  auto r = sketch.Reconstruct();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(*r, t);
}

TEST(RowReconstructTest, DDegenerateFamiliesAcrossD) {
  for (size_t d = 1; d <= 3; ++d) {
    for (uint64_t seed = 0; seed < 3; ++seed) {
      Graph g = RandomDDegenerate(25, d, 10 * d + seed);
      RowReconstructSketch sketch(25, d, 100 * d + seed);
      sketch.Process(DynamicStream::InsertOnly(g, seed));
      auto r = sketch.Reconstruct();
      ASSERT_TRUE(r.ok()) << "d=" << d << " seed=" << seed << " "
                          << r.status().ToString();
      EXPECT_EQ(*r, g);
    }
  }
}

TEST(RowReconstructTest, ChurnStream) {
  Graph g = RandomDDegenerate(20, 2, 7);
  DynamicStream stream = DynamicStream::WithChurn(g, 100, 8);
  RowReconstructSketch sketch(20, 2, 9);
  sketch.Process(stream);
  auto r = sketch.Reconstruct();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, g);
}

TEST(RowReconstructTest, DenseGraphFailsCleanly) {
  // K30 has min degree 29 everywhere, while a d=1 row sketch has only
  // 3 rows x 8 buckets = 24 cells per row vector: no row can ever peel,
  // and the decode must fail cleanly rather than hallucinate a graph.
  Graph g = CompleteGraph(30);
  RowReconstructSketch sketch(30, 1, 10);
  sketch.Process(DynamicStream::InsertOnly(g, 11));
  auto r = sketch.Reconstruct();
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsDecodeFailure());
}

TEST(RowReconstructTest, WitnessNeedsLargerDThanCutDegeneracy) {
  // The Lemma 10 witness is 2-cut-degenerate but NOT 2-degenerate: its
  // degeneracy is 3, so the Becker row sketch must be provisioned at d=3
  // (Theorem 15's sketch needs only d=2; see cut_degenerate_test.cc).
  // Sized at its true degeneracy, the row sketch succeeds.
  Graph g = Lemma10Witness();
  ASSERT_EQ(Degeneracy(g), 3u);
  RowReconstructSketch sketch(8, 3, 12);
  sketch.Process(DynamicStream::InsertOnly(g, 13));
  auto r = sketch.Reconstruct();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, g);
}

TEST(RowReconstructTest, EmptyGraphReconstructsEmpty) {
  RowReconstructSketch sketch(10, 2, 14);
  auto r = sketch.Reconstruct();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->NumEdges(), 0u);
}

TEST(RowReconstructTest, MemoryIsPerVertexTimesCapacity) {
  RowReconstructSketch small(40, 1, 15);
  RowReconstructSketch large(40, 4, 15);
  EXPECT_LT(small.MemoryBytes(), large.MemoryBytes());
  EXPECT_EQ(small.capacity(), 2 * 2);
  EXPECT_EQ(large.capacity(), 2 * 5);
}

}  // namespace
}  // namespace gms
