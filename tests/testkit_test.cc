// Unit tests for the testkit itself: StreamSpec serialization and build
// determinism, Wilson intervals, the differential oracles (including the
// fault-injection hook), the delta-debugging shrinker, and the fuzz corpus
// codec. The shrinker demo here is the ISSUE's acceptance scenario: inject
// a lost-update bug, hand the failing churn stream to ShrinkStream, and
// get back a repro of at most a handful of edges.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "connectivity/spanning_forest_sketch.h"
#include "graph/traversal.h"
#include "stream/stream_driver.h"
#include "testkit/corpus.h"
#include "testkit/oracle.h"
#include "testkit/shrink.h"
#include "testkit/stream_spec.h"
#include "util/random.h"
#include "wire/wire.h"

namespace gms {
namespace testkit {
namespace {

// ---------- StreamSpec ----------

TEST(StreamSpecTest, ToStringParseRoundTripsEveryGridSpec) {
  for (const StreamSpec& spec : DefaultSpecGrid()) {
    const std::string line = spec.ToString();
    Result<StreamSpec> parsed = StreamSpec::Parse(line);
    ASSERT_TRUE(parsed.ok()) << line << " :: " << parsed.status().ToString();
    EXPECT_EQ(*parsed, spec) << line;
  }
}

TEST(StreamSpecTest, ParseRejectsGarbage) {
  EXPECT_FALSE(StreamSpec::Parse("").ok());
  EXPECT_FALSE(StreamSpec::Parse("gms-spec-v2;family=path;n=4").ok());
  EXPECT_FALSE(StreamSpec::Parse("gms-spec-v1;family=flat_torus;n=4").ok());
  EXPECT_FALSE(StreamSpec::Parse("gms-spec-v1;family=path;n=banana").ok());
  EXPECT_FALSE(StreamSpec::Parse("gms-spec-v1;familia=path").ok());
}

TEST(StreamSpecTest, BuildIsDeterministicAndValid) {
  for (const StreamSpec& spec : DefaultSpecGrid()) {
    BuiltStream a = spec.Build();
    BuiltStream b = spec.Build();
    ASSERT_TRUE(a.stream.Validate()) << spec.ToString();
    EXPECT_EQ(a.stream.updates(), b.stream.updates()) << spec.ToString();
    EXPECT_EQ(a.max_rank, b.max_rank);
    // The stream's final graph is the family's final graph.
    Hypergraph mat = a.stream.Materialize(spec.n);
    EXPECT_EQ(mat.NumEdges(), a.final_graph.NumEdges()) << spec.ToString();
    for (const Hyperedge& e : a.final_graph.Edges()) {
      EXPECT_TRUE(mat.HasEdge(e)) << spec.ToString();
    }
  }
}

TEST(StreamSpecTest, WithTrialIsDeterministicAndSeedDistinct) {
  StreamSpec base;
  base.family = Family::kErdosRenyi;
  base.n = 16;
  EXPECT_EQ(base.WithTrial(3), base.WithTrial(3));
  EXPECT_NE(base.WithTrial(3), base.WithTrial(4));
  std::set<uint64_t> gseeds;
  for (uint64_t t = 0; t < 64; ++t) gseeds.insert(base.WithTrial(t).gseed);
  EXPECT_EQ(gseeds.size(), 64u) << "trial derivation collided";
}

TEST(StreamSpecTest, ChurnSchedulesShareTheFinalGraph) {
  for (Churn churn : {Churn::kInsertOnly, Churn::kWithChurn,
                      Churn::kDeleteDown}) {
    StreamSpec spec;
    spec.family = Family::kRandomUniform;
    spec.n = 14;
    spec.m = 20;
    spec.rank = 3;
    spec.churn = churn;
    spec.decoys = 8;
    BuiltStream built = spec.Build();
    ASSERT_TRUE(built.stream.Validate()) << spec.ToString();
    Hypergraph mat = built.stream.Materialize(spec.n);
    EXPECT_EQ(mat.NumEdges(), built.final_graph.NumEdges()) << spec.ToString();
  }
}

// ---------- Wilson intervals ----------

TEST(WilsonTest, ZeroTrialsIsVacuous) {
  WilsonInterval w = Wilson(0, 0);
  EXPECT_EQ(w.lo, 0.0);
  EXPECT_EQ(w.hi, 1.0);
}

TEST(WilsonTest, PerfectRecordStillAdmitsHighRates) {
  WilsonInterval w = Wilson(32, 32);
  EXPECT_NEAR(w.lo, 0.8928, 1e-3);  // 32/32 does not prove p > 0.9
  EXPECT_EQ(w.hi, 1.0);
  EXPECT_TRUE(w.Contains(0.95));
}

TEST(WilsonTest, TotalFailureExcludesHighRates) {
  WilsonInterval w = Wilson(0, 100);
  EXPECT_LT(w.hi, 0.05);
  EXPECT_FALSE(w.Contains(0.5));
}

TEST(WilsonTest, CenteredCaseContainsTruth) {
  EXPECT_TRUE(Wilson(5, 10).Contains(0.5));
  EXPECT_TRUE(Wilson(9, 10).Contains(0.9));
  EXPECT_FALSE(Wilson(2, 100).Contains(0.5));
}

TEST(WilsonTest, SweepConsistency) {
  SweepResult r;
  r.trials = 32;
  r.successes = 32;
  EXPECT_TRUE(r.ConsistentWith(0.99));
  r.successes = 16;
  EXPECT_FALSE(r.ConsistentWith(0.99));
}

// ---------- Differential oracles ----------

TEST(OracleTest, ComponentsAgreesOnCleanStreams) {
  StreamSpec spec;
  spec.family = Family::kPath;
  spec.n = 20;
  for (uint64_t seed : {1, 2, 3, 5, 8}) {
    OracleOutcome out = RunOracle(OracleKind::kComponents, spec, seed);
    ASSERT_TRUE(out.applicable);
    EXPECT_TRUE(out.Succeeded()) << out.detail;
  }
}

TEST(OracleTest, FaultHookSurfacesLostUpdateAsDisagreement) {
  StreamSpec spec;
  spec.family = Family::kPath;
  spec.n = 20;
  OracleOptions opt;
  const Hyperedge target({9, 10});
  opt.fault.drop_update = [&](const StreamUpdate& u) {
    return u.edge == target;
  };
  OracleOutcome out = RunOracle(OracleKind::kComponents, spec, 7, opt);
  ASSERT_TRUE(out.applicable);
  EXPECT_FALSE(out.agreed);
  EXPECT_FALSE(out.decode_failure);
  // The detail line is a self-contained repro: oracle, seed, and spec.
  EXPECT_NE(out.detail.find("components"), std::string::npos) << out.detail;
  EXPECT_NE(out.detail.find("gms-spec-v1"), std::string::npos) << out.detail;
}

TEST(OracleTest, DroppedBatchCountsAllItsLostUpdates) {
  // Batched-apply fault accounting: a dropped gutter batch loses its FULL
  // entry count, not 1. Drop every batch -- the sketch sees nothing, the
  // components oracle disagrees, and the bookkeeping must equal the total
  // fan-out (2 incidence entries per rank-2 update). Counting dropped
  // batches as single losses would report at most n touched vertices.
  StreamSpec spec;
  spec.family = Family::kPath;
  spec.n = 20;
  BuiltStream built = spec.Build();

  OracleOptions opt;
  opt.driver_ingest = true;
  opt.fault.drop_batch = [](VertexId, size_t) { return true; };
  OracleOutcome out =
      RunOracleOnStream(OracleKind::kComponents, spec.n, built.max_rank,
                        built.stream, built.final_graph, {}, /*seed=*/7, opt);
  ASSERT_TRUE(out.applicable);
  EXPECT_FALSE(out.agreed) << out.detail;
  EXPECT_EQ(opt.fault.lost_updates.load(), 2 * built.stream.size());

  // The driver's own meters agree with the hook's bookkeeping when the
  // same fault is wired straight into DriveStream.
  opt.fault.lost_updates = 0;
  ForestSketchParams params;
  params.config = SketchConfig::Light();
  SpanningForestSketch sketch(spec.n, built.max_rank, /*seed=*/7, params);
  GutterDriverParams dp;
  dp.appliers = 2;
  dp.readers = 1;
  dp.drop_batch = [&](VertexId v, size_t entries) {
    return opt.fault.DropsBatch(v, entries);
  };
  DriverStats stats = DriveStream(
      &sketch, std::span<const StreamUpdate>(built.stream.updates()), dp);
  EXPECT_EQ(stats.dropped_updates, 2 * built.stream.size());
  EXPECT_EQ(stats.dropped_updates, opt.fault.lost_updates.load());
  EXPECT_GT(stats.dropped_batches, 0u);
  EXPECT_LT(stats.dropped_batches, stats.dropped_updates);
}

TEST(OracleTest, VcOracleSkipsHypergraphFamilies) {
  StreamSpec spec;
  spec.family = Family::kHyperCycle;
  spec.n = 12;
  spec.rank = 3;
  OracleOutcome out = RunOracle(OracleKind::kVcQuery, spec, 1);
  EXPECT_FALSE(out.applicable);
}

TEST(OracleTest, SweepCollectsFailureRepros) {
  StreamSpec spec;
  spec.family = Family::kCycle;
  spec.n = 12;
  OracleOptions opt;
  const Hyperedge target({3, 4});
  opt.fault.drop_update = [&](const StreamUpdate& u) {
    return u.edge == target;
  };
  SweepResult sweep = RunSweep(OracleKind::kComponents, spec, 8, opt);
  EXPECT_EQ(sweep.trials, 8u);
  // Dropping a cycle edge never changes the component count ... of the
  // TRUE graph; the sketch sees a path instead of a cycle, which is still
  // one component, so this fault is INVISIBLE to the components oracle.
  EXPECT_EQ(sweep.successes, 8u) << (sweep.failures.empty()
                                         ? ""
                                         : sweep.failures.front());
  // The spanning-graph oracle also cannot see it (a path is a valid
  // spanning subgraph), but the L0 oracle samples the lost edge with
  // positive probability; across seeds somebody notices. This asymmetry is
  // why the sweep matrix runs EVERY oracle over every family.
  SweepResult l0 = RunSweep(OracleKind::kL0Sampler, spec, 8, opt);
  EXPECT_EQ(l0.trials, 8u);
}

// ---------- Shrinker ----------

// The acceptance scenario: a decoder bug (simulated by a dropped update on
// the sketch side) makes the components oracle disagree on a 23-edge path
// stream with 16 decoy insert+delete pairs. The shrinker must reduce that
// to a repro of at most 16 edges -- in fact it lands on exactly one.
TEST(ShrinkTest, MinimizesInjectedDecoderBugToOneEdge) {
  StreamSpec spec;
  spec.family = Family::kPath;
  spec.n = 24;
  spec.churn = Churn::kWithChurn;
  spec.decoys = 16;
  BuiltStream built = spec.Build();
  ASSERT_GT(built.stream.size(), 50u);  // worth shrinking

  OracleOptions opt;
  const Hyperedge target({11, 12});
  opt.fault.drop_update = [&](const StreamUpdate& u) {
    return u.edge == target;
  };
  FailurePredicate still_fails = [&](size_t n, const DynamicStream& cand) {
    Hypergraph truth = cand.Materialize(n);
    OracleOutcome out = RunOracleOnStream(
        OracleKind::kComponents, n, 2, cand, truth, {}, /*sketch_seed=*/7,
        opt);
    return out.applicable && !out.Succeeded();
  };

  ShrinkResult shrunk = ShrinkStream(spec.n, built.stream, still_fails);
  EXPECT_FALSE(shrunk.budget_exhausted);
  EXPECT_LE(shrunk.distinct_edges, 16u);  // the ISSUE's acceptance bound
  EXPECT_EQ(shrunk.distinct_edges, 1u);   // what the passes actually achieve
  EXPECT_EQ(shrunk.stream.size(), 1u);
  EXPECT_EQ(shrunk.stream.updates()[0].edge, target);
  EXPECT_EQ(shrunk.n, 13u);  // tightened to max vertex id + 1
  EXPECT_TRUE(still_fails(shrunk.n, shrunk.stream));
  EXPECT_TRUE(shrunk.stream.Validate());
}

TEST(ShrinkTest, RespectsPredicateBudget) {
  StreamSpec spec;
  spec.family = Family::kPath;
  spec.n = 16;
  BuiltStream built = spec.Build();
  size_t calls = 0;
  // Contrived always-failing predicate: counts invocations. An
  // always-failing input converges in a handful of calls (each ddmin chunk
  // removal succeeds), so exhausting the budget needs one smaller than
  // even that: 2 covers only the input re-check plus one chunk probe.
  FailurePredicate pred = [&](size_t, const DynamicStream&) {
    ++calls;
    return true;
  };
  ShrinkResult shrunk = ShrinkStream(spec.n, built.stream, pred,
                                     /*max_predicate_calls=*/2);
  EXPECT_TRUE(shrunk.budget_exhausted);
  EXPECT_LE(shrunk.predicate_calls, 2u);
  EXPECT_EQ(calls, shrunk.predicate_calls);
  // Whatever was reached is still a valid failing stream.
  EXPECT_TRUE(shrunk.stream.Validate());
}

TEST(ShrinkTest, ChurnFlattensToNetEffect) {
  // A stream whose failure depends only on one edge's presence shrinks
  // through its insert+delete+reinsert churn to a single insert.
  DynamicStream stream;
  const Hyperedge e({0, 1});
  const Hyperedge decoy({2, 3});
  stream.Push(e, +1);
  stream.Push(decoy, +1);
  stream.Push(e, -1);
  stream.Push(decoy, -1);
  stream.Push(e, +1);
  ASSERT_TRUE(stream.Validate());
  FailurePredicate pred = [&](size_t n, const DynamicStream& cand) {
    return cand.Materialize(n).HasEdge(e);
  };
  ShrinkResult shrunk = ShrinkStream(4, stream, pred);
  EXPECT_EQ(shrunk.stream.size(), 1u);
  EXPECT_EQ(shrunk.stream.updates()[0].edge, e);
  EXPECT_EQ(shrunk.stream.updates()[0].delta, +1);
}

// ---------- Fuzz corpus codec ----------

TEST(CorpusTest, EncodeDecodeRoundTripsGridStreams) {
  size_t checked = 0;
  for (const StreamSpec& spec : DefaultSpecGrid()) {
    BuiltStream built = spec.Build();
    if (spec.n > 31 || built.max_rank > 4 ||
        built.stream.size() > kMaxFuzzUpdates) {
      continue;
    }
    std::vector<uint8_t> bytes =
        EncodeFuzzStream(spec.n, built.max_rank, built.stream);
    DecodedFuzzStream dec = DecodeFuzzStream(bytes);
    EXPECT_EQ(dec.n, spec.n) << spec.ToString();
    EXPECT_EQ(dec.max_rank, built.max_rank) << spec.ToString();
    EXPECT_EQ(dec.updates, built.stream.updates()) << spec.ToString();
    ++checked;
  }
  EXPECT_GT(checked, 20u);  // the grid is mostly encodable by design
}

TEST(CorpusTest, DecodeIsTotalAndBounded) {
  Rng rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<uint8_t> bytes(rng.Below(200));
    for (uint8_t& b : bytes) b = static_cast<uint8_t>(rng.Below(256));
    DecodedFuzzStream dec = DecodeFuzzStream(bytes);
    EXPECT_GE(dec.n, 2u);
    EXPECT_LE(dec.n, 31u);
    EXPECT_GE(dec.max_rank, 2u);
    EXPECT_LE(dec.max_rank, 4u);
    EXPECT_LE(dec.updates.size(), kMaxFuzzUpdates);
    for (const StreamUpdate& u : dec.updates) {
      EXPECT_GE(u.edge.size(), 2u);
      EXPECT_LE(u.edge.size(), dec.max_rank);
      for (VertexId v : u.edge) EXPECT_LT(v, dec.n);
    }
  }
}

TEST(CorpusTest, WireSeedCorpusCoversEveryFrameType) {
  std::vector<CorpusEntry> entries = WireSeedCorpus();
  std::set<std::string> names;
  std::set<wire::FrameType> valid_types;
  for (const CorpusEntry& entry : entries) {
    EXPECT_TRUE(names.insert(entry.name).second)
        << "duplicate corpus name " << entry.name;
    Result<wire::FrameType> peek = wire::PeekFrameType(
        std::span<const uint8_t>(entry.bytes.data(), entry.bytes.size()));
    if (!peek.ok()) continue;  // deliberately corrupted entries
    Result<wire::Frame> frame = wire::ParseFrame(
        std::span<const uint8_t>(entry.bytes.data(), entry.bytes.size()),
        *peek);
    if (frame.ok()) valid_types.insert(*peek);
    // Entry names lead with the frame-type name.
    EXPECT_EQ(entry.name.rfind(wire::FrameTypeName(*peek), 0), 0u)
        << entry.name;
  }
  EXPECT_EQ(valid_types.size(), 6u)
      << "corpus must include a valid frame of every sketch type";
}

TEST(CorpusTest, StreamSeedCorpusIsNonTrivial) {
  std::vector<CorpusEntry> entries = StreamSeedCorpus();
  EXPECT_GE(entries.size(), 12u);
  for (const CorpusEntry& entry : entries) {
    DecodedFuzzStream dec = DecodeFuzzStream(entry.bytes);
    EXPECT_FALSE(dec.updates.empty()) << entry.name;
  }
}

TEST(CorpusTest, GeneratedCorporaAreDeterministic) {
  std::vector<CorpusEntry> a = WireSeedCorpus();
  std::vector<CorpusEntry> b = WireSeedCorpus();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].name, b[i].name);
    EXPECT_EQ(a[i].bytes, b[i].bytes) << a[i].name;
  }
}

}  // namespace
}  // namespace testkit
}  // namespace gms
