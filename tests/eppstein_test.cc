// Tests for the Eppstein et al. insert-only baseline: it works on
// insert-only streams, respects the O(kn) space bound, and demonstrably
// BREAKS under deletions (the motivating observation of Section 1.1).
#include <gtest/gtest.h>

#include "exact/vertex_connectivity.h"
#include "graph/generators.h"
#include "vertexconn/eppstein_baseline.h"

namespace gms {
namespace {

TEST(EppsteinTest, InsertOnlyCertifiesConnectivity) {
  for (uint64_t seed = 0; seed < 3; ++seed) {
    Graph g = UnionOfHamiltonianCycles(24, 3, 60 + seed);
    size_t kappa = VertexConnectivity(g);
    for (size_t k = 1; k <= 3; ++k) {
      EppsteinCertificate cert(24, k);
      cert.Process(DynamicStream::InsertOnly(g, seed));
      // min(k, kappa(cert)) = min(k, kappa(G)).
      size_t cert_kappa = VertexConnectivity(cert.certificate());
      EXPECT_EQ(std::min(k, cert_kappa), std::min(k, kappa))
          << "seed=" << seed << " k=" << k;
      EXPECT_EQ(cert.CertifiesKConnectivity(), kappa >= k);
    }
  }
}

TEST(EppsteinTest, SpaceStaysNearKn) {
  Graph g = CompleteGraph(24);  // 276 edges
  EppsteinCertificate cert(24, 2);
  cert.Process(DynamicStream::InsertOnly(g, 1));
  // The certificate keeps O(kn) edges: for k=2 far fewer than all 276.
  EXPECT_LE(cert.StoredEdges(), 2u * 24u);
  EXPECT_GT(cert.DroppedEdges(), 150u);
}

TEST(EppsteinTest, DroppedEdgesAreRedundantInsertOnly) {
  Graph g = CompleteBipartite(6, 6);
  EppsteinCertificate cert(12, 3);
  cert.Process(DynamicStream::InsertOnly(g, 2));
  EXPECT_TRUE(cert.CertifiesKConnectivity());
  EXPECT_TRUE(IsKVertexConnected(g, 3));
}

TEST(EppsteinTest, DeletionsBreakTheCertificate) {
  // Adversarial pattern: stream a dense graph, let the baseline drop
  // edges, then delete the stored witnesses. The baseline believes
  // connectivity survives (it cannot recall dropped edges) while the true
  // graph is disconnected -- or vice versa the certificate answer diverges
  // from the truth.
  size_t n = 14;
  Graph full = CompleteGraph(n);
  EppsteinCertificate cert(n, 2);
  cert.Process(DynamicStream::InsertOnly(full, 3));
  ASSERT_GT(cert.DroppedEdges(), 0u);
  // Delete every edge the certificate stored.
  Graph stored = cert.certificate();
  Graph remaining = full;
  for (const Edge& e : stored.Edges()) {
    cert.Delete(e);
    remaining.RemoveEdge(e);
  }
  // Truth: the remaining graph (only the dropped edges) is typically still
  // well-connected; the certificate is now empty and reports kappa = 0.
  EXPECT_EQ(cert.StoredEdges(), 0u);
  EXPECT_FALSE(cert.CertifiesKConnectivity());
  EXPECT_TRUE(IsKVertexConnected(remaining, 2))
      << "the adversarial instance should leave a 2-connected remainder";
  // The baseline's answer disagrees with the truth: the failure mode.
  EXPECT_NE(cert.CertifiesKConnectivity(), IsKVertexConnected(remaining, 2));
}

TEST(EppsteinTest, DuplicateInsertIgnored) {
  EppsteinCertificate cert(6, 2);
  EXPECT_TRUE(cert.Insert(Edge(0, 1)));
  EXPECT_FALSE(cert.Insert(Edge(0, 1)));
  EXPECT_EQ(cert.StoredEdges(), 1u);
}

TEST(EppsteinTest, MemoryAccountingMonotone) {
  EppsteinCertificate cert(10, 2);
  size_t before = cert.MemoryBytes();
  cert.Insert(Edge(0, 1));
  cert.Insert(Edge(2, 3));
  EXPECT_GT(cert.MemoryBytes(), before);
}

}  // namespace
}  // namespace gms
