// Tests for the Theorem 5 INDEX-reduction instances and their use with the
// vertex-connectivity query sketch.
#include <gtest/gtest.h>

#include "graph/traversal.h"
#include "vertexconn/lower_bound.h"
#include "vertexconn/vc_query_sketch.h"

namespace gms {
namespace {

TEST(VcLowerBoundTest, InstanceEncodesBitInConnectivity) {
  for (uint64_t seed = 0; seed < 20; ++seed) {
    auto inst = MakeVcLowerBoundInstance(3, 10, seed);
    // The generator asserts this internally too; restate as a test oracle.
    EXPECT_EQ(inst.ground_truth_disconnects, !inst.bit_value);
    EXPECT_EQ(inst.query.size(), inst.k);
    EXPECT_TRUE(inst.stream.Validate());
    EXPECT_EQ(inst.stream.Materialize(inst.graph.NumVertices()).ToGraph(),
              inst.graph);
  }
}

TEST(VcLowerBoundTest, SketchDecodesTheBitGivenEnoughSpace) {
  size_t correct = 0, total = 0;
  for (uint64_t seed = 0; seed < 8; ++seed) {
    auto inst = MakeVcLowerBoundInstance(2, 12, 50 + seed);
    const VcQueryParams p =
        VcQueryParams::Builder()
            .K(2)
            .RMultiplier(0.5)
            .Forest(ForestSketchParams::Builder()
                        .Config(SketchConfig::Light())
                        .Build())
            .Build();
    VcQuerySketch sketch(inst.graph.NumVertices(), p, 60 + seed);
    sketch.Process(inst.stream);
    auto snap = sketch.Query();
    ASSERT_TRUE(snap.ok());
    auto got = snap.value().Disconnects(inst.query);
    ASSERT_TRUE(got.ok());
    correct += (*got == inst.ground_truth_disconnects) ? 1 : 0;
    ++total;
  }
  EXPECT_EQ(correct, total);
}

TEST(VcLowerBoundTest, BothBitValuesOccur) {
  bool saw_one = false, saw_zero = false;
  for (uint64_t seed = 0; seed < 30 && !(saw_one && saw_zero); ++seed) {
    auto inst = MakeVcLowerBoundInstance(2, 8, seed);
    (inst.bit_value ? saw_one : saw_zero) = true;
  }
  EXPECT_TRUE(saw_one);
  EXPECT_TRUE(saw_zero);
}

}  // namespace
}  // namespace gms
