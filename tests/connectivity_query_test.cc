// Tests for the high-level connectivity / k-edge-connectivity queries.
#include <gtest/gtest.h>

#include "connectivity/connectivity_query.h"
#include "exact/stoer_wagner.h"
#include "graph/generators.h"
#include "graph/traversal.h"
#include "stream/stream.h"

namespace gms {
namespace {

TEST(ConnectivityQueryTest, ConnectedGraph) {
  Graph g = UnionOfHamiltonianCycles(48, 2, 3);
  ConnectivityQuery q(48, 2, 1);
  q.Process(DynamicStream::InsertOnly(g, 2));
  auto conn = q.IsConnected();
  ASSERT_TRUE(conn.ok());
  EXPECT_TRUE(*conn);
}

TEST(ConnectivityQueryTest, CountsComponents) {
  Graph g(33);
  for (VertexId i = 0; i + 1 < 11; ++i) g.AddEdge(i, i + 1);
  for (VertexId i = 11; i + 1 < 22; ++i) g.AddEdge(i, i + 1);
  for (VertexId i = 22; i + 1 < 33; ++i) g.AddEdge(i, i + 1);
  ConnectivityQuery q(33, 2, 5);
  q.Process(DynamicStream::InsertOnly(g, 4));
  auto ncomp = q.NumComponents();
  ASSERT_TRUE(ncomp.ok());
  EXPECT_EQ(*ncomp, 3u);
}

TEST(ConnectivityQueryTest, DeletionsDisconnect) {
  // A cycle loses two opposite edges -> two paths.
  Graph g = CycleGraph(30);
  ConnectivityQuery q(30, 2, 7);
  q.Process(DynamicStream::InsertOnly(g, 5));
  q.Update(Hyperedge{0, 1}, -1);
  q.Update(Hyperedge{15, 16}, -1);
  auto ncomp = q.NumComponents();
  ASSERT_TRUE(ncomp.ok());
  EXPECT_EQ(*ncomp, 2u);
}

TEST(ConnectivityQueryTest, HypergraphConnectivity) {
  Hypergraph h = RandomUniformHypergraph(26, 40, 3, 11);
  ConnectivityQuery q(26, 3, 9);
  q.Process(DynamicStream::InsertOnly(h, 6));
  auto ncomp = q.NumComponents();
  ASSERT_TRUE(ncomp.ok());
  EXPECT_EQ(*ncomp, NumComponents(h));
}

TEST(ConnectivityQueryTest, EmptyGraph) {
  ConnectivityQuery q(10, 2, 13);
  auto ncomp = q.NumComponents();
  ASSERT_TRUE(ncomp.ok());
  EXPECT_EQ(*ncomp, 10u);
  auto conn = q.IsConnected();
  ASSERT_TRUE(conn.ok());
  EXPECT_FALSE(*conn);
}

TEST(EdgeConnectivityQueryTest, MatchesExactWhenBelowK) {
  for (uint64_t seed = 0; seed < 3; ++seed) {
    Graph g = ErdosRenyi(18, 0.35, 20 + seed);
    size_t exact = EdgeConnectivity(g);
    EdgeConnectivityQuery q(18, 2, /*k=*/5, 30 + seed);
    q.Process(DynamicStream::InsertOnly(g, seed));
    auto capped = q.EdgeConnectivityCapped();
    ASSERT_TRUE(capped.ok());
    EXPECT_EQ(*capped, std::min<size_t>(exact, 5)) << "seed=" << seed;
  }
}

TEST(EdgeConnectivityQueryTest, DecisionVersion) {
  Graph g = UnionOfHamiltonianCycles(20, 2, 44);  // edge conn >= 2
  size_t exact = EdgeConnectivity(g);
  ASSERT_GE(exact, 2u);
  EdgeConnectivityQuery q2(20, 2, 2, 50);
  q2.Process(DynamicStream::InsertOnly(g, 1));
  auto yes = q2.IsKEdgeConnected();
  ASSERT_TRUE(yes.ok());
  EXPECT_TRUE(*yes);
  EdgeConnectivityQuery q9(20, 2, exact + 1, 51);
  q9.Process(DynamicStream::InsertOnly(g, 1));
  auto no = q9.IsKEdgeConnected();
  ASSERT_TRUE(no.ok());
  EXPECT_FALSE(*no);
}

TEST(EdgeConnectivityQueryTest, HypergraphEdgeConnectivity) {
  auto planted = PlantedHypergraphCut(18, 3, 2, 20, 60);
  EdgeConnectivityQuery q(18, 3, 4, 61);
  q.Process(DynamicStream::InsertOnly(planted.hypergraph, 2));
  auto capped = q.EdgeConnectivityCapped();
  ASSERT_TRUE(capped.ok());
  EXPECT_EQ(*capped, 2u);  // the planted cut
}

TEST(ConnectivityQueryTest, SameComponentQueries) {
  Graph g(20);
  for (VertexId i = 0; i + 1 < 10; ++i) g.AddEdge(i, i + 1);
  for (VertexId i = 10; i + 1 < 20; ++i) g.AddEdge(i, i + 1);
  ConnectivityQuery q(20, 2, 99);
  q.Process(DynamicStream::InsertOnly(g, 3));
  auto same = q.SameComponent(0, 9);
  ASSERT_TRUE(same.ok());
  EXPECT_TRUE(*same);
  auto diff = q.SameComponent(0, 15);
  ASSERT_TRUE(diff.ok());
  EXPECT_FALSE(*diff);
}

TEST(EdgeConnectivityQueryTest, MinCutSideIsGenuineWhenBelowK) {
  // Two dense blobs joined by exactly 2 edges; k = 5 > 2, so the returned
  // shore must achieve the true min cut in G.
  Graph g(16);
  for (VertexId base : {VertexId{0}, VertexId{8}}) {
    for (VertexId i = 0; i < 8; ++i) {
      for (VertexId j = i + 1; j < 8; ++j) g.AddEdge(base + i, base + j);
    }
  }
  g.AddEdge(0, 8);
  g.AddEdge(7, 15);
  EdgeConnectivityQuery q(16, 2, 5, 101);
  q.Process(DynamicStream::InsertOnly(g, 4));
  auto cut = q.MinCut();
  ASSERT_TRUE(cut.ok());
  EXPECT_DOUBLE_EQ(cut->value, 2.0);
  // Evaluate the returned shore on the ORIGINAL graph.
  EXPECT_EQ(Hypergraph::FromGraph(g).CutSize(cut->side), 2u);
}

TEST(EdgeConnectivityQueryTest, MinCutCappedAtK) {
  Graph g = CompleteGraph(12);  // min cut 11
  EdgeConnectivityQuery q(12, 2, 3, 102);
  q.Process(DynamicStream::InsertOnly(g, 5));
  auto cut = q.MinCut();
  ASSERT_TRUE(cut.ok());
  EXPECT_DOUBLE_EQ(cut->value, 3.0);  // witness only: every cut >= 3
}

TEST(EdgeConnectivityQueryTest, DisconnectedReportsZero) {
  Hypergraph h(12);
  h.AddEdge(Hyperedge{0, 1, 2});
  h.AddEdge(Hyperedge{6, 7});
  EdgeConnectivityQuery q(12, 3, 3, 70);
  q.Process(DynamicStream::InsertOnly(h, 3));
  auto capped = q.EdgeConnectivityCapped();
  ASSERT_TRUE(capped.ok());
  EXPECT_EQ(*capped, 0u);
}

}  // namespace
}  // namespace gms
