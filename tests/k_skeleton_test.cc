// Tests for k-skeleton sketches (Definition 11, Theorem 14, Lemma 12).
#include <gtest/gtest.h>

#include "connectivity/k_skeleton.h"
#include "exact/lambda.h"
#include "graph/generators.h"
#include "graph/traversal.h"
#include "stream/stream.h"
#include "util/random.h"

namespace gms {
namespace {

// Check the skeleton property |delta_H(S)| >= min(|delta_G(S)|, k) over a
// set of random cuts plus all singleton cuts.
void ExpectSkeletonProperty(const Hypergraph& g, const Hypergraph& h,
                            size_t k, uint64_t seed, size_t samples = 200) {
  Rng rng(seed);
  size_t n = g.NumVertices();
  std::vector<bool> in_s(n, false);
  auto check = [&]() {
    size_t orig = g.CutSize(in_s);
    size_t skel = h.CutSize(in_s);
    EXPECT_GE(skel, std::min(orig, k));
    EXPECT_LE(skel, orig);  // skeleton is a subgraph
  };
  for (size_t v = 0; v < n; ++v) {
    std::fill(in_s.begin(), in_s.end(), false);
    in_s[v] = true;
    check();
  }
  for (size_t t = 0; t < samples; ++t) {
    for (size_t v = 0; v < n; ++v) in_s[v] = rng.Bernoulli(0.5);
    check();
  }
}

TEST(KSkeletonTest, SkeletonOfCompleteGraph) {
  Graph g = CompleteGraph(14);
  KSkeletonSketch sketch(14, 2, 3, 101);
  sketch.Process(DynamicStream::InsertOnly(g, 1));
  auto skel = sketch.Extract();
  ASSERT_TRUE(skel.ok());
  // F_1..F_3 are edge-disjoint forests: at most 3(n-1) edges.
  EXPECT_LE(skel->NumEdges(), 3u * 13u);
  EXPECT_TRUE(IsConnected(*skel));
  ExpectSkeletonProperty(Hypergraph::FromGraph(g), *skel, 3, 2);
}

TEST(KSkeletonTest, SkeletonPropertyOnRandomGraphs) {
  for (uint64_t seed = 0; seed < 3; ++seed) {
    Graph g = ErdosRenyi(20, 0.3, 110 + seed);
    KSkeletonSketch sketch(20, 2, 2, 120 + seed);
    sketch.Process(DynamicStream::InsertOnly(g, seed));
    auto skel = sketch.Extract();
    ASSERT_TRUE(skel.ok());
    ExpectSkeletonProperty(Hypergraph::FromGraph(g), *skel, 2, 130 + seed);
  }
}

TEST(KSkeletonTest, SkeletonPropertyOnHypergraphs) {
  for (uint64_t seed = 0; seed < 3; ++seed) {
    Hypergraph h = RandomUniformHypergraph(16, 30, 3, 140 + seed);
    KSkeletonSketch sketch(16, 3, 2, 150 + seed);
    sketch.Process(DynamicStream::InsertOnly(h, seed));
    auto skel = sketch.Extract();
    ASSERT_TRUE(skel.ok());
    ExpectSkeletonProperty(h, *skel, 2, 160 + seed);
    for (const auto& e : skel->Edges()) EXPECT_TRUE(h.HasEdge(e));
  }
}

TEST(KSkeletonTest, OneSkeletonIsSpanningGraph) {
  Graph g = UnionOfHamiltonianCycles(30, 2, 5);
  KSkeletonSketch sketch(30, 2, 1, 170);
  sketch.Process(DynamicStream::InsertOnly(g, 6));
  auto skel = sketch.Extract();
  ASSERT_TRUE(skel.ok());
  EXPECT_TRUE(IsConnected(*skel));
  EXPECT_LE(skel->NumEdges(), 29u * 2);  // ~spanning graph size
}

TEST(KSkeletonTest, ChurnStream) {
  Graph g = CompleteBipartite(8, 8);
  DynamicStream stream = DynamicStream::WithChurn(g, 150, 9);
  KSkeletonSketch sketch(16, 2, 3, 180);
  sketch.Process(stream);
  auto skel = sketch.Extract();
  ASSERT_TRUE(skel.ok());
  for (const auto& e : skel->Edges()) EXPECT_TRUE(g.HasEdge(e.AsEdge()));
  ExpectSkeletonProperty(Hypergraph::FromGraph(g), *skel, 3, 190);
}

TEST(KSkeletonTest, Lemma12LightEdgesMatch) {
  // lambda_e(H) <= k-1 iff lambda_e(G) <= k-1 for a k-skeleton H, checked
  // for edges present in the skeleton.
  Graph g(12);
  // 4-clique + 4-clique joined by a 2-edge "belt", plus a pendant.
  for (VertexId base : {VertexId{0}, VertexId{4}}) {
    for (VertexId i = 0; i < 4; ++i) {
      for (VertexId j = i + 1; j < 4; ++j) g.AddEdge(base + i, base + j);
    }
  }
  g.AddEdge(0, 4);
  g.AddEdge(3, 7);
  g.AddEdge(7, 8);
  size_t k = 3;
  KSkeletonSketch sketch(12, 2, k, 200);
  sketch.Process(DynamicStream::InsertOnly(g, 7));
  auto skel = sketch.Extract();
  ASSERT_TRUE(skel.ok());
  Graph hs = skel->ToGraph();
  Hypergraph gh = Hypergraph::FromGraph(g);
  for (const auto& he : skel->Edges()) {
    Edge e = he.AsEdge();
    bool light_h = EdgeLambda(hs, e, static_cast<int64_t>(k)) <=
                   static_cast<int64_t>(k) - 1;
    bool light_g = EdgeLambda(g, e, static_cast<int64_t>(k)) <=
                   static_cast<int64_t>(k) - 1;
    EXPECT_EQ(light_h, light_g) << e.u() << "-" << e.v();
  }
}

TEST(KSkeletonTest, RemoveHyperedgesShiftsTheSketch) {
  Graph g = CycleGraph(16);
  KSkeletonSketch sketch(16, 2, 2, 210);
  sketch.Process(DynamicStream::InsertOnly(g, 8));
  sketch.RemoveHyperedges({Hyperedge{0, 1}});
  auto skel = sketch.Extract();
  ASSERT_TRUE(skel.ok());
  EXPECT_FALSE(skel->HasEdge(Hyperedge{0, 1}));
  // The path 1..0 (cycle minus one edge) is still connected.
  EXPECT_TRUE(IsConnected(*skel));
}

}  // namespace
}  // namespace gms
