# Empty compiler generated dependencies file for bench_sparsifier.
# This may be replaced when dependencies are built.
