file(REMOVE_RECURSE
  "../bench/bench_sparsifier"
  "../bench/bench_sparsifier.pdb"
  "CMakeFiles/bench_sparsifier.dir/bench_sparsifier.cc.o"
  "CMakeFiles/bench_sparsifier.dir/bench_sparsifier.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sparsifier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
