file(REMOVE_RECURSE
  "../bench/bench_vc_query"
  "../bench/bench_vc_query.pdb"
  "CMakeFiles/bench_vc_query.dir/bench_vc_query.cc.o"
  "CMakeFiles/bench_vc_query.dir/bench_vc_query.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_vc_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
