# Empty compiler generated dependencies file for bench_vc_query.
# This may be replaced when dependencies are built.
