file(REMOVE_RECURSE
  "../bench/bench_adaptive_reuse"
  "../bench/bench_adaptive_reuse.pdb"
  "CMakeFiles/bench_adaptive_reuse.dir/bench_adaptive_reuse.cc.o"
  "CMakeFiles/bench_adaptive_reuse.dir/bench_adaptive_reuse.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_adaptive_reuse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
