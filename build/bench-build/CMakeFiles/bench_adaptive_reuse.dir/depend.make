# Empty dependencies file for bench_adaptive_reuse.
# This may be replaced when dependencies are built.
