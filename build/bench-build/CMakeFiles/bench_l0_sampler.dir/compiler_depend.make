# Empty compiler generated dependencies file for bench_l0_sampler.
# This may be replaced when dependencies are built.
