file(REMOVE_RECURSE
  "../bench/bench_l0_sampler"
  "../bench/bench_l0_sampler.pdb"
  "CMakeFiles/bench_l0_sampler.dir/bench_l0_sampler.cc.o"
  "CMakeFiles/bench_l0_sampler.dir/bench_l0_sampler.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_l0_sampler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
