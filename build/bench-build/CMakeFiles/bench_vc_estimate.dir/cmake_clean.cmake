file(REMOVE_RECURSE
  "../bench/bench_vc_estimate"
  "../bench/bench_vc_estimate.pdb"
  "CMakeFiles/bench_vc_estimate.dir/bench_vc_estimate.cc.o"
  "CMakeFiles/bench_vc_estimate.dir/bench_vc_estimate.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_vc_estimate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
