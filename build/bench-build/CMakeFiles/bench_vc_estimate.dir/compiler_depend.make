# Empty compiler generated dependencies file for bench_vc_estimate.
# This may be replaced when dependencies are built.
