file(REMOVE_RECURSE
  "../bench/bench_reconstruct"
  "../bench/bench_reconstruct.pdb"
  "CMakeFiles/bench_reconstruct.dir/bench_reconstruct.cc.o"
  "CMakeFiles/bench_reconstruct.dir/bench_reconstruct.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_reconstruct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
