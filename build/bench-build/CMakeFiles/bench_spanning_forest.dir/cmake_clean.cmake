file(REMOVE_RECURSE
  "../bench/bench_spanning_forest"
  "../bench/bench_spanning_forest.pdb"
  "CMakeFiles/bench_spanning_forest.dir/bench_spanning_forest.cc.o"
  "CMakeFiles/bench_spanning_forest.dir/bench_spanning_forest.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_spanning_forest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
