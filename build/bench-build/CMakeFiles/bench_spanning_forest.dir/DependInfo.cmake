
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_spanning_forest.cc" "bench-build/CMakeFiles/bench_spanning_forest.dir/bench_spanning_forest.cc.o" "gcc" "bench-build/CMakeFiles/bench_spanning_forest.dir/bench_spanning_forest.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gms_vertexconn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gms_sparsify.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gms_reconstruct.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gms_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gms_connectivity.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gms_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gms_sketch.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gms_exact.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gms_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gms_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
