file(REMOVE_RECURSE
  "../bench/bench_comm_model"
  "../bench/bench_comm_model.pdb"
  "CMakeFiles/bench_comm_model.dir/bench_comm_model.cc.o"
  "CMakeFiles/bench_comm_model.dir/bench_comm_model.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_comm_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
