file(REMOVE_RECURSE
  "../bench/bench_karger_sampling"
  "../bench/bench_karger_sampling.pdb"
  "CMakeFiles/bench_karger_sampling.dir/bench_karger_sampling.cc.o"
  "CMakeFiles/bench_karger_sampling.dir/bench_karger_sampling.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_karger_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
