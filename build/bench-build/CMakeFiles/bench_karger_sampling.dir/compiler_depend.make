# Empty compiler generated dependencies file for bench_karger_sampling.
# This may be replaced when dependencies are built.
