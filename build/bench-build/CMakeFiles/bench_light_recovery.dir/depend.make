# Empty dependencies file for bench_light_recovery.
# This may be replaced when dependencies are built.
