file(REMOVE_RECURSE
  "../bench/bench_light_recovery"
  "../bench/bench_light_recovery.pdb"
  "CMakeFiles/bench_light_recovery.dir/bench_light_recovery.cc.o"
  "CMakeFiles/bench_light_recovery.dir/bench_light_recovery.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_light_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
