file(REMOVE_RECURSE
  "../bench/bench_hyper_vc"
  "../bench/bench_hyper_vc.pdb"
  "CMakeFiles/bench_hyper_vc.dir/bench_hyper_vc.cc.o"
  "CMakeFiles/bench_hyper_vc.dir/bench_hyper_vc.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hyper_vc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
