# Empty compiler generated dependencies file for bench_hyper_vc.
# This may be replaced when dependencies are built.
