file(REMOVE_RECURSE
  "../bench/bench_vc_lower_bound"
  "../bench/bench_vc_lower_bound.pdb"
  "CMakeFiles/bench_vc_lower_bound.dir/bench_vc_lower_bound.cc.o"
  "CMakeFiles/bench_vc_lower_bound.dir/bench_vc_lower_bound.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_vc_lower_bound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
