# Empty dependencies file for bench_vc_lower_bound.
# This may be replaced when dependencies are built.
