# Empty compiler generated dependencies file for bench_k_skeleton.
# This may be replaced when dependencies are built.
