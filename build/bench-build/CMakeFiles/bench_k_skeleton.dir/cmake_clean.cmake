file(REMOVE_RECURSE
  "../bench/bench_k_skeleton"
  "../bench/bench_k_skeleton.pdb"
  "CMakeFiles/bench_k_skeleton.dir/bench_k_skeleton.cc.o"
  "CMakeFiles/bench_k_skeleton.dir/bench_k_skeleton.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_k_skeleton.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
