file(REMOVE_RECURSE
  "../bench/bench_baseline_compare"
  "../bench/bench_baseline_compare.pdb"
  "CMakeFiles/bench_baseline_compare.dir/bench_baseline_compare.cc.o"
  "CMakeFiles/bench_baseline_compare.dir/bench_baseline_compare.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_baseline_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
