file(REMOVE_RECURSE
  "CMakeFiles/gms_vertexconn_tests.dir/eppstein_test.cc.o"
  "CMakeFiles/gms_vertexconn_tests.dir/eppstein_test.cc.o.d"
  "CMakeFiles/gms_vertexconn_tests.dir/hyper_vc_test.cc.o"
  "CMakeFiles/gms_vertexconn_tests.dir/hyper_vc_test.cc.o.d"
  "CMakeFiles/gms_vertexconn_tests.dir/lower_bound_test.cc.o"
  "CMakeFiles/gms_vertexconn_tests.dir/lower_bound_test.cc.o.d"
  "CMakeFiles/gms_vertexconn_tests.dir/sfst_test.cc.o"
  "CMakeFiles/gms_vertexconn_tests.dir/sfst_test.cc.o.d"
  "CMakeFiles/gms_vertexconn_tests.dir/vc_estimator_test.cc.o"
  "CMakeFiles/gms_vertexconn_tests.dir/vc_estimator_test.cc.o.d"
  "CMakeFiles/gms_vertexconn_tests.dir/vc_query_test.cc.o"
  "CMakeFiles/gms_vertexconn_tests.dir/vc_query_test.cc.o.d"
  "gms_vertexconn_tests"
  "gms_vertexconn_tests.pdb"
  "gms_vertexconn_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gms_vertexconn_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
