# Empty dependencies file for gms_vertexconn_tests.
# This may be replaced when dependencies are built.
