# Empty dependencies file for gms_core_tests.
# This may be replaced when dependencies are built.
