file(REMOVE_RECURSE
  "CMakeFiles/gms_core_tests.dir/edge_codec_test.cc.o"
  "CMakeFiles/gms_core_tests.dir/edge_codec_test.cc.o.d"
  "CMakeFiles/gms_core_tests.dir/generators_test.cc.o"
  "CMakeFiles/gms_core_tests.dir/generators_test.cc.o.d"
  "CMakeFiles/gms_core_tests.dir/graph_test.cc.o"
  "CMakeFiles/gms_core_tests.dir/graph_test.cc.o.d"
  "CMakeFiles/gms_core_tests.dir/io_test.cc.o"
  "CMakeFiles/gms_core_tests.dir/io_test.cc.o.d"
  "CMakeFiles/gms_core_tests.dir/l0_sampler_test.cc.o"
  "CMakeFiles/gms_core_tests.dir/l0_sampler_test.cc.o.d"
  "CMakeFiles/gms_core_tests.dir/sparse_recovery_test.cc.o"
  "CMakeFiles/gms_core_tests.dir/sparse_recovery_test.cc.o.d"
  "CMakeFiles/gms_core_tests.dir/stream_test.cc.o"
  "CMakeFiles/gms_core_tests.dir/stream_test.cc.o.d"
  "CMakeFiles/gms_core_tests.dir/util_test.cc.o"
  "CMakeFiles/gms_core_tests.dir/util_test.cc.o.d"
  "gms_core_tests"
  "gms_core_tests.pdb"
  "gms_core_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gms_core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
