# Empty dependencies file for gms_sketch_tests.
# This may be replaced when dependencies are built.
