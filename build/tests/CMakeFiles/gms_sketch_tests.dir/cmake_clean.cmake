file(REMOVE_RECURSE
  "CMakeFiles/gms_sketch_tests.dir/adaptive_reuse_test.cc.o"
  "CMakeFiles/gms_sketch_tests.dir/adaptive_reuse_test.cc.o.d"
  "CMakeFiles/gms_sketch_tests.dir/connectivity_query_test.cc.o"
  "CMakeFiles/gms_sketch_tests.dir/connectivity_query_test.cc.o.d"
  "CMakeFiles/gms_sketch_tests.dir/incidence_test.cc.o"
  "CMakeFiles/gms_sketch_tests.dir/incidence_test.cc.o.d"
  "CMakeFiles/gms_sketch_tests.dir/k_skeleton_test.cc.o"
  "CMakeFiles/gms_sketch_tests.dir/k_skeleton_test.cc.o.d"
  "CMakeFiles/gms_sketch_tests.dir/sketch_properties_test.cc.o"
  "CMakeFiles/gms_sketch_tests.dir/sketch_properties_test.cc.o.d"
  "CMakeFiles/gms_sketch_tests.dir/spanning_forest_sketch_test.cc.o"
  "CMakeFiles/gms_sketch_tests.dir/spanning_forest_sketch_test.cc.o.d"
  "gms_sketch_tests"
  "gms_sketch_tests.pdb"
  "gms_sketch_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gms_sketch_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
