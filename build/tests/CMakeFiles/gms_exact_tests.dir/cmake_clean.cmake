file(REMOVE_RECURSE
  "CMakeFiles/gms_exact_tests.dir/degeneracy_test.cc.o"
  "CMakeFiles/gms_exact_tests.dir/degeneracy_test.cc.o.d"
  "CMakeFiles/gms_exact_tests.dir/dinic_test.cc.o"
  "CMakeFiles/gms_exact_tests.dir/dinic_test.cc.o.d"
  "CMakeFiles/gms_exact_tests.dir/exact_connectivity_test.cc.o"
  "CMakeFiles/gms_exact_tests.dir/exact_connectivity_test.cc.o.d"
  "CMakeFiles/gms_exact_tests.dir/gomory_hu_test.cc.o"
  "CMakeFiles/gms_exact_tests.dir/gomory_hu_test.cc.o.d"
  "CMakeFiles/gms_exact_tests.dir/lambda_strength_test.cc.o"
  "CMakeFiles/gms_exact_tests.dir/lambda_strength_test.cc.o.d"
  "gms_exact_tests"
  "gms_exact_tests.pdb"
  "gms_exact_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gms_exact_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
