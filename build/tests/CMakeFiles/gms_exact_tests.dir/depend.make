# Empty dependencies file for gms_exact_tests.
# This may be replaced when dependencies are built.
