# Empty compiler generated dependencies file for gms_app_tests.
# This may be replaced when dependencies are built.
