file(REMOVE_RECURSE
  "CMakeFiles/gms_app_tests.dir/boundary_test.cc.o"
  "CMakeFiles/gms_app_tests.dir/boundary_test.cc.o.d"
  "CMakeFiles/gms_app_tests.dir/comm_test.cc.o"
  "CMakeFiles/gms_app_tests.dir/comm_test.cc.o.d"
  "CMakeFiles/gms_app_tests.dir/cut_degenerate_test.cc.o"
  "CMakeFiles/gms_app_tests.dir/cut_degenerate_test.cc.o.d"
  "CMakeFiles/gms_app_tests.dir/integration_test.cc.o"
  "CMakeFiles/gms_app_tests.dir/integration_test.cc.o.d"
  "CMakeFiles/gms_app_tests.dir/light_recovery_test.cc.o"
  "CMakeFiles/gms_app_tests.dir/light_recovery_test.cc.o.d"
  "CMakeFiles/gms_app_tests.dir/row_reconstruct_test.cc.o"
  "CMakeFiles/gms_app_tests.dir/row_reconstruct_test.cc.o.d"
  "CMakeFiles/gms_app_tests.dir/sparsifier_test.cc.o"
  "CMakeFiles/gms_app_tests.dir/sparsifier_test.cc.o.d"
  "CMakeFiles/gms_app_tests.dir/stress_test.cc.o"
  "CMakeFiles/gms_app_tests.dir/stress_test.cc.o.d"
  "gms_app_tests"
  "gms_app_tests.pdb"
  "gms_app_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gms_app_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
