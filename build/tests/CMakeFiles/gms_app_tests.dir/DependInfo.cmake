
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/boundary_test.cc" "tests/CMakeFiles/gms_app_tests.dir/boundary_test.cc.o" "gcc" "tests/CMakeFiles/gms_app_tests.dir/boundary_test.cc.o.d"
  "/root/repo/tests/comm_test.cc" "tests/CMakeFiles/gms_app_tests.dir/comm_test.cc.o" "gcc" "tests/CMakeFiles/gms_app_tests.dir/comm_test.cc.o.d"
  "/root/repo/tests/cut_degenerate_test.cc" "tests/CMakeFiles/gms_app_tests.dir/cut_degenerate_test.cc.o" "gcc" "tests/CMakeFiles/gms_app_tests.dir/cut_degenerate_test.cc.o.d"
  "/root/repo/tests/integration_test.cc" "tests/CMakeFiles/gms_app_tests.dir/integration_test.cc.o" "gcc" "tests/CMakeFiles/gms_app_tests.dir/integration_test.cc.o.d"
  "/root/repo/tests/light_recovery_test.cc" "tests/CMakeFiles/gms_app_tests.dir/light_recovery_test.cc.o" "gcc" "tests/CMakeFiles/gms_app_tests.dir/light_recovery_test.cc.o.d"
  "/root/repo/tests/row_reconstruct_test.cc" "tests/CMakeFiles/gms_app_tests.dir/row_reconstruct_test.cc.o" "gcc" "tests/CMakeFiles/gms_app_tests.dir/row_reconstruct_test.cc.o.d"
  "/root/repo/tests/sparsifier_test.cc" "tests/CMakeFiles/gms_app_tests.dir/sparsifier_test.cc.o" "gcc" "tests/CMakeFiles/gms_app_tests.dir/sparsifier_test.cc.o.d"
  "/root/repo/tests/stress_test.cc" "tests/CMakeFiles/gms_app_tests.dir/stress_test.cc.o" "gcc" "tests/CMakeFiles/gms_app_tests.dir/stress_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gms_vertexconn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gms_sparsify.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gms_reconstruct.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gms_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gms_connectivity.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gms_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gms_sketch.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gms_exact.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gms_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gms_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
