file(REMOVE_RECURSE
  "CMakeFiles/hypergraph_sparsify.dir/hypergraph_sparsify.cc.o"
  "CMakeFiles/hypergraph_sparsify.dir/hypergraph_sparsify.cc.o.d"
  "hypergraph_sparsify"
  "hypergraph_sparsify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hypergraph_sparsify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
