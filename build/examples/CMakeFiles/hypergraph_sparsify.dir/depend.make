# Empty dependencies file for hypergraph_sparsify.
# This may be replaced when dependencies are built.
