file(REMOVE_RECURSE
  "CMakeFiles/stream_cli.dir/stream_cli.cc.o"
  "CMakeFiles/stream_cli.dir/stream_cli.cc.o.d"
  "stream_cli"
  "stream_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stream_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
