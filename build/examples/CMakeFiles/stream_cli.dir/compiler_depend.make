# Empty compiler generated dependencies file for stream_cli.
# This may be replaced when dependencies are built.
