file(REMOVE_RECURSE
  "CMakeFiles/reconstruct_demo.dir/reconstruct_demo.cc.o"
  "CMakeFiles/reconstruct_demo.dir/reconstruct_demo.cc.o.d"
  "reconstruct_demo"
  "reconstruct_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reconstruct_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
