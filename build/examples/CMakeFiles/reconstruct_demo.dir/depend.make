# Empty dependencies file for reconstruct_demo.
# This may be replaced when dependencies are built.
