file(REMOVE_RECURSE
  "CMakeFiles/distributed_referee.dir/distributed_referee.cc.o"
  "CMakeFiles/distributed_referee.dir/distributed_referee.cc.o.d"
  "distributed_referee"
  "distributed_referee.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributed_referee.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
