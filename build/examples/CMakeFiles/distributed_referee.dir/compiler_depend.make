# Empty compiler generated dependencies file for distributed_referee.
# This may be replaced when dependencies are built.
