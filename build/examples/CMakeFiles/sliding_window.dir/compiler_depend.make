# Empty compiler generated dependencies file for sliding_window.
# This may be replaced when dependencies are built.
