file(REMOVE_RECURSE
  "CMakeFiles/sliding_window.dir/sliding_window.cc.o"
  "CMakeFiles/sliding_window.dir/sliding_window.cc.o.d"
  "sliding_window"
  "sliding_window.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sliding_window.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
