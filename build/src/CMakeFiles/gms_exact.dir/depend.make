# Empty dependencies file for gms_exact.
# This may be replaced when dependencies are built.
