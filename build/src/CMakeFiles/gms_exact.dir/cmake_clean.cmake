file(REMOVE_RECURSE
  "CMakeFiles/gms_exact.dir/exact/cut_eval.cc.o"
  "CMakeFiles/gms_exact.dir/exact/cut_eval.cc.o.d"
  "CMakeFiles/gms_exact.dir/exact/degeneracy.cc.o"
  "CMakeFiles/gms_exact.dir/exact/degeneracy.cc.o.d"
  "CMakeFiles/gms_exact.dir/exact/dinic.cc.o"
  "CMakeFiles/gms_exact.dir/exact/dinic.cc.o.d"
  "CMakeFiles/gms_exact.dir/exact/gomory_hu.cc.o"
  "CMakeFiles/gms_exact.dir/exact/gomory_hu.cc.o.d"
  "CMakeFiles/gms_exact.dir/exact/hypergraph_mincut.cc.o"
  "CMakeFiles/gms_exact.dir/exact/hypergraph_mincut.cc.o.d"
  "CMakeFiles/gms_exact.dir/exact/lambda.cc.o"
  "CMakeFiles/gms_exact.dir/exact/lambda.cc.o.d"
  "CMakeFiles/gms_exact.dir/exact/stoer_wagner.cc.o"
  "CMakeFiles/gms_exact.dir/exact/stoer_wagner.cc.o.d"
  "CMakeFiles/gms_exact.dir/exact/strength.cc.o"
  "CMakeFiles/gms_exact.dir/exact/strength.cc.o.d"
  "CMakeFiles/gms_exact.dir/exact/vertex_connectivity.cc.o"
  "CMakeFiles/gms_exact.dir/exact/vertex_connectivity.cc.o.d"
  "libgms_exact.a"
  "libgms_exact.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gms_exact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
