file(REMOVE_RECURSE
  "libgms_exact.a"
)
