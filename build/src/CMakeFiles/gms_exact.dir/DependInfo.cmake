
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/exact/cut_eval.cc" "src/CMakeFiles/gms_exact.dir/exact/cut_eval.cc.o" "gcc" "src/CMakeFiles/gms_exact.dir/exact/cut_eval.cc.o.d"
  "/root/repo/src/exact/degeneracy.cc" "src/CMakeFiles/gms_exact.dir/exact/degeneracy.cc.o" "gcc" "src/CMakeFiles/gms_exact.dir/exact/degeneracy.cc.o.d"
  "/root/repo/src/exact/dinic.cc" "src/CMakeFiles/gms_exact.dir/exact/dinic.cc.o" "gcc" "src/CMakeFiles/gms_exact.dir/exact/dinic.cc.o.d"
  "/root/repo/src/exact/gomory_hu.cc" "src/CMakeFiles/gms_exact.dir/exact/gomory_hu.cc.o" "gcc" "src/CMakeFiles/gms_exact.dir/exact/gomory_hu.cc.o.d"
  "/root/repo/src/exact/hypergraph_mincut.cc" "src/CMakeFiles/gms_exact.dir/exact/hypergraph_mincut.cc.o" "gcc" "src/CMakeFiles/gms_exact.dir/exact/hypergraph_mincut.cc.o.d"
  "/root/repo/src/exact/lambda.cc" "src/CMakeFiles/gms_exact.dir/exact/lambda.cc.o" "gcc" "src/CMakeFiles/gms_exact.dir/exact/lambda.cc.o.d"
  "/root/repo/src/exact/stoer_wagner.cc" "src/CMakeFiles/gms_exact.dir/exact/stoer_wagner.cc.o" "gcc" "src/CMakeFiles/gms_exact.dir/exact/stoer_wagner.cc.o.d"
  "/root/repo/src/exact/strength.cc" "src/CMakeFiles/gms_exact.dir/exact/strength.cc.o" "gcc" "src/CMakeFiles/gms_exact.dir/exact/strength.cc.o.d"
  "/root/repo/src/exact/vertex_connectivity.cc" "src/CMakeFiles/gms_exact.dir/exact/vertex_connectivity.cc.o" "gcc" "src/CMakeFiles/gms_exact.dir/exact/vertex_connectivity.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gms_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gms_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
