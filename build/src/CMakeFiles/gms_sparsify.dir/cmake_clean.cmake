file(REMOVE_RECURSE
  "CMakeFiles/gms_sparsify.dir/sparsify/benczur_karger.cc.o"
  "CMakeFiles/gms_sparsify.dir/sparsify/benczur_karger.cc.o.d"
  "CMakeFiles/gms_sparsify.dir/sparsify/sparsifier_sketch.cc.o"
  "CMakeFiles/gms_sparsify.dir/sparsify/sparsifier_sketch.cc.o.d"
  "CMakeFiles/gms_sparsify.dir/sparsify/verify.cc.o"
  "CMakeFiles/gms_sparsify.dir/sparsify/verify.cc.o.d"
  "libgms_sparsify.a"
  "libgms_sparsify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gms_sparsify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
