file(REMOVE_RECURSE
  "libgms_sparsify.a"
)
