# Empty dependencies file for gms_sparsify.
# This may be replaced when dependencies are built.
