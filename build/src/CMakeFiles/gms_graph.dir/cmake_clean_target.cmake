file(REMOVE_RECURSE
  "libgms_graph.a"
)
