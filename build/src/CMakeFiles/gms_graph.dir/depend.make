# Empty dependencies file for gms_graph.
# This may be replaced when dependencies are built.
