
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/edge_codec.cc" "src/CMakeFiles/gms_graph.dir/graph/edge_codec.cc.o" "gcc" "src/CMakeFiles/gms_graph.dir/graph/edge_codec.cc.o.d"
  "/root/repo/src/graph/generators.cc" "src/CMakeFiles/gms_graph.dir/graph/generators.cc.o" "gcc" "src/CMakeFiles/gms_graph.dir/graph/generators.cc.o.d"
  "/root/repo/src/graph/graph.cc" "src/CMakeFiles/gms_graph.dir/graph/graph.cc.o" "gcc" "src/CMakeFiles/gms_graph.dir/graph/graph.cc.o.d"
  "/root/repo/src/graph/hypergraph.cc" "src/CMakeFiles/gms_graph.dir/graph/hypergraph.cc.o" "gcc" "src/CMakeFiles/gms_graph.dir/graph/hypergraph.cc.o.d"
  "/root/repo/src/graph/traversal.cc" "src/CMakeFiles/gms_graph.dir/graph/traversal.cc.o" "gcc" "src/CMakeFiles/gms_graph.dir/graph/traversal.cc.o.d"
  "/root/repo/src/graph/union_find.cc" "src/CMakeFiles/gms_graph.dir/graph/union_find.cc.o" "gcc" "src/CMakeFiles/gms_graph.dir/graph/union_find.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gms_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
