file(REMOVE_RECURSE
  "CMakeFiles/gms_graph.dir/graph/edge_codec.cc.o"
  "CMakeFiles/gms_graph.dir/graph/edge_codec.cc.o.d"
  "CMakeFiles/gms_graph.dir/graph/generators.cc.o"
  "CMakeFiles/gms_graph.dir/graph/generators.cc.o.d"
  "CMakeFiles/gms_graph.dir/graph/graph.cc.o"
  "CMakeFiles/gms_graph.dir/graph/graph.cc.o.d"
  "CMakeFiles/gms_graph.dir/graph/hypergraph.cc.o"
  "CMakeFiles/gms_graph.dir/graph/hypergraph.cc.o.d"
  "CMakeFiles/gms_graph.dir/graph/traversal.cc.o"
  "CMakeFiles/gms_graph.dir/graph/traversal.cc.o.d"
  "CMakeFiles/gms_graph.dir/graph/union_find.cc.o"
  "CMakeFiles/gms_graph.dir/graph/union_find.cc.o.d"
  "libgms_graph.a"
  "libgms_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gms_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
