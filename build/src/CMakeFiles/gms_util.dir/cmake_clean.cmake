file(REMOVE_RECURSE
  "CMakeFiles/gms_util.dir/util/field.cc.o"
  "CMakeFiles/gms_util.dir/util/field.cc.o.d"
  "CMakeFiles/gms_util.dir/util/hash.cc.o"
  "CMakeFiles/gms_util.dir/util/hash.cc.o.d"
  "CMakeFiles/gms_util.dir/util/random.cc.o"
  "CMakeFiles/gms_util.dir/util/random.cc.o.d"
  "CMakeFiles/gms_util.dir/util/status.cc.o"
  "CMakeFiles/gms_util.dir/util/status.cc.o.d"
  "CMakeFiles/gms_util.dir/util/table.cc.o"
  "CMakeFiles/gms_util.dir/util/table.cc.o.d"
  "libgms_util.a"
  "libgms_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gms_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
