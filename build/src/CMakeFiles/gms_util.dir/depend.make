# Empty dependencies file for gms_util.
# This may be replaced when dependencies are built.
