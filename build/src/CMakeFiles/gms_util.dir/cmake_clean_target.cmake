file(REMOVE_RECURSE
  "libgms_util.a"
)
