file(REMOVE_RECURSE
  "libgms_stream.a"
)
