file(REMOVE_RECURSE
  "CMakeFiles/gms_stream.dir/stream/io.cc.o"
  "CMakeFiles/gms_stream.dir/stream/io.cc.o.d"
  "CMakeFiles/gms_stream.dir/stream/stream.cc.o"
  "CMakeFiles/gms_stream.dir/stream/stream.cc.o.d"
  "libgms_stream.a"
  "libgms_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gms_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
