# Empty dependencies file for gms_stream.
# This may be replaced when dependencies are built.
