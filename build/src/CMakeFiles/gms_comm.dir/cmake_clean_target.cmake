file(REMOVE_RECURSE
  "libgms_comm.a"
)
