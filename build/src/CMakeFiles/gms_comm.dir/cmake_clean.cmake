file(REMOVE_RECURSE
  "CMakeFiles/gms_comm.dir/comm/simultaneous.cc.o"
  "CMakeFiles/gms_comm.dir/comm/simultaneous.cc.o.d"
  "libgms_comm.a"
  "libgms_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gms_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
