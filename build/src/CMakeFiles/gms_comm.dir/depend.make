# Empty dependencies file for gms_comm.
# This may be replaced when dependencies are built.
