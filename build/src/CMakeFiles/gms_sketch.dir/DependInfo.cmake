
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sketch/l0_sampler.cc" "src/CMakeFiles/gms_sketch.dir/sketch/l0_sampler.cc.o" "gcc" "src/CMakeFiles/gms_sketch.dir/sketch/l0_sampler.cc.o.d"
  "/root/repo/src/sketch/sketch_config.cc" "src/CMakeFiles/gms_sketch.dir/sketch/sketch_config.cc.o" "gcc" "src/CMakeFiles/gms_sketch.dir/sketch/sketch_config.cc.o.d"
  "/root/repo/src/sketch/sparse_recovery.cc" "src/CMakeFiles/gms_sketch.dir/sketch/sparse_recovery.cc.o" "gcc" "src/CMakeFiles/gms_sketch.dir/sketch/sparse_recovery.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gms_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
