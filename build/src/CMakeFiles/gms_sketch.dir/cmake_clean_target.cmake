file(REMOVE_RECURSE
  "libgms_sketch.a"
)
