file(REMOVE_RECURSE
  "CMakeFiles/gms_sketch.dir/sketch/l0_sampler.cc.o"
  "CMakeFiles/gms_sketch.dir/sketch/l0_sampler.cc.o.d"
  "CMakeFiles/gms_sketch.dir/sketch/sketch_config.cc.o"
  "CMakeFiles/gms_sketch.dir/sketch/sketch_config.cc.o.d"
  "CMakeFiles/gms_sketch.dir/sketch/sparse_recovery.cc.o"
  "CMakeFiles/gms_sketch.dir/sketch/sparse_recovery.cc.o.d"
  "libgms_sketch.a"
  "libgms_sketch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gms_sketch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
