# Empty compiler generated dependencies file for gms_sketch.
# This may be replaced when dependencies are built.
