file(REMOVE_RECURSE
  "libgms_connectivity.a"
)
