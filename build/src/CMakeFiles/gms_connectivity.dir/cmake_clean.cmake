file(REMOVE_RECURSE
  "CMakeFiles/gms_connectivity.dir/connectivity/connectivity_query.cc.o"
  "CMakeFiles/gms_connectivity.dir/connectivity/connectivity_query.cc.o.d"
  "CMakeFiles/gms_connectivity.dir/connectivity/incidence.cc.o"
  "CMakeFiles/gms_connectivity.dir/connectivity/incidence.cc.o.d"
  "CMakeFiles/gms_connectivity.dir/connectivity/k_skeleton.cc.o"
  "CMakeFiles/gms_connectivity.dir/connectivity/k_skeleton.cc.o.d"
  "CMakeFiles/gms_connectivity.dir/connectivity/spanning_forest_sketch.cc.o"
  "CMakeFiles/gms_connectivity.dir/connectivity/spanning_forest_sketch.cc.o.d"
  "libgms_connectivity.a"
  "libgms_connectivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gms_connectivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
