
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/connectivity/connectivity_query.cc" "src/CMakeFiles/gms_connectivity.dir/connectivity/connectivity_query.cc.o" "gcc" "src/CMakeFiles/gms_connectivity.dir/connectivity/connectivity_query.cc.o.d"
  "/root/repo/src/connectivity/incidence.cc" "src/CMakeFiles/gms_connectivity.dir/connectivity/incidence.cc.o" "gcc" "src/CMakeFiles/gms_connectivity.dir/connectivity/incidence.cc.o.d"
  "/root/repo/src/connectivity/k_skeleton.cc" "src/CMakeFiles/gms_connectivity.dir/connectivity/k_skeleton.cc.o" "gcc" "src/CMakeFiles/gms_connectivity.dir/connectivity/k_skeleton.cc.o.d"
  "/root/repo/src/connectivity/spanning_forest_sketch.cc" "src/CMakeFiles/gms_connectivity.dir/connectivity/spanning_forest_sketch.cc.o" "gcc" "src/CMakeFiles/gms_connectivity.dir/connectivity/spanning_forest_sketch.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gms_sketch.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gms_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gms_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gms_exact.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gms_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
