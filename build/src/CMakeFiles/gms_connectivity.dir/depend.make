# Empty dependencies file for gms_connectivity.
# This may be replaced when dependencies are built.
