# Empty dependencies file for gms_vertexconn.
# This may be replaced when dependencies are built.
