file(REMOVE_RECURSE
  "CMakeFiles/gms_vertexconn.dir/vertexconn/eppstein_baseline.cc.o"
  "CMakeFiles/gms_vertexconn.dir/vertexconn/eppstein_baseline.cc.o.d"
  "CMakeFiles/gms_vertexconn.dir/vertexconn/hyper_vc_query.cc.o"
  "CMakeFiles/gms_vertexconn.dir/vertexconn/hyper_vc_query.cc.o.d"
  "CMakeFiles/gms_vertexconn.dir/vertexconn/lower_bound.cc.o"
  "CMakeFiles/gms_vertexconn.dir/vertexconn/lower_bound.cc.o.d"
  "CMakeFiles/gms_vertexconn.dir/vertexconn/sfst.cc.o"
  "CMakeFiles/gms_vertexconn.dir/vertexconn/sfst.cc.o.d"
  "CMakeFiles/gms_vertexconn.dir/vertexconn/vc_estimator.cc.o"
  "CMakeFiles/gms_vertexconn.dir/vertexconn/vc_estimator.cc.o.d"
  "CMakeFiles/gms_vertexconn.dir/vertexconn/vc_query_sketch.cc.o"
  "CMakeFiles/gms_vertexconn.dir/vertexconn/vc_query_sketch.cc.o.d"
  "libgms_vertexconn.a"
  "libgms_vertexconn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gms_vertexconn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
