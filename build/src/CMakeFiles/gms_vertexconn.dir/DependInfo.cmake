
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vertexconn/eppstein_baseline.cc" "src/CMakeFiles/gms_vertexconn.dir/vertexconn/eppstein_baseline.cc.o" "gcc" "src/CMakeFiles/gms_vertexconn.dir/vertexconn/eppstein_baseline.cc.o.d"
  "/root/repo/src/vertexconn/hyper_vc_query.cc" "src/CMakeFiles/gms_vertexconn.dir/vertexconn/hyper_vc_query.cc.o" "gcc" "src/CMakeFiles/gms_vertexconn.dir/vertexconn/hyper_vc_query.cc.o.d"
  "/root/repo/src/vertexconn/lower_bound.cc" "src/CMakeFiles/gms_vertexconn.dir/vertexconn/lower_bound.cc.o" "gcc" "src/CMakeFiles/gms_vertexconn.dir/vertexconn/lower_bound.cc.o.d"
  "/root/repo/src/vertexconn/sfst.cc" "src/CMakeFiles/gms_vertexconn.dir/vertexconn/sfst.cc.o" "gcc" "src/CMakeFiles/gms_vertexconn.dir/vertexconn/sfst.cc.o.d"
  "/root/repo/src/vertexconn/vc_estimator.cc" "src/CMakeFiles/gms_vertexconn.dir/vertexconn/vc_estimator.cc.o" "gcc" "src/CMakeFiles/gms_vertexconn.dir/vertexconn/vc_estimator.cc.o.d"
  "/root/repo/src/vertexconn/vc_query_sketch.cc" "src/CMakeFiles/gms_vertexconn.dir/vertexconn/vc_query_sketch.cc.o" "gcc" "src/CMakeFiles/gms_vertexconn.dir/vertexconn/vc_query_sketch.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gms_connectivity.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gms_exact.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gms_sketch.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gms_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gms_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gms_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
