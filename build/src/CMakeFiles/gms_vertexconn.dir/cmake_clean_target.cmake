file(REMOVE_RECURSE
  "libgms_vertexconn.a"
)
