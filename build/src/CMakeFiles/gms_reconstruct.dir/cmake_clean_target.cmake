file(REMOVE_RECURSE
  "libgms_reconstruct.a"
)
