file(REMOVE_RECURSE
  "CMakeFiles/gms_reconstruct.dir/reconstruct/cut_degenerate.cc.o"
  "CMakeFiles/gms_reconstruct.dir/reconstruct/cut_degenerate.cc.o.d"
  "CMakeFiles/gms_reconstruct.dir/reconstruct/light_recovery.cc.o"
  "CMakeFiles/gms_reconstruct.dir/reconstruct/light_recovery.cc.o.d"
  "CMakeFiles/gms_reconstruct.dir/reconstruct/row_reconstruct.cc.o"
  "CMakeFiles/gms_reconstruct.dir/reconstruct/row_reconstruct.cc.o.d"
  "libgms_reconstruct.a"
  "libgms_reconstruct.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gms_reconstruct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
