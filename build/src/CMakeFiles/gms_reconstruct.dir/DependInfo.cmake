
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/reconstruct/cut_degenerate.cc" "src/CMakeFiles/gms_reconstruct.dir/reconstruct/cut_degenerate.cc.o" "gcc" "src/CMakeFiles/gms_reconstruct.dir/reconstruct/cut_degenerate.cc.o.d"
  "/root/repo/src/reconstruct/light_recovery.cc" "src/CMakeFiles/gms_reconstruct.dir/reconstruct/light_recovery.cc.o" "gcc" "src/CMakeFiles/gms_reconstruct.dir/reconstruct/light_recovery.cc.o.d"
  "/root/repo/src/reconstruct/row_reconstruct.cc" "src/CMakeFiles/gms_reconstruct.dir/reconstruct/row_reconstruct.cc.o" "gcc" "src/CMakeFiles/gms_reconstruct.dir/reconstruct/row_reconstruct.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gms_connectivity.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gms_exact.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gms_sketch.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gms_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gms_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gms_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
