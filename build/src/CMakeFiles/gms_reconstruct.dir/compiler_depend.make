# Empty compiler generated dependencies file for gms_reconstruct.
# This may be replaced when dependencies are built.
