#include "reconstruct/cut_degenerate.h"

namespace gms {

Result<ReconstructionResult> CutDegenerateReconstructor::Reconstruct() const {
  auto recovered = sketch_.Recover();
  if (!recovered.ok()) return recovered.status();
  ReconstructionResult out;
  out.hypergraph = std::move(recovered->light);
  out.complete = !recovered->residual_nonempty;
  out.num_layers = recovered->layers.size();
  return out;
}

}  // namespace gms
