// Light-edge recovery (Section 4.2.1, Theorem 15): from ONE (k+1)-skeleton
// sketch B(G), recover
//   E_i = { e : lambda_e(G - E_1 - ... - E_{i-1}) <= k },  light_k = U E_i.
//
// The peeling reuses the single sketch across iterations -- sound here
// (unlike adaptive k-skeleton construction, Section 4.2's cautionary tale)
// because each E_i is a deterministic function of the input graph, so the
// union bound ranges over FIXED events. Each iteration extracts a
// (k+1)-skeleton S_i of the residual and keeps the edges with
// lambda_e(S_i) <= k, which by Lemma 12 are exactly the residual's light
// edges (and every such edge is necessarily present in S_i).
//
// If G is k-cut-degenerate, light_k(G) = E and this sketch reconstructs
// the entire hypergraph in O(kn polylog n) space.
#ifndef GMS_RECONSTRUCT_LIGHT_RECOVERY_H_
#define GMS_RECONSTRUCT_LIGHT_RECOVERY_H_

#include <cstdint>
#include <vector>

#include "connectivity/k_skeleton.h"
#include "graph/hypergraph.h"
#include "stream/stream.h"

namespace gms {

struct LightRecoveryResult {
  std::vector<std::vector<Hyperedge>> layers;  // E_1, E_2, ...
  Hypergraph light;  // union of the layers
  /// True if a final skeleton extraction found leftover (non-light) edges,
  /// i.e. the graph was NOT k-cut-degenerate-recoverable in full.
  bool residual_nonempty = false;
};

class LightRecoverySketch {
 public:
  using Params = ForestSketchParams;

  /// Recovers light_k of hypergraphs on n vertices with hyperedges of
  /// cardinality <= max_rank. Internally a (k+1)-layer skeleton sketch.
  LightRecoverySketch(size_t n, size_t max_rank, size_t k, uint64_t seed,
                      const Params& params = Params());

  size_t n() const { return n_; }
  size_t k() const { return k_; }
  uint64_t seed() const { return skeleton_.seed(); }
  /// Resolved Borůvka rounds of the underlying skeleton's forest sketches.
  int rounds() const { return skeleton_.rounds(); }

  void Update(const Hyperedge& e, int delta) { skeleton_.Update(e, delta); }
  /// As Update with the codec index precomputed by the caller (the
  /// sparsifier's levels all share one (n, max_rank) domain).
  void UpdateEncoded(const Hyperedge& e, u128 index, int delta) {
    skeleton_.UpdateEncoded(e, index, delta);
  }
  /// As UpdateEncoded with the coordinate fully prepared by the caller.
  void UpdatePrepared(const Hyperedge& e, const PreparedCoord& pc, int delta) {
    skeleton_.UpdatePrepared(e, pc, delta);
  }
  void Process(std::span<const StreamUpdate> updates) {
    skeleton_.Process(updates);
  }
  void Process(const DynamicStream& stream) { skeleton_.Process(stream); }

  /// Gutter-driver batch apply (stream/stream_driver.h): delegates to the
  /// underlying skeleton's fan-out over its k+1 layers.
  void ApplyUpdateBatch(size_t thr_id, VertexId v,
                        std::span<const VertexUpdate> batch) {
    skeleton_.ApplyUpdateBatch(thr_id, v, batch);
  }

  /// Linearly subtract a known edge set (e.g. layers recovered at other
  /// sampling levels in the Section 5 sparsifier).
  void RemoveKnown(const std::vector<Hyperedge>& edges) {
    skeleton_.RemoveHyperedges(edges);
  }

  /// Run the peeling. Works on a copy; the sketch is reusable.
  Result<LightRecoveryResult> Recover() const;

  /// As Recover(), but first linearly subtracts `pre_subtract` from the
  /// working copy. One skeleton copy total -- the caller-side RemoveKnown +
  /// Recover sequence pays the copy twice, which is what the sparsifier's
  /// per-level extraction used to do.
  Result<LightRecoveryResult> Recover(
      const std::vector<Hyperedge>& pre_subtract) const;

  /// Serving hook (src/serve/): true iff the underlying skeleton's
  /// measurement state changed since construction / the last Clear().
  bool SnapshotDirty() const { return skeleton_.SnapshotDirty(); }

  size_t MemoryBytes() const { return skeleton_.MemoryBytes(); }

  /// Bit-identity of the underlying skeleton state (determinism suite).
  bool StateEquals(const LightRecoverySketch& other) const {
    return skeleton_.StateEquals(other.skeleton_);
  }

  /// Cell-wise field addition (delegates to the underlying skeleton; valid
  /// iff the other sketch carries the same measurement).
  Status MergeFrom(const LightRecoverySketch& other) {
    if (k_ != other.k_) {
      return Status::InvalidArgument(
          "LightRecoverySketch::MergeFrom: seed/shape mismatch (different "
          "measurement)");
    }
    return skeleton_.MergeFrom(other.skeleton_);
  }

  /// Zero the underlying skeleton (the empty-stream measurement).
  void Clear() { skeleton_.Clear(); }

  /// A sketch of the SAME measurement with zero state (the sharded-merge
  /// private clone); the parent's cells are never copied.
  LightRecoverySketch CloneEmpty() const {
    return LightRecoverySketch(*this, CloneEmptyTag{});
  }

  /// Raw skeleton cells for COMPOSITE frames (the sparsifier packs all its
  /// level rows into one frame).
  void AppendCells(wire::Writer* w) const { skeleton_.AppendCells(w); }
  Status ReadCells(wire::Reader* r) { return skeleton_.ReadCells(r); }

 private:
  LightRecoverySketch(const LightRecoverySketch& other, CloneEmptyTag)
      : n_(other.n_), k_(other.k_), skeleton_(other.skeleton_.CloneEmpty()) {}

  size_t n_;
  size_t k_;
  KSkeletonSketch skeleton_;
};

}  // namespace gms

#endif  // GMS_RECONSTRUCT_LIGHT_RECOVERY_H_
