// The Becker et al. [5] baseline that Theorem 15 strictly generalizes:
// reconstruct a d-DEGENERATE graph from an O(d polylog n)-size sparse-
// recovery sketch of each adjacency-matrix row. Decoding peels minimum-
// degree vertices: a d-degenerate graph always has a vertex of degree <= d
// whose row decodes; its edges are then linearly subtracted from the
// neighbours' rows, reducing their degrees, and so on.
#ifndef GMS_RECONSTRUCT_ROW_RECONSTRUCT_H_
#define GMS_RECONSTRUCT_ROW_RECONSTRUCT_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "graph/graph.h"
#include "sketch/sparse_recovery.h"
#include "stream/stream.h"

namespace gms {

struct RowSketchParams {
  int rows = 3;
  /// Row-sketch capacity as a multiple of (d+1); the decode requires the
  /// momentary degree of some vertex to stay within capacity.
  int capacity_factor = 2;
};

class RowReconstructSketch {
 public:
  using Params = RowSketchParams;

  RowReconstructSketch(size_t n, size_t d, uint64_t seed,
                       const Params& params = Params());

  size_t n() const { return n_; }
  size_t d() const { return d_; }
  int capacity() const { return shape_->capacity(); }

  void Update(const Edge& e, int delta);
  void Process(const DynamicStream& stream);

  /// Peel-decode the graph. Succeeds for every d-degenerate input whp;
  /// DecodeFailure when peeling gets stuck (graph has a subgraph of min
  /// degree above the row capacity).
  Result<Graph> Reconstruct() const;

  size_t MemoryBytes() const;

 private:
  size_t n_;
  size_t d_;
  std::shared_ptr<const SSparseShape> shape_;
  std::vector<SSparseState> rows_;
};

}  // namespace gms

#endif  // GMS_RECONSTRUCT_ROW_RECONSTRUCT_H_
