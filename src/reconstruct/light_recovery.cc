#include "reconstruct/light_recovery.h"

#include "exact/strength.h"
#include "util/check.h"

namespace gms {

LightRecoverySketch::LightRecoverySketch(size_t n, size_t max_rank, size_t k,
                                         uint64_t seed,
                                         const ForestSketchParams& params)
    : n_(n), k_(k), skeleton_(n, max_rank, k + 1, seed, params) {}

Result<LightRecoveryResult> LightRecoverySketch::Recover() const {
  return Recover({});
}

Result<LightRecoveryResult> LightRecoverySketch::Recover(
    const std::vector<Hyperedge>& pre_subtract) const {
  LightRecoveryResult out;
  out.light = Hypergraph(n_);
  KSkeletonSketch work = skeleton_;
  work.RemoveHyperedges(pre_subtract);
  // At most n nonempty layers (each removal splits components; Section
  // 4.2.1), so cap the loop there.
  for (size_t iter = 0; iter < n_ + 1; ++iter) {
    auto skeleton = work.Extract();
    if (!skeleton.ok()) return skeleton.status();
    if (skeleton->NumEdges() == 0) return out;  // residual empty: done
    // E_i = light edges of the residual, read off the skeleton (Lemma 12);
    // LightLayer uses the Gomory-Hu fast path on 2-uniform skeletons.
    std::vector<Hyperedge> layer = LightLayer(*skeleton, k_);
    if (layer.empty()) {
      // Residual is entirely (k+1)-heavy: light_k fully recovered, but the
      // graph itself has more edges than the sketch can reconstruct.
      out.residual_nonempty = true;
      return out;
    }
    work.RemoveHyperedges(layer);
    for (const auto& e : layer) out.light.AddEdge(e);
    out.layers.push_back(std::move(layer));
  }
  return Status::DecodeFailure("light-edge peeling exceeded n iterations");
}

}  // namespace gms
