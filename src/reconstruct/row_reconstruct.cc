#include "reconstruct/row_reconstruct.h"

#include "util/check.h"
#include "util/random.h"

namespace gms {

RowReconstructSketch::RowReconstructSketch(size_t n, size_t d, uint64_t seed,
                                           const Params& params)
    : n_(n), d_(d) {
  GMS_CHECK(n >= 2);
  int capacity =
      params.capacity_factor * (static_cast<int>(d) + 1);
  Rng rng(seed);
  shape_ = std::make_shared<const SSparseShape>(
      /*domain=*/static_cast<u128>(n), capacity, params.rows,
      /*buckets=*/2 * capacity, rng.Fork());
  rows_.reserve(n);
  for (size_t v = 0; v < n; ++v) rows_.emplace_back(shape_.get());
}

void RowReconstructSketch::Update(const Edge& e, int delta) {
  GMS_CHECK(e.v() < n_);
  // Row u gets a mark at coordinate v and vice versa.
  rows_[e.u()].Update(static_cast<u128>(e.v()), delta);
  rows_[e.v()].Update(static_cast<u128>(e.u()), delta);
}

void RowReconstructSketch::Process(const DynamicStream& stream) {
  for (const auto& u : stream) {
    GMS_CHECK_MSG(u.edge.IsGraphEdge(), "row sketches take graph streams");
    Update(u.edge.AsEdge(), u.delta);
  }
}

Result<Graph> RowReconstructSketch::Reconstruct() const {
  std::vector<SSparseState> work = rows_;
  std::vector<bool> resolved(n_, false);
  Graph out(n_);
  size_t remaining = n_;
  bool progress = true;
  while (remaining > 0 && progress) {
    progress = false;
    for (VertexId v = 0; v < n_; ++v) {
      if (resolved[v]) continue;
      auto decoded = work[v].Decode();
      if (!decoded.ok()) continue;  // degree still above capacity
      // Validate: every entry must be a +1 at a distinct other vertex.
      bool valid = true;
      for (const auto& entry : *decoded) {
        valid &= entry.value == 1 && entry.index < static_cast<u128>(n_) &&
                 static_cast<VertexId>(entry.index) != v;
      }
      if (!valid) continue;
      for (const auto& entry : *decoded) {
        VertexId u = static_cast<VertexId>(entry.index);
        out.AddEdge(v, u);
        // Linearly remove the edge from both rows.
        work[v].Update(entry.index, -1);
        work[u].Update(static_cast<u128>(v), -1);
      }
      resolved[v] = true;
      --remaining;
      progress = true;
    }
  }
  if (remaining > 0) {
    return Status::DecodeFailure(
        "row peeling stuck: residual min degree exceeds row capacity");
  }
  return out;
}

size_t RowReconstructSketch::MemoryBytes() const {
  size_t total = 0;
  for (const auto& row : rows_) total += row.MemoryBytes();
  return total;
}

}  // namespace gms
