// Full reconstruction of d-cut-degenerate hypergraphs (Theorem 15's
// headline application): a thin wrapper over LightRecoverySketch that
// returns the reconstructed hypergraph and reports whether reconstruction
// was provably complete.
#ifndef GMS_RECONSTRUCT_CUT_DEGENERATE_H_
#define GMS_RECONSTRUCT_CUT_DEGENERATE_H_

#include <cstdint>

#include "reconstruct/light_recovery.h"

namespace gms {

struct ReconstructionResult {
  Hypergraph hypergraph;
  /// True when the peeling consumed everything the sketch could see; false
  /// when a (k+1)-heavy residual remained (the input was not
  /// d-cut-degenerate at this d).
  bool complete = false;
  size_t num_layers = 0;
};

class CutDegenerateReconstructor {
 public:
  /// Reconstructs any d-cut-degenerate hypergraph exactly, in
  /// O(dn polylog n) space.
  CutDegenerateReconstructor(size_t n, size_t max_rank, size_t d,
                             uint64_t seed,
                             const ForestSketchParams& params =
                                 ForestSketchParams())
      : sketch_(n, max_rank, d, seed, params) {}

  void Update(const Hyperedge& e, int delta) { sketch_.Update(e, delta); }
  void Process(const DynamicStream& stream) { sketch_.Process(stream); }

  Result<ReconstructionResult> Reconstruct() const;

  size_t d() const { return sketch_.k(); }
  size_t MemoryBytes() const { return sketch_.MemoryBytes(); }

 private:
  LightRecoverySketch sketch_;
};

}  // namespace gms

#endif  // GMS_RECONSTRUCT_CUT_DEGENERATE_H_
