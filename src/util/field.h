// Arithmetic in the prime field F_p with p = 2^61 - 1 (a Mersenne prime).
// Used for sketch fingerprints and for the k-wise independent polynomial
// hash families. The Mersenne structure gives branch-light modular
// reduction: x mod p = (x >> 61) + (x & p), followed by one conditional
// subtraction.
#ifndef GMS_UTIL_FIELD_H_
#define GMS_UTIL_FIELD_H_

#include <cstdint>

#include "util/check.h"
#include "util/uint128.h"

namespace gms {

/// The field modulus 2^61 - 1.
inline constexpr uint64_t kMersenne61 = (1ULL << 61) - 1;

/// Reduce a value < 2^122 into [0, p).
inline uint64_t FpReduce(u128 x) {
  uint64_t lo = static_cast<uint64_t>(x & kMersenne61);
  uint64_t hi = static_cast<uint64_t>(x >> 61);
  uint64_t r = lo + hi;
  // hi < 2^61 and lo < 2^61 so r < 2^62: one more folding step suffices.
  r = (r & kMersenne61) + (r >> 61);
  if (r >= kMersenne61) r -= kMersenne61;
  return r;
}

/// Reduce an arbitrary u128 into [0, p).
inline uint64_t FpReduceFull(u128 x) {
  // x may occupy all 128 bits, which exceeds FpReduce's 2^122 precondition,
  // so fold once first: the high 67 bits fold onto the low 61, leaving an
  // operand < 2^68.
  u128 folded = (x & kMersenne61) + (x >> 61);
  return FpReduce(folded);
}

/// Reduce an arbitrary u128 modulo p - 1 = 2^61 - 2, the order of the
/// multiplicative group: z^x = z^FpReduceExp(x) for any nonzero z in F_p.
/// Division-free: 2^61 == 2 (mod p-1), so each fold maps q*2^61 + r to
/// 2q + r. Three folds bring any 128-bit operand below 2^61 + 2, after
/// which one conditional subtraction lands in [0, p-1).
inline uint64_t FpReduceExp(u128 x) {
  constexpr uint64_t m = kMersenne61 - 1;  // 2^61 - 2
  x = ((x >> 61) << 1) + (x & kMersenne61);  // < 2^69
  x = ((x >> 61) << 1) + (x & kMersenne61);  // < 2^61 + 2^9
  uint64_t r = (static_cast<uint64_t>(x >> 61) << 1) +
               (static_cast<uint64_t>(x) & kMersenne61);  // <= 2^61 + 1
  if (r >= m) r -= m;
  return r;
}

inline uint64_t FpAdd(uint64_t a, uint64_t b) {
  uint64_t r = a + b;
  if (r >= kMersenne61) r -= kMersenne61;
  return r;
}

inline uint64_t FpSub(uint64_t a, uint64_t b) {
  return a >= b ? a - b : a + kMersenne61 - b;
}

inline uint64_t FpNeg(uint64_t a) { return a == 0 ? 0 : kMersenne61 - a; }

inline uint64_t FpMul(uint64_t a, uint64_t b) {
  GMS_DCHECK(a < kMersenne61 && b < kMersenne61);
  return FpReduce(static_cast<u128>(a) * b);
}

/// a^e mod p by binary exponentiation.
uint64_t FpPow(uint64_t a, uint64_t e);

/// Multiplicative inverse (a != 0) via Fermat's little theorem.
uint64_t FpInv(uint64_t a);

/// Map a signed 64-bit integer into F_p (negative values wrap to p - |v|).
inline uint64_t FpFromInt64(int64_t v) {
  if (v >= 0) return FpReduce(static_cast<u128>(static_cast<uint64_t>(v)));
  // Negate in unsigned space: -v overflows (UB) for v == INT64_MIN, but
  // 0 - uint64_t(v) is the magnitude for every negative v.
  uint64_t mag = 0u - static_cast<uint64_t>(v);
  return FpNeg(FpReduce(static_cast<u128>(mag)));
}

/// Map a u128 into F_p.
inline uint64_t FpFromU128(u128 v) { return FpReduceFull(v); }

}  // namespace gms

#endif  // GMS_UTIL_FIELD_H_
