#include "util/table.h"

#include <cinttypes>
#include <cstdio>

#include "util/check.h"

namespace gms {

void Table::AddRow(std::vector<std::string> cells) {
  GMS_CHECK_MSG(cells.size() == headers_.size(), "row arity mismatch");
  rows_.push_back(std::move(cells));
}

void Table::Print(const std::string& title) const {
  std::vector<size_t> width(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (row[c].size() > width[c]) width[c] = row[c].size();
    }
  }
  if (!title.empty()) std::printf("\n== %s ==\n", title.c_str());
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      std::printf("%-*s%s", static_cast<int>(width[c]), row[c].c_str(),
                  c + 1 == row.size() ? "\n" : "  ");
    }
  };
  print_row(headers_);
  size_t total = headers_.size() ? headers_.size() * 2 - 2 : 0;
  for (size_t c = 0; c < headers_.size(); ++c) total += width[c];
  for (size_t i = 0; i < total; ++i) std::printf("-");
  std::printf("\n");
  for (const auto& row : rows_) print_row(row);
}

std::string Table::ToCsv() const {
  std::string out;
  auto append_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      out += row[c];
      out += (c + 1 == row.size()) ? "\n" : ",";
    }
  };
  append_row(headers_);
  for (const auto& row : rows_) append_row(row);
  return out;
}

std::string Table::Fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::Fmt(uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  return buf;
}

std::string Table::Fmt(int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  return buf;
}

}  // namespace gms
