#include "util/zeroed_buffer.h"

#include <cstdlib>
#include <cstring>

#if defined(__linux__)
#include <sys/mman.h>
#endif

#include "util/check.h"

namespace gms {

namespace {

// Below this size a syscall-backed mapping costs more than the memset it
// saves; above it, lazy zero pages win (and the region is large enough for
// transparent huge pages to matter).
constexpr size_t kMapThresholdBytes = size_t{1} << 20;

constexpr size_t kAlign = 64;  // one cache line

}  // namespace

void ZeroedBuffer::Allocate(size_t words) {
  words_ = words;
  if (words == 0) {
    data_ = nullptr;
    mapped_ = false;
    return;
  }
  const size_t bytes = words * sizeof(uint64_t);
#if defined(__linux__)
  if (bytes >= kMapThresholdBytes) {
    void* p = mmap(nullptr, bytes, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (p != MAP_FAILED) {
      // Random-offset sketch updates pay a TLB walk per touch with 4 KiB
      // pages; 2 MiB pages keep the arena's translations resident.
#if defined(MADV_HUGEPAGE)
      madvise(p, bytes, MADV_HUGEPAGE);
#endif
      data_ = static_cast<uint64_t*>(p);
      mapped_ = true;
      return;
    }
    // mmap refused (e.g. overcommit limits): fall through to the heap.
  }
#endif
  const size_t padded = (bytes + kAlign - 1) & ~(kAlign - 1);
  void* p = std::aligned_alloc(kAlign, padded);
  GMS_CHECK_MSG(p != nullptr, "ZeroedBuffer: allocation failed");
  std::memset(p, 0, padded);
  data_ = static_cast<uint64_t*>(p);
  mapped_ = false;
}

void ZeroedBuffer::Release() {
  if (data_ == nullptr) return;
#if defined(__linux__)
  if (mapped_) {
    munmap(data_, words_ * sizeof(uint64_t));
  } else {
    std::free(data_);
  }
#else
  std::free(data_);
#endif
  data_ = nullptr;
  words_ = 0;
  mapped_ = false;
}

ZeroedBuffer::ZeroedBuffer(size_t words) { Allocate(words); }

ZeroedBuffer::ZeroedBuffer(const ZeroedBuffer& other) {
  Allocate(other.words_);
  if (words_ > 0) std::memcpy(data_, other.data_, words_ * sizeof(uint64_t));
}

ZeroedBuffer::ZeroedBuffer(ZeroedBuffer&& other) noexcept
    : data_(other.data_), words_(other.words_), mapped_(other.mapped_) {
  other.data_ = nullptr;
  other.words_ = 0;
  other.mapped_ = false;
}

ZeroedBuffer& ZeroedBuffer::operator=(const ZeroedBuffer& other) {
  if (this == &other) return *this;
  if (words_ != other.words_) {
    Release();
    Allocate(other.words_);
  }
  if (words_ > 0) std::memcpy(data_, other.data_, words_ * sizeof(uint64_t));
  return *this;
}

ZeroedBuffer& ZeroedBuffer::operator=(ZeroedBuffer&& other) noexcept {
  if (this == &other) return *this;
  Release();
  data_ = other.data_;
  words_ = other.words_;
  mapped_ = other.mapped_;
  other.data_ = nullptr;
  other.words_ = 0;
  other.mapped_ = false;
  return *this;
}

ZeroedBuffer::~ZeroedBuffer() { Release(); }

void ZeroedBuffer::Fill0() {
  if (words_ == 0) return;
#if defined(__linux__) && defined(MADV_DONTNEED)
  if (mapped_) {
    // Dropping the pages of a private anonymous mapping re-zeros them
    // lazily; fall back to memset if the kernel refuses.
    if (madvise(data_, words_ * sizeof(uint64_t), MADV_DONTNEED) == 0) return;
  }
#endif
  std::memset(data_, 0, words_ * sizeof(uint64_t));
}

bool operator==(const ZeroedBuffer& a, const ZeroedBuffer& b) {
  if (a.words_ != b.words_) return false;
  if (a.words_ == 0) return true;
  return std::memcmp(a.data_, b.data_, a.words_ * sizeof(uint64_t)) == 0;
}

}  // namespace gms
