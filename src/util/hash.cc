#include "util/hash.h"

namespace gms {

PolyHash::PolyHash(int independence, uint64_t seed) {
  GMS_CHECK_MSG(independence >= 2, "need independence >= 2");
  Rng rng(seed);
  coeffs_.resize(static_cast<size_t>(independence));
  for (auto& c : coeffs_) {
    // Uniform in [0, p).
    c = rng.Below(kMersenne61);
  }
  // Leading coefficient nonzero so the polynomial has full degree.
  if (coeffs_[0] == 0) coeffs_[0] = 1;
  mixer_ = rng.Below(kMersenne61 - 1) + 1;  // nonzero
}

}  // namespace gms
