#include "util/hash.h"

namespace gms {

PolyHash::PolyHash(int independence, uint64_t seed) {
  GMS_CHECK_MSG(independence >= 2, "need independence >= 2");
  Rng rng(seed);
  coeffs_.resize(static_cast<size_t>(independence));
  for (auto& c : coeffs_) {
    // Uniform in [0, p).
    c = rng.Below(kMersenne61);
  }
  // Leading coefficient nonzero so the polynomial has full degree.
  if (coeffs_[0] == 0) coeffs_[0] = 1;
  mixer_ = rng.Below(kMersenne61 - 1) + 1;  // nonzero
}

uint64_t PolyHash::FoldKey(u128 key) const {
  uint64_t lo = FpReduceFull(key & ((static_cast<u128>(1) << 64) - 1));
  uint64_t hi = FpReduceFull(key >> 64);
  return FpAdd(lo, FpMul(hi, mixer_));
}

uint64_t PolyHash::Eval(u128 key) const {
  GMS_DCHECK(!coeffs_.empty());
  uint64_t x = FoldKey(key);
  uint64_t acc = 0;
  for (uint64_t c : coeffs_) acc = FpAdd(FpMul(acc, x), c);
  return acc;
}

}  // namespace gms
