// k-wise independent hash families over F_p, p = 2^61 - 1.
//
// A degree-(t-1) polynomial with uniformly random coefficients evaluated at
// the key is a t-wise independent family over F_p. Keys are coordinate
// indices in the (huge, implicit) hyperedge space and may be 128-bit; they
// are injected into F_p by splitting into two 61-bit-reducible halves and
// combining with an extra random multiplier, so distinct 128-bit keys map to
// distinct field points except with probability <= 2/p per pair (absorbed
// into the sketch failure probability).
//
// The halves themselves (a FoldedKey) carry no per-hash randomness, so a
// caller touching several hashes with the same key folds ONCE and hands the
// FoldedKey to every Eval*Folded / Level*Folded call; only the final
// mixer multiply is per-hash. This is the fold-once contract the sketch
// update kernel relies on.
#ifndef GMS_UTIL_HASH_H_
#define GMS_UTIL_HASH_H_

#include <cstdint>
#include <vector>

#include "util/field.h"
#include "util/random.h"
#include "util/uint128.h"

namespace gms {

/// A 128-bit key folded to two field elements (low and high 64-bit halves,
/// each reduced mod p). Hash-independent: computable once per key and shared
/// across every PolyHash / LevelHash evaluation of that key.
struct FoldedKey {
  uint64_t lo = 0;
  uint64_t hi = 0;
};

/// Fold a 128-bit key into its two field halves (both operands are < 2^64,
/// within FpReduce's 2^122 precondition).
inline FoldedKey FoldKey128(u128 key) {
  return FoldedKey{FpReduce(static_cast<u128>(static_cast<uint64_t>(key))),
                   FpReduce(static_cast<u128>(static_cast<uint64_t>(key >> 64)))};
}

/// Map a field element h in [0, p) to [0, bound) by Lemire multiply-shift:
/// (h * bound) >> 61. No division; since h < 2^61 the result is < bound,
/// and for bound <= 2^32 the per-bucket bias is O(bound / p), far below the
/// sketch failure probability. NOTE: this assigns different buckets than
/// `h % bound` would — sketch guarantees depend only on the hash family's
/// distribution, not on which reduction maps field values to buckets.
inline uint32_t FieldToBucket(uint64_t h, uint32_t bound) {
  return static_cast<uint32_t>((static_cast<u128>(h) * bound) >> 61);
}

/// t-wise independent hash from u128 keys to [0, p).
class PolyHash {
 public:
  /// Build a hash with the given independence t >= 2, seeded deterministically.
  PolyHash(int independence, uint64_t seed);

  /// Default-constructed hash is unusable; assign before use.
  PolyHash() = default;

  /// Hash to a field element in [0, 2^61 - 1).
  uint64_t Eval(u128 key) const { return EvalFolded(FoldKey128(key)); }

  /// As Eval, with the key already folded by the caller (the hot path:
  /// fold once, evaluate many hashes).
  uint64_t EvalFolded(FoldedKey k) const {
    GMS_DCHECK(!coeffs_.empty());
    uint64_t x = FpAdd(k.lo, FpMul(k.hi, mixer_));
    uint64_t acc = 0;
    for (uint64_t c : coeffs_) acc = FpAdd(FpMul(acc, x), c);
    return acc;
  }

  /// Hash to [0, bound) by Lemire multiply-shift on the field output (no
  /// division). bound must be <= 2^32 to keep the mapping bias negligible
  /// relative to p.
  uint32_t EvalBelow(u128 key, uint32_t bound) const {
    return FieldToBucket(Eval(key), bound);
  }

  /// As EvalBelow with a caller-folded key.
  uint32_t EvalBelowFolded(FoldedKey k, uint32_t bound) const {
    return FieldToBucket(EvalFolded(k), bound);
  }

  int independence() const { return static_cast<int>(coeffs_.size()); }

 private:
  std::vector<uint64_t> coeffs_;  // degree t-1 .. 0
  uint64_t mixer_ = 1;            // random multiplier for the high half
};

/// Geometric level function for L0-sampler subsampling: level(key) = number
/// of consecutive low-order zero bits in a pairwise-independent-ish 64-bit
/// hash of the key, capped at max_level. P[level >= j] ~= 2^-j.
class LevelHash {
 public:
  LevelHash(uint64_t seed, int max_level)
      : hash_(/*independence=*/2, seed), max_level_(max_level) {}
  LevelHash() = default;

  int Level(u128 key) const { return LevelFolded(FoldKey128(key)); }

  /// As Level with a caller-folded key.
  int LevelFolded(FoldedKey k) const {
    uint64_t h = Mix64(hash_.EvalFolded(k));
    if (h == 0) return max_level_;
    int tz = __builtin_ctzll(h);
    return tz < max_level_ ? tz : max_level_;
  }

  int max_level() const { return max_level_; }

 private:
  PolyHash hash_;
  int max_level_ = 0;
};

}  // namespace gms

#endif  // GMS_UTIL_HASH_H_
