// k-wise independent hash families over F_p, p = 2^61 - 1.
//
// A degree-(t-1) polynomial with uniformly random coefficients evaluated at
// the key is a t-wise independent family over F_p. Keys are coordinate
// indices in the (huge, implicit) hyperedge space and may be 128-bit; they
// are injected into F_p by splitting into two 61-bit-reducible halves and
// combining with an extra random multiplier, so distinct 128-bit keys map to
// distinct field points except with probability <= 2/p per pair (absorbed
// into the sketch failure probability).
#ifndef GMS_UTIL_HASH_H_
#define GMS_UTIL_HASH_H_

#include <cstdint>
#include <vector>

#include "util/field.h"
#include "util/random.h"
#include "util/uint128.h"

namespace gms {

/// t-wise independent hash from u128 keys to [0, p).
class PolyHash {
 public:
  /// Build a hash with the given independence t >= 2, seeded deterministically.
  PolyHash(int independence, uint64_t seed);

  /// Default-constructed hash is unusable; assign before use.
  PolyHash() = default;

  /// Hash to a field element in [0, 2^61 - 1).
  uint64_t Eval(u128 key) const;

  /// Hash to [0, bound) via multiply-shift on the field output. bound must
  /// be <= 2^32 to keep the modulo bias negligible relative to p.
  uint32_t EvalBelow(u128 key, uint32_t bound) const {
    return static_cast<uint32_t>(Eval(key) % bound);
  }

  int independence() const { return static_cast<int>(coeffs_.size()); }

 private:
  // Fold a 128-bit key into a single field element, pairwise-injectively
  // up to probability 1/p (uses the random mixer_).
  uint64_t FoldKey(u128 key) const;

  std::vector<uint64_t> coeffs_;  // degree t-1 .. 0
  uint64_t mixer_ = 1;            // random multiplier for the high half
};

/// Geometric level function for L0-sampler subsampling: level(key) = number
/// of consecutive low-order zero bits in a pairwise-independent-ish 64-bit
/// hash of the key, capped at max_level. P[level >= j] ~= 2^-j.
class LevelHash {
 public:
  LevelHash(uint64_t seed, int max_level)
      : hash_(/*independence=*/2, seed), max_level_(max_level) {}
  LevelHash() = default;

  int Level(u128 key) const {
    uint64_t h = Mix64(hash_.Eval(key));
    if (h == 0) return max_level_;
    int tz = __builtin_ctzll(h);
    return tz < max_level_ ? tz : max_level_;
  }

  int max_level() const { return max_level_; }

 private:
  PolyHash hash_;
  int max_level_ = 0;
};

}  // namespace gms

#endif  // GMS_UTIL_HASH_H_
