// Fixed thread pool and deterministic parallel-for.
//
// The sketching stack parallelizes by SHARDING OWNERSHIP, not by locking:
// a structure made of many independent linear states (the R subsampled
// forests of Theorem 4, the k layers of a skeleton sketch, the rows of the
// Section 5 sparsifier, the Boruvka rounds within one forest sketch)
// partitions its states into contiguous static shards, and each shard is
// mutated by exactly one worker. Because sketches are linear and a shard
// sees its updates in stream order, the result is bit-identical to the
// serial path for every thread count -- there is nothing to synchronize on
// the hot path and nothing for the schedule to reorder.
#ifndef GMS_UTIL_PARALLEL_H_
#define GMS_UTIL_PARALLEL_H_

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/check.h"

namespace gms {

/// Process-wide pool of helper threads, grown on demand and kept for the
/// lifetime of the process (workers block on a condition variable between
/// jobs; an idle pool costs nothing on the hot path).
class ThreadPool {
 public:
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// The shared pool. First use from any thread creates it.
  static ThreadPool& Shared();

  /// Invoke fn(shard) for every shard in [0, shards): shard 0 runs on the
  /// calling thread, shard s > 0 on helper thread s-1. Blocks until all
  /// shards return. Top-level only -- a shard that itself reaches a
  /// ParallelFor runs it inline (see below), so nesting cannot deadlock.
  /// Run(1, fn) invokes fn(0) on the calling thread but still marks it as
  /// inside a parallel region, so nested engine dispatch degrades to the
  /// serial column path (sharded_merge.h relies on this for its
  /// degenerate-split fallback). Deliberately NOT clamped to
  /// HardwareThreads(): tests exercise oversubscribed shard counts here.
  void Run(size_t shards, const std::function<void(size_t)>& fn);

  /// True while the calling thread is executing a shard of some Run.
  static bool InParallelRegion();

 private:
  ThreadPool() = default;
  void EnsureHelpers(size_t count);  // callers hold mu_
  void HelperLoop(size_t helper);

  std::mutex run_mu_;  // serializes concurrent top-level Run calls
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::vector<std::thread> helpers_;
  const std::function<void(size_t)>* task_ = nullptr;
  size_t shards_ = 0;
  size_t pending_ = 0;
  uint64_t generation_ = 0;
  bool stop_ = false;
};

/// CPUs actually available to this process: the scheduling-affinity mask
/// when the OS exposes one (containers and taskset often grant fewer CPUs
/// than the machine has), hardware_concurrency otherwise, never 0. Cached
/// after the first call. ParallelFor clamps its shard fan-out here --
/// oversubscribing a CPU-bound loop past the available cores only buys
/// context switches and cache thrash (the "mid-thread regression": 2
/// workers on 1 core ran SLOWER than serial).
size_t HardwareThreads();

/// The contiguous static shard [begin, end) of [0, n) with index `shard`
/// out of `shards`. Depends only on (n, shard, shards), never on the
/// schedule: this is what makes parallel sketch ingestion deterministic.
struct ShardRange {
  size_t begin = 0;
  size_t end = 0;
};
inline ShardRange ShardOf(size_t n, size_t shard, size_t shards) {
  return ShardRange{shard * n / shards, (shard + 1) * n / shards};
}

/// How a batched Process(span) call turns the update stream into
/// parallelism. Both modes are bit-identical to the serial path.
enum class IngestMode : uint8_t {
  /// Shard the sketch's independent state COLUMNS (Borůvka rounds, the R
  /// subsamples, skeleton layers, sparsifier level rows) across workers;
  /// every worker scans the whole update stream. No extra memory, but the
  /// parallelism is capped by the number of columns.
  kColumnSharded = 0,
  /// Shard the update STREAM: each worker ingests a disjoint slice into a
  /// private zeroed clone of the sketch, then a tree of MergeFrom calls
  /// combines the clones (exact cell-wise field addition, so the result is
  /// bit-identical to serial by linearity). Scales with stream length even
  /// for single-column sketches, at threads x the sketch's memory.
  kShardedMerge = 1,
  /// The gutter driver (stream/stream_driver.h): readers prepare updates
  /// and coalesce them into per-vertex gutters; appliers own static vertex
  /// shards and replay full gutters over each vertex's contiguous sketch
  /// block. Converts the column path's random-vertex DRAM walk into
  /// cache-resident batch replays; bit-identical to serial by linearity.
  kGutterDriver = 2,
};

/// The engine knobs shared by every sketch's params struct (embedded as
/// `engine`; brace elision keeps positional aggregate init working).
struct EngineParams {
  /// Worker threads for batched ingestion and extraction (1 = serial).
  /// Under kGutterDriver this is the APPLIER count. Outputs are
  /// bit-identical for every value.
  size_t threads = 1;
  IngestMode mode = IngestMode::kColumnSharded;
  /// kGutterDriver only: reader threads (0 = threads / 4, min 1) and
  /// entries per gutter before auto-flush (0 = stream/stream_driver.h
  /// default). Like threads/mode, pure execution policy: never on the
  /// wire, never affects output bits.
  size_t driver_readers = 0;
  size_t driver_gutter_capacity = 0;

  class Builder;
};

/// THE engine-knob validator: every params builder (here, forest, VC,
/// sparsifier) funnels its embedded EngineParams through this one function,
/// so a bad knob combination fails identically no matter which surface it
/// entered through. Aborts (GMS_CHECK) -- a malformed params struct is a
/// programming error, not a runtime condition.
inline const EngineParams& ValidateEngineParams(const EngineParams& p) {
  GMS_CHECK_MSG(p.threads >= 1, "EngineParams: threads must be >= 1");
  GMS_CHECK_MSG(p.mode == IngestMode::kColumnSharded ||
                    p.mode == IngestMode::kShardedMerge ||
                    p.mode == IngestMode::kGutterDriver,
                "EngineParams: unknown ingest mode");
  GMS_CHECK_MSG(p.driver_readers == 0 || p.mode == IngestMode::kGutterDriver,
                "EngineParams: driver_readers is a kGutterDriver knob");
  GMS_CHECK_MSG(
      p.driver_gutter_capacity == 0 || p.mode == IngestMode::kGutterDriver,
      "EngineParams: driver_gutter_capacity is a kGutterDriver knob");
  return p;
}

/// Fluent construction: EngineParams::Builder().Threads(8)
///     .Mode(IngestMode::kGutterDriver).Build().
/// Build() routes through ValidateEngineParams, so hand-rolled aggregates
/// and built params obey the same rules. The struct itself stays an
/// aggregate (a nested class does not forfeit aggregate-ness), so existing
/// brace/field initialization keeps compiling during migration.
class EngineParams::Builder {
 public:
  Builder() = default;
  /// Copy-with: seed the builder from existing params, override a few
  /// knobs, Build(). (Re-)validates everything, including untouched fields.
  explicit Builder(const EngineParams& from) : p_(from) {}

  Builder& Threads(size_t threads) {
    p_.threads = threads;
    return *this;
  }
  Builder& Mode(IngestMode mode) {
    p_.mode = mode;
    return *this;
  }
  Builder& DriverReaders(size_t readers) {
    p_.driver_readers = readers;
    return *this;
  }
  Builder& DriverGutterCapacity(size_t capacity) {
    p_.driver_gutter_capacity = capacity;
    return *this;
  }
  EngineParams Build() const { return ValidateEngineParams(p_); }

 private:
  EngineParams p_;
};

/// Run body(begin, end) over contiguous static shards of [0, n). The shard
/// count is min(threads, n, HardwareThreads()): requesting more workers
/// than available CPUs never helps a CPU-bound loop, so the engine degrades
/// gracefully instead of oversubscribing. threads <= 1, n <= 1, or a call
/// from inside another parallel region runs the whole range inline on the
/// calling thread. Results never depend on the shard count -- every engine
/// loop either owns disjoint state per index or reduces with exact field
/// arithmetic -- so the clamp is invisible except in wall time.
inline void ParallelFor(size_t threads, size_t n,
                        const std::function<void(size_t, size_t)>& body) {
  if (n == 0) return;
  size_t shards = std::min({threads, n, HardwareThreads()});
  if (shards <= 1 || ThreadPool::InParallelRegion()) {
    body(0, n);
    return;
  }
  ThreadPool::Shared().Run(shards, [&](size_t shard) {
    ShardRange r = ShardOf(n, shard, shards);
    if (r.begin < r.end) body(r.begin, r.end);
  });
}

/// ParallelFor with shard boundaries rounded to multiples of `grain`.
/// Loops whose per-index outputs are ADJACENT bytes (a std::vector<char>
/// flag per index, say) invite false sharing at shard seams: two workers
/// read-modify-write the same cache line for the whole loop. Sharding whole
/// grain-sized blocks (64 indices of a byte array = one cache line) gives
/// every worker line-exclusive output. The final partial block goes to the
/// last shard; boundaries still depend only on (n, grain, shard count).
inline void ParallelForAligned(size_t threads, size_t n, size_t grain,
                               const std::function<void(size_t, size_t)>& body) {
  if (grain <= 1) {
    ParallelFor(threads, n, body);
    return;
  }
  const size_t blocks = (n + grain - 1) / grain;
  ParallelFor(threads, blocks, [&](size_t bbegin, size_t bend) {
    const size_t begin = bbegin * grain;
    const size_t end = std::min(n, bend * grain);
    if (begin < end) body(begin, end);
  });
}

/// Tag for the empty-clone constructors behind the mergeable-sketch
/// CloneEmpty() concept (sharded_merge.h): same seed, shapes, and active
/// sets as the source sketch, but zero cells -- WITHOUT copying the source
/// arena first.
struct CloneEmptyTag {};

}  // namespace gms

#endif  // GMS_UTIL_PARALLEL_H_
