#include "util/parallel.h"

#if defined(__linux__)
#include <sched.h>
#endif

namespace gms {

namespace {
thread_local bool t_in_parallel_region = false;
}  // namespace

size_t HardwareThreads() {
  static const size_t count = [] {
#if defined(__linux__)
    cpu_set_t set;
    CPU_ZERO(&set);
    if (sched_getaffinity(0, sizeof(set), &set) == 0) {
      const int c = CPU_COUNT(&set);
      if (c > 0) return static_cast<size_t>(c);
    }
#endif
    const unsigned hc = std::thread::hardware_concurrency();
    return hc > 0 ? static_cast<size_t>(hc) : size_t{1};
  }();
  return count;
}

bool ThreadPool::InParallelRegion() { return t_in_parallel_region; }

ThreadPool& ThreadPool::Shared() {
  static ThreadPool* pool = new ThreadPool();  // leaked: outlives all users
  return *pool;
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : helpers_) t.join();
}

void ThreadPool::EnsureHelpers(size_t count) {
  while (helpers_.size() < count) {
    size_t index = helpers_.size();
    helpers_.emplace_back([this, index] { HelperLoop(index); });
  }
}

void ThreadPool::HelperLoop(size_t helper) {
  uint64_t seen = 0;
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
    if (stop_) return;
    seen = generation_;
    // Helper h owns shard h+1 of the current job (the caller runs shard 0);
    // helpers beyond the job's shard count just re-arm for the next one.
    if (helper + 1 < shards_) {
      const std::function<void(size_t)>* task = task_;
      lock.unlock();
      t_in_parallel_region = true;
      (*task)(helper + 1);
      t_in_parallel_region = false;
      lock.lock();
      if (--pending_ == 0) done_cv_.notify_one();
    }
  }
}

void ThreadPool::Run(size_t shards, const std::function<void(size_t)>& fn) {
  if (shards <= 1) {
    if (shards == 1) {
      // Still a "shard of some Run": mark the region so nested engine
      // dispatch (UseShardedMerge, ParallelFor) degrades to inline/serial
      // paths instead of recursing back into the pool.
      const bool prev = t_in_parallel_region;
      t_in_parallel_region = true;
      fn(0);
      t_in_parallel_region = prev;
    }
    return;
  }
  std::lock_guard<std::mutex> run_lock(run_mu_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    EnsureHelpers(shards - 1);
    task_ = &fn;
    shards_ = shards;
    pending_ = shards - 1;
    ++generation_;
  }
  work_cv_.notify_all();
  t_in_parallel_region = true;
  fn(0);
  t_in_parallel_region = false;
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return pending_ == 0; });
  task_ = nullptr;
  shards_ = 0;
}

}  // namespace gms
