// Deterministic, seedable random number generation. All randomized
// components in graphsketch take an explicit 64-bit seed so that every
// experiment and test is exactly reproducible; independent subcomponents
// derive their own streams with SplitMix64 so seeds never collide by
// accident.
#ifndef GMS_UTIL_RANDOM_H_
#define GMS_UTIL_RANDOM_H_

#include <cstdint>

#include "util/check.h"
#include "util/uint128.h"

namespace gms {

/// SplitMix64 step: statistically strong 64->64 mixing; used both as a
/// stream-splitter and as a cheap stateless mixer.
inline uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Stateless mix of a single value (Stafford variant 13).
inline uint64_t Mix64(uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** PRNG. Small, fast, and good enough for every randomized
/// algorithm here (the k-wise independent hash families carry the actual
/// theoretical guarantees; the PRNG only seeds them).
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    uint64_t sm = seed;
    for (int i = 0; i < 4; ++i) s_[i] = SplitMix64(sm);
  }

  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound must be > 0. Uses Lemire rejection.
  uint64_t Below(uint64_t bound) {
    GMS_DCHECK(bound > 0);
    u128 m = static_cast<u128>(Next()) * bound;
    uint64_t lo = static_cast<uint64_t>(m);
    if (lo < bound) {
      uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        m = static_cast<u128>(Next()) * bound;
        lo = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t Range(int64_t lo, int64_t hi) {
    GMS_DCHECK(lo <= hi);
    return lo + static_cast<int64_t>(
                    Below(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double NextDouble() { return (Next() >> 11) * 0x1.0p-53; }

  /// Bernoulli(p).
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Derive an independent child seed (stream splitting).
  uint64_t Fork() { return Next() ^ 0xd1b54a32d192ed03ULL; }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  uint64_t s_[4];
};

/// Fisher-Yates shuffle of a random-access container.
template <typename Container>
void Shuffle(Container& c, Rng& rng) {
  for (size_t i = c.size(); i > 1; --i) {
    size_t j = rng.Below(i);
    using std::swap;
    swap(c[i - 1], c[j]);
  }
}

}  // namespace gms

#endif  // GMS_UTIL_RANDOM_H_
