// Wall-clock timer for the experiment harness.
#ifndef GMS_UTIL_TIMER_H_
#define GMS_UTIL_TIMER_H_

#include <chrono>

namespace gms {

class Timer {
 public:
  Timer() : start_(Clock::now()) {}
  void Reset() { start_ = Clock::now(); }
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace gms

#endif  // GMS_UTIL_TIMER_H_
