// Invariant-check macros. GMS_CHECK aborts on violation in all build modes;
// GMS_DCHECK compiles out in NDEBUG builds. Library code uses these for
// programmer errors only; recoverable conditions go through gms::Status.
#ifndef GMS_UTIL_CHECK_H_
#define GMS_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

#define GMS_CHECK(cond)                                                     \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "GMS_CHECK failed: %s at %s:%d\n", #cond,        \
                   __FILE__, __LINE__);                                     \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

#define GMS_CHECK_MSG(cond, msg)                                            \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "GMS_CHECK failed: %s (%s) at %s:%d\n", #cond,   \
                   msg, __FILE__, __LINE__);                                \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

#ifdef NDEBUG
#define GMS_DCHECK(cond) \
  do {                   \
  } while (0)
#else
#define GMS_DCHECK(cond) GMS_CHECK(cond)
#endif

#endif  // GMS_UTIL_CHECK_H_
