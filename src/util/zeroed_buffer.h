// 64-byte-aligned flat word buffer whose pages start zeroed WITHOUT an
// eager memset. Sketch arenas are large (hundreds of MB at bench scale) and
// two operations on them are hot:
//   - creating an empty clone of an existing sketch (sharded-merge ingest
//     spawns one private clone per worker), and
//   - Clear() back to the empty-stream measurement.
// Backing large buffers with fresh anonymous mappings makes both lazy: the
// kernel hands out zero pages on first touch, so an untouched clone costs
// page-table entries instead of a full-arena write, and Clear() is an
// madvise instead of a memset. Small buffers fall back to aligned_alloc +
// memset, which is cheaper than a syscall at that size.
#ifndef GMS_UTIL_ZEROED_BUFFER_H_
#define GMS_UTIL_ZEROED_BUFFER_H_

#include <cstddef>
#include <cstdint>

namespace gms {

class ZeroedBuffer {
 public:
  ZeroedBuffer() = default;
  /// A buffer of `words` uint64 cells, all zero (lazily for large sizes).
  explicit ZeroedBuffer(size_t words);
  ZeroedBuffer(const ZeroedBuffer& other);
  ZeroedBuffer(ZeroedBuffer&& other) noexcept;
  ZeroedBuffer& operator=(const ZeroedBuffer& other);
  ZeroedBuffer& operator=(ZeroedBuffer&& other) noexcept;
  ~ZeroedBuffer();

  uint64_t* data() { return data_; }
  const uint64_t* data() const { return data_; }
  size_t size() const { return words_; }
  bool empty() const { return words_ == 0; }

  /// Zero every word. On the mapped path this drops the physical pages
  /// (subsequent reads see kernel zero pages), so clearing an arena that
  /// was mostly untouched is O(1) in memory traffic.
  void Fill0();

  /// Word-wise content equality (sizes must match too).
  friend bool operator==(const ZeroedBuffer& a, const ZeroedBuffer& b);

 private:
  void Allocate(size_t words);
  void Release();

  uint64_t* data_ = nullptr;
  size_t words_ = 0;
  bool mapped_ = false;  // true: anonymous mmap; false: aligned_alloc
};

}  // namespace gms

#endif  // GMS_UTIL_ZEROED_BUFFER_H_
