#include "util/random.h"

// Header-only implementation; this file exists so the target has a TU and a
// place for future out-of-line additions.
namespace gms {}
