#include "util/status.h"

namespace gms {

std::string Status::ToString() const {
  const char* name = "Unknown";
  switch (code_) {
    case StatusCode::kOk:
      name = "OK";
      break;
    case StatusCode::kInvalidArgument:
      name = "InvalidArgument";
      break;
    case StatusCode::kFailedPrecondition:
      name = "FailedPrecondition";
      break;
    case StatusCode::kOutOfRange:
      name = "OutOfRange";
      break;
    case StatusCode::kDecodeFailure:
      name = "DecodeFailure";
      break;
    case StatusCode::kUnimplemented:
      name = "Unimplemented";
      break;
    case StatusCode::kInternal:
      name = "Internal";
      break;
  }
  if (message_.empty()) return name;
  return std::string(name) + ": " + message_;
}

}  // namespace gms
