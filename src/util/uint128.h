// Helpers for the 128-bit integer types used for hyperedge coordinate
// indices. The coordinate space P_r(V) has dimension sum_{s=2..r} C(n, s),
// which overflows 64 bits already at r = 4, n ~ 10^5; all index arithmetic
// is done in unsigned __int128.
#ifndef GMS_UTIL_UINT128_H_
#define GMS_UTIL_UINT128_H_

#include <cstdint>
#include <string>

namespace gms {

using u128 = unsigned __int128;
using i128 = __int128;

/// Decimal rendering (the standard library cannot print __int128).
inline std::string U128ToString(u128 x) {
  if (x == 0) return "0";
  std::string out;
  while (x > 0) {
    out.push_back(static_cast<char>('0' + static_cast<int>(x % 10)));
    x /= 10;
  }
  return std::string(out.rbegin(), out.rend());
}

inline std::string I128ToString(i128 x) {
  if (x < 0) return "-" + U128ToString(static_cast<u128>(-x));
  return U128ToString(static_cast<u128>(x));
}

/// floor(log2(x)) for x > 0; returns 0 for x == 0.
inline int Log2Floor128(u128 x) {
  if (x == 0) return 0;
  uint64_t hi = static_cast<uint64_t>(x >> 64);
  if (hi != 0) return 127 - __builtin_clzll(hi);
  return 63 - __builtin_clzll(static_cast<uint64_t>(x));
}

/// Number of bits needed to represent x (0 -> 0 bits).
inline int BitWidth128(u128 x) { return x == 0 ? 0 : Log2Floor128(x) + 1; }

}  // namespace gms

#endif  // GMS_UTIL_UINT128_H_
