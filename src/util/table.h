// Minimal aligned-column table printer used by the benchmark harness and
// examples to emit the experiment rows recorded in EXPERIMENTS.md. Also
// writes CSV so results can be post-processed.
#ifndef GMS_UTIL_TABLE_H_
#define GMS_UTIL_TABLE_H_

#include <string>
#include <vector>

namespace gms {

class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  /// Append one row; must have the same arity as the header.
  void AddRow(std::vector<std::string> cells);

  /// Render with aligned columns to stdout, with an optional title banner.
  void Print(const std::string& title = "") const;

  /// Render as CSV (header + rows).
  std::string ToCsv() const;

  size_t num_rows() const { return rows_.size(); }

  // Cell formatting helpers.
  static std::string Fmt(double v, int precision = 4);
  static std::string Fmt(uint64_t v);
  static std::string Fmt(int64_t v);
  static std::string Fmt(int v) { return Fmt(static_cast<int64_t>(v)); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace gms

#endif  // GMS_UTIL_TABLE_H_
