#include "util/field.h"

namespace gms {

uint64_t FpPow(uint64_t a, uint64_t e) {
  uint64_t base = a >= kMersenne61 ? a - kMersenne61 : a;
  uint64_t result = 1;
  while (e > 0) {
    if (e & 1) result = FpMul(result, base);
    base = FpMul(base, base);
    e >>= 1;
  }
  return result;
}

uint64_t FpInv(uint64_t a) {
  GMS_CHECK_MSG(a % kMersenne61 != 0, "inverse of zero");
  return FpPow(a, kMersenne61 - 2);
}

}  // namespace gms
