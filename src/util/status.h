// Arrow/RocksDB-style Status and Result<T>. Library code does not throw;
// recoverable failures -- notably sketch decode failures, which occur with
// small but nonzero probability by design -- are returned as values.
#ifndef GMS_UTIL_STATUS_H_
#define GMS_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "util/check.h"

namespace gms {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kFailedPrecondition,
  kOutOfRange,
  // A sketch-decode query could not be answered (e.g. an L0-sampler found no
  // decodable level, or sparse recovery saw more nonzeros than its capacity).
  // This is the "with high probability" failure event of the paper's
  // theorems, surfaced as a value.
  kDecodeFailure,
  kUnimplemented,
  kInternal,
};

/// Operation outcome. Cheap to copy when OK (no allocation).
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status DecodeFailure(std::string msg) {
    return Status(StatusCode::kDecodeFailure, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  bool IsDecodeFailure() const { return code_ == StatusCode::kDecodeFailure; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable rendering, e.g. "DecodeFailure: no decodable level".
  std::string ToString() const;

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// Value-or-Status. Accessing the value of a failed Result aborts; callers
/// must test ok() (or use value_or / status()).
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    GMS_CHECK_MSG(!status_.ok(), "Result constructed from OK status");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    GMS_CHECK_MSG(ok(), status_.ToString().c_str());
    return *value_;
  }
  T& value() & {
    GMS_CHECK_MSG(ok(), status_.ToString().c_str());
    return *value_;
  }
  T&& value() && {
    GMS_CHECK_MSG(ok(), status_.ToString().c_str());
    return std::move(*value_);
  }
  template <typename U>
  T value_or(U&& fallback) const& {
    return ok() ? *value_ : static_cast<T>(std::forward<U>(fallback));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::optional<T> value_;
  Status status_ = Status::OK();
};

/// Propagate a non-OK Status from an expression.
#define GMS_RETURN_IF_ERROR(expr)          \
  do {                                     \
    ::gms::Status _st = (expr);            \
    if (!_st.ok()) return _st;             \
  } while (0)

}  // namespace gms

#endif  // GMS_UTIL_STATUS_H_
