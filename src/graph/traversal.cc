#include "graph/traversal.h"

#include <algorithm>

#include "graph/union_find.h"

namespace gms {

std::vector<uint32_t> ConnectedComponents(const Graph& g) {
  UnionFind uf(g.NumVertices());
  for (const Edge& e : g.Edges()) uf.Union(e.u(), e.v());
  return uf.ComponentIds();
}

std::vector<uint32_t> ConnectedComponents(const Hypergraph& g) {
  UnionFind uf(g.NumVertices());
  for (const auto& e : g.Edges()) {
    for (size_t i = 1; i < e.size(); ++i) uf.Union(e[0], e[i]);
  }
  return uf.ComponentIds();
}

namespace {
template <typename G>
size_t NumComponentsImpl(const G& g) {
  auto ids = ConnectedComponents(g);
  uint32_t max_id = 0;
  for (uint32_t id : ids) max_id = std::max(max_id, id);
  return ids.empty() ? 0 : static_cast<size_t>(max_id) + 1;
}
}  // namespace

size_t NumComponents(const Graph& g) { return NumComponentsImpl(g); }
size_t NumComponents(const Hypergraph& g) { return NumComponentsImpl(g); }

bool IsConnected(const Graph& g) {
  return g.NumVertices() <= 1 || NumComponents(g) == 1;
}
bool IsConnected(const Hypergraph& g) {
  return g.NumVertices() <= 1 || NumComponents(g) == 1;
}

bool IsConnectedExcluding(const Graph& g,
                          const std::vector<VertexId>& removed) {
  std::vector<bool> gone(g.NumVertices(), false);
  for (VertexId v : removed) gone[v] = true;
  UnionFind uf(g.NumVertices());
  for (const Edge& e : g.Edges()) {
    if (!gone[e.u()] && !gone[e.v()]) uf.Union(e.u(), e.v());
  }
  VertexId first = 0;
  bool seen_first = false;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    if (gone[v]) continue;
    if (!seen_first) {
      first = v;
      seen_first = true;
    } else if (!uf.Connected(first, v)) {
      return false;
    }
  }
  return true;
}

bool IsConnectedExcluding(const Hypergraph& g,
                          const std::vector<VertexId>& removed) {
  std::vector<bool> gone(g.NumVertices(), false);
  for (VertexId v : removed) gone[v] = true;
  UnionFind uf(g.NumVertices());
  for (const auto& e : g.Edges()) {
    bool alive = true;
    for (VertexId v : e) alive &= !gone[v];
    if (!alive) continue;
    for (size_t i = 1; i < e.size(); ++i) uf.Union(e[0], e[i]);
  }
  VertexId first = 0;
  bool seen_first = false;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    if (gone[v]) continue;
    if (!seen_first) {
      first = v;
      seen_first = true;
    } else if (!uf.Connected(first, v)) {
      return false;
    }
  }
  return true;
}

Graph SpanningForest(const Graph& g) {
  Graph forest(g.NumVertices());
  UnionFind uf(g.NumVertices());
  for (const Edge& e : g.Edges()) {
    if (uf.Union(e.u(), e.v())) forest.AddEdge(e);
  }
  return forest;
}

Hypergraph SpanningSubhypergraph(const Hypergraph& g) {
  Hypergraph span(g.NumVertices());
  UnionFind uf(g.NumVertices());
  for (const auto& e : g.Edges()) {
    bool useful = false;
    for (size_t i = 1; i < e.size(); ++i) {
      if (uf.Union(e[0], e[i])) useful = true;
    }
    if (useful) span.AddEdge(e);
  }
  return span;
}

std::vector<uint32_t> BridgeHyperedgeIndices(const Hypergraph& g) {
  // Articulation points of the bipartite incidence graph B: nodes
  // [0, n) are g's vertices, node n + i is hyperedge i, and B links a
  // hyperedge node to each of its member vertices. A component of B
  // always contains vertex nodes (hyperedge nodes have degree >= 2), so
  // components of B restricted to vertex nodes are exactly components of
  // g, with or without any one hyperedge -- hence hyperedge i is a bridge
  // of g iff node n + i is an articulation point of B.
  const size_t n = g.NumVertices();
  const auto& edges = g.Edges();
  const size_t total = n + edges.size();
  std::vector<uint32_t> out;
  if (edges.empty()) return out;

  // Neighbor j of node x, materialized lazily from the incidence lists.
  auto neighbor_count = [&](size_t x) {
    return x < n ? g.IncidentIndices(static_cast<VertexId>(x)).size()
                 : edges[x - n].size();
  };
  auto neighbor = [&](size_t x, size_t j) -> size_t {
    return x < n ? n + g.IncidentIndices(static_cast<VertexId>(x))[j]
                 : static_cast<size_t>(edges[x - n][j]);
  };

  constexpr uint32_t kUnvisited = 0xffffffffu;
  std::vector<uint32_t> disc(total, kUnvisited);
  std::vector<uint32_t> low(total, 0);
  std::vector<bool> is_cut(total, false);
  // Explicit DFS stack: (node, parent, next neighbor index to visit).
  struct Frame {
    uint32_t node;
    uint32_t parent;
    uint32_t next;
  };
  std::vector<Frame> stack;
  uint32_t time = 0;
  for (size_t root = 0; root < total; ++root) {
    if (disc[root] != kUnvisited) continue;
    size_t root_children = 0;
    disc[root] = low[root] = time++;
    stack.push_back({static_cast<uint32_t>(root), kUnvisited, 0});
    while (!stack.empty()) {
      Frame& f = stack.back();
      if (f.next < neighbor_count(f.node)) {
        const size_t w = neighbor(f.node, f.next++);
        if (disc[w] == kUnvisited) {
          if (f.node == root) ++root_children;
          disc[w] = low[w] = time++;
          stack.push_back({static_cast<uint32_t>(w), f.node, 0});
        } else if (w != f.parent) {
          low[f.node] = std::min(low[f.node], disc[w]);
        }
      } else {
        const Frame done = f;
        stack.pop_back();
        if (done.parent != kUnvisited) {
          low[done.parent] = std::min(low[done.parent], low[done.node]);
          if (done.parent != root && low[done.node] >= disc[done.parent]) {
            is_cut[done.parent] = true;
          }
        }
      }
    }
    if (root_children >= 2) is_cut[root] = true;
  }
  for (size_t i = 0; i < edges.size(); ++i) {
    if (is_cut[n + i]) out.push_back(static_cast<uint32_t>(i));
  }
  return out;
}

std::vector<Hyperedge> BridgeHyperedges(const Hypergraph& g) {
  std::vector<Hyperedge> out;
  for (uint32_t i : BridgeHyperedgeIndices(g)) out.push_back(g.Edges()[i]);
  return out;
}

}  // namespace gms
