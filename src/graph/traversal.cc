#include "graph/traversal.h"

#include <algorithm>

#include "graph/union_find.h"

namespace gms {

std::vector<uint32_t> ConnectedComponents(const Graph& g) {
  UnionFind uf(g.NumVertices());
  for (const Edge& e : g.Edges()) uf.Union(e.u(), e.v());
  return uf.ComponentIds();
}

std::vector<uint32_t> ConnectedComponents(const Hypergraph& g) {
  UnionFind uf(g.NumVertices());
  for (const auto& e : g.Edges()) {
    for (size_t i = 1; i < e.size(); ++i) uf.Union(e[0], e[i]);
  }
  return uf.ComponentIds();
}

namespace {
template <typename G>
size_t NumComponentsImpl(const G& g) {
  auto ids = ConnectedComponents(g);
  uint32_t max_id = 0;
  for (uint32_t id : ids) max_id = std::max(max_id, id);
  return ids.empty() ? 0 : static_cast<size_t>(max_id) + 1;
}
}  // namespace

size_t NumComponents(const Graph& g) { return NumComponentsImpl(g); }
size_t NumComponents(const Hypergraph& g) { return NumComponentsImpl(g); }

bool IsConnected(const Graph& g) {
  return g.NumVertices() <= 1 || NumComponents(g) == 1;
}
bool IsConnected(const Hypergraph& g) {
  return g.NumVertices() <= 1 || NumComponents(g) == 1;
}

bool IsConnectedExcluding(const Graph& g,
                          const std::vector<VertexId>& removed) {
  std::vector<bool> gone(g.NumVertices(), false);
  for (VertexId v : removed) gone[v] = true;
  UnionFind uf(g.NumVertices());
  for (const Edge& e : g.Edges()) {
    if (!gone[e.u()] && !gone[e.v()]) uf.Union(e.u(), e.v());
  }
  VertexId first = 0;
  bool seen_first = false;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    if (gone[v]) continue;
    if (!seen_first) {
      first = v;
      seen_first = true;
    } else if (!uf.Connected(first, v)) {
      return false;
    }
  }
  return true;
}

bool IsConnectedExcluding(const Hypergraph& g,
                          const std::vector<VertexId>& removed) {
  std::vector<bool> gone(g.NumVertices(), false);
  for (VertexId v : removed) gone[v] = true;
  UnionFind uf(g.NumVertices());
  for (const auto& e : g.Edges()) {
    bool alive = true;
    for (VertexId v : e) alive &= !gone[v];
    if (!alive) continue;
    for (size_t i = 1; i < e.size(); ++i) uf.Union(e[0], e[i]);
  }
  VertexId first = 0;
  bool seen_first = false;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    if (gone[v]) continue;
    if (!seen_first) {
      first = v;
      seen_first = true;
    } else if (!uf.Connected(first, v)) {
      return false;
    }
  }
  return true;
}

Graph SpanningForest(const Graph& g) {
  Graph forest(g.NumVertices());
  UnionFind uf(g.NumVertices());
  for (const Edge& e : g.Edges()) {
    if (uf.Union(e.u(), e.v())) forest.AddEdge(e);
  }
  return forest;
}

Hypergraph SpanningSubhypergraph(const Hypergraph& g) {
  Hypergraph span(g.NumVertices());
  UnionFind uf(g.NumVertices());
  for (const auto& e : g.Edges()) {
    bool useful = false;
    for (size_t i = 1; i < e.size(); ++i) {
      if (uf.Union(e[0], e[i])) useful = true;
    }
    if (useful) span.AddEdge(e);
  }
  return span;
}

}  // namespace gms
