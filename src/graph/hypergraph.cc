#include "graph/hypergraph.h"

#include <algorithm>

namespace gms {

std::string Hyperedge::ToString() const {
  std::string out = "{";
  for (size_t i = 0; i < vertices_.size(); ++i) {
    if (i) out += ",";
    out += std::to_string(vertices_[i]);
  }
  out += "}";
  return out;
}

Hypergraph Hypergraph::FromGraph(const Graph& g) {
  Hypergraph h(g.NumVertices());
  for (const Edge& e : g.Edges()) h.AddEdge(Hyperedge(e));
  return h;
}

size_t Hypergraph::Rank() const {
  size_t r = 0;
  for (const auto& e : edges_) r = std::max(r, e.size());
  return r;
}

bool Hypergraph::AddEdge(const Hyperedge& e) {
  GMS_CHECK_MSG(e.vertices().back() < NumVertices(),
                "hyperedge vertex out of range");
  auto [it, inserted] =
      index_.emplace(e, static_cast<uint32_t>(edges_.size()));
  if (!inserted) return false;
  edges_.push_back(e);
  uint32_t idx = it->second;
  for (VertexId v : e) incident_[v].push_back(idx);
  return true;
}

bool Hypergraph::RemoveEdge(const Hyperedge& e) {
  auto it = index_.find(e);
  if (it == index_.end()) return false;
  uint32_t idx = it->second;
  uint32_t last = static_cast<uint32_t>(edges_.size()) - 1;

  auto erase_incidence = [&](const Hyperedge& edge, uint32_t edge_idx) {
    for (VertexId v : edge) {
      auto& list = incident_[v];
      list.erase(std::find(list.begin(), list.end(), edge_idx));
    }
  };

  erase_incidence(e, idx);
  index_.erase(it);
  if (idx != last) {
    // Move the last edge into the vacated slot and rewrite its references.
    Hyperedge moved = edges_[last];
    erase_incidence(moved, last);
    edges_[idx] = moved;
    index_[moved] = idx;
    for (VertexId v : moved) incident_[v].push_back(idx);
  }
  edges_.pop_back();
  return true;
}

void Hypergraph::AddAll(const Hypergraph& other) {
  GMS_CHECK(other.NumVertices() == NumVertices());
  for (const auto& e : other.Edges()) AddEdge(e);
}

Hypergraph Hypergraph::InducedExcluding(
    const std::vector<VertexId>& removed) const {
  std::vector<bool> gone(NumVertices(), false);
  for (VertexId v : removed) {
    GMS_CHECK(v < NumVertices());
    gone[v] = true;
  }
  Hypergraph out(NumVertices());
  for (const auto& e : edges_) {
    bool keep = true;
    for (VertexId v : e) {
      if (gone[v]) {
        keep = false;
        break;
      }
    }
    if (keep) out.AddEdge(e);
  }
  return out;
}

bool Hypergraph::operator==(const Hypergraph& other) const {
  if (NumVertices() != other.NumVertices()) return false;
  if (NumEdges() != other.NumEdges()) return false;
  for (const auto& e : edges_) {
    if (!other.HasEdge(e)) return false;
  }
  return true;
}

Graph Hypergraph::ToGraph() const {
  Graph g(NumVertices());
  for (const auto& e : edges_) {
    GMS_CHECK_MSG(e.IsGraphEdge(), "hyperedge of cardinality > 2");
    g.AddEdge(e.AsEdge());
  }
  return g;
}

size_t Hypergraph::CutSize(const std::vector<bool>& in_s) const {
  GMS_CHECK(in_s.size() == NumVertices());
  size_t count = 0;
  for (const auto& e : edges_) {
    bool any_in = false, any_out = false;
    for (VertexId v : e) {
      (in_s[v] ? any_in : any_out) = true;
      if (any_in && any_out) break;
    }
    if (any_in && any_out) ++count;
  }
  return count;
}

}  // namespace gms
