// Combinadic codec between hyperedges and coordinate indices.
//
// The paper's incidence vectors a^i live in dimension d = sum_{s=2..r} C(n,s)
// (Section 4.1): one coordinate per possible hyperedge of cardinality 2..r.
// This space is never materialized; sketches address it through this codec,
// which ranks a canonical hyperedge into a u128 index (sizes blocked
// consecutively, colexicographic rank within a size class) and unranks
// indices back to hyperedges. Both directions are O(r log n).
#ifndef GMS_GRAPH_EDGE_CODEC_H_
#define GMS_GRAPH_EDGE_CODEC_H_

#include <vector>

#include "graph/edge.h"
#include "util/status.h"
#include "util/uint128.h"

namespace gms {

/// C(m, j) as u128, saturating at U128_MAX on overflow.
u128 Binomial(uint64_t m, unsigned j);

class EdgeCodec {
 public:
  /// Codec for hyperedges over n vertices with cardinality in [2, max_rank].
  /// max_rank is clamped to n (larger ranks are unrealizable and add no
  /// coordinates), so max_rank() always satisfies the wire-format shape
  /// validation. CHECK-fails if the domain does not fit in 126 bits.
  EdgeCodec(size_t n, size_t max_rank);

  /// The domain a codec for (n, max_rank) would have, as a Status instead
  /// of the constructor's CHECK: wire-sourced shapes are validated with
  /// this BEFORE any codec (or sketch) is constructed, so hostile
  /// (n, max_rank) pairs surface as InvalidArgument rather than an abort.
  /// O(min(max_rank, 126)) time, no allocation.
  static Result<u128> DomainSizeFor(size_t n, size_t max_rank);

  size_t n() const { return n_; }
  size_t max_rank() const { return max_rank_; }

  /// Total number of coordinates d = sum_{s=2..r} C(n, s).
  u128 DomainSize() const { return domain_size_; }

  /// Rank a canonical hyperedge into [0, DomainSize()).
  u128 Encode(const Hyperedge& e) const;

  /// Unrank. Returns InvalidArgument for out-of-range indices.
  Result<Hyperedge> Decode(u128 index) const;

 private:
  size_t n_;
  size_t max_rank_;
  u128 domain_size_;
  // offset_[s] = first index of the size-s block, for s in [2, max_rank].
  std::vector<u128> offset_;
};

}  // namespace gms

#endif  // GMS_GRAPH_EDGE_CODEC_H_
