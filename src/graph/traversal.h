// Offline traversal utilities: connectivity, components, spanning forests,
// for graphs and hypergraphs. These are the ground-truth counterparts the
// sketch decoders are verified against.
#ifndef GMS_GRAPH_TRAVERSAL_H_
#define GMS_GRAPH_TRAVERSAL_H_

#include <vector>

#include "graph/graph.h"
#include "graph/hypergraph.h"

namespace gms {

/// Component id per vertex, dense in [0, #components).
std::vector<uint32_t> ConnectedComponents(const Graph& g);
std::vector<uint32_t> ConnectedComponents(const Hypergraph& g);

size_t NumComponents(const Graph& g);
size_t NumComponents(const Hypergraph& g);

bool IsConnected(const Graph& g);
bool IsConnected(const Hypergraph& g);

/// Connectivity of g restricted to vertices NOT in `removed` (G \ S in the
/// paper). An empty or single-vertex remainder counts as connected.
bool IsConnectedExcluding(const Graph& g, const std::vector<VertexId>& removed);

/// Hypergraph version with induced-subhypergraph semantics: a hyperedge
/// survives the removal only if NONE of its vertices were removed (the
/// same rule by which a hyperedge belongs to a vertex-subsampled G_i in
/// Section 3).
bool IsConnectedExcluding(const Hypergraph& g,
                          const std::vector<VertexId>& removed);

/// BFS spanning forest (one tree per component).
Graph SpanningForest(const Graph& g);

/// Spanning sub-hypergraph: greedily keep hyperedges that reduce the number
/// of union-find components (a 1-skeleton in the paper's terminology).
Hypergraph SpanningSubhypergraph(const Hypergraph& g);

/// Indices (into g.Edges()) of the bridge hyperedges: those whose removal
/// increases the number of connected components. Linear time via one
/// articulation-point DFS over the bipartite incidence graph (vertex nodes
/// + one node per hyperedge): a hyperedge is a bridge of g iff its
/// incidence node is a cut vertex there -- removing the node splits the
/// vertex nodes exactly as removing the hyperedge splits g.
std::vector<uint32_t> BridgeHyperedgeIndices(const Hypergraph& g);

/// The bridge hyperedges themselves, in g.Edges() order.
std::vector<Hyperedge> BridgeHyperedges(const Hypergraph& g);

}  // namespace gms

#endif  // GMS_GRAPH_TRAVERSAL_H_
