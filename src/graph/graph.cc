#include "graph/graph.h"

#include <algorithm>

namespace gms {

bool Graph::AddEdge(const Edge& e) {
  GMS_CHECK_MSG(e.v() < NumVertices(), "edge endpoint out of range");
  if (!adj_[e.u()].insert(e.v()).second) return false;
  adj_[e.v()].insert(e.u());
  ++num_edges_;
  return true;
}

bool Graph::RemoveEdge(const Edge& e) {
  GMS_CHECK_MSG(e.v() < NumVertices(), "edge endpoint out of range");
  if (adj_[e.u()].erase(e.v()) == 0) return false;
  adj_[e.v()].erase(e.u());
  --num_edges_;
  return true;
}

size_t Graph::MinDegree() const {
  size_t best = NumVertices() ? adj_[0].size() : 0;
  for (const auto& nbrs : adj_) best = std::min(best, nbrs.size());
  return best;
}

std::vector<Edge> Graph::Edges() const {
  std::vector<Edge> out;
  out.reserve(num_edges_);
  for (VertexId u = 0; u < NumVertices(); ++u) {
    for (VertexId v : adj_[u]) {
      if (u < v) out.emplace_back(u, v);
    }
  }
  return out;
}

void Graph::AddAll(const Graph& other) {
  GMS_CHECK(other.NumVertices() == NumVertices());
  for (const Edge& e : other.Edges()) AddEdge(e);
}

Graph Graph::InducedExcluding(const std::vector<VertexId>& removed) const {
  std::vector<bool> gone(NumVertices(), false);
  for (VertexId v : removed) {
    GMS_CHECK(v < NumVertices());
    gone[v] = true;
  }
  Graph out(NumVertices());
  for (VertexId u = 0; u < NumVertices(); ++u) {
    if (gone[u]) continue;
    for (VertexId v : adj_[u]) {
      if (u < v && !gone[v]) out.AddEdge(u, v);
    }
  }
  return out;
}

}  // namespace gms
