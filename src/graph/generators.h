// Workload generators: the synthetic graph and hypergraph families used by
// the test suite and the experiment harness (DESIGN.md Section 4). All
// generators are deterministic in the seed.
#ifndef GMS_GRAPH_GENERATORS_H_
#define GMS_GRAPH_GENERATORS_H_

#include <cstdint>

#include "graph/graph.h"
#include "graph/hypergraph.h"

namespace gms {

// ---------- Deterministic families ----------

Graph PathGraph(size_t n);
Graph CycleGraph(size_t n);
Graph StarGraph(size_t n);
Graph CompleteGraph(size_t n);
Graph CompleteBipartite(size_t a, size_t b);

/// The paper's Lemma 10 witness: 8 vertices, minimum degree 3 (so not
/// 2-degenerate) yet 2-cut-degenerate.
Graph Lemma10Witness();

/// Complete r-uniform hypergraph on n vertices (small n only).
Hypergraph CompleteUniformHypergraph(size_t n, size_t r);

/// "Hyper-cycle": n vertices, hyperedges {i, i+1, ..., i+r-1} mod n.
Hypergraph HyperCycle(size_t n, size_t r);

// ---------- Random families ----------

/// G(n, p).
Graph ErdosRenyi(size_t n, double p, uint64_t seed);

/// Uniform random graph with exactly m distinct edges.
Graph Gnm(size_t n, size_t m, uint64_t seed);

/// R-MAT / Kronecker power-law graph (Chakrabarti-Zhan-Faloutsos): each
/// edge descends ceil(log2 n) quadrant levels with probabilities
/// (a, b, c, 1-a-b-c); the defaults are the standard skewed setting that
/// yields a power-law degree sequence. Self-loops, duplicates, and
/// endpoints >= n (when n is not a power of two) are rejection-sampled;
/// stops short of m on saturated small domains like Gnm's contract.
Graph RmatGraph(size_t n, size_t m, uint64_t seed, double a = 0.57,
                double b = 0.19, double c = 0.19);

/// Road-like bounded-degree network: the n vertices on a near-square
/// lattice (4-neighbor grid edges, degree <= 4) plus `shortcuts` extra
/// random edges (highways); degree stays O(1) for shortcuts = O(n).
Graph RoadNetwork(size_t n, size_t shortcuts, uint64_t seed);

/// Uniformly random spanning tree (random Prüfer-free attachment tree:
/// vertex i attaches to a uniform earlier vertex, then labels shuffled).
Graph RandomTree(size_t n, uint64_t seed);

/// Union of c independent random Hamiltonian cycles; whp 2c-edge-connected
/// and (for n >> c) 2c-vertex-connected. Standard k-connectivity workload.
Graph UnionOfHamiltonianCycles(size_t n, size_t c, uint64_t seed);

/// Graph with vertex connectivity exactly k: two dense sides A, B (random
/// graphs topped up to be k+1-connected internally via Hamiltonian cycles)
/// with NO direct A-B edges; a separator set S of k vertices adjacent to
/// every vertex of A and B. Removing S disconnects; no smaller set does.
struct PlantedSeparatorGraph {
  Graph graph;
  std::vector<VertexId> separator;   // the k separator vertices
  std::vector<VertexId> side_a;      // representative side-A vertices
  std::vector<VertexId> side_b;
};
PlantedSeparatorGraph PlantedSeparator(size_t n, size_t k, uint64_t seed);

/// d-degenerate random graph: vertex i (in a random insertion order) links
/// to min(d, i) uniformly chosen earlier vertices.
Graph RandomDDegenerate(size_t n, size_t d, uint64_t seed);

/// Random r-uniform hypergraph with m distinct hyperedges.
Hypergraph RandomUniformHypergraph(size_t n, size_t m, size_t r,
                                   uint64_t seed);

/// Random hypergraph with m distinct hyperedges of cardinality uniform in
/// [r_min, r_max].
Hypergraph RandomHypergraph(size_t n, size_t m, size_t r_min, size_t r_max,
                            uint64_t seed);

/// Hypergraph with vertex connectivity exactly k under induced semantics:
/// two sides, each internally dense with hyperedges of rank <= r; no
/// hyperedge mixes the sides; every cross connection is a hyperedge
/// containing one separator vertex plus same-side vertices. Removing the
/// k separator vertices kills every crossing hyperedge.
struct PlantedHyperSeparator {
  Hypergraph hypergraph;
  std::vector<VertexId> separator;
  std::vector<VertexId> side_a;
  std::vector<VertexId> side_b;
};
PlantedHyperSeparator PlantedHypergraphSeparator(size_t n, size_t k, size_t r,
                                                 uint64_t seed);

/// Hypergraph with a planted minimum cut: two halves made internally dense
/// (min cut inside each half > cut_size) plus exactly cut_size crossing
/// hyperedges. Returns the hypergraph and the planted side-membership.
struct PlantedCutHypergraph {
  Hypergraph hypergraph;
  std::vector<bool> in_s;  // planted side
  size_t planted_cut_size;
};
PlantedCutHypergraph PlantedHypergraphCut(size_t n, size_t r, size_t cut_size,
                                          size_t edges_per_side,
                                          uint64_t seed);

}  // namespace gms

#endif  // GMS_GRAPH_GENERATORS_H_
