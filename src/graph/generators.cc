#include "graph/generators.h"

#include <algorithm>
#include <numeric>

#include "util/check.h"
#include "util/random.h"

namespace gms {

Graph PathGraph(size_t n) {
  Graph g(n);
  for (VertexId i = 0; i + 1 < n; ++i) g.AddEdge(i, i + 1);
  return g;
}

Graph CycleGraph(size_t n) {
  GMS_CHECK(n >= 3);
  Graph g = PathGraph(n);
  g.AddEdge(static_cast<VertexId>(n - 1), 0);
  return g;
}

Graph StarGraph(size_t n) {
  GMS_CHECK(n >= 2);
  Graph g(n);
  for (VertexId i = 1; i < n; ++i) g.AddEdge(0, i);
  return g;
}

Graph CompleteGraph(size_t n) {
  Graph g(n);
  for (VertexId i = 0; i < n; ++i) {
    for (VertexId j = i + 1; j < n; ++j) g.AddEdge(i, j);
  }
  return g;
}

Graph CompleteBipartite(size_t a, size_t b) {
  Graph g(a + b);
  for (VertexId i = 0; i < a; ++i) {
    for (VertexId j = 0; j < b; ++j) {
      g.AddEdge(i, static_cast<VertexId>(a + j));
    }
  }
  return g;
}

Graph Lemma10Witness() {
  // Vertices v1..v4 = 0..3, u1..u4 = 4..7. Edges {vi,vj} and {ui,uj} for all
  // i<j except (1,4), plus {v1,u1} and {v4,u4}.
  Graph g(8);
  for (int i = 0; i < 4; ++i) {
    for (int j = i + 1; j < 4; ++j) {
      if (i == 0 && j == 3) continue;
      g.AddEdge(static_cast<VertexId>(i), static_cast<VertexId>(j));
      g.AddEdge(static_cast<VertexId>(4 + i), static_cast<VertexId>(4 + j));
    }
  }
  g.AddEdge(0, 4);  // {v1, u1}
  g.AddEdge(3, 7);  // {v4, u4}
  return g;
}

Hypergraph CompleteUniformHypergraph(size_t n, size_t r) {
  GMS_CHECK(r >= 2 && r <= n);
  Hypergraph h(n);
  std::vector<VertexId> pick(r);
  // Iterate all r-subsets with the standard odometer.
  std::iota(pick.begin(), pick.end(), 0);
  while (true) {
    h.AddEdge(Hyperedge(pick));
    // Advance.
    size_t i = r;
    while (i > 0 && pick[i - 1] == n - r + (i - 1)) --i;
    if (i == 0) break;
    ++pick[i - 1];
    for (size_t j = i; j < r; ++j) pick[j] = pick[j - 1] + 1;
  }
  return h;
}

Hypergraph HyperCycle(size_t n, size_t r) {
  GMS_CHECK(r >= 2 && n > r);
  Hypergraph h(n);
  for (size_t i = 0; i < n; ++i) {
    std::vector<VertexId> vs(r);
    for (size_t j = 0; j < r; ++j) vs[j] = static_cast<VertexId>((i + j) % n);
    h.AddEdge(Hyperedge(std::move(vs)));
  }
  return h;
}

Graph ErdosRenyi(size_t n, double p, uint64_t seed) {
  Rng rng(seed);
  Graph g(n);
  for (VertexId i = 0; i < n; ++i) {
    for (VertexId j = i + 1; j < n; ++j) {
      if (rng.Bernoulli(p)) g.AddEdge(i, j);
    }
  }
  return g;
}

Graph Gnm(size_t n, size_t m, uint64_t seed) {
  GMS_CHECK(n >= 2);
  size_t max_m = n * (n - 1) / 2;
  GMS_CHECK_MSG(m <= max_m, "too many edges requested");
  Rng rng(seed);
  Graph g(n);
  while (g.NumEdges() < m) {
    VertexId u = static_cast<VertexId>(rng.Below(n));
    VertexId v = static_cast<VertexId>(rng.Below(n));
    if (u != v) g.AddEdge(u, v);
  }
  return g;
}

Graph RmatGraph(size_t n, size_t m, uint64_t seed, double a, double b,
                double c) {
  GMS_CHECK(n >= 2);
  GMS_CHECK_MSG(a >= 0 && b >= 0 && c >= 0 && a + b + c <= 1.0,
                "RmatGraph: quadrant probabilities must form a distribution");
  size_t levels = 0;
  while ((size_t{1} << levels) < n) ++levels;
  Rng rng(seed);
  Graph g(n);
  const size_t max_m = n * (n - 1) / 2;
  const size_t want = std::min(m, max_m);
  size_t attempts = 0;
  const size_t max_attempts = 100 * (want + 1) + 100;
  while (g.NumEdges() < want && ++attempts < max_attempts) {
    size_t u = 0;
    size_t v = 0;
    for (size_t l = 0; l < levels; ++l) {
      const double r = rng.NextDouble();
      u <<= 1;
      v <<= 1;
      if (r < a) {
        // top-left: both high bits 0
      } else if (r < a + b) {
        v |= 1;
      } else if (r < a + b + c) {
        u |= 1;
      } else {
        u |= 1;
        v |= 1;
      }
    }
    if (u == v || u >= n || v >= n) continue;
    g.AddEdge(static_cast<VertexId>(u), static_cast<VertexId>(v));
  }
  return g;
}

Graph RoadNetwork(size_t n, size_t shortcuts, uint64_t seed) {
  GMS_CHECK(n >= 2);
  size_t cols = 1;
  while (cols * cols < n) ++cols;
  Graph g(n);
  for (size_t v = 0; v < n; ++v) {
    const size_t col = v % cols;
    if (col + 1 < cols && v + 1 < n) {
      g.AddEdge(static_cast<VertexId>(v), static_cast<VertexId>(v + 1));
    }
    if (v + cols < n) {
      g.AddEdge(static_cast<VertexId>(v), static_cast<VertexId>(v + cols));
    }
  }
  Rng rng(seed);
  size_t placed = 0;
  size_t attempts = 0;
  const size_t max_attempts = 100 * (shortcuts + 1) + 100;
  while (placed < shortcuts && ++attempts < max_attempts) {
    VertexId u = static_cast<VertexId>(rng.Below(n));
    VertexId v = static_cast<VertexId>(rng.Below(n));
    if (u == v) continue;
    if (g.AddEdge(u, v)) ++placed;
  }
  return g;
}

Graph RandomTree(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<VertexId> label(n);
  std::iota(label.begin(), label.end(), 0);
  Shuffle(label, rng);
  Graph g(n);
  for (size_t i = 1; i < n; ++i) {
    size_t parent = rng.Below(i);
    g.AddEdge(label[i], label[parent]);
  }
  return g;
}

Graph UnionOfHamiltonianCycles(size_t n, size_t c, uint64_t seed) {
  GMS_CHECK(n >= 3);
  Rng rng(seed);
  Graph g(n);
  std::vector<VertexId> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  for (size_t t = 0; t < c; ++t) {
    Shuffle(perm, rng);
    for (size_t i = 0; i < n; ++i) {
      VertexId u = perm[i], v = perm[(i + 1) % n];
      if (u != v) g.AddEdge(u, v);
    }
  }
  return g;
}

PlantedSeparatorGraph PlantedSeparator(size_t n, size_t k, uint64_t seed) {
  GMS_CHECK_MSG(n >= 2 * (k + 3) + k, "n too small for planted separator");
  Rng rng(seed);
  PlantedSeparatorGraph out;
  size_t rest = n - k;
  size_t a_size = rest / 2;
  size_t b_size = rest - a_size;
  // Layout: [0, a_size) = A, [a_size, a_size + b_size) = B, tail = S.
  out.graph = Graph(n);
  Graph& g = out.graph;
  auto densify = [&](VertexId lo, size_t cnt) {
    // Internal structure: union of enough Hamiltonian cycles to make each
    // side more than k-vertex-connected internally.
    std::vector<VertexId> perm(cnt);
    std::iota(perm.begin(), perm.end(), lo);
    size_t cycles = k + 2;
    for (size_t t = 0; t < cycles; ++t) {
      Shuffle(perm, rng);
      for (size_t i = 0; i < cnt; ++i) {
        if (perm[i] != perm[(i + 1) % cnt]) {
          g.AddEdge(perm[i], perm[(i + 1) % cnt]);
        }
      }
    }
  };
  densify(0, a_size);
  densify(static_cast<VertexId>(a_size), b_size);
  for (size_t s = 0; s < k; ++s) {
    VertexId sep = static_cast<VertexId>(rest + s);
    out.separator.push_back(sep);
    for (VertexId v = 0; v < rest; ++v) g.AddEdge(sep, v);
    // Separator vertices also form a clique among themselves.
    for (size_t t = s + 1; t < k; ++t) {
      g.AddEdge(sep, static_cast<VertexId>(rest + t));
    }
  }
  for (VertexId v = 0; v < a_size; ++v) out.side_a.push_back(v);
  for (VertexId v = static_cast<VertexId>(a_size); v < rest; ++v) {
    out.side_b.push_back(v);
  }
  return out;
}

Graph RandomDDegenerate(size_t n, size_t d, uint64_t seed) {
  Rng rng(seed);
  Graph g(n);
  std::vector<VertexId> order(n);
  std::iota(order.begin(), order.end(), 0);
  Shuffle(order, rng);
  for (size_t i = 1; i < n; ++i) {
    size_t links = std::min(d, i);
    for (size_t t = 0; t < links; ++t) {
      g.AddEdge(order[i], order[rng.Below(i)]);
    }
  }
  return g;
}

PlantedHyperSeparator PlantedHypergraphSeparator(size_t n, size_t k, size_t r,
                                                 uint64_t seed) {
  GMS_CHECK(r >= 2 && k >= 1);
  size_t rest = n - k;
  size_t a_size = rest / 2;
  size_t b_size = rest - a_size;
  GMS_CHECK_MSG(a_size >= (k + 1) * (r - 1) && a_size >= 4,
                "n too small for the requested (k, r)");
  Rng rng(seed);
  PlantedHyperSeparator out;
  out.hypergraph = Hypergraph(n);
  Hypergraph& h = out.hypergraph;
  // Layout: [0, a_size) = A, [a_size, rest) = B, [rest, n) = S.
  auto densify = [&](VertexId lo, size_t cnt) {
    // 2-edges from k+2 Hamiltonian cycles: side connectivity > k.
    std::vector<VertexId> perm(cnt);
    std::iota(perm.begin(), perm.end(), lo);
    for (size_t t = 0; t < k + 2; ++t) {
      Shuffle(perm, rng);
      for (size_t i = 0; i < cnt; ++i) {
        VertexId x = perm[i], y = perm[(i + 1) % cnt];
        if (x != y) h.AddEdge(Hyperedge{x, y});
      }
    }
    // Decorative in-side hyperedges of full rank (cannot hurt: induced
    // semantics only ever deletes them).
    for (size_t t = 0; t < cnt / 2; ++t) {
      std::vector<VertexId> vs;
      while (vs.size() < std::min(r, cnt)) {
        VertexId v = static_cast<VertexId>(lo + rng.Below(cnt));
        if (std::find(vs.begin(), vs.end(), v) == vs.end()) vs.push_back(v);
      }
      h.AddEdge(Hyperedge(std::move(vs)));
    }
  };
  densify(0, a_size);
  densify(static_cast<VertexId>(a_size), b_size);
  // Each separator vertex reaches each side via k+1 hyperedges whose
  // side-parts are pairwise disjoint, so < k removals cannot sever it.
  for (size_t s = 0; s < k; ++s) {
    VertexId sep = static_cast<VertexId>(rest + s);
    out.separator.push_back(sep);
    for (int side = 0; side < 2; ++side) {
      size_t lo = side == 0 ? 0 : a_size;
      size_t cnt = side == 0 ? a_size : b_size;
      std::vector<VertexId> pool(cnt);
      std::iota(pool.begin(), pool.end(), static_cast<VertexId>(lo));
      Shuffle(pool, rng);
      for (size_t blk = 0; blk < k + 1; ++blk) {
        std::vector<VertexId> vs = {sep};
        for (size_t j = 0; j < r - 1; ++j) {
          vs.push_back(pool[blk * (r - 1) + j]);
        }
        h.AddEdge(Hyperedge(std::move(vs)));
      }
    }
  }
  for (VertexId v = 0; v < a_size; ++v) out.side_a.push_back(v);
  for (VertexId v = static_cast<VertexId>(a_size); v < rest; ++v) {
    out.side_b.push_back(v);
  }
  return out;
}

Hypergraph RandomUniformHypergraph(size_t n, size_t m, size_t r,
                                   uint64_t seed) {
  return RandomHypergraph(n, m, r, r, seed);
}

Hypergraph RandomHypergraph(size_t n, size_t m, size_t r_min, size_t r_max,
                            uint64_t seed) {
  GMS_CHECK(r_min >= 2 && r_min <= r_max && r_max <= n);
  Rng rng(seed);
  Hypergraph h(n);
  size_t attempts = 0;
  while (h.NumEdges() < m) {
    GMS_CHECK_MSG(++attempts < 100 * m + 10000,
                  "hypergraph too dense to sample distinct edges");
    size_t r = r_min + rng.Below(r_max - r_min + 1);
    std::vector<VertexId> vs;
    while (vs.size() < r) {
      VertexId v = static_cast<VertexId>(rng.Below(n));
      if (std::find(vs.begin(), vs.end(), v) == vs.end()) vs.push_back(v);
    }
    h.AddEdge(Hyperedge(std::move(vs)));
  }
  return h;
}

PlantedCutHypergraph PlantedHypergraphCut(size_t n, size_t r, size_t cut_size,
                                          size_t edges_per_side,
                                          uint64_t seed) {
  GMS_CHECK(n >= 2 * r + 2);
  Rng rng(seed);
  PlantedCutHypergraph out;
  out.planted_cut_size = cut_size;
  out.in_s.assign(n, false);
  size_t half = n / 2;
  for (size_t v = 0; v < half; ++v) out.in_s[v] = true;
  Hypergraph h(n);

  auto sample_within = [&](size_t lo, size_t hi, size_t r_here) {
    std::vector<VertexId> vs;
    while (vs.size() < r_here) {
      VertexId v = static_cast<VertexId>(lo + rng.Below(hi - lo));
      if (std::find(vs.begin(), vs.end(), v) == vs.end()) vs.push_back(v);
    }
    return Hyperedge(std::move(vs));
  };

  // Make each side internally well connected: a tight hyper-cycle plus
  // random hyperedges. The hyper-cycle alone gives min internal cut ~ r-1;
  // add pairwise edges along a scaffold of multiplicity so the internal min
  // cut comfortably exceeds cut_size.
  auto densify = [&](size_t lo, size_t hi) {
    size_t cnt = hi - lo;
    std::vector<VertexId> perm(cnt);
    std::iota(perm.begin(), perm.end(), static_cast<VertexId>(lo));
    size_t cycles = cut_size + 2;
    for (size_t t = 0; t < cycles; ++t) {
      Shuffle(perm, rng);
      for (size_t i = 0; i < cnt; ++i) {
        VertexId a = perm[i], b = perm[(i + 1) % cnt];
        if (a != b) h.AddEdge(Hyperedge{a, b});
      }
    }
    for (size_t t = 0; t < edges_per_side; ++t) {
      h.AddEdge(sample_within(lo, hi, std::min(r, cnt)));
    }
  };
  densify(0, half);
  densify(half, n);

  // Exactly cut_size crossing hyperedges, each with vertices on both sides.
  size_t added = 0, attempts = 0;
  while (added < cut_size) {
    GMS_CHECK(++attempts < 1000 * (cut_size + 1));
    size_t left = 1 + rng.Below(r - 1);
    size_t right = r - left;
    if (right == 0) right = 1;
    std::vector<VertexId> vs;
    while (vs.size() < left) {
      VertexId v = static_cast<VertexId>(rng.Below(half));
      if (std::find(vs.begin(), vs.end(), v) == vs.end()) vs.push_back(v);
    }
    while (vs.size() < left + right) {
      VertexId v = static_cast<VertexId>(half + rng.Below(n - half));
      if (std::find(vs.begin(), vs.end(), v) == vs.end()) vs.push_back(v);
    }
    if (h.AddEdge(Hyperedge(std::move(vs)))) ++added;
  }
  out.hypergraph = std::move(h);
  return out;
}

}  // namespace gms
