// Disjoint-set forest with union by size and path halving. Used by the
// Borůvka decode loop of the spanning-forest sketch and by offline
// component/forest computations.
#ifndef GMS_GRAPH_UNION_FIND_H_
#define GMS_GRAPH_UNION_FIND_H_

#include <cstdint>
#include <vector>

#include "graph/edge.h"

namespace gms {

class UnionFind {
 public:
  explicit UnionFind(size_t n);

  VertexId Find(VertexId x);

  /// Merge the sets of a and b; returns true if they were distinct.
  bool Union(VertexId a, VertexId b);

  bool Connected(VertexId a, VertexId b) { return Find(a) == Find(b); }

  size_t NumComponents() const { return num_components_; }
  size_t ComponentSize(VertexId x) { return size_[Find(x)]; }

  /// Representative -> dense component index in [0, NumComponents()),
  /// listed for every vertex.
  std::vector<uint32_t> ComponentIds();

 private:
  std::vector<VertexId> parent_;
  std::vector<uint32_t> size_;
  size_t num_components_;
};

}  // namespace gms

#endif  // GMS_GRAPH_UNION_FIND_H_
