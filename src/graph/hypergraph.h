// Undirected hypergraph with hyperedges of cardinality in [2, r]. Stores the
// hyperedge set plus a per-vertex incidence index. The 2-uniform case is an
// ordinary multigraph-free graph; conversions both ways are provided.
#ifndef GMS_GRAPH_HYPERGRAPH_H_
#define GMS_GRAPH_HYPERGRAPH_H_

#include <unordered_map>
#include <vector>

#include "graph/edge.h"
#include "graph/graph.h"

namespace gms {

class Hypergraph {
 public:
  Hypergraph() = default;
  explicit Hypergraph(size_t n) : incident_(n) {}
  Hypergraph(size_t n, const std::vector<Hyperedge>& edges) : incident_(n) {
    for (const auto& e : edges) AddEdge(e);
  }

  /// Lift a graph into a 2-uniform hypergraph.
  static Hypergraph FromGraph(const Graph& g);

  size_t NumVertices() const { return incident_.size(); }
  size_t NumEdges() const { return index_.size(); }

  /// Maximum hyperedge cardinality present (0 if edgeless).
  size_t Rank() const;

  /// Adds the hyperedge if absent; returns true if it was inserted.
  bool AddEdge(const Hyperedge& e);
  /// Removes the hyperedge if present; returns true if removed.
  bool RemoveEdge(const Hyperedge& e);
  bool HasEdge(const Hyperedge& e) const { return index_.contains(e); }

  /// All hyperedges, each once, in insertion-compacted order.
  const std::vector<Hyperedge>& Edges() const { return edges_; }

  /// Indices (into Edges()) of hyperedges incident to v.
  const std::vector<uint32_t>& IncidentIndices(VertexId v) const {
    return incident_[v];
  }
  size_t Degree(VertexId v) const { return incident_[v].size(); }

  void AddAll(const Hypergraph& other);

  /// Hypergraph obtained by deleting the listed vertices; a hyperedge
  /// survives (restricted) only if it loses no vertices, matching the
  /// induced-subhypergraph semantics used in Section 3 (a hyperedge of G
  /// belongs to G_i iff all its vertices were sampled).
  Hypergraph InducedExcluding(const std::vector<VertexId>& removed) const;

  /// Restrict to hyperedges entirely within `keep` (same semantics,
  /// complement interface).
  bool operator==(const Hypergraph& other) const;

  /// For 2-uniform hypergraphs: the corresponding Graph. Hyperedges of
  /// cardinality > 2 are CHECK-rejected.
  Graph ToGraph() const;

  /// Number of hyperedges crossing the cut (S, V \ S), where crossing means
  /// intersecting both sides (the paper's delta_G(S)).
  size_t CutSize(const std::vector<bool>& in_s) const;

 private:
  std::vector<Hyperedge> edges_;
  std::unordered_map<Hyperedge, uint32_t, HyperedgeHasher> index_;
  std::vector<std::vector<uint32_t>> incident_;
};

}  // namespace gms

#endif  // GMS_GRAPH_HYPERGRAPH_H_
