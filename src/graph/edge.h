// Core vertex/edge/hyperedge value types.
//
// A Hyperedge is a canonical (sorted, duplicate-free) set of at least two
// vertex ids. Ordinary graph edges are the 2-uniform special case; the whole
// sketching stack is written against Hyperedge so graphs and hypergraphs
// share one code path, exactly as in the paper (Section 4.1).
#ifndef GMS_GRAPH_EDGE_H_
#define GMS_GRAPH_EDGE_H_

#include <algorithm>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "util/check.h"
#include "util/random.h"

namespace gms {

using VertexId = uint32_t;

/// Canonical undirected 2-edge with u() < v().
struct Edge {
  VertexId a = 0;
  VertexId b = 0;

  Edge() = default;
  Edge(VertexId x, VertexId y) : a(std::min(x, y)), b(std::max(x, y)) {
    GMS_DCHECK(x != y);
  }

  VertexId u() const { return a; }
  VertexId v() const { return b; }

  friend bool operator==(const Edge&, const Edge&) = default;
  friend auto operator<=>(const Edge&, const Edge&) = default;
};

/// Canonical hyperedge: strictly increasing vertex ids, cardinality >= 2.
class Hyperedge {
 public:
  Hyperedge() = default;
  explicit Hyperedge(std::vector<VertexId> vertices)
      : vertices_(std::move(vertices)) {
    Canonicalize();
  }
  Hyperedge(std::initializer_list<VertexId> vs)
      : vertices_(vs) {
    Canonicalize();
  }
  explicit Hyperedge(const Edge& e) : vertices_{e.u(), e.v()} {}

  size_t size() const { return vertices_.size(); }
  VertexId operator[](size_t i) const { return vertices_[i]; }
  const std::vector<VertexId>& vertices() const { return vertices_; }
  auto begin() const { return vertices_.begin(); }
  auto end() const { return vertices_.end(); }

  /// Smallest vertex id (the paper's `min e`).
  VertexId MinVertex() const {
    GMS_DCHECK(!vertices_.empty());
    return vertices_.front();
  }

  bool Contains(VertexId v) const {
    return std::binary_search(vertices_.begin(), vertices_.end(), v);
  }

  /// True iff this is an ordinary graph edge.
  bool IsGraphEdge() const { return vertices_.size() == 2; }
  Edge AsEdge() const {
    GMS_DCHECK(IsGraphEdge());
    return Edge(vertices_[0], vertices_[1]);
  }

  std::string ToString() const;

  friend bool operator==(const Hyperedge&, const Hyperedge&) = default;
  friend auto operator<=>(const Hyperedge&, const Hyperedge&) = default;

 private:
  void Canonicalize() {
    std::sort(vertices_.begin(), vertices_.end());
    vertices_.erase(std::unique(vertices_.begin(), vertices_.end()),
                    vertices_.end());
    GMS_CHECK_MSG(vertices_.size() >= 2, "hyperedge needs >= 2 vertices");
  }

  std::vector<VertexId> vertices_;
};

struct EdgeHasher {
  size_t operator()(const Edge& e) const {
    return static_cast<size_t>(
        Mix64((static_cast<uint64_t>(e.u()) << 32) | e.v()));
  }
};

struct HyperedgeHasher {
  size_t operator()(const Hyperedge& e) const {
    uint64_t h = 0x9e3779b97f4a7c15ULL;
    for (VertexId v : e) h = Mix64(h ^ v);
    return static_cast<size_t>(h);
  }
};

}  // namespace gms

#endif  // GMS_GRAPH_EDGE_H_
