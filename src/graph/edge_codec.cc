#include "graph/edge_codec.h"

#include <algorithm>
#include <limits>

namespace gms {

namespace {
constexpr u128 kU128Max = ~static_cast<u128>(0);
}  // namespace

u128 Binomial(uint64_t m, unsigned j) {
  if (j > m) return 0;
  if (j == 0) return 1;
  if (j > m - j) j = static_cast<unsigned>(m - j);
  u128 result = 1;
  for (unsigned i = 1; i <= j; ++i) {
    uint64_t factor = m - j + i;
    // result * factor / i is exact (prefix products of binomials are
    // integers); saturate if the multiply would overflow.
    if (result > kU128Max / factor) return kU128Max;
    result = result * factor / i;
  }
  return result;
}

Result<u128> EdgeCodec::DomainSizeFor(size_t n, size_t max_rank) {
  if (n < 2 || max_rank < 2 || max_rank > n) {
    return Status::InvalidArgument("edge codec: bad (n, max_rank)");
  }
  u128 total = 0;
  for (size_t s = 2; s <= max_rank; ++s) {
    u128 block = Binomial(n, static_cast<unsigned>(s));
    if (block == kU128Max || total > kU128Max - block ||
        ((total + block) >> 126) != 0) {
      // The early exit also bounds the loop: partial sums are monotone, so
      // at most ~126 size classes are ever summed before overflow triggers.
      return Status::InvalidArgument(
          "edge codec: coordinate domain exceeds 126 bits");
    }
    total += block;
  }
  return total;
}

EdgeCodec::EdgeCodec(size_t n, size_t max_rank)
    // Ranks above n are unrealizable (a hyperedge holds at most n distinct
    // vertices; C(n, s) = 0 for s > n), so clamping changes no coordinate.
    // It keeps the shape inside the stricter wire-side validation, which
    // rejects max_rank > n: without the clamp, a sketch constructed with
    // such a shape would serialize a frame its own Deserialize refuses.
    : n_(n), max_rank_(std::min(max_rank, n)) {
  GMS_CHECK_MSG(max_rank >= 2, "max_rank must be >= 2");
  GMS_CHECK_MSG(n >= 2, "need at least 2 vertices");
  max_rank = max_rank_;
  offset_.assign(max_rank + 1, 0);
  u128 total = 0;
  for (size_t s = 2; s <= max_rank; ++s) {
    offset_[s] = total;
    u128 block = Binomial(n, static_cast<unsigned>(s));
    GMS_CHECK_MSG(block != kU128Max && total <= kU128Max - block,
                  "coordinate domain overflows u128");
    total += block;
  }
  GMS_CHECK_MSG((total >> 126) == 0, "coordinate domain exceeds 126 bits");
  domain_size_ = total;
}

u128 EdgeCodec::Encode(const Hyperedge& e) const {
  size_t s = e.size();
  GMS_CHECK_MSG(s >= 2 && s <= max_rank_, "hyperedge cardinality out of range");
  GMS_CHECK_MSG(e.vertices().back() < n_, "vertex id out of range");
  // Colexicographic rank: sum_i C(v_i, i+1) over sorted vertices.
  u128 rank = 0;
  for (size_t i = 0; i < s; ++i) {
    rank += Binomial(e[i], static_cast<unsigned>(i + 1));
  }
  return offset_[s] + rank;
}

Result<Hyperedge> EdgeCodec::Decode(u128 index) const {
  if (index >= domain_size_) {
    return Status::InvalidArgument("coordinate index out of range");
  }
  // Locate the size block.
  size_t s = max_rank_;
  for (size_t cand = 2; cand <= max_rank_; ++cand) {
    u128 end = (cand == max_rank_) ? domain_size_ : offset_[cand + 1];
    if (index < end) {
      s = cand;
      break;
    }
  }
  u128 rank = index - offset_[s];
  std::vector<VertexId> vs(s);
  // Greedy colex unranking from the largest position down.
  uint64_t upper = n_;  // exclusive bound for the next vertex
  for (size_t pos = s; pos >= 1; --pos) {
    // Largest m in [pos-1, upper) with C(m, pos) <= rank.
    uint64_t lo = static_cast<uint64_t>(pos) - 1, hi = upper - 1, best = lo;
    while (lo <= hi) {
      uint64_t mid = lo + (hi - lo) / 2;
      if (Binomial(mid, static_cast<unsigned>(pos)) <= rank) {
        best = mid;
        lo = mid + 1;
      } else {
        if (mid == 0) break;
        hi = mid - 1;
      }
    }
    vs[pos - 1] = static_cast<VertexId>(best);
    rank -= Binomial(best, static_cast<unsigned>(pos));
    upper = best;
    if (pos == 1) break;
  }
  if (rank != 0) {
    return Status::Internal("combinadic unranking left a residue");
  }
  return Hyperedge(std::move(vs));
}

}  // namespace gms
