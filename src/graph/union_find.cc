#include "graph/union_find.h"

#include <numeric>

#include "util/check.h"

namespace gms {

UnionFind::UnionFind(size_t n)
    : parent_(n), size_(n, 1), num_components_(n) {
  std::iota(parent_.begin(), parent_.end(), 0);
}

VertexId UnionFind::Find(VertexId x) {
  GMS_DCHECK(x < parent_.size());
  while (parent_[x] != x) {
    parent_[x] = parent_[parent_[x]];  // path halving
    x = parent_[x];
  }
  return x;
}

bool UnionFind::Union(VertexId a, VertexId b) {
  VertexId ra = Find(a), rb = Find(b);
  if (ra == rb) return false;
  if (size_[ra] < size_[rb]) std::swap(ra, rb);
  parent_[rb] = ra;
  size_[ra] += size_[rb];
  --num_components_;
  return true;
}

std::vector<uint32_t> UnionFind::ComponentIds() {
  std::vector<uint32_t> ids(parent_.size());
  std::vector<int64_t> dense(parent_.size(), -1);
  uint32_t next = 0;
  for (VertexId v = 0; v < parent_.size(); ++v) {
    VertexId r = Find(v);
    if (dense[r] < 0) dense[r] = next++;
    ids[v] = static_cast<uint32_t>(dense[r]);
  }
  return ids;
}

}  // namespace gms
