// Simple undirected graph with adjacency sets: the offline representation
// used by exact algorithms, decoded sketches, and verifiers.
#ifndef GMS_GRAPH_GRAPH_H_
#define GMS_GRAPH_GRAPH_H_

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "graph/edge.h"
#include "util/check.h"

namespace gms {

/// Undirected simple graph on vertices {0, ..., n-1}.
class Graph {
 public:
  Graph() = default;
  explicit Graph(size_t n) : adj_(n) {}
  Graph(size_t n, const std::vector<Edge>& edges) : adj_(n) {
    for (const Edge& e : edges) AddEdge(e);
  }

  size_t NumVertices() const { return adj_.size(); }
  size_t NumEdges() const { return num_edges_; }

  /// Adds the edge if absent; returns true if it was inserted.
  bool AddEdge(const Edge& e);
  bool AddEdge(VertexId u, VertexId v) { return AddEdge(Edge(u, v)); }

  /// Removes the edge if present; returns true if it was removed.
  bool RemoveEdge(const Edge& e);

  bool HasEdge(const Edge& e) const {
    GMS_DCHECK(e.v() < NumVertices());
    return adj_[e.u()].contains(e.v());
  }
  bool HasEdge(VertexId u, VertexId v) const { return HasEdge(Edge(u, v)); }

  size_t Degree(VertexId v) const { return adj_[v].size(); }
  size_t MinDegree() const;

  const std::unordered_set<VertexId>& Neighbors(VertexId v) const {
    return adj_[v];
  }

  /// All edges, each once, in unspecified order.
  std::vector<Edge> Edges() const;

  /// Union of edge sets (vertex counts must match).
  void AddAll(const Graph& other);

  /// Induced subgraph on vertices where keep[v] is true. Vertex ids are
  /// preserved (the result has the same vertex count; dropped vertices are
  /// isolated). This matches how the paper treats G \ S.
  Graph InducedExcluding(const std::vector<VertexId>& removed) const;

  friend bool operator==(const Graph& x, const Graph& y) {
    return x.adj_ == y.adj_;
  }

 private:
  std::vector<std::unordered_set<VertexId>> adj_;
  size_t num_edges_ = 0;
};

}  // namespace gms

#endif  // GMS_GRAPH_GRAPH_H_
