#include "workload/file_corpus.h"

#include <string>
#include <utility>

#include "testkit/stream_spec.h"
#include "workload/spec_convert.h"

namespace gms {
namespace workload {

std::vector<testkit::CorpusEntry> StreamFileSeedCorpus() {
  using testkit::Family;
  std::vector<testkit::CorpusEntry> entries;
  auto add = [&entries](std::string name, std::vector<uint8_t> bytes) {
    entries.push_back({std::move(name), std::move(bytes)});
  };

  // One small instance per structurally distinct family: enough header and
  // record diversity to seed the mutator without bloating the checkout.
  const testkit::StreamSpec specs[] = {
      {.family = Family::kGnm, .n = 12, .m = 18},
      {.family = Family::kRandomUniform, .n = 10, .m = 12, .rank = 4},
      {.family = Family::kRmat, .n = 16, .m = 24},
      {.family = Family::kRoadLike, .n = 16, .m = 4},
      {.family = Family::kTemporalChurn, .n = 12, .m = 14, .decoys = 10},
  };
  for (const testkit::StreamSpec& spec : specs) {
    add(std::string(testkit::FamilyName(spec.family)) + ".gmsb",
        EncodeSpecStream(spec));
  }

  // Hostile variants of the first (plain graph) image.
  const std::vector<uint8_t> base = EncodeSpecStream(specs[0]);
  {
    std::vector<uint8_t> truncated(base.begin(),
                                   base.begin() + base.size() / 2);
    add("gnm_truncated.gmsb", std::move(truncated));
  }
  {
    std::vector<uint8_t> bad_magic = base;
    bad_magic[0] ^= 0xff;
    add("gnm_bad_magic.gmsb", std::move(bad_magic));
  }
  {
    // Flip one checksum byte: the record region stays valid but the header
    // no longer vouches for it.
    std::vector<uint8_t> bad_sum = base;
    bad_sum[32] ^= 0x01;
    add("gnm_bad_checksum.gmsb", std::move(bad_sum));
  }
  {
    // Corrupt one record id (breaks strict ordering or the id domain) and
    // leave the checksum stale too.
    std::vector<uint8_t> bad_record = base;
    bad_record[kBinaryStreamHeaderBytes + 3] ^= 0x80;
    add("gnm_bad_record.gmsb", std::move(bad_record));
  }
  return entries;
}

}  // namespace workload
}  // namespace gms
