// Seed corpus for the binary stream-file fuzzer (fuzz/fuzz_stream_file.cc):
// valid GMSB images of representative generator families, plus deliberately
// broken variants (truncated, bad magic, checksum flip, corrupt record) so
// the unmutated smoke replay already exercises every rejection path.
// Lives in workload/ (not testkit/corpus.*) because encoding needs the
// format layer, which itself layers ABOVE testkit.
#ifndef GMS_WORKLOAD_FILE_CORPUS_H_
#define GMS_WORKLOAD_FILE_CORPUS_H_

#include <vector>

#include "testkit/corpus.h"

namespace gms {
namespace workload {

/// Deterministic GMSB seed entries (valid + hostile). Written to
/// fuzz/corpus/stream_file by gms_gen_corpus.
std::vector<testkit::CorpusEntry> StreamFileSeedCorpus();

}  // namespace workload
}  // namespace gms

#endif  // GMS_WORKLOAD_FILE_CORPUS_H_
