// Disk-resident binary dynamic streams (DESIGN.md §14).
//
// The text stream format (stream/io.h) is for eyeballing tiny cases; real
// workloads are replayed from a fixed-width binary file in the
// GraphStreamingCC BinaryFileStream idiom: a self-describing header, then
// one fixed-size record per update so record j lives at a computable
// offset and any byte range of the file can be decoded independently.
// That independence is what lets the mmap'd reader plug straight into the
// gutter driver's reader threads (DriveBinaryFileStream below): reader r
// decodes its ShardOf slice of records in place, no parse ordering, no
// shared cursor.
//
// Layout (all integers little-endian):
//
//   header, 40 bytes:
//     u32  magic         "GMSB" (0x42534D47)
//     u16  version       1
//     u16  reserved      must be 0
//     u64  n             vertex-id domain
//     u32  max_rank      max hyperedge cardinality, in [2, 64]
//     u32  record_bytes  must equal 1 + 4 * max_rank
//     u64  num_updates   record count
//     u64  checksum      FNV-1a over the whole record region
//   then num_updates records of record_bytes each:
//     u8   op            bit 0: delta (1 = insert, 0 = delete);
//                        bits 1..7: cardinality, in [2, max_rank]
//     u32  id[max_rank]  vertex ids, strictly increasing for the first
//                        `cardinality` slots (the canonical Hyperedge
//                        order), all < n; unused slots must be 0
//
// Every structural rule above is VALIDATED on read and every parse entry
// point is a total function returning Status -- truncation, bit flips,
// hostile headers, and garbage records all surface as InvalidArgument
// (tests/workload_test.cc runs the serde_test-style corruption sweeps;
// fuzz/fuzz_stream_file.cc hammers the same parsers).
#ifndef GMS_WORKLOAD_BINARY_STREAM_H_
#define GMS_WORKLOAD_BINARY_STREAM_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "stream/stream.h"
#include "stream/stream_driver.h"
#include "util/status.h"

namespace gms {
namespace workload {

inline constexpr uint32_t kBinaryStreamMagic = 0x42534D47u;  // "GMSB"
inline constexpr uint16_t kBinaryStreamVersion = 1;
inline constexpr size_t kBinaryStreamHeaderBytes = 40;
inline constexpr size_t kBinaryStreamMaxRank = 64;

/// The decoded fixed fields of a stream file header.
struct BinaryStreamHeader {
  uint64_t n = 0;
  uint32_t max_rank = 2;
  uint32_t record_bytes = 9;
  uint64_t num_updates = 0;
  uint64_t checksum = 0;
};

/// FNV-1a 64 over `bytes` (the record-region checksum).
uint64_t BinaryStreamChecksum(std::span<const uint8_t> bytes);

/// Parse and validate the 40-byte header against the full file image:
/// magic/version/reserved, rank and record-width consistency, the exact
/// file size implied by num_updates, and (when verify_checksum) the
/// record-region checksum. Total function; never reads past bytes.size().
Result<BinaryStreamHeader> ParseBinaryStreamHeader(
    std::span<const uint8_t> bytes, bool verify_checksum = true);

/// Decode one record (exactly header.record_bytes bytes) into *out.
/// Validates cardinality, strictly-increasing ids < n, and zero padding.
Status DecodeBinaryStreamRecord(std::span<const uint8_t> record,
                                const BinaryStreamHeader& header,
                                StreamUpdate* out);

/// Encode a full stream image in memory (header + records + checksum).
/// CHECK-fails on shape violations (max_rank out of range, an edge wider
/// than max_rank or with an id >= n): encoding is for KNOWN-good streams;
/// the hostile direction is the decoder's job.
std::vector<uint8_t> EncodeBinaryStream(size_t n, size_t max_rank,
                                        std::span<const StreamUpdate> updates);

/// Decode a full stream image (the in-memory mirror of BinaryFileStream,
/// shared with the fuzz harness). Total function.
Result<DynamicStream> DecodeBinaryStream(std::span<const uint8_t> bytes,
                                         BinaryStreamHeader* header = nullptr);

/// One-shot writer: EncodeBinaryStream to `path`.
Status WriteBinaryStreamFile(const std::string& path, size_t n,
                             size_t max_rank,
                             std::span<const StreamUpdate> updates);
Status WriteBinaryStreamFile(const std::string& path, size_t n,
                             size_t max_rank, const DynamicStream& stream);

/// An open, validated, memory-mapped stream file. Open() maps the file
/// (falling back to a plain read into memory when mmap is unavailable)
/// and fully validates header + checksum up front, so ReadRecord can stay
/// cheap on the hot path. Immutable and thread-safe after Open: the
/// driver's reader threads decode disjoint record ranges concurrently.
class BinaryFileStream {
 public:
  static Result<BinaryFileStream> Open(const std::string& path,
                                       bool verify_checksum = true);

  BinaryFileStream(BinaryFileStream&& other) noexcept { Steal(other); }
  BinaryFileStream& operator=(BinaryFileStream&& other) noexcept {
    if (this != &other) {
      Unmap();
      Steal(other);
    }
    return *this;
  }
  BinaryFileStream(const BinaryFileStream&) = delete;
  BinaryFileStream& operator=(const BinaryFileStream&) = delete;
  ~BinaryFileStream() { Unmap(); }

  const BinaryStreamHeader& header() const { return header_; }
  size_t n() const { return static_cast<size_t>(header_.n); }
  size_t max_rank() const { return header_.max_rank; }
  uint64_t num_updates() const { return header_.num_updates; }

  /// The raw record region (num_updates * record_bytes bytes).
  std::span<const uint8_t> records() const {
    return std::span<const uint8_t>(data_, size_).subspan(
        kBinaryStreamHeaderBytes);
  }

  /// Decode record j into *out. The record region was validated at Open,
  /// so this cannot fail for j < num_updates; j is range-CHECKed.
  void ReadRecord(uint64_t j, StreamUpdate* out) const;

  /// Materialize the whole file as a DynamicStream.
  DynamicStream ReadAll() const;

 private:
  BinaryFileStream() = default;
  void Steal(BinaryFileStream& other);
  void Unmap();

  BinaryStreamHeader header_;
  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
  bool mapped_ = false;  // mmap'd (else heap-owned fallback)
};

/// Feed an open stream file straight into the gutter driver: the reader
/// threads decode their record shards from the mapping via ReadRecord --
/// the disk-to-sketch path never materializes the stream. Bit-identical
/// to serial ingestion of ReadAll() (same DriveStreamRecords pipeline).
template <typename Sketch>
DriverStats DriveBinaryFileStream(Sketch* sketch, const BinaryFileStream& file,
                                  const GutterDriverParams& params) {
  return DriveStreamRecords(
      sketch, file.num_updates(),
      [&file](uint64_t j, StreamUpdate* scratch) -> const StreamUpdate& {
        file.ReadRecord(j, scratch);
        return *scratch;
      },
      params);
}

}  // namespace workload
}  // namespace gms

#endif  // GMS_WORKLOAD_BINARY_STREAM_H_
