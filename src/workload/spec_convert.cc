#include "workload/spec_convert.h"

namespace gms {
namespace workload {

std::vector<uint8_t> EncodeSpecStream(const testkit::StreamSpec& spec,
                                      testkit::BuiltStream* built) {
  testkit::BuiltStream b = spec.Build();
  std::vector<uint8_t> bytes = EncodeBinaryStream(
      spec.n, b.max_rank,
      std::span<const StreamUpdate>(b.stream.updates()));
  if (built != nullptr) *built = std::move(b);
  return bytes;
}

Status WriteSpecStreamFile(const testkit::StreamSpec& spec,
                           const std::string& path,
                           testkit::BuiltStream* built) {
  testkit::BuiltStream b = spec.Build();
  Status s = WriteBinaryStreamFile(path, spec.n, b.max_rank, b.stream);
  if (built != nullptr) *built = std::move(b);
  return s;
}

}  // namespace workload
}  // namespace gms
