// StreamSpec -> binary stream file conversion: materialize any testkit
// generator family (including the real-graph-shaped ones this layer added:
// rmat, road_like, temporal_churn) into the disk format, so benches and
// examples replay identical bytes instead of regenerating per run. The
// one-line spec string stays the provenance record: encode it next to the
// file and any corpus entry is reproducible from the line alone.
#ifndef GMS_WORKLOAD_SPEC_CONVERT_H_
#define GMS_WORKLOAD_SPEC_CONVERT_H_

#include <string>
#include <vector>

#include "testkit/stream_spec.h"
#include "workload/binary_stream.h"

namespace gms {
namespace workload {

/// Build the spec and encode its stream as a full binary file image.
/// When `built` is non-null it receives the materialized stream and final
/// graph (for callers that also need the ground truth).
std::vector<uint8_t> EncodeSpecStream(const testkit::StreamSpec& spec,
                                      testkit::BuiltStream* built = nullptr);

/// Build the spec and write its stream to `path`.
Status WriteSpecStreamFile(const testkit::StreamSpec& spec,
                           const std::string& path,
                           testkit::BuiltStream* built = nullptr);

}  // namespace workload
}  // namespace gms

#endif  // GMS_WORKLOAD_SPEC_CONVERT_H_
