#include "workload/binary_stream.h"

#include <cstdio>
#include <cstring>
#include <limits>

#include "util/check.h"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#define GMS_WORKLOAD_HAS_MMAP 1
#endif

namespace gms {
namespace workload {

namespace {

uint32_t LoadU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
         static_cast<uint32_t>(p[2]) << 16 | static_cast<uint32_t>(p[3]) << 24;
}

uint64_t LoadU64(const uint8_t* p) {
  return static_cast<uint64_t>(LoadU32(p)) |
         static_cast<uint64_t>(LoadU32(p + 4)) << 32;
}

void StoreU16(uint16_t v, std::vector<uint8_t>* out) {
  out->push_back(static_cast<uint8_t>(v));
  out->push_back(static_cast<uint8_t>(v >> 8));
}

void StoreU32(uint32_t v, std::vector<uint8_t>* out) {
  StoreU16(static_cast<uint16_t>(v), out);
  StoreU16(static_cast<uint16_t>(v >> 16), out);
}

void StoreU64(uint64_t v, std::vector<uint8_t>* out) {
  StoreU32(static_cast<uint32_t>(v), out);
  StoreU32(static_cast<uint32_t>(v >> 32), out);
}

Status Invalid(const char* what) {
  return Status::InvalidArgument(std::string("binary stream: ") + what);
}

}  // namespace

uint64_t BinaryStreamChecksum(std::span<const uint8_t> bytes) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (uint8_t b : bytes) {
    h ^= b;
    h *= 0x100000001b3ULL;
  }
  return h;
}

Result<BinaryStreamHeader> ParseBinaryStreamHeader(
    std::span<const uint8_t> bytes, bool verify_checksum) {
  if (bytes.size() < kBinaryStreamHeaderBytes) {
    return Invalid("truncated header");
  }
  const uint8_t* p = bytes.data();
  if (LoadU32(p) != kBinaryStreamMagic) return Invalid("bad magic");
  const uint16_t version =
      static_cast<uint16_t>(p[4] | static_cast<uint16_t>(p[5]) << 8);
  if (version != kBinaryStreamVersion) return Invalid("unknown version");
  const uint16_t reserved =
      static_cast<uint16_t>(p[6] | static_cast<uint16_t>(p[7]) << 8);
  if (reserved != 0) return Invalid("nonzero reserved field");
  BinaryStreamHeader h;
  h.n = LoadU64(p + 8);
  h.max_rank = LoadU32(p + 16);
  h.record_bytes = LoadU32(p + 20);
  h.num_updates = LoadU64(p + 24);
  h.checksum = LoadU64(p + 32);
  if (h.max_rank < 2 || h.max_rank > kBinaryStreamMaxRank) {
    return Invalid("max_rank outside [2, 64]");
  }
  if (h.n < 2 || h.n > std::numeric_limits<VertexId>::max()) {
    return Invalid("vertex domain outside [2, 2^32)");
  }
  if (h.record_bytes != 1 + 4 * h.max_rank) {
    return Invalid("record_bytes inconsistent with max_rank");
  }
  // Overflow-safe size check: bound num_updates by the bytes actually
  // present before multiplying.
  const uint64_t body = bytes.size() - kBinaryStreamHeaderBytes;
  if (h.num_updates > body / h.record_bytes ||
      h.num_updates * h.record_bytes != body) {
    return Invalid("file size does not match num_updates");
  }
  if (verify_checksum &&
      BinaryStreamChecksum(bytes.subspan(kBinaryStreamHeaderBytes)) !=
          h.checksum) {
    return Invalid("record checksum mismatch");
  }
  return h;
}

Status DecodeBinaryStreamRecord(std::span<const uint8_t> record,
                                const BinaryStreamHeader& header,
                                StreamUpdate* out) {
  if (record.size() != header.record_bytes) {
    return Invalid("record truncated");
  }
  const uint8_t op = record[0];
  const size_t rank = op >> 1;
  if (rank < 2 || rank > header.max_rank) {
    return Invalid("record cardinality outside [2, max_rank]");
  }
  std::vector<VertexId> vs(rank);
  for (size_t i = 0; i < rank; ++i) {
    const uint32_t v = LoadU32(record.data() + 1 + 4 * i);
    if (v >= header.n) return Invalid("record vertex id >= n");
    if (i > 0 && v <= vs[i - 1]) {
      return Invalid("record ids not strictly increasing");
    }
    vs[i] = v;
  }
  for (size_t i = rank; i < header.max_rank; ++i) {
    if (LoadU32(record.data() + 1 + 4 * i) != 0) {
      return Invalid("nonzero padding slot");
    }
  }
  out->edge = Hyperedge(std::move(vs));
  out->delta = (op & 1) ? +1 : -1;
  return Status::OK();
}

std::vector<uint8_t> EncodeBinaryStream(
    size_t n, size_t max_rank, std::span<const StreamUpdate> updates) {
  GMS_CHECK_MSG(n >= 2 && n <= std::numeric_limits<VertexId>::max(),
                "EncodeBinaryStream: n outside [2, 2^32)");
  GMS_CHECK_MSG(max_rank >= 2 && max_rank <= kBinaryStreamMaxRank,
                "EncodeBinaryStream: max_rank outside [2, 64]");
  const uint32_t record_bytes = static_cast<uint32_t>(1 + 4 * max_rank);
  std::vector<uint8_t> out;
  out.reserve(kBinaryStreamHeaderBytes + updates.size() * record_bytes);
  StoreU32(kBinaryStreamMagic, &out);
  StoreU16(kBinaryStreamVersion, &out);
  StoreU16(0, &out);
  StoreU64(n, &out);
  StoreU32(static_cast<uint32_t>(max_rank), &out);
  StoreU32(record_bytes, &out);
  StoreU64(updates.size(), &out);
  StoreU64(0, &out);  // checksum, patched below
  for (const StreamUpdate& u : updates) {
    const size_t rank = u.edge.size();
    GMS_CHECK_MSG(rank >= 2 && rank <= max_rank,
                  "EncodeBinaryStream: edge cardinality exceeds max_rank");
    GMS_CHECK_MSG(u.delta == 1 || u.delta == -1,
                  "EncodeBinaryStream: delta must be +1 or -1");
    out.push_back(static_cast<uint8_t>((rank << 1) | (u.delta > 0 ? 1 : 0)));
    for (size_t i = 0; i < rank; ++i) {
      GMS_CHECK_MSG(u.edge[i] < n, "EncodeBinaryStream: vertex id >= n");
      StoreU32(u.edge[i], &out);
    }
    for (size_t i = rank; i < max_rank; ++i) StoreU32(0, &out);
  }
  const uint64_t checksum = BinaryStreamChecksum(
      std::span<const uint8_t>(out).subspan(kBinaryStreamHeaderBytes));
  for (size_t i = 0; i < 8; ++i) {
    out[32 + i] = static_cast<uint8_t>(checksum >> (8 * i));
  }
  return out;
}

Result<DynamicStream> DecodeBinaryStream(std::span<const uint8_t> bytes,
                                         BinaryStreamHeader* header) {
  auto h = ParseBinaryStreamHeader(bytes);
  if (!h.ok()) return h.status();
  std::vector<StreamUpdate> updates;
  updates.reserve(h->num_updates);
  const std::span<const uint8_t> body =
      bytes.subspan(kBinaryStreamHeaderBytes);
  for (uint64_t j = 0; j < h->num_updates; ++j) {
    StreamUpdate u;
    if (Status s = DecodeBinaryStreamRecord(
            body.subspan(j * h->record_bytes, h->record_bytes), *h, &u);
        !s.ok()) {
      return s;
    }
    updates.push_back(std::move(u));
  }
  if (header != nullptr) *header = *h;
  return DynamicStream(std::move(updates));
}

Status WriteBinaryStreamFile(const std::string& path, size_t n,
                             size_t max_rank,
                             std::span<const StreamUpdate> updates) {
  const std::vector<uint8_t> bytes = EncodeBinaryStream(n, max_rank, updates);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::Internal("binary stream: cannot open '" + path +
                            "' for writing");
  }
  const size_t wrote = std::fwrite(bytes.data(), 1, bytes.size(), f);
  const bool closed = std::fclose(f) == 0;
  if (wrote != bytes.size() || !closed) {
    return Status::Internal("binary stream: short write to '" + path + "'");
  }
  return Status::OK();
}

Status WriteBinaryStreamFile(const std::string& path, size_t n,
                             size_t max_rank, const DynamicStream& stream) {
  return WriteBinaryStreamFile(
      path, n, max_rank, std::span<const StreamUpdate>(stream.updates()));
}

Result<BinaryFileStream> BinaryFileStream::Open(const std::string& path,
                                                bool verify_checksum) {
  BinaryFileStream out;
#ifdef GMS_WORKLOAD_HAS_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd >= 0) {
    struct stat st;
    if (::fstat(fd, &st) == 0 && st.st_size >= 0) {
      const size_t size = static_cast<size_t>(st.st_size);
      if (size == 0) {
        ::close(fd);
        return Status::InvalidArgument("binary stream: empty file '" + path +
                                       "'");
      }
      void* map = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
      ::close(fd);
      if (map != MAP_FAILED) {
        out.data_ = static_cast<const uint8_t*>(map);
        out.size_ = size;
        out.mapped_ = true;
      }
    } else {
      ::close(fd);
    }
  }
#endif
  if (out.data_ == nullptr) {
    // Portable fallback (and the path mmap-less platforms always take):
    // read the file into heap memory. Same validation, same API.
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) {
      return Status::InvalidArgument("binary stream: cannot open '" + path +
                                     "'");
    }
    std::vector<uint8_t> buf;
    uint8_t chunk[1 << 16];
    size_t got;
    while ((got = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
      buf.insert(buf.end(), chunk, chunk + got);
    }
    std::fclose(f);
    uint8_t* owned = new uint8_t[buf.size()];
    std::memcpy(owned, buf.data(), buf.size());
    out.data_ = owned;
    out.size_ = buf.size();
    out.mapped_ = false;
  }
  auto header = ParseBinaryStreamHeader(
      std::span<const uint8_t>(out.data_, out.size_), verify_checksum);
  if (!header.ok()) return header.status();
  // Validate every record once up front so ReadRecord can decode without
  // a Status on the driver's hot path.
  const std::span<const uint8_t> body =
      std::span<const uint8_t>(out.data_, out.size_)
          .subspan(kBinaryStreamHeaderBytes);
  StreamUpdate scratch;
  for (uint64_t j = 0; j < header->num_updates; ++j) {
    if (Status s = DecodeBinaryStreamRecord(
            body.subspan(j * header->record_bytes, header->record_bytes),
            *header, &scratch);
        !s.ok()) {
      return s;
    }
  }
  out.header_ = *header;
  return out;
}

void BinaryFileStream::ReadRecord(uint64_t j, StreamUpdate* out) const {
  GMS_CHECK_MSG(j < header_.num_updates,
                "BinaryFileStream::ReadRecord: index out of range");
  const std::span<const uint8_t> record =
      records().subspan(j * header_.record_bytes, header_.record_bytes);
  // The whole record region was validated at Open; decode cannot fail.
  const Status s = DecodeBinaryStreamRecord(record, header_, out);
  GMS_CHECK_MSG(s.ok(), "BinaryFileStream: validated record failed to decode");
}

DynamicStream BinaryFileStream::ReadAll() const {
  std::vector<StreamUpdate> updates;
  updates.reserve(header_.num_updates);
  for (uint64_t j = 0; j < header_.num_updates; ++j) {
    StreamUpdate u;
    ReadRecord(j, &u);
    updates.push_back(std::move(u));
  }
  return DynamicStream(std::move(updates));
}

void BinaryFileStream::Steal(BinaryFileStream& other) {
  header_ = other.header_;
  data_ = other.data_;
  size_ = other.size_;
  mapped_ = other.mapped_;
  other.data_ = nullptr;
  other.size_ = 0;
  other.mapped_ = false;
}

void BinaryFileStream::Unmap() {
  if (data_ == nullptr) return;
#ifdef GMS_WORKLOAD_HAS_MMAP
  if (mapped_) {
    ::munmap(const_cast<uint8_t*>(data_), size_);
    data_ = nullptr;
    size_ = 0;
    return;
  }
#endif
  delete[] data_;
  data_ = nullptr;
  size_ = 0;
}

}  // namespace workload
}  // namespace gms
