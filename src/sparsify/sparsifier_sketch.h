// Hypergraph sparsification in dynamic streams (Section 5, Theorems 19/20).
//
// Streaming state: nested half-samples G = G_0 ⊇ G_1 ⊇ ... ⊇ G_l (edge e
// belongs to G_i iff its sampling hash has >= i trailing zeros, so
// insertions and deletions route consistently), with one light-edge
// recovery sketch per level. Post-processing (the paper's algorithm):
//   F_i = light_k(H_i),  H_i = G_i \ (F_0 u ... u F_{i-1}),
// realized by linearly subtracting the already-extracted F_j (restricted to
// the edges that level i actually ingested) before recovering. The output
// sum_i 2^i F_i is a (1+eps)^l-sparsifier (Theorem 19); re-parameterizing
// eps <- eps/(2l) gives (1+eps) (Theorem 20) at the cost of a larger k.
#ifndef GMS_SPARSIFY_SPARSIFIER_SKETCH_H_
#define GMS_SPARSIFY_SPARSIFIER_SKETCH_H_

#include <cstdint>
#include <span>
#include <vector>

#include "exact/cut_eval.h"
#include "reconstruct/light_recovery.h"
#include "util/hash.h"

namespace gms {

struct SparsifierParams {
  double epsilon = 1.0;
  /// Sampling levels l; 0 means the paper's 3*ceil(log2 n). In experiments
  /// ceil(log2 m) + 2 levels suffice (G_l must be empty whp).
  size_t levels = 0;
  /// Peeling threshold k; 0 means ceil(k_constant * eps^-2 * (ln n + r)).
  size_t k = 0;
  /// The O(.) constant in Lemma 18's k = O(eps^-2 (log n + r)).
  double k_constant = 0.5;
  /// Apply the Theorem 20 re-parameterization eps <- eps/(2*levels) when
  /// resolving k (costly; off by default so benches can sweep both).
  bool reparameterize = false;
  /// Worker threads + ingestion mode sharding the level rows during batched
  /// Process (see util/parallel.h; outputs are bit-identical for every
  /// setting).
  EngineParams engine;
  ForestSketchParams forest;

  size_t ResolveLevels(size_t n) const;
  size_t ResolveK(size_t n, size_t max_rank, size_t levels) const;

  class Builder;
};

/// Fluent construction: SparsifierParams::Builder().Epsilon(0.5).Levels(8)
///     .Engine(...).Build(). Build() validates the sparsifier knobs here
/// and funnels the embedded engine/forest params through the shared
/// ValidateEngineParams / ForestSketchParams::Builder validation.
class SparsifierParams::Builder {
 public:
  Builder() = default;
  /// Copy-with: seed the builder from existing params, override a few
  /// knobs, Build(). (Re-)validates everything, including untouched fields.
  explicit Builder(const SparsifierParams& from) : p_(from) {}

  Builder& Epsilon(double epsilon) {
    p_.epsilon = epsilon;
    return *this;
  }
  Builder& Levels(size_t levels) {
    p_.levels = levels;
    return *this;
  }
  Builder& K(size_t k) {
    p_.k = k;
    return *this;
  }
  Builder& KConstant(double k_constant) {
    p_.k_constant = k_constant;
    return *this;
  }
  Builder& Reparameterize(bool reparameterize) {
    p_.reparameterize = reparameterize;
    return *this;
  }
  Builder& Engine(const EngineParams& engine) {
    p_.engine = engine;
    return *this;
  }
  Builder& Forest(const ForestSketchParams& forest) {
    p_.forest = forest;
    return *this;
  }
  /// Shortcuts into the embedded engine (the two knobs every thread-sweep
  /// test and bench overrides).
  Builder& Threads(size_t threads) {
    p_.engine.threads = threads;
    return *this;
  }
  Builder& Mode(IngestMode mode) {
    p_.engine.mode = mode;
    return *this;
  }
  SparsifierParams Build() const {
    GMS_CHECK_MSG(p_.epsilon > 0.0, "SparsifierParams: epsilon must be > 0");
    GMS_CHECK_MSG(p_.k > 0 || p_.k_constant > 0.0,
                  "SparsifierParams: k_constant must be positive unless k "
                  "overrides the resolved threshold");
    ValidateEngineParams(p_.engine);
    ForestSketchParams::Builder().Config(p_.forest.config)
        .Rounds(p_.forest.rounds)
        .Engine(p_.forest.engine)
        .Build();
    return p_;
  }

 private:
  SparsifierParams p_;
};

struct SparsifierOutput {
  WeightedEdgeSet sparsifier;
  /// Per-level edge counts |F_i| (diagnostics).
  std::vector<size_t> level_sizes;
  /// True if the deepest level still held (k+1)-heavy edges: the level
  /// budget was too small and some weight is missing (should not happen
  /// with the paper's l = 3 log n).
  bool truncated = false;
};

class HypergraphSparsifierSketch {
 public:
  using Params = SparsifierParams;

  HypergraphSparsifierSketch(size_t n, size_t max_rank, const Params& params,
                             uint64_t seed);

  size_t n() const { return n_; }
  size_t levels() const { return level_sketches_.size() - 1; }
  size_t k() const { return k_; }
  size_t max_rank() const { return codec_.max_rank(); }
  uint64_t seed() const { return seed_; }

  void Update(const Hyperedge& e, int delta);

  /// Batched ingestion: each update's codec index and sampling depth are
  /// computed once; the level rows (independent light-recovery sketches)
  /// are sharded across params.engine.threads workers. Bit-identical to serial.
  void Process(std::span<const StreamUpdate> updates);
  void Process(const DynamicStream& stream);

  /// Gutter-driver hooks (stream/stream_driver.h). Every update routes
  /// (mask 1): the nested half-sampling depth is a pure function of the
  /// prepared coordinate's fold, so the per-level filter is re-derived at
  /// apply time instead of consuming routing bits.
  const EdgeCodec& codec() const { return codec_; }
  uint64_t DriverRouteMask(const Hyperedge&) const { return 1; }
  /// Level row i replays the sub-batch whose entries have sampling depth
  /// >= i -- the exact serial routing predicate.
  void ApplyUpdateBatch(size_t thr_id, VertexId v,
                        std::span<const VertexUpdate> batch);

  /// Run the per-level light-edge recoveries and assemble sum_i 2^i F_i.
  Result<SparsifierOutput> ExtractSparsifier() const;

  /// The unified non-destructive query: the assembled sparsifier plus
  /// (currently empty) extraction counters in one value. The per-level
  /// peelings run their own extraction loops, so only success/failure is
  /// reported -- the stats payload exists for surface uniformity.
  QueryResult<SparsifierOutput> Query() const;

  /// Serving hook (src/serve/): true iff any level row's measurement state
  /// changed since construction / the last Clear().
  bool SnapshotDirty() const;

  size_t MemoryBytes() const;

  /// Bit-identity of all level-row states (for the determinism suite).
  bool StateEquals(const HypergraphSparsifierSketch& other) const;

  /// Cell-wise field addition of another sketch of the SAME measurement
  /// (equal seed, n, max_rank, levels, k, and forest params -- the sampling
  /// hash then coincides by construction). Mismatches return
  /// InvalidArgument and leave the state untouched.
  Status MergeFrom(const HypergraphSparsifierSketch& other);

  /// Zero every level row (the empty-stream measurement).
  void Clear();

  /// A sketch of the SAME measurement with zero state (the sharded-merge
  /// private clone); the parent's cells are never copied.
  HypergraphSparsifierSketch CloneEmpty() const {
    return HypergraphSparsifierSketch(*this, CloneEmptyTag{});
  }

  /// Append one wire frame (wire::FrameType::kSparsifier) to *out; the
  /// header reconstructs the sampling hash and every level row's shapes
  /// from the seed, and the payload concatenates the rows' raw cells.
  void Serialize(std::vector<uint8_t>* out) const;

  /// Parse a frame produced by Serialize. Truncation, corruption, and shape
  /// mismatches return Status; never aborts.
  static Result<HypergraphSparsifierSketch> Deserialize(
      std::span<const uint8_t> bytes);

  /// Measured serialized-frame size in bytes.
  size_t SpaceBytes() const;

 private:
  HypergraphSparsifierSketch(const HypergraphSparsifierSketch& other,
                             CloneEmptyTag);

  /// Sampling depth of a hyperedge: e is in G_i iff SampleLevel(e) >= i.
  int SampleLevel(const Hyperedge& e) const;

  size_t n_;
  size_t k_;
  uint64_t seed_;
  Params params_;
  EdgeCodec codec_;
  LevelHash sample_hash_;
  std::vector<LightRecoverySketch> level_sketches_;  // index 0..levels
};

}  // namespace gms

#endif  // GMS_SPARSIFY_SPARSIFIER_SKETCH_H_
