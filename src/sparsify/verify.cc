#include "sparsify/verify.h"

namespace gms {

SparsifierReport VerifySparsifier(const Hypergraph& original,
                                  const WeightedEdgeSet& sparsifier,
                                  double epsilon, size_t exhaustive_threshold,
                                  size_t samples, uint64_t seed) {
  SparsifierReport report;
  report.original_edges = original.NumEdges();
  report.sparsifier_edges = sparsifier.size();
  report.compression =
      report.original_edges == 0
          ? 0.0
          : static_cast<double>(report.sparsifier_edges) /
                static_cast<double>(report.original_edges);
  if (original.NumVertices() <= exhaustive_threshold) {
    report.stats = CompareAllCuts(original, sparsifier);
    report.exhaustive = true;
  } else {
    report.stats = CompareSampledCuts(original, sparsifier, samples, seed);
    report.exhaustive = false;
  }
  report.within_epsilon = report.stats.zero_mismatches == 0 &&
                          report.stats.max_rel_error <= epsilon;
  return report;
}

}  // namespace gms
