#include "sparsify/benczur_karger.h"

#include <algorithm>
#include <cmath>

#include "exact/strength.h"
#include "util/check.h"
#include "util/random.h"

namespace gms {

WeightedEdgeSet BenczurKargerSparsify(const Graph& g, const BkParams& params,
                                      uint64_t seed) {
  GMS_CHECK(params.epsilon > 0);
  Rng rng(seed);
  WeightedEdgeSet out;
  if (g.NumEdges() == 0) return out;
  auto strengths = GraphStrengths(g);
  double ln_n =
      std::log(static_cast<double>(std::max<size_t>(g.NumVertices(), 2)));
  double c = params.c_factor * ln_n;
  for (const auto& [e, k_e] : strengths) {
    double p = std::min(
        1.0, c / (params.epsilon * params.epsilon * static_cast<double>(k_e)));
    if (rng.Bernoulli(p)) {
      out.edges.push_back(Hyperedge(e));
      out.weights.push_back(1.0 / p);
    }
  }
  return out;
}

}  // namespace gms
