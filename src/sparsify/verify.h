// Sparsifier verification: drive the cut-comparison machinery of
// exact/cut_eval.h and summarize quality against a target epsilon.
#ifndef GMS_SPARSIFY_VERIFY_H_
#define GMS_SPARSIFY_VERIFY_H_

#include <cstdint>

#include "exact/cut_eval.h"
#include "graph/hypergraph.h"

namespace gms {

struct SparsifierReport {
  CutErrorStats stats;
  size_t original_edges = 0;
  size_t sparsifier_edges = 0;
  double compression = 0;  // sparsifier_edges / original_edges
  bool within_epsilon = false;
  bool exhaustive = false;  // all cuts vs sampled cuts
};

/// Compare every cut when n <= exhaustive_threshold, otherwise singleton
/// cuts plus `samples` random bipartitions.
SparsifierReport VerifySparsifier(const Hypergraph& original,
                                  const WeightedEdgeSet& sparsifier,
                                  double epsilon,
                                  size_t exhaustive_threshold = 18,
                                  size_t samples = 2000, uint64_t seed = 1);

}  // namespace gms

#endif  // GMS_SPARSIFY_VERIFY_H_
