// Offline Benczur-Karger graph sparsification [6], the non-streaming
// baseline the Section 5 algorithm is measured against: sample each edge
// with probability p_e = min(1, c / (eps^2 k_e)) where k_e is the edge's
// strength, weight survivors by 1/p_e. Requires the whole graph in memory
// and strength computation -- everything the dynamic-stream setting
// forbids -- but gives the classic quality/size reference point.
#ifndef GMS_SPARSIFY_BENCZUR_KARGER_H_
#define GMS_SPARSIFY_BENCZUR_KARGER_H_

#include <cstdint>

#include "exact/cut_eval.h"
#include "graph/graph.h"

namespace gms {

struct BkParams {
  double epsilon = 0.5;
  /// The O(log n) oversampling constant c in p_e = c / (eps^2 k_e).
  double c_factor = 1.0;  // multiplied by ln(n)
};

/// Importance-sampled sparsifier of an unweighted graph.
WeightedEdgeSet BenczurKargerSparsify(const Graph& g, const BkParams& params,
                                      uint64_t seed);

}  // namespace gms

#endif  // GMS_SPARSIFY_BENCZUR_KARGER_H_
