#include "sparsify/sparsifier_sketch.h"

#include <algorithm>
#include <cmath>
#include <new>

#include "stream/sharded_merge.h"
#include "stream/stream_driver.h"
#include "util/check.h"
#include "util/parallel.h"
#include "util/random.h"
#include "wire/wire.h"

namespace gms {

size_t SparsifierParams::ResolveLevels(size_t n) const {
  if (levels > 0) return levels;
  double log_n = std::log2(static_cast<double>(std::max<size_t>(n, 2)));
  return static_cast<size_t>(std::ceil(3.0 * log_n));
}

size_t SparsifierParams::ResolveK(size_t n, size_t max_rank,
                                  size_t resolved_levels) const {
  if (k > 0) return k;
  GMS_CHECK(epsilon > 0);
  double eps = epsilon;
  if (reparameterize) eps /= 2.0 * static_cast<double>(resolved_levels);
  double ln_n = std::log(static_cast<double>(std::max<size_t>(n, 2)));
  double value =
      k_constant / (eps * eps) * (ln_n + static_cast<double>(max_rank));
  return std::max<size_t>(1, static_cast<size_t>(std::ceil(value)));
}

HypergraphSparsifierSketch::HypergraphSparsifierSketch(size_t n,
                                                       size_t max_rank,
                                                       const Params& params,
                                                       uint64_t seed)
    : n_(n), seed_(seed), params_(params), codec_(n, max_rank) {
  Rng rng(seed);
  size_t levels = params.ResolveLevels(n);
  k_ = params.ResolveK(n, max_rank, levels);
  sample_hash_ = LevelHash(rng.Fork(), static_cast<int>(levels));
  level_sketches_.reserve(levels + 1);
  for (size_t i = 0; i <= levels; ++i) {
    level_sketches_.emplace_back(n, max_rank, k_, rng.Fork(), params.forest);
  }
}

HypergraphSparsifierSketch::HypergraphSparsifierSketch(
    const HypergraphSparsifierSketch& other, CloneEmptyTag)
    : n_(other.n_),
      k_(other.k_),
      seed_(other.seed_),
      params_(other.params_),
      codec_(other.codec_),
      sample_hash_(other.sample_hash_) {
  level_sketches_.reserve(other.level_sketches_.size());
  for (const auto& level : other.level_sketches_) {
    level_sketches_.push_back(level.CloneEmpty());
  }
}

int HypergraphSparsifierSketch::SampleLevel(const Hyperedge& e) const {
  return sample_hash_.Level(codec_.Encode(e));
}

void HypergraphSparsifierSketch::Update(const Hyperedge& e, int delta) {
  const PreparedCoord pc = PrepareCoord(codec_.Encode(e));
  int depth = sample_hash_.LevelFolded(pc.fold);
  for (int i = 0; i <= depth && i < static_cast<int>(level_sketches_.size());
       ++i) {
    level_sketches_[static_cast<size_t>(i)].UpdatePrepared(e, pc, delta);
  }
}

void HypergraphSparsifierSketch::ApplyUpdateBatch(
    size_t thr_id, VertexId v, std::span<const VertexUpdate> batch) {
  std::vector<VertexUpdate> routed;
  routed.reserve(batch.size());
  for (size_t i = 0; i < level_sketches_.size(); ++i) {
    routed.clear();
    for (const VertexUpdate& u : batch) {
      if (sample_hash_.LevelFolded(u.pc.fold) >= static_cast<int>(i)) {
        routed.push_back(u);
      }
    }
    if (routed.empty()) {
      // Depths are nested: a batch empty at level i is empty at every
      // deeper level too.
      break;
    }
    level_sketches_[i].ApplyUpdateBatch(thr_id, v, routed);
  }
}

void HypergraphSparsifierSketch::Process(std::span<const StreamUpdate> updates) {
  if (updates.empty()) return;
  if (UseGutterDriver(params_.engine, updates.size())) {
    DriveStream(this, updates, DriverParamsFromEngine(params_.engine));
    return;
  }
  if (UseShardedMerge(params_.engine, updates.size())) {
    ShardedMergeIngest(
        this, updates,
        ShardedMergeShards(params_.engine.threads, updates.size()));
    return;
  }
  // Prepare each update's coordinate once (the sampling hash and every
  // level row share the same (n, max_rank) domain and the fold is
  // hash-independent) and derive its sampling depth from the shared fold.
  std::vector<PreparedCoord> prepared(updates.size());
  std::vector<int> depths(updates.size());
  for (size_t j = 0; j < updates.size(); ++j) {
    prepared[j] = PrepareCoord(codec_.Encode(updates[j].edge));
    depths[j] = sample_hash_.LevelFolded(prepared[j].fold);
  }
  // Shard the level rows: each row is an independent linear sketch owned by
  // one worker, ingesting exactly the updates whose depth reaches it.
  ParallelFor(params_.engine.threads, level_sketches_.size(),
              [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      for (size_t j = 0; j < updates.size(); ++j) {
        if (depths[j] >= static_cast<int>(i)) {
          level_sketches_[i].UpdatePrepared(updates[j].edge, prepared[j],
                                            updates[j].delta);
        }
      }
    }
  });
}

void HypergraphSparsifierSketch::Process(const DynamicStream& stream) {
  Process(std::span<const StreamUpdate>(stream.updates()));
}

Result<SparsifierOutput> HypergraphSparsifierSketch::ExtractSparsifier()
    const {
  SparsifierOutput out;
  // Edges already claimed by earlier levels, with their sampling depths so
  // deeper levels subtract only what they ingested.
  std::vector<std::pair<Hyperedge, int>> claimed;
  double weight = 1.0;
  for (size_t i = 0; i < level_sketches_.size(); ++i, weight *= 2.0) {
    std::vector<Hyperedge> to_subtract;
    for (const auto& [e, depth] : claimed) {
      if (depth >= static_cast<int>(i)) to_subtract.push_back(e);
    }
    // Recover(pre_subtract) folds the subtraction into the peeling's own
    // working copy, saving one full level-row copy per level.
    auto recovered = level_sketches_[i].Recover(to_subtract);
    if (!recovered.ok()) return recovered.status();
    const auto& f_i = recovered->light.Edges();
    out.level_sizes.push_back(f_i.size());
    for (const auto& e : f_i) {
      out.sparsifier.edges.push_back(e);
      out.sparsifier.weights.push_back(weight);
      claimed.emplace_back(e, SampleLevel(e));
    }
    // Stop early once a level is fully consumed with nothing heavier left:
    // all deeper levels are subsets and thus also empty after subtraction.
    if (f_i.empty() && !recovered->residual_nonempty) break;
    if (i + 1 == level_sketches_.size() && recovered->residual_nonempty) {
      out.truncated = true;
    }
  }
  return out;
}

Status HypergraphSparsifierSketch::MergeFrom(
    const HypergraphSparsifierSketch& other) {
  if (seed_ != other.seed_ || n_ != other.n_ || k_ != other.k_ ||
      codec_.max_rank() != other.codec_.max_rank() ||
      level_sketches_.size() != other.level_sketches_.size()) {
    return Status::InvalidArgument(
        "HypergraphSparsifierSketch::MergeFrom: seed/shape mismatch "
        "(different measurement)");
  }
  for (size_t i = 0; i < level_sketches_.size(); ++i) {
    if (level_sketches_[i].seed() != other.level_sketches_[i].seed() ||
        level_sketches_[i].MemoryBytes() !=
            other.level_sketches_[i].MemoryBytes()) {
      return Status::InvalidArgument(
          "HypergraphSparsifierSketch::MergeFrom: seed/shape mismatch "
          "(different measurement)");
    }
  }
  for (size_t i = 0; i < level_sketches_.size(); ++i) {
    GMS_RETURN_IF_ERROR(level_sketches_[i].MergeFrom(other.level_sketches_[i]));
  }
  return Status::OK();
}

QueryResult<SparsifierOutput> HypergraphSparsifierSketch::Query() const {
  auto out = ExtractSparsifier();
  if (!out.ok()) return QueryResult<SparsifierOutput>(out.status());
  return QueryResult<SparsifierOutput>(std::move(*out));
}

bool HypergraphSparsifierSketch::SnapshotDirty() const {
  for (const auto& level : level_sketches_) {
    if (level.SnapshotDirty()) return true;
  }
  return false;
}

void HypergraphSparsifierSketch::Clear() {
  for (auto& level : level_sketches_) level.Clear();
}

void HypergraphSparsifierSketch::Serialize(std::vector<uint8_t>* out) const {
  wire::FrameBuilder fb(wire::FrameType::kSparsifier, out);
  fb.writer().U64(n_);
  fb.writer().U64(codec_.max_rank());
  // levels and k travel resolved, so epsilon/k_constant (doubles that only
  // feed the resolution formulas) never have to round-trip.
  fb.writer().U64(levels());
  fb.writer().U64(k_);
  fb.writer().U64(seed_);
  ForestSketchParams resolved = params_.forest;
  resolved.rounds = level_sketches_[0].rounds();
  WriteForestParams(resolved, &fb.writer());
  fb.EndHeader();
  for (const auto& level : level_sketches_) level.AppendCells(&fb.writer());
  fb.Finish();
}

Result<HypergraphSparsifierSketch> HypergraphSparsifierSketch::Deserialize(
    std::span<const uint8_t> bytes) {
  auto frame = wire::ParseFrame(bytes, wire::FrameType::kSparsifier);
  if (!frame.ok()) return frame.status();
  wire::Reader header(frame->header);
  uint64_t n = 0, max_rank = 0, levels = 0, k = 0, seed = 0;
  ForestSketchParams forest;
  GMS_RETURN_IF_ERROR(header.U64(&n));
  GMS_RETURN_IF_ERROR(header.U64(&max_rank));
  GMS_RETURN_IF_ERROR(header.U64(&levels));
  GMS_RETURN_IF_ERROR(header.U64(&k));
  GMS_RETURN_IF_ERROR(header.U64(&seed));
  GMS_RETURN_IF_ERROR(ReadForestParams(&header, &forest));
  GMS_RETURN_IF_ERROR(header.ExpectEnd());
  if (n < 1 || n > (uint64_t{1} << 32) || max_rank < 2 || max_rank > n ||
      levels < 1 || levels > (uint64_t{1} << 16) || k < 1 ||
      k > (uint64_t{1} << 24) || forest.rounds < 1) {
    return Status::InvalidArgument("wire: sparsifier shape out of range");
  }
  // levels+1 recovery structures, each a (k+1)-layer skeleton of all-active
  // forests: skim each forest's self-sizing cell section in turn and
  // require the sum to account for the payload exactly BEFORE construction,
  // so in-range fields with an astronomical product cannot command
  // allocations the payload never backs.
  auto words = ForestStateWords(static_cast<size_t>(n),
                                static_cast<size_t>(max_rank), forest.config);
  if (!words.ok()) return words.status();
  const uint64_t forests = (levels + 1) * (k + 1);  // <= 2^41 by the caps
  size_t offset = 0;
  for (uint64_t i = 0; i < forests; ++i) {
    auto section = SkimForestCellSection(
        frame->payload.subspan(offset), n,
        static_cast<uint64_t>(forest.rounds), *words,
        forest.config.sparse_threshold);
    if (!section.ok()) return section.status();
    offset += *section;
  }
  if (offset != frame->payload.size()) {
    return Status::InvalidArgument(
        "wire: sparsifier payload size disagrees with the header shape");
  }
  SparsifierParams params;
  params.levels = static_cast<size_t>(levels);
  params.k = static_cast<size_t>(k);
  params.forest = forest;
  try {
    HypergraphSparsifierSketch sketch(static_cast<size_t>(n),
                                      static_cast<size_t>(max_rank), params,
                                      seed);
    wire::Reader payload(frame->payload);
    for (auto& level : sketch.level_sketches_) {
      GMS_RETURN_IF_ERROR(level.ReadCells(&payload));
    }
    GMS_RETURN_IF_ERROR(payload.ExpectEnd());
    return sketch;
  } catch (const std::bad_alloc&) {
    return Status::InvalidArgument(
        "wire: sparsifier shape too large for available memory");
  }
}

size_t HypergraphSparsifierSketch::SpaceBytes() const {
  std::vector<uint8_t> frame;
  Serialize(&frame);
  return frame.size();
}

size_t HypergraphSparsifierSketch::MemoryBytes() const {
  size_t total = 0;
  for (const auto& level : level_sketches_) total += level.MemoryBytes();
  return total;
}

bool HypergraphSparsifierSketch::StateEquals(
    const HypergraphSparsifierSketch& other) const {
  if (level_sketches_.size() != other.level_sketches_.size()) return false;
  for (size_t i = 0; i < level_sketches_.size(); ++i) {
    if (!level_sketches_[i].StateEquals(other.level_sketches_[i])) {
      return false;
    }
  }
  return true;
}

}  // namespace gms
