// The Becker et al. simultaneous-communication model (Section 2): players
// P_1..P_n each hold the hyperedges incident to one vertex; with public
// randomness each sends ONE message to the referee Q, who must answer a
// graph question. A vertex-based sketch gives a protocol directly: player
// v's message is v's sketch state (a linear function of v's incident edges
// only), and Q sums the messages per component to decode.
//
// This module simulates the protocol faithfully: each player builds a
// single-vertex sketch from its local edge list alone and SERIALIZES it
// into a real wire frame; the referee deserializes the n frames and merges
// them (MergeFrom with subset-active semantics) into the full sketch it
// decodes. Message sizes are measured from the bytes on the wire, not
// estimated from in-memory state.
#ifndef GMS_COMM_SIMULTANEOUS_H_
#define GMS_COMM_SIMULTANEOUS_H_

#include <cstdint>

#include "connectivity/spanning_forest_sketch.h"
#include "graph/hypergraph.h"

namespace gms {

struct CommReport {
  size_t num_players = 0;
  /// Largest serialized player frame, in bytes (players hold identically-
  /// shaped single-vertex states, so frames are equal-sized up to header
  /// bitmap framing; the max is what a per-player communication bound is
  /// stated against).
  size_t max_message_bytes = 0;
  /// Sum of all n serialized frames (the protocol's total communication).
  size_t total_bytes = 0;
  bool referee_answer_connected = false;
  bool exact_connected = false;
  bool correct = false;
  size_t referee_components = 0;
};

/// Run the one-round connectivity protocol on g. `public_seed` plays the
/// role of the shared random string.
CommReport RunSimultaneousConnectivity(
    const Hypergraph& g, uint64_t public_seed,
    const ForestSketchParams& params = ForestSketchParams());

}  // namespace gms

#endif  // GMS_COMM_SIMULTANEOUS_H_
