#include "comm/simultaneous.h"

#include <algorithm>

#include "graph/traversal.h"

namespace gms {

CommReport RunSimultaneousConnectivity(const Hypergraph& g,
                                       uint64_t public_seed,
                                       const ForestSketchParams& params) {
  CommReport report;
  report.num_players = g.NumVertices();
  size_t max_rank = std::max<size_t>(g.Rank(), 2);

  // The public random string fixes the measurement; every player derives
  // the same shapes from `public_seed`.
  SpanningForestSketch referee_state(g.NumVertices(), max_rank, public_seed,
                                     params);
  // Each player contributes a message computed from its OWN edge list only.
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    for (uint32_t idx : g.IncidentIndices(v)) {
      referee_state.UpdateLocal(v, g.Edges()[idx], +1);
    }
  }
  report.per_player_bytes =
      g.NumVertices() == 0
          ? 0
          : referee_state.MemoryBytes() / g.NumVertices();
  report.total_bytes = referee_state.MemoryBytes();

  auto span = referee_state.ExtractSpanningGraph();
  if (span.ok()) {
    report.referee_answer_connected = IsConnected(*span);
    report.referee_components = NumComponents(*span);
  }
  report.exact_connected = IsConnected(g);
  report.correct = span.ok() &&
                   report.referee_answer_connected == report.exact_connected;
  return report;
}

}  // namespace gms
