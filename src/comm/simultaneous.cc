#include "comm/simultaneous.h"

#include <algorithm>
#include <vector>

#include "graph/traversal.h"
#include "util/check.h"

namespace gms {

CommReport RunSimultaneousConnectivity(const Hypergraph& g,
                                       uint64_t public_seed,
                                       const ForestSketchParams& params) {
  CommReport report;
  const size_t n = g.NumVertices();
  report.num_players = n;
  size_t max_rank = std::max<size_t>(g.Rank(), 2);

  // The public random string fixes the measurement; every player derives
  // the same shapes from `public_seed`, so a player's single-vertex sketch
  // and the referee's full sketch agree cell-for-cell on that vertex.
  SpanningForestSketch referee_state(n, max_rank, public_seed, params);

  std::vector<uint8_t> frame;
  for (VertexId v = 0; v < n; ++v) {
    // Player v: a sketch whose state is allocated for v alone, fed ONLY
    // v's incident edges.
    std::vector<bool> mine(n, false);
    mine[v] = true;
    SpanningForestSketch player(n, max_rank, public_seed, params, &mine);
    for (uint32_t idx : g.IncidentIndices(v)) {
      player.UpdateLocal(v, g.Edges()[idx], +1);
    }
    // The message is the serialized frame -- sizes below are measured from
    // the bytes actually produced, not estimated from in-memory state.
    frame.clear();
    player.Serialize(&frame);
    report.max_message_bytes = std::max(report.max_message_bytes, frame.size());
    report.total_bytes += frame.size();

    // Referee side: parse the frame back and fold it in. The deserialized
    // sketch is active at {v} only; MergeFrom's subset-active semantics add
    // its cells into the referee's full state.
    auto message = SpanningForestSketch::Deserialize(frame);
    GMS_CHECK_MSG(message.ok(), "referee failed to parse a player frame");
    Status merged = referee_state.MergeFrom(*message);
    GMS_CHECK_MSG(merged.ok(), "referee failed to merge a player frame");
  }

  auto span = referee_state.ExtractSpanningGraph();
  if (span.ok()) {
    report.referee_answer_connected = IsConnected(*span);
    report.referee_components = NumComponents(*span);
  }
  report.exact_connected = IsConnected(g);
  report.correct = span.ok() &&
                   report.referee_answer_connected == report.exact_connected;
  return report;
}

}  // namespace gms
