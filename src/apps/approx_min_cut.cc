#include "apps/approx_min_cut.h"

#include <utility>

#include "exact/hypergraph_mincut.h"
#include "stream/ingest_plane.h"
#include "stream/stream_driver.h"
#include "util/check.h"
#include "util/random.h"

namespace gms {
namespace apps {

ApproxMinCut::ApproxMinCut(size_t n, size_t max_rank, size_t k_cap,
                           uint64_t seed, const Params& params)
    : k_cap_(k_cap), params_(params) {
  GMS_CHECK_MSG(k_cap >= 1, "ApproxMinCut: k_cap must be >= 1");
  std::vector<size_t> ks;
  for (size_t k = 1; k < k_cap; k *= 2) ks.push_back(k);
  ks.push_back(k_cap);
  levels_.reserve(ks.size());
  for (size_t i = 0; i < ks.size(); ++i) {
    levels_.emplace_back(n, max_rank, ks[i],
                         Mix64(seed ^ (0x5851f42d4c957f2dULL * (i + 1))),
                         params);
  }
}

void ApproxMinCut::Update(const Hyperedge& e, int delta) {
  const u128 index = codec().Encode(e);
  for (auto& level : levels_) level.UpdateEncoded(e, index, delta);
}

void ApproxMinCut::Process(std::span<const StreamUpdate> updates) {
  if (updates.empty()) return;
  if (UseGutterDriver(params_.engine, updates.size())) {
    // One parallel reader/applier pipeline over the WHOLE ladder (the app
    // itself models the driver-sketch concept): each update is prepared
    // once, instead of once per rung.
    DriveStream(this, updates, DriverParamsFromEngine(params_.engine));
    return;
  }
  if (params_.engine.threads > 1) {
    // The per-level column/sharded-merge paths parallelize within a rung;
    // keep them when the caller asked for workers.
    ProcessIndependent(updates);
    return;
  }
  IngestPlane plane;
  for (auto& level : levels_) plane.Add(&level);
  plane.Process(updates);
}

void ApproxMinCut::Process(const DynamicStream& stream) {
  Process(std::span<const StreamUpdate>(stream.updates()));
}

void ApproxMinCut::ProcessIndependent(std::span<const StreamUpdate> updates) {
  for (auto& level : levels_) level.Process(updates);
}

void ApproxMinCut::Clear() {
  for (auto& level : levels_) level.Clear();
}

QueryResult<MinCutEstimate> ApproxMinCut::Query() const {
  ExtractStats stats;
  for (const KSkeletonSketch& level : levels_) {
    QueryResult<Hypergraph> skel = level.Query();
    AccumulateExtractStats(skel.stats(), &stats);
    if (!skel.ok()) return QueryResult<MinCutEstimate>(skel.status());
    const HypergraphCut cut = HypergraphMinCut(skel.value());
    const size_t cut_value = static_cast<size_t>(cut.value + 0.5);
    if (cut_value < level.k()) {
      // Below the level's preservation threshold the skeleton cut is a
      // GENUINE minimum cut of G: |delta_H(S)| >= min(|delta_G(S)|, k)
      // forces |delta_G(S)| = cut_value (connectivity_query.h, MinCut).
      MinCutEstimate est;
      est.value = cut_value;
      est.exact = true;
      est.resolved_k = level.k();
      est.shore = cut.side;
      return QueryResult<MinCutEstimate>(std::move(est), std::move(stats));
    }
  }
  // Every level saturated: lambda(G) >= k_cap whp.
  MinCutEstimate est;
  est.value = k_cap_;
  est.exact = false;
  est.resolved_k = k_cap_;
  return QueryResult<MinCutEstimate>(std::move(est), std::move(stats));
}

size_t ApproxMinCut::MemoryBytes() const {
  size_t total = 0;
  for (const auto& level : levels_) total += level.MemoryBytes();
  return total;
}

}  // namespace apps
}  // namespace gms
