// 2-edge-connectivity composed from two independent spanning-graph
// sketches by forest peeling (DESIGN.md §14), the exemplar layering from
// GraphStreamingCC's TwoEdgeConnect: query the first sketch for a
// spanning graph F1, LINEARLY subtract F1 from a copy of the second
// sketch, and query the residual for F2 -- a spanning graph of G - F1.
// H = F1 u F2 is a 2-skeleton of G (Definition 11 at k = 2): every cut of
// H has size min(cut_G, 2) whp, so G is 2-edge-connected iff H is, and
// the bridges of H are exactly the bridges of G (a G-cut of size 1
// survives into H as the same single hyperedge).
//
// The two sketches must be INDEPENDENT (distinct derived seeds): peeling
// F1 out of the sketch that produced it is the adaptive reuse Section 4.2
// warns about (see tests/adaptive_reuse_test.cc).
#ifndef GMS_APPS_TWO_EDGE_CONNECT_H_
#define GMS_APPS_TWO_EDGE_CONNECT_H_

#include <cstdint>
#include <span>
#include <vector>

#include "connectivity/spanning_forest_sketch.h"
#include "stream/stream.h"

namespace gms {
namespace apps {

/// Everything one TwoEdgeConnect query decodes.
struct TwoEdgeConnectAnswer {
  /// The 2-skeleton certificate F1 u F2 (<= 2(n-1) hyperedges).
  Hypergraph skeleton;
  size_t num_components = 0;
  /// Bridges of the certificate = bridges of G (whp), in skeleton order.
  std::vector<Hyperedge> bridges;
  bool connected = false;
  /// connected && bridges.empty().
  bool two_edge_connected = false;
};

class TwoEdgeConnect {
 public:
  using Params = SpanningForestSketch::Params;

  /// Layer seeds derive from `seed` (Mix64-forked), so one public seed
  /// reproduces both sketches.
  TwoEdgeConnect(size_t n, size_t max_rank, uint64_t seed,
                 const Params& params = Params());

  size_t n() const { return layer1_.n(); }
  size_t max_rank() const { return layer1_.max_rank(); }

  void Update(const Hyperedge& e, int delta);
  /// Batched ingestion through the shared ingestion plane (stream/
  /// ingest_plane.h): encode + PrepareCoord + gutter routing happen ONCE
  /// per update, fanning each prepared batch out to both forest layers.
  /// Driver mode drives the plane with the parallel reader/applier
  /// pipeline; other modes with threads > 1 keep the per-layer parallel
  /// paths. Bit-identical to ProcessIndependent for every setting.
  void Process(std::span<const StreamUpdate> updates);
  void Process(const DynamicStream& stream);
  /// The pre-plane baseline (each layer re-encodes the updates itself);
  /// the comparison target for the determinism suite and the prepare_once
  /// bench rows.
  void ProcessIndependent(std::span<const StreamUpdate> updates);

  /// Gutter-driver hooks (stream/stream_driver.h): both layers share the
  /// (n, max_rank) codec domain; every update fans out to both.
  const EdgeCodec& codec() const { return layer1_.codec(); }
  uint64_t DriverRouteMask(const Hyperedge&) const { return 1; }
  void ApplyUpdateBatch(size_t thr_id, VertexId v,
                        std::span<const VertexUpdate> batch) {
    layer1_.ApplyUpdateBatch(thr_id, v, batch);
    layer2_.ApplyUpdateBatch(thr_id, v, batch);
  }

  /// The unified non-destructive query: peel F1, subtract it from a COPY
  /// of layer 2, peel F2, report bridges of F1 u F2. The sketch itself is
  /// unchanged; stats sum both layer extractions.
  QueryResult<TwoEdgeConnectAnswer> Query() const;

  size_t MemoryBytes() const {
    return layer1_.MemoryBytes() + layer2_.MemoryBytes();
  }

  /// Zero both layers (the empty-stream measurement); for bench reps.
  void Clear();

  /// The raw layers, for frame-strength determinism checks and space
  /// accounting.
  const SpanningForestSketch& layer1() const { return layer1_; }
  const SpanningForestSketch& layer2() const { return layer2_; }

 private:
  Params params_;
  SpanningForestSketch layer1_;
  SpanningForestSketch layer2_;
};

}  // namespace apps
}  // namespace gms

#endif  // GMS_APPS_TWO_EDGE_CONNECT_H_
