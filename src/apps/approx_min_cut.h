// Global min cut via k-skeleton doubling search (DESIGN.md §14). A
// k-skeleton preserves every cut up to size k (Definition 11), so the
// skeleton's exact min cut equals min(lambda(G), k) whp -- and when that
// value lands BELOW the level's k, it is exactly lambda(G) with a genuine
// minimum-cut shore. The app maintains independent skeleton sketches at
// k = 1, 2, 4, ..., k_cap and queries them in ascending order, stopping
// at the first level that resolves: small cuts (the common case for the
// paper's workloads) pay only the cheap shallow extractions, and the
// deepest level caps the answer at k_cap when G is better connected than
// the budget (exact = false; the value is then a certified lower bound).
//
// The Goel-Kapralov-Post sparsification connection (PAPERS.md): the
// skeleton ladder is a single-pass cut sparsifier specialized to the
// global min cut -- space O(n * k_cap * polylog) against the exact
// offline Queyranne algorithm the testkit oracle checks it with.
#ifndef GMS_APPS_APPROX_MIN_CUT_H_
#define GMS_APPS_APPROX_MIN_CUT_H_

#include <cstdint>
#include <span>
#include <vector>

#include "connectivity/k_skeleton.h"
#include "stream/stream.h"

namespace gms {
namespace apps {

struct MinCutEstimate {
  /// min(lambda(G), k_cap) whp; 0 when G is disconnected.
  size_t value = 0;
  /// True when value < k_cap: `value` is exactly lambda(G) and `shore` is
  /// a genuine minimum-cut side. False means every cut of G has size
  /// >= k_cap (value == k_cap is a certified lower bound, not the cut).
  bool exact = false;
  /// The level (its k) that resolved the answer.
  size_t resolved_k = 0;
  /// A shore achieving `value` on the resolving skeleton (meaningful when
  /// `exact`; in_s[v] = true puts v on the S side).
  std::vector<bool> shore;
};

class ApproxMinCut {
 public:
  using Params = KSkeletonSketch::Params;

  /// Levels k = 1, 2, 4, ... capped at k_cap (k_cap >= 1); level seeds
  /// derive from `seed`, so one public seed reproduces the ladder.
  ApproxMinCut(size_t n, size_t max_rank, size_t k_cap, uint64_t seed,
               const Params& params = Params());

  size_t n() const { return levels_.front().n(); }
  size_t max_rank() const { return levels_.front().max_rank(); }
  size_t k_cap() const { return k_cap_; }
  size_t num_levels() const { return levels_.size(); }

  void Update(const Hyperedge& e, int delta);
  /// Batched ingestion through the shared ingestion plane (stream/
  /// ingest_plane.h): encode + PrepareCoord + gutter routing happen ONCE
  /// per update and every prepared batch fans out to the whole k = 1, 2,
  /// 4, ..., k_cap ladder -- instead of one full pass per rung. Driver
  /// mode drives the plane with the parallel reader/applier pipeline;
  /// other modes with threads > 1 keep the per-level parallel paths.
  /// Bit-identical to ProcessIndependent for every setting.
  void Process(std::span<const StreamUpdate> updates);
  void Process(const DynamicStream& stream);
  /// The pre-plane baseline (each level re-encodes the updates itself);
  /// the comparison target for the determinism suite and the prepare_once
  /// bench rows.
  void ProcessIndependent(std::span<const StreamUpdate> updates);

  /// Gutter-driver hooks: all levels share one codec domain; every update
  /// fans out to every level.
  const EdgeCodec& codec() const { return levels_.front().codec(); }
  uint64_t DriverRouteMask(const Hyperedge&) const { return 1; }
  void ApplyUpdateBatch(size_t thr_id, VertexId v,
                        std::span<const VertexUpdate> batch) {
    for (auto& level : levels_) level.ApplyUpdateBatch(thr_id, v, batch);
  }

  /// The doubling search: extract skeletons in ascending k, compute each
  /// one's exact min cut, and return at the first level whose answer is
  /// below its own k (that answer is lambda(G) whp). Non-destructive.
  QueryResult<MinCutEstimate> Query() const;

  size_t MemoryBytes() const;

  /// Zero every level (the empty-stream measurement); for bench reps.
  void Clear();

  /// The raw ladder rungs, for frame-strength determinism checks.
  const KSkeletonSketch& level(size_t i) const { return levels_[i]; }

 private:
  size_t k_cap_;
  Params params_;
  std::vector<KSkeletonSketch> levels_;
};

}  // namespace apps
}  // namespace gms

#endif  // GMS_APPS_APPROX_MIN_CUT_H_
