#include "apps/two_edge_connect.h"

#include <utility>

#include "graph/traversal.h"
#include "stream/ingest_plane.h"
#include "stream/stream_driver.h"
#include "util/random.h"

namespace gms {
namespace apps {

TwoEdgeConnect::TwoEdgeConnect(size_t n, size_t max_rank, uint64_t seed,
                               const Params& params)
    : params_(params),
      layer1_(n, max_rank, Mix64(seed ^ 0x2ec1a9b7d64f8c31ULL), params),
      layer2_(n, max_rank, Mix64(seed ^ 0x9d3f60b1e8c45a77ULL), params) {}

void TwoEdgeConnect::Update(const Hyperedge& e, int delta) {
  // Encode once; the layers share one codec domain.
  const u128 index = layer1_.codec().Encode(e);
  layer1_.UpdateEncoded(e, index, delta);
  layer2_.UpdateEncoded(e, index, delta);
}

void TwoEdgeConnect::Process(std::span<const StreamUpdate> updates) {
  if (updates.empty()) return;
  if (UseGutterDriver(params_.engine, updates.size())) {
    // One parallel reader/applier pipeline over BOTH layers (the app
    // itself models the driver-sketch concept): each update is prepared
    // once, instead of once per layer.
    DriveStream(this, updates, DriverParamsFromEngine(params_.engine));
    return;
  }
  if (params_.engine.threads > 1) {
    // The per-layer column/sharded-merge paths parallelize within a layer;
    // keep them when the caller asked for workers.
    ProcessIndependent(updates);
    return;
  }
  IngestPlane plane;
  plane.Add(&layer1_);
  plane.Add(&layer2_);
  plane.Process(updates);
}

void TwoEdgeConnect::Process(const DynamicStream& stream) {
  Process(std::span<const StreamUpdate>(stream.updates()));
}

void TwoEdgeConnect::ProcessIndependent(std::span<const StreamUpdate> updates) {
  layer1_.Process(updates);
  layer2_.Process(updates);
}

void TwoEdgeConnect::Clear() {
  layer1_.Clear();
  layer2_.Clear();
}

QueryResult<TwoEdgeConnectAnswer> TwoEdgeConnect::Query() const {
  ExtractStats stats;
  QueryResult<Hypergraph> f1 = layer1_.Query();
  AccumulateExtractStats(f1.stats(), &stats);
  if (!f1.ok()) return QueryResult<TwoEdgeConnectAnswer>(f1.status());

  // Peel: subtract F1 from an independent sketch of the same stream, so
  // the residual measures G - F1 and its spanning graph F2 completes the
  // 2-skeleton. The subtraction runs on a copy; *this stays queryable.
  SpanningForestSketch residual = layer2_;
  residual.RemoveHyperedges(f1.value().Edges());
  QueryResult<Hypergraph> f2 = residual.Query();
  AccumulateExtractStats(f2.stats(), &stats);
  if (!f2.ok()) return QueryResult<TwoEdgeConnectAnswer>(f2.status());

  TwoEdgeConnectAnswer answer;
  answer.skeleton = std::move(f1).value();
  answer.skeleton.AddAll(f2.value());
  answer.num_components = NumComponents(answer.skeleton);
  answer.bridges = BridgeHyperedges(answer.skeleton);
  answer.connected = answer.num_components == 1;
  answer.two_edge_connected = answer.connected && answer.bridges.empty();
  return QueryResult<TwoEdgeConnectAnswer>(std::move(answer),
                                           std::move(stats));
}

}  // namespace apps
}  // namespace gms
