#include "vertexconn/lower_bound.h"

#include "graph/traversal.h"
#include "util/check.h"
#include "util/random.h"

namespace gms {

VcLowerBoundInstance MakeVcLowerBoundInstance(size_t k, size_t n_r,
                                              uint64_t seed) {
  GMS_CHECK(k >= 1 && n_r >= 3);
  Rng rng(seed);
  VcLowerBoundInstance inst;
  inst.k = k;
  inst.n_r = n_r;
  size_t rows = k + 1;
  size_t n = rows + n_r;
  auto l = [&](size_t i) { return static_cast<VertexId>(i); };
  auto r = [&](size_t j) { return static_cast<VertexId>(rows + j); };

  // Random bit matrix.
  std::vector<std::vector<bool>> x(rows, std::vector<bool>(n_r));
  for (size_t i = 0; i < rows; ++i) {
    for (size_t j = 0; j < n_r; ++j) x[i][j] = rng.Bernoulli(0.5);
  }
  // Probe a random bit.
  inst.bit_i = rng.Below(rows);
  inst.bit_j = rng.Below(n_r);
  // Ensure row bit_i has a 1 outside column bit_j so l_i stays attached and
  // the query isolates exactly the probed bit.
  size_t anchor = rng.Below(n_r - 1);
  if (anchor >= inst.bit_j) ++anchor;
  x[inst.bit_i][anchor] = true;
  inst.bit_value = x[inst.bit_i][inst.bit_j];

  inst.graph = Graph(n);
  std::vector<StreamUpdate> alice;
  for (size_t i = 0; i < rows; ++i) {
    for (size_t j = 0; j < n_r; ++j) {
      if (x[i][j]) {
        Edge e(l(i), r(j));
        inst.graph.AddEdge(e);
        alice.emplace_back(Hyperedge(e), +1);
      }
    }
  }
  Shuffle(alice, rng);
  // Bob connects R \ {r_j} with a path (the paper uses a clique; a path
  // carries the same connectivity information in O(n) edges).
  std::vector<StreamUpdate> bob;
  VertexId prev = static_cast<VertexId>(-1);
  for (size_t j = 0; j < n_r; ++j) {
    if (j == inst.bit_j) continue;
    if (prev != static_cast<VertexId>(-1)) {
      Edge e(prev, r(j));
      inst.graph.AddEdge(e);
      bob.emplace_back(Hyperedge(e), +1);
    }
    prev = r(j);
  }
  std::vector<StreamUpdate> ups = std::move(alice);
  ups.insert(ups.end(), bob.begin(), bob.end());
  inst.stream = DynamicStream(std::move(ups));

  // Query: remove all of L except l_{bit_i}.
  for (size_t i = 0; i < rows; ++i) {
    if (i != inst.bit_i) inst.query.push_back(l(i));
  }
  inst.ground_truth_disconnects =
      !IsConnectedExcluding(inst.graph, inst.query);
  // By construction the query disconnects iff the probed bit is 0.
  GMS_CHECK(inst.ground_truth_disconnects == !inst.bit_value);
  return inst;
}

SfstLowerBoundInstance MakeSfstLowerBoundInstance(size_t n, uint64_t seed) {
  GMS_CHECK(n >= 2);
  Rng rng(seed);
  SfstLowerBoundInstance inst;
  inst.n = n;
  // Blocks: T = [0, n), U = [n, 2n), V = [2n, 3n), W = [3n, 4n).
  auto t = [&](size_t i) { return static_cast<VertexId>(i); };
  auto u = [&](size_t i) { return static_cast<VertexId>(n + i); };
  auto v = [&](size_t i) { return static_cast<VertexId>(2 * n + i); };
  auto w = [&](size_t i) { return static_cast<VertexId>(3 * n + i); };

  std::vector<std::vector<bool>> x(n, std::vector<bool>(n));
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) x[i][j] = rng.Bernoulli(0.5);
  }
  inst.bit_i = rng.Below(n);
  inst.bit_j = rng.Below(n);
  inst.bit_value = x[inst.bit_i][inst.bit_j];

  inst.graph = Graph(4 * n);
  // Alice: edges {t_k, u_l} and {v_l, w_k} for each x_{l,k} = 1.
  for (size_t row = 0; row < n; ++row) {
    for (size_t col = 0; col < n; ++col) {
      if (x[row][col]) {
        inst.graph.AddEdge(t(col), u(row));
        inst.graph.AddEdge(v(row), w(col));
      }
    }
  }
  // Bob: the probe edge {u_i, v_i}.
  inst.graph.AddEdge(u(inst.bit_i), v(inst.bit_i));
  inst.u_i = u(inst.bit_i);
  inst.v_i = v(inst.bit_i);
  inst.t_j = t(inst.bit_j);
  inst.w_j = w(inst.bit_j);
  return inst;
}

}  // namespace gms
