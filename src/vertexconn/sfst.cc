#include "vertexconn/sfst.h"

#include <algorithm>
#include <vector>

#include "graph/traversal.h"
#include "util/check.h"
#include "util/random.h"

namespace gms {

Graph ScanFirstSearchTree(const Graph& g, VertexId root, uint64_t seed) {
  size_t n = g.NumVertices();
  GMS_CHECK(root < n);
  Rng rng(seed);
  Graph tree(n);
  std::vector<bool> marked(n, false), scanned(n, false);
  std::vector<VertexId> frontier;  // marked but unscanned
  marked[root] = true;
  frontier.push_back(root);
  while (!frontier.empty()) {
    // Scan an arbitrary marked-but-unscanned vertex (seeded choice).
    size_t pick = rng.Below(frontier.size());
    VertexId x = frontier[pick];
    frontier[pick] = frontier.back();
    frontier.pop_back();
    scanned[x] = true;
    for (VertexId y : g.Neighbors(x)) {
      if (!marked[y]) {
        marked[y] = true;
        tree.AddEdge(x, y);
        frontier.push_back(y);
      }
    }
  }
  return tree;
}

bool IsValidScanFirstTree(const Graph& g, const Graph& tree, VertexId root) {
  size_t n = g.NumVertices();
  if (tree.NumVertices() != n) return false;
  // Tree edges must exist in g.
  for (const Edge& e : tree.Edges()) {
    if (!g.HasEdge(e)) return false;
  }
  // Tree must span root's component: orient it away from the root by BFS.
  std::vector<int64_t> parent(n, -2);
  parent[root] = -1;
  std::vector<VertexId> order = {root};
  for (size_t head = 0; head < order.size(); ++head) {
    VertexId x = order[head];
    for (VertexId y : tree.Neighbors(x)) {
      if (parent[y] == -2) {
        parent[y] = x;
        order.push_back(y);
      }
    }
  }
  auto comp = ConnectedComponents(g);
  size_t comp_size = 0;
  for (VertexId v = 0; v < n; ++v) comp_size += comp[v] == comp[root] ? 1 : 0;
  if (order.size() != comp_size) return false;
  if (tree.NumEdges() != comp_size - 1) return false;

  // Greedy replay: scanning x is legal once every g-neighbour of x that is
  // NOT an x-child in the tree has been marked; then the unmarked
  // neighbours (= exactly the x-children) get marked. Greedy is safe
  // because eligibility is monotone (children can only be marked by their
  // own tree parent).
  std::vector<bool> marked(n, false), scanned(n, false);
  marked[root] = true;
  size_t scanned_count = 0;
  bool progress = true;
  while (progress) {
    progress = false;
    for (VertexId x : order) {
      if (!marked[x] || scanned[x]) continue;
      bool eligible = true;
      for (VertexId y : g.Neighbors(x)) {
        bool is_child = tree.HasEdge(x, y) && parent[y] == x;
        if (!is_child && !marked[y]) {
          eligible = false;
          break;
        }
      }
      if (!eligible) continue;
      scanned[x] = true;
      ++scanned_count;
      for (VertexId y : g.Neighbors(x)) {
        if (!marked[y]) {
          // Must be adopted as a child right now.
          if (!(tree.HasEdge(x, y) && parent[y] == x)) return false;
          marked[y] = true;
        }
      }
      progress = true;
    }
  }
  return scanned_count == order.size();
}

}  // namespace gms
