#include "vertexconn/hyper_vc_query.h"

#include <new>

#include "graph/traversal.h"
#include "stream/sharded_merge.h"
#include "stream/stream_driver.h"
#include "util/check.h"
#include "util/parallel.h"
#include "util/random.h"
#include "wire/wire.h"

namespace gms {

HyperVcQuerySketch::HyperVcQuerySketch(size_t n, size_t max_rank,
                                       const Params& params, uint64_t seed)
    : n_(n), params_(params), seed_(seed), h_(n) {
  GMS_CHECK(params.k >= 1);
  Rng rng(seed);
  size_t r_subgraphs = params.ResolveR(n);
  kept_.reserve(r_subgraphs);
  sketches_.reserve(r_subgraphs);
  for (size_t i = 0; i < r_subgraphs; ++i) {
    kept_.push_back(DrawKeptBitmap(rng, n, params.k));
    sketches_.emplace_back(n, max_rank, rng.Fork(), params.forest, &kept_[i]);
  }
}

HyperVcQuerySketch::HyperVcQuerySketch(const HyperVcQuerySketch& other,
                                       CloneEmptyTag)
    : n_(other.n_),
      params_(other.params_),
      seed_(other.seed_),
      kept_(other.kept_),
      h_(other.n_) {
  sketches_.reserve(other.sketches_.size());
  for (const auto& sketch : other.sketches_) {
    sketches_.push_back(sketch.CloneEmpty());
  }
}

void HyperVcQuerySketch::Update(const Hyperedge& e, int delta) {
  for (size_t i = 0; i < sketches_.size(); ++i) {
    bool all_kept = true;
    for (VertexId v : e) all_kept &= kept_[i][v];
    if (all_kept) sketches_[i].Update(e, delta);
  }
}

uint64_t HyperVcQuerySketch::DriverRouteMask(const Hyperedge& e) const {
  const size_t r = std::min<size_t>(sketches_.size(), 64);
  uint64_t mask = 0;
  for (size_t i = 0; i < r; ++i) {
    bool all_kept = true;
    for (VertexId v : e) all_kept &= kept_[i][v];
    if (all_kept) mask |= uint64_t{1} << i;
  }
  return mask;
}

void HyperVcQuerySketch::ApplyUpdateBatch(size_t thr_id, VertexId v,
                                          std::span<const VertexUpdate> batch) {
  std::vector<VertexUpdate> routed;
  routed.reserve(batch.size());
  for (size_t i = 0; i < sketches_.size(); ++i) {
    const uint64_t bit = uint64_t{1} << i;
    routed.clear();
    for (const VertexUpdate& u : batch) {
      if (u.route & bit) routed.push_back(u);
    }
    if (!routed.empty()) {
      sketches_[i].ApplyUpdateBatch(thr_id, v, routed);
    }
  }
}

void HyperVcQuerySketch::Process(std::span<const StreamUpdate> updates) {
  if (sketches_.empty() || updates.empty()) return;
  if (DriverSupported() && UseGutterDriver(params_.engine, updates.size())) {
    DriveStream(this, updates, DriverParamsFromEngine(params_.engine));
    return;
  }
  if (UseShardedMerge(params_.engine, updates.size())) {
    ShardedMergeIngest(
        this, updates,
        ShardedMergeShards(params_.engine.threads, updates.size()));
    return;
  }
  // One encode + coordinate preparation per update, shared across the R
  // subsamples.
  const EdgeCodec& codec = sketches_[0].codec();
  std::vector<PreparedCoord> prepared(updates.size());
  for (size_t j = 0; j < updates.size(); ++j) {
    GMS_CHECK_MSG(updates[j].edge.size() <= codec.max_rank(),
                  "hyperedge exceeds max_rank");
    prepared[j] = PrepareCoord(codec.Encode(updates[j].edge));
  }
  ParallelFor(params_.engine.threads, sketches_.size(),
              [&](size_t begin, size_t end) {
                for (size_t i = begin; i < end; ++i) {
                  const std::vector<bool>& kept = kept_[i];
                  for (size_t j = 0; j < updates.size(); ++j) {
                    const Hyperedge& e = updates[j].edge;
                    bool all_kept = true;
                    for (VertexId v : e) all_kept &= kept[v];
                    if (all_kept) {
                      sketches_[i].UpdatePrepared(e, prepared[j],
                                                  updates[j].delta);
                    }
                  }
                }
              });
}

void HyperVcQuerySketch::Process(const DynamicStream& stream) {
  Process(std::span<const StreamUpdate>(stream.updates()));
}

Result<Hypergraph> HyperVcQuerySketch::BuildUnionHypergraph(
    ExtractStats* stats) const {
  // R independent decodes fan out across the pool (each worker reuses its
  // thread-local extraction scratch); H is assembled serially in sketch
  // order, so the union graph is deterministic.
  std::vector<std::vector<Hyperedge>> decoded(sketches_.size());
  std::vector<Status> status(sketches_.size());
  std::vector<ExtractStats> per_sketch(stats != nullptr ? sketches_.size()
                                                        : 0);
  ParallelFor(params_.engine.threads, sketches_.size(),
              [&](size_t begin, size_t end) {
                for (size_t i = begin; i < end; ++i) {
                  // All-sparse forests decode exactly from their buffers
                  // alone -- skip the whole Borůvka loop (stats count the
                  // skip).
                  auto span =
                      sketches_[i].AllSparse()
                          ? sketches_[i].ExtractSparseExact(
                                stats != nullptr ? &per_sketch[i] : nullptr)
                          : sketches_[i].ExtractSpanningGraph(
                                /*threads=*/1,
                                stats != nullptr ? &per_sketch[i] : nullptr);
                  if (!span.ok()) {
                    status[i] = span.status();
                    continue;
                  }
                  decoded[i] = span->Edges();
                }
              });
  for (const Status& st : status) {
    if (!st.ok()) return st;
  }
  if (stats != nullptr) {
    *stats = ExtractStats();
    for (const auto& s : per_sketch) AccumulateExtractStats(s, stats);
  }
  Hypergraph h(n_);
  for (const auto& edges : decoded) {
    for (const auto& e : edges) h.AddEdge(e);
  }
  return h;
}

QueryResult<HyperVcUnionSnapshot> HyperVcQuerySketch::Query() const {
  ExtractStats stats;
  auto h = BuildUnionHypergraph(&stats);
  if (!h.ok()) return QueryResult<HyperVcUnionSnapshot>(h.status());
  return QueryResult<HyperVcUnionSnapshot>(
      HyperVcUnionSnapshot(std::move(*h), n_, params_.k), std::move(stats));
}

bool HyperVcQuerySketch::SnapshotDirty() const {
  for (const auto& sketch : sketches_) {
    if (sketch.SnapshotDirty()) return true;
  }
  return false;
}

Result<bool> HyperVcUnionSnapshot::Disconnects(
    const std::vector<VertexId>& s) const {
  auto distinct = NormalizeQuerySet(s, n_, k_);
  if (!distinct.ok()) return distinct.status();
  return !IsConnectedExcluding(h_, *distinct);
}

Status HyperVcQuerySketch::Finalize(ExtractStats* stats) {
  auto h = BuildUnionHypergraph(stats);
  if (!h.ok()) return h.status();
  h_ = std::move(*h);
  finalized_ = true;
  return Status::OK();
}

Result<bool> HyperVcQuerySketch::Disconnects(
    const std::vector<VertexId>& s) const {
  if (!finalized_) {
    return Status::FailedPrecondition("call Finalize() after the stream");
  }
  auto distinct = NormalizeQuerySet(s, n_, params_.k);
  if (!distinct.ok()) return distinct.status();
  return !IsConnectedExcluding(h_, *distinct);
}

Status HyperVcQuerySketch::MergeFrom(const HyperVcQuerySketch& other) {
  if (seed_ != other.seed_ || n_ != other.n_ ||
      params_.k != other.params_.k ||
      sketches_.size() != other.sketches_.size()) {
    return Status::InvalidArgument(
        "HyperVcQuerySketch::MergeFrom: seed/shape mismatch (different "
        "measurement)");
  }
  for (size_t i = 0; i < sketches_.size(); ++i) {
    if (sketches_[i].seed() != other.sketches_[i].seed() ||
        sketches_[i].max_rank() != other.sketches_[i].max_rank() ||
        sketches_[i].rounds() != other.sketches_[i].rounds() ||
        sketches_[i].MemoryBytes() != other.sketches_[i].MemoryBytes()) {
      return Status::InvalidArgument(
          "HyperVcQuerySketch::MergeFrom: seed/shape mismatch (different "
          "measurement)");
    }
  }
  for (size_t i = 0; i < sketches_.size(); ++i) {
    GMS_RETURN_IF_ERROR(sketches_[i].MergeFrom(other.sketches_[i]));
  }
  finalized_ = false;
  return Status::OK();
}

void HyperVcQuerySketch::Clear() {
  for (auto& sketch : sketches_) sketch.Clear();
  // Release the cached union hypergraph too: a cleared sketch that kept H
  // alive pinned O(kn polylog n) heap for the lifetime of the object.
  h_ = Hypergraph(n_);
  finalized_ = false;
}

void HyperVcQuerySketch::Serialize(std::vector<uint8_t>* out) const {
  wire::FrameBuilder fb(wire::FrameType::kHyperVcQuery, out);
  fb.writer().U64(n_);
  fb.writer().U64(max_rank());
  fb.writer().U64(params_.k);
  fb.writer().U64(sketches_.size());
  fb.writer().U64(seed_);
  ForestSketchParams resolved = params_.forest;
  resolved.rounds = sketches_[0].rounds();
  WriteForestParams(resolved, &fb.writer());
  fb.EndHeader();
  for (const auto& sketch : sketches_) sketch.AppendCells(&fb.writer());
  fb.Finish();
}

Result<HyperVcQuerySketch> HyperVcQuerySketch::Deserialize(
    std::span<const uint8_t> bytes) {
  auto frame = wire::ParseFrame(bytes, wire::FrameType::kHyperVcQuery);
  if (!frame.ok()) return frame.status();
  wire::Reader header(frame->header);
  uint64_t n = 0, max_rank = 0, k = 0, r = 0, seed = 0;
  ForestSketchParams forest;
  GMS_RETURN_IF_ERROR(header.U64(&n));
  GMS_RETURN_IF_ERROR(header.U64(&max_rank));
  GMS_RETURN_IF_ERROR(header.U64(&k));
  GMS_RETURN_IF_ERROR(header.U64(&r));
  GMS_RETURN_IF_ERROR(header.U64(&seed));
  GMS_RETURN_IF_ERROR(ReadForestParams(&header, &forest));
  GMS_RETURN_IF_ERROR(header.ExpectEnd());
  if (n < 1 || n > (uint64_t{1} << 32) || max_rank < 2 || max_rank > n ||
      k < 1 || k > n || r < 1 || r > (uint64_t{1} << 24) ||
      forest.rounds < 1) {
    return Status::InvalidArgument("wire: hyper-vc shape out of range");
  }
  // Same pre-construction guards as VcQuerySketch::Deserialize: bound the
  // n * R replay/index cost, then verify the payload against the
  // shape-implied size computed by replaying the seeded subsample draws.
  auto words = ForestStateWords(static_cast<size_t>(n),
                                static_cast<size_t>(max_rank), forest.config);
  if (!words.ok()) return words.status();
  if (static_cast<u128>(n) * r > kMaxDeserializeSubsampleDraws) {
    return Status::InvalidArgument(
        "wire: hyper-vc shape too large to reconstruct");
  }
  const std::vector<uint64_t> active_counts = KeptVertexCounts(
      seed, static_cast<size_t>(n), static_cast<size_t>(k),
      static_cast<size_t>(r));
  size_t offset = 0;
  for (uint64_t active : active_counts) {
    auto section = SkimForestCellSection(
        frame->payload.subspan(offset), active,
        static_cast<uint64_t>(forest.rounds), *words,
        forest.config.sparse_threshold);
    if (!section.ok()) return section.status();
    offset += *section;
  }
  if (offset != frame->payload.size()) {
    return Status::InvalidArgument(
        "wire: hyper-vc payload size disagrees with the header shape");
  }
  VcQueryParams params;
  params.k = static_cast<size_t>(k);
  params.explicit_r = static_cast<size_t>(r);
  params.forest = forest;
  try {
    HyperVcQuerySketch sketch(static_cast<size_t>(n),
                              static_cast<size_t>(max_rank), params, seed);
    wire::Reader payload(frame->payload);
    for (auto& layer : sketch.sketches_) {
      GMS_RETURN_IF_ERROR(layer.ReadCells(&payload));
    }
    GMS_RETURN_IF_ERROR(payload.ExpectEnd());
    return sketch;
  } catch (const std::bad_alloc&) {
    // Belt and braces: an in-cap shape can still exceed THIS machine.
    return Status::OutOfRange("wire: hyper-vc shape exhausts memory");
  }
}

size_t HyperVcQuerySketch::SpaceBytes() const {
  std::vector<uint8_t> frame;
  Serialize(&frame);
  return frame.size();
}

size_t HyperVcQuerySketch::MemoryBytes() const {
  size_t total = 0;
  for (const auto& sketch : sketches_) total += sketch.MemoryBytes();
  return total;
}

bool HyperVcQuerySketch::StateEquals(const HyperVcQuerySketch& other) const {
  if (sketches_.size() != other.sketches_.size()) return false;
  for (size_t i = 0; i < sketches_.size(); ++i) {
    if (!sketches_[i].StateEquals(other.sketches_[i])) return false;
  }
  return true;
}

}  // namespace gms
