#include "vertexconn/hyper_vc_query.h"

#include "graph/traversal.h"
#include "util/check.h"
#include "util/parallel.h"
#include "util/random.h"

namespace gms {

HyperVcQuerySketch::HyperVcQuerySketch(size_t n, size_t max_rank,
                                       const VcQueryParams& params,
                                       uint64_t seed)
    : n_(n), params_(params), h_(n) {
  GMS_CHECK(params.k >= 1);
  Rng rng(seed);
  size_t r_subgraphs = params.ResolveR(n);
  kept_.reserve(r_subgraphs);
  sketches_.reserve(r_subgraphs);
  for (size_t i = 0; i < r_subgraphs; ++i) {
    std::vector<bool> kept(n, false);
    for (VertexId v = 0; v < n; ++v) {
      kept[v] = rng.Bernoulli(1.0 / static_cast<double>(params.k));
    }
    kept_.push_back(kept);
    sketches_.emplace_back(n, max_rank, rng.Fork(), params.forest, &kept_[i]);
  }
}

void HyperVcQuerySketch::Update(const Hyperedge& e, int delta) {
  for (size_t i = 0; i < sketches_.size(); ++i) {
    bool all_kept = true;
    for (VertexId v : e) all_kept &= kept_[i][v];
    if (all_kept) sketches_[i].Update(e, delta);
  }
}

void HyperVcQuerySketch::Process(std::span<const StreamUpdate> updates) {
  if (sketches_.empty() || updates.empty()) return;
  // One encode + coordinate preparation per update, shared across the R
  // subsamples.
  const EdgeCodec& codec = sketches_[0].codec();
  std::vector<PreparedCoord> prepared(updates.size());
  for (size_t j = 0; j < updates.size(); ++j) {
    GMS_CHECK_MSG(updates[j].edge.size() <= codec.max_rank(),
                  "hyperedge exceeds max_rank");
    prepared[j] = PrepareCoord(codec.Encode(updates[j].edge));
  }
  ParallelFor(params_.threads, sketches_.size(),
              [&](size_t begin, size_t end) {
                for (size_t i = begin; i < end; ++i) {
                  const std::vector<bool>& kept = kept_[i];
                  for (size_t j = 0; j < updates.size(); ++j) {
                    const Hyperedge& e = updates[j].edge;
                    bool all_kept = true;
                    for (VertexId v : e) all_kept &= kept[v];
                    if (all_kept) {
                      sketches_[i].UpdatePrepared(e, prepared[j],
                                                  updates[j].delta);
                    }
                  }
                }
              });
}

void HyperVcQuerySketch::Process(const DynamicStream& stream) {
  Process(std::span<const StreamUpdate>(stream.updates()));
}

Status HyperVcQuerySketch::Finalize() {
  // R independent decodes fan out across the pool; H is assembled serially
  // in sketch order, so the union graph is deterministic.
  std::vector<std::vector<Hyperedge>> decoded(sketches_.size());
  std::vector<Status> status(sketches_.size());
  ParallelFor(params_.threads, sketches_.size(),
              [&](size_t begin, size_t end) {
                for (size_t i = begin; i < end; ++i) {
                  auto span = sketches_[i].ExtractSpanningGraph(/*threads=*/1);
                  if (!span.ok()) {
                    status[i] = span.status();
                    continue;
                  }
                  decoded[i] = span->Edges();
                }
              });
  for (const Status& st : status) {
    if (!st.ok()) return st;
  }
  Hypergraph h(n_);
  for (const auto& edges : decoded) {
    for (const auto& e : edges) h.AddEdge(e);
  }
  h_ = std::move(h);
  finalized_ = true;
  return Status::OK();
}

Result<bool> HyperVcQuerySketch::Disconnects(
    const std::vector<VertexId>& s) const {
  if (!finalized_) {
    return Status::FailedPrecondition("call Finalize() after the stream");
  }
  auto distinct = NormalizeQuerySet(s, n_, params_.k);
  if (!distinct.ok()) return distinct.status();
  return !IsConnectedExcluding(h_, *distinct);
}

size_t HyperVcQuerySketch::MemoryBytes() const {
  size_t total = 0;
  for (const auto& sketch : sketches_) total += sketch.MemoryBytes();
  return total;
}

bool HyperVcQuerySketch::StateEquals(const HyperVcQuerySketch& other) const {
  if (sketches_.size() != other.sketches_.size()) return false;
  for (size_t i = 0; i < sketches_.size(); ++i) {
    if (!sketches_[i].StateEquals(other.sketches_[i])) return false;
  }
  return true;
}

}  // namespace gms
