#include "vertexconn/hyper_vc_query.h"

#include "graph/traversal.h"
#include "util/check.h"
#include "util/random.h"

namespace gms {

HyperVcQuerySketch::HyperVcQuerySketch(size_t n, size_t max_rank,
                                       const VcQueryParams& params,
                                       uint64_t seed)
    : n_(n), params_(params), h_(n) {
  GMS_CHECK(params.k >= 1);
  Rng rng(seed);
  size_t r_subgraphs = params.ResolveR(n);
  kept_.reserve(r_subgraphs);
  sketches_.reserve(r_subgraphs);
  for (size_t i = 0; i < r_subgraphs; ++i) {
    std::vector<bool> kept(n, false);
    for (VertexId v = 0; v < n; ++v) {
      kept[v] = rng.Bernoulli(1.0 / static_cast<double>(params.k));
    }
    kept_.push_back(kept);
    sketches_.emplace_back(n, max_rank, rng.Fork(), params.forest, &kept_[i]);
  }
}

void HyperVcQuerySketch::Update(const Hyperedge& e, int delta) {
  for (size_t i = 0; i < sketches_.size(); ++i) {
    bool all_kept = true;
    for (VertexId v : e) all_kept &= kept_[i][v];
    if (all_kept) sketches_[i].Update(e, delta);
  }
}

void HyperVcQuerySketch::Process(const DynamicStream& stream) {
  for (const auto& u : stream) Update(u.edge, u.delta);
}

Status HyperVcQuerySketch::Finalize() {
  Hypergraph h(n_);
  for (const auto& sketch : sketches_) {
    auto span = sketch.ExtractSpanningGraph();
    if (!span.ok()) return span.status();
    for (const auto& e : span->Edges()) h.AddEdge(e);
  }
  h_ = std::move(h);
  finalized_ = true;
  return Status::OK();
}

Result<bool> HyperVcQuerySketch::Disconnects(
    const std::vector<VertexId>& s) const {
  if (!finalized_) {
    return Status::FailedPrecondition("call Finalize() after the stream");
  }
  if (s.size() > params_.k) {
    return Status::InvalidArgument("query set larger than the sketch's k");
  }
  return !IsConnectedExcluding(h_, s);
}

size_t HyperVcQuerySketch::MemoryBytes() const {
  size_t total = 0;
  for (const auto& sketch : sketches_) total += sketch.MemoryBytes();
  return total;
}

}  // namespace gms
