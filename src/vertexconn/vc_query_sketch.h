// Vertex-connectivity query sketches (Section 3.1, Theorem 4).
//
// For i = 1..R (paper: R = 16 k^2 ln n), G_i keeps each vertex with
// probability 1/k; the sketch maintains a spanning-forest sketch of each
// G_i (an edge enters sketch i iff both endpoints were kept). At query
// time H = T_1 u ... u T_R is assembled once, and by Lemma 3, for ANY set
// S of at most k vertices, H \ S is connected iff G \ S is connected whp.
// Total space O(kn polylog n): each G_i has ~n/k sketched vertices.
#ifndef GMS_VERTEXCONN_VC_QUERY_SKETCH_H_
#define GMS_VERTEXCONN_VC_QUERY_SKETCH_H_

#include <cstdint>
#include <span>
#include <vector>

#include "connectivity/spanning_forest_sketch.h"
#include "graph/graph.h"
#include "stream/stream.h"
#include "util/random.h"

namespace gms {

/// One subsample's kept-bitmap: n Bernoulli(1/k) draws from `rng`, in vertex
/// order. The draw order is wire contract -- a (seed, n, k, R) header
/// reconstructs the exact bitmaps by replaying R rounds of this followed by
/// one rng.Fork() each, so every caller (constructors AND deserializers)
/// must route through this helper.
std::vector<bool> DrawKeptBitmap(Rng& rng, size_t n, size_t k);

/// Total kept (vertex, subsample) pairs over R subsamples drawn from
/// `seed`, replaying the exact constructor draw order. O(n * r) time, O(n)
/// space: lets deserializers compute the shape-implied payload size of a
/// subsampled sketch WITHOUT constructing it.
uint64_t CountKeptVertices(uint64_t seed, size_t n, size_t k, size_t r);

/// As CountKeptVertices, but per subsample: entry i is the kept count of
/// subsample i's bitmap. Hybrid forest cell sections are variable-length,
/// so deserializers skim each subsample's section against ITS active count
/// instead of one total product.
std::vector<uint64_t> KeptVertexCounts(uint64_t seed, size_t n, size_t k,
                                       size_t r);

/// Deserialization cap on n * R for subsampled sketches. Reconstruction
/// replays one Bernoulli draw and allocates ~8 bytes of dense-index state
/// per (subsample, vertex) pair regardless of how many vertices were kept,
/// so this product -- not the payload size -- is what bounds a hostile
/// frame's cost. 2^31 pairs keeps the worst case at seconds of replay.
inline constexpr uint64_t kMaxDeserializeSubsampleDraws = uint64_t{1} << 31;

/// Validate a removal-query set: every id must be < n (InvalidArgument
/// otherwise), duplicates are dropped, and the DISTINCT count must be <= k.
/// Returns the deduplicated set. Shared by the graph and hypergraph
/// Theorem 4 query sketches.
Result<std::vector<VertexId>> NormalizeQuerySet(const std::vector<VertexId>& s,
                                                size_t n, size_t k);

/// Shared substrate for Theorems 4 and 8: R vertex-subsampled spanning-
/// forest sketches plus assembly of the union graph H.
class SubsampledForestUnion {
 public:
  /// keep probability 1/k; R independent subsamples. `engine` workers
  /// shard the R sketches for batched ingestion and union-graph extraction
  /// (each sketch is owned by exactly one worker; results are bit-identical
  /// to the serial path for every thread count and ingest mode).
  SubsampledForestUnion(size_t n, size_t k, size_t r_subgraphs, uint64_t seed,
                        const ForestSketchParams& params,
                        const EngineParams& engine = EngineParams());

  size_t n() const { return n_; }
  size_t k() const { return k_; }
  size_t R() const { return sketches_.size(); }
  size_t threads() const { return engine_.threads; }
  uint64_t seed() const { return seed_; }
  /// Resolved Borůvka rounds of the per-subsample forest sketches.
  int rounds() const { return sketches_[0].rounds(); }

  void Update(const Edge& e, int delta);

  /// Batched ingestion: each update's codec index is encoded once and
  /// fanned out to the sketches that kept both endpoints, with the R
  /// sketches sharded across the worker pool.
  void Process(std::span<const StreamUpdate> updates);
  void Process(const DynamicStream& stream);

  /// Gutter-driver hooks (stream/stream_driver.h). The shared (n, 2) codec
  /// lets readers prepare each update once for all R sketches.
  const EdgeCodec& codec() const { return sketches_[0].codec(); }
  /// Bit i = subsample i kept BOTH endpoints (the exact serial routing
  /// predicate, evaluated once at reader time and carried in the entry).
  uint64_t DriverRouteMask(const Hyperedge& e) const;
  /// Fan a vertex batch out to every subsample whose routing bit is set.
  /// An entry's bit i implies v was kept in subsample i, so the inner
  /// sketches' active-vertex CHECK holds by construction.
  void ApplyUpdateBatch(size_t thr_id, VertexId v,
                        std::span<const VertexUpdate> batch);
  /// Driver mode carries one routing bit per subsample; R > 64 falls back
  /// to the column path.
  bool DriverSupported() const { return sketches_.size() <= 64; }
  /// Route-word width for the shared ingestion plane (stream/
  /// ingest_plane.h): one packed bit per subsample.
  size_t DriverRouteBits() const { return sketches_.size(); }

  /// H = union of one extracted spanning forest per subsample; the R
  /// per-sketch extractions fan out across the pool (each worker reuses its
  /// thread-local extraction scratch across the sketches it owns), and H is
  /// assembled serially in sketch order (deterministic). When `stats` is
  /// non-null it receives the extraction-engine counters summed over all R
  /// extractions, in sketch order.
  Result<Graph> BuildUnionGraph(ExtractStats* stats = nullptr) const;

  /// Bit-identity of all per-sketch states (for the determinism suite).
  bool StateEquals(const SubsampledForestUnion& other) const;

  /// Serving hook (src/serve/): true iff any subsample sketch's measurement
  /// state changed since construction / the last Clear().
  bool SnapshotDirty() const;

  /// covered[v]: v was kept in at least one subsample (vertices never
  /// covered are invisible to H; with the paper's R this happens with
  /// probability <= n^{-(16k-1)}).
  const std::vector<bool>& covered() const { return covered_; }
  size_t NumUncovered() const;

  size_t MemoryBytes() const;

  /// Cell-wise field addition of another union of the SAME measurement
  /// (equal seed, n, k, R, and forest params -- the kept_ bitmaps then
  /// coincide by construction). Mismatches return InvalidArgument and leave
  /// the state untouched.
  Status MergeFrom(const SubsampledForestUnion& other);

  /// Zero every subsample sketch (the empty-stream measurement).
  void Clear();

  /// A union of the SAME measurement with zero state (the sharded-merge
  /// private clone); the parent's cells are never copied.
  SubsampledForestUnion CloneEmpty() const {
    return SubsampledForestUnion(*this, CloneEmptyTag{});
  }

  /// Raw cells of all R sketches, in order, for COMPOSITE frames; the
  /// container header's (seed, n, k, R, params) reconstructs every shape
  /// and kept_ bitmap.
  void AppendCells(wire::Writer* w) const;
  Status ReadCells(wire::Reader* r);

 private:
  SubsampledForestUnion(const SubsampledForestUnion& other, CloneEmptyTag);

  size_t n_;
  size_t k_;
  uint64_t seed_;
  EngineParams engine_;
  std::vector<std::vector<bool>> kept_;  // kept_[i][v]
  std::vector<bool> covered_;
  std::vector<SpanningForestSketch> sketches_;
};

struct VcQueryParams {
  size_t k = 2;  // max queried separator size
  /// Multiplier on the paper's R = 16 k^2 ln n (1.0 = paper constants;
  /// benchmarks sweep this to locate the empirical success threshold).
  double r_multiplier = 1.0;
  /// If nonzero, overrides R entirely.
  size_t explicit_r = 0;
  /// Worker threads + ingestion mode sharding the R sketches during
  /// Process/Finalize (see util/parallel.h; outputs are bit-identical for
  /// every setting).
  EngineParams engine;
  ForestSketchParams forest;

  size_t ResolveR(size_t n) const;

  class Builder;
};

/// Fluent construction: VcQueryParams::Builder().K(3).RMultiplier(0.5)
///     .Engine(...).Build(). Build() validates the VC knobs here and
/// funnels the embedded engine/forest params through the shared
/// ValidateEngineParams / ForestSketchParams::Builder validation.
class VcQueryParams::Builder {
 public:
  Builder() = default;
  /// Copy-with: seed the builder from existing params, override a few
  /// knobs, Build(). (Re-)validates everything, including untouched fields.
  explicit Builder(const VcQueryParams& from) : p_(from) {}

  Builder& K(size_t k) {
    p_.k = k;
    return *this;
  }
  Builder& RMultiplier(double r_multiplier) {
    p_.r_multiplier = r_multiplier;
    return *this;
  }
  Builder& ExplicitR(size_t r) {
    p_.explicit_r = r;
    return *this;
  }
  Builder& Engine(const EngineParams& engine) {
    p_.engine = engine;
    return *this;
  }
  Builder& Forest(const ForestSketchParams& forest) {
    p_.forest = forest;
    return *this;
  }
  /// Shortcuts into the embedded engine (the two knobs every thread-sweep
  /// test and bench overrides).
  Builder& Threads(size_t threads) {
    p_.engine.threads = threads;
    return *this;
  }
  Builder& Mode(IngestMode mode) {
    p_.engine.mode = mode;
    return *this;
  }
  VcQueryParams Build() const {
    GMS_CHECK_MSG(p_.k >= 1, "VcQueryParams: k must be >= 1");
    GMS_CHECK_MSG(p_.explicit_r > 0 || p_.r_multiplier > 0.0,
                  "VcQueryParams: r_multiplier must be positive unless "
                  "explicit_r overrides R");
    ValidateEngineParams(p_.engine);
    ForestSketchParams::Builder().Config(p_.forest.config)
        .Rounds(p_.forest.rounds)
        .Engine(p_.forest.engine)
        .Build();
    return p_;
  }

 private:
  VcQueryParams p_;
};

/// The value type VcQuerySketch::Query() returns: the assembled union graph
/// H plus the removal-query logic, detached from the sketch. Lemma 3: for
/// ANY S with |S| <= k, H \ S is connected iff G \ S is connected whp, so
/// every query this snapshot can answer is answered from H alone -- the
/// sketch can keep ingesting (or be merged, cleared, destroyed) without
/// invalidating a snapshot already handed out.
class VcUnionSnapshot {
 public:
  VcUnionSnapshot() = default;
  VcUnionSnapshot(Graph h, size_t n, size_t k)
      : h_(std::move(h)), n_(n), k_(k) {}

  /// Whether removing S disconnects the graph (Lemma 3 semantics: the
  /// surviving vertices fail to be mutually connected). S is deduplicated
  /// and range-checked: out-of-range vertex ids are InvalidArgument, and
  /// |S| counts DISTINCT vertices against k.
  Result<bool> Disconnects(const std::vector<VertexId>& s) const;

  /// kappa(G) >= t? Exact vertex connectivity of H, valid for t <= k + 1:
  /// kappa(H) >= t iff no (t-1)-subset disconnects H, and Lemma 3 covers
  /// every removal set of size <= k. t > k + 1 is InvalidArgument (the
  /// sketch was not built to certify that much connectivity).
  Result<bool> VertexConnectivityAtLeast(size_t t) const;

  const Graph& union_graph() const { return h_; }
  size_t n() const { return n_; }
  size_t k() const { return k_; }

 private:
  Graph h_;
  size_t n_ = 0;
  size_t k_ = 0;
};

/// Theorem 4: after one pass over a dynamic edge stream, answers "does
/// removing S (|S| <= k) disconnect the graph?" for any query set S chosen
/// AFTER the stream.
class VcQuerySketch {
 public:
  using Params = VcQueryParams;

  VcQuerySketch(size_t n, const Params& params, uint64_t seed);

  void Update(const Edge& e, int delta) { forests_.Update(e, delta); }
  void Process(std::span<const StreamUpdate> updates) {
    forests_.Process(updates);
  }
  void Process(const DynamicStream& stream) { forests_.Process(stream); }

  /// The unified non-destructive query: assemble H on a CONST sketch and
  /// return it as a detached snapshot (plus the extraction counters summed
  /// over the R per-subsample decodes). Query repeatedly on the snapshot;
  /// the sketch itself never changes, so ingestion can continue.
  QueryResult<VcUnionSnapshot> Query() const;

  /// Serving hook (src/serve/): true iff any subsample sketch's measurement
  /// state changed since construction / the last Clear().
  bool SnapshotDirty() const { return forests_.SnapshotDirty(); }

  /// Gutter-driver / ingest-plane hooks (stream/stream_driver.h,
  /// stream/ingest_plane.h), forwarded to the R-subsample union so the
  /// serving layer can register this sketch on a shared plane directly.
  const EdgeCodec& codec() const { return forests_.codec(); }
  uint64_t DriverRouteMask(const Hyperedge& e) const {
    return forests_.DriverRouteMask(e);
  }
  void ApplyUpdateBatch(size_t thr_id, VertexId v,
                        std::span<const VertexUpdate> batch) {
    forests_.ApplyUpdateBatch(thr_id, v, batch);
  }
  bool DriverSupported() const { return forests_.DriverSupported(); }
  size_t DriverRouteBits() const { return forests_.DriverRouteBits(); }

  /// Assemble H once; call after the stream ends, then query repeatedly.
  /// `stats`, when non-null, receives the extraction-engine counters summed
  /// over the R per-subsample decodes (the bench breakdown).
  [[deprecated(
      "mutating query surface: use Query() and the returned "
      "VcUnionSnapshot instead")]] Status
  Finalize(ExtractStats* stats = nullptr);

  /// Whether removing S disconnects the graph (Lemma 3 semantics: the
  /// surviving vertices fail to be mutually connected). Requires
  /// Finalize(). S is deduplicated and range-checked: out-of-range vertex
  /// ids are InvalidArgument, and |S| counts DISTINCT vertices against k.
  /// Legacy surface -- prefer Query().value().Disconnects(s).
  Result<bool> Disconnects(const std::vector<VertexId>& s) const;

  /// The assembled union graph H (valid after Finalize()). Legacy surface
  /// -- prefer Query().value().union_graph().
  const Graph& union_graph() const { return h_; }

  size_t n() const { return forests_.n(); }
  size_t R() const { return forests_.R(); }
  size_t k() const { return params_.k; }
  uint64_t seed() const { return seed_; }
  size_t MemoryBytes() const { return forests_.MemoryBytes(); }

  /// Cell-wise field addition of another sketch of the SAME measurement
  /// (equal seed, n, and params). Invalidates Finalize(); call it again
  /// after the last merge. Mismatches return InvalidArgument and leave the
  /// state untouched.
  Status MergeFrom(const VcQuerySketch& other);

  /// Zero every subsample sketch; invalidates Finalize().
  void Clear();

  /// A sketch of the SAME measurement with zero state (the sharded-merge /
  /// serving-delta clone); the parent's cells are never copied.
  VcQuerySketch CloneEmpty() const {
    return VcQuerySketch(*this, CloneEmptyTag{});
  }

  /// Append one wire frame (wire::FrameType::kVcQuery) to *out. The header
  /// reconstructs all R subsample shapes and kept-bitmaps from the seed;
  /// the payload concatenates the sketches' raw cells. The assembled union
  /// graph H does not travel (re-run Finalize() after Deserialize).
  void Serialize(std::vector<uint8_t>* out) const;

  /// Parse a frame produced by Serialize. Truncation, corruption, and shape
  /// mismatches return Status; never aborts.
  static Result<VcQuerySketch> Deserialize(std::span<const uint8_t> bytes);

  /// Measured serialized-frame size in bytes.
  size_t SpaceBytes() const;

  bool StateEquals(const VcQuerySketch& other) const {
    return forests_.StateEquals(other.forests_);
  }

 private:
  VcQuerySketch(const VcQuerySketch& other, CloneEmptyTag)
      : params_(other.params_),
        seed_(other.seed_),
        forests_(other.forests_.CloneEmpty()) {}

  VcQueryParams params_;
  uint64_t seed_;
  SubsampledForestUnion forests_;
  Graph h_;
  bool finalized_ = false;
};

}  // namespace gms

#endif  // GMS_VERTEXCONN_VC_QUERY_SKETCH_H_
