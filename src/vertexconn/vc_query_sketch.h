// Vertex-connectivity query sketches (Section 3.1, Theorem 4).
//
// For i = 1..R (paper: R = 16 k^2 ln n), G_i keeps each vertex with
// probability 1/k; the sketch maintains a spanning-forest sketch of each
// G_i (an edge enters sketch i iff both endpoints were kept). At query
// time H = T_1 u ... u T_R is assembled once, and by Lemma 3, for ANY set
// S of at most k vertices, H \ S is connected iff G \ S is connected whp.
// Total space O(kn polylog n): each G_i has ~n/k sketched vertices.
#ifndef GMS_VERTEXCONN_VC_QUERY_SKETCH_H_
#define GMS_VERTEXCONN_VC_QUERY_SKETCH_H_

#include <cstdint>
#include <vector>

#include "connectivity/spanning_forest_sketch.h"
#include "graph/graph.h"
#include "stream/stream.h"

namespace gms {

/// Shared substrate for Theorems 4 and 8: R vertex-subsampled spanning-
/// forest sketches plus assembly of the union graph H.
class SubsampledForestUnion {
 public:
  /// keep probability 1/k; R independent subsamples.
  SubsampledForestUnion(size_t n, size_t k, size_t r_subgraphs, uint64_t seed,
                        const ForestSketchParams& params);

  size_t n() const { return n_; }
  size_t k() const { return k_; }
  size_t R() const { return sketches_.size(); }

  void Update(const Edge& e, int delta);
  void Process(const DynamicStream& stream);

  /// H = union of one extracted spanning forest per subsample.
  Result<Graph> BuildUnionGraph() const;

  /// covered[v]: v was kept in at least one subsample (vertices never
  /// covered are invisible to H; with the paper's R this happens with
  /// probability <= n^{-(16k-1)}).
  const std::vector<bool>& covered() const { return covered_; }
  size_t NumUncovered() const;

  size_t MemoryBytes() const;

 private:
  size_t n_;
  size_t k_;
  std::vector<std::vector<bool>> kept_;  // kept_[i][v]
  std::vector<bool> covered_;
  std::vector<SpanningForestSketch> sketches_;
};

struct VcQueryParams {
  size_t k = 2;  // max queried separator size
  /// Multiplier on the paper's R = 16 k^2 ln n (1.0 = paper constants;
  /// benchmarks sweep this to locate the empirical success threshold).
  double r_multiplier = 1.0;
  /// If nonzero, overrides R entirely.
  size_t explicit_r = 0;
  ForestSketchParams forest;

  size_t ResolveR(size_t n) const;
};

/// Theorem 4: after one pass over a dynamic edge stream, answers "does
/// removing S (|S| <= k) disconnect the graph?" for any query set S chosen
/// AFTER the stream.
class VcQuerySketch {
 public:
  VcQuerySketch(size_t n, const VcQueryParams& params, uint64_t seed);

  void Update(const Edge& e, int delta) { forests_.Update(e, delta); }
  void Process(const DynamicStream& stream) { forests_.Process(stream); }

  /// Assemble H once; call after the stream ends, then query repeatedly.
  Status Finalize();

  /// Whether removing S disconnects the graph (Lemma 3 semantics: the
  /// surviving vertices fail to be mutually connected). Requires
  /// Finalize(); |S| must be <= k.
  Result<bool> Disconnects(const std::vector<VertexId>& s) const;

  /// The assembled union graph H (valid after Finalize()).
  const Graph& union_graph() const { return h_; }

  size_t R() const { return forests_.R(); }
  size_t k() const { return params_.k; }
  size_t MemoryBytes() const { return forests_.MemoryBytes(); }

 private:
  VcQueryParams params_;
  SubsampledForestUnion forests_;
  Graph h_;
  bool finalized_ = false;
};

}  // namespace gms

#endif  // GMS_VERTEXCONN_VC_QUERY_SKETCH_H_
