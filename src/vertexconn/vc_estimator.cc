#include "vertexconn/vc_estimator.h"

#include <algorithm>
#include <cmath>

#include "exact/vertex_connectivity.h"
#include "util/check.h"

namespace gms {

size_t VcEstimatorParams::ResolveR(size_t n) const {
  if (explicit_r > 0) return explicit_r;
  GMS_CHECK(epsilon > 0);
  double paper_r = 160.0 * static_cast<double>(k) * static_cast<double>(k) /
                   epsilon *
                   std::log(static_cast<double>(std::max<size_t>(n, 2)));
  size_t r = static_cast<size_t>(std::ceil(r_multiplier * paper_r));
  return std::max<size_t>(r, 1);
}

VcEstimator::VcEstimator(size_t n, const VcEstimatorParams& params,
                         uint64_t seed)
    : params_(params),
      forests_(n, params.k, params.ResolveR(n), seed, params.forest,
               params.engine) {}

Result<size_t> VcEstimator::EstimateKappa() const {
  auto h = forests_.BuildUnionGraph();
  if (!h.ok()) return h.status();
  return VertexConnectivity(*h);
}

Result<bool> VcEstimator::IsAtLeastK() const {
  auto h = forests_.BuildUnionGraph();
  if (!h.ok()) return h.status();
  return IsKVertexConnected(*h, params_.k);
}

}  // namespace gms
