#include "vertexconn/eppstein_baseline.h"

#include "exact/vertex_connectivity.h"
#include "util/check.h"

namespace gms {

EppsteinCertificate::EppsteinCertificate(size_t n, size_t k)
    : k_(k), cert_(n) {
  GMS_CHECK(k >= 1);
}

bool EppsteinCertificate::Insert(const Edge& e) {
  if (cert_.HasEdge(e)) return false;
  // Drop iff there are already k vertex-disjoint paths between the
  // endpoints among the stored edges.
  int64_t paths = VertexDisjointPaths(cert_, e.u(), e.v(),
                                      static_cast<int64_t>(k_));
  if (paths >= static_cast<int64_t>(k_)) {
    ++dropped_;
    return false;
  }
  cert_.AddEdge(e);
  return true;
}

void EppsteinCertificate::Delete(const Edge& e) { cert_.RemoveEdge(e); }

void EppsteinCertificate::Process(const DynamicStream& stream) {
  for (const auto& u : stream) {
    GMS_CHECK_MSG(u.edge.IsGraphEdge(), "baseline takes graph streams");
    if (u.delta > 0) {
      Insert(u.edge.AsEdge());
    } else {
      Delete(u.edge.AsEdge());
    }
  }
}

bool EppsteinCertificate::CertifiesKConnectivity() const {
  return IsKVertexConnected(cert_, k_);
}

size_t EppsteinCertificate::MemoryBytes() const {
  // Two directed adjacency entries per stored edge plus vertex headers.
  return cert_.NumEdges() * 2 * sizeof(VertexId) +
         cert_.NumVertices() * sizeof(void*);
}

}  // namespace gms
