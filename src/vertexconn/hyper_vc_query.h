// Hypergraph vertex-removal queries: the Section 4.1 remark made concrete.
//
// The paper notes that substituting the hypergraph spanning-graph sketch
// (Theorem 13) for Theorem 2 makes the Section 3 vertex-connectivity
// constructions "go through for hypergraphs unchanged". This class is that
// construction: R vertex-subsampled sub-hypergraphs G_i (a hyperedge
// belongs to G_i iff ALL its vertices were kept -- induced semantics), one
// spanning-graph sketch per G_i, and queries on the union H of the decoded
// spanning graphs: removing S (|S| <= k) disconnects G iff it disconnects
// H, whp (Lemma 3's proof is oblivious to edge cardinality).
//
// Note on estimation: only the QUERY structure generalizes cleanly. Under
// induced semantics a removed vertex kills whole hyperedges, so exact
// kappa becomes a colored-cut problem with no known max-flow formulation;
// exact ground truth is exponential (VertexConnectivityBrute) and the
// Theorem 8 postprocessing step would inherit that cost.
#ifndef GMS_VERTEXCONN_HYPER_VC_QUERY_H_
#define GMS_VERTEXCONN_HYPER_VC_QUERY_H_

#include <cstdint>
#include <span>
#include <vector>

#include "connectivity/spanning_forest_sketch.h"
#include "graph/hypergraph.h"
#include "stream/stream.h"
#include "vertexconn/vc_query_sketch.h"

namespace gms {

/// The value type HyperVcQuerySketch::Query() returns: the assembled union
/// hypergraph H plus the removal-query logic, detached from the sketch (see
/// VcUnionSnapshot; Lemma 3's proof is oblivious to edge cardinality).
/// There is no VertexConnectivityAtLeast here: under induced semantics
/// exact hypergraph kappa has no known max-flow formulation (header note).
class HyperVcUnionSnapshot {
 public:
  HyperVcUnionSnapshot() = default;
  HyperVcUnionSnapshot(Hypergraph h, size_t n, size_t k)
      : h_(std::move(h)), n_(n), k_(k) {}

  /// Does removing S (|S| <= k) disconnect the hypergraph? Induced
  /// semantics: hyperedges touching S are gone. S is deduplicated and
  /// range-checked like VcUnionSnapshot::Disconnects.
  Result<bool> Disconnects(const std::vector<VertexId>& s) const;

  const Hypergraph& union_graph() const { return h_; }
  size_t n() const { return n_; }
  size_t k() const { return k_; }

 private:
  Hypergraph h_;
  size_t n_ = 0;
  size_t k_ = 0;
};

class HyperVcQuerySketch {
 public:
  using Params = VcQueryParams;

  HyperVcQuerySketch(size_t n, size_t max_rank, const Params& params,
                     uint64_t seed);

  size_t n() const { return n_; }
  size_t k() const { return params_.k; }
  size_t R() const { return sketches_.size(); }
  size_t max_rank() const { return sketches_[0].max_rank(); }
  uint64_t seed() const { return seed_; }

  /// Linear update; the hyperedge is routed to every subsample that kept
  /// ALL of its vertices.
  void Update(const Hyperedge& e, int delta);

  /// Batched ingestion: one codec encode per update, R sketches sharded
  /// across params.engine.threads workers (bit-identical to the serial path).
  void Process(std::span<const StreamUpdate> updates);
  void Process(const DynamicStream& stream);

  /// Gutter-driver hooks (stream/stream_driver.h). Bit i = subsample i
  /// kept ALL endpoints (induced semantics, the exact serial predicate,
  /// evaluated once at reader time). R > 64 exceeds the entry's routing
  /// bits and falls back to the column path.
  const EdgeCodec& codec() const { return sketches_[0].codec(); }
  uint64_t DriverRouteMask(const Hyperedge& e) const;
  void ApplyUpdateBatch(size_t thr_id, VertexId v,
                        std::span<const VertexUpdate> batch);
  bool DriverSupported() const { return sketches_.size() <= 64; }
  /// Route-word width for the shared ingestion plane (stream/
  /// ingest_plane.h): one packed bit per subsample.
  size_t DriverRouteBits() const { return sketches_.size(); }

  /// The unified non-destructive query: assemble H on a CONST sketch and
  /// return it as a detached snapshot (plus the extraction counters summed
  /// over the R decodes). Query repeatedly on the snapshot; the sketch
  /// itself never changes, so ingestion can continue.
  QueryResult<HyperVcUnionSnapshot> Query() const;

  /// Serving hook (src/serve/): true iff any subsample sketch's measurement
  /// state changed since construction / the last Clear().
  bool SnapshotDirty() const;

  /// Assemble H = union of decoded spanning graphs; call once after the
  /// stream, then query repeatedly. `stats`, when non-null, receives the
  /// extraction-engine counters summed over the R decodes.
  [[deprecated(
      "mutating query surface: use Query() and the returned "
      "HyperVcUnionSnapshot instead")]] Status
  Finalize(ExtractStats* stats = nullptr);

  /// Does removing S (|S| <= k) disconnect the hypergraph? Uses induced
  /// semantics: hyperedges touching S are gone. S is deduplicated and
  /// range-checked (out-of-range ids are InvalidArgument; distinct count
  /// goes against k). Legacy surface -- prefer Query().value().
  Result<bool> Disconnects(const std::vector<VertexId>& s) const;

  const Hypergraph& union_graph() const { return h_; }
  size_t MemoryBytes() const;

  /// Bit-identity of all per-sketch states (for the determinism suite).
  bool StateEquals(const HyperVcQuerySketch& other) const;

  /// Cell-wise field addition of another sketch of the SAME measurement
  /// (equal seed, n, max_rank, k, R, and forest params). Invalidates
  /// Finalize(). Mismatches return InvalidArgument, state untouched.
  Status MergeFrom(const HyperVcQuerySketch& other);

  /// Zero every subsample sketch; invalidates Finalize().
  void Clear();

  /// A sketch of the SAME measurement with zero state (the sharded-merge
  /// private clone); the parent's cells are never copied.
  HyperVcQuerySketch CloneEmpty() const {
    return HyperVcQuerySketch(*this, CloneEmptyTag{});
  }

  /// Append one wire frame (wire::FrameType::kHyperVcQuery) to *out; the
  /// header reconstructs all shapes and kept-bitmaps from the seed.
  void Serialize(std::vector<uint8_t>* out) const;

  /// Parse a frame produced by Serialize. Truncation, corruption, and shape
  /// mismatches return Status; never aborts.
  static Result<HyperVcQuerySketch> Deserialize(
      std::span<const uint8_t> bytes);

  /// Measured serialized-frame size in bytes.
  size_t SpaceBytes() const;

 private:
  HyperVcQuerySketch(const HyperVcQuerySketch& other, CloneEmptyTag);

  /// Shared decode path of Query() and Finalize(): R parallel decodes, then
  /// a deterministic serial union.
  Result<Hypergraph> BuildUnionHypergraph(ExtractStats* stats) const;

  size_t n_;
  VcQueryParams params_;
  uint64_t seed_;
  std::vector<std::vector<bool>> kept_;
  std::vector<SpanningForestSketch> sketches_;
  Hypergraph h_;
  bool finalized_ = false;
};

}  // namespace gms

#endif  // GMS_VERTEXCONN_HYPER_VC_QUERY_H_
