#include "vertexconn/vc_query_sketch.h"

#include <algorithm>
#include <cmath>
#include <new>
#include <string>

#include "exact/vertex_connectivity.h"
#include "graph/traversal.h"
#include "stream/sharded_merge.h"
#include "stream/stream_driver.h"
#include "util/check.h"
#include "util/parallel.h"
#include "util/random.h"
#include "wire/wire.h"

namespace gms {

Result<std::vector<VertexId>> NormalizeQuerySet(const std::vector<VertexId>& s,
                                                size_t n, size_t k) {
  std::vector<VertexId> distinct;
  distinct.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    const VertexId v = s[i];
    if (v >= n) {
      // Cite the position in the CALLER'S vector, before dedup, so the
      // caller can index straight into what they passed.
      return Status::InvalidArgument(
          "query vertex id out of range at position " + std::to_string(i) +
          ": " + std::to_string(v) + " >= n=" + std::to_string(n));
    }
    if (std::find(distinct.begin(), distinct.end(), v) == distinct.end()) {
      distinct.push_back(v);
    }
  }
  if (distinct.size() > k) {
    return Status::InvalidArgument("query set larger than the sketch's k");
  }
  return distinct;
}

std::vector<bool> DrawKeptBitmap(Rng& rng, size_t n, size_t k) {
  std::vector<bool> kept(n, false);
  for (VertexId v = 0; v < n; ++v) {
    // Delete with probability 1 - 1/k, i.e. keep with probability 1/k.
    kept[v] = rng.Bernoulli(1.0 / static_cast<double>(k));
  }
  return kept;
}

uint64_t CountKeptVertices(uint64_t seed, size_t n, size_t k, size_t r) {
  uint64_t total = 0;
  for (uint64_t c : KeptVertexCounts(seed, n, k, r)) total += c;
  return total;
}

std::vector<uint64_t> KeptVertexCounts(uint64_t seed, size_t n, size_t k,
                                       size_t r) {
  Rng rng(seed);
  std::vector<uint64_t> counts;
  counts.reserve(r);
  for (size_t i = 0; i < r; ++i) {
    const std::vector<bool> kept = DrawKeptBitmap(rng, n, k);
    uint64_t total = 0;
    for (bool b : kept) total += b ? 1 : 0;
    counts.push_back(total);
    rng.Fork();  // consumed by the sketch seed in the constructor replay
  }
  return counts;
}

SubsampledForestUnion::SubsampledForestUnion(size_t n, size_t k,
                                             size_t r_subgraphs, uint64_t seed,
                                             const ForestSketchParams& params,
                                             const EngineParams& engine)
    : n_(n), k_(k), seed_(seed), engine_(engine), covered_(n, false) {
  GMS_CHECK(k >= 1);
  GMS_CHECK(r_subgraphs >= 1);
  Rng rng(seed);
  kept_.reserve(r_subgraphs);
  sketches_.reserve(r_subgraphs);
  for (size_t i = 0; i < r_subgraphs; ++i) {
    kept_.push_back(DrawKeptBitmap(rng, n, k));
    for (VertexId v = 0; v < n; ++v) {
      if (kept_[i][v]) covered_[v] = true;
    }
    sketches_.emplace_back(n, /*max_rank=*/2, rng.Fork(), params, &kept_[i]);
  }
}

SubsampledForestUnion::SubsampledForestUnion(const SubsampledForestUnion& other,
                                             CloneEmptyTag)
    : n_(other.n_),
      k_(other.k_),
      seed_(other.seed_),
      engine_(other.engine_),
      kept_(other.kept_),
      covered_(other.covered_) {
  sketches_.reserve(other.sketches_.size());
  for (const auto& sketch : other.sketches_) {
    sketches_.push_back(sketch.CloneEmpty());
  }
}

void SubsampledForestUnion::Update(const Edge& e, int delta) {
  Hyperedge he(e);
  for (size_t i = 0; i < sketches_.size(); ++i) {
    if (kept_[i][e.u()] && kept_[i][e.v()]) {
      sketches_[i].Update(he, delta);
    }
  }
}

uint64_t SubsampledForestUnion::DriverRouteMask(const Hyperedge& e) const {
  const size_t r = std::min<size_t>(sketches_.size(), 64);
  uint64_t mask = 0;
  for (size_t i = 0; i < r; ++i) {
    if (kept_[i][e[0]] && kept_[i][e[1]]) mask |= uint64_t{1} << i;
  }
  return mask;
}

void SubsampledForestUnion::ApplyUpdateBatch(
    size_t thr_id, VertexId v, std::span<const VertexUpdate> batch) {
  std::vector<VertexUpdate> routed;
  routed.reserve(batch.size());
  for (size_t i = 0; i < sketches_.size(); ++i) {
    const uint64_t bit = uint64_t{1} << i;
    routed.clear();
    for (const VertexUpdate& u : batch) {
      if (u.route & bit) routed.push_back(u);
    }
    if (!routed.empty()) {
      sketches_[i].ApplyUpdateBatch(thr_id, v, routed);
    }
  }
}

void SubsampledForestUnion::Process(std::span<const StreamUpdate> updates) {
  if (sketches_.empty() || updates.empty()) return;
  if (DriverSupported() && UseGutterDriver(engine_, updates.size())) {
    DriveStream(this, updates, DriverParamsFromEngine(engine_));
    return;
  }
  if (UseShardedMerge(engine_, updates.size())) {
    ShardedMergeIngest(this, updates,
                       ShardedMergeShards(engine_.threads, updates.size()));
    return;
  }
  // Encode and prepare once per update: every subsample shares the same
  // (n, 2) codec, and the key fold / exponent reduction are shape-
  // independent, so none of the per-key arithmetic is re-derived R times.
  const EdgeCodec& codec = sketches_[0].codec();
  std::vector<PreparedCoord> prepared(updates.size());
  for (size_t j = 0; j < updates.size(); ++j) {
    GMS_CHECK_MSG(updates[j].edge.IsGraphEdge(),
                  "vertex-connectivity sketches take graph streams");
    prepared[j] = PrepareCoord(codec.Encode(updates[j].edge));
  }
  // Shard the R independent sketches: each is owned by exactly one worker
  // and sees its updates in stream order, so the result is bit-identical
  // to the serial path.
  ParallelFor(engine_.threads, sketches_.size(),
              [&](size_t begin, size_t end) {
    std::vector<uint32_t> hits;
    for (size_t i = begin; i < end; ++i) {
      const std::vector<bool>& kept = kept_[i];
      // Collect this subsample's surviving updates first (~1/k^2 of the
      // stream), then ingest with a prefetch lookahead measured in actual
      // work items, so each sketch update's cold cells are in flight well
      // before its turn.
      hits.clear();
      for (size_t j = 0; j < updates.size(); ++j) {
        const Hyperedge& e = updates[j].edge;
        if (kept[e[0]] && kept[e[1]]) hits.push_back(static_cast<uint32_t>(j));
      }
      constexpr size_t kPrefetchAhead = 8;
      for (size_t h = 0; h < hits.size(); ++h) {
        if (h + kPrefetchAhead < hits.size()) {
          const size_t jp = hits[h + kPrefetchAhead];
          sketches_[i].PrefetchPrepared(updates[jp].edge, prepared[jp]);
        }
        const size_t j = hits[h];
        sketches_[i].UpdatePrepared(updates[j].edge, prepared[j],
                                    updates[j].delta);
      }
    }
  });
}

void SubsampledForestUnion::Process(const DynamicStream& stream) {
  Process(std::span<const StreamUpdate>(stream.updates()));
}

Result<Graph> SubsampledForestUnion::BuildUnionGraph(
    ExtractStats* stats) const {
  // Fan the R independent extractions out across the pool; assemble H
  // serially in sketch order (Graph equality is order-insensitive, but a
  // fixed merge order also keeps error propagation deterministic). Each
  // worker runs its sketches' decodes serially, so it reuses one
  // thread-local extraction scratch for all of them.
  std::vector<std::vector<Hyperedge>> forest_edges(sketches_.size());
  std::vector<Status> status(sketches_.size());
  std::vector<ExtractStats> per_sketch(stats != nullptr ? sketches_.size()
                                                        : 0);
  ParallelFor(engine_.threads, sketches_.size(),
              [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      // All-sparse forests decode exactly from their buffers alone --
      // skip the whole Borůvka loop (stats count the skip).
      auto forest =
          sketches_[i].AllSparse()
              ? sketches_[i].ExtractSparseExact(
                    stats != nullptr ? &per_sketch[i] : nullptr)
              : sketches_[i].ExtractSpanningGraph(
                    /*threads=*/1, stats != nullptr ? &per_sketch[i] : nullptr);
      if (!forest.ok()) {
        status[i] = forest.status();
        continue;
      }
      forest_edges[i] = forest->Edges();
    }
  });
  for (const Status& st : status) {
    if (!st.ok()) return st;
  }
  if (stats != nullptr) {
    *stats = ExtractStats();
    for (const auto& s : per_sketch) AccumulateExtractStats(s, stats);
  }
  Graph h(n_);
  for (const auto& edges : forest_edges) {
    for (const auto& e : edges) h.AddEdge(e.AsEdge());
  }
  return h;
}

bool SubsampledForestUnion::StateEquals(
    const SubsampledForestUnion& other) const {
  if (sketches_.size() != other.sketches_.size()) return false;
  for (size_t i = 0; i < sketches_.size(); ++i) {
    if (!sketches_[i].StateEquals(other.sketches_[i])) return false;
  }
  return true;
}

bool SubsampledForestUnion::SnapshotDirty() const {
  for (const auto& sketch : sketches_) {
    if (sketch.SnapshotDirty()) return true;
  }
  return false;
}

size_t SubsampledForestUnion::NumUncovered() const {
  size_t count = 0;
  for (bool c : covered_) count += c ? 0 : 1;
  return count;
}

size_t SubsampledForestUnion::MemoryBytes() const {
  size_t total = 0;
  for (const auto& sketch : sketches_) total += sketch.MemoryBytes();
  return total;
}

Status SubsampledForestUnion::MergeFrom(const SubsampledForestUnion& other) {
  if (seed_ != other.seed_ || n_ != other.n_ || k_ != other.k_ ||
      sketches_.size() != other.sketches_.size()) {
    return Status::InvalidArgument(
        "SubsampledForestUnion::MergeFrom: seed/shape mismatch (different "
        "measurement)");
  }
  // Equal (seed, n, k, R) pins the kept_ bitmaps; validate the per-sketch
  // geometry BEFORE mutating anything so a forest-params mismatch leaves
  // the whole union untouched.
  for (size_t i = 0; i < sketches_.size(); ++i) {
    if (sketches_[i].seed() != other.sketches_[i].seed() ||
        sketches_[i].rounds() != other.sketches_[i].rounds() ||
        sketches_[i].MemoryBytes() != other.sketches_[i].MemoryBytes()) {
      return Status::InvalidArgument(
          "SubsampledForestUnion::MergeFrom: seed/shape mismatch (different "
          "measurement)");
    }
  }
  for (size_t i = 0; i < sketches_.size(); ++i) {
    GMS_RETURN_IF_ERROR(sketches_[i].MergeFrom(other.sketches_[i]));
  }
  return Status::OK();
}

void SubsampledForestUnion::Clear() {
  for (auto& sketch : sketches_) sketch.Clear();
}

void SubsampledForestUnion::AppendCells(wire::Writer* w) const {
  for (const auto& sketch : sketches_) sketch.AppendCells(w);
}

Status SubsampledForestUnion::ReadCells(wire::Reader* r) {
  for (auto& sketch : sketches_) {
    GMS_RETURN_IF_ERROR(sketch.ReadCells(r));
  }
  return Status::OK();
}

size_t VcQueryParams::ResolveR(size_t n) const {
  if (explicit_r > 0) return explicit_r;
  double paper_r = 16.0 * static_cast<double>(k) * static_cast<double>(k) *
                   std::log(static_cast<double>(std::max<size_t>(n, 2)));
  size_t r = static_cast<size_t>(std::ceil(r_multiplier * paper_r));
  return std::max<size_t>(r, 1);
}

VcQuerySketch::VcQuerySketch(size_t n, const Params& params, uint64_t seed)
    : params_(params),
      seed_(seed),
      forests_(n, params.k, params.ResolveR(n), seed, params.forest,
               params.engine) {}

Result<bool> VcUnionSnapshot::Disconnects(
    const std::vector<VertexId>& s) const {
  auto distinct = NormalizeQuerySet(s, n_, k_);
  if (!distinct.ok()) return distinct.status();
  return !IsConnectedExcluding(h_, *distinct);
}

Result<bool> VcUnionSnapshot::VertexConnectivityAtLeast(size_t t) const {
  if (t == 0) return true;
  if (t > k_ + 1) {
    return Status::InvalidArgument(
        "VertexConnectivityAtLeast: t exceeds the sketch's k + 1 (Lemma 3 "
        "only covers removal sets up to k)");
  }
  return IsKVertexConnected(h_, t);
}

QueryResult<VcUnionSnapshot> VcQuerySketch::Query() const {
  ExtractStats stats;
  auto h = forests_.BuildUnionGraph(&stats);
  if (!h.ok()) return QueryResult<VcUnionSnapshot>(h.status());
  return QueryResult<VcUnionSnapshot>(
      VcUnionSnapshot(std::move(*h), forests_.n(), params_.k),
      std::move(stats));
}

Status VcQuerySketch::Finalize(ExtractStats* stats) {
  auto h = forests_.BuildUnionGraph(stats);
  if (!h.ok()) return h.status();
  h_ = std::move(*h);
  finalized_ = true;
  return Status::OK();
}

Status VcQuerySketch::MergeFrom(const VcQuerySketch& other) {
  if (params_.k != other.params_.k || R() != other.R()) {
    return Status::InvalidArgument(
        "VcQuerySketch::MergeFrom: seed/shape mismatch (different "
        "measurement)");
  }
  GMS_RETURN_IF_ERROR(forests_.MergeFrom(other.forests_));
  finalized_ = false;
  return Status::OK();
}

void VcQuerySketch::Clear() {
  forests_.Clear();
  // Release the cached union graph too: it can be megabytes at bench scale,
  // and a cleared sketch holding a stale H both wastes that memory and
  // risks a later accessor reading pre-Clear answers.
  h_ = Graph();
  finalized_ = false;
}

void VcQuerySketch::Serialize(std::vector<uint8_t>* out) const {
  wire::FrameBuilder fb(wire::FrameType::kVcQuery, out);
  fb.writer().U64(forests_.n());
  fb.writer().U64(params_.k);
  // R travels resolved so r_multiplier never has to round-trip a double.
  fb.writer().U64(forests_.R());
  fb.writer().U64(seed_);
  ForestSketchParams resolved = params_.forest;
  resolved.rounds = forests_.rounds();
  WriteForestParams(resolved, &fb.writer());
  fb.EndHeader();
  forests_.AppendCells(&fb.writer());
  fb.Finish();
}

Result<VcQuerySketch> VcQuerySketch::Deserialize(
    std::span<const uint8_t> bytes) {
  auto frame = wire::ParseFrame(bytes, wire::FrameType::kVcQuery);
  if (!frame.ok()) return frame.status();
  wire::Reader header(frame->header);
  uint64_t n = 0, k = 0, r = 0, seed = 0;
  ForestSketchParams forest;
  GMS_RETURN_IF_ERROR(header.U64(&n));
  GMS_RETURN_IF_ERROR(header.U64(&k));
  GMS_RETURN_IF_ERROR(header.U64(&r));
  GMS_RETURN_IF_ERROR(header.U64(&seed));
  GMS_RETURN_IF_ERROR(ReadForestParams(&header, &forest));
  GMS_RETURN_IF_ERROR(header.ExpectEnd());
  if (n < 1 || n > (uint64_t{1} << 32) || k < 1 || k > n || r < 1 ||
      r > (uint64_t{1} << 24) || forest.rounds < 1) {
    return Status::InvalidArgument("wire: vc-query shape out of range");
  }
  // Reconstruction cost scales with n * R (index state + bitmap replay per
  // subsample) no matter how small the payload is, so bound the product
  // first, then verify the payload equals the shape-implied size by
  // replaying the seeded subsample draws -- all before constructing.
  auto words = ForestStateWords(static_cast<size_t>(n), /*max_rank=*/2,
                                forest.config);
  if (!words.ok()) return words.status();
  if (static_cast<u128>(n) * r > kMaxDeserializeSubsampleDraws) {
    return Status::InvalidArgument(
        "wire: vc-query shape too large to reconstruct");
  }
  const std::vector<uint64_t> active_counts = KeptVertexCounts(
      seed, static_cast<size_t>(n), static_cast<size_t>(k),
      static_cast<size_t>(r));
  size_t offset = 0;
  for (uint64_t active : active_counts) {
    auto section = SkimForestCellSection(
        frame->payload.subspan(offset), active,
        static_cast<uint64_t>(forest.rounds), *words,
        forest.config.sparse_threshold);
    if (!section.ok()) return section.status();
    offset += *section;
  }
  if (offset != frame->payload.size()) {
    return Status::InvalidArgument(
        "wire: vc-query payload size disagrees with the header shape");
  }
  VcQueryParams params;
  params.k = static_cast<size_t>(k);
  params.explicit_r = static_cast<size_t>(r);
  params.forest = forest;
  try {
    VcQuerySketch sketch(static_cast<size_t>(n), params, seed);
    wire::Reader payload(frame->payload);
    GMS_RETURN_IF_ERROR(sketch.forests_.ReadCells(&payload));
    GMS_RETURN_IF_ERROR(payload.ExpectEnd());
    return sketch;
  } catch (const std::bad_alloc&) {
    // Belt and braces: an in-cap shape can still exceed THIS machine.
    return Status::OutOfRange("wire: vc-query shape exhausts memory");
  }
}

size_t VcQuerySketch::SpaceBytes() const {
  std::vector<uint8_t> frame;
  Serialize(&frame);
  return frame.size();
}

Result<bool> VcQuerySketch::Disconnects(const std::vector<VertexId>& s) const {
  if (!finalized_) {
    return Status::FailedPrecondition("call Finalize() after the stream");
  }
  auto distinct = NormalizeQuerySet(s, forests_.n(), params_.k);
  if (!distinct.ok()) return distinct.status();
  return !IsConnectedExcluding(h_, *distinct);
}

}  // namespace gms
