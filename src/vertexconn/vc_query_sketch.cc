#include "vertexconn/vc_query_sketch.h"

#include <algorithm>
#include <cmath>

#include "graph/traversal.h"
#include "util/check.h"
#include "util/parallel.h"
#include "util/random.h"

namespace gms {

Result<std::vector<VertexId>> NormalizeQuerySet(const std::vector<VertexId>& s,
                                                size_t n, size_t k) {
  std::vector<VertexId> distinct;
  distinct.reserve(s.size());
  for (VertexId v : s) {
    if (v >= n) {
      return Status::InvalidArgument("query vertex id out of range");
    }
    if (std::find(distinct.begin(), distinct.end(), v) == distinct.end()) {
      distinct.push_back(v);
    }
  }
  if (distinct.size() > k) {
    return Status::InvalidArgument("query set larger than the sketch's k");
  }
  return distinct;
}

SubsampledForestUnion::SubsampledForestUnion(size_t n, size_t k,
                                             size_t r_subgraphs, uint64_t seed,
                                             const ForestSketchParams& params,
                                             size_t threads)
    : n_(n), k_(k), threads_(threads), covered_(n, false) {
  GMS_CHECK(k >= 1);
  GMS_CHECK(r_subgraphs >= 1);
  Rng rng(seed);
  kept_.reserve(r_subgraphs);
  sketches_.reserve(r_subgraphs);
  for (size_t i = 0; i < r_subgraphs; ++i) {
    std::vector<bool> kept(n, false);
    for (VertexId v = 0; v < n; ++v) {
      // Delete with probability 1 - 1/k, i.e. keep with probability 1/k.
      if (rng.Bernoulli(1.0 / static_cast<double>(k))) {
        kept[v] = true;
        covered_[v] = true;
      }
    }
    kept_.push_back(kept);
    sketches_.emplace_back(n, /*max_rank=*/2, rng.Fork(), params, &kept_[i]);
  }
}

void SubsampledForestUnion::Update(const Edge& e, int delta) {
  Hyperedge he(e);
  for (size_t i = 0; i < sketches_.size(); ++i) {
    if (kept_[i][e.u()] && kept_[i][e.v()]) {
      sketches_[i].Update(he, delta);
    }
  }
}

void SubsampledForestUnion::Process(std::span<const StreamUpdate> updates) {
  if (sketches_.empty() || updates.empty()) return;
  // Encode and prepare once per update: every subsample shares the same
  // (n, 2) codec, and the key fold / exponent reduction are shape-
  // independent, so none of the per-key arithmetic is re-derived R times.
  const EdgeCodec& codec = sketches_[0].codec();
  std::vector<PreparedCoord> prepared(updates.size());
  for (size_t j = 0; j < updates.size(); ++j) {
    GMS_CHECK_MSG(updates[j].edge.IsGraphEdge(),
                  "vertex-connectivity sketches take graph streams");
    prepared[j] = PrepareCoord(codec.Encode(updates[j].edge));
  }
  // Shard the R independent sketches: each is owned by exactly one worker
  // and sees its updates in stream order, so the result is bit-identical
  // to the serial path.
  ParallelFor(threads_, sketches_.size(), [&](size_t begin, size_t end) {
    std::vector<uint32_t> hits;
    for (size_t i = begin; i < end; ++i) {
      const std::vector<bool>& kept = kept_[i];
      // Collect this subsample's surviving updates first (~1/k^2 of the
      // stream), then ingest with a prefetch lookahead measured in actual
      // work items, so each sketch update's cold cells are in flight well
      // before its turn.
      hits.clear();
      for (size_t j = 0; j < updates.size(); ++j) {
        const Hyperedge& e = updates[j].edge;
        if (kept[e[0]] && kept[e[1]]) hits.push_back(static_cast<uint32_t>(j));
      }
      constexpr size_t kPrefetchAhead = 8;
      for (size_t h = 0; h < hits.size(); ++h) {
        if (h + kPrefetchAhead < hits.size()) {
          const size_t jp = hits[h + kPrefetchAhead];
          sketches_[i].PrefetchPrepared(updates[jp].edge, prepared[jp]);
        }
        const size_t j = hits[h];
        sketches_[i].UpdatePrepared(updates[j].edge, prepared[j],
                                    updates[j].delta);
      }
    }
  });
}

void SubsampledForestUnion::Process(const DynamicStream& stream) {
  Process(std::span<const StreamUpdate>(stream.updates()));
}

Result<Graph> SubsampledForestUnion::BuildUnionGraph() const {
  // Fan the R independent extractions out across the pool; assemble H
  // serially in sketch order (Graph equality is order-insensitive, but a
  // fixed merge order also keeps error propagation deterministic).
  std::vector<std::vector<Hyperedge>> forest_edges(sketches_.size());
  std::vector<Status> status(sketches_.size());
  ParallelFor(threads_, sketches_.size(), [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      auto forest = sketches_[i].ExtractSpanningGraph(/*threads=*/1);
      if (!forest.ok()) {
        status[i] = forest.status();
        continue;
      }
      forest_edges[i] = forest->Edges();
    }
  });
  for (const Status& st : status) {
    if (!st.ok()) return st;
  }
  Graph h(n_);
  for (const auto& edges : forest_edges) {
    for (const auto& e : edges) h.AddEdge(e.AsEdge());
  }
  return h;
}

bool SubsampledForestUnion::StateEquals(
    const SubsampledForestUnion& other) const {
  if (sketches_.size() != other.sketches_.size()) return false;
  for (size_t i = 0; i < sketches_.size(); ++i) {
    if (!sketches_[i].StateEquals(other.sketches_[i])) return false;
  }
  return true;
}

size_t SubsampledForestUnion::NumUncovered() const {
  size_t count = 0;
  for (bool c : covered_) count += c ? 0 : 1;
  return count;
}

size_t SubsampledForestUnion::MemoryBytes() const {
  size_t total = 0;
  for (const auto& sketch : sketches_) total += sketch.MemoryBytes();
  return total;
}

size_t VcQueryParams::ResolveR(size_t n) const {
  if (explicit_r > 0) return explicit_r;
  double paper_r = 16.0 * static_cast<double>(k) * static_cast<double>(k) *
                   std::log(static_cast<double>(std::max<size_t>(n, 2)));
  size_t r = static_cast<size_t>(std::ceil(r_multiplier * paper_r));
  return std::max<size_t>(r, 1);
}

VcQuerySketch::VcQuerySketch(size_t n, const VcQueryParams& params,
                             uint64_t seed)
    : params_(params),
      forests_(n, params.k, params.ResolveR(n), seed, params.forest,
               params.threads) {}

Status VcQuerySketch::Finalize() {
  auto h = forests_.BuildUnionGraph();
  if (!h.ok()) return h.status();
  h_ = std::move(*h);
  finalized_ = true;
  return Status::OK();
}

Result<bool> VcQuerySketch::Disconnects(const std::vector<VertexId>& s) const {
  if (!finalized_) {
    return Status::FailedPrecondition("call Finalize() after the stream");
  }
  auto distinct = NormalizeQuerySet(s, forests_.n(), params_.k);
  if (!distinct.ok()) return distinct.status();
  return !IsConnectedExcluding(h_, *distinct);
}

}  // namespace gms
