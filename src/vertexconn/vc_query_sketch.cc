#include "vertexconn/vc_query_sketch.h"

#include <cmath>

#include "graph/traversal.h"
#include "util/check.h"
#include "util/random.h"

namespace gms {

SubsampledForestUnion::SubsampledForestUnion(size_t n, size_t k,
                                             size_t r_subgraphs, uint64_t seed,
                                             const ForestSketchParams& params)
    : n_(n), k_(k), covered_(n, false) {
  GMS_CHECK(k >= 1);
  GMS_CHECK(r_subgraphs >= 1);
  Rng rng(seed);
  kept_.reserve(r_subgraphs);
  sketches_.reserve(r_subgraphs);
  for (size_t i = 0; i < r_subgraphs; ++i) {
    std::vector<bool> kept(n, false);
    for (VertexId v = 0; v < n; ++v) {
      // Delete with probability 1 - 1/k, i.e. keep with probability 1/k.
      if (rng.Bernoulli(1.0 / static_cast<double>(k))) {
        kept[v] = true;
        covered_[v] = true;
      }
    }
    kept_.push_back(kept);
    sketches_.emplace_back(n, /*max_rank=*/2, rng.Fork(), params, &kept_[i]);
  }
}

void SubsampledForestUnion::Update(const Edge& e, int delta) {
  Hyperedge he(e);
  for (size_t i = 0; i < sketches_.size(); ++i) {
    if (kept_[i][e.u()] && kept_[i][e.v()]) {
      sketches_[i].Update(he, delta);
    }
  }
}

void SubsampledForestUnion::Process(const DynamicStream& stream) {
  for (const auto& u : stream) {
    GMS_CHECK_MSG(u.edge.IsGraphEdge(),
                  "vertex-connectivity sketches take graph streams");
    Update(u.edge.AsEdge(), u.delta);
  }
}

Result<Graph> SubsampledForestUnion::BuildUnionGraph() const {
  Graph h(n_);
  for (const auto& sketch : sketches_) {
    auto forest = sketch.ExtractSpanningGraph();
    if (!forest.ok()) return forest.status();
    for (const auto& e : forest->Edges()) h.AddEdge(e.AsEdge());
  }
  return h;
}

size_t SubsampledForestUnion::NumUncovered() const {
  size_t count = 0;
  for (bool c : covered_) count += c ? 0 : 1;
  return count;
}

size_t SubsampledForestUnion::MemoryBytes() const {
  size_t total = 0;
  for (const auto& sketch : sketches_) total += sketch.MemoryBytes();
  return total;
}

size_t VcQueryParams::ResolveR(size_t n) const {
  if (explicit_r > 0) return explicit_r;
  double paper_r = 16.0 * static_cast<double>(k) * static_cast<double>(k) *
                   std::log(static_cast<double>(std::max<size_t>(n, 2)));
  size_t r = static_cast<size_t>(std::ceil(r_multiplier * paper_r));
  return std::max<size_t>(r, 1);
}

VcQuerySketch::VcQuerySketch(size_t n, const VcQueryParams& params,
                             uint64_t seed)
    : params_(params),
      forests_(n, params.k, params.ResolveR(n), seed, params.forest) {}

Status VcQuerySketch::Finalize() {
  auto h = forests_.BuildUnionGraph();
  if (!h.ok()) return h.status();
  h_ = std::move(*h);
  finalized_ = true;
  return Status::OK();
}

Result<bool> VcQuerySketch::Disconnects(const std::vector<VertexId>& s) const {
  if (!finalized_) {
    return Status::FailedPrecondition("call Finalize() after the stream");
  }
  if (s.size() > params_.k) {
    return Status::InvalidArgument("query set larger than the sketch's k");
  }
  return !IsConnectedExcluding(h_, s);
}

}  // namespace gms
