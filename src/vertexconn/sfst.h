// Scan-first search trees (Appendix A): the offline algorithm, plus a
// validity checker. Cheriyan-Kao-Thurimella show unions of k SFSTs certify
// k-vertex-connectivity; Theorem 21 proves no small-space stream algorithm
// can construct one, which is why Section 3 abandons this route.
#ifndef GMS_VERTEXCONN_SFST_H_
#define GMS_VERTEXCONN_SFST_H_

#include <cstdint>

#include "graph/graph.h"

namespace gms {

/// Offline scan-first search from `root` (seeded arbitrary choices): scan a
/// marked-but-unscanned vertex, adding its edges to UNMARKED neighbours and
/// marking them, until none remain. Returns the tree of the root's
/// component (other components untouched).
Graph ScanFirstSearchTree(const Graph& g, VertexId root, uint64_t seed);

/// Checks the defining property used by Theorem 21's reduction: for every
/// non-leaf... precisely, that `tree` is a spanning tree of root's
/// component in which some scan order explains every edge. We verify the
/// simulatable characterization: a BFS-like replay in which each tree
/// vertex's children are exactly its unmarked neighbours at scan time.
bool IsValidScanFirstTree(const Graph& g, const Graph& tree, VertexId root);

}  // namespace gms

#endif  // GMS_VERTEXCONN_SFST_H_
