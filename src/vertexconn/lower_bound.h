// Hard-instance generators for the two space lower bounds:
//
//  * Theorem 5 (Omega(kn) for vertex-removal queries): the INDEX reduction
//    on a bipartite graph L x R, |L| = k+1, |R| = n_r. Alice encodes a bit
//    matrix as edges; Bob connects R \ {r_j} and queries S = L \ {l_i};
//    the answer reveals bit (i, j).
//
//  * Theorem 21 (Omega(n^2) for scan-first search trees): Alice encodes an
//    n x n bit matrix into a 4-block graph; Bob adds one edge {u_i, v_i}
//    and reads bit (i, j) off any valid SFST.
//
// Benchmarks stream these instances through the corresponding sketches and
// chart accuracy against sketch size, exhibiting the information-theoretic
// wall empirically.
#ifndef GMS_VERTEXCONN_LOWER_BOUND_H_
#define GMS_VERTEXCONN_LOWER_BOUND_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "stream/stream.h"

namespace gms {

struct VcLowerBoundInstance {
  size_t k = 0;        // |L| - 1: the query budget
  size_t n_r = 0;      // |R|
  Graph graph;         // final graph (Alice's edges + Bob's connector path)
  DynamicStream stream;
  std::vector<VertexId> query;  // S = L \ {l_i}, |S| = k
  size_t bit_i = 0, bit_j = 0;  // the probed index
  bool bit_value = false;       // x_{i,j}
  bool ground_truth_disconnects = false;  // removing S disconnects graph?
};

/// Random INDEX instance: x uniform in {0,1}^{(k+1) x n_r} conditioned on
/// every row having at least one 1 outside the probed column (so that l_i
/// itself stays attached and the query isolates exactly the probed bit).
VcLowerBoundInstance MakeVcLowerBoundInstance(size_t k, size_t n_r,
                                              uint64_t seed);

struct SfstLowerBoundInstance {
  size_t n = 0;  // matrix dimension; graph has 4n vertices
  Graph graph;   // Alice's edges plus Bob's {u_i, v_i}
  size_t bit_i = 0, bit_j = 0;
  bool bit_value = false;
  VertexId u_i = 0, v_i = 0;  // Bob's edge endpoints
  VertexId t_j = 0, w_j = 0;  // the witness neighbours for bit (i, j)
};

/// Theorem 21 instance: T u U u V u W blocks of n vertices each; Alice adds
/// {t_k, u_l} and {v_l, w_k} iff x_{l,k} = 1; Bob adds {u_i, v_i}. In any
/// SFST rooted anywhere, x_{i,j} = 1 iff {t_j, u_i} or {v_i, w_j} is a tree
/// edge (all neighbours of u_i or of v_i are adopted when first scanned).
SfstLowerBoundInstance MakeSfstLowerBoundInstance(size_t n, uint64_t seed);

}  // namespace gms

#endif  // GMS_VERTEXCONN_LOWER_BOUND_H_
