// Vertex-connectivity estimation (Section 3.2, Theorems 6 and 8).
//
// With R = 160 k^2 eps^-1 ln n vertex-subsampled spanning forests, the
// union H satisfies (Corollary 7): if G is (1+eps)k-vertex-connected then H
// is k-vertex-connected whp; and since H is a subgraph of G, H being
// k-connected certifies G is. Post-processing runs an exact vertex-
// connectivity algorithm on H.
#ifndef GMS_VERTEXCONN_VC_ESTIMATOR_H_
#define GMS_VERTEXCONN_VC_ESTIMATOR_H_

#include <cstdint>

#include "vertexconn/vc_query_sketch.h"

namespace gms {

struct VcEstimatorParams {
  size_t k = 2;          // the connectivity threshold being tested
  double epsilon = 1.0;  // gap parameter
  /// Multiplier on the paper's R = 160 k^2 eps^-1 ln n.
  double r_multiplier = 1.0;
  size_t explicit_r = 0;
  /// Worker threads + ingestion mode sharding the R sketches (see
  /// util/parallel.h; outputs are bit-identical for every setting).
  EngineParams engine;
  ForestSketchParams forest;

  size_t ResolveR(size_t n) const;
};

class VcEstimator {
 public:
  VcEstimator(size_t n, const VcEstimatorParams& params, uint64_t seed);

  void Update(const Edge& e, int delta) { forests_.Update(e, delta); }
  void Process(const DynamicStream& stream) { forests_.Process(stream); }

  /// kappa(H), computed exactly on the assembled union graph. Guarantees:
  /// kappa(H) <= kappa(G) always (H is a subgraph); kappa(H) >= k whp when
  /// kappa(G) >= (1+eps)k.
  Result<size_t> EstimateKappa() const;

  /// The Theorem 8 decision: distinguishes kappa(G) >= (1+eps)k (returns
  /// true whp) from kappa(G) < k (returns false always).
  Result<bool> IsAtLeastK() const;

  /// The assembled union graph (for inspection / benchmarking).
  Result<Graph> UnionGraph() const { return forests_.BuildUnionGraph(); }

  size_t R() const { return forests_.R(); }
  size_t MemoryBytes() const { return forests_.MemoryBytes(); }

 private:
  VcEstimatorParams params_;
  SubsampledForestUnion forests_;
};

}  // namespace gms

#endif  // GMS_VERTEXCONN_VC_ESTIMATOR_H_
