// The insert-only baseline of Eppstein, Galil, Italiano and Nissenzweig
// [13], as discussed in Section 1.1: on inserting {u,v}, DROP the edge iff
// the stored certificate already contains k vertex-disjoint u-v paths.
// O(kn) stored edges suffice to answer k-vertex-connectivity questions for
// insert-only streams -- and the paper's motivating observation is that the
// approach is UNSOUND under deletions: a dropped edge may have been
// witnessed by paths that are later deleted. ProcessAllowingDeletes
// implements the naive extension so benchmarks can exhibit the failure.
#ifndef GMS_VERTEXCONN_EPPSTEIN_BASELINE_H_
#define GMS_VERTEXCONN_EPPSTEIN_BASELINE_H_

#include <cstdint>

#include "graph/graph.h"
#include "stream/stream.h"

namespace gms {

class EppsteinCertificate {
 public:
  EppsteinCertificate(size_t n, size_t k);

  /// Insert; returns true iff the edge was stored.
  bool Insert(const Edge& e);

  /// Naive deletion: remove the edge if stored, silently no-op otherwise.
  /// This is exactly the unsound behaviour the paper warns about.
  void Delete(const Edge& e);

  /// Feed a stream, applying Insert/Delete per update.
  void Process(const DynamicStream& stream);

  const Graph& certificate() const { return cert_; }
  size_t StoredEdges() const { return cert_.NumEdges(); }
  size_t DroppedEdges() const { return dropped_; }
  size_t k() const { return k_; }

  /// Certificate guarantee (insert-only): min(k, kappa(cert)) equals
  /// min(k, kappa(G)). Computed exactly on the certificate.
  bool CertifiesKConnectivity() const;

  /// Approximate memory footprint (adjacency storage), for space tables.
  size_t MemoryBytes() const;

 private:
  size_t k_;
  Graph cert_;
  size_t dropped_ = 0;
};

}  // namespace gms

#endif  // GMS_VERTEXCONN_EPPSTEIN_BASELINE_H_
