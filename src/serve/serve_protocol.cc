#include "serve/serve_protocol.h"

#include <cstring>
#include <limits>

#include "wire/wire.h"

namespace gms {
namespace serve {
namespace {

/// A query set names at most k+ vertices (single-digit in practice); the
/// cap only exists so a hostile count field cannot command a huge
/// allocation before the payload-shape check runs.
constexpr uint64_t kMaxQuerySet = 1u << 20;
/// Error messages are diagnostics, not bulk data.
constexpr uint32_t kMaxMessageBytes = 1u << 16;

bool KnownOp(uint16_t raw) {
  return raw <= static_cast<uint16_t>(ServeOp::kIsBridge);
}

}  // namespace

const char* ServeOpName(ServeOp op) {
  switch (op) {
    case ServeOp::kPing: return "ping";
    case ServeOp::kConnected: return "connected";
    case ServeOp::kNumComponents: return "num_components";
    case ServeOp::kDisconnects: return "disconnects";
    case ServeOp::kVcAtLeast: return "vc_at_least";
    case ServeOp::kSkeletonEdgeCount: return "skeleton_edge_count";
    case ServeOp::kStats: return "stats";
    case ServeOp::kIsBridge: return "is_bridge";
  }
  return "unknown";
}

Status MakeStatus(StatusCode code, std::string message) {
  switch (code) {
    case StatusCode::kOk: return Status::OK();
    case StatusCode::kInvalidArgument:
      return Status::InvalidArgument(std::move(message));
    case StatusCode::kFailedPrecondition:
      return Status::FailedPrecondition(std::move(message));
    case StatusCode::kOutOfRange:
      return Status::OutOfRange(std::move(message));
    case StatusCode::kDecodeFailure:
      return Status::DecodeFailure(std::move(message));
    case StatusCode::kUnimplemented:
      return Status::Unimplemented(std::move(message));
    case StatusCode::kInternal: return Status::Internal(std::move(message));
  }
  return Status::Internal(std::move(message));
}

void EncodeServeRequest(const ServeRequest& req, std::vector<uint8_t>* out) {
  wire::FrameBuilder fb(wire::FrameType::kServeRequest, out);
  wire::Writer& w = fb.writer();
  w.U16(static_cast<uint16_t>(req.op));
  w.U64(req.u);
  w.U64(req.v);
  w.U64(req.t);
  w.U64(req.query_set.size());
  fb.EndHeader();
  for (VertexId v : req.query_set) w.U64(v);
  fb.Finish();
}

Result<ServeRequest> DecodeServeRequest(std::span<const uint8_t> buf) {
  auto frame = wire::ParseFrame(buf, wire::FrameType::kServeRequest);
  if (!frame.ok()) return frame.status();
  wire::Reader r(frame->header);
  uint16_t raw_op = 0;
  uint64_t count = 0;
  ServeRequest req;
  if (Status s = r.U16(&raw_op); !s.ok()) return s;
  if (Status s = r.U64(&req.u); !s.ok()) return s;
  if (Status s = r.U64(&req.v); !s.ok()) return s;
  if (Status s = r.U64(&req.t); !s.ok()) return s;
  if (Status s = r.U64(&count); !s.ok()) return s;
  if (Status s = r.ExpectEnd(); !s.ok()) return s;
  if (!KnownOp(raw_op)) {
    return Status::InvalidArgument("serve request: unknown op");
  }
  req.op = static_cast<ServeOp>(raw_op);
  if (count > kMaxQuerySet) {
    return Status::InvalidArgument("serve request: query set too large");
  }
  if (!wire::PayloadMatchesShape(frame->payload.size(), {count})) {
    return Status::InvalidArgument(
        "serve request: payload does not match query-set count");
  }
  wire::Reader p(frame->payload);
  req.query_set.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t v = 0;
    if (Status s = p.U64(&v); !s.ok()) return s;
    if (v > std::numeric_limits<VertexId>::max()) {
      return Status::InvalidArgument(
          "serve request: query vertex exceeds the id domain");
    }
    req.query_set.push_back(static_cast<VertexId>(v));
  }
  if (Status s = p.ExpectEnd(); !s.ok()) return s;
  return req;
}

void EncodeServeResponse(const ServeResponse& resp,
                         std::vector<uint8_t>* out) {
  wire::FrameBuilder fb(wire::FrameType::kServeResponse, out);
  wire::Writer& w = fb.writer();
  w.U16(static_cast<uint16_t>(resp.op));
  w.U32(static_cast<uint32_t>(resp.code));
  w.U64(resp.epoch);
  w.U64(resp.prefix_updates);
  w.U64(resp.value);
  const uint32_t msg_len = static_cast<uint32_t>(
      std::min<size_t>(resp.message.size(), kMaxMessageBytes));
  w.U32(msg_len);
  for (uint32_t i = 0; i < msg_len; ++i) {
    w.U8(static_cast<uint8_t>(resp.message[i]));
  }
  fb.EndHeader();
  fb.Finish();
}

Result<ServeResponse> DecodeServeResponse(std::span<const uint8_t> buf) {
  auto frame = wire::ParseFrame(buf, wire::FrameType::kServeResponse);
  if (!frame.ok()) return frame.status();
  wire::Reader r(frame->header);
  uint16_t raw_op = 0;
  uint32_t raw_code = 0;
  uint32_t msg_len = 0;
  ServeResponse resp;
  if (Status s = r.U16(&raw_op); !s.ok()) return s;
  if (Status s = r.U32(&raw_code); !s.ok()) return s;
  if (Status s = r.U64(&resp.epoch); !s.ok()) return s;
  if (Status s = r.U64(&resp.prefix_updates); !s.ok()) return s;
  if (Status s = r.U64(&resp.value); !s.ok()) return s;
  if (Status s = r.U32(&msg_len); !s.ok()) return s;
  if (!KnownOp(raw_op)) {
    return Status::InvalidArgument("serve response: unknown op");
  }
  resp.op = static_cast<ServeOp>(raw_op);
  if (raw_code > static_cast<uint32_t>(StatusCode::kInternal)) {
    return Status::InvalidArgument("serve response: unknown status code");
  }
  resp.code = static_cast<StatusCode>(raw_code);
  if (msg_len > kMaxMessageBytes) {
    return Status::InvalidArgument("serve response: oversized message");
  }
  if (msg_len != r.remaining()) {
    return Status::InvalidArgument(
        "serve response: message length does not match the header");
  }
  resp.message.resize(msg_len);
  for (uint32_t i = 0; i < msg_len; ++i) {
    uint8_t b = 0;
    if (Status s = r.U8(&b); !s.ok()) return s;
    resp.message[i] = static_cast<char>(b);
  }
  if (!frame->payload.empty()) {
    return Status::InvalidArgument("serve response: unexpected payload");
  }
  return resp;
}

}  // namespace serve
}  // namespace gms
