// Always-on query serving over a linear sketch (DESIGN.md §13).
//
// The problem: every sketch in this library is a linear function of the
// stream, so extraction (Query()) is non-destructive -- but it is also
// EXPENSIVE (decode loops, Borůvka rounds) next to ingestion, and a sketch
// being written by an ingest thread cannot be read concurrently. A monitor
// that wants to answer "are u and v connected right now?" thousands of
// times a second cannot afford either an extraction per query or a stop-
// the-world pause per answer.
//
// The fix exploits linearity directly. The engine splits the measurement
//
//     sketch(prefix) = serving + delta_open + delta_sealed
//
// into three sketches of the SAME measurement (equal seed/shape, so
// MergeFrom is exact cell-wise field addition):
//
//   - `serving_`: the merged prefix up to the last sealed epoch boundary.
//     Touched ONLY by the merger thread after construction; queries never
//     read it directly, only the immutable snapshot extracted from it.
//   - `open_`: the delta the ingest thread is writing this epoch. Sealed
//     (moved into the merge queue) every `epoch_updates` stream updates,
//     or on demand (AdvanceEpoch / Flush).
//   - the sealed delta in flight: at most ONE -- sealing blocks until the
//     merger has retired the previous epoch (backpressure), so a query's
//     staleness is bounded by one sealed epoch plus the open epoch.
//
// The two deltas are recycled (double buffering): the merger Clear()s a
// retired delta and hands it back as the next open buffer, so steady-state
// serving allocates nothing on the ingest path.
//
// Cached extraction: each merged epoch publishes an immutable Snapshot
// (std::shared_ptr -- queries pin it lock-free after one mutex-protected
// pointer copy). The payload is re-extracted ONLY when the merged delta
// actually dirtied the measurement (delta.SnapshotDirty()); an epoch whose
// updates all routed nowhere re-publishes the previous payload pointer and
// counts a cache hit. Dirty summaries are monotone ORs, so a clean delta
// provably contributed nothing to any cell.
//
// Consistency: every snapshot is the EXACT sketch state of a stream
// prefix (prefix_updates says which one). Linearity + the library-wide
// bit-identical determinism guarantee make this testable: replaying the
// prefix into a fresh sketch and extracting reproduces the snapshot
// payload bit for bit (tests/serve_concurrency_test.cc).
//
// Threading contract: ONE ingest thread (Process / AdvanceEpoch / Flush /
// ExternalIngestScope), ANY number of query threads (Current / stats),
// plus the internal merger thread -- and, when epoch_deadline_ms is set,
// an internal pacer thread that seals a non-empty open delta on a
// wall-clock deadline. The open delta is guarded by ingest_mu_ (shared by
// the ingest thread and the pacer); with the pacer disabled the mutex is
// uncontended. Extraction on the merger thread may use the shared
// ThreadPool; concurrent top-level Run calls are serialized by the pool
// itself.
#ifndef GMS_SERVE_SERVING_ENGINE_H_
#define GMS_SERVE_SERVING_ENGINE_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <thread>
#include <utility>

#include "connectivity/spanning_forest_sketch.h"
#include "stream/stream.h"
#include "util/check.h"

namespace gms {

/// Default epoch length, in stream updates. Short next to the driver's
/// reader epochs (kDefaultEpochUpdates = 2^18): a serving epoch bounds
/// answer staleness, not reader memory, and a merge is one cell-wise
/// addition -- cheap enough to take every few thousand updates.
inline constexpr size_t kDefaultServingEpochUpdates = 1 << 13;

struct ServingParams {
  /// Stream updates per epoch; the open delta auto-seals when it has
  /// ingested this many.
  size_t epoch_updates = kDefaultServingEpochUpdates;

  /// Adaptive pacing: when nonzero, a pacer thread additionally seals a
  /// NON-EMPTY open delta once this many milliseconds have passed since
  /// the last epoch boundary -- whichever of the two triggers fires first
  /// wins, so a slow or idle stream still publishes fresh answers instead
  /// of parking updates in the open delta until epoch_updates arrives.
  /// Zero (the default) disables the pacer entirely: behaviour and thread
  /// count are exactly the count-only engine.
  uint64_t epoch_deadline_ms = 0;

  class Builder;
};

class ServingParams::Builder {
 public:
  Builder() = default;
  explicit Builder(const ServingParams& from) : p_(from) {}

  Builder& EpochUpdates(size_t epoch_updates) {
    p_.epoch_updates = epoch_updates;
    return *this;
  }
  Builder& EpochDeadlineMillis(uint64_t epoch_deadline_ms) {
    p_.epoch_deadline_ms = epoch_deadline_ms;
    return *this;
  }
  ServingParams Build() const {
    GMS_CHECK_MSG(p_.epoch_updates >= 1,
                  "ServingParams: epoch_updates must be >= 1");
    return p_;
  }

 private:
  ServingParams p_;
};

template <typename Sketch>
class ServingEngine {
 public:
  /// The extraction payload served to queries -- whatever this sketch's
  /// Query() yields (Hypergraph for forests/skeletons, VcUnionSnapshot for
  /// the VC sketch, ...).
  using Payload = typename decltype(std::declval<const Sketch&>()
                                        .Query())::value_type;

  /// An immutable view of one stream prefix. Returned by shared_ptr; a
  /// query thread can hold it as long as it likes while epochs advance.
  struct Snapshot {
    /// Sealed epochs merged into this view (0 = the base sketch only).
    uint64_t epoch = 0;
    /// Exact number of stream updates this view covers.
    uint64_t prefix_updates = 0;
    /// Extraction status; payload is non-null iff OK.
    Status status = Status::OK();
    std::shared_ptr<const Payload> payload;
    ExtractStats extract_stats;
  };

  struct Stats {
    uint64_t epochs_sealed = 0;
    uint64_t epochs_merged = 0;
    /// Merged epochs whose delta was clean: the previous payload pointer
    /// was re-published without re-extracting.
    uint64_t cache_hits = 0;
    /// Merged epochs that dirtied the measurement and re-extracted.
    uint64_t cache_rebuilds = 0;
    uint64_t updates_ingested = 0;
    /// Updates covered by the published snapshot (<= updates_ingested; the
    /// difference is in the open/sealed deltas).
    uint64_t updates_merged = 0;
    /// Epochs sealed by the wall-clock pacer rather than the update count
    /// (only ever nonzero when epoch_deadline_ms > 0).
    uint64_t deadline_seals = 0;
  };

  /// Takes ownership of `base` (its state, possibly non-empty, becomes
  /// epoch 0), extracts the initial snapshot synchronously, and starts the
  /// merger thread.
  explicit ServingEngine(Sketch base,
                         const ServingParams& params = ServingParams())
      : params_(ServingParams::Builder(params).Build()),
        serving_(std::move(base)),
        open_(serving_.CloneEmpty()),
        last_seal_(Clock::now()),
        spare_(serving_.CloneEmpty()) {
    snapshot_ = ExtractSnapshot(/*epoch=*/0, /*prefix_updates=*/0);
    merger_ = std::thread([this] { MergerLoop(); });
    if (params_.epoch_deadline_ms > 0) {
      pacer_ = std::thread([this] { PacerLoop(); });
    }
  }

  ~ServingEngine() {
    // Stop the pacer FIRST: it may be mid-seal (waiting on the merger for
    // the spare delta), so the merger must still be alive while the pacer
    // winds down.
    if (pacer_.joinable()) {
      {
        std::lock_guard<std::mutex> lock(pacer_mu_);
        pacer_stop_ = true;
      }
      pacer_cv_.notify_all();
      pacer_.join();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    merger_cv_.notify_all();
    merger_.join();
  }

  ServingEngine(const ServingEngine&) = delete;
  ServingEngine& operator=(const ServingEngine&) = delete;

  /// Ingest thread only. Feeds the open delta, sealing an epoch every
  /// params.epoch_updates updates; blocks (backpressure) while a previous
  /// sealed epoch is still being merged.
  void Process(std::span<const StreamUpdate> updates) {
    size_t i = 0;
    while (i < updates.size()) {
      std::lock_guard<std::mutex> ingest(ingest_mu_);
      const size_t room = params_.epoch_updates - open_count_;
      const size_t take = std::min(room, updates.size() - i);
      open_.Process(updates.subspan(i, take));
      open_count_ += take;
      i += take;
      {
        std::lock_guard<std::mutex> lock(mu_);
        stats_.updates_ingested += take;
      }
      if (open_count_ == params_.epoch_updates) SealEpoch();
    }
  }
  void Process(const DynamicStream& stream) {
    Process(std::span<const StreamUpdate>(stream.updates()));
  }

  /// Shared-plane ingestion hook (stream/ingest_plane.h): exposes the open
  /// delta so an external driver can apply ONE prepared update batch to
  /// several engines' deltas at once, instead of each engine re-encoding
  /// the same updates in Process. The scope holds ingest_mu_ for its whole
  /// lifetime (excluding the pacer, like Process does); the caller writes
  /// at most room() updates into *delta() by any ingest path, then calls
  /// Commit(count) exactly once -- which books the updates and seals the
  /// epoch when the count boundary lands. Ingest thread only; chunk
  /// updates at min(room()) across engines so every scope's count stays
  /// within its epoch.
  class ExternalIngestScope {
   public:
    explicit ExternalIngestScope(ServingEngine* engine)
        : engine_(engine), lock_(engine->ingest_mu_) {}

    ExternalIngestScope(const ExternalIngestScope&) = delete;
    ExternalIngestScope& operator=(const ExternalIngestScope&) = delete;

    Sketch* delta() { return &engine_->open_; }
    size_t room() const {
      return engine_->params_.epoch_updates - engine_->open_count_;
    }
    void Commit(size_t count) {
      GMS_CHECK_MSG(count <= room(),
                    "ExternalIngestScope: commit exceeds epoch room");
      engine_->open_count_ += count;
      {
        std::lock_guard<std::mutex> lock(engine_->mu_);
        engine_->stats_.updates_ingested += count;
      }
      if (engine_->open_count_ == engine_->params_.epoch_updates) {
        engine_->SealEpoch();
      }
    }

   private:
    ServingEngine* engine_;
    std::lock_guard<std::mutex> lock_;
  };

  /// Ingest thread only. Force an epoch boundary NOW, even for an empty or
  /// partial open delta -- the on-demand counterpart of the update-count
  /// auto-seal and the wall-clock pacer.
  void AdvanceEpoch() {
    std::lock_guard<std::mutex> ingest(ingest_mu_);
    SealEpoch();
  }

  /// Ingest thread only. Seal whatever is open and block until the merger
  /// has retired every sealed epoch: afterwards Current() covers every
  /// update ever passed to Process.
  void Flush() {
    {
      std::lock_guard<std::mutex> ingest(ingest_mu_);
      if (open_count_ > 0) SealEpoch();
    }
    std::unique_lock<std::mutex> lock(mu_);
    sealed_cv_.wait(lock, [&] { return !sealed_.has_value() && !merging_; });
  }

  /// Any thread. The current snapshot; never null.
  std::shared_ptr<const Snapshot> Current() const {
    std::lock_guard<std::mutex> lock(mu_);
    return snapshot_;
  }

  /// Any thread.
  Stats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }

  const ServingParams& params() const { return params_; }

 private:
  struct SealedJob {
    Sketch delta;
    uint64_t updates = 0;
  };

  /// Extract serving_ into a fresh immutable snapshot. Merger thread (or
  /// the constructor, before the merger exists).
  std::shared_ptr<const Snapshot> ExtractSnapshot(uint64_t epoch,
                                                  uint64_t prefix_updates) {
    auto q = serving_.Query();
    auto snap = std::make_shared<Snapshot>();
    snap->epoch = epoch;
    snap->prefix_updates = prefix_updates;
    snap->status = q.status();
    snap->extract_stats = q.stats();
    if (q.ok()) {
      snap->payload = std::make_shared<const Payload>(std::move(q).value());
    }
    return snap;
  }

  /// Caller holds ingest_mu_ (the open delta moves out here).
  void SealEpoch(bool deadline_seal = false) {
    last_seal_ = Clock::now();
    std::unique_lock<std::mutex> lock(mu_);
    // Backpressure barrier: wait for the recycled delta (the merger hands
    // it back when the previous epoch retires). Bounds staleness to one
    // sealed epoch + the open epoch, and bounds memory to three sketches.
    sealed_cv_.wait(lock,
                    [&] { return !sealed_.has_value() && spare_.has_value(); });
    sealed_.emplace(SealedJob{std::move(open_), open_count_});
    open_ = std::move(*spare_);
    spare_.reset();
    open_count_ = 0;
    ++stats_.epochs_sealed;
    if (deadline_seal) ++stats_.deadline_seals;
    lock.unlock();
    merger_cv_.notify_all();
  }

  /// The wall-clock pacer (epoch_deadline_ms > 0 only): wakes once per
  /// deadline interval and seals the open delta when it is non-empty and
  /// stale -- the "whichever fires first" half the count-triggered seal
  /// cannot provide on a slow stream. Empty deltas are left alone: an idle
  /// stream's published snapshot is already exact, and sealing nothing
  /// would only churn the merger.
  void PacerLoop() {
    const auto deadline = std::chrono::milliseconds(params_.epoch_deadline_ms);
    std::unique_lock<std::mutex> lock(pacer_mu_);
    while (!pacer_stop_) {
      pacer_cv_.wait_for(lock, deadline);
      if (pacer_stop_) return;
      lock.unlock();
      {
        std::lock_guard<std::mutex> ingest(ingest_mu_);
        if (open_count_ > 0 && Clock::now() - last_seal_ >= deadline) {
          SealEpoch(/*deadline_seal=*/true);
        }
      }
      lock.lock();
    }
  }

  void MergerLoop() {
    for (;;) {
      std::optional<SealedJob> job;
      {
        std::unique_lock<std::mutex> lock(mu_);
        merger_cv_.wait(lock, [&] { return stop_ || sealed_.has_value(); });
        if (!sealed_.has_value()) return;  // stopped and drained
        job.emplace(std::move(*sealed_));
        sealed_.reset();
        merging_ = true;
      }
      // A clean delta provably contributed nothing to any cell (dirty
      // summaries are monotone ORs over every touched cell), so the cached
      // payload stays valid and the merge itself can be skipped.
      const bool dirty = job->delta.SnapshotDirty();
      // Only this thread ever publishes, so the prior snapshot's counters
      // are stable across the unlocked stretch below.
      uint64_t base_epoch, base_prefix;
      {
        std::lock_guard<std::mutex> lock(mu_);
        base_epoch = snapshot_->epoch;
        base_prefix = snapshot_->prefix_updates;
      }
      std::shared_ptr<const Snapshot> next;
      if (dirty) {
        const Status merged = serving_.MergeFrom(job->delta);
        GMS_CHECK_MSG(merged.ok(),
                      "ServingEngine: delta/serving shape mismatch");
        job->delta.Clear();
        // Extract WITHOUT holding mu_: backpressure guarantees no new seal
        // lands until spare_ is handed back below, so serving_ is stable,
        // and query threads keep copying the old snapshot pointer
        // unblocked while the rebuild runs.
        next = ExtractSnapshot(base_epoch + 1, base_prefix + job->updates);
      }
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (dirty) {
          ++stats_.cache_rebuilds;
        } else {
          ++stats_.cache_hits;
          auto reuse = std::make_shared<Snapshot>(*snapshot_);
          reuse->epoch = base_epoch + 1;
          reuse->prefix_updates = base_prefix + job->updates;
          next = std::move(reuse);
        }
        ++stats_.epochs_merged;
        stats_.updates_merged += job->updates;
        snapshot_ = std::move(next);
        spare_.emplace(std::move(job->delta));
        merging_ = false;
      }
      sealed_cv_.notify_all();
    }
  }

  using Clock = std::chrono::steady_clock;

  const ServingParams params_;

  /// Merger-thread state (constructor-only before the thread starts).
  Sketch serving_;

  /// Open-delta state under ingest_mu_ (the ingest thread and, when
  /// enabled, the pacer thread).
  std::mutex ingest_mu_;
  Sketch open_;
  size_t open_count_ = 0;
  Clock::time_point last_seal_;

  /// Pacer-thread signalling (epoch_deadline_ms > 0 only).
  std::mutex pacer_mu_;
  std::condition_variable pacer_cv_;
  bool pacer_stop_ = false;

  /// Shared state under mu_.
  mutable std::mutex mu_;
  std::condition_variable merger_cv_;  // signals: sealed job ready / stop
  std::condition_variable sealed_cv_;  // signals: spare returned, drained
  std::optional<Sketch> spare_;
  std::optional<SealedJob> sealed_;
  bool merging_ = false;
  bool stop_ = false;
  std::shared_ptr<const Snapshot> snapshot_;
  Stats stats_;

  std::thread merger_;
  std::thread pacer_;
};

}  // namespace gms

#endif  // GMS_SERVE_SERVING_ENGINE_H_
