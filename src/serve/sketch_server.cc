#include "serve/sketch_server.h"

#include <algorithm>
#include <utility>

#include "graph/traversal.h"
#include "graph/union_find.h"

namespace gms {
namespace serve {
namespace {

/// Shape a response around one engine snapshot's coordinates.
template <typename Snapshot>
void StampSnapshot(const Snapshot& snap, ServeResponse* resp) {
  resp->epoch = snap.epoch;
  resp->prefix_updates = snap.prefix_updates;
}

ServeResponse Refuse(ServeOp op, const Status& status) {
  ServeResponse resp;
  resp.op = op;
  resp.code = status.code();
  resp.message = status.message();
  return resp;
}

}  // namespace

ComponentIndex::ComponentIndex(size_t n, const Hypergraph& forest) {
  UnionFind uf(n);
  for (const Hyperedge& e : forest.Edges()) {
    for (size_t i = 1; i < e.size(); ++i) uf.Union(e[0], e[i]);
  }
  comp_ = uf.ComponentIds();
  num_components_ = uf.NumComponents();
}

BridgeIndex::BridgeIndex(size_t n, const Hypergraph& skeleton) : n_(n) {
  const std::vector<Hyperedge> bridges = BridgeHyperedges(skeleton);
  num_bridges_ = bridges.size();
  pairs_.reserve(bridges.size());
  for (const Hyperedge& e : bridges) {
    if (!e.IsGraphEdge()) continue;
    pairs_.push_back(static_cast<uint64_t>(e[0]) << 32 | e[1]);
  }
  std::sort(pairs_.begin(), pairs_.end());
}

bool BridgeIndex::IsBridge(VertexId u, VertexId v) const {
  if (u == v) return false;
  const uint64_t key =
      static_cast<uint64_t>(std::min(u, v)) << 32 | std::max(u, v);
  return std::binary_search(pairs_.begin(), pairs_.end(), key);
}

SketchServerParams SketchServerParams::Builder::Build() const {
  GMS_CHECK_MSG(p_.max_rank >= 2, "SketchServerParams: max_rank must be >= 2");
  ForestSketchParams::Builder(p_.forest).Build();
  if (p_.serve_vc) VcQueryParams::Builder(p_.vc).Build();
  ServingParams::Builder(p_.serving).Build();
  return p_;
}

SketchServer::SketchServer(size_t n, const SketchServerParams& params,
                           uint64_t seed)
    : n_(n), params_(SketchServerParams::Builder(params).Build()) {
  forest_.emplace(SpanningForestSketch(n, params_.max_rank, seed,
                                       params_.forest),
                  params_.serving);
  if (params_.serve_vc) {
    vc_.emplace(VcQuerySketch(n, params_.vc, seed + 1), params_.serving);
  }
  if (params_.skeleton_k > 0) {
    skeleton_.emplace(KSkeletonSketch(n, params_.max_rank, params_.skeleton_k,
                                      seed + 2, params_.forest),
                      params_.serving);
  }
}

void SketchServer::Ingest(std::span<const StreamUpdate> updates) {
  if (updates.empty()) return;
  size_t i = 0;
  while (i < updates.size()) {
    // One chunk per loop: open every shared engine's delta, bound the
    // chunk by the tightest epoch room, run ONE prepared pass through the
    // plane, and commit (which seals any engine whose epoch filled).
    plane_.Reset();
    size_t take = updates.size() - i;

    ForestEngine::ExternalIngestScope forest_scope(&*forest_);
    const bool forest_shared = plane_.Add(forest_scope.delta());
    GMS_CHECK_MSG(forest_shared, "SketchServer: forest must share the plane");
    take = std::min(take, forest_scope.room());

    std::optional<VcEngine::ExternalIngestScope> vc_scope;
    bool vc_shared = false;
    if (vc_) {
      vc_scope.emplace(&*vc_);
      vc_shared = plane_.Add(vc_scope->delta());
      if (vc_shared) {
        take = std::min(take, vc_scope->room());
      } else {
        vc_scope.reset();  // release the lock; plain Process below
      }
    }

    std::optional<SkeletonEngine::ExternalIngestScope> skeleton_scope;
    bool skeleton_shared = false;
    if (skeleton_) {
      skeleton_scope.emplace(&*skeleton_);
      skeleton_shared = plane_.Add(skeleton_scope->delta());
      if (skeleton_shared) {
        take = std::min(take, skeleton_scope->room());
      } else {
        skeleton_scope.reset();
      }
    }

    const std::span<const StreamUpdate> chunk = updates.subspan(i, take);
    if (UseGutterDriver(params_.forest.engine, chunk.size())) {
      plane_.Drive(chunk, DriverParamsFromEngine(params_.forest.engine));
    } else {
      plane_.Process(chunk);
    }
    forest_scope.Commit(take);
    if (vc_shared) vc_scope->Commit(take);
    if (skeleton_shared) skeleton_scope->Commit(take);

    // Engines outside the plane ingest the same chunk independently (their
    // own chunking/sealing; the overall stream they see is identical).
    if (vc_ && !vc_shared) vc_->Process(chunk);
    if (skeleton_ && !skeleton_shared) skeleton_->Process(chunk);
    i += take;
  }
}

void SketchServer::IngestIndependent(std::span<const StreamUpdate> updates) {
  forest_->Process(updates);
  if (vc_) vc_->Process(updates);
  if (skeleton_) skeleton_->Process(updates);
}

void SketchServer::Ingest(const DynamicStream& stream) {
  Ingest(std::span<const StreamUpdate>(stream.updates()));
}

void SketchServer::AdvanceEpoch() {
  forest_->AdvanceEpoch();
  if (vc_) vc_->AdvanceEpoch();
  if (skeleton_) skeleton_->AdvanceEpoch();
}

void SketchServer::Flush() {
  forest_->Flush();
  if (vc_) vc_->Flush();
  if (skeleton_) skeleton_->Flush();
}

std::shared_ptr<const ComponentIndex> SketchServer::IndexFor(
    const std::shared_ptr<const Hypergraph>& payload) {
  std::lock_guard<std::mutex> lock(index_mu_);
  if (indexed_payload_ != payload) {
    index_ = std::make_shared<const ComponentIndex>(n_, *payload);
    indexed_payload_ = payload;
  }
  return index_;
}

std::shared_ptr<const BridgeIndex> SketchServer::BridgeIndexFor(
    const std::shared_ptr<const Hypergraph>& payload) {
  std::lock_guard<std::mutex> lock(index_mu_);
  if (bridge_indexed_payload_ != payload) {
    bridge_index_ = std::make_shared<const BridgeIndex>(n_, *payload);
    bridge_indexed_payload_ = payload;
  }
  return bridge_index_;
}

ServeResponse SketchServer::Handle(const ServeRequest& req) {
  ServeResponse resp = Dispatch(req);
  std::lock_guard<std::mutex> lock(stats_mu_);
  ++stats_.requests;
  if (resp.code != StatusCode::kOk) ++stats_.errors;
  return resp;
}

ServeResponse SketchServer::Dispatch(const ServeRequest& req) {
  switch (req.op) {
    case ServeOp::kPing: {
      ServeResponse resp;
      resp.op = req.op;
      StampSnapshot(*forest_->Current(), &resp);
      return resp;
    }
    case ServeOp::kConnected:
    case ServeOp::kNumComponents: {
      if (req.op == ServeOp::kConnected && (req.u >= n_ || req.v >= n_)) {
        return Refuse(req.op, Status::InvalidArgument(
                                  "connected: vertex id out of range"));
      }
      auto snap = forest_->Current();
      if (!snap->status.ok()) {
        ServeResponse resp = Refuse(req.op, snap->status);
        StampSnapshot(*snap, &resp);
        return resp;
      }
      auto index = IndexFor(snap->payload);
      ServeResponse resp;
      resp.op = req.op;
      StampSnapshot(*snap, &resp);
      resp.value = req.op == ServeOp::kConnected
                       ? (index->Connected(static_cast<VertexId>(req.u),
                                           static_cast<VertexId>(req.v))
                              ? 1
                              : 0)
                       : index->num_components();
      return resp;
    }
    case ServeOp::kDisconnects:
    case ServeOp::kVcAtLeast: {
      if (!vc_) {
        return Refuse(req.op, Status::FailedPrecondition(
                                  "vertex-connectivity serving is disabled"));
      }
      auto snap = vc_->Current();
      if (!snap->status.ok()) {
        ServeResponse resp = Refuse(req.op, snap->status);
        StampSnapshot(*snap, &resp);
        return resp;
      }
      Result<bool> answer =
          req.op == ServeOp::kDisconnects
              ? snap->payload->Disconnects(req.query_set)
              : snap->payload->VertexConnectivityAtLeast(
                    static_cast<size_t>(req.t));
      if (!answer.ok()) {
        ServeResponse resp = Refuse(req.op, answer.status());
        StampSnapshot(*snap, &resp);
        return resp;
      }
      ServeResponse resp;
      resp.op = req.op;
      StampSnapshot(*snap, &resp);
      resp.value = *answer ? 1 : 0;
      return resp;
    }
    case ServeOp::kSkeletonEdgeCount: {
      if (!skeleton_) {
        return Refuse(req.op, Status::FailedPrecondition(
                                  "skeleton serving is disabled"));
      }
      auto snap = skeleton_->Current();
      if (!snap->status.ok()) {
        ServeResponse resp = Refuse(req.op, snap->status);
        StampSnapshot(*snap, &resp);
        return resp;
      }
      ServeResponse resp;
      resp.op = req.op;
      StampSnapshot(*snap, &resp);
      resp.value = snap->payload->NumEdges();
      return resp;
    }
    case ServeOp::kIsBridge: {
      if (!skeleton_ || params_.skeleton_k < 2) {
        return Refuse(req.op,
                      Status::FailedPrecondition(
                          "bridge serving needs a skeleton engine with "
                          "k >= 2"));
      }
      if (req.u >= n_ || req.v >= n_) {
        return Refuse(req.op, Status::InvalidArgument(
                                  "is_bridge: vertex id out of range"));
      }
      auto snap = skeleton_->Current();
      if (!snap->status.ok()) {
        ServeResponse resp = Refuse(req.op, snap->status);
        StampSnapshot(*snap, &resp);
        return resp;
      }
      auto index = BridgeIndexFor(snap->payload);
      ServeResponse resp;
      resp.op = req.op;
      StampSnapshot(*snap, &resp);
      resp.value = index->IsBridge(static_cast<VertexId>(req.u),
                                   static_cast<VertexId>(req.v))
                       ? 1
                       : 0;
      return resp;
    }
    case ServeOp::kStats: {
      ServeResponse resp;
      resp.op = req.op;
      const auto snap = forest_->Current();
      StampSnapshot(*snap, &resp);
      resp.value = forest_->stats().updates_ingested;
      return resp;
    }
  }
  return Refuse(req.op, Status::InvalidArgument("serve: unknown op"));
}

void SketchServer::HandleFrame(std::span<const uint8_t> request,
                               std::vector<uint8_t>* response) {
  auto req = DecodeServeRequest(request);
  ServeResponse resp;
  if (!req.ok()) {
    resp = Refuse(ServeOp::kPing, req.status());
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.requests;
    ++stats_.errors;
  } else {
    resp = Handle(*req);
  }
  EncodeServeResponse(resp, response);
}

SketchServer::Stats SketchServer::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

}  // namespace serve
}  // namespace gms
