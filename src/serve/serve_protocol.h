// Request/response frames for querying a live SketchServer (DESIGN.md §13).
//
// Reuses the sketch wire envelope (wire/wire.h: magic, version, checksum,
// header/payload split) with two new frame types, so the transport that
// ships sketch state between shards can carry queries on the same socket:
//
//   kServeRequest   header = op + fixed args, payload = query-set words
//   kServeResponse  header = op echo, status, snapshot coordinates
//                   (epoch, prefix_updates), answer value, error message
//
// Decoding NEVER aborts: truncation, corruption, unknown ops, and hostile
// lengths all surface as Status (tests/serve_test.cc throws mutated frames
// at both decoders).
#ifndef GMS_SERVE_SERVE_PROTOCOL_H_
#define GMS_SERVE_SERVE_PROTOCOL_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace gms {
namespace serve {

/// Operations a server answers. Values are wire-stable: append only.
enum class ServeOp : uint16_t {
  /// Liveness probe; answers OK with the current snapshot coordinates.
  kPing = 0,
  /// value = 1 iff vertices u and v are in one component (forest engine).
  kConnected = 1,
  /// value = number of connected components (forest engine).
  kNumComponents = 2,
  /// value = 1 iff removing query_set disconnects the survivors
  /// (VC engine, Theorem 4 semantics; |query_set| <= k after dedup).
  kDisconnects = 3,
  /// value = 1 iff vertex connectivity >= t (VC engine; t <= k + 1).
  kVcAtLeast = 4,
  /// value = edge count of the extracted k-skeleton (skeleton engine).
  kSkeletonEdgeCount = 5,
  /// value = total updates ingested across the server's engines.
  kStats = 6,
  /// value = 1 iff graph edge {u, v} is a bridge: it is in the served
  /// k-skeleton (k >= 2) and removing it disconnects the skeleton --
  /// equivalently, whp, removing it disconnects G (skeleton engine).
  kIsBridge = 7,
};

/// Stable lower-case name ("ping", "connected", ...); "unknown" outside
/// the enum. For diagnostics and logs.
const char* ServeOpName(ServeOp op);

/// Rebuild a Status from its wire form (Status's code+message constructor
/// is private; this routes through the public factories). kOk ignores the
/// message; codes outside the enum degrade to kInternal.
Status MakeStatus(StatusCode code, std::string message);

struct ServeRequest {
  ServeOp op = ServeOp::kPing;
  /// kConnected endpoints.
  uint64_t u = 0;
  uint64_t v = 0;
  /// kVcAtLeast threshold.
  uint64_t t = 0;
  /// kDisconnects separator candidate.
  std::vector<VertexId> query_set;
};

struct ServeResponse {
  ServeOp op = ServeOp::kPing;
  /// StatusCode of the answer (kOk = the query was answered; anything else
  /// means `message` explains the refusal and `value` is meaningless).
  StatusCode code = StatusCode::kOk;
  std::string message;
  /// Snapshot coordinates the answer was computed against: how many sealed
  /// epochs it covers and the exact stream-prefix length. A client can
  /// bound staleness by comparing prefix_updates across responses.
  uint64_t epoch = 0;
  uint64_t prefix_updates = 0;
  /// The answer: 0/1 for boolean ops, a count otherwise.
  uint64_t value = 0;

  /// Convenience: the answer as a Status (OK iff code == kOk).
  Status status() const { return MakeStatus(code, message); }
};

/// Append one kServeRequest frame to *out.
void EncodeServeRequest(const ServeRequest& req, std::vector<uint8_t>* out);

/// Parse a buffer holding exactly one kServeRequest frame.
Result<ServeRequest> DecodeServeRequest(std::span<const uint8_t> buf);

/// Append one kServeResponse frame to *out.
void EncodeServeResponse(const ServeResponse& resp, std::vector<uint8_t>* out);

/// Parse a buffer holding exactly one kServeResponse frame.
Result<ServeResponse> DecodeServeResponse(std::span<const uint8_t> buf);

}  // namespace serve
}  // namespace gms

#endif  // GMS_SERVE_SERVE_PROTOCOL_H_
