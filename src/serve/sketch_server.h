// A multi-engine always-on query server (DESIGN.md §13).
//
// Bundles one ServingEngine per enabled sketch family behind a single
// ingest fan-out and a single query surface:
//
//   forest    (always on)  -> Connected(u, v), NumComponents
//   vc        (optional)   -> Disconnects(S), VertexConnectivityAtLeast(t)
//   skeleton  (optional)   -> SkeletonEdgeCount
//
// Queries arrive either as direct method calls or as wire frames
// (serve_protocol.h) via HandleFrame -- the same envelope that ships
// sketch state, so one socket loop can serve both. Every answer carries
// the snapshot coordinates (epoch, prefix_updates) it was computed
// against, letting clients bound staleness themselves.
//
// Connectivity answers come from a ComponentIndex -- a union-find over the
// served forest payload, flattened to one component id per vertex -- built
// at most ONCE per published payload (the cache is keyed on the payload
// pointer, which the serving engine reuses across clean epochs), so a
// query is two array loads however fast queries arrive.
//
// Threading: one ingest thread (Ingest / AdvanceEpoch / Flush), any number
// of query threads (Handle / HandleFrame / the direct accessors).
#ifndef GMS_SERVE_SKETCH_SERVER_H_
#define GMS_SERVE_SKETCH_SERVER_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <vector>

#include "connectivity/k_skeleton.h"
#include "connectivity/spanning_forest_sketch.h"
#include "serve/serve_protocol.h"
#include "serve/serving_engine.h"
#include "stream/ingest_plane.h"
#include "vertexconn/vc_query_sketch.h"

namespace gms {
namespace serve {

/// One component id per vertex, flattened from a spanning forest payload.
/// Immutable after construction; query threads share one instance.
class ComponentIndex {
 public:
  ComponentIndex(size_t n, const Hypergraph& forest);

  bool Connected(VertexId u, VertexId v) const {
    return comp_[u] == comp_[v];
  }
  size_t num_components() const { return num_components_; }
  size_t n() const { return comp_.size(); }

 private:
  std::vector<uint32_t> comp_;
  size_t num_components_ = 0;
};

/// The bridge edges of a served k-skeleton payload (k >= 2), flattened to
/// a hash set of rank-2 endpoint pairs so a kIsBridge query is one probe.
/// Like ComponentIndex: immutable after construction, built at most once
/// per published payload (payload-pointer cache), shared across query
/// threads. A skeleton bridge is whp a bridge of G itself: a G-cut of
/// size 1 survives into any k >= 2 skeleton as that same single edge.
class BridgeIndex {
 public:
  BridgeIndex(size_t n, const Hypergraph& skeleton);

  /// True iff {u, v} is a rank-2 bridge hyperedge of the skeleton.
  /// (Bridges of cardinality > 2 exist for hypergraphs but have no (u, v)
  /// addressing; num_bridges() still counts them.)
  bool IsBridge(VertexId u, VertexId v) const;
  size_t num_bridges() const { return num_bridges_; }

 private:
  size_t n_ = 0;
  std::vector<uint64_t> pairs_;  // sorted packed (min << 32 | max) keys
  size_t num_bridges_ = 0;
};

struct SketchServerParams {
  /// The connectivity engine (always on).
  ForestSketchParams forest;
  /// Maximum hyperedge cardinality the forest/skeleton engines accept.
  size_t max_rank = 2;
  /// Serve Theorem 4 vertex-connectivity queries (graph streams only).
  bool serve_vc = false;
  VcQueryParams vc;
  /// Serve k-skeleton queries when nonzero (the skeleton's k).
  size_t skeleton_k = 0;
  /// Epoch pacing shared by every enabled engine.
  ServingParams serving;

  class Builder;
};

class SketchServerParams::Builder {
 public:
  Builder() = default;
  explicit Builder(const SketchServerParams& from) : p_(from) {}

  Builder& Forest(const ForestSketchParams& forest) {
    p_.forest = forest;
    return *this;
  }
  Builder& MaxRank(size_t max_rank) {
    p_.max_rank = max_rank;
    return *this;
  }
  Builder& ServeVc(bool serve_vc) {
    p_.serve_vc = serve_vc;
    return *this;
  }
  Builder& Vc(const VcQueryParams& vc) {
    p_.vc = vc;
    p_.serve_vc = true;
    return *this;
  }
  Builder& SkeletonK(size_t skeleton_k) {
    p_.skeleton_k = skeleton_k;
    return *this;
  }
  Builder& Serving(const ServingParams& serving) {
    p_.serving = serving;
    return *this;
  }
  Builder& EpochUpdates(size_t epoch_updates) {
    p_.serving.epoch_updates = epoch_updates;
    return *this;
  }
  SketchServerParams Build() const;

 private:
  SketchServerParams p_;
};

class SketchServer {
 public:
  struct Stats {
    uint64_t requests = 0;
    /// Requests answered with a non-OK code (refusals, not transport
    /// failures -- an undecodable frame also counts once here).
    uint64_t errors = 0;
  };

  /// Engine seeds are derived from `seed` (seed, seed+1, seed+2), so one
  /// public seed reproduces the whole server.
  SketchServer(size_t n, const SketchServerParams& params, uint64_t seed);

  size_t n() const { return n_; }

  /// Ingest thread only: one shared encode/prepare/route pass per epoch
  /// chunk, fanned out to every enabled engine's open delta through the
  /// ingestion plane (stream/ingest_plane.h) -- one pass instead of three.
  /// Engines that cannot share the plane (a VC engine under a max_rank > 2
  /// codec, or R > 62 route bits) transparently fall back to their own
  /// Process on the same chunks.
  void Ingest(std::span<const StreamUpdate> updates);
  void Ingest(const DynamicStream& stream);
  /// The pre-plane baseline: each engine re-encodes the updates itself.
  /// Kept as the comparison target for the determinism suite and the
  /// prepare_once bench rows; answers are byte-identical to Ingest.
  void IngestIndependent(std::span<const StreamUpdate> updates);
  /// Ingest thread only: force an epoch boundary on every engine.
  void AdvanceEpoch();
  /// Ingest thread only: quiesce -- afterwards answers cover every update.
  void Flush();

  /// Any thread: answer one decoded request.
  ServeResponse Handle(const ServeRequest& req);

  /// Any thread: decode `request`, answer it, append exactly one
  /// kServeResponse frame to *response. Undecodable requests produce an
  /// error response frame (never a crash), echoing op = kPing.
  void HandleFrame(std::span<const uint8_t> request,
                   std::vector<uint8_t>* response);

  Stats stats() const;

  using ForestEngine = ServingEngine<SpanningForestSketch>;
  using VcEngine = ServingEngine<VcQuerySketch>;
  using SkeletonEngine = ServingEngine<KSkeletonSketch>;

  ForestEngine& forest_engine() { return *forest_; }
  bool vc_enabled() const { return vc_.has_value(); }
  VcEngine& vc_engine() { return *vc_; }
  bool skeleton_enabled() const { return skeleton_.has_value(); }
  SkeletonEngine& skeleton_engine() { return *skeleton_; }

 private:
  /// The component index for `payload`, building it only if the cached one
  /// was derived from a different payload pointer.
  std::shared_ptr<const ComponentIndex> IndexFor(
      const std::shared_ptr<const Hypergraph>& payload);

  ServeResponse Dispatch(const ServeRequest& req);

  size_t n_;
  SketchServerParams params_;

  /// optional<> for deferred in-place construction; the engines themselves
  /// are neither movable nor copyable (they own a thread).
  std::optional<ForestEngine> forest_;
  std::optional<VcEngine> vc_;
  std::optional<SkeletonEngine> skeleton_;

  /// Reused across Ingest chunks (keeps the per-vertex gutter buffers
  /// warm); consumers are re-registered per chunk because the open-delta
  /// scopes are chunk-scoped.
  IngestPlane plane_;

  /// As IndexFor, for the skeleton engine's bridge index.
  std::shared_ptr<const BridgeIndex> BridgeIndexFor(
      const std::shared_ptr<const Hypergraph>& payload);

  std::mutex index_mu_;
  std::shared_ptr<const Hypergraph> indexed_payload_;
  std::shared_ptr<const ComponentIndex> index_;
  std::shared_ptr<const Hypergraph> bridge_indexed_payload_;
  std::shared_ptr<const BridgeIndex> bridge_index_;

  mutable std::mutex stats_mu_;
  Stats stats_;
};

}  // namespace serve
}  // namespace gms

#endif  // GMS_SERVE_SKETCH_SERVER_H_
