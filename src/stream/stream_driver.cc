#include "stream/stream_driver.h"

namespace gms {

std::vector<uint32_t> BuildApplierOwnerMap(size_t n, size_t appliers) {
  std::vector<uint32_t> owner_of(n, 0);
  for (size_t a = 0; a < appliers; ++a) {
    const ShardRange r = ShardOf(n, a, appliers);
    std::fill(owner_of.begin() + static_cast<ptrdiff_t>(r.begin),
              owner_of.begin() + static_cast<ptrdiff_t>(r.end),
              static_cast<uint32_t>(a));
  }
  return owner_of;
}

}  // namespace gms
