#include "stream/io.h"

#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

namespace gms {

namespace {

Result<ParsedStream> ParseLines(std::istream& in, bool allow_deltas) {
  ParsedStream out;
  bool have_header = false;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::istringstream ls(line);
    std::string tok;
    if (!(ls >> tok) || tok[0] == '#') continue;
    if (tok == "n") {
      size_t n = 0;
      if (!(ls >> n) || n == 0) {
        return Status::InvalidArgument("line " + std::to_string(line_no) +
                                       ": bad vertex count");
      }
      out.n = n;
      have_header = true;
      continue;
    }
    if (!have_header) {
      return Status::InvalidArgument("missing 'n <count>' header");
    }
    int delta = +1;
    std::vector<VertexId> vs;
    if (tok == "+" || tok == "-") {
      if (!allow_deltas && tok == "-") {
        return Status::InvalidArgument(
            "line " + std::to_string(line_no) +
            ": deletions not allowed in a static edge list");
      }
      delta = tok == "+" ? +1 : -1;
    } else {
      // The token is the first vertex id.
      char* end = nullptr;
      unsigned long v = std::strtoul(tok.c_str(), &end, 10);
      if (end == tok.c_str() || *end != '\0') {
        return Status::InvalidArgument("line " + std::to_string(line_no) +
                                       ": unrecognized token '" + tok + "'");
      }
      if (v >= out.n) {
        return Status::InvalidArgument("line " + std::to_string(line_no) +
                                       ": vertex id out of range");
      }
      vs.push_back(static_cast<VertexId>(v));
    }
    unsigned long v;
    while (ls >> v) {
      if (v >= out.n) {
        return Status::InvalidArgument("line " + std::to_string(line_no) +
                                       ": vertex id out of range");
      }
      vs.push_back(static_cast<VertexId>(v));
    }
    if (vs.size() < 2) {
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": hyperedge needs >= 2 vertices");
    }
    out.stream.Push(Hyperedge(std::move(vs)), delta);
  }
  if (!have_header) {
    return Status::InvalidArgument("missing 'n <count>' header");
  }
  return out;
}

}  // namespace

Result<ParsedStream> ReadStream(std::istream& in) {
  auto parsed = ParseLines(in, /*allow_deltas=*/true);
  if (!parsed.ok()) return parsed.status();
  if (!parsed->stream.Validate()) {
    return Status::InvalidArgument(
        "stream violates 0/1 multiplicity (delete before insert or double "
        "insert)");
  }
  return parsed;
}

Result<ParsedStream> ReadStreamFromString(const std::string& text) {
  std::istringstream in(text);
  return ReadStream(in);
}

Result<Hypergraph> ReadHypergraph(std::istream& in) {
  auto parsed = ParseLines(in, /*allow_deltas=*/false);
  if (!parsed.ok()) return parsed.status();
  return parsed->stream.Materialize(parsed->n);
}

Result<Hypergraph> ReadHypergraphFromString(const std::string& text) {
  std::istringstream in(text);
  return ReadHypergraph(in);
}

std::string WriteStream(size_t n, const DynamicStream& stream) {
  std::string out = "n " + std::to_string(n) + "\n";
  for (const auto& u : stream) {
    out += u.delta > 0 ? "+" : "-";
    for (VertexId v : u.edge) {
      out += " " + std::to_string(v);
    }
    out += "\n";
  }
  return out;
}

std::string WriteHypergraph(const Hypergraph& g) {
  std::string out = "n " + std::to_string(g.NumVertices()) + "\n";
  for (const auto& e : g.Edges()) {
    bool first = true;
    for (VertexId v : e) {
      if (!first) out += " ";
      out += std::to_string(v);
      first = false;
    }
    out += "\n";
  }
  return out;
}

}  // namespace gms
