// Per-vertex update gutters: the buffering layer of the gutter driver
// (DESIGN.md §11).
//
// The hot-path problem the driver solves: batched ingest applies each
// stream update to every endpoint's (vertex, round) columns immediately,
// which for an arena far larger than cache means ~8 compulsory misses per
// update at a RANDOM vertex -- ingest throughput goes flat in the thread
// count because every worker is latency-bound on the same DRAM. Because
// every sketch here is LINEAR, updates destined for the same vertex can be
// coalesced and applied in any order: a reader prepares each update once
// (codec rank, key fold, exponent reduction) and appends one compact
// VertexUpdate per endpoint into that endpoint's gutter; a full gutter
// travels to the applier that owns the vertex, which replays the whole
// batch over the vertex's contiguous sketch block while it is cache
// resident.
//
// This header owns the passive pieces -- the per-endpoint entry type, the
// per-vertex buffers, and the bounded reader->applier queue. The driver
// loop that wires them to a sketch is stream/stream_driver.h.
#ifndef GMS_STREAM_GUTTERS_H_
#define GMS_STREAM_GUTTERS_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <vector>

#include "graph/edge.h"
#include "sketch/sparse_recovery.h"

namespace gms {

/// One buffered incidence update for one endpoint vertex: everything the
/// per-vertex apply needs, with the shape-independent preparation (codec
/// index, folded key halves, reduced exponent) done ONCE by the reader and
/// shared by every sketch the entry fans out to. The hyperedge itself does
/// not travel: the incidence coefficient (|e|-1 at the minimum endpoint,
/// -1 elsewhere, times the stream delta) is the only endpoint-dependent
/// part of the update, and routing decisions that need the other endpoints
/// (the vertex-subsampled containers) are folded into `route` at reader
/// time.
struct VertexUpdate {
  PreparedCoord pc;
  /// Container-defined routing bits, computed by DriverRouteMask(e) before
  /// fan-out: bit i set means sub-sketch family i receives this update
  /// (kept-bitmap membership for the subsampled containers; plain sketches
  /// use the constant mask 1 and ignore it on apply).
  uint64_t route = 0;
  /// IncidenceCoefficient(e, v) * delta: the signed weight this endpoint's
  /// cells receive (Section 4.1 encoding).
  int64_t coeff = 0;
};

/// A flushed gutter: every buffered entry targets the same vertex.
struct GutterBatch {
  VertexId vertex = 0;
  std::vector<VertexUpdate> entries;
};

/// Bounded MPSC queue of full gutters feeding one applier. Push blocks
/// while the queue is at capacity (backpressure keeps reader memory
/// bounded); Pop blocks until a batch arrives or every producer is done.
/// Plain mutex + condvars: the driver amortizes the synchronization over
/// whole batches, so this is never the hot path.
class BatchQueue {
 public:
  explicit BatchQueue(size_t capacity);

  /// Enqueue, blocking while full. Must not be called after Close().
  void Push(GutterBatch&& batch);

  /// Dequeue into *out; blocks while empty. Returns false once the queue
  /// is closed AND drained (the applier's exit condition).
  bool Pop(GutterBatch* out);

  /// Producers are done: wake every waiter; Pop drains the remainder.
  void Close();

 private:
  const size_t capacity_;
  std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<GutterBatch> queue_;
  bool closed_ = false;
};

/// One reader thread's per-vertex buffers. Buffers are allocated lazily,
/// so only vertices the reader's stream slice actually touches cost
/// memory. The touched-vertex list makes the epoch flush proportional to
/// the vertices touched, not to n -- and sorting it gives the
/// deterministic flush-in-vertex-order barrier of DESIGN.md §11.
class Gutters {
 public:
  using FlushFn = std::function<void(VertexId, std::vector<VertexUpdate>&&)>;

  /// `capacity`: entries per gutter before it auto-flushes to `flush`.
  Gutters(size_t n, size_t capacity);

  size_t capacity() const { return capacity_; }

  /// Append one entry to v's gutter; hands the gutter to `flush` when it
  /// reaches capacity.
  void Append(VertexId v, const VertexUpdate& entry, const FlushFn& flush);

  /// Epoch barrier: flush every non-empty gutter in INCREASING VERTEX
  /// ORDER and reset the touched list. The driver calls this at the end of
  /// each reader epoch (and once at end of slice), so batch hand-off order
  /// within an epoch is a deterministic function of the stream slice.
  void FlushEpoch(const FlushFn& flush);

 private:
  size_t capacity_;
  std::vector<std::vector<VertexUpdate>> buffers_;  // [v]; lazily reserved
  std::vector<VertexId> touched_;                   // non-empty gutters
};

}  // namespace gms

#endif  // GMS_STREAM_GUTTERS_H_
